#!/usr/bin/env bash
# Benchmarks the online adaptation loop (serve-sim --adapt) across drift
# severities and writes bench/BENCH_adaptation.json: median q-error of
# the live model under drift before vs after the loop fine-tunes and
# promotes, the duration of the last rolling hot-swap, and availability
# through the whole drill (drift -> fine-tune -> shadow -> promote ->
# replica-by-replica rollout).
#
# Usage: scripts/bench_adaptation.sh [build-dir] [requests]
#   scripts/bench_adaptation.sh          # ./build, 2000
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
requests="${2:-2000}"
out="${repo_root}/bench/BENCH_adaptation.json"

cmake --build "${build_dir}" --target zerotune_cli -j "$(nproc)" >&2
cli="${build_dir}/tools/zerotune_cli"
[[ -x "${cli}" ]] || { echo "zerotune_cli not found at ${cli}" >&2; exit 1; }

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
printf 'source(rate=150000, schema=ddi)\n  | filter(sel=0.6)\n  | aggregate(fn=avg, key=int, window=count:tumbling:50, sel=0.2)\n  | sink\n' \
  > "${workdir}/q.dsl"
"${cli}" compile --dsl "${workdir}/q.dsl" --out "${workdir}/q.plan" >&2
"${cli}" collect --count 80 --seed 5 --out "${workdir}/corpus.txt" >&2
"${cli}" train --corpus "${workdir}/corpus.txt" \
  --model-out "${workdir}/model.txt" --epochs 6 --hidden 16 >&2
"${cli}" tune --model "${workdir}/model.txt" --query "${workdir}/q.plan" \
  --cluster m510:4 --out "${workdir}/deployed.plan" >&2

drift_after=$((requests / 4))
cat > "${workdir}/row.py" <<'PY'
import json, sys
factor = float(sys.argv[1])
d = json.load(sys.stdin)
a = d["adaptation"]
s = d["stats"]
print(json.dumps({
    "drift_factor": factor,
    "median_qerror_drifted": round(a["median_qerror_drifted"], 4),
    # 0 means no post-drift promotion happened (drift below the trip
    # threshold); report null rather than a fake-perfect q-error.
    "median_qerror_adapted": round(a["median_qerror_adapted"], 4) or None,
    "finetunes": a["finetunes"],
    "promotions": a["promotions"],
    "rejections": a["rejections"],
    "rollbacks": a["rollbacks"],
    "live_version": a["live_version"],
    "last_rollout_ms": round(a["last_rollout_ms"], 3),
    "primary_swaps": s["primary_swaps"],
    "availability": s["availability"],
    "rps": round(d["rps"], 1),
}, indent=4))
PY
{
  printf '{\n'
  printf '  "benchmark": "adaptation",\n'
  printf '  "requests": %s,\n' "${requests}"
  printf '  "drift_after": %s,\n' "${drift_after}"
  printf '  "replicas": 4,\n'
  printf '  "adapt_every": 32,\n'
  printf '  "seed": 2024,\n'
  printf '  "runs": [\n'
  first=1
  for factor in 1.5 2 3 5; do
    rm -rf "${workdir}/registry"
    json="$("${cli}" serve-sim --plan "${workdir}/deployed.plan" \
      --model "${workdir}/model.txt" --adapt \
      --registry "${workdir}/registry" \
      --requests "${requests}" --threads 0 --replicas 4 --tenants 32 \
      --adapt-every 32 --drift-after "${drift_after}" \
      --drift-factor "${factor}" --seed 2024 --format json)"
    row="$(python3 "${workdir}/row.py" "${factor}" <<<"${json}")"
    [[ ${first} -eq 1 ]] || printf ',\n'
    first=0
    printf '%s' "${row}" | sed 's/^/    /'
  done
  printf '\n  ]\n}\n'
} > "${out}"
echo "wrote ${out}" >&2
python3 -m json.tool "${out}" > /dev/null
