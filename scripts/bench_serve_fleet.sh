#!/usr/bin/env bash
# Benchmarks the sharded serving fleet (serve-sim fleet mode) across
# replica counts and writes bench/BENCH_serve_fleet.json: throughput,
# latency percentiles, and availability per fleet size, under the same
# chaos schedule (5% primary failures, a replica killed every 20k
# requests, controller-driven restarts).
#
# Usage: scripts/bench_serve_fleet.sh [build-dir] [requests] [tenants]
#   scripts/bench_serve_fleet.sh                # ./build, 200k, 1000
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
requests="${2:-200000}"
tenants="${3:-1000}"
out="${repo_root}/bench/BENCH_serve_fleet.json"

cmake --build "${build_dir}" --target zerotune_cli -j "$(nproc)" >&2
cli="${build_dir}/tools/zerotune_cli"
[[ -x "${cli}" ]] || { echo "zerotune_cli not found at ${cli}" >&2; exit 1; }

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
printf 'source(rate=150000, schema=ddi)\n  | filter(sel=0.6)\n  | sink\n' \
  > "${workdir}/q.dsl"
"${cli}" compile --dsl "${workdir}/q.dsl" --out "${workdir}/q.plan" >&2
# serve-sim needs a deployed (parallel) plan; tune one with a small
# freshly-trained model, same as the CLI workflow tests.
"${cli}" collect --count 40 --seed 5 --out "${workdir}/corpus.txt" >&2
"${cli}" train --corpus "${workdir}/corpus.txt" \
  --model-out "${workdir}/model.txt" --epochs 3 --hidden 8 >&2
"${cli}" tune --model "${workdir}/model.txt" --query "${workdir}/q.plan" \
  --cluster m510:4 --out "${workdir}/deployed.plan" >&2

threads=4
cat > "${workdir}/row.py" <<'PY'
import json, sys
replicas = int(sys.argv[1])
d = json.load(sys.stdin)
s = d["stats"]
lat = s["latency_ms"]
print(json.dumps({
    "replicas": replicas,
    "rps": round(d["rps"], 1),
    "wall_s": round(d["wall_s"], 4),
    "availability": s["availability"],
    "p50_ms": round(lat.get("p50", 0.0), 4),
    "p99_ms": round(lat.get("p99", 0.0), 4),
    "answered": s["answered"],
    "failovers": s["failovers"],
    "kills": s["kills"],
    "restarts": s["restarts"],
}, indent=4))
PY
{
  printf '{\n'
  printf '  "benchmark": "serve_fleet",\n'
  printf '  "requests": %s,\n' "${requests}"
  printf '  "tenants": %s,\n' "${tenants}"
  printf '  "threads": %s,\n' "${threads}"
  printf '  "kill_replica_every": 20000,\n'
  printf '  "fail_rate": 0.05,\n'
  printf '  "seed": 2024,\n'
  printf '  "runs": [\n'
  first=1
  for replicas in 1 2 4 8; do
    json="$("${cli}" serve-sim --plan "${workdir}/deployed.plan" \
      --requests "${requests}" --tenants "${tenants}" \
      --replicas "${replicas}" --threads "${threads}" \
      --kill-replica-every 20000 --fail-rate 0.05 --seed 2024 \
      --format json)"
    row="$(python3 "${workdir}/row.py" "${replicas}" <<<"${json}")"
    [[ ${first} -eq 1 ]] || printf ',\n'
    first=0
    printf '%s' "${row}" | sed 's/^/    /'
  done
  printf '\n  ]\n}\n'
} > "${out}"
echo "wrote ${out}" >&2
python3 -m json.tool "${out}" > /dev/null
