#!/usr/bin/env bash
# Static-analysis gate for the repository.
#
# Preferred mode: clang-tidy over every source file, driven by the
# compile_commands.json that CMake exports (CMAKE_EXPORT_COMPILE_COMMANDS
# is on in the top-level CMakeLists). The check set lives in .clang-tidy.
#
# Fallback mode: containers without clang-tidy (the CI sanitizer image,
# for one) still get a meaningful gate — a -Wall -Wextra -Werror build in
# a dedicated build tree. With Status and Result<T> marked [[nodiscard]],
# this promotes every silently dropped error to a build failure.
#
# Both modes additionally run:
#   - ztlint (tools/ztlint): the project-invariant checker (clock/rng/
#     thread/lock discipline, ZT-Sxxx catalog in docs/static_analysis.md)
#     over src/.
#   - clang-format --dry-run -Werror over the tracked sources when
#     clang-format is installed (skipped gracefully otherwise).
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir defaults to build-lint (created on demand).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-lint}"
jobs="$(nproc)"

configure() {
  # Skip the (slow) reconfigure when the cache already matches.
  if [[ ! -f "${build_dir}/CMakeCache.txt" ]]; then
    cmake -S "${repo_root}" -B "${build_dir}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DZEROTUNE_WERROR=ON
  fi
}

run_ztlint() {
  cmake --build "${build_dir}" -j "${jobs}" --target ztlint
  "${build_dir}/tools/ztlint/ztlint" "${repo_root}/src"
  echo "ztlint passed"
}

check_format() {
  if ! command -v clang-format >/dev/null 2>&1; then
    echo "clang-format not found; skipping the format check"
    return 0
  fi
  # Deliberately malformed lint fixtures are exempt.
  mapfile -t files < <(cd "${repo_root}" &&
    git ls-files '*.h' '*.cc' '*.cpp' | grep -v '^tests/fixtures/' | sort)
  echo "clang-format --dry-run over ${#files[@]} files"
  (cd "${repo_root}" && clang-format --dry-run -Werror "${files[@]}")
  echo "format check passed"
}

if command -v clang-tidy >/dev/null 2>&1; then
  configure
  # clang-tidy needs the compilation database, not the build outputs.
  mapfile -t sources < <(cd "${repo_root}" &&
    find src tools tests -name '*.cc' | sort)
  echo "clang-tidy over ${#sources[@]} files (checks from .clang-tidy)"
  if command -v run-clang-tidy >/dev/null 2>&1; then
    (cd "${repo_root}" && run-clang-tidy -p "${build_dir}" -quiet \
      -j "${jobs}" "${sources[@]}")
  else
    (cd "${repo_root}" && clang-tidy -p "${build_dir}" --quiet \
      "${sources[@]}")
  fi
  run_ztlint
  check_format
  echo "lint passed (clang-tidy + ztlint)"
else
  echo "clang-tidy not found; falling back to a -Werror warning gate"
  configure
  cmake --build "${build_dir}" -j "${jobs}"
  run_ztlint
  check_format
  echo "lint passed (-Wall -Wextra -Werror build + ztlint)"
fi
