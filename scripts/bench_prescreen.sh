#!/usr/bin/env bash
# Runs the two-tier scoring benchmark (analytical pre-screen vs
# exhaustive GNN scoring across the fig10 structures at 64/256/1024
# cores) and writes bench/BENCH_prescreen.json.
#
# Usage: scripts/bench_prescreen.sh [build-dir]
#   scripts/bench_prescreen.sh          # ./build
# Honors the usual bench scale knobs (ZEROTUNE_BENCH_FAST=1 /
# ZEROTUNE_BENCH_FULL=1).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out="${repo_root}/bench/BENCH_prescreen.json"

cmake --build "${build_dir}" --target bench_prescreen -j "$(nproc)" >&2
bin="${build_dir}/bench/bench_prescreen"
[[ -x "${bin}" ]] || { echo "bench_prescreen not found at ${bin}" >&2; exit 1; }

"${bin}" > "${out}"
echo "wrote ${out}" >&2
python3 -m json.tool "${out}" > /dev/null
