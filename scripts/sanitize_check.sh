#!/usr/bin/env bash
# Builds the project under sanitizers and runs the test suite. Any memory
# error, UB, or data race aborts the run with a report.
#
# Usage: scripts/sanitize_check.sh [ctest-regex]
#   scripts/sanitize_check.sh                  # full suite, ASan+UBSan
#   scripts/sanitize_check.sh Robust           # only robustness tests
#
# Config via ZEROTUNE_SANITIZE:
#   ZEROTUNE_SANITIZE=thread scripts/sanitize_check.sh PredictBatch
# builds with ThreadSanitizer instead (its own build dir), the right
# choice for the thread-pool-sharded batched inference and the
# data-parallel trainer. Any other value is passed straight to the
# -fsanitize= build flags; default is "address;undefined".
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sanitize="${ZEROTUNE_SANITIZE:-address;undefined}"
filter="${1:-}"

case "${sanitize}" in
  thread)
    build_dir="${repo_root}/build-tsan"
    # second_deadlock_stack gives both lock orders on deadlock reports.
    export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
    ;;
  *)
    build_dir="${repo_root}/build-asan"
    # halt_on_error makes UBSan findings fail the test run instead of just
    # printing; detect_leaks stays on (the default) to catch allocation
    # leaks in the IO error paths.
    export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
    export ASAN_OPTIONS="abort_on_error=1"
    ;;
esac

# Reconfigure only when the cached ZEROTUNE_SANITIZE differs from the
# requested one; repeat runs against a warm build tree go straight to the
# (incremental) build instead of re-running cmake.
if ! grep -qsF "ZEROTUNE_SANITIZE:STRING=${sanitize}" \
    "${build_dir}/CMakeCache.txt"; then
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DZEROTUNE_SANITIZE="${sanitize}" \
    -DZEROTUNE_BUILD_BENCHMARKS=OFF \
    -DZEROTUNE_BUILD_EXAMPLES=OFF
fi
cmake --build "${build_dir}" -j "$(nproc)"

# A global per-test timeout turns a hang (the serving layer's cardinal
# failure mode) into a test failure instead of a stuck CI job; sanitizer
# slowdown is why it is generous.
cd "${build_dir}"
if [[ -n "${filter}" ]]; then
  ctest --output-on-failure -j "$(nproc)" --timeout 300 -R "${filter}"
else
  ctest --output-on-failure -j "$(nproc)" --timeout 300
fi
echo "sanitize check passed (${sanitize})"
