#!/usr/bin/env bash
# Builds the project under AddressSanitizer + UndefinedBehaviorSanitizer and
# runs the test suite. Any memory error or UB aborts the run with a report.
#
# Usage: scripts/sanitize_check.sh [ctest-regex]
#   scripts/sanitize_check.sh                  # full suite
#   scripts/sanitize_check.sh Robust           # only robustness tests
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-asan"
filter="${1:-}"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DZEROTUNE_SANITIZE="address;undefined" \
  -DZEROTUNE_BUILD_BENCHMARKS=OFF \
  -DZEROTUNE_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the test run instead of just
# printing; detect_leaks stays on (the default) to catch allocation leaks
# in the IO error paths.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="abort_on_error=1"

cd "${build_dir}"
if [[ -n "${filter}" ]]; then
  ctest --output-on-failure -j "$(nproc)" -R "${filter}"
else
  ctest --output-on-failure -j "$(nproc)"
fi
echo "sanitize check passed"
