#!/usr/bin/env bash
# Runs the micro-perf trajectory (encoder / message-passing / readout
# kernels plus end-to-end PredictBatch, each under scalar / simd / fp32 /
# int8) and writes bench/BENCH_micro_perf.json.
#
# Usage: scripts/bench_micro_perf.sh [build-dir]
#   scripts/bench_micro_perf.sh          # ./build
# Honors ZEROTUNE_BENCH_FAST=1 (fewer, shorter samples).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out="${repo_root}/bench/BENCH_micro_perf.json"

cmake --build "${build_dir}" --target bench_micro_perf -j "$(nproc)" >&2
bin="${build_dir}/bench/bench_micro_perf"
[[ -x "${bin}" ]] || { echo "bench_micro_perf not found at ${bin}" >&2; exit 1; }

"${bin}" --trajectory > "${out}"
echo "wrote ${out}" >&2
python3 -m json.tool "${out}" > /dev/null
