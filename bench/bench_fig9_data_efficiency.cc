// Figure 9: data-efficient training — accuracy of models trained with the
// OptiSample strategy vs random parallelism enumeration (ZT-Random), as a
// function of (a) the number of training queries and (b) training time.
#include <iostream>

#include "bench_util.h"
#include "core/trainer.h"

using namespace zerotune;

int main() {
  const auto scale = bench::BenchScale::FromEnv();
  ThreadPool pool;
  bench::Banner("Fig. 9 — OptiSample vs ZT-Random data efficiency");

  core::OptiSampleEnumerator optisample;
  core::RandomEnumerator random_enum;

  // Shared evaluation corpora (labeled with OptiSample-style deployments
  // for "seen"-range plans, plus unseen structures).
  core::DatasetBuilderOptions seen_opts;
  seen_opts.count = scale.test_queries_per_type * 3;
  seen_opts.seed = 0xeea1;
  seen_opts.pool = &pool;
  const workload::Dataset seen_eval =
      core::BuildDataset(optisample, seen_opts).value();

  core::DatasetBuilderOptions unseen_opts;
  unseen_opts.count = scale.test_queries_per_type * 2;
  unseen_opts.seed = 0xeeb2;
  unseen_opts.structures = {workload::QueryStructure::kThreeChainedFilters,
                            workload::QueryStructure::kFourWayJoin};
  unseen_opts.pool = &pool;
  const workload::Dataset unseen_eval =
      core::BuildDataset(optisample, unseen_opts).value();

  std::vector<size_t> corpus_sizes = {500, 1000, 2000, 4000};
  if (scale.train_queries >= 8000) corpus_sizes.push_back(8000);
  if (scale.train_queries <= 1000) corpus_sizes = {250, 500, 1000};

  TextTable table({"Strategy", "#train queries", "Seen lat median",
                   "Unseen lat median", "Train time s"});
  for (const auto& [strategy_name, enumerator] :
       std::vector<std::pair<std::string, const core::ParallelismEnumerator*>>{
           {"OptiSample", &optisample}, {"ZT-Random", &random_enum}}) {
    for (size_t n : corpus_sizes) {
      bench::BenchScale run_scale = scale;
      run_scale.train_queries = n;
      run_scale.epochs = std::max<size_t>(15, scale.epochs / 2);
      bench::TrainedSetup setup = bench::TrainModel(
          *enumerator, run_scale, &pool, /*seed=*/0x99 + n);
      const auto seen = core::Trainer::Evaluate(*setup.model, seen_eval);
      const auto unseen = core::Trainer::Evaluate(*setup.model, unseen_eval);
      table.AddRow({strategy_name, std::to_string(n),
                    TextTable::Fmt(seen.latency.median),
                    TextTable::Fmt(unseen.latency.median),
                    TextTable::Fmt(setup.train_seconds, 1)});
    }
  }
  bench::EmitTable("fig9_data_efficiency", table);
  std::cout << "Expected shape: OptiSample reaches a given accuracy with\n"
               "roughly a quarter to half of the queries (and about half\n"
               "the training time) that ZT-Random needs (paper V-D).\n";
  return 0;
}
