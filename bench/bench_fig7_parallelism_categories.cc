// Figure 7: q-errors per parallelism-degree category (XS/S/M/L/XL) for
// (a) seen plans, (b) unseen benchmark plans, (c) plans on unseen
// homogeneous/heterogeneous hardware, and (d) zero-shot vs few-shot on
// unseen complex plans.
#include <iostream>

#include "bench_util.h"
#include "core/trainer.h"
#include "workload/generator.h"

using namespace zerotune;

namespace {

const char* kCategories[] = {"XS", "S", "M", "L", "XL"};

void AddCategoryRows(TextTable* table, const std::string& label,
                     const core::ZeroTuneModel& model,
                     const workload::Dataset& data) {
  for (const char* cat : kCategories) {
    const workload::Dataset subset = data.FilterCategory(cat);
    if (subset.empty()) {
      table->AddRow({label, cat, "-", "-", "-", "-", "0"});
      continue;
    }
    const auto eval = core::Trainer::Evaluate(model, subset);
    table->AddRow({label, cat, TextTable::Fmt(eval.latency.median),
                   TextTable::Fmt(eval.latency.p95),
                   TextTable::Fmt(eval.throughput.median),
                   TextTable::Fmt(eval.throughput.p95),
                   std::to_string(subset.size())});
  }
}

}  // namespace

int main() {
  const auto scale = bench::BenchScale::FromEnv();
  ThreadPool pool;
  bench::Banner("Fig. 7 — fine-grained parallelism analysis (XS..XL)");

  core::OptiSampleEnumerator enumerator;
  bench::TrainedSetup setup =
      bench::TrainModel(enumerator, scale, &pool, /*seed=*/1717);

  TextTable table({"Plot", "Category", "Lat median", "Lat 95th",
                   "Tpt median", "Tpt 95th", "#queries"});

  // (a) Seen plans: the held-out test split.
  AddCategoryRows(&table, "(a) seen", *setup.model, setup.test);

  // (b) Unseen benchmark plans.
  workload::Dataset bench_ds;
  for (auto s : workload::BenchmarkStructures()) {
    core::DatasetBuilderOptions opts;
    opts.seed = 0x7b + static_cast<uint64_t>(s);
    bench_ds.Append(core::BuildBenchmarkDataset(
        s, scale.test_queries_per_type / 2, enumerator, opts).value());
  }
  AddCategoryRows(&table, "(b) benchmark", *setup.model, bench_ds);

  // (c) Unseen hardware: training structures on unseen node types.
  for (const auto& [label, types] :
       std::vector<std::pair<std::string, std::vector<std::string>>>{
           {"(c) unseen-Ho", {"c6420"}},
           {"(c) unseen-He",
            {"c8220x", "c8220", "dss7500", "c6320", "rs6525"}}}) {
    core::DatasetBuilderOptions opts;
    opts.count = scale.test_queries_per_type * 2;
    opts.seed = 0xc0de + types.size();
    opts.pool = &pool;
    opts.generator.overrides.cluster_types = types;
    workload::Dataset ds = core::BuildDataset(enumerator, opts).value();
    AddCategoryRows(&table, label, *setup.model, ds);
  }

  // (d) Unseen complex plans, zero-shot then few-shot.
  const std::vector<workload::QueryStructure> complex_joins = {
      workload::QueryStructure::kFourWayJoin,
      workload::QueryStructure::kFiveWayJoin,
      workload::QueryStructure::kSixWayJoin};
  core::DatasetBuilderOptions uopts;
  uopts.count = scale.test_queries_per_type * 2;
  uopts.seed = 0xd00d;
  uopts.structures = complex_joins;
  uopts.pool = &pool;
  const workload::Dataset unseen_ds =
      core::BuildDataset(enumerator, uopts).value();
  AddCategoryRows(&table, "(d) zero-shot", *setup.model, unseen_ds);

  core::DatasetBuilderOptions fopts;
  fopts.count = 500;
  fopts.seed = 0xf00;
  fopts.structures = complex_joins;
  fopts.pool = &pool;
  const auto fs_corpus = core::BuildDataset(enumerator, fopts).value();
  Rng rng(5);
  workload::Dataset fs_train, fs_val, fs_test;
  ZT_CHECK_OK(fs_corpus.Split(0.9, 0.1, &rng, &fs_train, &fs_val, &fs_test));
  core::TrainOptions ft;
  ft.epochs = std::max<size_t>(10, scale.epochs / 3);
  ft.fit_target_stats = false;
  ft.learning_rate = 3e-4;
  ft.pool = &pool;
  core::Trainer(setup.model.get(), ft).Train(fs_train, fs_val).value();
  AddCategoryRows(&table, "(d) few-shot", *setup.model, unseen_ds);

  bench::EmitTable("fig7_parallelism_categories", table);
  std::cout << "Expected shape: q-errors rise mildly towards XL; few-shot\n"
               "tightens (d); benchmarks concentrate in XS/S (paper V-B).\n";
  return 0;
}
