// Figure 8: median q-errors when inter-/extrapolating individual workload
// parameters — (a) tuple width, (b) event rate, (c) window duration,
// (d) window length, (e) number of workers. White = training range,
// shaded (here marked "unseen") = outside it.
#include <iostream>

#include "bench_util.h"
#include "common/statistics.h"
#include "core/trainer.h"
#include "workload/generator.h"

using namespace zerotune;

namespace {

struct SweepPoint {
  double value = 0.0;
  bool seen = false;
};

/// Builds a labeled corpus with one generator override pinned.
workload::Dataset SweepCorpus(
    const core::ParallelismEnumerator& enumerator, size_t count,
    uint64_t seed, ThreadPool* pool,
    const std::function<void(workload::GeneratorOverrides*)>& pin) {
  core::DatasetBuilderOptions opts;
  opts.count = count;
  opts.seed = seed;
  opts.pool = pool;
  pin(&opts.generator.overrides);
  return core::BuildDataset(enumerator, opts).value();
}

}  // namespace

int main() {
  const auto scale = bench::BenchScale::FromEnv();
  const size_t per_point = std::max<size_t>(30, scale.test_queries_per_type / 2);
  ThreadPool pool;
  bench::Banner("Fig. 8 — generalization for unseen parameters");

  core::OptiSampleEnumerator enumerator;
  bench::TrainedSetup setup =
      bench::TrainModel(enumerator, scale, &pool, /*seed=*/3131);

  TextTable table({"Sweep", "Value", "Range", "Lat median", "Tpt median",
                   "#queries"});
  auto add_point = [&](const std::string& sweep, const SweepPoint& point,
                       const workload::Dataset& ds) {
    const auto eval = core::Trainer::Evaluate(*setup.model, ds);
    table.AddRow({sweep, TextTable::Fmt(point.value, 0),
                  point.seen ? "seen" : "unseen",
                  TextTable::Fmt(eval.latency.median),
                  TextTable::Fmt(eval.throughput.median),
                  std::to_string(ds.size())});
  };

  uint64_t seed = 0x8000;

  // (a) Tuple width 1..15.
  for (int width = 1; width <= 15; width += 2) {
    const SweepPoint p{static_cast<double>(width), width <= 5};
    const auto ds = SweepCorpus(enumerator, per_point, ++seed, &pool,
                                [&](workload::GeneratorOverrides* o) {
                                  o->tuple_width = width;
                                });
    add_point("(a) tuple width", p, ds);
  }

  // (b) Event rate across and beyond the training range.
  for (double rate : {50.0, 300.0, 1000.0, 4000.0, 20000.0, 175000.0,
                      1000000.0, 2000000.0, 4000000.0}) {
    const auto& seen_rates = workload::ParameterSpace::SeenEventRates();
    const bool seen = std::find(seen_rates.begin(), seen_rates.end(), rate) !=
                      seen_rates.end();
    const auto ds = SweepCorpus(enumerator, per_point, ++seed, &pool,
                                [&](workload::GeneratorOverrides* o) {
                                  o->event_rate = rate;
                                });
    add_point("(b) event rate", SweepPoint{rate, seen}, ds);
  }

  // (c) Time-window duration (ms).
  for (double dur : {50.0, 150.0, 250.0, 750.0, 1000.0, 3000.0, 6000.0,
                     10000.0}) {
    const auto& seen_durs = workload::ParameterSpace::SeenWindowDurations();
    const bool seen = std::find(seen_durs.begin(), seen_durs.end(), dur) !=
                      seen_durs.end();
    const auto ds = SweepCorpus(enumerator, per_point, ++seed, &pool,
                                [&](workload::GeneratorOverrides* o) {
                                  o->window_policy = dsp::WindowPolicy::kTime;
                                  o->window_duration_ms = dur;
                                });
    add_point("(c) window duration", SweepPoint{dur, seen}, ds);
  }

  // (d) Count-window length (tuples).
  for (double len : {2.0, 5.0, 17.0, 50.0, 100.0, 200.0, 400.0}) {
    const auto& seen_lens = workload::ParameterSpace::SeenWindowLengths();
    const bool seen = std::find(seen_lens.begin(), seen_lens.end(), len) !=
                      seen_lens.end();
    const auto ds = SweepCorpus(enumerator, per_point, ++seed, &pool,
                                [&](workload::GeneratorOverrides* o) {
                                  o->window_policy = dsp::WindowPolicy::kCount;
                                  o->window_length = len;
                                });
    add_point("(d) window length", SweepPoint{len, seen}, ds);
  }

  // (e) Number of workers.
  for (int workers : {2, 3, 4, 6, 8, 10}) {
    const auto& seen_w = workload::ParameterSpace::SeenWorkerCounts();
    const bool seen =
        std::find(seen_w.begin(), seen_w.end(), workers) != seen_w.end();
    const auto ds = SweepCorpus(enumerator, per_point, ++seed, &pool,
                                [&](workload::GeneratorOverrides* o) {
                                  o->num_workers = workers;
                                });
    add_point("(e) workers", SweepPoint{static_cast<double>(workers), seen},
              ds);
  }

  bench::EmitTable("fig8_unseen_params", table);
  std::cout << "Expected shape: medians stay low across seen points and\n"
               "degrade only mildly on the unseen (extrapolation) side —\n"
               "worst for very small windows / very low rates (paper V-C).\n";
  return 0;
}
