// Design-choice ablation (beyond the paper's figures): sensitivity of the
// learned cost model to the label measurement noise of the ground-truth
// engine. For each noise level σ we collect a corpus, train, and report
// q-errors against (a) noisy held-out labels and (b) the noiseless truth
// for the same plans. The irreducible part of (a) should track the noise
// floor median q-error E[max(X,1/X)] of lognormal measurement pairs,
// while (b) shows the model recovering the systematic cost structure.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/statistics.h"
#include "core/trainer.h"

using namespace zerotune;

int main() {
  const auto scale = bench::BenchScale::FromEnv();
  ThreadPool pool;
  bench::Banner("Ablation — label-noise sensitivity of the cost model");

  core::OptiSampleEnumerator enumerator;
  TextTable table({"sigma", "Lat median (noisy labels)",
                   "Lat median (noiseless truth)", "Noise floor (approx)"});

  for (const double sigma : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    core::DatasetBuilderOptions opts;
    opts.count = std::max<size_t>(800, scale.train_queries / 3);
    opts.seed = 0x4015e;
    opts.pool = &pool;
    opts.cost_params.noise_sigma = sigma;
    const workload::Dataset corpus =
        core::BuildDataset(enumerator, opts).value();
    Rng rng(11);
    workload::Dataset train, val, test;
    ZT_CHECK_OK(corpus.Split(0.8, 0.1, &rng, &train, &val, &test));

    core::ModelConfig config;
    config.hidden_dim = scale.hidden_dim;
    core::ZeroTuneModel model(config);
    core::TrainOptions topts;
    topts.epochs = std::max<size_t>(20, scale.epochs / 2);
    topts.pool = &pool;
    core::Trainer(&model, topts).Train(train, val).value();

    // (a) Against the noisy labels the corpus carries.
    const auto noisy_eval = core::Trainer::Evaluate(model, test);

    // (b) Against noiseless re-measurements of the same plans.
    sim::CostParams clean = opts.cost_params;
    clean.noise_sigma = 0.0;
    const sim::CostEngine clean_engine(clean);
    std::vector<double> clean_qerrors;
    for (const auto& s : test.samples()) {
      const auto truth = clean_engine.MeasureNoiseless(s.plan).value();
      const auto pred = model.Predict(s.plan).value();
      clean_qerrors.push_back(QError(truth.latency_ms, pred.latency_ms));
    }

    // The prediction-vs-noisy-label q-error floor for a perfect model is
    // median(exp(|N(0,σ)|)) = exp(σ·Φ⁻¹(0.75)) ≈ exp(0.6745σ).
    const double floor = std::exp(0.6745 * sigma);

    table.AddRow({TextTable::Fmt(sigma),
                  TextTable::Fmt(noisy_eval.latency.median),
                  TextTable::Fmt(Median(clean_qerrors)),
                  TextTable::Fmt(floor)});
  }
  bench::EmitTable("ablation_noise", table);
  std::cout << "Expected shape: the noisy-label median tracks (and stays\n"
               "above) the analytic noise floor, while the noiseless-truth\n"
               "median stays flat — the model learns the systematic cost\n"
               "structure, not the measurement noise.\n";
  return 0;
}
