// Figure 3: effect of parallelism degree and operator chaining on the
// costs of a linear query with a count-based tumbling window. Sweeps the
// uniform parallelism degree (sources included, as in the paper's setup
// where the input rate targets maximum cluster utilization) and reports
// latency/throughput with operator chaining enabled (equal degrees ->
// forward edges -> chained) and with the chain deliberately broken,
// reproducing the discontinuity the paper highlights in blue.
#include <iostream>

#include "bench_util.h"
#include "sim/cost_engine.h"

using namespace zerotune;

namespace {

dsp::QueryPlan Fig3Query(double event_rate) {
  dsp::QueryPlan q;
  dsp::SourceProperties s;
  s.event_rate = event_rate;
  s.schema = dsp::TupleSchema::Uniform(3, dsp::DataType::kDouble);
  const int src = q.AddSource(s);
  dsp::FilterProperties f;
  f.selectivity = 0.9;
  int tail = src;
  for (int i = 0; i < 3; ++i) {
    tail = q.AddFilter(tail, f).value();
  }
  dsp::AggregateProperties a;
  a.window = dsp::WindowSpec{dsp::WindowType::kTumbling,
                             dsp::WindowPolicy::kCount, 50, 50};
  a.selectivity = 0.1;
  const int agg = q.AddWindowAggregate(tail, a).value();
  ZT_CHECK_OK(q.AddSink(agg));
  return q;
}

}  // namespace

int main() {
  bench::Banner(
      "Fig. 3 — parallelism degree & operator chaining micro-benchmark");

  // Input rate sized for maximum utilization of the cluster (paper: "the
  // input event rate is meant to achieve maximum utilization").
  const double event_rate = 4000000.0;
  const dsp::QueryPlan query = Fig3Query(event_rate);
  // Two 64-core AMD nodes: headroom for degrees up to 128.
  const dsp::Cluster cluster =
      dsp::Cluster::Homogeneous("rs6525", 2).value();

  sim::CostParams params;
  params.noise_sigma = 0.0;
  const sim::CostEngine engine(params);

  TextTable table({"P", "Latency ms (chained)", "Latency ms (no chain)",
                   "Tput/s (chained)", "Tput/s (no chain)", "Grouping#"});
  for (int degree : {1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128}) {
    if (degree > cluster.TotalCores()) break;

    // Chained: equal degrees everywhere -> source+filters form one chain.
    dsp::ParallelQueryPlan chained(query, cluster);
    ZT_CHECK_OK(
        chained.SetUniformParallelism(degree, /*pin_endpoints=*/false));
    ZT_CHECK_OK(chained.PlaceRoundRobin());

    // Unchained: force rebalance on every filter input, which is what
    // running the operators in separate slot-sharing groups does.
    dsp::ParallelQueryPlan unchained(query, cluster);
    ZT_CHECK_OK(
        unchained.SetUniformParallelism(degree, /*pin_endpoints=*/false));
    for (int op = 1; op <= 3; ++op) {
      ZT_CHECK_OK(
          unchained.SetPartitioning(op, dsp::PartitioningStrategy::kRebalance));
    }
    ZT_CHECK_OK(unchained.PlaceRoundRobin());

    const auto mc = engine.MeasureNoiseless(chained).value();
    const auto mu = engine.MeasureNoiseless(unchained).value();
    table.AddRow({std::to_string(degree), TextTable::Fmt(mc.latency_ms),
                  TextTable::Fmt(mu.latency_ms),
                  TextTable::Fmt(mc.throughput_tps, 0),
                  TextTable::Fmt(mu.throughput_tps, 0),
                  std::to_string(chained.GroupingNumber(1))});
  }
  bench::EmitTable("fig3_parallelism_effect", table);
  std::cout << "Expected shape: latency falls / throughput rises with P;\n"
               "the chained configuration dominates the broken-chain one\n"
               "(the paper's blue-highlighted chaining effect).\n";
  return 0;
}
