// Graph-representation ablation (paper Sec. III-C2): compares the paper's
// chosen encoding — one node per logical operator, instance statistics
// collapsed (option 2) — against one node per operator *instance*
// (option 1). Reports graph sizes, training time, and accuracy on seen
// and unseen structures, reproducing the analysis that motivated the
// paper's choice ("4096 edges ... hardly any new information per node").
#include <iostream>

#include "bench_util.h"
#include "core/trainer.h"

using namespace zerotune;

namespace {

/// Average node/edge counts of the encoded test graphs.
std::pair<double, double> GraphSize(const workload::Dataset& data,
                                    const core::FeatureConfig& config) {
  double nodes = 0.0, edges = 0.0;
  for (const auto& s : data.samples()) {
    const auto g = core::BuildPlanGraph(s.plan, config);
    nodes += static_cast<double>(g.num_operators() + g.num_resources());
    edges += static_cast<double>(g.data_edges.size() +
                                 g.resource_edges.size() +
                                 g.mapping_edges.size());
  }
  const double n = static_cast<double>(std::max<size_t>(1, data.size()));
  return {nodes / n, edges / n};
}

}  // namespace

int main() {
  bench::BenchScale scale = bench::BenchScale::FromEnv();
  // Per-instance graphs are big; keep the corpus moderate so this bench
  // stays in the minutes range even at default scale.
  scale.train_queries = std::min<size_t>(scale.train_queries, 1500);
  ThreadPool pool;
  bench::Banner("Ablation — graph representation (option 1 vs option 2)");

  core::OptiSampleEnumerator enumerator;

  // Shared unseen-structure evaluation corpus.
  core::DatasetBuilderOptions uopts;
  uopts.count = scale.test_queries_per_type;
  uopts.seed = 0x9ab5;
  uopts.structures = {workload::QueryStructure::kFourWayJoin};
  uopts.pool = &pool;
  const workload::Dataset unseen_eval =
      core::BuildDataset(enumerator, uopts).value();

  TextTable table({"Representation", "Avg nodes", "Avg edges",
                   "Train time s", "Seen lat median", "Unseen lat median"});
  for (const auto& [label, config] :
       std::vector<std::pair<std::string, core::FeatureConfig>>{
           {"option 2: collapsed (paper)", core::FeatureConfig::All()},
           {"option 1: per-instance", core::FeatureConfig::PerInstance()}}) {
    bench::TrainedSetup setup = bench::TrainModel(
        enumerator, scale, &pool, /*seed=*/0x6a9, {}, config);
    const auto [nodes, edges] = GraphSize(setup.test, config);
    const auto seen = core::Trainer::Evaluate(*setup.model, setup.test);
    const auto unseen = core::Trainer::Evaluate(*setup.model, unseen_eval);
    table.AddRow({label, TextTable::Fmt(nodes, 1), TextTable::Fmt(edges, 1),
                  TextTable::Fmt(setup.train_seconds, 1),
                  TextTable::Fmt(seen.latency.median),
                  TextTable::Fmt(unseen.latency.median)});
  }
  bench::EmitTable("ablation_graph", table);
  std::cout << "Expected shape: per-instance graphs are 1-2 orders of\n"
               "magnitude larger and slower to train without an accuracy\n"
               "win — the paper's Sec. III-C2 argument for collapsing\n"
               "parallel instances into one node.\n";
  return 0;
}
