// Google-benchmark microbenchmarks for the library's hot paths: graph
// encoding, GNN inference, analytical cost measurement, discrete-event
// simulation, and optimizer search.
//
// Two modes:
//   bench_micro_perf               google-benchmark suite (human-readable)
//   bench_micro_perf --trajectory  JSON perf trajectory on stdout, committed
//                                  as bench/BENCH_micro_perf.json via
//                                  scripts/bench_micro_perf.sh
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/cost_predictor.h"
#include "core/model.h"
#include "core/optimizer.h"
#include "core/oracle_predictor.h"
#include "core/plan_graph.h"
#include "nn/kernels.h"
#include "nn/quantized.h"
#include "sim/cost_engine.h"
#include "sim/event_simulator.h"
#include "workload/generator.h"

namespace {

using namespace zerotune;

dsp::ParallelQueryPlan MakePlan(workload::QueryStructure structure,
                                int degree) {
  workload::QueryGenerator gen({}, 99);
  auto g = gen.Generate(structure).value();
  dsp::ParallelQueryPlan plan(std::move(g.plan), std::move(g.cluster));
  ZT_CHECK_OK(plan.SetUniformParallelism(degree));
  ZT_CHECK_OK(plan.PlaceRoundRobin());
  return plan;
}

void BM_BuildPlanGraph(benchmark::State& state) {
  const auto plan = MakePlan(workload::QueryStructure::kThreeWayJoin,
                             static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildPlanGraph(plan));
  }
}
BENCHMARK(BM_BuildPlanGraph)->Arg(1)->Arg(8)->Arg(16);

void BM_ModelForward(benchmark::State& state) {
  core::ModelConfig cfg;
  cfg.hidden_dim = static_cast<size_t>(state.range(0));
  core::ZeroTuneModel model(cfg);
  const auto plan = MakePlan(workload::QueryStructure::kThreeWayJoin, 8);
  const auto graph = core::BuildPlanGraph(plan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictFromGraph(graph));
  }
}
BENCHMARK(BM_ModelForward)->Arg(24)->Arg(48)->Arg(96)->MinWarmUpTime(0.1);

void BM_CostEngineMeasure(benchmark::State& state) {
  const sim::CostEngine engine;
  const auto plan = MakePlan(workload::QueryStructure::kThreeWayJoin,
                             static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Measure(plan));
  }
}
BENCHMARK(BM_CostEngineMeasure)->Arg(1)->Arg(16);

void BM_EventSimulator(benchmark::State& state) {
  sim::EventSimulator::Options opts;
  opts.duration_s = 0.5;
  opts.warmup_s = 0.1;
  const sim::EventSimulator sim(opts);
  workload::QueryGenerator::Options gopts;
  gopts.overrides.event_rate = 2000.0;
  workload::QueryGenerator gen(gopts, 7);
  auto g = gen.Generate(workload::QueryStructure::kLinear).value();
  dsp::ParallelQueryPlan plan(std::move(g.plan), std::move(g.cluster));
  ZT_CHECK_OK(plan.SetUniformParallelism(2));
  ZT_CHECK_OK(plan.PlaceRoundRobin());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Run(plan));
  }
}
BENCHMARK(BM_EventSimulator);

/// Distinct parallelism candidates of one generated query — the
/// optimizer's scoring workload. Degrees vary combinatorially per
/// operator so no two candidates are identical; what the batched path
/// amortizes is the shared topology, cluster, and per-operator encodings.
std::vector<dsp::ParallelQueryPlan> CandidateSet(size_t n) {
  workload::QueryGenerator gen({}, 99);
  auto g = gen.Generate(workload::QueryStructure::kThreeWayJoin).value();
  std::vector<int> inner;
  for (const auto& op : g.plan.operators()) {
    if (op.type != dsp::OperatorType::kSource &&
        op.type != dsp::OperatorType::kSink) {
      inner.push_back(op.id);
    }
  }
  std::vector<dsp::ParallelQueryPlan> plans;
  for (size_t i = 0; plans.size() < n && i < 100 * n; ++i) {
    dsp::ParallelQueryPlan plan(g.plan, g.cluster);
    bool ok = true;
    size_t x = i;
    for (int id : inner) {
      ok = ok && plan.SetParallelism(id, 1 + static_cast<int>(x % 4)).ok();
      x /= 4;
    }
    if (!ok) continue;
    plan.DerivePartitioning();
    if (!plan.PlaceRoundRobin().ok() || !plan.Validate().ok()) continue;
    plans.push_back(std::move(plan));
  }
  return plans;
}

void BM_PredictSequential(benchmark::State& state) {
  core::ZeroTuneModel model;
  const auto plans = CandidateSet(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (const auto& p : plans) {
      benchmark::DoNotOptimize(model.Predict(p));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plans.size()));
}
BENCHMARK(BM_PredictSequential)->Arg(32)->Arg(128)->MinWarmUpTime(0.1);

void BM_PredictBatched(benchmark::State& state) {
  core::ZeroTuneModel model;
  const auto plans = CandidateSet(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PredictBatch(model, plans));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plans.size()));
}
BENCHMARK(BM_PredictBatched)->Arg(32)->Arg(128)->MinWarmUpTime(0.1);

void BM_PredictBatchedPooled(benchmark::State& state) {
  core::ZeroTuneModel model;
  ThreadPool pool;
  model.set_thread_pool(&pool);
  const auto plans = CandidateSet(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PredictBatch(model, plans));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plans.size()));
}
BENCHMARK(BM_PredictBatchedPooled)->Arg(128)->MinWarmUpTime(0.1);

void BM_OptimizerTune(benchmark::State& state) {
  core::OraclePredictor oracle;
  core::ParallelismOptimizer optimizer(&oracle);
  workload::QueryGenerator gen({}, 13);
  const auto g = gen.Generate(workload::QueryStructure::kTwoWayJoin).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.Tune(g.plan, g.cluster));
  }
}
BENCHMARK(BM_OptimizerTune);

/// End-to-end Tune() against the real GNN at cluster scale: args are
/// (m510 nodes, prescreen on/off). 8/32/128 nodes = 64/256/1024 cores.
/// The analytical tier's value shows as the on/off gap widening with the
/// cluster (more candidates enumerated, same handful GNN-scored).
void BM_TuneEndToEnd(benchmark::State& state) {
  core::ZeroTuneModel model;
  workload::QueryGenerator::Options gen_opts;
  gen_opts.overrides.event_rate = 500000;
  workload::QueryGenerator gen(gen_opts, 0xf1);
  const auto g = gen.Generate(workload::QueryStructure::kLinear).value();
  const auto cluster =
      dsp::Cluster::Homogeneous("m510", static_cast<int>(state.range(0)))
          .value();
  core::ParallelismOptimizer::Options opts;
  opts.prescreen.enabled = state.range(1) != 0;
  core::ParallelismOptimizer optimizer(&model, opts);
  size_t gnn_scored = 0;
  for (auto _ : state) {
    const auto tuned = optimizer.Tune(g.plan, cluster);
    ZT_CHECK_OK(tuned.status());
    gnn_scored = tuned.value().candidates_evaluated;
    benchmark::DoNotOptimize(tuned);
  }
  state.counters["gnn_scored"] = static_cast<double>(gnn_scored);
}
BENCHMARK(BM_TuneEndToEnd)
    ->ArgsProduct({{8, 32, 128}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// --- committed perf trajectory (--trajectory) ------------------------
//
// Emits a JSON document with one row per (stage, variant): the encoder /
// message-passing / readout GNN blocks on a 128-row batch, and the
// end-to-end batched scoring path over 128 distinct candidates, each
// under the scalar, simd, fp32 and int8 kernel configurations.
//
// Methodology (the committed numbers must be trustworthy):
//   - reps per sample are auto-calibrated so one sample spans at least a
//     few milliseconds (timer noise amortized away),
//   - warm-up samples run and are discarded before timing (caches, page
//     faults, branch predictors — no cold first iteration in the data),
//   - the reported value is the median of N samples, with the
//     interquartile range committed alongside as the spread.
// Timing uses the project Clock (ZT-S001), not raw std::chrono.

/// One timed configuration: median-of-N ns per operation plus spread.
struct TimingStats {
  double median_ns = 0.0;
  double p25_ns = 0.0;
  double p75_ns = 0.0;
  int reps = 0;
  int samples = 0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

TimingStats MeasureNs(Clock* clock, const std::function<void()>& fn,
                      int warmup, int samples, int64_t min_sample_ns) {
  // Calibrate: double reps until one sample spans min_sample_ns.
  int reps = 1;
  for (;;) {
    const int64_t t0 = clock->NowNanos();
    for (int i = 0; i < reps; ++i) fn();
    if (clock->NowNanos() - t0 >= min_sample_ns) break;
    reps *= 2;
  }
  for (int w = 0; w < warmup; ++w) {
    for (int i = 0; i < reps; ++i) fn();
  }
  std::vector<double> per_op;
  per_op.reserve(static_cast<size_t>(samples));
  for (int s = 0; s < samples; ++s) {
    const int64_t t0 = clock->NowNanos();
    for (int i = 0; i < reps; ++i) fn();
    const int64_t elapsed = clock->NowNanos() - t0;
    per_op.push_back(static_cast<double>(elapsed) / reps);
  }
  std::sort(per_op.begin(), per_op.end());
  TimingStats t;
  t.median_ns = Percentile(per_op, 0.50);
  t.p25_ns = Percentile(per_op, 0.25);
  t.p75_ns = Percentile(per_op, 0.75);
  t.reps = reps;
  t.samples = samples;
  return t;
}

struct TrajectoryRow {
  std::string stage;
  std::string variant;  // scalar | simd | fp32 | int8
  std::string isa;      // ISA actually dispatched while timing
  double items = 1.0;   // batch rows (stages) or candidates (end-to-end)
  TimingStats t;
};

int RunTrajectory() {
  const bool fast = std::getenv("ZEROTUNE_BENCH_FAST") != nullptr;
  const int kWarmup = fast ? 1 : 3;
  const int kSamples = fast ? 5 : 15;
  const int64_t kMinSampleNs = fast ? 500'000 : 4'000'000;
  constexpr size_t kBatchRows = 128;
  constexpr size_t kCandidates = 128;

  Clock* clock = SystemClock::Default();
  core::ZeroTuneModel model;
  const core::ZeroTuneModel::GnnBlocks blocks = model.blocks();
  const auto plans = CandidateSet(kCandidates);
  ZT_CHECK_OK(core::PredictBatch(model, plans).status());

  // Stage inputs. The encoder sees real featurized operator rows (sparse
  // one-hots matter to the scalar GEMM's zero-skip); the deeper blocks
  // see dense activations, modeled here as Gaussian values.
  const core::PlanGraph graph = core::BuildPlanGraph(plans.front());
  nn::Matrix enc_in(kBatchRows, blocks.op_encoder->in_features());
  for (size_t r = 0; r < enc_in.rows(); ++r) {
    const auto& row = graph.operator_features[r % graph.num_operators()];
    for (size_t c = 0; c < enc_in.cols(); ++c) enc_in(r, c) = row[c];
  }
  Rng rng(42);
  nn::Matrix mp_in(kBatchRows, blocks.flow_update->in_features());
  for (size_t i = 0; i < mp_in.size(); ++i) {
    mp_in.data()[i] = rng.Gaussian(0.0, 1.0);
  }
  nn::Matrix ro_in(kBatchRows, blocks.readout->in_features());
  for (size_t i = 0; i < ro_in.size(); ++i) {
    ro_in.data()[i] = rng.Gaussian(0.0, 1.0);
  }

  std::vector<TrajectoryRow> rows;
  const auto measure = [&](const char* stage, const char* variant,
                           bool force_scalar, double items,
                           const std::function<void()>& fn) {
    nn::kernels::ForceScalar(force_scalar);
    TrajectoryRow row;
    row.stage = stage;
    row.variant = variant;
    row.isa = nn::kernels::IsaName(nn::kernels::ActiveIsa());
    row.items = items;
    row.t = MeasureNs(clock, fn, kWarmup, kSamples, kMinSampleNs);
    nn::kernels::ForceScalar(false);
    rows.push_back(std::move(row));
    std::fprintf(stderr, "  %-16s %-6s %12.0f ns/op\n", stage, variant,
                 rows.back().t.median_ns);
  };

  struct StageDef {
    const char* name;
    const nn::Mlp* mlp;
    const nn::Matrix* in;
  };
  const StageDef stages[] = {
      {"encoder", blocks.op_encoder, &enc_in},
      {"message_passing", blocks.flow_update, &mp_in},
      {"readout", blocks.readout, &ro_in},
  };
  for (const StageDef& s : stages) {
    const double items = static_cast<double>(s.in->rows());
    const auto fp64 = [&s] {
      benchmark::DoNotOptimize(s.mlp->ForwardValue(*s.in));
    };
    measure(s.name, "scalar", /*force_scalar=*/true, items, fp64);
    measure(s.name, "simd", /*force_scalar=*/false, items, fp64);
    const nn::QuantizedMlp qf =
        nn::QuantizedMlp::FromMlp(*s.mlp, nn::QuantKind::kFp32);
    measure(s.name, "fp32", /*force_scalar=*/false, items,
            [&] { benchmark::DoNotOptimize(qf.ForwardValue(*s.in)); });
    const nn::QuantizedMlp qi =
        nn::QuantizedMlp::FromMlp(*s.mlp, nn::QuantKind::kInt8);
    measure(s.name, "int8", /*force_scalar=*/false, items,
            [&] { benchmark::DoNotOptimize(qi.ForwardValue(*s.in)); });
  }

  // End-to-end batched scoring: featurization + dedup + all eight GNN
  // blocks + decode, over kCandidates distinct parallelism candidates.
  const auto e2e = [&] {
    benchmark::DoNotOptimize(core::PredictBatch(model, plans));
  };
  const double n_cand = static_cast<double>(plans.size());
  measure("predict_batch", "scalar", /*force_scalar=*/true, n_cand, e2e);
  measure("predict_batch", "simd", /*force_scalar=*/false, n_cand, e2e);
  model.set_inference_precision(core::InferencePrecision::kFp32);
  measure("predict_batch", "fp32", /*force_scalar=*/false, n_cand, e2e);
  model.set_inference_precision(core::InferencePrecision::kInt8);
  measure("predict_batch", "int8", /*force_scalar=*/false, n_cand, e2e);
  model.set_inference_precision(core::InferencePrecision::kFp64);

  const auto scalar_median = [&rows](const std::string& stage) {
    for (const TrajectoryRow& r : rows) {
      if (r.stage == stage && r.variant == "scalar") return r.t.median_ns;
    }
    return 0.0;
  };

  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_perf_trajectory\",\n");
  std::printf("  \"generated_by\": \"scripts/bench_micro_perf.sh\",\n");
  std::printf("  \"simd_compiled_in\": %s,\n",
              nn::kernels::SimdCompiledIn() ? "true" : "false");
  std::printf("  \"active_isa\": \"%s\",\n",
              nn::kernels::IsaName(nn::kernels::ActiveIsa()));
  std::printf("  \"hidden_dim\": %zu,\n", blocks.readout->in_features());
  std::printf("  \"batch_rows\": %zu,\n", kBatchRows);
  std::printf("  \"candidates\": %zu,\n", plans.size());
  std::printf("  \"warmup_samples\": %d,\n", kWarmup);
  std::printf("  \"timed_samples\": %d,\n", kSamples);
  std::printf("  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const TrajectoryRow& r = rows[i];
    const double base = scalar_median(r.stage);
    const double speedup = r.t.median_ns > 0.0 ? base / r.t.median_ns : 0.0;
    const double iqr_rel =
        r.t.median_ns > 0.0 ? (r.t.p75_ns - r.t.p25_ns) / r.t.median_ns : 0.0;
    std::printf(
        "    {\"stage\": \"%s\", \"variant\": \"%s\", \"isa\": \"%s\",\n"
        "     \"median_ns\": %.0f, \"p25_ns\": %.0f, \"p75_ns\": %.0f,\n"
        "     \"iqr_rel\": %.4f, \"reps_per_sample\": %d,\n"
        "     \"items_per_op\": %.0f, \"items_per_s\": %.1f,\n"
        "     \"speedup_vs_scalar\": %.2f}%s\n",
        r.stage.c_str(), r.variant.c_str(), r.isa.c_str(), r.t.median_ns,
        r.t.p25_ns, r.t.p75_ns, iqr_rel, r.t.reps, r.items,
        r.items * 1e9 / r.t.median_ns, speedup,
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--trajectory") return RunTrajectory();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
