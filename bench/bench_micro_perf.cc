// Google-benchmark microbenchmarks for the library's hot paths: graph
// encoding, GNN inference, analytical cost measurement, discrete-event
// simulation, and optimizer search.
#include <benchmark/benchmark.h>

#include "core/model.h"
#include "core/optimizer.h"
#include "core/oracle_predictor.h"
#include "sim/cost_engine.h"
#include "sim/event_simulator.h"
#include "workload/generator.h"

namespace {

using namespace zerotune;

dsp::ParallelQueryPlan MakePlan(workload::QueryStructure structure,
                                int degree) {
  workload::QueryGenerator gen({}, 99);
  auto g = gen.Generate(structure).value();
  dsp::ParallelQueryPlan plan(std::move(g.plan), std::move(g.cluster));
  plan.SetUniformParallelism(degree);
  plan.PlaceRoundRobin();
  return plan;
}

void BM_BuildPlanGraph(benchmark::State& state) {
  const auto plan = MakePlan(workload::QueryStructure::kThreeWayJoin,
                             static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildPlanGraph(plan));
  }
}
BENCHMARK(BM_BuildPlanGraph)->Arg(1)->Arg(8)->Arg(16);

void BM_ModelForward(benchmark::State& state) {
  core::ModelConfig cfg;
  cfg.hidden_dim = static_cast<size_t>(state.range(0));
  core::ZeroTuneModel model(cfg);
  const auto plan = MakePlan(workload::QueryStructure::kThreeWayJoin, 8);
  const auto graph = core::BuildPlanGraph(plan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictFromGraph(graph));
  }
}
BENCHMARK(BM_ModelForward)->Arg(24)->Arg(48)->Arg(96);

void BM_CostEngineMeasure(benchmark::State& state) {
  const sim::CostEngine engine;
  const auto plan = MakePlan(workload::QueryStructure::kThreeWayJoin,
                             static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Measure(plan));
  }
}
BENCHMARK(BM_CostEngineMeasure)->Arg(1)->Arg(16);

void BM_EventSimulator(benchmark::State& state) {
  sim::EventSimulator::Options opts;
  opts.duration_s = 0.5;
  opts.warmup_s = 0.1;
  const sim::EventSimulator sim(opts);
  workload::QueryGenerator::Options gopts;
  gopts.overrides.event_rate = 2000.0;
  workload::QueryGenerator gen(gopts, 7);
  auto g = gen.Generate(workload::QueryStructure::kLinear).value();
  dsp::ParallelQueryPlan plan(std::move(g.plan), std::move(g.cluster));
  plan.SetUniformParallelism(2);
  plan.PlaceRoundRobin();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Run(plan));
  }
}
BENCHMARK(BM_EventSimulator);

void BM_OptimizerTune(benchmark::State& state) {
  core::OraclePredictor oracle;
  core::ParallelismOptimizer optimizer(&oracle);
  workload::QueryGenerator gen({}, 13);
  const auto g = gen.Generate(workload::QueryStructure::kTwoWayJoin).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.Tune(g.plan, g.cluster));
  }
}
BENCHMARK(BM_OptimizerTune);

}  // namespace

BENCHMARK_MAIN();
