// Google-benchmark microbenchmarks for the library's hot paths: graph
// encoding, GNN inference, analytical cost measurement, discrete-event
// simulation, and optimizer search.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/thread_pool.h"
#include "core/cost_predictor.h"
#include "core/model.h"
#include "core/optimizer.h"
#include "core/oracle_predictor.h"
#include "sim/cost_engine.h"
#include "sim/event_simulator.h"
#include "workload/generator.h"

namespace {

using namespace zerotune;

dsp::ParallelQueryPlan MakePlan(workload::QueryStructure structure,
                                int degree) {
  workload::QueryGenerator gen({}, 99);
  auto g = gen.Generate(structure).value();
  dsp::ParallelQueryPlan plan(std::move(g.plan), std::move(g.cluster));
  ZT_CHECK_OK(plan.SetUniformParallelism(degree));
  ZT_CHECK_OK(plan.PlaceRoundRobin());
  return plan;
}

void BM_BuildPlanGraph(benchmark::State& state) {
  const auto plan = MakePlan(workload::QueryStructure::kThreeWayJoin,
                             static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildPlanGraph(plan));
  }
}
BENCHMARK(BM_BuildPlanGraph)->Arg(1)->Arg(8)->Arg(16);

void BM_ModelForward(benchmark::State& state) {
  core::ModelConfig cfg;
  cfg.hidden_dim = static_cast<size_t>(state.range(0));
  core::ZeroTuneModel model(cfg);
  const auto plan = MakePlan(workload::QueryStructure::kThreeWayJoin, 8);
  const auto graph = core::BuildPlanGraph(plan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictFromGraph(graph));
  }
}
BENCHMARK(BM_ModelForward)->Arg(24)->Arg(48)->Arg(96);

void BM_CostEngineMeasure(benchmark::State& state) {
  const sim::CostEngine engine;
  const auto plan = MakePlan(workload::QueryStructure::kThreeWayJoin,
                             static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Measure(plan));
  }
}
BENCHMARK(BM_CostEngineMeasure)->Arg(1)->Arg(16);

void BM_EventSimulator(benchmark::State& state) {
  sim::EventSimulator::Options opts;
  opts.duration_s = 0.5;
  opts.warmup_s = 0.1;
  const sim::EventSimulator sim(opts);
  workload::QueryGenerator::Options gopts;
  gopts.overrides.event_rate = 2000.0;
  workload::QueryGenerator gen(gopts, 7);
  auto g = gen.Generate(workload::QueryStructure::kLinear).value();
  dsp::ParallelQueryPlan plan(std::move(g.plan), std::move(g.cluster));
  ZT_CHECK_OK(plan.SetUniformParallelism(2));
  ZT_CHECK_OK(plan.PlaceRoundRobin());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Run(plan));
  }
}
BENCHMARK(BM_EventSimulator);

/// Distinct parallelism candidates of one generated query — the
/// optimizer's scoring workload. Degrees vary combinatorially per
/// operator so no two candidates are identical; what the batched path
/// amortizes is the shared topology, cluster, and per-operator encodings.
std::vector<dsp::ParallelQueryPlan> CandidateSet(size_t n) {
  workload::QueryGenerator gen({}, 99);
  auto g = gen.Generate(workload::QueryStructure::kThreeWayJoin).value();
  std::vector<int> inner;
  for (const auto& op : g.plan.operators()) {
    if (op.type != dsp::OperatorType::kSource &&
        op.type != dsp::OperatorType::kSink) {
      inner.push_back(op.id);
    }
  }
  std::vector<dsp::ParallelQueryPlan> plans;
  for (size_t i = 0; plans.size() < n && i < 100 * n; ++i) {
    dsp::ParallelQueryPlan plan(g.plan, g.cluster);
    bool ok = true;
    size_t x = i;
    for (int id : inner) {
      ok = ok && plan.SetParallelism(id, 1 + static_cast<int>(x % 4)).ok();
      x /= 4;
    }
    if (!ok) continue;
    plan.DerivePartitioning();
    if (!plan.PlaceRoundRobin().ok() || !plan.Validate().ok()) continue;
    plans.push_back(std::move(plan));
  }
  return plans;
}

void BM_PredictSequential(benchmark::State& state) {
  core::ZeroTuneModel model;
  const auto plans = CandidateSet(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (const auto& p : plans) {
      benchmark::DoNotOptimize(model.Predict(p));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plans.size()));
}
BENCHMARK(BM_PredictSequential)->Arg(32)->Arg(128);

void BM_PredictBatched(benchmark::State& state) {
  core::ZeroTuneModel model;
  const auto plans = CandidateSet(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PredictBatch(model, plans));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plans.size()));
}
BENCHMARK(BM_PredictBatched)->Arg(32)->Arg(128);

void BM_PredictBatchedPooled(benchmark::State& state) {
  core::ZeroTuneModel model;
  ThreadPool pool;
  model.set_thread_pool(&pool);
  const auto plans = CandidateSet(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PredictBatch(model, plans));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plans.size()));
}
BENCHMARK(BM_PredictBatchedPooled)->Arg(128);

void BM_OptimizerTune(benchmark::State& state) {
  core::OraclePredictor oracle;
  core::ParallelismOptimizer optimizer(&oracle);
  workload::QueryGenerator gen({}, 13);
  const auto g = gen.Generate(workload::QueryStructure::kTwoWayJoin).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.Tune(g.plan, g.cluster));
  }
}
BENCHMARK(BM_OptimizerTune);

/// End-to-end Tune() against the real GNN at cluster scale: args are
/// (m510 nodes, prescreen on/off). 8/32/128 nodes = 64/256/1024 cores.
/// The analytical tier's value shows as the on/off gap widening with the
/// cluster (more candidates enumerated, same handful GNN-scored).
void BM_TuneEndToEnd(benchmark::State& state) {
  core::ZeroTuneModel model;
  workload::QueryGenerator::Options gen_opts;
  gen_opts.overrides.event_rate = 500000;
  workload::QueryGenerator gen(gen_opts, 0xf1);
  const auto g = gen.Generate(workload::QueryStructure::kLinear).value();
  const auto cluster =
      dsp::Cluster::Homogeneous("m510", static_cast<int>(state.range(0)))
          .value();
  core::ParallelismOptimizer::Options opts;
  opts.prescreen.enabled = state.range(1) != 0;
  core::ParallelismOptimizer optimizer(&model, opts);
  size_t gnn_scored = 0;
  for (auto _ : state) {
    const auto tuned = optimizer.Tune(g.plan, cluster);
    ZT_CHECK_OK(tuned.status());
    gnn_scored = tuned.value().candidates_evaluated;
    benchmark::DoNotOptimize(tuned);
  }
  state.counters["gnn_scored"] = static_cast<double>(gnn_scored);
}
BENCHMARK(BM_TuneEndToEnd)
    ->ArgsProduct({{8, 32, 128}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
