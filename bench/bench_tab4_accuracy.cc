// Table IV ① & ② plus Figures 1/5: q-errors of cost prediction on seen
// and unseen parallel query structures, for ZeroTune-OptiSample and the
// flat-vector baselines (linear regression, flat-vector MLP, random
// forest).
#include <iostream>

#include "baselines/flat_mlp.h"
#include "baselines/linear_model.h"
#include "baselines/random_forest.h"
#include "bench_util.h"
#include "common/statistics.h"

using namespace zerotune;

namespace {

/// Median/p95 q-errors of an arbitrary CostPredictor on a dataset.
struct Errors {
  QErrorSummary latency;
  QErrorSummary throughput;
};

Errors EvaluatePredictor(const core::CostPredictor& model,
                         const workload::Dataset& data) {
  std::vector<double> lat, tpt;
  for (const auto& s : data.samples()) {
    const auto p = model.Predict(s.plan);
    if (!p.ok()) continue;
    lat.push_back(QError(s.latency_ms, p.value().latency_ms));
    tpt.push_back(QError(s.throughput_tps, p.value().throughput_tps));
  }
  return Errors{SummarizeQErrors(lat), SummarizeQErrors(tpt)};
}

void AddErrorRow(TextTable* table, const std::string& group,
                 const std::string& name, const Errors& e) {
  table->AddRow({group, name, TextTable::Fmt(e.latency.median),
                 TextTable::Fmt(e.latency.p95),
                 TextTable::Fmt(e.throughput.median),
                 TextTable::Fmt(e.throughput.p95)});
}

}  // namespace

int main() {
  const auto scale = bench::BenchScale::FromEnv();
  ThreadPool pool;
  bench::Banner("Table IV ①② / Fig. 5 — accuracy on seen-unseen workloads");
  std::cout << "training corpus: " << scale.train_queries << " queries, "
            << scale.epochs << " epochs\n";

  core::OptiSampleEnumerator enumerator;
  bench::TrainedSetup setup =
      bench::TrainModel(enumerator, scale, &pool, /*seed=*/2024);
  std::cout << "ZeroTune trained in " << TextTable::Fmt(setup.train_seconds)
            << " s\n";

  // --- Table IV ①: seen structures (test split of the seen range). ---
  TextTable tab4({"Workload", "Query structure", "Lat median", "Lat 95th",
                  "Tpt median", "Tpt 95th"});
  for (auto s : workload::TrainingStructures()) {
    AddErrorRow(&tab4, "seen", workload::ToString(s),
                EvaluatePredictor(*setup.model,
                                  setup.test.FilterStructure(s)));
  }
  AddErrorRow(&tab4, "seen", "overall",
              EvaluatePredictor(*setup.model, setup.test));

  // --- Table IV ②: unseen structures. ---
  workload::Dataset unseen_all;
  for (auto s : workload::UnseenSyntheticStructures()) {
    core::DatasetBuilderOptions opts;
    opts.count = scale.test_queries_per_type;
    opts.seed = 0x5ee + static_cast<uint64_t>(s);
    opts.structures = {s};
    opts.pool = &pool;
    const auto ds = core::BuildDataset(enumerator, opts).value();
    AddErrorRow(&tab4, "unseen", workload::ToString(s),
                EvaluatePredictor(*setup.model, ds));
    unseen_all.Append(ds);
  }
  AddErrorRow(&tab4, "unseen", "overall",
              EvaluatePredictor(*setup.model, unseen_all));
  bench::EmitTable("tab4_accuracy_zerotune", tab4);

  // --- Fig. 5: model-architecture comparison on the same corpora. ---
  bench::Banner("Fig. 5 — ZeroTune vs flat-vector model architectures");
  baselines::LinearRegressionModel linreg;
  ZT_CHECK_OK(linreg.Fit(setup.train));
  baselines::FlatMlpModel::Options mlp_opts;
  mlp_opts.epochs = scale.epochs;
  baselines::FlatMlpModel flat_mlp(mlp_opts);
  ZT_CHECK_OK(flat_mlp.Fit(setup.train));
  baselines::RandomForestModel forest;
  ZT_CHECK_OK(forest.Fit(setup.train));

  TextTable fig5({"Model", "Seen lat median", "Seen lat 95th",
                  "Unseen lat median", "Unseen lat 95th"});
  auto add_model = [&](const core::CostPredictor& m) {
    const Errors seen = EvaluatePredictor(m, setup.test);
    const Errors unseen = EvaluatePredictor(m, unseen_all);
    fig5.AddRow({m.name(), TextTable::Fmt(seen.latency.median),
                 TextTable::Fmt(seen.latency.p95),
                 TextTable::Fmt(unseen.latency.median),
                 TextTable::Fmt(unseen.latency.p95)});
  };
  add_model(*setup.model);
  add_model(linreg);
  add_model(flat_mlp);
  add_model(forest);
  bench::EmitTable("fig5_architectures", fig5);
  std::cout << "Expected shape: ZeroTune close to 1 everywhere; flat-vector\n"
               "models degrade sharply on unseen structures (Fig. 1/5).\n";
  return 0;
}
