// Two-tier scoring benchmark: analytical pre-screen vs exhaustive GNN
// scoring, across the fig10 query structures and cluster scales
// (m510 x 8/32/128 nodes = 64/256/1024 cores).
//
// For every query the optimizer runs twice — prescreen off (every
// candidate GNN-scored, the historical behaviour) and prescreen on
// (analytical tier ranks, only the survivors reach the GNN) — and both
// chosen deployments are executed on the noiseless ground-truth engine.
// The claim under test: the pre-screen cuts GNN scoring work by >= 5x
// at 256 cores without moving the chosen-plan cost.
//
// Emits a single JSON document on stdout (tables and progress go to
// stderr); scripts/bench_prescreen.sh redirects it into
// bench/BENCH_prescreen.json.
#include <chrono>
#include <cmath>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "common/statistics.h"
#include "core/optimizer.h"
#include "sim/cost_engine.h"
#include "workload/generator.h"

using namespace zerotune;

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string Fmt(double v, int digits = 3) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(digits);
  out << v;
  return out.str();
}

/// One (structure, cluster) cell of the off/on comparison.
struct CellStats {
  size_t queries = 0;
  std::vector<double> gnn_off, gnn_on;
  std::vector<double> ranked_on, kept_on;
  std::vector<double> tune_ms_off, tune_ms_on;
  std::vector<double> cost_off, cost_on;  // Eq. 1 weighted, pair-normalized
  std::vector<double> log_lat_ratio, log_tpt_ratio;  // on vs off
};

}  // namespace

int main() {
  const auto scale = bench::BenchScale::FromEnv();
  const size_t queries_per_cell =
      std::max<size_t>(6, scale.test_queries_per_type / 15);
  ThreadPool pool;

  std::cerr << "bench_prescreen: training the GNN ("
            << scale.train_queries << " queries, " << scale.epochs
            << " epochs)...\n";
  core::OptiSampleEnumerator enumerator;
  bench::TrainedSetup setup =
      bench::TrainModel(enumerator, scale, &pool, /*seed=*/707);

  sim::CostParams noiseless;
  noiseless.noise_sigma = 0.0;
  const sim::CostEngine engine(noiseless);

  const std::vector<workload::QueryStructure> structures = {
      workload::QueryStructure::kLinear,
      workload::QueryStructure::kTwoWayJoin,
      workload::QueryStructure::kThreeWayJoin,
      workload::QueryStructure::kThreeChainedFilters,
      workload::QueryStructure::kFourWayJoin,
      workload::QueryStructure::kFiveWayJoin};
  const std::vector<int> node_counts = {8, 32, 128};
  const std::vector<double> heavy_rates = {50000, 100000, 250000, 500000,
                                           1000000};

  std::ostringstream rows;
  bool first_row = true;
  // Per-cluster-scale aggregates for the summary block.
  std::vector<double> all_reduction[3], all_cost_off[3], all_cost_on[3];

  for (size_t ni = 0; ni < node_counts.size(); ++ni) {
    const int nodes = node_counts[ni];
    const auto cluster = dsp::Cluster::Homogeneous("m510", nodes).value();
    for (auto structure : structures) {
      CellStats cell;
      for (size_t i = 0; i < queries_per_cell; ++i) {
        workload::QueryGenerator::Options gen_opts;
        gen_opts.overrides.event_rate = heavy_rates[i % heavy_rates.size()];
        workload::QueryGenerator gen(
            gen_opts, 0xb2b + static_cast<uint64_t>(structure) * 173 + i);
        const auto g = gen.Generate(structure);
        if (!g.ok()) continue;

        core::ParallelismOptimizer::Options off_opts;
        off_opts.prescreen.enabled = false;
        core::ParallelismOptimizer off(setup.model.get(), off_opts);
        core::ParallelismOptimizer::Options on_opts;
        on_opts.prescreen.enabled = true;
        core::ParallelismOptimizer on(setup.model.get(), on_opts);

        const double t0 = NowMs();
        const auto tuned_off = off.Tune(g.value().plan, cluster);
        const double t1 = NowMs();
        const auto tuned_on = on.Tune(g.value().plan, cluster);
        const double t2 = NowMs();
        if (!tuned_off.ok() || !tuned_on.ok()) continue;
        const auto m_off = engine.MeasureNoiseless(tuned_off.value().plan);
        const auto m_on = engine.MeasureNoiseless(tuned_on.value().plan);
        if (!m_off.ok() || !m_on.ok()) continue;

        cell.gnn_off.push_back(
            static_cast<double>(tuned_off.value().candidates_evaluated));
        cell.gnn_on.push_back(
            static_cast<double>(tuned_on.value().candidates_evaluated));
        cell.ranked_on.push_back(
            static_cast<double>(tuned_on.value().candidates_prescreened));
        cell.kept_on.push_back(
            static_cast<double>(tuned_on.value().prescreen_kept));
        cell.tune_ms_off.push_back(t1 - t0);
        cell.tune_ms_on.push_back(t2 - t1);

        // Eq. 1 weighted cost, normalized over the off/on pair the same
        // way fig10 scores ZeroTune against Dhalion. Identical chosen
        // plans land on 0.5 vs 0.5 — "equal cost" by construction.
        const double lo_l =
            std::min(m_off.value().latency_ms, m_on.value().latency_ms);
        const double hi_l =
            std::max(m_off.value().latency_ms, m_on.value().latency_ms);
        const double lo_t = std::min(m_off.value().throughput_tps,
                                     m_on.value().throughput_tps);
        const double hi_t = std::max(m_off.value().throughput_tps,
                                     m_on.value().throughput_tps);
        auto weighted = [&](double lat, double tpt) {
          const double c_l = (lat - lo_l) / (hi_l - lo_l + 1e-9);
          const double c_t = 1.0 - (tpt - lo_t) / (hi_t - lo_t + 1e-9);
          return 0.5 * c_l + 0.5 * c_t;
        };
        cell.cost_off.push_back(weighted(m_off.value().latency_ms,
                                         m_off.value().throughput_tps));
        cell.cost_on.push_back(weighted(m_on.value().latency_ms,
                                        m_on.value().throughput_tps));
        cell.log_lat_ratio.push_back(
            std::log(std::max(m_on.value().latency_ms, 1e-9) /
                     std::max(m_off.value().latency_ms, 1e-9)));
        cell.log_tpt_ratio.push_back(
            std::log(std::max(m_on.value().throughput_tps, 1e-9) /
                     std::max(m_off.value().throughput_tps, 1e-9)));
        ++cell.queries;
      }
      if (cell.queries == 0) continue;

      const double gnn_off = Mean(cell.gnn_off);
      const double gnn_on = Mean(cell.gnn_on);
      const double reduction = gnn_off / std::max(gnn_on, 1.0);
      all_reduction[ni].push_back(reduction);
      all_cost_off[ni].push_back(Mean(cell.cost_off));
      all_cost_on[ni].push_back(Mean(cell.cost_on));

      std::cerr << "  " << workload::ToString(structure) << " @ "
                << nodes * 8 << " cores: GNN " << Fmt(gnn_off, 1) << " -> "
                << Fmt(gnn_on, 1) << " (" << Fmt(reduction, 1) << "x)\n";

      if (!first_row) rows << ",\n";
      first_row = false;
      rows << "    {\"structure\": \"" << workload::ToString(structure)
           << "\", \"nodes\": " << nodes << ", \"cores\": " << nodes * 8
           << ", \"queries\": " << cell.queries
           << ",\n     \"gnn_scored_off\": " << Fmt(gnn_off, 1)
           << ", \"gnn_scored_on\": " << Fmt(gnn_on, 1)
           << ", \"reduction_x\": " << Fmt(reduction, 2)
           << ",\n     \"prescreen_ranked\": " << Fmt(Mean(cell.ranked_on), 1)
           << ", \"prescreen_kept\": " << Fmt(Mean(cell.kept_on), 1)
           << ",\n     \"tune_ms_off\": " << Fmt(Mean(cell.tune_ms_off))
           << ", \"tune_ms_on\": " << Fmt(Mean(cell.tune_ms_on))
           << ",\n     \"weighted_cost_off\": " << Fmt(Mean(cell.cost_off))
           << ", \"weighted_cost_on\": " << Fmt(Mean(cell.cost_on))
           << ",\n     \"latency_ratio_on_vs_off\": "
           << Fmt(std::exp(Mean(cell.log_lat_ratio)))
           << ", \"throughput_ratio_on_vs_off\": "
           << Fmt(std::exp(Mean(cell.log_tpt_ratio))) << "}";
    }
  }

  std::cout << "{\n"
            << "  \"benchmark\": \"prescreen\",\n"
            << "  \"generated_by\": \"scripts/bench_prescreen.sh\",\n"
            << "  \"train_queries\": " << scale.train_queries << ",\n"
            << "  \"epochs\": " << scale.epochs << ",\n"
            << "  \"queries_per_cell\": " << queries_per_cell << ",\n"
            << "  \"prescreen_defaults\": {\"keep_fraction\": "
            << Fmt(core::ParallelismOptimizer::PrescreenOptions{}.keep_fraction,
                   2)
            << ", \"min_keep\": "
            << core::ParallelismOptimizer::PrescreenOptions{}.min_keep
            << ", \"max_probes\": "
            << core::ParallelismOptimizer::PrescreenOptions{}.max_probes
            << ", \"hill_climb_keep\": "
            << core::ParallelismOptimizer::PrescreenOptions{}.hill_climb_keep
            << "},\n"
            << "  \"rows\": [\n"
            << rows.str() << "\n  ],\n"
            << "  \"summary\": [\n";
  for (size_t ni = 0; ni < node_counts.size(); ++ni) {
    std::cout << "    {\"cores\": " << node_counts[ni] * 8
              << ", \"mean_reduction_x\": " << Fmt(Mean(all_reduction[ni]), 2)
              << ", \"mean_weighted_cost_off\": "
              << Fmt(Mean(all_cost_off[ni]))
              << ", \"mean_weighted_cost_on\": " << Fmt(Mean(all_cost_on[ni]))
              << "}" << (ni + 1 < node_counts.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";
  return 0;
}
