// Figure 11: feature ablation — latency q-errors when training with
// (1) only operator-related features, (2) only parallelism+resource
// features, and (3) all transferable features.
#include <iostream>

#include "bench_util.h"
#include "core/trainer.h"

using namespace zerotune;

int main() {
  const auto scale = bench::BenchScale::FromEnv();
  ThreadPool pool;
  bench::Banner("Fig. 11 — transferable-feature ablation");

  core::OptiSampleEnumerator enumerator;

  // Unseen-structure evaluation corpus shared by all variants.
  core::DatasetBuilderOptions uopts;
  uopts.count = scale.test_queries_per_type * 2;
  uopts.seed = 0xab1a;
  uopts.structures = {workload::QueryStructure::kThreeChainedFilters,
                      workload::QueryStructure::kFourWayJoin};
  uopts.pool = &pool;
  const workload::Dataset unseen_eval =
      core::BuildDataset(enumerator, uopts).value();

  TextTable table({"Features", "Seen lat median", "Seen lat 95th",
                   "Unseen lat median", "Unseen lat 95th"});
  for (const auto& [label, config] :
       std::vector<std::pair<std::string, core::FeatureConfig>>{
           {"(1) operator-only", core::FeatureConfig::OperatorOnly()},
           {"(2) parallelism+resource",
            core::FeatureConfig::ParallelismAndResource()},
           {"(3) all features", core::FeatureConfig::All()}}) {
    bench::TrainedSetup setup = bench::TrainModel(
        enumerator, scale, &pool, /*seed=*/0x11ab, {}, config);
    const auto seen = core::Trainer::Evaluate(*setup.model, setup.test);
    const auto unseen = core::Trainer::Evaluate(*setup.model, unseen_eval);
    table.AddRow({label, TextTable::Fmt(seen.latency.median),
                  TextTable::Fmt(seen.latency.p95),
                  TextTable::Fmt(unseen.latency.median),
                  TextTable::Fmt(unseen.latency.p95)});
  }
  bench::EmitTable("fig11_ablation", table);
  std::cout << "Expected shape: operator-only features alone are weakest;\n"
               "adding parallelism+resource features drives accuracy; all\n"
               "features together are best (paper V-F).\n";
  return 0;
}
