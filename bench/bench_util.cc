#include "bench_util.h"

#include <cstdlib>
#include <iostream>

namespace zerotune::bench {

namespace {

bool EnvFlag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string(v) == "1";
}

}  // namespace

BenchScale BenchScale::FromEnv() {
  BenchScale s;
  if (EnvFlag("ZEROTUNE_BENCH_FAST")) {
    s.train_queries = 600;
    s.test_queries_per_type = 40;
    s.epochs = 15;
    s.hidden_dim = 24;
  } else if (EnvFlag("ZEROTUNE_BENCH_FULL")) {
    s.train_queries = 19200;  // 24k total with the 80/10/10 split applied
    s.test_queries_per_type = 200;
    s.epochs = 80;
    s.hidden_dim = 48;
  }
  return s;
}

bool BenchScale::CsvEnabled() { return EnvFlag("ZEROTUNE_BENCH_CSV"); }

TrainedSetup TrainModel(const core::ParallelismEnumerator& enumerator,
                        const BenchScale& scale, zerotune::ThreadPool* pool,
                        uint64_t seed,
                        const std::vector<workload::QueryStructure>& structures,
                        const core::FeatureConfig& features) {
  core::DatasetBuilderOptions build_opts;
  build_opts.count = scale.train_queries;
  build_opts.seed = seed;
  build_opts.pool = pool;
  build_opts.structures = structures;
  const workload::Dataset corpus =
      core::BuildDataset(enumerator, build_opts).value();

  TrainedSetup setup;
  Rng rng(seed ^ 0xabcdef);
  ZT_CHECK_OK(
      corpus.Split(0.8, 0.1, &rng, &setup.train, &setup.val, &setup.test));

  core::ModelConfig config;
  config.hidden_dim = scale.hidden_dim;
  config.seed = seed + 1;
  config.features = features;
  setup.model = std::make_unique<core::ZeroTuneModel>(config);

  core::TrainOptions topts;
  topts.epochs = scale.epochs;
  topts.pool = pool;
  topts.seed = seed + 2;
  const auto report =
      core::Trainer(setup.model.get(), topts).Train(setup.train, setup.val);
  setup.train_seconds = report.ok() ? report.value().train_seconds : 0.0;
  return setup;
}

void EmitTable(const std::string& name, const TextTable& table) {
  table.Print(std::cout);
  if (BenchScale::CsvEnabled()) {
    const std::string path = name + ".csv";
    const Status s = table.WriteCsv(path);
    if (s.ok()) {
      std::cout << "(wrote " << path << ")\n";
    } else {
      std::cerr << "csv write failed: " << s.ToString() << "\n";
    }
  }
  std::cout << "\n";
}

void Banner(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

}  // namespace zerotune::bench
