// Table IV ③: cost-prediction accuracy on the unseen public benchmark
// queries (spike detection, smart-grid local/global), each deployed many
// times at sampled event rates on unseen-type hardware.
#include <iostream>

#include "bench_util.h"
#include "common/statistics.h"
#include "core/trainer.h"

using namespace zerotune;

int main() {
  const auto scale = bench::BenchScale::FromEnv();
  ThreadPool pool;
  bench::Banner("Table IV ③ — unseen public benchmark queries");

  core::OptiSampleEnumerator enumerator;
  bench::TrainedSetup setup =
      bench::TrainModel(enumerator, scale, &pool, /*seed=*/4242);

  TextTable table({"Benchmark", "Lat median", "Lat 95th", "Tpt median",
                   "Tpt 95th", "#queries"});
  for (auto s : workload::BenchmarkStructures()) {
    core::DatasetBuilderOptions opts;
    opts.seed = 0xbe9c + static_cast<uint64_t>(s);
    const auto ds = core::BuildBenchmarkDataset(
        s, scale.test_queries_per_type, enumerator, opts).value();
    const auto eval = core::Trainer::Evaluate(*setup.model, ds);
    table.AddRow({workload::ToString(s),
                  TextTable::Fmt(eval.latency.median),
                  TextTable::Fmt(eval.latency.p95),
                  TextTable::Fmt(eval.throughput.median),
                  TextTable::Fmt(eval.throughput.p95),
                  std::to_string(ds.size())});
  }
  bench::EmitTable("tab4_benchmarks", table);
  std::cout << "Expected shape: both metrics accurate; latency estimates\n"
               "tighter than throughput (paper Sec. V-A3).\n";
  return 0;
}
