// Figure 6 (and the few-shot part of Fig. 7d): few-shot learning with 500
// extra training examples of complex join structures improves throughput
// prediction on 4/5/6-way joins.
#include <iostream>

#include "bench_util.h"
#include "core/trainer.h"

using namespace zerotune;

int main() {
  const auto scale = bench::BenchScale::FromEnv();
  ThreadPool pool;
  bench::Banner("Fig. 6 — few-shot learning on complex unseen joins");

  core::OptiSampleEnumerator enumerator;
  bench::TrainedSetup setup =
      bench::TrainModel(enumerator, scale, &pool, /*seed=*/808);

  const std::vector<workload::QueryStructure> complex_joins = {
      workload::QueryStructure::kFourWayJoin,
      workload::QueryStructure::kFiveWayJoin,
      workload::QueryStructure::kSixWayJoin};

  // Held-out evaluation corpora per join arity.
  std::vector<workload::Dataset> eval_sets;
  for (auto s : complex_joins) {
    core::DatasetBuilderOptions opts;
    opts.count = scale.test_queries_per_type;
    opts.seed = 0xfee + static_cast<uint64_t>(s);
    opts.structures = {s};
    opts.pool = &pool;
    eval_sets.push_back(core::BuildDataset(enumerator, opts).value());
  }

  // 500 few-shot examples across all three arities (paper's number).
  core::DatasetBuilderOptions fs_opts;
  fs_opts.count = 500;
  fs_opts.seed = 31337;
  fs_opts.structures = complex_joins;
  fs_opts.pool = &pool;
  const auto fewshot_corpus =
      core::BuildDataset(enumerator, fs_opts).value();
  Rng rng(3);
  workload::Dataset fs_train, fs_val, fs_test;
  ZT_CHECK_OK(
      fewshot_corpus.Split(0.9, 0.1, &rng, &fs_train, &fs_val, &fs_test));

  TextTable table({"Join", "Zero-shot tpt median", "Zero-shot tpt 95th",
                   "Few-shot tpt median", "Few-shot tpt 95th",
                   "Improvement x"});

  // Evaluate zero-shot, then fine-tune and re-evaluate.
  std::vector<core::ModelEvaluation> zero_shot;
  for (const auto& ds : eval_sets) {
    zero_shot.push_back(core::Trainer::Evaluate(*setup.model, ds));
  }

  core::TrainOptions ft;
  ft.epochs = std::max<size_t>(10, scale.epochs / 3);
  ft.fit_target_stats = false;
  ft.learning_rate = 3e-4;
  ft.pool = &pool;
  core::Trainer(setup.model.get(), ft).Train(fs_train, fs_val).value();

  for (size_t i = 0; i < complex_joins.size(); ++i) {
    const auto after = core::Trainer::Evaluate(*setup.model, eval_sets[i]);
    const double improvement =
        after.throughput.median > 0.0
            ? zero_shot[i].throughput.median / after.throughput.median
            : 0.0;
    table.AddRow({workload::ToString(complex_joins[i]),
                  TextTable::Fmt(zero_shot[i].throughput.median),
                  TextTable::Fmt(zero_shot[i].throughput.p95),
                  TextTable::Fmt(after.throughput.median),
                  TextTable::Fmt(after.throughput.p95),
                  TextTable::Fmt(improvement)});
  }
  bench::EmitTable("fig6_fewshot", table);
  std::cout << "Expected shape: few-shot fine-tuning with 500 queries\n"
               "tightens throughput q-errors, most for 6-way joins.\n";
  return 0;
}
