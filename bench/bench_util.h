#ifndef ZEROTUNE_BENCH_BENCH_UTIL_H_
#define ZEROTUNE_BENCH_BENCH_UTIL_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/table.h"
#include "common/thread_pool.h"
#include "core/dataset_builder.h"
#include "core/enumeration.h"
#include "core/model.h"
#include "core/trainer.h"
#include "workload/dataset.h"

namespace zerotune::bench {

/// Scaling of the experiment harnesses. The paper's full corpus is 24k
/// queries; the default here is sized so that every bench binary finishes
/// in tens of seconds while preserving the reported trends. Set
/// ZEROTUNE_BENCH_FAST=1 to shrink further (smoke run) or
/// ZEROTUNE_BENCH_FULL=1 to approach paper scale.
struct BenchScale {
  size_t train_queries = 3000;
  size_t test_queries_per_type = 120;
  size_t epochs = 45;
  size_t hidden_dim = 32;

  static BenchScale FromEnv();
  /// True when ZEROTUNE_BENCH_CSV=1: harnesses also write <name>.csv.
  static bool CsvEnabled();
};

/// A trained ZeroTune model plus the datasets used to produce it.
struct TrainedSetup {
  std::unique_ptr<core::ZeroTuneModel> model;
  workload::Dataset train;
  workload::Dataset val;
  workload::Dataset test;
  double train_seconds = 0.0;
};

/// Collects a seen-range corpus with the given enumeration strategy and
/// trains a model on it. `structures` empty = the paper's three training
/// structures.
TrainedSetup TrainModel(
    const core::ParallelismEnumerator& enumerator, const BenchScale& scale,
    zerotune::ThreadPool* pool, uint64_t seed = 2024,
    const std::vector<workload::QueryStructure>& structures = {},
    const core::FeatureConfig& features = core::FeatureConfig::All());

/// Prints the table and optionally writes `<name>.csv` alongside.
void EmitTable(const std::string& name, const TextTable& table);

/// Prints a section banner.
void Banner(const std::string& title);

}  // namespace zerotune::bench

#endif  // ZEROTUNE_BENCH_BENCH_UTIL_H_
