// Figure 10: parallelism tuning with ZeroTune + optimizer.
// (a) Mean latency/throughput speed-ups of ZeroTune-selected degrees vs
//     the greedy auto-pipelining heuristic, per query structure.
// (b) Weighted cost (Eq. 1) of ZeroTune vs the Dhalion-style controller.
// Every selected deployment is executed on the ground-truth engine.
#include <chrono>
#include <iostream>

#include "baselines/dhalion.h"
#include "baselines/greedy.h"
#include "bench_util.h"
#include "common/statistics.h"
#include "core/cost_predictor.h"
#include "core/optimizer.h"
#include "workload/generator.h"

using namespace zerotune;

int main() {
  const auto scale = bench::BenchScale::FromEnv();
  const size_t queries_per_structure =
      std::max<size_t>(20, scale.test_queries_per_type / 4);
  ThreadPool pool;
  bench::Banner("Fig. 10 — optimizer for parallelism tuning");

  core::OptiSampleEnumerator enumerator;
  bench::TrainedSetup setup =
      bench::TrainModel(enumerator, scale, &pool, /*seed=*/606);

  sim::CostParams noiseless;
  noiseless.noise_sigma = 0.0;
  const sim::CostEngine engine(noiseless);
  // Dhalion's control loop observes real (noisy) executions.
  const sim::CostEngine observed_engine{sim::CostParams()};

  core::ParallelismOptimizer optimizer(setup.model.get());
  baselines::GreedyHeuristicTuner greedy;
  baselines::DhalionTuner dhalion;

  const std::vector<workload::QueryStructure> structures = {
      workload::QueryStructure::kLinear,
      workload::QueryStructure::kTwoWayJoin,
      workload::QueryStructure::kThreeWayJoin,
      workload::QueryStructure::kThreeChainedFilters,
      workload::QueryStructure::kFourWayJoin,
      workload::QueryStructure::kFiveWayJoin};

  TextTable fig10a({"Structure", "Seen?", "Mean lat speed-up x",
                    "Mean tpt speed-up x", "#queries"});
  TextTable fig10b({"Structure", "Weighted cost ZeroTune",
                    "Weighted cost Dhalion", "Dhalion executions"});

  for (auto structure : structures) {
    const bool seen = structure == workload::QueryStructure::kLinear ||
                      structure == workload::QueryStructure::kTwoWayJoin ||
                      structure == workload::QueryStructure::kThreeWayJoin;
    // Parallelism tuning matters under load: sample the heavy tail of the
    // event-rate range (the paper's micro-benchmarks likewise drive the
    // cluster towards full utilization).
    const std::vector<double> heavy_rates = {50000, 100000, 250000, 500000,
                                             1000000};
    std::vector<double> lat_speedups, tpt_speedups;
    std::vector<double> zt_costs, dh_costs;
    double dh_execs = 0.0;
    size_t count = 0;

    for (size_t i = 0; i < queries_per_structure; ++i) {
      workload::QueryGenerator::Options gen_opts;
      gen_opts.overrides.event_rate = heavy_rates[i % heavy_rates.size()];
      workload::QueryGenerator gen(
          gen_opts, 0xa11 + static_cast<uint64_t>(structure) * 131 + i);
      const auto g = gen.Generate(structure);
      if (!g.ok()) continue;

      const auto tuned = optimizer.Tune(g.value().plan, g.value().cluster);
      if (!tuned.ok()) continue;
      const auto zt = engine.MeasureNoiseless(tuned.value().plan);
      const auto greedy_plan =
          greedy.Tune(g.value().plan, g.value().cluster);
      if (!zt.ok() || !greedy_plan.ok()) continue;
      const auto gr = engine.MeasureNoiseless(greedy_plan.value());
      const auto dh_outcome =
          dhalion.Tune(g.value().plan, g.value().cluster, observed_engine);
      if (!gr.ok() || !dh_outcome.ok()) continue;
      const auto dh =
          engine.MeasureNoiseless(dh_outcome.value().plan).value();

      lat_speedups.push_back(gr.value().latency_ms /
                             std::max(zt.value().latency_ms, 1e-9));
      tpt_speedups.push_back(zt.value().throughput_tps /
                             std::max(gr.value().throughput_tps, 1e-9));

      // Eq. 1 weighted cost normalized over the head-to-head pair.
      const double lat_min = std::min(zt.value().latency_ms, dh.latency_ms);
      const double lat_max = std::max(zt.value().latency_ms, dh.latency_ms);
      const double tpt_min =
          std::min(zt.value().throughput_tps, dh.throughput_tps);
      const double tpt_max =
          std::max(zt.value().throughput_tps, dh.throughput_tps);
      auto weighted = [&](double lat, double tpt) {
        const double c_l = (lat - lat_min) / (lat_max - lat_min + 1e-9);
        const double c_t = 1.0 - (tpt - tpt_min) / (tpt_max - tpt_min + 1e-9);
        return 0.5 * c_l + 0.5 * c_t;
      };
      zt_costs.push_back(weighted(zt.value().latency_ms,
                                  zt.value().throughput_tps));
      dh_costs.push_back(weighted(dh.latency_ms, dh.throughput_tps));
      dh_execs += dh_outcome.value().executions;
      ++count;
    }

    fig10a.AddRow({workload::ToString(structure), seen ? "yes" : "no",
                   TextTable::Fmt(Mean(lat_speedups)),
                   TextTable::Fmt(Mean(tpt_speedups)),
                   std::to_string(count)});
    fig10b.AddRow({workload::ToString(structure),
                   TextTable::Fmt(Mean(zt_costs)),
                   TextTable::Fmt(Mean(dh_costs)),
                   TextTable::Fmt(dh_execs / std::max<size_t>(1, count), 1)});
  }

  // Scoring-throughput microbenchmark: the optimizer's inner loop scores
  // hundreds of parallelism candidates per query; PredictBatch amortizes
  // featurization and encoder work across them and shards scoring over
  // the thread pool. Report single-plan vs batched throughput.
  {
    workload::QueryGenerator gen({}, 0xf10);
    const auto g =
        gen.Generate(workload::QueryStructure::kThreeWayJoin).value();
    std::vector<int> inner;
    for (const auto& op : g.plan.operators()) {
      if (op.type != dsp::OperatorType::kSource &&
          op.type != dsp::OperatorType::kSink) {
        inner.push_back(op.id);
      }
    }
    // 128 distinct candidates: per-operator degrees vary combinatorially,
    // mirroring the optimizer's enumeration (no duplicate plans).
    std::vector<dsp::ParallelQueryPlan> candidates;
    for (size_t i = 0; candidates.size() < 128 && i < 12800; ++i) {
      dsp::ParallelQueryPlan cand(g.plan, g.cluster);
      bool ok = true;
      size_t x = i;
      for (int id : inner) {
        ok = ok && cand.SetParallelism(id, 1 + static_cast<int>(x % 4)).ok();
        x /= 4;
      }
      if (!ok) continue;
      cand.DerivePartitioning();
      if (!cand.PlaceRoundRobin().ok() || !cand.Validate().ok()) continue;
      candidates.push_back(std::move(cand));
    }
    const core::ZeroTuneModel& model = *setup.model;

    auto time_s = [](const auto& fn) {
      const auto start = std::chrono::steady_clock::now();
      fn();
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };
    // Warm both paths once so timing excludes first-touch allocation.
    (void)model.Predict(candidates.front());
    (void)core::PredictBatch(model, candidates);

    const double seq_s = time_s([&] {
      for (const auto& c : candidates) (void)model.Predict(c);
    });
    const double batch_s =
        time_s([&] { (void)core::PredictBatch(model, candidates); });
    setup.model->set_thread_pool(&pool);
    const double pooled_s =
        time_s([&] { (void)core::PredictBatch(model, candidates); });
    setup.model->set_thread_pool(nullptr);

    const double n = static_cast<double>(candidates.size());
    TextTable scoring({"Scoring path", "Plans/s", "Speed-up x"});
    scoring.AddRow({"per-plan Predict", TextTable::Fmt(n / seq_s, 0),
                    TextTable::Fmt(1.0, 2)});
    scoring.AddRow({"PredictBatch (1 thread)",
                    TextTable::Fmt(n / batch_s, 0),
                    TextTable::Fmt(seq_s / batch_s, 2)});
    scoring.AddRow({"PredictBatch (pooled)",
                    TextTable::Fmt(n / pooled_s, 0),
                    TextTable::Fmt(seq_s / pooled_s, 2)});
    bench::Banner("Candidate scoring throughput (128 candidates)");
    bench::EmitTable("fig10_scoring_throughput", scoring);
  }

  bench::Banner("Fig. 10a — mean speed-up vs greedy heuristic");
  bench::EmitTable("fig10a_speedup_vs_greedy", fig10a);
  bench::Banner("Fig. 10b — weighted cost (Eq. 1) vs Dhalion");
  bench::EmitTable("fig10b_weighted_cost_vs_dhalion", fig10b);
  std::cout << "Expected shape: largest speed-ups on simple/linear\n"
               "structures, ~3x+ on complex joins; ZeroTune's weighted\n"
               "cost at or below Dhalion's, widening with complexity —\n"
               "and with zero trial executions vs Dhalion's several.\n";
  return 0;
}
