#ifndef ZEROTUNE_SIM_FAULT_INJECTION_H_
#define ZEROTUNE_SIM_FAULT_INJECTION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dsp/parallel_plan.h"

namespace zerotune::sim {

/// Kinds of runtime degradation the chaos subsystem can inject into a
/// discrete-event simulation. The zero-shot model predicts costs for a
/// healthy deployment; these faults answer "what actually happens when
/// the cluster degrades mid-run" (and drive failure-aware re-tuning).
enum class FaultKind {
  /// A worker node dies permanently at `time_s`: its instances stop
  /// servicing, queued and in-flight tuples are lost, arrivals are dropped.
  kNodeCrash = 0,
  /// A node's effective CPU capacity is scaled by `factor` (< 1 slows it)
  /// during [time_s, time_s + duration_s).
  kNodeSlowdown = 1,
  /// One operator instance's service times are multiplied by `factor`
  /// (> 1 makes it a straggler) during the active window.
  kInstanceStraggler = 2,
  /// A source operator's emission rate is multiplied by `factor` during
  /// the active window (load spike).
  kSourceRateSurge = 3,
  /// Every remote (unchained, cross-node) edge pays `extra_delay_ms`
  /// additional one-way latency during the active window.
  kNetworkDelaySpike = 4,
};

const char* ToString(FaultKind kind);

/// One timed degradation event.
struct FaultEvent {
  FaultKind kind = FaultKind::kNodeCrash;
  /// Onset, in simulated seconds.
  double time_s = 0.0;
  /// Active window length; 0 means "until the end of the run". Crashes
  /// are always permanent regardless of this field.
  double duration_s = 0.0;
  /// Target cluster node (kNodeCrash, kNodeSlowdown).
  int node = -1;
  /// Target operator (kInstanceStraggler, kSourceRateSurge).
  int op_id = -1;
  /// Target instance within the operator (kInstanceStraggler).
  int instance = -1;
  /// Multiplier: CPU-capacity scale (slowdown), service-time scale
  /// (straggler), or rate scale (surge).
  double factor = 1.0;
  /// Added per-hop latency in ms (kNetworkDelaySpike).
  double extra_delay_ms = 0.0;

  bool ActiveAt(double t) const {
    if (t < time_s) return false;
    if (kind == FaultKind::kNodeCrash) return true;  // permanent
    return duration_s <= 0.0 || t < time_s + duration_s;
  }
};

/// A schedule of fault events applied to one simulation run.
///
/// Text format (CLI `--inject-faults`): events separated by ';', each
/// `kind@time[+duration]:key=value[,key=value...]`, e.g.
///
///   crash@2:node=0
///   slow@1+2:node=1,factor=0.5
///   straggler@1+3:op=2,inst=0,factor=4
///   surge@2+1:op=0,factor=3
///   netdelay@1+2:extra_ms=5
class FaultPlan {
 public:
  FaultPlan() = default;

  void Add(FaultEvent event) { events_.push_back(event); }
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

  /// Structural checks against a concrete deployment: node/operator/
  /// instance references in range, times non-negative, factors positive.
  Status Validate(const dsp::ParallelQueryPlan& plan) const;

  /// Parses the CLI text format documented above.
  static Result<FaultPlan> Parse(const std::string& spec);
  std::string ToString() const;

  // Convenience builders.
  static FaultEvent NodeCrash(double time_s, int node);
  static FaultEvent NodeSlowdown(double time_s, double duration_s, int node,
                                 double capacity_factor);
  static FaultEvent Straggler(double time_s, double duration_s, int op_id,
                              int instance, double service_factor);
  static FaultEvent SourceRateSurge(double time_s, double duration_s,
                                    int op_id, double rate_factor);
  static FaultEvent NetworkDelaySpike(double time_s, double duration_s,
                                      double extra_delay_ms);

 private:
  std::vector<FaultEvent> events_;
};

/// Point-in-time view of a FaultPlan the simulator queries at each event.
/// Fault plans are small (a handful of events), so the per-query linear
/// scan is cheaper than maintaining interval indices.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(&plan) {}

  /// True once any crash targeting `node` has fired.
  bool NodeDown(int node, double t) const;

  /// Service-time multiplier for an instance: straggler factors times the
  /// inverse of active node-capacity scaling (capacity 0.5 => 2x service).
  double ServiceTimeFactor(int node, int op_id, int instance, double t) const;

  /// Emission-rate multiplier for a source operator.
  double SourceRateFactor(int op_id, double t) const;

  /// Extra one-way latency (ms) on remote edges at time t.
  double ExtraNetworkDelayMs(double t) const;

  const FaultPlan& plan() const { return *plan_; }

 private:
  const FaultPlan* plan_;
};

}  // namespace zerotune::sim

#endif  // ZEROTUNE_SIM_FAULT_INJECTION_H_
