#include "sim/fault_injection.h"

#include <cmath>
#include <map>
#include <sstream>

namespace zerotune::sim {

namespace {

constexpr size_t kMaxEvents = 10'000;

Result<double> ParseFiniteDouble(const std::string& repr,
                                 const std::string& context) {
  try {
    size_t used = 0;
    const double v = std::stod(repr, &used);
    if (used != repr.size() || !std::isfinite(v)) {
      return Status::InvalidArgument("bad number for " + context + ": " +
                                     repr);
    }
    return v;
  } catch (...) {
    return Status::InvalidArgument("bad number for " + context + ": " + repr);
  }
}

Result<int> ParseInt(const std::string& repr, const std::string& context) {
  ZT_ASSIGN_OR_RETURN(const double v, ParseFiniteDouble(repr, context));
  if (v < -1e9 || v > 1e9 || v != std::floor(v)) {
    return Status::InvalidArgument("bad integer for " + context + ": " + repr);
  }
  return static_cast<int>(v);
}

}  // namespace

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash: return "crash";
    case FaultKind::kNodeSlowdown: return "slow";
    case FaultKind::kInstanceStraggler: return "straggler";
    case FaultKind::kSourceRateSurge: return "surge";
    case FaultKind::kNetworkDelaySpike: return "netdelay";
  }
  return "unknown";
}

FaultEvent FaultPlan::NodeCrash(double time_s, int node) {
  FaultEvent e;
  e.kind = FaultKind::kNodeCrash;
  e.time_s = time_s;
  e.node = node;
  return e;
}

FaultEvent FaultPlan::NodeSlowdown(double time_s, double duration_s, int node,
                                   double capacity_factor) {
  FaultEvent e;
  e.kind = FaultKind::kNodeSlowdown;
  e.time_s = time_s;
  e.duration_s = duration_s;
  e.node = node;
  e.factor = capacity_factor;
  return e;
}

FaultEvent FaultPlan::Straggler(double time_s, double duration_s, int op_id,
                                int instance, double service_factor) {
  FaultEvent e;
  e.kind = FaultKind::kInstanceStraggler;
  e.time_s = time_s;
  e.duration_s = duration_s;
  e.op_id = op_id;
  e.instance = instance;
  e.factor = service_factor;
  return e;
}

FaultEvent FaultPlan::SourceRateSurge(double time_s, double duration_s,
                                      int op_id, double rate_factor) {
  FaultEvent e;
  e.kind = FaultKind::kSourceRateSurge;
  e.time_s = time_s;
  e.duration_s = duration_s;
  e.op_id = op_id;
  e.factor = rate_factor;
  return e;
}

FaultEvent FaultPlan::NetworkDelaySpike(double time_s, double duration_s,
                                        double extra_delay_ms) {
  FaultEvent e;
  e.kind = FaultKind::kNetworkDelaySpike;
  e.time_s = time_s;
  e.duration_s = duration_s;
  e.extra_delay_ms = extra_delay_ms;
  return e;
}

Status FaultPlan::Validate(const dsp::ParallelQueryPlan& plan) const {
  if (events_.size() > kMaxEvents) {
    return Status::InvalidArgument("fault plan has too many events");
  }
  const int num_nodes = static_cast<int>(plan.cluster().num_nodes());
  const int num_ops = static_cast<int>(plan.logical().num_operators());
  for (size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    const std::string at = "fault #" + std::to_string(i) + " (" +
                           sim::ToString(e.kind) + "): ";
    if (!(e.time_s >= 0.0) || !std::isfinite(e.time_s)) {
      return Status::InvalidArgument(at + "time must be finite and >= 0");
    }
    if (!(e.duration_s >= 0.0) || !std::isfinite(e.duration_s)) {
      return Status::InvalidArgument(at + "duration must be finite and >= 0");
    }
    switch (e.kind) {
      case FaultKind::kNodeCrash:
      case FaultKind::kNodeSlowdown:
        if (e.node < 0 || e.node >= num_nodes) {
          return Status::InvalidArgument(
              at + "node " + std::to_string(e.node) +
              " out of range (cluster has " + std::to_string(num_nodes) +
              " nodes)");
        }
        if (e.kind == FaultKind::kNodeCrash && num_nodes < 2) {
          return Status::InvalidArgument(
              at + "cannot crash the only node in the cluster");
        }
        break;
      case FaultKind::kInstanceStraggler: {
        if (e.op_id < 0 || e.op_id >= num_ops) {
          return Status::InvalidArgument(at + "operator out of range");
        }
        const int degree = plan.parallelism(e.op_id);
        if (e.instance < 0 || e.instance >= degree) {
          return Status::InvalidArgument(
              at + "instance " + std::to_string(e.instance) +
              " out of range (degree " + std::to_string(degree) + ")");
        }
        break;
      }
      case FaultKind::kSourceRateSurge:
        if (e.op_id < 0 || e.op_id >= num_ops ||
            plan.logical().op(e.op_id).type != dsp::OperatorType::kSource) {
          return Status::InvalidArgument(at +
                                         "target must be a source operator");
        }
        break;
      case FaultKind::kNetworkDelaySpike:
        if (!(e.extra_delay_ms >= 0.0) || !std::isfinite(e.extra_delay_ms)) {
          return Status::InvalidArgument(at + "extra_ms must be >= 0");
        }
        break;
    }
    if (e.kind == FaultKind::kNodeSlowdown ||
        e.kind == FaultKind::kInstanceStraggler ||
        e.kind == FaultKind::kSourceRateSurge) {
      if (!(e.factor > 0.0) || !std::isfinite(e.factor)) {
        return Status::InvalidArgument(at + "factor must be finite and > 0");
      }
    }
  }
  return Status::OK();
}

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream events(spec);
  std::string item;
  while (std::getline(events, item, ';')) {
    if (item.empty()) continue;
    if (plan.events_.size() >= kMaxEvents) {
      return Status::InvalidArgument("fault spec has too many events");
    }
    // Split "kind@time[+duration]" from "key=value,...".
    const size_t colon = item.find(':');
    const std::string head = item.substr(0, colon);
    const size_t at = head.find('@');
    if (at == std::string::npos) {
      return Status::InvalidArgument("fault event needs kind@time: " + item);
    }
    const std::string kind_name = head.substr(0, at);
    std::string time_repr = head.substr(at + 1);
    double duration = 0.0;
    const size_t plus = time_repr.find('+');
    if (plus != std::string::npos) {
      ZT_ASSIGN_OR_RETURN(duration, ParseFiniteDouble(time_repr.substr(plus + 1),
                                                      "duration in " + item));
      time_repr = time_repr.substr(0, plus);
    }
    ZT_ASSIGN_OR_RETURN(const double time_s,
                        ParseFiniteDouble(time_repr, "time in " + item));

    std::map<std::string, std::string> fields;
    if (colon != std::string::npos) {
      std::istringstream kvs(item.substr(colon + 1));
      std::string kv;
      while (std::getline(kvs, kv, ',')) {
        const size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0) {
          return Status::InvalidArgument("malformed fault field: " + kv);
        }
        fields[kv.substr(0, eq)] = kv.substr(eq + 1);
      }
    }
    auto get_int = [&](const std::string& key) -> Result<int> {
      auto it = fields.find(key);
      if (it == fields.end()) {
        return Status::InvalidArgument("fault " + item + " needs " + key + "=");
      }
      const std::string repr = it->second;
      fields.erase(it);
      return ParseInt(repr, key + " in " + item);
    };
    auto get_double = [&](const std::string& key) -> Result<double> {
      auto it = fields.find(key);
      if (it == fields.end()) {
        return Status::InvalidArgument("fault " + item + " needs " + key + "=");
      }
      const std::string repr = it->second;
      fields.erase(it);
      return ParseFiniteDouble(repr, key + " in " + item);
    };

    FaultEvent e;
    e.time_s = time_s;
    e.duration_s = duration;
    if (kind_name == "crash") {
      e.kind = FaultKind::kNodeCrash;
      ZT_ASSIGN_OR_RETURN(e.node, get_int("node"));
    } else if (kind_name == "slow") {
      e.kind = FaultKind::kNodeSlowdown;
      ZT_ASSIGN_OR_RETURN(e.node, get_int("node"));
      ZT_ASSIGN_OR_RETURN(e.factor, get_double("factor"));
    } else if (kind_name == "straggler") {
      e.kind = FaultKind::kInstanceStraggler;
      ZT_ASSIGN_OR_RETURN(e.op_id, get_int("op"));
      ZT_ASSIGN_OR_RETURN(e.instance, get_int("inst"));
      ZT_ASSIGN_OR_RETURN(e.factor, get_double("factor"));
    } else if (kind_name == "surge") {
      e.kind = FaultKind::kSourceRateSurge;
      ZT_ASSIGN_OR_RETURN(e.op_id, get_int("op"));
      ZT_ASSIGN_OR_RETURN(e.factor, get_double("factor"));
    } else if (kind_name == "netdelay") {
      e.kind = FaultKind::kNetworkDelaySpike;
      ZT_ASSIGN_OR_RETURN(e.extra_delay_ms, get_double("extra_ms"));
    } else {
      return Status::InvalidArgument("unknown fault kind: " + kind_name);
    }
    if (!fields.empty()) {
      return Status::InvalidArgument("unknown fault field '" +
                                     fields.begin()->first + "' in " + item);
    }
    plan.Add(e);
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (i > 0) os << ";";
    os << sim::ToString(e.kind) << "@" << e.time_s;
    if (e.duration_s > 0.0) os << "+" << e.duration_s;
    switch (e.kind) {
      case FaultKind::kNodeCrash:
        os << ":node=" << e.node;
        break;
      case FaultKind::kNodeSlowdown:
        os << ":node=" << e.node << ",factor=" << e.factor;
        break;
      case FaultKind::kInstanceStraggler:
        os << ":op=" << e.op_id << ",inst=" << e.instance
           << ",factor=" << e.factor;
        break;
      case FaultKind::kSourceRateSurge:
        os << ":op=" << e.op_id << ",factor=" << e.factor;
        break;
      case FaultKind::kNetworkDelaySpike:
        os << ":extra_ms=" << e.extra_delay_ms;
        break;
    }
  }
  return os.str();
}

bool FaultInjector::NodeDown(int node, double t) const {
  for (const FaultEvent& e : plan_->events()) {
    if (e.kind == FaultKind::kNodeCrash && e.node == node && e.ActiveAt(t)) {
      return true;
    }
  }
  return false;
}

double FaultInjector::ServiceTimeFactor(int node, int op_id, int instance,
                                        double t) const {
  double factor = 1.0;
  for (const FaultEvent& e : plan_->events()) {
    if (!e.ActiveAt(t)) continue;
    if (e.kind == FaultKind::kNodeSlowdown && e.node == node) {
      factor /= e.factor;
    } else if (e.kind == FaultKind::kInstanceStraggler && e.op_id == op_id &&
               e.instance == instance) {
      factor *= e.factor;
    }
  }
  return factor;
}

double FaultInjector::SourceRateFactor(int op_id, double t) const {
  double factor = 1.0;
  for (const FaultEvent& e : plan_->events()) {
    if (e.kind == FaultKind::kSourceRateSurge && e.op_id == op_id &&
        e.ActiveAt(t)) {
      factor *= e.factor;
    }
  }
  return factor;
}

double FaultInjector::ExtraNetworkDelayMs(double t) const {
  double extra = 0.0;
  for (const FaultEvent& e : plan_->events()) {
    if (e.kind == FaultKind::kNetworkDelaySpike && e.ActiveAt(t)) {
      extra += e.extra_delay_ms;
    }
  }
  return extra;
}

}  // namespace zerotune::sim
