#include "sim/cost_report.h"

#include <algorithm>
#include <sstream>

#include "common/table.h"

namespace zerotune::sim {

int CostReport::BottleneckOperator(const CostMeasurement& measurement) {
  int worst = -1;
  double worst_headroom = 0.0;
  for (const OperatorCostBreakdown& diag : measurement.per_operator) {
    if (diag.input_rate_tps <= 0.0) continue;
    const double headroom = diag.capacity_tps / diag.input_rate_tps;
    if (worst < 0 || headroom < worst_headroom) {
      worst = diag.op_id;
      worst_headroom = headroom;
    }
  }
  return worst;
}

std::string CostReport::Render(const dsp::ParallelQueryPlan& plan,
                               const CostMeasurement& m) {
  std::ostringstream os;
  os << "end-to-end latency " << TextTable::Fmt(m.latency_ms)
     << " ms, throughput " << TextTable::Fmt(m.throughput_tps, 0)
     << " tuples/s";
  if (m.backpressured) {
    os << " (backpressured, sustaining "
       << TextTable::Fmt(m.sustained_fraction * 100.0, 1)
       << "% of the offered load)";
  }
  os << "\n\n";

  TextTable table({"Operator", "P", "Offered/s", "Capacity/s", "Util",
                   "Service us", "Queue ms", "Window ms", "Net ms"});
  const dsp::QueryPlan& q = plan.logical();
  for (const OperatorCostBreakdown& diag : m.per_operator) {
    const dsp::Operator& op = q.op(diag.op_id);
    table.AddRow({op.name, std::to_string(plan.parallelism(op.id)),
                  TextTable::Fmt(diag.input_rate_tps, 0),
                  TextTable::Fmt(diag.capacity_tps, 0),
                  TextTable::Fmt(diag.utilization, 2) +
                      (diag.saturated ? "!" : ""),
                  TextTable::Fmt(diag.service_time_us, 1),
                  TextTable::Fmt(diag.queue_delay_ms, 2),
                  TextTable::Fmt(diag.window_delay_ms, 2),
                  TextTable::Fmt(diag.network_delay_ms, 2)});
  }
  table.Print(os);

  const int bottleneck = BottleneckOperator(m);
  if (bottleneck >= 0) {
    const auto& diag =
        m.per_operator[static_cast<size_t>(bottleneck)];
    os << "\nbottleneck: " << q.op(bottleneck).name << " ("
       << TextTable::Fmt(diag.capacity_tps, 0) << " tuples/s capacity vs "
       << TextTable::Fmt(diag.input_rate_tps, 0) << " offered"
       << (diag.saturated ? ", saturated" : "") << ")\n";
  }
  return os.str();
}

}  // namespace zerotune::sim
