#ifndef ZEROTUNE_SIM_COST_PARAMS_H_
#define ZEROTUNE_SIM_COST_PARAMS_H_

namespace zerotune::sim {

/// Calibration constants of the analytical performance model. All
/// per-tuple work figures are in microseconds on a reference 1 GHz core;
/// actual service times divide by the hosting node's clock. The values are
/// chosen so that the emergent behaviour matches the phenomena the paper
/// reports (Fig. 3 latency/throughput-vs-parallelism curves with a
/// chaining discontinuity, backpressure under high event rates, window
/// fill delays), not to match CloudLab absolute numbers.
struct CostParams {
  // Base per-tuple work by operator type (µs at 1 GHz).
  double source_work_us = 5.0;
  double filter_work_us = 7.0;
  double aggregate_work_us = 15.0;
  double join_work_us = 24.0;
  double sink_work_us = 4.0;

  /// Extra work per tuple byte touched while processing (µs/byte).
  double touch_work_us_per_byte = 0.01;

  /// Serialization + deserialization work charged on an edge that crosses
  /// operator chains (µs/byte). Chained edges skip this entirely — this
  /// term produces the Fig. 3 chaining discontinuity.
  double serde_work_us_per_byte = 0.1;

  /// Keyed-window hash/state maintenance per tuple (µs).
  double keyed_state_work_us = 1.5;

  /// Join probe work per candidate tuple scanned in the opposite window
  /// (µs); candidates ≈ bucket_fraction · window size per instance.
  double probe_work_us_per_candidate = 0.05;
  double join_bucket_fraction = 0.02;

  /// Multiplier on per-tuple work for string-typed comparisons/keys.
  double string_work_factor = 2.5;
  double double_work_factor = 1.2;

  /// Maximum sustainable utilization before an instance backpressures.
  double max_utilization = 0.95;

  /// Hash partitioning load imbalance: hottest instance carries
  /// (1 + skew_coefficient · ln P) × the mean share.
  double hash_skew_coefficient = 0.08;

  /// Per-tuple dispatch overhead that grows with the fan-in an instance
  /// merges, work_us += merge_overhead_us · log2(1 + upstream instances).
  double merge_overhead_us = 0.3;

  /// One-way network latency for a remote hop (ms) plus per-byte transfer
  /// at the link speed; charged on unchained edges scaled by the fraction
  /// of instance pairs living on different nodes.
  double network_base_latency_ms = 0.5;

  /// Fixed read/write latency against external systems at source and sink
  /// (paper Def. 1 L_in / L_out), in ms.
  double external_io_latency_ms = 0.8;

  /// Upper bound on modeled queueing delay per operator (ms); keeps
  /// backpressured plans finite.
  double max_queue_delay_ms = 5000.0;

  /// Input-buffer capacity per instance (tuples). A saturated instance
  /// runs with a full buffer, so its queueing delay is buffer/μ — the
  /// latency cliff real backpressured deployments exhibit.
  double buffer_tuples_per_instance = 20000.0;

  /// Residual utilization used for the queueing term when an operator is
  /// saturated (ρ clamps here).
  double saturated_utilization = 0.98;

  /// Lognormal sigma of the multiplicative measurement noise applied to
  /// both metrics; 0 disables noise.
  double noise_sigma = 0.10;
};

}  // namespace zerotune::sim

#endif  // ZEROTUNE_SIM_COST_PARAMS_H_
