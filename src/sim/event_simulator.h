#ifndef ZEROTUNE_SIM_EVENT_SIMULATOR_H_
#define ZEROTUNE_SIM_EVENT_SIMULATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "dsp/parallel_plan.h"
#include "sim/cost_params.h"
#include "sim/fault_injection.h"

namespace zerotune::sim {

/// Per-operator statistics gathered during a simulation run; used to
/// cross-check the analytical engine's utilization/backpressure model.
struct OperatorSimStats {
  int op_id = -1;
  /// Mean busy fraction across the operator's instances.
  double avg_utilization = 0.0;
  /// Largest input-queue depth observed on any instance.
  size_t max_queue_depth = 0;
  /// Tuples serviced across all instances (whole run).
  size_t tuples_processed = 0;
};

/// Observed sink-side impact of one injected fault: mean sink output rate
/// in the second before vs. the second after the fault's onset.
struct FaultImpact {
  FaultEvent event;
  double sink_tps_before = 0.0;
  double sink_tps_after = 0.0;
};

/// Result of a discrete-event simulation run.
struct SimMeasurement {
  double mean_latency_ms = 0.0;
  double median_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  /// Source-side ingestion rate the plan sustained (tuples/s).
  double throughput_tps = 0.0;
  /// Tuples delivered at the sink per second.
  double sink_output_tps = 0.0;
  size_t tuples_completed = 0;
  bool backpressured = false;
  /// Tuples destroyed by injected faults (queued/in-flight work on crashed
  /// nodes plus arrivals routed to dead instances).
  size_t tuples_lost = 0;
  /// One entry per injected fault event, in `Options::faults` order.
  std::vector<FaultImpact> fault_impacts;
  std::vector<OperatorSimStats> per_operator;
  /// Full end-to-end latency distribution (ms).
  zerotune::Histogram latency_histogram{1e-3, 1e7, 20};
};

/// Per-tuple discrete-event simulator of a parallel query plan.
///
/// Every operator instance is a single-server FIFO queue with exponential
/// service times whose mean comes from the shared CostEngine work model.
/// Sources emit Poisson arrivals; filters drop probabilistically; window
/// operators buffer tuples and emit on window fire; joins probe the
/// opposite window; unchained edges add network delay. The simulator is an
/// independent cross-check of the analytical CostEngine: tests assert the
/// two agree on ordering/trends (not exact values).
///
/// Intended for small/medium event rates — the event count is
/// rate × duration × plan-size and is capped by `max_events`.
class EventSimulator {
 public:
  struct Options {
    double duration_s = 5.0;       // simulated horizon
    double warmup_s = 1.0;         // latencies before this are discarded
    uint64_t seed = 7;             // drives all stochastic choices
    size_t max_events = 5'000'000; // hard safety cap
    size_t max_queue_per_instance = 100'000;
    CostParams params;
    /// Degradation events injected into the run (empty = healthy run).
    FaultPlan faults;

    /// Rejects non-finite or non-positive horizons, warmups longer than
    /// the run, and zero event/queue caps. Checked at construction; Run()
    /// fails with this status instead of silently misbehaving.
    Status Validate() const;
  };

  EventSimulator() : EventSimulator(Options()) {}
  explicit EventSimulator(Options options)
      : options_(std::move(options)), options_status_(options_.Validate()) {}

  /// Runs the simulation; fails when the options or the plan do not
  /// validate.
  Result<SimMeasurement> Run(const dsp::ParallelQueryPlan& plan) const;

 private:
  Options options_;
  Status options_status_;
};

}  // namespace zerotune::sim

#endif  // ZEROTUNE_SIM_EVENT_SIMULATOR_H_
