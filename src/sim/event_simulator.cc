#include "sim/event_simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/statistics.h"
#include "sim/cost_engine.h"

namespace zerotune::sim {

namespace {

using dsp::Operator;
using dsp::OperatorType;
using dsp::PartitioningStrategy;
using dsp::WindowPolicy;

enum class EventKind {
  kEmit = 0,     // a source instance generates the next raw tuple
  kArrival = 1,  // a tuple lands in an instance's input queue
  kDone = 2,     // an instance finishes servicing a tuple
  kTimer = 3,    // a time-based window fires
  kFault = 4,    // an injected fault activates (op = fault index)
};

struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kArrival;
  int op = -1;
  int inst = -1;
  int side = 0;           // upstream edge index (joins care)
  double created_at = 0;  // original source emission time of the tuple

  bool operator>(const Event& other) const { return time > other.time; }
};

struct QueuedTuple {
  double created_at = 0.0;
  int side = 0;
};

struct InstanceState {
  std::deque<QueuedTuple> queue;
  bool busy = false;
  QueuedTuple in_service;
  double busy_seconds = 0.0;
  size_t max_queue_depth = 0;
  size_t processed = 0;
  // Aggregate pane accumulation.
  size_t pane_count = 0;
  double pane_created_sum = 0.0;
  // Join windows per side: (simulation arrival time, created_at).
  std::deque<std::pair<double, double>> window[2];
  double join_credit = 0.0;
  uint64_t rr_counter = 0;  // rebalance routing
  size_t dropped = 0;
};

struct OpContext {
  const Operator* op = nullptr;
  int degree = 1;
  std::vector<double> service_mean_s;  // per instance
  std::vector<InstanceState> instances;
  std::vector<int> downstreams;
  bool chained_input = false;  // single upstream in the same chain
};

double Expo(zerotune::Rng* rng, double mean) {
  const double u = std::max(rng->Uniform(), 1e-12);
  return -mean * std::log(u);
}

}  // namespace

Status EventSimulator::Options::Validate() const {
  if (!std::isfinite(duration_s) || duration_s <= 0.0) {
    return Status::InvalidArgument(
        "simulation duration_s must be positive and finite, got " +
        std::to_string(duration_s));
  }
  if (!std::isfinite(warmup_s) || warmup_s < 0.0) {
    return Status::InvalidArgument(
        "simulation warmup_s must be non-negative and finite, got " +
        std::to_string(warmup_s));
  }
  if (warmup_s > duration_s) {
    return Status::InvalidArgument(
        "simulation warmup_s (" + std::to_string(warmup_s) +
        ") must not exceed duration_s (" + std::to_string(duration_s) + ")");
  }
  if (max_events == 0) {
    return Status::InvalidArgument("max_events must be >= 1");
  }
  if (max_queue_per_instance == 0) {
    return Status::InvalidArgument("max_queue_per_instance must be >= 1");
  }
  return Status::OK();
}

Result<SimMeasurement> EventSimulator::Run(
    const dsp::ParallelQueryPlan& plan) const {
  ZT_RETURN_IF_ERROR(options_status_);
  ZT_RETURN_IF_ERROR(plan.Validate());
  ZT_RETURN_IF_ERROR(options_.faults.Validate(plan));
  const dsp::QueryPlan& q = plan.logical();
  zerotune::Rng rng(options_.seed);
  const FaultInjector injector(options_.faults);
  const bool chaos = !options_.faults.empty();

  // Build per-operator contexts.
  std::vector<OpContext> ops(q.num_operators());
  for (const Operator& op : q.operators()) {
    OpContext& ctx = ops[static_cast<size_t>(op.id)];
    ctx.op = &op;
    ctx.degree = plan.parallelism(op.id);
    ctx.instances.resize(static_cast<size_t>(ctx.degree));
    ctx.downstreams = q.downstreams(op.id);
    ctx.chained_input = plan.IsChainedWithUpstream(op.id);
    const double work_us =
        CostEngine::PerTupleWorkUs(plan, op.id, options_.params);
    const auto& nodes = plan.placement(op.id).instance_nodes;
    ctx.service_mean_s.resize(static_cast<size_t>(ctx.degree));
    for (int i = 0; i < ctx.degree; ++i) {
      double ghz = 2.0;
      if (!nodes.empty()) {
        ghz = plan.cluster().node(static_cast<size_t>(nodes[static_cast<size_t>(i)])).cpu_ghz;
      } else if (plan.cluster().num_nodes() > 0) {
        ghz = plan.cluster().node(0).cpu_ghz;
      }
      ctx.service_mean_s[static_cast<size_t>(i)] =
          work_us * 1e-6 / std::max(ghz, 0.1);
    }
  }

  // Node hosting an operator instance; unplaced plans follow the service
  // model's convention of charging everything to node 0.
  auto node_of = [&](int op_id, int inst) -> int {
    const auto& nodes = plan.placement(op_id).instance_nodes;
    if (!nodes.empty()) return nodes[static_cast<size_t>(inst)];
    return plan.cluster().num_nodes() > 0 ? 0 : -1;
  };

  // Pre-compute per-edge remote probability (network hop likelihood).
  auto remote_prob = [&](int up, int down) -> double {
    const auto& un = plan.placement(up).instance_nodes;
    const auto& dn = plan.placement(down).instance_nodes;
    if (un.empty() || dn.empty()) {
      const size_t n = plan.cluster().num_nodes();
      return n <= 1 ? 0.0 : 1.0 - 1.0 / static_cast<double>(n);
    }
    size_t remote = 0;
    for (int a : un) {
      for (int b : dn) {
        if (a != b) ++remote;
      }
    }
    return static_cast<double>(remote) /
           static_cast<double>(un.size() * dn.size());
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> pq;

  // Seed source emission events.
  for (int sid : q.Sources()) {
    const OpContext& ctx = ops[static_cast<size_t>(sid)];
    const double inst_rate =
        ctx.op->source.event_rate / static_cast<double>(ctx.degree);
    for (int i = 0; i < ctx.degree; ++i) {
      Event e;
      e.kind = EventKind::kEmit;
      e.op = sid;
      e.inst = i;
      e.time = Expo(&rng, 1.0 / std::max(inst_rate, 1e-9));
      pq.push(e);
    }
  }

  // Seed time-window timers.
  for (const Operator& op : q.operators()) {
    if (!op.IsWindowed()) continue;
    const dsp::WindowSpec& w = op.type == OperatorType::kWindowAggregate
                                   ? op.aggregate.window
                                   : op.join.window;
    if (op.type == OperatorType::kWindowAggregate &&
        w.policy == WindowPolicy::kTime) {
      const OpContext& ctx = ops[static_cast<size_t>(op.id)];
      for (int i = 0; i < ctx.degree; ++i) {
        Event e;
        e.kind = EventKind::kTimer;
        e.op = op.id;
        e.inst = i;
        e.time = w.slide / 1000.0;
        pq.push(e);
      }
    }
  }

  // Fault activations enter the event stream like any other event so that
  // crash-time queue sweeps happen in timestamp order.
  for (size_t f = 0; f < options_.faults.events().size(); ++f) {
    const FaultEvent& fe = options_.faults.events()[f];
    if (fe.kind != FaultKind::kNodeCrash) continue;
    Event e;
    e.kind = EventKind::kFault;
    e.op = static_cast<int>(f);
    e.time = fe.time_s;
    pq.push(e);
  }

  SimMeasurement result;
  std::vector<double> latencies_ms;
  size_t source_completions = 0;
  size_t sink_outputs = 0;
  size_t events = 0;
  const double measure_start = options_.warmup_s;

  // Sink outputs bucketed over time (100 ms bins, warmup included) to
  // report the per-fault before/after impact.
  constexpr double kBucketS = 0.1;
  std::vector<size_t> sink_buckets(
      static_cast<size_t>(std::ceil(options_.duration_s / kBucketS)) + 1, 0);

  // Forward declarations via lambdas.
  auto start_service = [&](int op_id, int inst, double now) {
    OpContext& ctx = ops[static_cast<size_t>(op_id)];
    InstanceState& st = ctx.instances[static_cast<size_t>(inst)];
    if (st.busy || st.queue.empty()) return;
    st.busy = true;
    st.in_service = st.queue.front();
    st.queue.pop_front();
    double mean = ctx.service_mean_s[static_cast<size_t>(inst)];
    if (chaos) {
      mean *= injector.ServiceTimeFactor(node_of(op_id, inst), op_id, inst,
                                         now);
    }
    const double service = Expo(&rng, mean);
    st.busy_seconds += service;
    ++st.processed;
    Event e;
    e.kind = EventKind::kDone;
    e.op = op_id;
    e.inst = inst;
    e.time = now + service;
    pq.push(e);
  };

  auto route_downstream = [&](int from_op, int from_inst, double now,
                              double created_at) {
    const OpContext& ctx = ops[static_cast<size_t>(from_op)];
    for (int d : ctx.downstreams) {
      OpContext& dctx = ops[static_cast<size_t>(d)];
      const auto& dplace = plan.placement(d);
      int target = 0;
      switch (dplace.partitioning) {
        case PartitioningStrategy::kForward:
          target = from_inst % dctx.degree;
          break;
        case PartitioningStrategy::kRebalance: {
          InstanceState& st = ops[static_cast<size_t>(from_op)]
                                  .instances[static_cast<size_t>(from_inst)];
          target = static_cast<int>(st.rr_counter++ %
                                    static_cast<uint64_t>(dctx.degree));
          break;
        }
        case PartitioningStrategy::kHash:
          target = static_cast<int>(
              rng.UniformInt(0, static_cast<int64_t>(dctx.degree) - 1));
          break;
      }
      // Which side of a join does this edge feed?
      int side = 0;
      const auto& ups = q.upstreams(d);
      for (size_t s = 0; s < ups.size(); ++s) {
        if (ups[s] == from_op) side = static_cast<int>(s);
      }
      double delay = 0.0;
      if (!dctx.chained_input) {
        const double bytes = ctx.op->output_schema.SizeBytes();
        const double gbps = 10.0;
        const double transfer_s = bytes * 8.0 / (gbps * 1e9);
        const bool remote = rng.Bernoulli(remote_prob(from_op, d));
        delay = remote
                    ? options_.params.network_base_latency_ms / 1e3 + transfer_s
                    : 0.01e-3;
        if (remote && chaos) {
          delay += injector.ExtraNetworkDelayMs(now) / 1e3;
        }
      }
      Event e;
      e.kind = EventKind::kArrival;
      e.op = d;
      e.inst = target;
      e.side = side;
      e.created_at = created_at;
      e.time = now + delay;
      pq.push(e);
    }
  };

  auto enqueue_tuple = [&](int op_id, int inst, int side, double now,
                           double created_at) {
    OpContext& ctx = ops[static_cast<size_t>(op_id)];
    InstanceState& st = ctx.instances[static_cast<size_t>(inst)];
    if (chaos && injector.NodeDown(node_of(op_id, inst), now)) {
      ++result.tuples_lost;
      return;
    }
    if (st.queue.size() >= options_.max_queue_per_instance) {
      ++st.dropped;
      result.backpressured = true;
      return;
    }
    st.queue.push_back({created_at, side});
    st.max_queue_depth = std::max(st.max_queue_depth, st.queue.size());
    start_service(op_id, inst, now);
  };

  while (!pq.empty() && events < options_.max_events) {
    Event ev = pq.top();
    pq.pop();
    if (ev.time > options_.duration_s) break;
    ++events;
    // kFault events carry a fault index in `op`, not an operator id.
    OpContext& ctx = ops[ev.kind == EventKind::kFault
                             ? 0
                             : static_cast<size_t>(ev.op)];

    switch (ev.kind) {
      case EventKind::kEmit: {
        // Source generator: the raw event enters the source's own queue
        // (the source does serialization work per tuple), then schedules
        // the next emission. A source instance on a crashed node stops
        // generating for good.
        if (chaos && injector.NodeDown(node_of(ev.op, ev.inst), ev.time)) {
          break;
        }
        enqueue_tuple(ev.op, ev.inst, 0, ev.time, ev.time);
        double inst_rate = ctx.op->source.event_rate /
                           static_cast<double>(ctx.degree);
        if (chaos) inst_rate *= injector.SourceRateFactor(ev.op, ev.time);
        Event next = ev;
        next.time = ev.time + Expo(&rng, 1.0 / std::max(inst_rate, 1e-9));
        pq.push(next);
        break;
      }
      case EventKind::kArrival:
        enqueue_tuple(ev.op, ev.inst, ev.side, ev.time, ev.created_at);
        break;
      case EventKind::kFault: {
        // A node crash activates: everything queued on its instances is
        // lost; instances mid-service drop their output at kDone.
        const FaultEvent& fe =
            options_.faults.events()[static_cast<size_t>(ev.op)];
        for (const Operator& op : q.operators()) {
          OpContext& victim = ops[static_cast<size_t>(op.id)];
          for (int i = 0; i < victim.degree; ++i) {
            if (node_of(op.id, i) != fe.node) continue;
            InstanceState& st = victim.instances[static_cast<size_t>(i)];
            result.tuples_lost += st.queue.size();
            st.queue.clear();
            st.window[0].clear();
            st.window[1].clear();
            st.pane_count = 0;
            st.pane_created_sum = 0.0;
          }
        }
        break;
      }
      case EventKind::kTimer: {
        // Time-based aggregate window fire; a timer on a crashed node
        // stops rescheduling itself.
        if (chaos && injector.NodeDown(node_of(ev.op, ev.inst), ev.time)) {
          break;
        }
        InstanceState& st = ctx.instances[static_cast<size_t>(ev.inst)];
        const auto& agg = ctx.op->aggregate;
        if (st.pane_count > 0) {
          const double overlap = std::max(
              1.0, agg.window.length / std::max(agg.window.slide, 1e-9));
          const size_t outputs = static_cast<size_t>(std::lround(
              agg.selectivity * static_cast<double>(st.pane_count) * overlap));
          const double mean_created =
              st.pane_created_sum / static_cast<double>(st.pane_count);
          for (size_t k = 0; k < outputs; ++k) {
            route_downstream(ev.op, ev.inst, ev.time, mean_created);
          }
          st.pane_count = 0;
          st.pane_created_sum = 0.0;
        }
        Event next = ev;
        next.time = ev.time + agg.window.slide / 1000.0;
        pq.push(next);
        break;
      }
      case EventKind::kDone: {
        InstanceState& st = ctx.instances[static_cast<size_t>(ev.inst)];
        const QueuedTuple tup = st.in_service;
        st.busy = false;
        if (chaos && injector.NodeDown(node_of(ev.op, ev.inst), ev.time)) {
          // The node died while this tuple was in service: its output is
          // lost and the instance never picks up more work.
          ++result.tuples_lost;
          break;
        }
        switch (ctx.op->type) {
          case OperatorType::kSource:
            if (ev.time >= measure_start) ++source_completions;
            route_downstream(ev.op, ev.inst, ev.time, tup.created_at);
            break;
          case OperatorType::kFilter:
            if (rng.Bernoulli(ctx.op->filter.selectivity)) {
              route_downstream(ev.op, ev.inst, ev.time, tup.created_at);
            }
            break;
          case OperatorType::kWindowAggregate: {
            const auto& agg = ctx.op->aggregate;
            st.pane_count += 1;
            st.pane_created_sum += tup.created_at;
            if (agg.window.policy == WindowPolicy::kCount &&
                static_cast<double>(st.pane_count) >= agg.window.slide) {
              const double overlap = std::max(
                  1.0,
                  agg.window.length / std::max(agg.window.slide, 1e-9));
              const size_t outputs = static_cast<size_t>(std::lround(
                  agg.selectivity * agg.window.slide * overlap));
              const double mean_created =
                  st.pane_created_sum / static_cast<double>(st.pane_count);
              for (size_t k = 0; k < outputs; ++k) {
                route_downstream(ev.op, ev.inst, ev.time, mean_created);
              }
              st.pane_count = 0;
              st.pane_created_sum = 0.0;
            }
            break;
          }
          case OperatorType::kWindowJoin: {
            const auto& join = ctx.op->join;
            const int side = tup.side == 0 ? 0 : 1;
            const int opp = 1 - side;
            // Evict expired window content.
            auto evict = [&](std::deque<std::pair<double, double>>& w) {
              if (join.window.policy == WindowPolicy::kCount) {
                while (static_cast<double>(w.size()) > join.window.length) {
                  w.pop_front();
                }
              } else {
                const double horizon = ev.time - join.window.length / 1000.0;
                while (!w.empty() && w.front().first < horizon) w.pop_front();
              }
            };
            st.window[side].emplace_back(ev.time, tup.created_at);
            evict(st.window[side]);
            evict(st.window[opp]);
            st.join_credit += join.selectivity *
                              static_cast<double>(st.window[opp].size());
            while (st.join_credit >= 1.0) {
              route_downstream(ev.op, ev.inst, ev.time, tup.created_at);
              st.join_credit -= 1.0;
            }
            break;
          }
          case OperatorType::kSink:
            sink_buckets[std::min(sink_buckets.size() - 1,
                                  static_cast<size_t>(ev.time / kBucketS))]++;
            if (ev.time >= measure_start) {
              ++sink_outputs;
              const double latency_ms = (ev.time - tup.created_at) * 1e3;
              latencies_ms.push_back(latency_ms);
              result.latency_histogram.Record(latency_ms);
            }
            break;
        }
        start_service(ev.op, ev.inst, ev.time);
        break;
      }
    }
  }

  const double window_s = std::max(options_.duration_s - measure_start, 1e-9);
  result.tuples_completed = latencies_ms.size();
  result.mean_latency_ms = Mean(latencies_ms);
  result.median_latency_ms = Median(latencies_ms);
  result.p95_latency_ms = Percentile(latencies_ms, 95.0);
  result.throughput_tps =
      static_cast<double>(source_completions) / window_s;
  result.sink_output_tps = static_cast<double>(sink_outputs) / window_s;
  // Residual queue growth also signals backpressure; collect per-operator
  // statistics for cross-checks against the analytical engine.
  const double horizon = options_.duration_s;
  for (const OpContext& ctx : ops) {
    OperatorSimStats stats;
    stats.op_id = ctx.op->id;
    double busy_sum = 0.0;
    for (const InstanceState& st : ctx.instances) {
      if (st.dropped > 0 || st.queue.size() > 1000) result.backpressured = true;
      busy_sum += std::min(st.busy_seconds, horizon) / horizon;
      stats.max_queue_depth = std::max(stats.max_queue_depth,
                                       st.max_queue_depth);
      stats.tuples_processed += st.processed;
    }
    stats.avg_utilization =
        busy_sum / static_cast<double>(std::max<size_t>(1, ctx.instances.size()));
    result.per_operator.push_back(stats);
  }

  // Per-fault impact: mean sink rate over the second preceding vs. the
  // second following each fault's onset.
  auto window_tps = [&](double lo, double hi) -> double {
    lo = std::max(lo, 0.0);
    hi = std::min(hi, options_.duration_s);
    if (hi - lo < kBucketS) return 0.0;
    const size_t b_lo = static_cast<size_t>(lo / kBucketS);
    const size_t b_hi = std::min(sink_buckets.size(),
                                 static_cast<size_t>(hi / kBucketS));
    size_t outputs = 0;
    for (size_t b = b_lo; b < b_hi; ++b) outputs += sink_buckets[b];
    return static_cast<double>(outputs) /
           (static_cast<double>(b_hi - b_lo) * kBucketS);
  };
  for (const FaultEvent& fe : options_.faults.events()) {
    FaultImpact impact;
    impact.event = fe;
    impact.sink_tps_before = window_tps(fe.time_s - 1.0, fe.time_s);
    impact.sink_tps_after = window_tps(fe.time_s, fe.time_s + 1.0);
    result.fault_impacts.push_back(impact);
  }
  return result;
}

}  // namespace zerotune::sim
