#include "sim/ground_truth.h"

#include <cmath>

namespace zerotune::sim {

Status GroundTruthOptions::Validate() const {
  if (!std::isfinite(drift_factor) || drift_factor <= 0.0) {
    return Status::InvalidArgument(
        "ground-truth drift_factor must be finite and > 0");
  }
  return Status::OK();
}

GroundTruthStream::GroundTruthStream(CostParams params,
                                     GroundTruthOptions options)
    : engine_(params, options.noise_seed),
      options_(options),
      options_status_(options.Validate()) {
  ZT_CHECK_OK(options_status_);
}

Result<CostMeasurement> GroundTruthStream::Measure(
    const dsp::ParallelQueryPlan& plan) const {
  ZT_ASSIGN_OR_RETURN(CostMeasurement m, engine_.Measure(plan));
  MutexLock lock(mu_);
  ++measurements_;
  if (drifted_) {
    m.latency_ms *= options_.drift_factor;
    m.throughput_tps /= options_.drift_factor;
  }
  return m;
}

bool GroundTruthStream::SetDrifted(bool drifted) {
  MutexLock lock(mu_);
  const bool previous = drifted_;
  drifted_ = drifted;
  return previous;
}

bool GroundTruthStream::drifted() const {
  MutexLock lock(mu_);
  return drifted_;
}

uint64_t GroundTruthStream::measurements() const {
  MutexLock lock(mu_);
  return measurements_;
}

}  // namespace zerotune::sim
