#include "sim/calibration.h"

#include <cmath>
#include <functional>

namespace zerotune::sim {

namespace {

using dsp::Cluster;
using dsp::DataType;
using dsp::ParallelQueryPlan;
using dsp::QueryPlan;
using dsp::TupleSchema;

/// A probe deployment isolating one operator type at a stable load.
ParallelQueryPlan MakeProbe(dsp::OperatorType type, double rate) {
  QueryPlan q;
  dsp::SourceProperties s;
  s.event_rate = rate;
  s.schema = TupleSchema::Uniform(3, DataType::kDouble);
  const int src = q.AddSource(s);
  int tail = src;
  switch (type) {
    case dsp::OperatorType::kFilter: {
      dsp::FilterProperties f;
      f.selectivity = 0.9;
      tail = q.AddFilter(src, f).value();
      break;
    }
    case dsp::OperatorType::kWindowAggregate: {
      dsp::AggregateProperties a;
      a.window = dsp::WindowSpec{dsp::WindowType::kTumbling,
                                 dsp::WindowPolicy::kCount, 10, 10};
      a.selectivity = 0.2;
      tail = q.AddWindowAggregate(src, a).value();
      break;
    }
    case dsp::OperatorType::kWindowJoin: {
      dsp::SourceProperties s2 = s;
      const int src2 = q.AddSource(s2);
      dsp::JoinProperties j;
      j.window = dsp::WindowSpec{dsp::WindowType::kTumbling,
                                 dsp::WindowPolicy::kCount, 10, 10};
      j.selectivity = 0.01;
      tail = q.AddWindowJoin(src, src2, j).value();
      break;
    }
    default:
      break;
  }
  ZT_CHECK_OK(q.AddSink(tail));
  ParallelQueryPlan plan(q, Cluster::Homogeneous("m510", 2).value());
  ZT_CHECK_OK(plan.SetUniformParallelism(2, /*pin_endpoints=*/false));
  ZT_CHECK_OK(plan.PlaceRoundRobin());
  return plan;
}

/// Golden-section minimization of a 1-D convex-ish objective.
double GoldenSearch(double lo, double hi, int iterations,
                    const std::function<double(double)>& f) {
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c), fd = f(d);
  for (int i = 0; i < iterations; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
  }
  return fc < fd ? c : d;
}

}  // namespace

Result<CalibrationReport> EngineCalibrator::Calibrate(
    const CostParams& initial) const {
  CalibrationReport report;
  report.params = initial;

  struct Target {
    dsp::OperatorType probe_type;
    double* constant;  // into report.params
    double des_latency_ms = 0.0;
  };
  std::vector<Target> targets = {
      {dsp::OperatorType::kFilter, &report.params.filter_work_us},
      {dsp::OperatorType::kWindowAggregate,
       &report.params.aggregate_work_us},
      {dsp::OperatorType::kWindowJoin, &report.params.join_work_us},
  };

  // Ground-truth probes from the discrete-event simulator.
  EventSimulator::Options sim_opts;
  sim_opts.duration_s = options_.sim_duration_s;
  sim_opts.warmup_s = options_.sim_duration_s / 4.0;
  sim_opts.seed = options_.seed;
  sim_opts.params = initial;
  const EventSimulator des(sim_opts);
  for (Target& t : targets) {
    const auto plan = MakeProbe(t.probe_type, options_.probe_rate);
    ZT_ASSIGN_OR_RETURN(const SimMeasurement m, des.Run(plan));
    if (m.tuples_completed == 0) {
      return Status::Internal("calibration probe produced no tuples");
    }
    t.des_latency_ms = m.mean_latency_ms;
    ++report.probes;
  }

  auto gap = [&](const CostParams& params) {
    double err = 0.0;
    const CostEngine engine(params);
    for (const Target& t : targets) {
      const auto plan = MakeProbe(t.probe_type, options_.probe_rate);
      const auto m = engine.MeasureNoiseless(plan);
      const double lat = m.ok() ? m.value().latency_ms : 1e9;
      const double d = std::log(std::max(lat, 1e-9)) -
                       std::log(std::max(t.des_latency_ms, 1e-9));
      err += d * d;
    }
    return err / static_cast<double>(targets.size());
  };

  report.initial_error = gap(report.params);

  // Coordinate descent: fit each constant with golden-section search.
  for (Target& t : targets) {
    const double center = *t.constant;
    const double lo = center / options_.range_factor;
    const double hi = center * options_.range_factor;
    *t.constant = GoldenSearch(lo, hi, options_.search_iterations,
                               [&](double candidate) {
                                 *t.constant = candidate;
                                 return gap(report.params);
                               });
  }
  report.final_error = gap(report.params);
  return report;
}

}  // namespace zerotune::sim
