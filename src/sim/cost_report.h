#ifndef ZEROTUNE_SIM_COST_REPORT_H_
#define ZEROTUNE_SIM_COST_REPORT_H_

#include <string>

#include "dsp/parallel_plan.h"
#include "sim/cost_engine.h"

namespace zerotune::sim {

/// Human-readable decomposition of a cost measurement: where every
/// millisecond of the end-to-end latency comes from (service, queueing,
/// window fire, network) and which operator caps the throughput. The
/// operator-level counterpart of the model-side PredictionExplainer.
struct CostReport {
  /// Renders a per-operator breakdown table plus a bottleneck summary.
  static std::string Render(const dsp::ParallelQueryPlan& plan,
                            const CostMeasurement& measurement);

  /// Id of the operator with the smallest capacity/offered-load headroom
  /// (the throughput bottleneck), or -1 when the plan is empty.
  static int BottleneckOperator(const CostMeasurement& measurement);
};

}  // namespace zerotune::sim

#endif  // ZEROTUNE_SIM_COST_REPORT_H_
