#ifndef ZEROTUNE_SIM_CALIBRATION_H_
#define ZEROTUNE_SIM_CALIBRATION_H_

#include <vector>

#include "common/status.h"
#include "sim/cost_engine.h"
#include "sim/event_simulator.h"

namespace zerotune::sim {

/// Fit report of one calibration run.
struct CalibrationReport {
  CostParams params;           // the fitted parameters
  double initial_error = 0.0;  // mean log-latency gap before fitting
  double final_error = 0.0;    // mean log-latency gap after fitting
  size_t probes = 0;           // simulator runs consumed
};

/// Calibrates the analytical engine's per-operator work constants against
/// the discrete-event simulator (or, in a real deployment, against
/// measured executions). Probe plans isolate one operator type each at a
/// stable load; a golden-section search per constant minimizes the mean
/// squared log-latency gap between engine and simulator. This is the
/// offline step a practitioner would run once per engine version to keep
/// the label generator honest.
class EngineCalibrator {
 public:
  struct Options {
    /// Probe event rate (kept well below capacity so queueing is mild and
    /// the service-time term dominates).
    double probe_rate = 20000.0;
    double sim_duration_s = 2.0;
    /// Search iterations per constant.
    int search_iterations = 12;
    /// Search range as a multiple of the current constant.
    double range_factor = 3.0;
    uint64_t seed = 17;
  };

  EngineCalibrator() : EngineCalibrator(Options()) {}
  explicit EngineCalibrator(Options options) : options_(options) {}

  /// Fits {source, filter, aggregate, join, sink} work constants starting
  /// from `initial`, returning the fitted parameters and error reduction.
  Result<CalibrationReport> Calibrate(const CostParams& initial) const;

 private:
  Options options_;
};

}  // namespace zerotune::sim

#endif  // ZEROTUNE_SIM_CALIBRATION_H_
