#include "sim/cost_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/rng.h"

namespace zerotune::sim {

namespace {

using dsp::DataType;
using dsp::Operator;
using dsp::OperatorType;
using dsp::PartitioningStrategy;

double TypeWorkFactor(DataType t, const CostParams& p) {
  switch (t) {
    case DataType::kString: return p.string_work_factor;
    case DataType::kDouble: return p.double_work_factor;
    case DataType::kInt: return 1.0;
  }
  return 1.0;
}

double AggFnFactor(dsp::AggregateFunction f) {
  switch (f) {
    case dsp::AggregateFunction::kAvg: return 1.2;
    case dsp::AggregateFunction::kCount: return 0.8;
    case dsp::AggregateFunction::kMin:
    case dsp::AggregateFunction::kMax:
    case dsp::AggregateFunction::kSum:
      return 1.0;
  }
  return 1.0;
}

uint64_t FnvMix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

uint64_t HashDouble(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Fraction of (upstream instance, downstream instance) communicating
/// pairs placed on different cluster nodes.
double RemotePairFraction(const dsp::ParallelQueryPlan& plan, int up_id,
                          int down_id) {
  const auto& up = plan.placement(up_id);
  const auto& down = plan.placement(down_id);
  if (up.instance_nodes.empty() || down.instance_nodes.empty()) {
    const size_t n = plan.cluster().num_nodes();
    return n <= 1 ? 0.0 : 1.0 - 1.0 / static_cast<double>(n);
  }
  const bool forward =
      down.partitioning == PartitioningStrategy::kForward &&
      up.instance_nodes.size() == down.instance_nodes.size();
  size_t remote = 0;
  size_t total = 0;
  if (forward) {
    for (size_t i = 0; i < up.instance_nodes.size(); ++i) {
      ++total;
      if (up.instance_nodes[i] != down.instance_nodes[i]) ++remote;
    }
  } else {
    for (int un : up.instance_nodes) {
      for (int dn : down.instance_nodes) {
        ++total;
        if (un != dn) ++remote;
      }
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(remote) / static_cast<double>(total);
}

/// Average clock speed (GHz) over the nodes hosting an operator's
/// instances; cluster average when unplaced.
double AvgInstanceGhz(const dsp::ParallelQueryPlan& plan, int op_id) {
  const auto& p = plan.placement(op_id);
  const dsp::Cluster& cluster = plan.cluster();
  if (p.instance_nodes.empty()) {
    double sum = 0.0;
    for (const auto& n : cluster.nodes()) sum += n.cpu_ghz;
    return cluster.num_nodes() == 0
               ? 1.0
               : sum / static_cast<double>(cluster.num_nodes());
  }
  double sum = 0.0;
  for (int n : p.instance_nodes) {
    sum += cluster.node(static_cast<size_t>(n)).cpu_ghz;
  }
  return sum / static_cast<double>(p.instance_nodes.size());
}

double MinLinkGbps(const dsp::Cluster& cluster) {
  double g = 10.0;
  for (const auto& n : cluster.nodes()) g = std::min(g, n.network_gbps);
  return g;
}

}  // namespace

CostEngine::CostEngine(CostParams params, uint64_t noise_seed)
    : params_(params), noise_seed_(noise_seed) {}

Result<CostMeasurement> CostEngine::Measure(
    const dsp::ParallelQueryPlan& plan) const {
  return MeasureImpl(plan, /*with_noise=*/params_.noise_sigma > 0.0);
}

Result<CostMeasurement> CostEngine::MeasureNoiseless(
    const dsp::ParallelQueryPlan& plan) const {
  return MeasureImpl(plan, /*with_noise=*/false);
}

uint64_t CostEngine::PlanFingerprint(const dsp::ParallelQueryPlan& plan) {
  uint64_t h = 0xcbf29ce484222325ULL;
  const dsp::QueryPlan& q = plan.logical();
  for (const Operator& op : q.operators()) {
    h = FnvMix(h, static_cast<uint64_t>(op.type));
    h = FnvMix(h, static_cast<uint64_t>(plan.parallelism(op.id)));
    h = FnvMix(h, static_cast<uint64_t>(plan.placement(op.id).partitioning));
    h = FnvMix(h, static_cast<uint64_t>(op.output_schema.width()));
    switch (op.type) {
      case OperatorType::kSource:
        h = FnvMix(h, HashDouble(op.source.event_rate));
        break;
      case OperatorType::kFilter:
        h = FnvMix(h, HashDouble(op.filter.selectivity));
        break;
      case OperatorType::kWindowAggregate:
        h = FnvMix(h, HashDouble(op.aggregate.window.length));
        h = FnvMix(h, HashDouble(op.aggregate.selectivity));
        break;
      case OperatorType::kWindowJoin:
        h = FnvMix(h, HashDouble(op.join.window.length));
        h = FnvMix(h, HashDouble(op.join.selectivity));
        break;
      case OperatorType::kSink:
        break;
    }
  }
  for (const auto& n : plan.cluster().nodes()) {
    h = FnvMix(h, static_cast<uint64_t>(n.cpu_cores));
    h = FnvMix(h, HashDouble(n.cpu_ghz));
  }
  return h;
}

double CostEngine::PerTupleWorkUs(const dsp::ParallelQueryPlan& plan,
                                  int op_id, const CostParams& params) {
  const dsp::QueryPlan& q = plan.logical();
  const std::vector<double> offered_in = q.EstimatedInputRates();
  const std::vector<double> offered_out = q.EstimatedOutputRates();
  const Operator& op = q.op(op_id);
  const auto& ups = q.upstreams(op_id);
  const int degree = plan.parallelism(op_id);

  // Rate-weighted mean input tuple size; serde applies on unchained edges.
  const double in_rate = offered_in[static_cast<size_t>(op_id)];
  double weighted_bytes = 0.0;
  double serde_bytes = 0.0;
  if (op.type == OperatorType::kSource) {
    weighted_bytes = op.source.schema.SizeBytes();
  } else if (in_rate > 0.0) {
    for (int u : ups) {
      const double share = offered_out[static_cast<size_t>(u)] / in_rate;
      const double bytes = q.op(u).output_schema.SizeBytes();
      weighted_bytes += share * bytes;
      serde_bytes += share * bytes;
    }
    if (plan.IsChainedWithUpstream(op_id)) serde_bytes = 0.0;
  }

  double work_us = 0.0;
  switch (op.type) {
    case OperatorType::kSource:
      work_us = params.source_work_us;
      break;
    case OperatorType::kFilter:
      work_us = params.filter_work_us *
                TypeWorkFactor(op.filter.literal_class, params);
      break;
    case OperatorType::kWindowAggregate: {
      const auto& agg = op.aggregate;
      const double overlap =
          std::max(1.0, agg.window.length / std::max(agg.window.slide, 1e-9));
      // Sliding windows maintain `overlap` concurrent panes; tumbling = 1.
      work_us = params.aggregate_work_us * AggFnFactor(agg.function) *
                (0.5 + 0.5 * overlap);
      work_us *= TypeWorkFactor(agg.aggregate_class, params);
      if (agg.keyed) {
        work_us +=
            params.keyed_state_work_us * TypeWorkFactor(agg.key_class, params);
      }
      break;
    }
    case OperatorType::kWindowJoin: {
      const auto& join = op.join;
      work_us = params.join_work_us;
      work_us +=
          params.keyed_state_work_us * TypeWorkFactor(join.key_class, params);
      // Probe cost against the opposite window's content per instance.
      double window_tuples = 0.0;
      for (int u : ups) {
        const double inst_rate =
            offered_out[static_cast<size_t>(u)] / std::max(1, degree);
        window_tuples += join.window.ExpectedTuples(inst_rate);
      }
      const double overlap = std::max(
          1.0, join.window.length / std::max(join.window.slide, 1e-9));
      work_us += params.probe_work_us_per_candidate *
                 params.join_bucket_fraction * 0.5 * window_tuples * overlap;
      break;
    }
    case OperatorType::kSink:
      work_us = params.sink_work_us;
      break;
  }

  work_us += params.touch_work_us_per_byte * weighted_bytes;
  work_us += params.serde_work_us_per_byte * serde_bytes;

  // Fan-in merge overhead: an instance multiplexes streams from all
  // upstream instances.
  int upstream_instances = 0;
  for (int u : ups) upstream_instances += plan.parallelism(u);
  if (upstream_instances > 1) {
    work_us += params.merge_overhead_us *
               std::log2(1.0 + static_cast<double>(upstream_instances));
  }
  return work_us;
}

Result<CostMeasurement> CostEngine::MeasureImpl(
    const dsp::ParallelQueryPlan& plan, bool with_noise) const {
  ZT_RETURN_IF_ERROR(plan.Validate());

  const dsp::QueryPlan& q = plan.logical();
  const size_t n_ops = q.num_operators();
  const std::vector<int> topo = q.TopologicalOrder();
  const std::vector<double> offered_in = q.EstimatedInputRates();
  const std::vector<double> offered_out = q.EstimatedOutputRates();

  CostMeasurement m;
  m.per_operator.resize(n_ops);

  // Pass 1: per-operator service work, capacity, bottleneck detection.
  std::vector<double> service_s(n_ops, 0.0);
  std::vector<double> skew(n_ops, 1.0);
  double bottleneck = 1.0;  // sustainable fraction of the offered load

  for (int id : topo) {
    const auto& placement = plan.placement(id);
    const int degree = placement.parallelism;

    const double in_rate = offered_in[static_cast<size_t>(id)];
    const double work_us = PerTupleWorkUs(plan, id, params_);
    const double ghz = AvgInstanceGhz(plan, id);
    const double s = work_us * 1e-6 / std::max(ghz, 0.1);
    service_s[static_cast<size_t>(id)] = s;

    double op_skew = 1.0;
    if (placement.partitioning == PartitioningStrategy::kHash && degree > 1) {
      op_skew = 1.0 + params_.hash_skew_coefficient *
                          std::log(static_cast<double>(degree));
    }
    skew[static_cast<size_t>(id)] = op_skew;

    const double capacity =
        static_cast<double>(degree) / s * params_.max_utilization / op_skew;

    auto& diag = m.per_operator[static_cast<size_t>(id)];
    diag.op_id = id;
    diag.input_rate_tps = in_rate;
    diag.service_time_us = work_us / std::max(ghz, 0.1);
    diag.capacity_tps = capacity;

    if (in_rate > 0.0) {
      bottleneck = std::min(bottleneck, capacity / in_rate);
    }
  }

  m.sustained_fraction = std::min(1.0, bottleneck);
  m.backpressured = bottleneck < 1.0;

  double total_source_rate = 0.0;
  for (int sid : q.Sources()) {
    total_source_rate += q.op(sid).source.event_rate;
  }
  m.throughput_tps = m.sustained_fraction * total_source_rate;

  // Pass 2: per-operator delays under the throttled (actual) rates, then
  // critical-path aggregation.
  const double link_gbps = MinLinkGbps(plan.cluster());
  std::vector<double> op_delay_ms(n_ops, 0.0);
  for (int id : topo) {
    const Operator& op = q.op(id);
    const int degree = plan.parallelism(id);
    const double actual_in =
        offered_in[static_cast<size_t>(id)] * m.sustained_fraction;
    auto& diag = m.per_operator[static_cast<size_t>(id)];
    diag.actual_input_rate_tps = actual_in;

    const double s = service_s[static_cast<size_t>(id)];
    const double mu = 1.0 / s;
    const double inst_rate =
        actual_in / static_cast<double>(degree) * skew[static_cast<size_t>(id)];
    double rho = inst_rate * s;
    // Saturation is judged on the *offered* load: an operator whose
    // capacity is below its pre-throttling input rate is the reason the
    // sources were throttled (robust against FP rounding of the
    // throttled rate landing exactly on max_utilization).
    diag.saturated =
        diag.input_rate_tps > diag.capacity_tps * (1.0 + 1e-9);
    rho = std::min(rho, params_.saturated_utilization);
    diag.utilization = rho;

    // M/M/1 waiting time W_q = ρ / (µ (1 − ρ)) while stable; a saturated
    // instance runs with a full input buffer instead, so tuples wait for
    // the whole buffer to drain ahead of them (the backpressure latency
    // cliff).
    double queue_s = diag.saturated
                         ? params_.buffer_tuples_per_instance / mu
                         : rho / (mu * (1.0 - rho));
    queue_s = std::min(queue_s, params_.max_queue_delay_ms / 1e3);
    diag.queue_delay_ms = queue_s * 1e3;

    double window_ms = 0.0;
    if (op.IsWindowed()) {
      const dsp::WindowSpec& w = op.type == OperatorType::kWindowAggregate
                                     ? op.aggregate.window
                                     : op.join.window;
      const double per_inst =
          std::max(actual_in / static_cast<double>(degree), 1e-6);
      // A tuple waits on average half a slide interval before its window
      // fires.
      window_ms = 0.5 * w.FireDelaySeconds(per_inst) * 1e3;
      window_ms = std::min(window_ms, params_.max_queue_delay_ms);
    }
    diag.window_delay_ms = window_ms;

    double network_ms = 0.0;
    if (op.type != OperatorType::kSource &&
        !(plan.IsChainedWithUpstream(id))) {
      double in_rate = offered_in[static_cast<size_t>(id)];
      for (int u : q.upstreams(id)) {
        const double share =
            in_rate > 0.0 ? offered_out[static_cast<size_t>(u)] / in_rate
                          : 1.0;
        const double remote = RemotePairFraction(plan, u, id);
        const double bytes = q.op(u).output_schema.SizeBytes();
        const double transfer_ms = bytes * 8.0 / (link_gbps * 1e9) * 1e3;
        network_ms +=
            share * remote * (params_.network_base_latency_ms + transfer_ms);
      }
    }
    diag.network_delay_ms = network_ms;

    op_delay_ms[static_cast<size_t>(id)] =
        s * 1e3 + diag.queue_delay_ms + window_ms + network_ms;
  }

  // Critical path: longest source→sink chain of operator delays.
  std::vector<double> path_ms(n_ops, 0.0);
  for (int id : topo) {
    double best_upstream = 0.0;
    for (int u : q.upstreams(id)) {
      best_upstream = std::max(best_upstream, path_ms[static_cast<size_t>(u)]);
    }
    path_ms[static_cast<size_t>(id)] =
        best_upstream + op_delay_ms[static_cast<size_t>(id)];
  }
  m.latency_ms = path_ms[static_cast<size_t>(q.sink())] +
                 2.0 * params_.external_io_latency_ms;

  if (with_noise) {
    Rng noise_rng(PlanFingerprint(plan) ^ noise_seed_);
    m.latency_ms *= noise_rng.LogNormalFactor(params_.noise_sigma);
    m.throughput_tps *= noise_rng.LogNormalFactor(params_.noise_sigma);
  }
  return m;
}

}  // namespace zerotune::sim
