#ifndef ZEROTUNE_SIM_GROUND_TRUTH_H_
#define ZEROTUNE_SIM_GROUND_TRUTH_H_

#include <cstdint>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dsp/parallel_plan.h"
#include "sim/cost_engine.h"

namespace zerotune::sim {

/// Configuration of the drift-able ground-truth stream.
struct GroundTruthOptions {
  /// Multiplier applied to measured latency (and divided out of
  /// throughput) while the stream is drifted — stands in for the cluster
  /// slowdown / workload shift the live model was not trained on.
  double drift_factor = 2.0;
  /// Seed of the engine's plan-keyed measurement noise.
  uint64_t noise_seed = 0x5eed;

  Status Validate() const;
};

/// The simulator's stand-in for "what actually happened on the cluster":
/// CostEngine measurements with an explicitly switchable drift regime.
///
/// While undrifted, Measure() is exactly the engine's (deterministically
/// noisy) measurement. After SetDrifted(true), measured latencies scale by
/// drift_factor and throughput by 1/drift_factor — the environment changed
/// but the live model's predictions did not, which is precisely the
/// q-error trend the DriftDetector is built to catch. Drift is toggled
/// explicitly (by scenario step count, not wall time), so serve-sim replay
/// with a fixed --seed is bit-identical regardless of host speed.
///
/// Thread-safe.
class GroundTruthStream {
 public:
  explicit GroundTruthStream(CostParams params = {},
                             GroundTruthOptions options = {});

  /// Measures one plan execution under the current regime.
  Result<CostMeasurement> Measure(const dsp::ParallelQueryPlan& plan) const;

  /// Switches the drift regime. Returns the previous regime.
  bool SetDrifted(bool drifted);
  bool drifted() const;

  /// Executions measured so far (across both regimes).
  uint64_t measurements() const;

  const CostEngine& engine() const { return engine_; }

 private:
  const CostEngine engine_;
  const GroundTruthOptions options_;
  const Status options_status_;

  mutable Mutex mu_;
  bool drifted_ ZT_GUARDED_BY(mu_) = false;
  mutable uint64_t measurements_ ZT_GUARDED_BY(mu_) = 0;
};

}  // namespace zerotune::sim

#endif  // ZEROTUNE_SIM_GROUND_TRUTH_H_
