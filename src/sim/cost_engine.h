#ifndef ZEROTUNE_SIM_COST_ENGINE_H_
#define ZEROTUNE_SIM_COST_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dsp/parallel_plan.h"
#include "sim/cost_params.h"

namespace zerotune::sim {

/// Per-operator diagnostics exposed for tests and analysis tools.
struct OperatorCostBreakdown {
  int op_id = -1;
  double input_rate_tps = 0.0;      // offered (pre-backpressure) input rate
  double actual_input_rate_tps = 0.0;
  double service_time_us = 0.0;     // per tuple on the average instance
  double capacity_tps = 0.0;        // sustainable rate across instances
  double utilization = 0.0;         // hottest-instance utilization
  double queue_delay_ms = 0.0;
  double window_delay_ms = 0.0;
  double network_delay_ms = 0.0;
  bool saturated = false;
};

/// Ground-truth style performance measurement of a parallel query plan.
/// Stands in for the paper's observed Flink executions.
struct CostMeasurement {
  /// End-to-end latency (ms): critical path from source ingestion to sink
  /// emission including processing, queueing, window-fire, network, and
  /// external I/O delays (paper Def. 1).
  double latency_ms = 0.0;
  /// Sustained processed-record rate (tuples/s) — the ingestion rate the
  /// plan keeps up with after backpressure throttling (paper Def. 2).
  double throughput_tps = 0.0;
  /// True when any operator saturated and the sources were throttled.
  bool backpressured = false;
  /// Fraction of the offered source rate actually sustained, in (0, 1].
  double sustained_fraction = 1.0;

  std::vector<OperatorCostBreakdown> per_operator;
};

/// Analytical queueing-based performance model of a Flink-like DSP engine.
///
/// Given a placed ParallelQueryPlan the engine derives, per operator:
/// per-tuple service work (operator type, tuple width, window config,
/// key/literal classes, chaining-dependent serde), per-instance load
/// (partitioning and hash skew aware), capacity and backpressure, queueing
/// and window-fire delays, and network hop costs — then aggregates the
/// critical-path latency and sustained throughput. A deterministic,
/// plan-keyed lognormal noise models measurement variance so that labels
/// behave like observations rather than a closed-form oracle.
class CostEngine {
 public:
  explicit CostEngine(CostParams params = {}, uint64_t noise_seed = 0x5eed);

  /// Measures the plan. Fails when the plan does not validate or has no
  /// placement for some operator with parallelism > available nodes' info.
  Result<CostMeasurement> Measure(const dsp::ParallelQueryPlan& plan) const;

  /// Measurement without the stochastic noise term (used by tests that
  /// check exact monotonicity properties).
  Result<CostMeasurement> MeasureNoiseless(
      const dsp::ParallelQueryPlan& plan) const;

  const CostParams& params() const { return params_; }

  /// Per-tuple processing work (µs at 1 GHz) of one operator under the
  /// plan's current degrees/partitioning — the shared "hardware" model
  /// used by both the analytical engine and the discrete-event simulator.
  /// Includes type-dependent base work, byte-touch, serde on unchained
  /// edges, window/probe maintenance and fan-in merge overhead.
  static double PerTupleWorkUs(const dsp::ParallelQueryPlan& plan, int op_id,
                               const CostParams& params);

 private:
  Result<CostMeasurement> MeasureImpl(const dsp::ParallelQueryPlan& plan,
                                      bool with_noise) const;

  /// Stable 64-bit fingerprint of the plan configuration; keys the noise
  /// so repeated measurements of the same deployment agree.
  static uint64_t PlanFingerprint(const dsp::ParallelQueryPlan& plan);

  CostParams params_;
  uint64_t noise_seed_;
};

}  // namespace zerotune::sim

#endif  // ZEROTUNE_SIM_COST_ENGINE_H_
