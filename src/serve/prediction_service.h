#ifndef ZEROTUNE_SERVE_PREDICTION_SERVICE_H_
#define ZEROTUNE_SERVE_PREDICTION_SERVICE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/cost_predictor.h"
#include "obs/metrics.h"
#include "serve/circuit_breaker.h"

namespace zerotune::serve {

/// Serving-layer configuration. Every knob has a production-sane default;
/// Validate() is checked at service construction and every Predict() call
/// fails fast with the construction error if the options were bad.
struct ServeOptions {
  /// Bound on requests occupying the service (queued + executing, not
  /// counting requests parked in retry-backoff sleep — those release
  /// their slot for the duration). Admission beyond this sheds the
  /// request with ResourceExhausted instead of queueing unboundedly —
  /// explicit backpressure to the caller.
  size_t max_inflight = 64;
  /// Deadline budget applied when the caller passes none (0 = none).
  double default_deadline_ms = 0.0;
  /// Primary attempts per request (>= 1); attempts after the first are
  /// retries with exponential backoff.
  size_t max_attempts = 3;
  /// Backoff before retry k (1-based) is
  ///   min(backoff_max_ms, backoff_base_ms * 2^(k-1)) * U(1, 1+jitter)
  /// with U drawn from the service Rng.
  double backoff_base_ms = 1.0;
  double backoff_max_ms = 50.0;
  double backoff_jitter = 0.5;
  /// Run every admitted plan through analysis::PlanAnalyzer and shed
  /// requests whose plan has error-severity findings (the ZT-Pxxx code
  /// lands in the rejection status).
  bool lint_admission = true;
  CircuitBreakerOptions breaker;
  /// Seed of the jitter Rng.
  uint64_t seed = 17;
  /// Extra labels attached to every serve.* series of this instance, on
  /// top of the automatic {"instance", <n>} label. The fleet layer sets
  /// {"replica", <id>} here so per-replica series are addressable.
  obs::Labels metric_labels;
  /// Registry version of the primary model this service serves (0 =
  /// unversioned). Stamped on every answer so operators can tell which
  /// version produced it; exported as the serve.model_version gauge.
  uint64_t model_version = 0;

  Status Validate() const;
};

/// A served prediction plus serving metadata.
struct ServedPrediction {
  core::CostPrediction cost;
  /// True when the answer came from the fallback predictor (primary
  /// failed all attempts or its circuit is open).
  bool degraded = false;
  /// Primary attempts actually made (0 when the breaker short-circuited
  /// straight to the fallback).
  size_t attempts = 0;
  /// Admission-to-completion time on the service clock.
  double total_ms = 0.0;
  /// Registry version of the model that produced this answer (0 =
  /// unversioned, including every fallback answer).
  uint64_t model_version = 0;
  /// When degraded: the version of the primary that failed to answer
  /// (0 when the answer is not degraded or the primary is unversioned).
  uint64_t degraded_from_version = 0;
};

/// Monotonic counter snapshot of the service. Every admitted request ends
/// in exactly one of {completed, deadline_expired, failed}, so
///   admitted == completed + deadline_expired + failed
/// holds at quiescence, and received == admitted + shed_queue_full +
/// shed_lint always. `completed` includes degraded answers.
struct ServiceStats {
  uint64_t received = 0;
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_lint = 0;
  uint64_t completed = 0;
  uint64_t degraded = 0;
  uint64_t deadline_expired = 0;
  uint64_t failed = 0;
  uint64_t retries = 0;
  uint64_t primary_failures = 0;
  uint64_t fallback_failures = 0;
  uint64_t breaker_trips = 0;
  uint64_t breaker_recoveries = 0;
  /// Version of the primary this service was configured with (the live
  /// incarnation's version when folded across replica incarnations).
  uint64_t model_version = 0;
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
  /// End-to-end latency of completed requests, ms.
  Histogram latency_ms;

  std::string ToText() const;
  std::string ToJson() const;
};

/// Production-grade resilience wrapper around any CostPredictor: the
/// tuning stack keeps getting answers while the primary model is slow,
/// flaky, or down.
///
///   - bounded admission with load shedding (ResourceExhausted),
///   - optional static-analysis gate at admission (InvalidArgument
///     carrying the ZT-Pxxx diagnostics),
///   - per-request deadline budgets via a cancellable work queue
///     (DeadlineExceeded; a request whose deadline passes while still
///     queued is cancelled without ever running),
///   - retry with exponential backoff + jitter on transient primary
///     failures,
///   - a circuit breaker that degrades to a cheap fallback predictor
///     (answers tagged degraded=true) and recovers via half-open probes.
///
/// Threading: with a ThreadPool, Predict() enqueues the request on a
/// bounded queue drained by pool workers and blocks the caller until
/// completion or deadline; any number of caller threads may call
/// Predict() concurrently. Without a pool, requests execute inline in the
/// caller thread (deterministic; the mode FakeClock tests use). The
/// deadline is enforced at attempt boundaries — an individual predictor
/// call is never preempted mid-inference, so one in-flight attempt may
/// overrun its budget but can never hang the service permanently.
class PredictionService {
 public:
  /// `primary` is required; `fallback` may be null (no degraded mode —
  /// exhausted attempts surface the primary error). Null `pool` executes
  /// inline; null `clock` uses the system clock. All pointers are
  /// borrowed and must outlive the service.
  PredictionService(const core::CostPredictor* primary,
                    const core::CostPredictor* fallback, ServeOptions options,
                    ThreadPool* pool, Clock* clock);

  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Serves one prediction under the default deadline.
  Result<ServedPrediction> Predict(const dsp::ParallelQueryPlan& plan);

  /// Serves one prediction with an explicit deadline budget (ms; <= 0
  /// means no deadline). The plan reference must stay valid until the
  /// call returns.
  Result<ServedPrediction> Predict(const dsp::ParallelQueryPlan& plan,
                                   double deadline_ms);

  /// Point-in-time copy of the counters (safe to call concurrently with
  /// traffic; counters are monotonic between snapshots). Counters are read
  /// in reverse-causal order (dispositions before admitted before
  /// received), so the documented disposition inequalities hold in every
  /// snapshot, not just at quiescence.
  ServiceStats Snapshot() const;

  /// Labels of this instance's serve.* series in the global
  /// obs::MetricsRegistry ({"instance", "<n>"}; instances are numbered
  /// process-wide). Lets external observers and tests reconcile Snapshot()
  /// against the registry.
  const obs::Labels& metric_labels() const { return metric_labels_; }

  /// Requests currently *occupying an admission slot* (queued + executing,
  /// excluding requests parked in retry backoff); never exceeds
  /// ServeOptions::max_inflight. A request sleeping between attempts
  /// releases its slot so bursts of retrying requests cannot starve
  /// admission — see backing_off().
  size_t inflight() const {
    MutexLock g(queue_mu_);
    return inflight_ - backing_off_;
  }

  /// Requests currently parked in backoff sleep between retry attempts.
  /// These are inside the service but discounted from the admission bound;
  /// total residency is inflight() + backing_off().
  size_t backing_off() const {
    MutexLock g(queue_mu_);
    return backing_off_;
  }

  CircuitBreaker::State breaker_state() { return breaker_.state(); }

 private:
  struct Request;

  /// Pool task: pops and executes (or discards, if cancelled) one queued
  /// request.
  void DrainOne();
  /// Runs the retry/breaker/fallback pipeline for one request and stores
  /// its result; records the request's disposition in the stats.
  void Execute(Request* request);
  Result<ServedPrediction> ExecuteAttempts(
      const dsp::ParallelQueryPlan& plan, int64_t deadline_nanos,
      int64_t admitted_nanos);
  void SleepBackoff(size_t attempt, int64_t deadline_nanos);
  void FinishRequest(const Result<ServedPrediction>& result);

  const core::CostPredictor* primary_;
  const core::CostPredictor* fallback_;
  ServeOptions options_;
  Status options_status_;
  ThreadPool* pool_;
  Clock* clock_;
  CircuitBreaker breaker_;

  mutable Mutex queue_mu_;
  std::deque<std::shared_ptr<Request>> queue_ ZT_GUARDED_BY(queue_mu_);
  // queued + executing + backing off
  size_t inflight_ ZT_GUARDED_BY(queue_mu_) = 0;
  // subset of inflight_ asleep between attempts; admission bounds
  // inflight_ - backing_off_
  size_t backing_off_ ZT_GUARDED_BY(queue_mu_) = 0;

  // serve.* series in the global metrics registry, labeled per instance.
  // Handles are resolved once at construction; hot-path increments are
  // lock-free shard adds, and Snapshot() assembles a ServiceStats from
  // them, so the legacy struct stays the caller-facing view.
  obs::Labels metric_labels_;
  obs::Counter* received_;
  obs::Counter* admitted_;
  obs::Counter* shed_queue_full_;
  obs::Counter* shed_lint_;
  obs::Counter* completed_;
  obs::Counter* degraded_;
  obs::Counter* deadline_expired_;
  obs::Counter* failed_;
  obs::Counter* retries_;
  obs::Counter* primary_failures_;
  obs::Counter* fallback_failures_;
  obs::HistogramMetric* latency_ms_;

  mutable Mutex rng_mu_;
  Rng rng_ ZT_GUARDED_BY(rng_mu_);  // backoff jitter
};

}  // namespace zerotune::serve

#endif  // ZEROTUNE_SERVE_PREDICTION_SERVICE_H_
