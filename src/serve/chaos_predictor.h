#ifndef ZEROTUNE_SERVE_CHAOS_PREDICTOR_H_
#define ZEROTUNE_SERVE_CHAOS_PREDICTOR_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "core/cost_predictor.h"
#include "sim/fault_injection.h"

namespace zerotune::serve {

/// The chaos -> serving adapter: a CostPredictor decorator that degrades
/// an inner predictor the way PR 1's fault injection degrades a cluster.
/// It drives two failure sources, composable with each other:
///
///  - stochastic chaos: each request independently fails with
///    `fail_rate` probability and is slowed by `slow_ms` with `slow_rate`
///    probability (the soak-test knob);
///  - a sim::FaultPlan timeline, interpreted against the predictor as
///    "node 0": an active kNodeCrash makes every request fail
///    Unavailable, kNodeSlowdown/kInstanceStraggler stretch the injected
///    service time, and kNetworkDelaySpike adds flat per-request latency.
///    Timeline position is the injected Clock's elapsed seconds since
///    construction, so a FakeClock steps through fault windows
///    deterministically.
///
/// Wrapping a primary in ChaosPredictor and serving it through
/// PredictionService is how the resilience layer is proven: the breaker
/// must trip during a crash window and recover after it.
class ChaosPredictor : public core::CostPredictor {
 public:
  struct Options {
    /// Probability a request fails with an injected Internal error.
    double fail_rate = 0.0;
    /// Probability a request is artificially slowed.
    double slow_rate = 0.0;
    /// Injected extra latency (via Clock::SleepFor) when slowed.
    double slow_ms = 0.0;
    /// Baseline simulated inference time added to every request (lets a
    /// stub predictor exercise latency-based breaker tripping).
    double base_latency_ms = 0.0;
    /// Timed degradation windows; node/op/instance 0 targets this
    /// predictor. Empty = stochastic chaos only.
    sim::FaultPlan faults;
    uint64_t seed = 7;

    Status Validate() const;
  };

  /// `inner` must outlive this adapter; null clock = system clock.
  ChaosPredictor(const core::CostPredictor* inner, Options options,
                 Clock* clock);

  Result<core::CostPrediction> Predict(
      const dsp::ParallelQueryPlan& plan) const override;

  std::string name() const override;

  /// Injected-failure count so far (for test assertions).
  uint64_t injected_failures() const;

 private:
  const core::CostPredictor* inner_;
  Options options_;
  Clock* clock_;
  int64_t start_nanos_;

  mutable Mutex mu_;  // Rng is not thread-safe
  mutable Rng rng_ ZT_GUARDED_BY(mu_);
  mutable uint64_t injected_failures_ ZT_GUARDED_BY(mu_) = 0;
};

}  // namespace zerotune::serve

#endif  // ZEROTUNE_SERVE_CHAOS_PREDICTOR_H_
