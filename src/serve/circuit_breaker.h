#ifndef ZEROTUNE_SERVE_CIRCUIT_BREAKER_H_
#define ZEROTUNE_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <deque>
#include <string>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace zerotune::serve {

/// Configuration of a rolling-window circuit breaker.
struct CircuitBreakerOptions {
  /// Number of recent primary outcomes tracked (the rolling window).
  size_t window = 32;
  /// Minimum outcomes in the window before the error rate is evaluated;
  /// prevents one early failure from tripping an idle service.
  size_t min_samples = 8;
  /// Failure fraction in the window at or above which the breaker trips.
  double error_rate_to_trip = 0.5;
  /// A success slower than this counts as a failure in the window
  /// (latency-based tripping); 0 disables the latency criterion.
  double slow_call_ms = 0.0;
  /// Time the breaker stays open before allowing half-open probes.
  double open_duration_ms = 1000.0;
  /// Consecutive successful probes required in half-open to close.
  size_t half_open_probes = 3;

  /// Rejects zero windows, thresholds outside (0, 1], negative times.
  Status Validate() const;
};

/// Classic three-state circuit breaker (Closed -> Open -> HalfOpen)
/// protecting the primary cost predictor:
///
///  - Closed: every call goes to the primary; outcomes feed a rolling
///    window. When >= error_rate_to_trip of the last `window` calls failed
///    (or were slower than slow_call_ms), the breaker trips Open.
///  - Open: AllowPrimary() refuses (callers serve the fallback) until
///    open_duration_ms has elapsed on the injected Clock, then HalfOpen.
///  - HalfOpen: up to half_open_probes in-flight probes may hit the
///    primary. `half_open_probes` consecutive successes close the breaker
///    (a recovery); any failure re-trips it Open immediately.
///
/// All timing flows through the injected Clock, so tests drive the
/// open->half-open transition with a FakeClock instead of sleeping.
/// Thread-safe; all methods may be called concurrently.
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  CircuitBreaker(CircuitBreakerOptions options, Clock* clock);

  /// True when the caller may send this request to the primary. In
  /// HalfOpen this hands out at most half_open_probes concurrent probe
  /// slots; a caller that was granted a slot MUST report the outcome via
  /// RecordSuccess/RecordFailure (the slot is released there).
  bool AllowPrimary();

  /// Reports a primary call that returned a result in `latency_ms`.
  void RecordSuccess(double latency_ms);
  /// Reports a failed primary call.
  void RecordFailure();

  /// Current state (evaluates the open -> half-open timer).
  State state();

  /// Times the breaker moved Closed/HalfOpen -> Open.
  uint64_t trips() const;
  /// Times the breaker closed again after successful half-open probing.
  uint64_t recoveries() const;

  static const char* ToString(State s);

 private:
  void MaybeHalfOpenLocked() ZT_REQUIRES(mu_);
  void TripLocked() ZT_REQUIRES(mu_);
  void PushOutcomeLocked(bool failure) ZT_REQUIRES(mu_);

  CircuitBreakerOptions options_;
  Clock* clock_;

  mutable Mutex mu_;
  State state_ ZT_GUARDED_BY(mu_) = State::kClosed;
  // true = failure (error or slow call)
  std::deque<bool> window_ ZT_GUARDED_BY(mu_);
  size_t window_failures_ ZT_GUARDED_BY(mu_) = 0;
  int64_t opened_at_nanos_ ZT_GUARDED_BY(mu_) = 0;
  size_t half_open_inflight_ ZT_GUARDED_BY(mu_) = 0;
  size_t half_open_successes_ ZT_GUARDED_BY(mu_) = 0;
  uint64_t trips_ ZT_GUARDED_BY(mu_) = 0;
  uint64_t recoveries_ ZT_GUARDED_BY(mu_) = 0;
};

}  // namespace zerotune::serve

#endif  // ZEROTUNE_SERVE_CIRCUIT_BREAKER_H_
