#include "serve/chaos_predictor.h"

#include <cmath>

namespace zerotune::serve {

Status ChaosPredictor::Options::Validate() const {
  if (!(fail_rate >= 0.0 && fail_rate <= 1.0)) {
    return Status::InvalidArgument("chaos fail_rate must lie in [0, 1]");
  }
  if (!(slow_rate >= 0.0 && slow_rate <= 1.0)) {
    return Status::InvalidArgument("chaos slow_rate must lie in [0, 1]");
  }
  if (!std::isfinite(slow_ms) || slow_ms < 0.0) {
    return Status::InvalidArgument(
        "chaos slow_ms must be non-negative and finite");
  }
  if (!std::isfinite(base_latency_ms) || base_latency_ms < 0.0) {
    return Status::InvalidArgument(
        "chaos base_latency_ms must be non-negative and finite");
  }
  return Status::OK();
}

ChaosPredictor::ChaosPredictor(const core::CostPredictor* inner,
                               Options options, Clock* clock)
    : inner_(inner),
      options_(std::move(options)),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      start_nanos_(clock_->NowNanos()),
      rng_(options_.seed) {}

std::string ChaosPredictor::name() const {
  return "Chaos(" + inner_->name() + ")";
}

uint64_t ChaosPredictor::injected_failures() const {
  MutexLock g(mu_);
  return injected_failures_;
}

Result<core::CostPrediction> ChaosPredictor::Predict(
    const dsp::ParallelQueryPlan& plan) const {
  const double t_s =
      static_cast<double>(clock_->NowNanos() - start_nanos_) / 1e9;
  const sim::FaultInjector injector(options_.faults);

  // Timeline faults: the predictor is "node 0 / operator 0 / instance 0"
  // of the fault plan.
  if (injector.NodeDown(0, t_s)) {
    MutexLock g(mu_);
    ++injected_failures_;
    return Status::Unavailable("injected node crash active at t=" +
                               std::to_string(t_s) + "s");
  }
  const double service_factor = injector.ServiceTimeFactor(0, 0, 0, t_s);
  double delay_ms = injector.ExtraNetworkDelayMs(t_s) +
                    options_.base_latency_ms * service_factor;

  // Stochastic chaos.
  bool fail = false;
  {
    MutexLock g(mu_);
    if (options_.fail_rate > 0.0 && rng_.Bernoulli(options_.fail_rate)) {
      fail = true;
      ++injected_failures_;
    } else if (options_.slow_rate > 0.0 &&
               rng_.Bernoulli(options_.slow_rate)) {
      delay_ms += options_.slow_ms;
    }
  }
  if (delay_ms > 0.0) {
    clock_->SleepFor(static_cast<int64_t>(delay_ms * 1e6));
  }
  if (fail) {
    return Status::Internal("injected transient failure at t=" +
                            std::to_string(t_s) + "s");
  }
  return inner_->Predict(plan);
}

}  // namespace zerotune::serve
