#include "serve/adaptation/worker.h"

#include <cmath>
#include <utility>

#include "core/trainer.h"
#include "workload/dataset.h"

namespace zerotune::serve::adaptation {

namespace {

/// Splitmix64-style derivation so each fine-tune shuffles differently but
/// reproducibly from the root seed.
uint64_t DeriveFineTuneSeed(uint64_t root, uint64_t counter) {
  uint64_t z = root + 0x9e3779b97f4a7c15ULL * (counter + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Status AdaptationOptions::Validate() const {
  ZT_RETURN_IF_ERROR(drift.Validate());
  ZT_RETURN_IF_ERROR(shadow.Validate());
  ZT_RETURN_IF_ERROR(rollout.Validate());
  ZT_RETURN_IF_ERROR(breaker.Validate());
  if (min_pairs == 0 || max_pairs < min_pairs) {
    return Status::InvalidArgument(
        "adaptation pairs must satisfy 1 <= min_pairs <= max_pairs");
  }
  if (finetune_epochs == 0) {
    return Status::InvalidArgument("finetune_epochs must be >= 1");
  }
  if (!std::isfinite(finetune_learning_rate) ||
      finetune_learning_rate <= 0.0) {
    return Status::InvalidArgument(
        "finetune_learning_rate must be finite and > 0");
  }
  return Status::OK();
}

const char* AdaptationWorker::ToString(State state) {
  switch (state) {
    case State::kMonitoring:
      return "monitoring";
    case State::kShadowing:
      return "shadowing";
    case State::kRollingOut:
      return "rolling-out";
  }
  return "unknown";
}

AdaptationWorker::AdaptationWorker(core::registry::ModelRegistry* registry,
                                   fleet::PredictionFleet* fleet,
                                   AdaptationOptions options, Clock* clock)
    : registry_(registry),
      fleet_(fleet),
      options_(options),
      options_status_(options.Validate()),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      drift_(options.drift),
      breaker_(options.breaker, clock_) {
  ZT_CHECK_OK(options_status_);
  if (fleet_ != nullptr) {
    rollout_ =
        std::make_unique<VersionRollout>(fleet_, options_.rollout, clock_);
  }
  auto* metrics = obs::MetricsRegistry::Global();
  finetunes_total_ = metrics->GetCounter("adapt.worker.finetunes_total");
  promotions_total_ = metrics->GetCounter("adapt.worker.promotions_total");
  rejections_total_ = metrics->GetCounter("adapt.worker.rejections_total");
  rollbacks_total_ = metrics->GetCounter("adapt.worker.rollbacks_total");
  state_gauge_ = metrics->GetGauge("adapt.worker.state");
  MutexLock lock(mu_);
  live_id_ = registry_->live_version();
}

void AdaptationWorker::set_factory_builder(FactoryBuilder builder) {
  MutexLock lock(mu_);
  builder_ = std::move(builder);
}

void AdaptationWorker::Observe(const ObservedExecution& execution) {
  drift_.Observe(execution.family, execution.predicted_latency_ms,
                 execution.actual_latency_ms);
  std::shared_ptr<ShadowScorer> scorer;
  {
    MutexLock lock(mu_);
    pairs_.push_back(execution);
    while (pairs_.size() > options_.max_pairs) pairs_.pop_front();
    scorer = scorer_;
  }
  // The mirrored race runs two model inferences — outside mu_ so
  // observation ingest never stalls behind it.
  if (scorer != nullptr) {
    scorer->Observe(execution.plan, execution.actual_latency_ms);
  }
}

fleet::PredictionFleet::PrimaryFactory AdaptationWorker::BuildFactory(
    const std::shared_ptr<const core::ZeroTuneModel>& model,
    uint64_t version) {
  FactoryBuilder builder;
  {
    MutexLock lock(mu_);
    builder = builder_;
  }
  if (builder != nullptr) return builder(model, version);
  return [model](uint32_t) {
    return std::make_unique<SharedModelPredictor>(model);
  };
}

Status AdaptationWorker::FineTune(
    const std::vector<ObservedExecution>& pairs) {
  const uint64_t live_id = registry_->live_version();
  if (live_id == 0) {
    return Status::FailedPrecondition(
        "registry has no live version to fine-tune");
  }
  ZT_ASSIGN_OR_RETURN(std::shared_ptr<const core::ZeroTuneModel> live,
                      registry_->LoadVersion(live_id));
  // Fresh trainable copy from the artifact: the cached live model stays
  // immutable and keeps serving while the copy trains.
  ZT_ASSIGN_OR_RETURN(
      std::unique_ptr<core::ZeroTuneModel> trainable,
      core::ZeroTuneModel::LoadFromFile(registry_->VersionPath(live_id)));

  workload::Dataset train;
  for (const ObservedExecution& p : pairs) {
    train.Add(workload::LabeledQuery(p.plan, p.actual_latency_ms,
                                     p.actual_throughput_tps,
                                     workload::QueryStructure::kLinear));
  }

  uint64_t finetune_index = 0;
  {
    MutexLock lock(mu_);
    finetune_index = finetunes_;
  }
  core::TrainOptions topt;
  topt.epochs = options_.finetune_epochs;
  topt.learning_rate = options_.finetune_learning_rate;
  topt.fit_target_stats = false;  // incremental: keep the live stats
  topt.patience = 0;              // no validation set, no early stopping
  topt.seed = DeriveFineTuneSeed(options_.seed, finetune_index);
  topt.clock = clock_;
  core::Trainer trainer(trainable.get(), topt);
  ZT_RETURN_IF_ERROR(trainer.Train(train, workload::Dataset()).status());

  const core::ModelEvaluation eval =
      core::Trainer::Evaluate(*trainable, train);
  core::registry::VersionInfo info;
  info.parent = live_id;
  info.median_qerror = eval.latency.median;
  info.source = "finetune";
  ZT_ASSIGN_OR_RETURN(const uint64_t candidate_id,
                      registry_->Publish(trainable.get(), info));
  ZT_ASSIGN_OR_RETURN(std::shared_ptr<const core::ZeroTuneModel> candidate,
                      registry_->LoadVersion(candidate_id));

  MutexLock lock(mu_);
  live_model_ = std::move(live);
  candidate_model_ = std::move(candidate);
  live_id_ = live_id;
  candidate_id_ = candidate_id;
  scorer_ = std::make_shared<ShadowScorer>(
      live_model_.get(), candidate_model_.get(), options_.shadow);
  ++finetunes_;
  finetunes_total_->Increment();
  state_ = State::kShadowing;
  return Status::OK();
}

Status AdaptationWorker::FinishShadow(ShadowVerdict verdict) {
  std::shared_ptr<const core::ZeroTuneModel> live_model;
  std::shared_ptr<const core::ZeroTuneModel> candidate_model;
  uint64_t live_id = 0;
  uint64_t candidate_id = 0;
  double candidate_qerror = 0.0;
  {
    MutexLock lock(mu_);
    live_model = live_model_;
    candidate_model = candidate_model_;
    live_id = live_id_;
    candidate_id = candidate_id_;
    if (scorer_ != nullptr) {
      candidate_qerror = scorer_->score().candidate_qerror;
    }
  }
  if (verdict == ShadowVerdict::kReject) {
    ZT_RETURN_IF_ERROR(registry_->Reject(candidate_id));
    breaker_.RecordFailure();
    MutexLock lock(mu_);
    ++rejections_;
    rejections_total_->Increment();
    scorer_.reset();
    candidate_model_.reset();
    candidate_id_ = 0;
    pairs_.clear();  // gather fresh evidence before the next attempt
    state_ = State::kMonitoring;
    return Status::OK();
  }

  // Promote: the candidate demonstrably predicts this traffic better.
  ZT_RETURN_IF_ERROR(registry_->Promote(candidate_id, candidate_qerror));
  // The promoted model replaces the one whose q-errors tripped the
  // detector; its windows say nothing about the new version.
  drift_.Reset();
  if (fleet_ != nullptr) {
    ZT_RETURN_IF_ERROR(rollout_->Begin(
        BuildFactory(candidate_model, candidate_id), candidate_id,
        BuildFactory(live_model, live_id), live_id));
    MutexLock lock(mu_);
    ++promotions_;
    promotions_total_->Increment();
    scorer_.reset();
    pairs_.clear();
    state_ = State::kRollingOut;
    return Status::OK();
  }
  breaker_.RecordSuccess(0.0);
  MutexLock lock(mu_);
  ++promotions_;
  promotions_total_->Increment();
  scorer_.reset();
  live_model_ = candidate_model_;
  live_id_ = candidate_id_;
  candidate_model_.reset();
  candidate_id_ = 0;
  pairs_.clear();
  state_ = State::kMonitoring;
  return Status::OK();
}

Result<AdaptationWorker::State> AdaptationWorker::Tick() {
  MutexLock tick(tick_mu_);
  State state;
  {
    MutexLock lock(mu_);
    state = state_;
  }
  switch (state) {
    case State::kMonitoring: {
      if (!drift_.AnyDrifting()) break;
      std::vector<ObservedExecution> pairs;
      {
        MutexLock lock(mu_);
        if (pairs_.size() < options_.min_pairs) break;
        pairs.assign(pairs_.begin(), pairs_.end());
      }
      // The breaker gates the whole cycle; in half-open this holds a
      // probe slot that FinishShadow / the rollout outcome releases.
      if (!breaker_.AllowPrimary()) break;
      const Status tuned = FineTune(pairs);
      if (!tuned.ok()) {
        breaker_.RecordFailure();
        return tuned;
      }
      break;
    }
    case State::kShadowing: {
      ShadowVerdict verdict;
      {
        MutexLock lock(mu_);
        verdict = scorer_ != nullptr ? scorer_->verdict()
                                     : ShadowVerdict::kReject;
      }
      if (verdict == ShadowVerdict::kUndecided) break;
      ZT_RETURN_IF_ERROR(FinishShadow(verdict));
      break;
    }
    case State::kRollingOut: {
      const VersionRollout::Phase phase = rollout_->Tick();
      if (phase == VersionRollout::Phase::kDone) {
        breaker_.RecordSuccess(0.0);
        MutexLock lock(mu_);
        live_model_ = candidate_model_;
        live_id_ = candidate_id_;
        candidate_model_.reset();
        candidate_id_ = 0;
        state_ = State::kMonitoring;
      } else if (phase == VersionRollout::Phase::kRolledBack) {
        // The promoted version regressed on live traffic: registry state
        // follows the fleet back to the parent version.
        ZT_RETURN_IF_ERROR(registry_->Rollback().status());
        breaker_.RecordFailure();
        MutexLock lock(mu_);
        ++rollbacks_;
        rollbacks_total_->Increment();
        candidate_model_.reset();
        candidate_id_ = 0;
        state_ = State::kMonitoring;
      }
      break;
    }
  }
  MutexLock lock(mu_);
  state_gauge_->Set(static_cast<double>(state_));
  return state_;
}

AdaptationWorker::State AdaptationWorker::state() const {
  MutexLock lock(mu_);
  return state_;
}

AdaptationWorker::Stats AdaptationWorker::snapshot() {
  Stats s;
  s.live_version = registry_->live_version();
  s.drift_observations = drift_.observations();
  s.breaker_state = breaker_.state();
  MutexLock lock(mu_);
  s.state = state_;
  s.candidate_version = candidate_id_;
  s.finetunes = finetunes_;
  s.promotions = promotions_;
  s.rejections = rejections_;
  s.rollbacks = rollbacks_;
  s.buffered_pairs = pairs_.size();
  return s;
}

}  // namespace zerotune::serve::adaptation
