#include "serve/adaptation/drift_detector.h"

#include <algorithm>
#include <cmath>

#include "common/statistics.h"

namespace zerotune::serve::adaptation {

Status DriftOptions::Validate() const {
  if (window == 0) {
    return Status::InvalidArgument("drift window must be >= 1");
  }
  if (min_samples == 0 || min_samples > window) {
    return Status::InvalidArgument(
        "drift min_samples must be in [1, window]");
  }
  if (!std::isfinite(trip_qerror) || trip_qerror < 1.0) {
    return Status::InvalidArgument(
        "drift trip_qerror must be finite and >= 1 (q-errors are >= 1)");
  }
  if (!std::isfinite(clear_qerror) || clear_qerror < 1.0 ||
      clear_qerror > trip_qerror) {
    return Status::InvalidArgument(
        "drift clear_qerror must be in [1, trip_qerror] (hysteresis)");
  }
  return Status::OK();
}

DriftDetector::DriftDetector(DriftOptions options)
    : options_(options), options_status_(options.Validate()) {
  ZT_CHECK_OK(options_status_);
  auto* metrics = obs::MetricsRegistry::Global();
  observations_total_ =
      metrics->GetCounter("adapt.drift.observations_total");
  trips_total_ = metrics->GetCounter("adapt.drift.trips_total");
  clears_total_ = metrics->GetCounter("adapt.drift.clears_total");
}

double DriftDetector::MedianLocked(const FamilyState& state) const {
  if (state.window.empty()) return 0.0;
  std::vector<double> xs(state.window.begin(), state.window.end());
  return Median(xs);
}

void DriftDetector::Observe(const std::string& family,
                            double predicted_latency_ms,
                            double actual_latency_ms) {
  const double q = QError(actual_latency_ms, predicted_latency_ms);
  observations_total_->Increment();
  observations_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mu_);
  auto [it, inserted] = families_.try_emplace(family);
  FamilyState& state = it->second;
  if (inserted) {
    auto* metrics = obs::MetricsRegistry::Global();
    const obs::Labels labels{{"family", family}};
    state.qerror_gauge = metrics->GetGauge("adapt.drift.qerror", labels);
    state.state_gauge = metrics->GetGauge("adapt.drift.state", labels);
  }
  state.window.push_back(q);
  while (state.window.size() > options_.window) state.window.pop_front();

  const double median = MedianLocked(state);
  state.qerror_gauge->Set(median);
  if (state.window.size() < options_.min_samples) return;
  if (!state.drifting && median >= options_.trip_qerror) {
    state.drifting = true;
    trips_total_->Increment();
    state.state_gauge->Set(1.0);
  } else if (state.drifting && median < options_.clear_qerror) {
    state.drifting = false;
    clears_total_->Increment();
    state.state_gauge->Set(0.0);
  }
}

bool DriftDetector::IsDrifting(const std::string& family) const {
  MutexLock lock(mu_);
  auto it = families_.find(family);
  return it != families_.end() && it->second.drifting;
}

bool DriftDetector::AnyDrifting() const {
  MutexLock lock(mu_);
  return std::any_of(families_.begin(), families_.end(),
                     [](const auto& kv) { return kv.second.drifting; });
}

std::vector<std::string> DriftDetector::DriftingFamilies() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, state] : families_) {
    if (state.drifting) out.push_back(name);
  }
  return out;
}

double DriftDetector::RollingQError(const std::string& family) const {
  MutexLock lock(mu_);
  auto it = families_.find(family);
  return it == families_.end() ? 0.0 : MedianLocked(it->second);
}

uint64_t DriftDetector::observations() const {
  return observations_.load(std::memory_order_relaxed);
}

void DriftDetector::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, state] : families_) {
    state.window.clear();
    state.drifting = false;
    state.qerror_gauge->Set(0.0);
    state.state_gauge->Set(0.0);
  }
}

}  // namespace zerotune::serve::adaptation
