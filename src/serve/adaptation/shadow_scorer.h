#ifndef ZEROTUNE_SERVE_ADAPTATION_SHADOW_SCORER_H_
#define ZEROTUNE_SERVE_ADAPTATION_SHADOW_SCORER_H_

#include <cstddef>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/cost_predictor.h"
#include "obs/metrics.h"

namespace zerotune::serve::adaptation {

/// Configuration of a shadow-scoring race.
struct ShadowOptions {
  /// Mirrored executions scored before a verdict may be reached.
  size_t min_samples = 32;
  /// Hard cap: at max_samples an undecided race resolves conservatively
  /// to kReject (the live model keeps serving).
  size_t max_samples = 256;
  /// The candidate promotes when its geometric-mean q-error is at most
  /// promote_margin * the live model's (i.e. measurably better, not just
  /// tied — promotion churn is not free).
  double promote_margin = 0.95;
  /// The candidate rejects early when its geometric-mean q-error exceeds
  /// reject_margin * the live model's.
  double reject_margin = 1.10;

  Status Validate() const;
};

enum class ShadowVerdict { kUndecided, kPromote, kReject };

const char* ToString(ShadowVerdict verdict);

/// Races a candidate model against the live model on mirrored traffic.
///
/// Every Observe() runs *both* predictors on the observed plan and scores
/// each against the simulated-actual latency; the candidate never serves
/// a caller. After min_samples the geometric-mean q-errors are compared
/// under the promote/reject margins; an undecided race at max_samples
/// rejects — a candidate that cannot demonstrate improvement does not
/// ship. A candidate prediction *failure* rejects immediately: a model
/// that cannot answer mirrored traffic must never see live traffic.
///
/// The verdict latches: once decided, further observations are ignored.
/// Exported series: adapt.shadow.samples_total counter and the
/// adapt.shadow.live_qerror / adapt.shadow.candidate_qerror gauges
/// (geometric means of the race so far).
///
/// Thread-safe.
class ShadowScorer {
 public:
  /// Both predictors are borrowed and must outlive the scorer.
  ShadowScorer(const core::CostPredictor* live,
               const core::CostPredictor* candidate, ShadowOptions options);

  /// Scores one mirrored execution; returns the (possibly just-latched)
  /// verdict.
  ShadowVerdict Observe(const dsp::ParallelQueryPlan& plan,
                        double actual_latency_ms);

  ShadowVerdict verdict() const;

  struct Score {
    size_t samples = 0;
    /// Geometric-mean q-errors over the race so far (0 until the first
    /// scored sample).
    double live_qerror = 0.0;
    double candidate_qerror = 0.0;
    /// Live-side prediction failures (sample skipped, not scored).
    size_t live_failures = 0;
    /// Candidate-side prediction failures (any one latches kReject).
    size_t candidate_failures = 0;
  };
  Score score() const;

 private:
  ShadowVerdict DecideLocked() ZT_REQUIRES(mu_);

  const core::CostPredictor* live_;
  const core::CostPredictor* candidate_;
  const ShadowOptions options_;
  const Status options_status_;

  obs::Counter* samples_total_;
  obs::Gauge* live_qerror_gauge_;
  obs::Gauge* candidate_qerror_gauge_;

  mutable Mutex mu_;
  size_t samples_ ZT_GUARDED_BY(mu_) = 0;
  double live_log_sum_ ZT_GUARDED_BY(mu_) = 0.0;
  double candidate_log_sum_ ZT_GUARDED_BY(mu_) = 0.0;
  size_t live_failures_ ZT_GUARDED_BY(mu_) = 0;
  size_t candidate_failures_ ZT_GUARDED_BY(mu_) = 0;
  ShadowVerdict verdict_ ZT_GUARDED_BY(mu_) = ShadowVerdict::kUndecided;
};

}  // namespace zerotune::serve::adaptation

#endif  // ZEROTUNE_SERVE_ADAPTATION_SHADOW_SCORER_H_
