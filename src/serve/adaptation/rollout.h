#ifndef ZEROTUNE_SERVE_ADAPTATION_ROLLOUT_H_
#define ZEROTUNE_SERVE_ADAPTATION_ROLLOUT_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "serve/fleet/fleet.h"

namespace zerotune::serve::adaptation {

/// Configuration of a replica-by-replica rolling swap.
struct RolloutOptions {
  /// Health-checked pause after each swap before the swapped replica is
  /// judged (lets traffic reach the new incarnation).
  double pause_ms = 50.0;
  /// Completed answers the new incarnation must serve before judgement.
  uint64_t min_answers = 16;
  /// Judge even without min_answers once this much time has passed since
  /// the swap — an idle replica must not stall the rollout forever.
  double max_wait_ms = 5000.0;
  /// (failed + degraded + deadline_expired) / admitted on the new
  /// incarnation above which the rollout declares a regression and rolls
  /// every swapped replica back.
  double max_failure_rate = 0.2;

  Status Validate() const;
};

/// Replica-by-replica versioned hot-swap across a PredictionFleet.
///
/// State machine (one replica at a time):
///
///   kIdle --Begin--> kSwapping -> kPausing -> [judge]
///                        ^                       | healthy, more replicas
///                        +-----------------------+
///                                                | healthy, last replica
///                                                v
///                              commit factory -> kDone
///                                                | regression
///                                                v
///                       swap back all swapped -> kRolledBack
///
/// Judgement reads the swapped replica's *cumulative* stats delta since
/// the swap: the new incarnation starts at zero, so the delta is exactly
/// the new version's track record. On regression every already-swapped
/// replica (including the failing one) is swapped back to the previous
/// factory before the machine parks in kRolledBack — the fleet never
/// stays mixed-version after a failed rollout. On success the new
/// factory/version are committed fleet-wide (SetPrimaryFactory), so
/// scale-ups and future restarts serve the promoted version.
///
/// Entirely tick-driven on the injected Clock: Tick() never sleeps, so a
/// FakeClock drives the whole rollout deterministically. Thread-safe.
class VersionRollout {
 public:
  enum class Phase { kIdle, kSwapping, kPausing, kDone, kRolledBack };

  static const char* ToString(Phase phase);

  VersionRollout(fleet::PredictionFleet* fleet, RolloutOptions options,
                 Clock* clock);

  /// Starts rolling `next_factory`/`next_version` across the current ring
  /// members. `prev_factory`/`prev_version` is the rollback target (what
  /// the replicas serve today). Fails if a rollout is already running.
  Status Begin(fleet::PredictionFleet::PrimaryFactory next_factory,
               uint64_t next_version,
               fleet::PredictionFleet::PrimaryFactory prev_factory,
               uint64_t prev_version);

  /// Advances the machine by at most one step; returns the phase after
  /// the step. Call from a driver loop (serve-sim) or controller tick.
  Phase Tick();

  Phase phase() const;
  /// Replicas swapped to the new version so far in this rollout.
  size_t swapped() const;
  /// Wall-clock (injected clock) duration of the last completed rollout,
  /// Begin -> kDone/kRolledBack; 0 while running or before the first.
  double last_duration_ms() const;

 private:
  Status SwapOneLocked() ZT_REQUIRES(mu_);
  void RollBackLocked() ZT_REQUIRES(mu_);

  fleet::PredictionFleet* fleet_;
  const RolloutOptions options_;
  const Status options_status_;
  Clock* clock_;

  obs::Counter* swaps_total_;
  obs::Counter* commits_total_;
  obs::Counter* rollbacks_total_;
  obs::Gauge* phase_gauge_;

  mutable Mutex mu_;
  Phase phase_ ZT_GUARDED_BY(mu_) = Phase::kIdle;
  fleet::PredictionFleet::PrimaryFactory next_factory_ ZT_GUARDED_BY(mu_);
  fleet::PredictionFleet::PrimaryFactory prev_factory_ ZT_GUARDED_BY(mu_);
  uint64_t next_version_ ZT_GUARDED_BY(mu_) = 0;
  uint64_t prev_version_ ZT_GUARDED_BY(mu_) = 0;
  std::vector<uint32_t> targets_ ZT_GUARDED_BY(mu_);
  size_t cursor_ ZT_GUARDED_BY(mu_) = 0;  // next replica to swap
  int64_t swapped_at_nanos_ ZT_GUARDED_BY(mu_) = 0;
  ServiceStats baseline_ ZT_GUARDED_BY(mu_);
  int64_t began_at_nanos_ ZT_GUARDED_BY(mu_) = 0;
  double last_duration_ms_ ZT_GUARDED_BY(mu_) = 0.0;
};

}  // namespace zerotune::serve::adaptation

#endif  // ZEROTUNE_SERVE_ADAPTATION_ROLLOUT_H_
