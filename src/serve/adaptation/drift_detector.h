#ifndef ZEROTUNE_SERVE_ADAPTATION_DRIFT_DETECTOR_H_
#define ZEROTUNE_SERVE_ADAPTATION_DRIFT_DETECTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace zerotune::serve::adaptation {

/// Configuration of the per-workload-family drift detector.
struct DriftOptions {
  /// Rolling window of (predicted, actual) q-errors kept per family.
  size_t window = 64;
  /// Observations a family needs before its trend is evaluated.
  size_t min_samples = 16;
  /// Rolling median q-error at or above which a family trips to
  /// "drifting".
  double trip_qerror = 2.0;
  /// Rolling median below which a drifting family clears. Must be <=
  /// trip_qerror — the hysteresis band keeps a family that hovers around
  /// the threshold from flapping between states on every observation.
  double clear_qerror = 1.5;

  Status Validate() const;
};

/// Detects prediction-quality drift per workload family from a stream of
/// (predicted, actual) latency pairs.
///
/// Each family keeps a rolling window of q-errors; the rolling *median*
/// (robust to a single pathological execution) is compared against a
/// trip/clear hysteresis pair, so the detector reports a sustained trend,
/// not a spike. Exported series (adapt.drift.*, labelled {family}):
///   adapt.drift.qerror       rolling median q-error gauge
///   adapt.drift.state        1 = drifting, 0 = ok
///   adapt.drift.trips_total  ok -> drifting transitions
///   adapt.drift.clears_total drifting -> ok transitions
/// plus the unlabelled adapt.drift.observations_total counter.
///
/// Thread-safe; all methods may be called concurrently.
class DriftDetector {
 public:
  explicit DriftDetector(DriftOptions options);

  /// Feeds one observed execution of `family`.
  void Observe(const std::string& family, double predicted_latency_ms,
               double actual_latency_ms);

  bool IsDrifting(const std::string& family) const;
  bool AnyDrifting() const;
  std::vector<std::string> DriftingFamilies() const;

  /// Rolling median q-error of a family (0 when never observed).
  double RollingQError(const std::string& family) const;

  uint64_t observations() const;

  /// Forgets all windows and drift states (after a promotion the old
  /// model's q-errors say nothing about the new one).
  void Reset();

 private:
  struct FamilyState {
    std::deque<double> window;
    bool drifting = false;
    obs::Gauge* qerror_gauge = nullptr;
    obs::Gauge* state_gauge = nullptr;
  };

  double MedianLocked(const FamilyState& state) const ZT_REQUIRES(mu_);

  const DriftOptions options_;
  const Status options_status_;

  obs::Counter* observations_total_;
  obs::Counter* trips_total_;
  obs::Counter* clears_total_;
  /// Per-detector count (the registry counters are process-global and
  /// shared across detector instances).
  std::atomic<uint64_t> observations_{0};

  mutable Mutex mu_;
  std::map<std::string, FamilyState> families_ ZT_GUARDED_BY(mu_);
};

}  // namespace zerotune::serve::adaptation

#endif  // ZEROTUNE_SERVE_ADAPTATION_DRIFT_DETECTOR_H_
