#include "serve/adaptation/shadow_scorer.h"

#include <cmath>

#include "common/statistics.h"

namespace zerotune::serve::adaptation {

Status ShadowOptions::Validate() const {
  if (min_samples == 0 || max_samples < min_samples) {
    return Status::InvalidArgument(
        "shadow samples must satisfy 1 <= min_samples <= max_samples");
  }
  if (!std::isfinite(promote_margin) || promote_margin <= 0.0 ||
      promote_margin > 1.0) {
    return Status::InvalidArgument(
        "shadow promote_margin must be in (0, 1]");
  }
  if (!std::isfinite(reject_margin) || reject_margin < 1.0) {
    return Status::InvalidArgument("shadow reject_margin must be >= 1");
  }
  return Status::OK();
}

const char* ToString(ShadowVerdict verdict) {
  switch (verdict) {
    case ShadowVerdict::kUndecided:
      return "undecided";
    case ShadowVerdict::kPromote:
      return "promote";
    case ShadowVerdict::kReject:
      return "reject";
  }
  return "unknown";
}

ShadowScorer::ShadowScorer(const core::CostPredictor* live,
                           const core::CostPredictor* candidate,
                           ShadowOptions options)
    : live_(live),
      candidate_(candidate),
      options_(options),
      options_status_(options.Validate()) {
  ZT_CHECK_OK(options_status_);
  auto* metrics = obs::MetricsRegistry::Global();
  samples_total_ = metrics->GetCounter("adapt.shadow.samples_total");
  live_qerror_gauge_ = metrics->GetGauge("adapt.shadow.live_qerror");
  candidate_qerror_gauge_ =
      metrics->GetGauge("adapt.shadow.candidate_qerror");
}

ShadowVerdict ShadowScorer::DecideLocked() {
  if (samples_ < options_.min_samples) return ShadowVerdict::kUndecided;
  const double n = static_cast<double>(samples_);
  const double live_gm = std::exp(live_log_sum_ / n);
  const double cand_gm = std::exp(candidate_log_sum_ / n);
  if (cand_gm <= options_.promote_margin * live_gm) {
    return ShadowVerdict::kPromote;
  }
  if (cand_gm >= options_.reject_margin * live_gm ||
      samples_ >= options_.max_samples) {
    return ShadowVerdict::kReject;
  }
  return ShadowVerdict::kUndecided;
}

ShadowVerdict ShadowScorer::Observe(const dsp::ParallelQueryPlan& plan,
                                    double actual_latency_ms) {
  // Inference outside the lock: mirrored scoring must not serialize
  // against concurrent score() readers for the duration of two predicts.
  const Result<core::CostPrediction> live = live_->Predict(plan);
  const Result<core::CostPrediction> cand = candidate_->Predict(plan);

  MutexLock lock(mu_);
  if (verdict_ != ShadowVerdict::kUndecided) return verdict_;
  if (!cand.ok()) {
    ++candidate_failures_;
    verdict_ = ShadowVerdict::kReject;
    return verdict_;
  }
  if (!live.ok()) {
    // No reference to compare against; the sample is skipped, not scored.
    ++live_failures_;
    return verdict_;
  }
  ++samples_;
  samples_total_->Increment();
  live_log_sum_ +=
      std::log(QError(actual_latency_ms, live.value().latency_ms));
  candidate_log_sum_ +=
      std::log(QError(actual_latency_ms, cand.value().latency_ms));
  const double n = static_cast<double>(samples_);
  live_qerror_gauge_->Set(std::exp(live_log_sum_ / n));
  candidate_qerror_gauge_->Set(std::exp(candidate_log_sum_ / n));
  verdict_ = DecideLocked();
  return verdict_;
}

ShadowVerdict ShadowScorer::verdict() const {
  MutexLock lock(mu_);
  return verdict_;
}

ShadowScorer::Score ShadowScorer::score() const {
  MutexLock lock(mu_);
  Score s;
  s.samples = samples_;
  s.live_failures = live_failures_;
  s.candidate_failures = candidate_failures_;
  if (samples_ > 0) {
    const double n = static_cast<double>(samples_);
    s.live_qerror = std::exp(live_log_sum_ / n);
    s.candidate_qerror = std::exp(candidate_log_sum_ / n);
  }
  return s;
}

}  // namespace zerotune::serve::adaptation
