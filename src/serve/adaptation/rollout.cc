#include "serve/adaptation/rollout.h"

#include <cmath>
#include <utility>

namespace zerotune::serve::adaptation {

namespace {

constexpr double kNanosPerMs = 1e6;

/// Unhealthy outcomes on the new incarnation since the swap. Degraded
/// answers count: a primary that keeps falling back is regressing even
/// though callers still get answers.
uint64_t Failures(const ServiceStats& s) {
  return s.failed + s.degraded + s.deadline_expired;
}

uint64_t Answers(const ServiceStats& s) {
  return s.completed + s.deadline_expired + s.failed;
}

}  // namespace

Status RolloutOptions::Validate() const {
  if (!std::isfinite(pause_ms) || pause_ms < 0.0) {
    return Status::InvalidArgument("rollout pause_ms must be >= 0");
  }
  if (!std::isfinite(max_wait_ms) || max_wait_ms < pause_ms) {
    return Status::InvalidArgument(
        "rollout max_wait_ms must be >= pause_ms");
  }
  if (!std::isfinite(max_failure_rate) || max_failure_rate < 0.0 ||
      max_failure_rate > 1.0) {
    return Status::InvalidArgument(
        "rollout max_failure_rate must be in [0, 1]");
  }
  return Status::OK();
}

const char* VersionRollout::ToString(Phase phase) {
  switch (phase) {
    case Phase::kIdle:
      return "idle";
    case Phase::kSwapping:
      return "swapping";
    case Phase::kPausing:
      return "pausing";
    case Phase::kDone:
      return "done";
    case Phase::kRolledBack:
      return "rolled-back";
  }
  return "unknown";
}

VersionRollout::VersionRollout(fleet::PredictionFleet* fleet,
                               RolloutOptions options, Clock* clock)
    : fleet_(fleet),
      options_(options),
      options_status_(options.Validate()),
      clock_(clock != nullptr ? clock : SystemClock::Default()) {
  ZT_CHECK_OK(options_status_);
  auto* metrics = obs::MetricsRegistry::Global();
  swaps_total_ = metrics->GetCounter("adapt.rollout.swaps_total");
  commits_total_ = metrics->GetCounter("adapt.rollout.commits_total");
  rollbacks_total_ = metrics->GetCounter("adapt.rollout.rollbacks_total");
  phase_gauge_ = metrics->GetGauge("adapt.rollout.phase");
}

Status VersionRollout::Begin(
    fleet::PredictionFleet::PrimaryFactory next_factory,
    uint64_t next_version,
    fleet::PredictionFleet::PrimaryFactory prev_factory,
    uint64_t prev_version) {
  if (fleet_ == nullptr) {
    return Status::FailedPrecondition("rollout has no fleet");
  }
  if (next_factory == nullptr || prev_factory == nullptr) {
    return Status::InvalidArgument(
        "rollout needs both a next and a prev factory");
  }
  MutexLock lock(mu_);
  if (phase_ == Phase::kSwapping || phase_ == Phase::kPausing) {
    return Status::FailedPrecondition("a rollout is already running");
  }
  targets_ = fleet_->ReplicaIds();
  if (targets_.empty()) {
    return Status::FailedPrecondition("fleet has no routable replicas");
  }
  next_factory_ = std::move(next_factory);
  prev_factory_ = std::move(prev_factory);
  next_version_ = next_version;
  prev_version_ = prev_version;
  cursor_ = 0;
  began_at_nanos_ = clock_->NowNanos();
  last_duration_ms_ = 0.0;
  phase_ = Phase::kSwapping;
  phase_gauge_->Set(static_cast<double>(phase_));
  return Status::OK();
}

Status VersionRollout::SwapOneLocked() {
  const uint32_t id = targets_[cursor_];
  ZT_RETURN_IF_ERROR(fleet_->SwapReplicaPrimary(id, next_factory_,
                                                next_version_));
  swaps_total_->Increment();
  ZT_ASSIGN_OR_RETURN(baseline_, fleet_->ReplicaCumulativeStats(id));
  swapped_at_nanos_ = clock_->NowNanos();
  return Status::OK();
}

void VersionRollout::RollBackLocked() {
  // Swap back every replica the rollout touched, including the one that
  // just failed judgement (cursor_ points at it). A replica that vanished
  // mid-rollout (scale-down) is skipped — it is off the ring anyway.
  for (size_t i = 0; i <= cursor_ && i < targets_.size(); ++i) {
    const Status s = fleet_->SwapReplicaPrimary(targets_[i], prev_factory_,
                                                prev_version_);
    if (s.ok()) swaps_total_->Increment();
  }
  rollbacks_total_->Increment();
  phase_ = Phase::kRolledBack;
  last_duration_ms_ =
      static_cast<double>(clock_->NowNanos() - began_at_nanos_) /
      kNanosPerMs;
}

VersionRollout::Phase VersionRollout::Tick() {
  MutexLock lock(mu_);
  switch (phase_) {
    case Phase::kIdle:
    case Phase::kDone:
    case Phase::kRolledBack:
      break;
    case Phase::kSwapping: {
      const Status swapped = SwapOneLocked();
      if (!swapped.ok()) {
        // The target disappeared (scale-down between Begin and now).
        // Skip it; if nothing is left, commit what we have.
        ++cursor_;
        if (cursor_ >= targets_.size()) {
          fleet_->SetPrimaryFactory(next_factory_, next_version_);
          commits_total_->Increment();
          phase_ = Phase::kDone;
          last_duration_ms_ =
              static_cast<double>(clock_->NowNanos() - began_at_nanos_) /
              kNanosPerMs;
        }
        break;
      }
      phase_ = Phase::kPausing;
      break;
    }
    case Phase::kPausing: {
      const double elapsed_ms =
          static_cast<double>(clock_->NowNanos() - swapped_at_nanos_) /
          kNanosPerMs;
      if (elapsed_ms < options_.pause_ms) break;
      const Result<ServiceStats> now =
          fleet_->ReplicaCumulativeStats(targets_[cursor_]);
      if (!now.ok()) {
        // Replica vanished under us: treat as a regression — something
        // external is reshaping the fleet mid-rollout.
        RollBackLocked();
        break;
      }
      const ServiceStats& current = now.value();
      const uint64_t answers = Answers(current) - Answers(baseline_);
      if (answers < options_.min_answers &&
          elapsed_ms < options_.max_wait_ms) {
        break;  // keep waiting for traffic
      }
      const uint64_t failures = Failures(current) - Failures(baseline_);
      const double rate =
          answers == 0
              ? 0.0
              : static_cast<double>(failures) / static_cast<double>(answers);
      if (rate > options_.max_failure_rate) {
        RollBackLocked();
        break;
      }
      ++cursor_;
      if (cursor_ >= targets_.size()) {
        fleet_->SetPrimaryFactory(next_factory_, next_version_);
        commits_total_->Increment();
        phase_ = Phase::kDone;
        last_duration_ms_ =
            static_cast<double>(clock_->NowNanos() - began_at_nanos_) /
            kNanosPerMs;
      } else {
        phase_ = Phase::kSwapping;
      }
      break;
    }
  }
  phase_gauge_->Set(static_cast<double>(phase_));
  return phase_;
}

VersionRollout::Phase VersionRollout::phase() const {
  MutexLock lock(mu_);
  return phase_;
}

size_t VersionRollout::swapped() const {
  MutexLock lock(mu_);
  if (phase_ == Phase::kIdle) return 0;
  // cursor_ replicas fully judged, plus the one in flight while pausing.
  return phase_ == Phase::kPausing ? cursor_ + 1 : cursor_;
}

double VersionRollout::last_duration_ms() const {
  MutexLock lock(mu_);
  return last_duration_ms_;
}

}  // namespace zerotune::serve::adaptation
