#ifndef ZEROTUNE_SERVE_ADAPTATION_WORKER_H_
#define ZEROTUNE_SERVE_ADAPTATION_WORKER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/cost_predictor.h"
#include "core/registry/model_registry.h"
#include "obs/metrics.h"
#include "serve/adaptation/drift_detector.h"
#include "serve/adaptation/rollout.h"
#include "serve/adaptation/shadow_scorer.h"
#include "serve/circuit_breaker.h"
#include "serve/fleet/fleet.h"

namespace zerotune::serve::adaptation {

/// A CostPredictor view over a registry-cached model. Replica primary
/// factories hand each replica its own predictor object; this adapter
/// lets them all share one immutable ZeroTuneModel (the shared_ptr keeps
/// the version alive even after the registry retires it).
class SharedModelPredictor : public core::CostPredictor {
 public:
  explicit SharedModelPredictor(
      std::shared_ptr<const core::ZeroTuneModel> model)
      : model_(std::move(model)) {}

  Result<core::CostPrediction> Predict(
      const dsp::ParallelQueryPlan& plan) const override {
    return model_->Predict(plan);
  }
  Result<std::vector<core::CostPrediction>> PredictBatch(
      std::span<const dsp::ParallelQueryPlan* const> plans) const override {
    return model_->PredictBatch(plans);
  }
  std::string name() const override { return model_->name(); }

 private:
  std::shared_ptr<const core::ZeroTuneModel> model_;
};

/// One observed execution fed back into the adaptation loop: what the
/// live model predicted for the plan and what actually happened (in the
/// simulator, the ground-truth engine's measurement).
struct ObservedExecution {
  dsp::ParallelQueryPlan plan;
  double predicted_latency_ms = 0.0;
  double actual_latency_ms = 0.0;
  double actual_throughput_tps = 0.0;
  /// Workload family for per-family drift tracking (e.g. the query
  /// template or structure name).
  std::string family;
};

/// Configuration of the online adaptation loop.
struct AdaptationOptions {
  DriftOptions drift;
  ShadowOptions shadow;
  RolloutOptions rollout;
  /// Breaker over *adaptation cycles*: repeated failed fine-tunes
  /// (rejected candidates, rolled-back promotions) trip it, suppressing
  /// further fine-tune attempts until it half-opens.
  CircuitBreakerOptions breaker;
  /// Labeled pairs buffered before a fine-tune may start.
  size_t min_pairs = 32;
  /// Pair buffer bound (oldest dropped first).
  size_t max_pairs = 512;
  /// Fine-tune schedule: few epochs at a low rate on the drift window —
  /// an incremental correction, not a retrain.
  size_t finetune_epochs = 8;
  double finetune_learning_rate = 3e-4;
  /// Root seed for fine-tune shuffling (each fine-tune derives its own).
  uint64_t seed = 1;

  Status Validate() const;
};

/// The online adaptation loop: drift detection -> incremental fine-tune
/// -> registry publish -> shadow scoring -> promote + rolling hot-swap,
/// or reject / rollback.
///
///   kMonitoring --drift && enough pairs && breaker allows-->
///       fine-tune live model on the buffered (plan, actual) pairs,
///       Publish as candidate --> kShadowing
///   kShadowing: mirrored traffic races candidate vs live;
///       kPromote --> registry Promote (+ rolling swap when a fleet is
///                    attached) --> kRollingOut / kMonitoring
///       kReject  --> registry Reject, breaker records a failure
///   kRollingOut: VersionRollout steps the promoted version across the
///       fleet replica-by-replica;
///       kDone       --> breaker records success --> kMonitoring
///       kRolledBack --> registry Rollback (parent live again), breaker
///                       records a failure --> kMonitoring
///
/// The cycle breaker means a workload the model *cannot* learn does not
/// turn the loop into a publish/reject treadmill: after enough failed
/// cycles the breaker opens and the loop just monitors until the
/// open-duration passes.
///
/// Observe() is cheap and thread-safe (drift window + pair buffer +
/// shadow mirror); Tick() advances the state machine by at most one step
/// and serializes internally — drive it from a controller loop. All
/// timing flows through the injected Clock.
class AdaptationWorker {
 public:
  enum class State { kMonitoring, kShadowing, kRollingOut };

  static const char* ToString(State state);

  /// Builds a replica primary factory for a registry version — the hook
  /// that lets serve-sim wrap each replica's shared model in a
  /// per-replica ChaosPredictor. Null builder = plain
  /// SharedModelPredictor per replica.
  using FactoryBuilder = std::function<fleet::PredictionFleet::PrimaryFactory(
      std::shared_ptr<const core::ZeroTuneModel> model, uint64_t version)>;

  /// `registry` is required and borrowed. `fleet` may be null (no rolling
  /// swap; promotion completes at the registry). Null clock = system
  /// clock.
  AdaptationWorker(core::registry::ModelRegistry* registry,
                   fleet::PredictionFleet* fleet, AdaptationOptions options,
                   Clock* clock);

  AdaptationWorker(const AdaptationWorker&) = delete;
  AdaptationWorker& operator=(const AdaptationWorker&) = delete;

  void set_factory_builder(FactoryBuilder builder);

  /// Feeds one observed execution: drift window, fine-tune pair buffer,
  /// and (while shadowing) the candidate-vs-live race.
  void Observe(const ObservedExecution& execution);

  /// Advances the loop by at most one step; returns the state after the
  /// step. Fine-tuning happens inside this call (synchronously).
  Result<State> Tick();

  State state() const;

  struct Stats {
    State state = State::kMonitoring;
    uint64_t live_version = 0;
    uint64_t candidate_version = 0;
    uint64_t finetunes = 0;
    uint64_t promotions = 0;
    uint64_t rejections = 0;
    uint64_t rollbacks = 0;
    size_t buffered_pairs = 0;
    uint64_t drift_observations = 0;
    CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
  };
  /// Non-const: reading the breaker state evaluates its open -> half-open
  /// timer.
  Stats snapshot();

  DriftDetector& drift() { return drift_; }
  VersionRollout* rollout() { return rollout_.get(); }

 private:
  /// Fine-tunes the live model on `pairs`, publishes the candidate, and
  /// arms the shadow race. Runs without mu_ held (training is slow).
  Status FineTune(const std::vector<ObservedExecution>& pairs);
  Status FinishShadow(ShadowVerdict verdict);
  fleet::PredictionFleet::PrimaryFactory BuildFactory(
      const std::shared_ptr<const core::ZeroTuneModel>& model,
      uint64_t version);

  core::registry::ModelRegistry* registry_;
  fleet::PredictionFleet* fleet_;
  const AdaptationOptions options_;
  const Status options_status_;
  Clock* clock_;

  DriftDetector drift_;
  CircuitBreaker breaker_;
  std::unique_ptr<VersionRollout> rollout_;  // null without a fleet

  obs::Counter* finetunes_total_;
  obs::Counter* promotions_total_;
  obs::Counter* rejections_total_;
  obs::Counter* rollbacks_total_;
  obs::Gauge* state_gauge_;

  /// Serializes Tick() (fine-tuning must not run twice concurrently).
  /// Ordering: tick_mu_ before mu_; Observe() takes only mu_.
  Mutex tick_mu_;

  mutable Mutex mu_;
  State state_ ZT_GUARDED_BY(mu_) = State::kMonitoring;
  std::deque<ObservedExecution> pairs_ ZT_GUARDED_BY(mu_);
  FactoryBuilder builder_ ZT_GUARDED_BY(mu_);
  std::shared_ptr<ShadowScorer> scorer_ ZT_GUARDED_BY(mu_);
  std::shared_ptr<const core::ZeroTuneModel> live_model_ ZT_GUARDED_BY(mu_);
  std::shared_ptr<const core::ZeroTuneModel> candidate_model_
      ZT_GUARDED_BY(mu_);
  uint64_t live_id_ ZT_GUARDED_BY(mu_) = 0;
  uint64_t candidate_id_ ZT_GUARDED_BY(mu_) = 0;
  uint64_t finetunes_ ZT_GUARDED_BY(mu_) = 0;
  uint64_t promotions_ ZT_GUARDED_BY(mu_) = 0;
  uint64_t rejections_ ZT_GUARDED_BY(mu_) = 0;
  uint64_t rollbacks_ ZT_GUARDED_BY(mu_) = 0;
};

}  // namespace zerotune::serve::adaptation

#endif  // ZEROTUNE_SERVE_ADAPTATION_WORKER_H_
