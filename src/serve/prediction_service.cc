#include "serve/prediction_service.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <sstream>

#include "analysis/plan_analyzer.h"
#include "obs/trace.h"

namespace zerotune::serve {

namespace {

bool DeadlineReached(Clock* clock, int64_t deadline_nanos) {
  return deadline_nanos != kNoDeadlineNanos &&
         clock->NowNanos() >= deadline_nanos;
}

// Process-wide instance numbering so concurrent services (tests spin up
// many) get disjoint serve.* series in the global registry; caller labels
// (e.g. the fleet's {"replica", <id>}) ride along on every series.
obs::Labels NextInstanceLabels(const obs::Labels& extra) {
  static std::atomic<uint64_t> next{0};
  obs::Labels labels = extra;
  labels.emplace_back(
      "instance",
      std::to_string(next.fetch_add(1, std::memory_order_relaxed)));
  return labels;
}

}  // namespace

Status ServeOptions::Validate() const {
  if (max_inflight == 0) {
    return Status::InvalidArgument("serve max_inflight must be >= 1");
  }
  if (max_attempts == 0) {
    return Status::InvalidArgument("serve max_attempts must be >= 1");
  }
  if (!std::isfinite(default_deadline_ms) || default_deadline_ms < 0.0) {
    return Status::InvalidArgument(
        "serve default_deadline_ms must be non-negative and finite");
  }
  if (!std::isfinite(backoff_base_ms) || backoff_base_ms < 0.0) {
    return Status::InvalidArgument(
        "serve backoff_base_ms must be non-negative and finite");
  }
  if (!std::isfinite(backoff_max_ms) || backoff_max_ms < backoff_base_ms) {
    return Status::InvalidArgument(
        "serve backoff_max_ms must be finite and >= backoff_base_ms");
  }
  if (!std::isfinite(backoff_jitter) || backoff_jitter < 0.0) {
    return Status::InvalidArgument(
        "serve backoff_jitter must be non-negative and finite");
  }
  return breaker.Validate();
}

std::string ServiceStats::ToText() const {
  std::ostringstream os;
  os << "model: version " << model_version << "\n"
     << "requests: received " << received << ", admitted " << admitted
     << ", completed " << completed << " (" << degraded << " degraded)\n"
     << "shed: queue-full " << shed_queue_full << ", lint " << shed_lint
     << "; deadline-expired " << deadline_expired << "; failed " << failed
     << "\n"
     << "primary: failures " << primary_failures << ", retries " << retries
     << "; fallback failures " << fallback_failures << "\n"
     << "breaker: " << CircuitBreaker::ToString(breaker_state) << ", trips "
     << breaker_trips << ", recoveries " << breaker_recoveries << "\n"
     << "latency_ms: " << latency_ms.Summary() << "\n";
  return os.str();
}

std::string ServiceStats::ToJson() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\"model_version\": " << model_version
     << ", \"received\": " << received << ", \"admitted\": " << admitted
     << ", \"completed\": " << completed << ", \"degraded\": " << degraded
     << ", \"shed_queue_full\": " << shed_queue_full
     << ", \"shed_lint\": " << shed_lint
     << ", \"deadline_expired\": " << deadline_expired
     << ", \"failed\": " << failed << ", \"retries\": " << retries
     << ", \"primary_failures\": " << primary_failures
     << ", \"fallback_failures\": " << fallback_failures
     << ", \"breaker_state\": \"" << CircuitBreaker::ToString(breaker_state)
     << "\", \"breaker_trips\": " << breaker_trips
     << ", \"breaker_recoveries\": " << breaker_recoveries
     << ", \"latency_ms\": {\"count\": " << latency_ms.count();
  if (latency_ms.count() > 0) {
    os << ", \"mean\": " << latency_ms.Mean()
       << ", \"p50\": " << latency_ms.Percentile(50)
       << ", \"p95\": " << latency_ms.Percentile(95)
       << ", \"p99\": " << latency_ms.Percentile(99)
       << ", \"max\": " << latency_ms.max();
  }
  os << "}}";
  return os.str();
}

struct PredictionService::Request {
  const dsp::ParallelQueryPlan* plan = nullptr;
  int64_t deadline_nanos = kNoDeadlineNanos;
  int64_t admitted_nanos = 0;

  Mutex mu;
  std::condition_variable cv;
  bool started ZT_GUARDED_BY(mu) = false;    // a worker has claimed it
  bool cancelled ZT_GUARDED_BY(mu) = false;  // deadline expired while queued
  // Atomic so deadline-wait predicates can poll it without holding `mu`
  // (the cv wait itself still runs under the lock); written under `mu`
  // before the notify.
  std::atomic<bool> done{false};
  Result<ServedPrediction> result ZT_GUARDED_BY(mu){
      Status::Internal("pending")};
};

PredictionService::PredictionService(const core::CostPredictor* primary,
                                     const core::CostPredictor* fallback,
                                     ServeOptions options, ThreadPool* pool,
                                     Clock* clock)
    : primary_(primary),
      fallback_(fallback),
      options_(options),
      options_status_(options.Validate()),
      pool_(pool),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      breaker_(options.breaker, clock_),
      metric_labels_(NextInstanceLabels(options.metric_labels)),
      rng_(options.seed) {
  auto* metrics = obs::MetricsRegistry::Global();
  received_ = metrics->GetCounter("serve.received_total", metric_labels_);
  admitted_ = metrics->GetCounter("serve.admitted_total", metric_labels_);
  shed_queue_full_ =
      metrics->GetCounter("serve.shed_queue_full_total", metric_labels_);
  shed_lint_ = metrics->GetCounter("serve.shed_lint_total", metric_labels_);
  completed_ = metrics->GetCounter("serve.completed_total", metric_labels_);
  degraded_ = metrics->GetCounter("serve.degraded_total", metric_labels_);
  deadline_expired_ =
      metrics->GetCounter("serve.deadline_expired_total", metric_labels_);
  failed_ = metrics->GetCounter("serve.failed_total", metric_labels_);
  retries_ = metrics->GetCounter("serve.retries_total", metric_labels_);
  primary_failures_ =
      metrics->GetCounter("serve.primary_failures_total", metric_labels_);
  fallback_failures_ =
      metrics->GetCounter("serve.fallback_failures_total", metric_labels_);
  latency_ms_ = metrics->GetHistogram("serve.latency_ms", metric_labels_);
  metrics->GetGauge("serve.model_version", metric_labels_)
      ->Set(static_cast<double>(options_.model_version));
}

PredictionService::~PredictionService() {
  // Queue-cancelled requests leave their drain task pending on the pool;
  // those tasks touch `this`, so they must finish before we go away.
  if (pool_ != nullptr) pool_->Wait();
}

Result<ServedPrediction> PredictionService::Predict(
    const dsp::ParallelQueryPlan& plan) {
  return Predict(plan, options_.default_deadline_ms);
}

Result<ServedPrediction> PredictionService::Predict(
    const dsp::ParallelQueryPlan& plan, double deadline_ms) {
  received_->Increment();
  ZT_RETURN_IF_ERROR(options_status_);

  // Static-analysis gate: a plan the analyzer rejects would only waste
  // inference budget (or crash the featurizer), so it is shed up front
  // with the ZT-Pxxx codes in the status message.
  if (options_.lint_admission) {
    const Status lint = analysis::PlanAnalyzer::Check(plan);
    if (!lint.ok()) {
      shed_lint_->Increment();
      return lint.Annotated("shed at admission");
    }
  }

  // Bounded admission: beyond max_inflight the request is shed, not
  // queued — the caller gets explicit backpressure it can react to.
  // Requests parked in backoff sleep are discounted: they hold no
  // execution resources, so counting them against the bound would let a
  // burst of retrying requests starve fresh admissions.
  {
    MutexLock g(queue_mu_);
    if (inflight_ - backing_off_ >= options_.max_inflight) {
      shed_queue_full_->Increment();
      return Status::ResourceExhausted(
          "service at capacity (" + std::to_string(options_.max_inflight) +
          " in flight); request shed");
    }
    ++inflight_;
  }
  admitted_->Increment();

  auto request = std::make_shared<Request>();
  request->plan = &plan;
  request->admitted_nanos = clock_->NowNanos();
  request->deadline_nanos =
      deadline_ms > 0.0
          ? request->admitted_nanos + static_cast<int64_t>(deadline_ms * 1e6)
          : kNoDeadlineNanos;

  if (pool_ == nullptr) {
    // Inline mode: execute in the caller thread. Deterministic — the mode
    // FakeClock tests use.
    Execute(request.get());
    {
      MutexLock g(queue_mu_);
      --inflight_;
    }
    MutexLock g(request->mu);
    return request->result;
  }

  {
    MutexLock g(queue_mu_);
    queue_.push_back(request);
  }
  pool_->Submit([this] { DrainOne(); });

  MutexLock lock(request->mu);
  clock_->WaitUntil(lock.unique_lock(), request->cv, request->deadline_nanos,
                    [&] { return request->done.load(); });
  if (!request->done.load()) {
    if (!request->started) {
      // Deadline passed while still queued: cancel. The worker that
      // eventually pops it discards it without running (and records the
      // deadline_expired disposition), so the expired request consumes no
      // inference budget.
      request->cancelled = true;
      return Status::DeadlineExceeded(
          "deadline (" + std::to_string(deadline_ms) +
          " ms) expired while queued; request cancelled unexecuted");
    }
    // A worker is executing it: attempts are never preempted mid-predict,
    // so wait for the (attempt-bounded) completion and return its result —
    // the executor's own budget checks decide whether that is a value or
    // DeadlineExceeded.
    while (!request->done.load()) request->cv.wait(lock.unique_lock());
  }
  return request->result;
}

void PredictionService::DrainOne() {
  std::shared_ptr<Request> request;
  {
    MutexLock g(queue_mu_);
    if (queue_.empty()) return;  // defensive; one task per enqueue
    request = std::move(queue_.front());
    queue_.pop_front();
  }
  bool cancelled = false;
  {
    MutexLock g(request->mu);
    cancelled = request->cancelled;
    if (!cancelled) request->started = true;
  }
  if (cancelled) {
    deadline_expired_->Increment();
  } else {
    Execute(request.get());
  }
  MutexLock g(queue_mu_);
  --inflight_;
}

void PredictionService::Execute(Request* request) {
  obs::Span span("serve/execute");
  Result<ServedPrediction> result = ExecuteAttempts(
      *request->plan, request->deadline_nanos, request->admitted_nanos);
  span.AddArg("ok", result.ok() ? "true" : "false");
  FinishRequest(result);
  {
    MutexLock g(request->mu);
    request->result = std::move(result);
    request->done.store(true);
  }
  request->cv.notify_all();
}

void PredictionService::FinishRequest(const Result<ServedPrediction>& result) {
  if (result.ok()) {
    // completed before degraded: a snapshot reading degraded first can
    // then never observe degraded > completed.
    completed_->Increment();
    if (result.value().degraded) degraded_->Increment();
    latency_ms_->Record(std::max(result.value().total_ms, 1e-6));
  } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
    deadline_expired_->Increment();
  } else {
    failed_->Increment();
  }
}

void PredictionService::SleepBackoff(size_t attempt, int64_t deadline_nanos) {
  double ms = std::min(
      options_.backoff_max_ms,
      options_.backoff_base_ms *
          std::pow(2.0, static_cast<double>(attempt - 1)));
  {
    MutexLock g(rng_mu_);
    ms *= rng_.Uniform(1.0, 1.0 + options_.backoff_jitter);
  }
  if (deadline_nanos != kNoDeadlineNanos) {
    // Never sleep past the budget; the loop's deadline check fires next.
    const double remaining_ms =
        static_cast<double>(deadline_nanos - clock_->NowNanos()) / 1e6;
    ms = std::min(ms, std::max(remaining_ms, 0.0));
  }
  if (ms > 0.0) {
    // Release the admission slot for the duration of the sleep: a request
    // waiting out its backoff consumes no execution resources, so fresh
    // requests may take its place. On wake the request resumes without
    // re-acquiring a slot, so total residency can transiently exceed
    // max_inflight (bounded by max_inflight * max_attempts); what the
    // bound strictly limits is slots held at admission time.
    {
      MutexLock g(queue_mu_);
      ++backing_off_;
    }
    clock_->SleepFor(static_cast<int64_t>(ms * 1e6));
    MutexLock g(queue_mu_);
    --backing_off_;
  }
}

Result<ServedPrediction> PredictionService::ExecuteAttempts(
    const dsp::ParallelQueryPlan& plan, int64_t deadline_nanos,
    int64_t admitted_nanos) {
  size_t attempts = 0;
  Status last_error = Status::OK();

  while (attempts < options_.max_attempts) {
    if (DeadlineReached(clock_, deadline_nanos)) {
      return Status::DeadlineExceeded(
          "prediction budget exhausted after " + std::to_string(attempts) +
          " primary attempt(s)");
    }
    if (!breaker_.AllowPrimary()) break;  // circuit open: degrade
    ++attempts;
    const int64_t t0 = clock_->NowNanos();
    const Result<core::CostPrediction> r = primary_->Predict(plan);
    const double attempt_ms = clock_->MillisSince(t0);
    if (r.ok()) {
      breaker_.RecordSuccess(attempt_ms);
      ServedPrediction served;
      served.cost = r.value();
      served.attempts = attempts;
      served.total_ms = clock_->MillisSince(admitted_nanos);
      served.model_version = options_.model_version;
      return served;
    }
    breaker_.RecordFailure();
    last_error = r.status();
    primary_failures_->Increment();
    if (attempts < options_.max_attempts &&
        !DeadlineReached(clock_, deadline_nanos)) {
      retries_->Increment();
      SleepBackoff(attempts, deadline_nanos);
    }
  }

  // Degraded mode: circuit open or every attempt failed. The fallback is
  // cheap and local, so it runs even with the deadline near — a degraded
  // answer beats none.
  const std::string primary_desc =
      attempts == 0 ? "circuit open"
                    : "failed " + std::to_string(attempts) + " attempt(s), " +
                          "last: " + last_error.ToString();
  if (fallback_ != nullptr) {
    const Result<core::CostPrediction> fb = fallback_->Predict(plan);
    if (fb.ok()) {
      ServedPrediction served;
      served.cost = fb.value();
      served.degraded = true;
      served.attempts = attempts;
      served.total_ms = clock_->MillisSince(admitted_nanos);
      // The fallback is unversioned; record which primary version could
      // not answer so degraded traffic is attributable to a rollout.
      served.degraded_from_version = options_.model_version;
      return served;
    }
    fallback_failures_->Increment();
    return Status::Unavailable("primary " + primary_desc +
                               "; fallback failed: " +
                               fb.status().ToString());
  }
  return Status::Unavailable("primary " + primary_desc +
                             "; no fallback configured");
}

ServiceStats PredictionService::Snapshot() const {
  ServiceStats snap;
  // Reverse-causal read order. Each request increments received, then
  // admitted (or a shed counter), then exactly one disposition — so
  // reading dispositions first, then admitted, then the admission-side
  // counters guarantees every snapshot satisfies
  //   degraded <= completed,
  //   completed + deadline_expired + failed <= admitted,
  //   admitted + shed_queue_full + shed_lint <= received,
  // with equality at quiescence.
  snap.latency_ms = latency_ms_->Snapshot();
  snap.degraded = degraded_->Value();
  snap.completed = completed_->Value();
  snap.deadline_expired = deadline_expired_->Value();
  snap.failed = failed_->Value();
  snap.retries = retries_->Value();
  snap.primary_failures = primary_failures_->Value();
  snap.fallback_failures = fallback_failures_->Value();
  snap.admitted = admitted_->Value();
  snap.shed_queue_full = shed_queue_full_->Value();
  snap.shed_lint = shed_lint_->Value();
  snap.received = received_->Value();
  snap.model_version = options_.model_version;
  snap.breaker_trips = breaker_.trips();
  snap.breaker_recoveries = breaker_.recoveries();
  snap.breaker_state = const_cast<CircuitBreaker&>(breaker_).state();
  return snap;
}

}  // namespace zerotune::serve
