#include "serve/circuit_breaker.h"

#include <cmath>

namespace zerotune::serve {

Status CircuitBreakerOptions::Validate() const {
  if (window == 0) {
    return Status::InvalidArgument("breaker window must be >= 1");
  }
  if (min_samples == 0 || min_samples > window) {
    return Status::InvalidArgument(
        "breaker min_samples must lie in [1, window], got " +
        std::to_string(min_samples));
  }
  if (!(error_rate_to_trip > 0.0 && error_rate_to_trip <= 1.0)) {
    return Status::InvalidArgument(
        "breaker error_rate_to_trip must lie in (0, 1], got " +
        std::to_string(error_rate_to_trip));
  }
  if (!std::isfinite(slow_call_ms) || slow_call_ms < 0.0) {
    return Status::InvalidArgument(
        "breaker slow_call_ms must be non-negative and finite (0 disables)");
  }
  if (!std::isfinite(open_duration_ms) || open_duration_ms <= 0.0) {
    return Status::InvalidArgument(
        "breaker open_duration_ms must be positive and finite");
  }
  if (half_open_probes == 0) {
    return Status::InvalidArgument("breaker half_open_probes must be >= 1");
  }
  return Status::OK();
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options, Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : SystemClock::Default()) {}

const char* CircuitBreaker::ToString(State s) {
  switch (s) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::MaybeHalfOpenLocked() {
  if (state_ != State::kOpen) return;
  const double elapsed_ms =
      static_cast<double>(clock_->NowNanos() - opened_at_nanos_) / 1e6;
  if (elapsed_ms >= options_.open_duration_ms) {
    state_ = State::kHalfOpen;
    half_open_inflight_ = 0;
    half_open_successes_ = 0;
  }
}

void CircuitBreaker::TripLocked() {
  state_ = State::kOpen;
  opened_at_nanos_ = clock_->NowNanos();
  ++trips_;
  window_.clear();
  window_failures_ = 0;
  half_open_inflight_ = 0;
  half_open_successes_ = 0;
}

void CircuitBreaker::PushOutcomeLocked(bool failure) {
  window_.push_back(failure);
  if (failure) ++window_failures_;
  while (window_.size() > options_.window) {
    if (window_.front()) --window_failures_;
    window_.pop_front();
  }
  if (window_.size() >= options_.min_samples) {
    const double rate = static_cast<double>(window_failures_) /
                        static_cast<double>(window_.size());
    if (rate >= options_.error_rate_to_trip) TripLocked();
  }
}

bool CircuitBreaker::AllowPrimary() {
  MutexLock g(mu_);
  MaybeHalfOpenLocked();
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (half_open_inflight_ < options_.half_open_probes) {
        ++half_open_inflight_;
        return true;
      }
      return false;
  }
  return false;
}

void CircuitBreaker::RecordSuccess(double latency_ms) {
  MutexLock g(mu_);
  const bool slow =
      options_.slow_call_ms > 0.0 && latency_ms > options_.slow_call_ms;
  switch (state_) {
    case State::kClosed:
      PushOutcomeLocked(/*failure=*/slow);
      break;
    case State::kHalfOpen:
      if (half_open_inflight_ > 0) --half_open_inflight_;
      if (slow) {
        TripLocked();  // a slow probe is not a recovery signal
        break;
      }
      ++half_open_successes_;
      if (half_open_successes_ >= options_.half_open_probes) {
        state_ = State::kClosed;
        window_.clear();
        window_failures_ = 0;
        ++recoveries_;
      }
      break;
    case State::kOpen:
      break;  // a straggling result from before the trip; ignore
  }
}

void CircuitBreaker::RecordFailure() {
  MutexLock g(mu_);
  switch (state_) {
    case State::kClosed:
      PushOutcomeLocked(/*failure=*/true);
      break;
    case State::kHalfOpen:
      TripLocked();  // one failing probe re-opens immediately
      break;
    case State::kOpen:
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() {
  MutexLock g(mu_);
  MaybeHalfOpenLocked();
  return state_;
}

uint64_t CircuitBreaker::trips() const {
  MutexLock g(mu_);
  return trips_;
}

uint64_t CircuitBreaker::recoveries() const {
  MutexLock g(mu_);
  return recoveries_;
}

}  // namespace zerotune::serve
