#ifndef ZEROTUNE_SERVE_FLEET_HEALTH_H_
#define ZEROTUNE_SERVE_FLEET_HEALTH_H_

#include <cstdint>
#include <deque>
#include <string>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace zerotune::serve::fleet {

/// Replica health as the router sees it.
///
///  - kHealthy: full member — primary routes and hedge targets.
///  - kSuspect: elevated error/latency — still serves primary traffic
///    (requests routed to it are hedged immediately), not used as a hedge
///    target while a healthy replica exists.
///  - kDown: crashed or error rate above the down threshold — skipped at
///    routing time (automatic failover to the next replica on the ring)
///    until the probe backoff elapses or the controller restarts it.
enum class ReplicaHealth { kHealthy = 0, kSuspect = 1, kDown = 2 };

const char* ToString(ReplicaHealth h);

struct HealthOptions {
  /// Rolling window of recent request outcomes per replica.
  size_t window = 64;
  /// Outcomes required in the window before error rates are evaluated —
  /// a freshly (re)started replica gets this much grace.
  size_t min_samples = 8;
  /// Window failure fraction at or above which the replica is suspect.
  double suspect_error_rate = 0.3;
  /// Window failure fraction at or above which the replica is down.
  double down_error_rate = 0.7;
  /// A success slower than this counts as a failure in the window
  /// (latency-based degradation); 0 disables the latency criterion.
  double slow_ms = 0.0;
  /// Time a replica marked down by its error rate stays down before it is
  /// put back on probation (suspect, window cleared). A *crashed* replica
  /// stays down until restarted regardless.
  double down_probe_backoff_ms = 500.0;

  Status Validate() const;
};

/// Per-replica rolling-window health state, driven by request outcomes
/// and the injectable Clock (FakeClock tests step through the
/// down -> probation transition deterministically). Thread-safe.
class HealthTracker {
 public:
  HealthTracker(HealthOptions options, Clock* clock);

  /// Reports one request served by this replica. Degraded answers count
  /// as failures for health purposes: the replica answered, but its
  /// primary model did not.
  void RecordSuccess(double latency_ms);
  void RecordFailure();

  /// Hard down signal (replica crashed); only Reset() recovers it.
  void MarkCrashed();
  /// Replica restarted: window cleared, health back to healthy.
  void Reset();

  /// Current health; evaluates the down-backoff timer.
  ReplicaHealth health();

  /// Times the tracker transitioned into kDown (crash or error rate).
  uint64_t downs() const;

 private:
  void PushOutcomeLocked(bool failure) ZT_REQUIRES(mu_);
  void EvaluateLocked() ZT_REQUIRES(mu_);

  HealthOptions options_;
  Clock* clock_;

  mutable Mutex mu_;
  ReplicaHealth health_ ZT_GUARDED_BY(mu_) = ReplicaHealth::kHealthy;
  bool crashed_ ZT_GUARDED_BY(mu_) = false;
  std::deque<bool> window_ ZT_GUARDED_BY(mu_);  // true = failure
  size_t window_failures_ ZT_GUARDED_BY(mu_) = 0;
  int64_t down_since_nanos_ ZT_GUARDED_BY(mu_) = 0;
  uint64_t downs_ ZT_GUARDED_BY(mu_) = 0;
};

}  // namespace zerotune::serve::fleet

#endif  // ZEROTUNE_SERVE_FLEET_HEALTH_H_
