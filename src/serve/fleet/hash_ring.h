#ifndef ZEROTUNE_SERVE_FLEET_HASH_RING_H_
#define ZEROTUNE_SERVE_FLEET_HASH_RING_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dsp/parallel_plan.h"

namespace zerotune::serve::fleet {

/// Stable 64-bit mixer (splitmix64 finalizer). Used for ring points, key
/// hashing, and per-component seed derivation — deterministic across
/// platforms, unlike std::hash.
uint64_t Mix64(uint64_t x);

/// Derives an independent seed for component `stream` from one root seed;
/// the serve-sim CLI threads its --seed through this so chaos, jitter,
/// kill schedule, and tenant assignment get decorrelated but reproducible
/// streams.
inline uint64_t DeriveSeed(uint64_t root_seed, uint64_t stream) {
  return Mix64(root_seed ^ Mix64(stream + 0x9e3779b97f4a7c15ULL));
}

/// Structural hash of a deployed plan: operator ids, types, parallelism
/// degrees, and partitioning. Two requests for the same deployment hash
/// identically, so they route to the same replica (cache- and
/// model-affinity friendly); any structural change moves the key.
uint64_t PlanKeyHash(const dsp::ParallelQueryPlan& plan);

/// Routing key of a fleet request: tenant x plan structure.
uint64_t RequestKey(const std::string& tenant, uint64_t plan_hash);

/// Consistent-hash ring over replica ids. Each replica owns
/// `virtual_nodes` pseudo-random points on a 64-bit ring; a key is owned
/// by the first replica point at or after the key (wrapping). Properties
/// the router and its tests rely on:
///
///  - adding/removing one replica only remaps the keys that replica owns
///    (~1/N of the key space), never keys between other replicas;
///  - PreferenceList() yields the owner followed by the next distinct
///    replicas in ring order — the deterministic failover/hedging order;
///  - with enough virtual nodes, key load is near-uniform (relative
///    imbalance ~ 1/sqrt(virtual_nodes)).
///
/// Not thread-safe; PredictionFleet guards it with its routing lock.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(size_t virtual_nodes = 128);

  /// Adds a replica's virtual nodes; no-op when already present.
  void Add(uint32_t replica_id);
  /// Removes a replica's virtual nodes; no-op when absent.
  void Remove(uint32_t replica_id);
  bool Contains(uint32_t replica_id) const;

  /// Number of member replicas.
  size_t size() const { return members_.size(); }
  std::vector<uint32_t> Members() const;

  /// Replica owning `key`; nullopt when the ring is empty.
  std::optional<uint32_t> Owner(uint64_t key) const;

  /// Up to `k` distinct replicas for `key` in ring order starting at the
  /// owner. Entry 0 is the primary route; entries 1.. are the failover /
  /// hedge targets.
  std::vector<uint32_t> PreferenceList(uint64_t key, size_t k) const;

 private:
  size_t virtual_nodes_;
  std::map<uint64_t, uint32_t> ring_;  // point -> replica id
  std::set<uint32_t> members_;
};

}  // namespace zerotune::serve::fleet

#endif  // ZEROTUNE_SERVE_FLEET_HASH_RING_H_
