#ifndef ZEROTUNE_SERVE_FLEET_TENANT_QUOTA_H_
#define ZEROTUNE_SERVE_FLEET_TENANT_QUOTA_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace zerotune::serve::fleet {

struct QuotaOptions {
  /// Hard cap on a single tenant's share of fleet capacity (0, 1]. A
  /// tenant holding >= max(min_tenant_slots, share * capacity) inflight
  /// slots is shed with ResourceExhausted("tenant quota ...") no matter
  /// how idle the fleet is.
  double max_tenant_share = 0.25;
  /// Fleet utilization (inflight / capacity) above which *fair* admission
  /// kicks in: tenants already holding >= capacity / active_tenants slots
  /// are shed first, so a burst from one tenant cannot starve the rest.
  double fair_share_watermark = 0.75;
  /// Every tenant may always hold at least this many slots.
  size_t min_tenant_slots = 1;

  Status Validate() const;
};

/// Why an admission attempt was refused.
enum class QuotaDecision { kAdmit = 0, kFleetFull = 1, kTenantQuota = 2, kFairShare = 3 };

/// Per-tenant fair-admission layer in front of the fleet. Tracks each
/// tenant's inflight requests in a sharded hash map (shard by tenant
/// hash; no global lock on the hot path) and lazily registers the
/// tenant-labelled serve.fleet.tenant.* metric series on first contact.
/// Thread-safe.
class TenantQuotas {
 public:
  explicit TenantQuotas(QuotaOptions options);

  /// Attempts to admit one request for `tenant` against `capacity` total
  /// fleet slots. On kAdmit the caller MUST call Release(tenant) exactly
  /// once when the request leaves the fleet.
  QuotaDecision Admit(const std::string& tenant, size_t capacity);
  void Release(const std::string& tenant);

  /// Records the request's final disposition on the tenant's labelled
  /// series (answered or shed).
  void CountOutcome(const std::string& tenant, bool answered);

  /// Tenants holding at least one inflight slot right now.
  size_t active_tenants() const {
    return active_tenants_.load(std::memory_order_relaxed);
  }
  /// Total inflight requests across tenants.
  size_t total_inflight() const {
    return total_inflight_.load(std::memory_order_relaxed);
  }
  /// Distinct tenants ever seen.
  size_t tenants_seen() const;

 private:
  struct TenantState {
    std::atomic<uint64_t> inflight{0};
    obs::Counter* received = nullptr;
    obs::Counter* answered = nullptr;
    obs::Counter* shed = nullptr;
  };
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::string, std::unique_ptr<TenantState>> tenants
        ZT_GUARDED_BY(mu);
  };

  TenantState* GetOrCreate(const std::string& tenant);
  Shard& ShardFor(const std::string& tenant);

  QuotaOptions options_;
  std::array<Shard, kShards> shards_;
  std::atomic<size_t> total_inflight_{0};
  std::atomic<size_t> active_tenants_{0};
};

}  // namespace zerotune::serve::fleet

#endif  // ZEROTUNE_SERVE_FLEET_TENANT_QUOTA_H_
