#include "serve/fleet/fleet.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <condition_variable>
#include <sstream>
#include <utility>

namespace zerotune::serve::fleet {

namespace {

// Process-wide fleet numbering so concurrent fleets (tests spin up many)
// get disjoint serve.fleet.* series in the global registry.
obs::Labels NextFleetLabels() {
  static std::atomic<uint64_t> next{0};
  return {{"fleet",
           std::to_string(next.fetch_add(1, std::memory_order_relaxed))}};
}

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }
double BitsDouble(uint64_t b) { return std::bit_cast<double>(b); }

}  // namespace

Status HedgeOptions::Validate() const {
  if (!std::isfinite(percentile) || percentile <= 0.0 ||
      percentile >= 100.0) {
    return Status::InvalidArgument("hedge percentile must be in (0, 100)");
  }
  if (!std::isfinite(initial_delay_ms) || initial_delay_ms < 0.0) {
    return Status::InvalidArgument(
        "hedge initial_delay_ms must be non-negative and finite");
  }
  if (!std::isfinite(min_delay_ms) || min_delay_ms < 0.0 ||
      !std::isfinite(max_delay_ms) || max_delay_ms < min_delay_ms) {
    return Status::InvalidArgument(
        "hedge delay clamp must satisfy 0 <= min <= max and be finite");
  }
  if (refresh_every == 0) {
    return Status::InvalidArgument("hedge refresh_every must be >= 1");
  }
  return Status::OK();
}

Status FleetOptions::Validate() const {
  if (initial_replicas == 0) {
    return Status::InvalidArgument("fleet initial_replicas must be >= 1");
  }
  if (virtual_nodes == 0) {
    return Status::InvalidArgument("fleet virtual_nodes must be >= 1");
  }
  ZT_RETURN_IF_ERROR(replica.Validate());
  ZT_RETURN_IF_ERROR(health.Validate());
  ZT_RETURN_IF_ERROR(hedge.Validate());
  return quota.Validate();
}

double FleetStats::Availability() const {
  return admitted == 0
             ? 1.0
             : static_cast<double>(answered) / static_cast<double>(admitted);
}

std::string FleetStats::ToText() const {
  std::ostringstream os;
  os << "fleet: " << replicas_alive << "/" << replicas_total
     << " replicas alive, " << tenants_seen << " tenant(s) seen\n"
     << "requests: received " << received << ", admitted " << admitted
     << ", answered " << answered << " (" << degraded << " degraded, "
     << fallback_rescues << " rescued)\n"
     << "shed: fleet-capacity " << shed_fleet_capacity << ", tenant-quota "
     << shed_tenant_quota << ", fair-share " << shed_fair_share
     << "; deadline-expired " << deadline_expired << "; failed " << failed
     << "\n"
     << "routing: dispatches " << dispatches << ", failovers " << failovers
     << "; hedges sent " << hedges_sent << " (won " << hedges_won
     << ", cancelled " << hedges_cancelled << ")\n"
     << "lifecycle: kills " << kills << ", restarts " << restarts
     << ", scale-ups " << scale_ups << ", scale-downs " << scale_downs
     << "; primary swaps " << primary_swaps << " (version "
     << primary_version << ")\n"
     << "availability: "
     << (admitted == 0 ? 1.0 : Availability()) * 100.0 << "%\n"
     << "latency_ms: " << latency_ms.Summary() << "\n";
  for (const ReplicaStatsEntry& r : replicas) {
    os << "  replica " << r.id << ": "
       << (r.routable ? "" : "drained, ")
       << (r.alive ? ToString(r.health) : "dead") << ", version "
       << r.model_version << ", incarnations "
       << r.incarnations << ", received " << r.service.received
       << " (+" << r.crashed_rejections << " crash-rejected), completed "
       << r.service.completed << " (" << r.service.degraded
       << " degraded)\n";
  }
  return os.str();
}

std::string FleetStats::ToJson() const {
  std::ostringstream os;
  os.precision(17);
  const auto hist_json = [&os](const Histogram& h) {
    os << "{\"count\": " << h.count();
    if (h.count() > 0) {
      os << ", \"mean\": " << h.Mean() << ", \"p50\": " << h.Percentile(50)
         << ", \"p95\": " << h.Percentile(95)
         << ", \"p99\": " << h.Percentile(99) << ", \"max\": " << h.max();
    }
    os << "}";
  };
  os << "{\"received\": " << received << ", \"admitted\": " << admitted
     << ", \"shed_fleet_capacity\": " << shed_fleet_capacity
     << ", \"shed_tenant_quota\": " << shed_tenant_quota
     << ", \"shed_fair_share\": " << shed_fair_share
     << ", \"answered\": " << answered << ", \"degraded\": " << degraded
     << ", \"deadline_expired\": " << deadline_expired
     << ", \"failed\": " << failed
     << ", \"hedges_sent\": " << hedges_sent
     << ", \"hedges_won\": " << hedges_won
     << ", \"hedges_cancelled\": " << hedges_cancelled
     << ", \"failovers\": " << failovers
     << ", \"fallback_rescues\": " << fallback_rescues
     << ", \"dispatches\": " << dispatches << ", \"kills\": " << kills
     << ", \"restarts\": " << restarts << ", \"scale_ups\": " << scale_ups
     << ", \"scale_downs\": " << scale_downs
     << ", \"primary_swaps\": " << primary_swaps
     << ", \"primary_version\": " << primary_version
     << ", \"replicas_total\": " << replicas_total
     << ", \"replicas_alive\": " << replicas_alive
     << ", \"tenants_seen\": " << tenants_seen
     << ", \"availability\": " << Availability() << ", \"latency_ms\": ";
  hist_json(latency_ms);
  os << ", \"replica_latency_ms\": ";
  hist_json(replica_latency_ms);
  os << ", \"replicas\": [";
  for (size_t i = 0; i < replicas.size(); ++i) {
    const ReplicaStatsEntry& r = replicas[i];
    if (i > 0) os << ", ";
    os << "{\"id\": " << r.id << ", \"alive\": " << (r.alive ? "true" : "false")
       << ", \"routable\": " << (r.routable ? "true" : "false")
       << ", \"health\": \"" << ToString(r.health)
       << "\", \"incarnations\": " << r.incarnations
       << ", \"crashed_rejections\": " << r.crashed_rejections
       << ", \"model_version\": " << r.model_version
       << ", \"service\": " << r.service.ToJson() << "}";
  }
  os << "]}";
  return os.str();
}

PredictionFleet::PredictionFleet(PrimaryFactory factory,
                                 const core::CostPredictor* fallback,
                                 FleetOptions options, ThreadPool* pool,
                                 Clock* clock)
    : factory_(std::move(factory)),
      fallback_(fallback),
      options_(std::move(options)),
      options_status_(options_.Validate()),
      pool_(pool),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      quotas_(options_.quota),
      ring_(options_.virtual_nodes),
      hedge_delay_bits_(DoubleBits(options_.hedge.initial_delay_ms)),
      fleet_labels_(NextFleetLabels()) {
  auto* metrics = obs::MetricsRegistry::Global();
  const auto counter = [&](const char* name) {
    return metrics->GetCounter(name, fleet_labels_);
  };
  received_ = counter("serve.fleet.received_total");
  admitted_ = counter("serve.fleet.admitted_total");
  shed_fleet_capacity_ = counter("serve.fleet.shed_fleet_capacity_total");
  shed_tenant_quota_ = counter("serve.fleet.shed_tenant_quota_total");
  shed_fair_share_ = counter("serve.fleet.shed_fair_share_total");
  answered_ = counter("serve.fleet.answered_total");
  degraded_ = counter("serve.fleet.degraded_total");
  deadline_expired_ = counter("serve.fleet.deadline_expired_total");
  failed_ = counter("serve.fleet.failed_total");
  hedges_sent_ = counter("serve.fleet.hedges_sent_total");
  hedges_won_ = counter("serve.fleet.hedges_won_total");
  hedges_cancelled_ = counter("serve.fleet.hedges_cancelled_total");
  failovers_ = counter("serve.fleet.failovers_total");
  fallback_rescues_ = counter("serve.fleet.fallback_rescues_total");
  dispatches_ = counter("serve.fleet.dispatches_total");
  kills_ = counter("serve.fleet.kills_total");
  restarts_ = counter("serve.fleet.restarts_total");
  scale_ups_ = counter("serve.fleet.scale_ups_total");
  scale_downs_ = counter("serve.fleet.scale_downs_total");
  replicas_total_gauge_ =
      metrics->GetGauge("serve.fleet.replicas_total", fleet_labels_);
  replicas_alive_gauge_ =
      metrics->GetGauge("serve.fleet.replicas_alive", fleet_labels_);
  primary_swaps_ = counter("serve.fleet.primary_swaps_total");
  primary_version_gauge_ =
      metrics->GetGauge("serve.fleet.primary_version", fleet_labels_);
  latency_ms_ = metrics->GetHistogram("serve.fleet.latency_ms", fleet_labels_);
  {
    WriterMutexLock flock(factory_mu_);
    primary_version_ = options_.replica.model_version;
    primary_version_gauge_->Set(static_cast<double>(primary_version_));
  }
  if (options_status_.ok()) {
    for (size_t i = 0; i < options_.initial_replicas; ++i) {
      (void)AddReplicaInternal(/*count_scale_up=*/false);
    }
  }
}

PredictionFleet::~PredictionFleet() {
  // Hedge losers and queued dispatches reference fleet members; drain
  // them before anything is torn down.
  if (pool_ != nullptr) pool_->Wait();
}

Result<uint32_t> PredictionFleet::AddReplicaInternal(bool count_scale_up) {
  PrimaryFactory factory;
  uint64_t version = 0;
  {
    ReaderMutexLock flock(factory_mu_);
    if (factory_ == nullptr) {
      return Status::FailedPrecondition("fleet has no replica factory");
    }
    factory = factory_;
    version = primary_version_;
  }
  WriterMutexLock lock(ring_mu_);
  const uint32_t id = next_replica_id_++;
  auto primary = factory(id);
  if (primary == nullptr) {
    return Status::Internal("replica factory returned null for id " +
                            std::to_string(id));
  }
  // Replica services run inline on the fleet's dispatch threads: handing
  // them the shared pool would deadlock it (pool tasks blocking on
  // further pool tasks). New replicas serve the committed fleet version.
  ServeOptions replica_options = options_.replica;
  replica_options.model_version = version;
  replicas_.emplace(
      id, std::make_unique<Replica>(id, std::move(primary), fallback_,
                                    std::move(replica_options),
                                    options_.health,
                                    /*pool=*/nullptr, clock_));
  ring_.Add(id);
  if (count_scale_up) scale_ups_->Increment();
  lock.Unlock();
  UpdateReplicaGauges();
  return id;
}

Result<uint32_t> PredictionFleet::AddReplica() {
  return AddReplicaInternal(/*count_scale_up=*/true);
}

Status PredictionFleet::RemoveReplica(uint32_t id) {
  {
    WriterMutexLock lock(ring_mu_);
    if (!ring_.Contains(id)) {
      return Status::NotFound("replica " + std::to_string(id) +
                              " is not on the ring");
    }
    if (ring_.size() <= 1) {
      return Status::FailedPrecondition(
          "cannot drain the last routable replica");
    }
    ring_.Remove(id);
    scale_downs_->Increment();
  }
  UpdateReplicaGauges();
  return Status::OK();
}

Status PredictionFleet::SwapReplicaPrimary(uint32_t id,
                                           const PrimaryFactory& factory,
                                           uint64_t version) {
  if (factory == nullptr) {
    return Status::InvalidArgument("swap requires a primary factory");
  }
  // Build the new primary outside every fleet lock: factories may load
  // model artifacts, and traffic must keep flowing while they do.
  auto primary = factory(id);
  if (primary == nullptr) {
    return Status::Internal("swap factory returned null for replica " +
                            std::to_string(id));
  }
  Replica* replica = nullptr;
  {
    ReaderMutexLock lock(ring_mu_);
    auto it = replicas_.find(id);
    if (it == replicas_.end()) {
      return Status::NotFound("no replica " + std::to_string(id));
    }
    replica = it->second.get();
  }
  replica->SwapPrimary(std::move(primary), version);
  primary_swaps_->Increment();
  UpdateReplicaGauges();
  return Status::OK();
}

void PredictionFleet::SetPrimaryFactory(PrimaryFactory factory,
                                        uint64_t version) {
  WriterMutexLock flock(factory_mu_);
  factory_ = std::move(factory);
  primary_version_ = version;
  primary_version_gauge_->Set(static_cast<double>(version));
}

uint64_t PredictionFleet::primary_version() const {
  ReaderMutexLock flock(factory_mu_);
  return primary_version_;
}

Result<uint64_t> PredictionFleet::ReplicaVersion(uint32_t id) const {
  ReaderMutexLock lock(ring_mu_);
  auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    return Status::NotFound("no replica " + std::to_string(id));
  }
  return it->second->model_version();
}

Result<ServiceStats> PredictionFleet::ReplicaCumulativeStats(
    uint32_t id) const {
  Replica* replica = nullptr;
  {
    ReaderMutexLock lock(ring_mu_);
    auto it = replicas_.find(id);
    if (it == replicas_.end()) {
      return Status::NotFound("no replica " + std::to_string(id));
    }
    replica = it->second.get();
  }
  // Replicas are never destroyed while the fleet lives; the stats walk
  // happens outside the ring lock.
  return replica->CumulativeStats();
}

Status PredictionFleet::KillReplica(uint32_t id) {
  Replica* replica = nullptr;
  {
    ReaderMutexLock lock(ring_mu_);
    auto it = replicas_.find(id);
    if (it == replicas_.end()) {
      return Status::NotFound("no replica " + std::to_string(id));
    }
    replica = it->second.get();
  }
  if (replica->alive()) {
    replica->Kill();
    kills_->Increment();
  }
  UpdateReplicaGauges();
  return Status::OK();
}

Status PredictionFleet::RestartReplica(uint32_t id) {
  Replica* replica = nullptr;
  {
    ReaderMutexLock lock(ring_mu_);
    auto it = replicas_.find(id);
    if (it == replicas_.end()) {
      return Status::NotFound("no replica " + std::to_string(id));
    }
    replica = it->second.get();
  }
  replica->Restart();
  restarts_->Increment();
  UpdateReplicaGauges();
  return Status::OK();
}

std::vector<uint32_t> PredictionFleet::ReplicaIds() const {
  ReaderMutexLock lock(ring_mu_);
  return ring_.Members();
}

std::vector<uint32_t> PredictionFleet::AliveReplicaIds() const {
  ReaderMutexLock lock(ring_mu_);
  std::vector<uint32_t> alive;
  for (const uint32_t id : ring_.Members()) {
    if (replicas_.at(id)->alive()) alive.push_back(id);
  }
  return alive;
}

size_t PredictionFleet::replica_count() const {
  ReaderMutexLock lock(ring_mu_);
  return ring_.size();
}

size_t PredictionFleet::alive_count() const {
  return AliveReplicaIds().size();
}

size_t PredictionFleet::capacity() const {
  return std::max<size_t>(alive_count() * options_.replica.max_inflight, 1);
}

Result<ReplicaHealth> PredictionFleet::replica_health(uint32_t id) {
  ReaderMutexLock lock(ring_mu_);
  auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    return Status::NotFound("no replica " + std::to_string(id));
  }
  return it->second->health();
}

void PredictionFleet::UpdateReplicaGauges() {
  ReaderMutexLock lock(ring_mu_);
  size_t alive = 0;
  for (const uint32_t id : ring_.Members()) {
    if (replicas_.at(id)->alive()) ++alive;
  }
  replicas_total_gauge_->Set(static_cast<double>(ring_.size()));
  replicas_alive_gauge_->Set(static_cast<double>(alive));
}

double PredictionFleet::HedgeDelayMs() const {
  return BitsDouble(hedge_delay_bits_.load(std::memory_order_relaxed));
}

double PredictionFleet::EffectiveHedgeDelayMs(
    ReplicaHealth primary_health) const {
  // A suspect primary gets hedged immediately: it still serves (it may
  // well answer), but the fleet does not bet the latency budget on it.
  return primary_health == ReplicaHealth::kSuspect ? 0.0 : HedgeDelayMs();
}

void PredictionFleet::RecordAnswerLatency(double latency_ms) {
  latency_ms_->Record(std::max(latency_ms, 1e-6));
  const uint64_t n =
      answers_since_refresh_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % options_.hedge.refresh_every != 0) return;
  const Histogram snapshot = latency_ms_->Snapshot();
  if (snapshot.count() < options_.hedge.min_samples) return;
  const double delay =
      std::clamp(snapshot.Percentile(options_.hedge.percentile),
                 options_.hedge.min_delay_ms, options_.hedge.max_delay_ms);
  hedge_delay_bits_.store(DoubleBits(delay), std::memory_order_relaxed);
}

void PredictionFleet::Route(uint64_t key, Replica** primary,
                            Replica** target, size_t* skipped) {
  *primary = nullptr;
  *target = nullptr;
  *skipped = 0;
  ReaderMutexLock lock(ring_mu_);
  const std::vector<uint32_t> prefs =
      ring_.PreferenceList(key, ring_.size());
  Replica* suspect_target = nullptr;
  for (const uint32_t id : prefs) {
    Replica* r = replicas_.at(id).get();
    const bool routable = r->alive() && r->health() != ReplicaHealth::kDown;
    if (!routable) {
      // Down replicas are skipped — automatic failover rerouting. Only
      // skips *before* the primary count as failovers for this request.
      if (*primary == nullptr) ++*skipped;
      continue;
    }
    if (*primary == nullptr) {
      *primary = r;
    } else if (r->health() == ReplicaHealth::kHealthy) {
      *target = r;  // first healthy successor: preferred hedge target
      break;
    } else if (suspect_target == nullptr) {
      suspect_target = r;
    }
  }
  if (*target == nullptr) *target = suspect_target;
}

Result<ServedPrediction> PredictionFleet::DispatchTo(
    Replica* replica, const dsp::ParallelQueryPlan& plan,
    double deadline_ms) {
  dispatches_->Increment();
  return replica->Predict(plan, deadline_ms);
}

Result<FleetPrediction> PredictionFleet::Rescue(
    const dsp::ParallelQueryPlan& plan, const Status& error, int64_t t0) {
  if (fallback_ != nullptr) {
    const Result<core::CostPrediction> fb = fallback_->Predict(plan);
    if (fb.ok()) {
      fallback_rescues_->Increment();
      FleetPrediction fp;
      fp.served.cost = fb.value();
      fp.served.degraded = true;
      fp.rescued = true;
      fp.latency_ms = clock_->MillisSince(t0);
      fp.served.total_ms = fp.latency_ms;
      return fp;
    }
  }
  return error;
}

Result<FleetPrediction> PredictionFleet::ExecuteInline(
    Replica* primary, Replica* target, const dsp::ParallelQueryPlan& plan,
    double deadline_ms, int64_t t0) {
  const double hedge_delay = EffectiveHedgeDelayMs(primary->health());
  Result<ServedPrediction> r0 = DispatchTo(primary, plan, deadline_ms);
  const double e0 = clock_->MillisSince(t0);

  FleetPrediction fp;
  fp.replica = primary->id();
  if (!r0.ok()) {
    if (r0.status().code() == StatusCode::kDeadlineExceeded) {
      // The budget is gone; neither a failover nor a rescue can answer
      // in time.
      return r0.status();
    }
    if (target != nullptr) {
      // Failover retry: the primary answered with an error (crash window,
      // exhausted attempts with failed fallback, replica-level shed), so
      // the next replica on the ring gets one shot.
      failovers_->Increment();
      const double remaining =
          deadline_ms > 0.0 ? std::max(deadline_ms - e0, 0.01) : 0.0;
      Result<ServedPrediction> r1 = DispatchTo(target, plan, remaining);
      if (r1.ok()) {
        fp.served = std::move(r1).value();
        fp.replica = target->id();
        fp.latency_ms = clock_->MillisSince(t0);
        return fp;
      }
    }
    return Rescue(plan, r0.status(), t0);
  }

  if (options_.hedge.enabled && target != nullptr && e0 > hedge_delay) {
    // Deterministic hedge simulation: in a concurrent deployment the
    // hedge would have been dispatched at t0 + hedge_delay; run it now
    // and pick the winner by virtual completion time. The clock advances
    // through both runs sequentially, so identical seeds replay to
    // identical outcomes — what the FakeClock determinism tests pin.
    hedges_sent_->Increment();
    fp.hedged = true;
    const double remaining =
        deadline_ms > 0.0 ? std::max(deadline_ms - hedge_delay, 0.01) : 0.0;
    const int64_t h0 = clock_->NowNanos();
    const Result<ServedPrediction> r1 = DispatchTo(target, plan, remaining);
    const double e1 = clock_->MillisSince(h0);
    const double hedge_virtual = hedge_delay + e1;
    if (r1.ok() && hedge_virtual < e0) {
      hedges_won_->Increment();
      fp.hedge_won = true;
      fp.served = r1.value();
      fp.replica = target->id();
      fp.latency_ms = hedge_virtual;
      return fp;
    }
    hedges_cancelled_->Increment();
  }
  fp.served = std::move(r0).value();
  fp.latency_ms = e0;
  return fp;
}

struct PredictionFleet::RaceState {
  Mutex mu;
  std::condition_variable cv;
  // Hedge losers outlive Predict(); they work on this fleet-owned copy,
  // never the caller's plan.
  dsp::ParallelQueryPlan plan;
  Result<ServedPrediction> results[2] ZT_GUARDED_BY(mu) = {
      Result<ServedPrediction>(Status::Internal("pending")),
      Result<ServedPrediction>(Status::Internal("pending"))};
  // Progress flags are atomic so deadline-wait predicates can poll them
  // without holding `mu`; they are only written under `mu` before the
  // notify, so cv waiters never miss a transition.
  std::atomic<bool> done[2] = {false, false};
  std::atomic<int> finished{0};
  std::atomic<int> winner{-1};  // first slot to produce an OK answer

  explicit RaceState(const dsp::ParallelQueryPlan& p) : plan(p) {}
};

Result<FleetPrediction> PredictionFleet::ExecutePooled(
    Replica* primary, Replica* target, const dsp::ParallelQueryPlan& plan,
    double deadline_ms, int64_t t0) {
  const double hedge_delay = EffectiveHedgeDelayMs(primary->health());
  auto state = std::make_shared<RaceState>(plan);
  auto run = [this, state](int slot, Replica* replica, double budget_ms) {
    Result<ServedPrediction> r = DispatchTo(replica, state->plan, budget_ms);
    MutexLock g(state->mu);
    const bool ok = r.ok();
    state->results[slot] = std::move(r);
    state->done[slot].store(true);
    state->finished.fetch_add(1);
    if (state->winner.load() < 0 && ok) {
      state->winner.store(slot);
    }
    state->cv.notify_all();
  };

  pool_->Submit([run, primary, deadline_ms] { run(0, primary, deadline_ms); });

  FleetPrediction fp;
  fp.replica = primary->id();
  MutexLock lock(state->mu);
  int dispatched = 1;
  if (options_.hedge.enabled && target != nullptr) {
    const int64_t hedge_at =
        clock_->NowNanos() + static_cast<int64_t>(hedge_delay * 1e6);
    clock_->WaitUntil(lock.unique_lock(), state->cv, hedge_at,
                      [&] { return state->done[0].load(); });
    if (!state->done[0].load()) {
      hedges_sent_->Increment();
      fp.hedged = true;
      const double remaining =
          deadline_ms > 0.0
              ? std::max(deadline_ms - clock_->MillisSince(t0), 0.01)
              : 0.0;
      pool_->Submit([run, target, remaining] { run(1, target, remaining); });
      dispatched = 2;
    }
  }
  // First OK answer wins; with none, wait for every dispatched attempt.
  // Liveness: each attempt is deadline-bounded inside the replica (or
  // answers promptly via its fallback), so the predicate always fires.
  clock_->WaitUntil(lock.unique_lock(), state->cv, kNoDeadlineNanos, [&] {
    return state->winner.load() >= 0 || state->finished.load() == dispatched;
  });

  if (state->winner.load() >= 0) {
    const int w = state->winner.load();
    if (fp.hedged) {
      // The loser keeps running in the background; its answer is
      // discarded ("cancelled" — attempts are never preempted).
      if (w == 1) {
        hedges_won_->Increment();
        fp.hedge_won = true;
        fp.replica = target->id();
      } else {
        hedges_cancelled_->Increment();
      }
    }
    fp.served = state->results[w].value();
    fp.latency_ms = clock_->MillisSince(t0);
    return fp;
  }

  // Every dispatched attempt failed.
  if (fp.hedged) hedges_cancelled_->Increment();
  const Status primary_error = state->results[0].status();
  lock.Unlock();
  if (primary_error.code() == StatusCode::kDeadlineExceeded) {
    return primary_error;
  }
  if (!fp.hedged && target != nullptr) {
    // Fast primary failure before the hedge timer: synchronous failover
    // to the next replica on the ring.
    failovers_->Increment();
    const double remaining =
        deadline_ms > 0.0
            ? std::max(deadline_ms - clock_->MillisSince(t0), 0.01)
            : 0.0;
    Result<ServedPrediction> r1 = DispatchTo(target, state->plan, remaining);
    if (r1.ok()) {
      fp.served = std::move(r1).value();
      fp.replica = target->id();
      fp.latency_ms = clock_->MillisSince(t0);
      return fp;
    }
  }
  return Rescue(state->plan, primary_error, t0);
}

Result<FleetPrediction> PredictionFleet::Predict(const FleetRequest& request) {
  // Malformed calls (no plan, bad options) are rejected before they are
  // counted: every *received* request must land in exactly one shed or
  // disposition bucket for the reconciliation invariants to hold.
  ZT_RETURN_IF_ERROR(options_status_);
  if (request.plan == nullptr) {
    return Status::InvalidArgument("fleet request carries no plan");
  }
  received_->Increment();
  const std::string tenant =
      request.tenant.empty() ? "anonymous" : request.tenant;

  // Tenant-fair admission in front of everything else; per-replica
  // queues provide the second, replica-local shedding layer.
  const QuotaDecision decision = quotas_.Admit(tenant, capacity());
  if (decision != QuotaDecision::kAdmit) {
    quotas_.CountOutcome(tenant, /*answered=*/false);
    switch (decision) {
      case QuotaDecision::kFleetFull:
        shed_fleet_capacity_->Increment();
        return Status::ResourceExhausted("fleet at capacity (" +
                                         std::to_string(capacity()) +
                                         " in flight); request shed");
      case QuotaDecision::kTenantQuota:
        shed_tenant_quota_->Increment();
        return Status::ResourceExhausted(
            "tenant quota exceeded for '" + tenant + "'; request shed");
      default:
        shed_fair_share_->Increment();
        return Status::ResourceExhausted(
            "fleet loaded beyond fair-share watermark and tenant '" +
            tenant + "' is at its fair share; request shed");
    }
  }
  admitted_->Increment();
  struct QuotaGuard {
    TenantQuotas* quotas;
    const std::string& tenant;
    ~QuotaGuard() { quotas->Release(tenant); }
  } guard{&quotas_, tenant};

  const int64_t t0 = clock_->NowNanos();
  const uint64_t key = RequestKey(tenant, PlanKeyHash(*request.plan));
  Replica* primary = nullptr;
  Replica* target = nullptr;
  size_t skipped = 0;
  Route(key, &primary, &target, &skipped);
  if (skipped > 0) failovers_->Increment(skipped);

  Result<FleetPrediction> result{Status::Internal("pending")};
  if (primary == nullptr) {
    // Total outage: every ring member is down. The fleet-level fallback
    // is the difference between "no replica" and "no answer".
    result = Rescue(*request.plan,
                    Status::Unavailable("no routable replica (all down)"),
                    t0);
  } else if (pool_ == nullptr) {
    result = ExecuteInline(primary, target, *request.plan,
                           request.deadline_ms, t0);
  } else {
    result = ExecutePooled(primary, target, *request.plan,
                           request.deadline_ms, t0);
  }

  if (result.ok()) {
    FleetPrediction& fp = result.value();
    fp.failovers = skipped;
    answered_->Increment();
    if (fp.served.degraded) degraded_->Increment();
    RecordAnswerLatency(fp.latency_ms);
    quotas_.CountOutcome(tenant, /*answered=*/true);
  } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
    deadline_expired_->Increment();
    quotas_.CountOutcome(tenant, /*answered=*/false);
  } else {
    failed_->Increment();
    quotas_.CountOutcome(tenant, /*answered=*/false);
  }
  return result;
}

FleetStats PredictionFleet::Snapshot() const {
  FleetStats snap;
  // Reverse-causal read order, same discipline as ServiceStats: read
  // dispositions before admitted before received so every concurrent
  // snapshot satisfies the documented inequalities, with equality at
  // quiescence.
  snap.latency_ms = latency_ms_->Snapshot();
  snap.degraded = degraded_->Value();
  snap.answered = answered_->Value();
  snap.deadline_expired = deadline_expired_->Value();
  snap.failed = failed_->Value();
  snap.hedges_won = hedges_won_->Value();
  snap.hedges_cancelled = hedges_cancelled_->Value();
  snap.hedges_sent = hedges_sent_->Value();
  snap.failovers = failovers_->Value();
  snap.fallback_rescues = fallback_rescues_->Value();
  snap.dispatches = dispatches_->Value();
  snap.admitted = admitted_->Value();
  snap.shed_fleet_capacity = shed_fleet_capacity_->Value();
  snap.shed_tenant_quota = shed_tenant_quota_->Value();
  snap.shed_fair_share = shed_fair_share_->Value();
  snap.received = received_->Value();
  snap.kills = kills_->Value();
  snap.restarts = restarts_->Value();
  snap.scale_ups = scale_ups_->Value();
  snap.scale_downs = scale_downs_->Value();
  snap.primary_swaps = primary_swaps_->Value();
  snap.primary_version = primary_version();
  snap.tenants_seen = quotas_.tenants_seen();
  snap.active_tenants = quotas_.active_tenants();

  ReaderMutexLock lock(ring_mu_);
  snap.replicas_total = ring_.size();
  bool first_hist = true;
  for (const auto& [id, replica] : replicas_) {
    ReplicaStatsEntry entry;
    entry.id = id;
    entry.alive = replica->alive();
    entry.routable = ring_.Contains(id);
    entry.health = replica->health();
    entry.incarnations = replica->incarnations();
    entry.crashed_rejections = replica->crashed_rejections();
    entry.model_version = replica->model_version();
    entry.service = replica->CumulativeStats();
    if (entry.alive && entry.routable) ++snap.replicas_alive;
    if (first_hist) {
      snap.replica_latency_ms = entry.service.latency_ms;
      first_hist = false;
    } else {
      ZT_CHECK_OK(snap.replica_latency_ms.Merge(entry.service.latency_ms));
    }
    snap.replicas.push_back(std::move(entry));
  }
  return snap;
}

}  // namespace zerotune::serve::fleet
