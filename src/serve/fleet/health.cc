#include "serve/fleet/health.h"

#include <cmath>

namespace zerotune::serve::fleet {

const char* ToString(ReplicaHealth h) {
  switch (h) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kSuspect:
      return "suspect";
    case ReplicaHealth::kDown:
      return "down";
  }
  return "unknown";
}

Status HealthOptions::Validate() const {
  if (window == 0) {
    return Status::InvalidArgument("health window must be >= 1");
  }
  if (min_samples == 0 || min_samples > window) {
    return Status::InvalidArgument(
        "health min_samples must be in [1, window]");
  }
  if (!std::isfinite(suspect_error_rate) || suspect_error_rate <= 0.0 ||
      suspect_error_rate > 1.0) {
    return Status::InvalidArgument(
        "health suspect_error_rate must be in (0, 1]");
  }
  if (!std::isfinite(down_error_rate) ||
      down_error_rate < suspect_error_rate || down_error_rate > 1.0) {
    return Status::InvalidArgument(
        "health down_error_rate must be in [suspect_error_rate, 1]");
  }
  if (!std::isfinite(slow_ms) || slow_ms < 0.0) {
    return Status::InvalidArgument(
        "health slow_ms must be non-negative and finite");
  }
  if (!std::isfinite(down_probe_backoff_ms) || down_probe_backoff_ms < 0.0) {
    return Status::InvalidArgument(
        "health down_probe_backoff_ms must be non-negative and finite");
  }
  return Status::OK();
}

HealthTracker::HealthTracker(HealthOptions options, Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : SystemClock::Default()) {}

void HealthTracker::RecordSuccess(double latency_ms) {
  MutexLock g(mu_);
  const bool slow =
      options_.slow_ms > 0.0 && latency_ms > options_.slow_ms;
  PushOutcomeLocked(/*failure=*/slow);
  EvaluateLocked();
}

void HealthTracker::RecordFailure() {
  MutexLock g(mu_);
  PushOutcomeLocked(/*failure=*/true);
  EvaluateLocked();
}

void HealthTracker::MarkCrashed() {
  MutexLock g(mu_);
  crashed_ = true;
  if (health_ != ReplicaHealth::kDown) {
    health_ = ReplicaHealth::kDown;
    down_since_nanos_ = clock_->NowNanos();
    ++downs_;
  }
}

void HealthTracker::Reset() {
  MutexLock g(mu_);
  crashed_ = false;
  window_.clear();
  window_failures_ = 0;
  health_ = ReplicaHealth::kHealthy;
}

ReplicaHealth HealthTracker::health() {
  MutexLock g(mu_);
  if (health_ == ReplicaHealth::kDown && !crashed_) {
    // Error-rate downs recover on their own: after the probe backoff the
    // replica goes on probation (suspect) with a cleared window, so the
    // next min_samples outcomes decide whether it re-downs or heals.
    const double down_ms = clock_->MillisSince(down_since_nanos_);
    if (down_ms >= options_.down_probe_backoff_ms) {
      health_ = ReplicaHealth::kSuspect;
      window_.clear();
      window_failures_ = 0;
    }
  }
  return health_;
}

uint64_t HealthTracker::downs() const {
  MutexLock g(mu_);
  return downs_;
}

void HealthTracker::PushOutcomeLocked(bool failure) {
  window_.push_back(failure);
  if (failure) ++window_failures_;
  while (window_.size() > options_.window) {
    if (window_.front()) --window_failures_;
    window_.pop_front();
  }
}

void HealthTracker::EvaluateLocked() {
  // Down states only exit through the probe backoff (health()) or a
  // restart (Reset()) — outcomes recorded meanwhile cannot flip them.
  if (crashed_ || health_ == ReplicaHealth::kDown) return;
  // Probation keeps its suspect badge until the grace window fills.
  if (window_.size() < options_.min_samples) return;
  const double rate = static_cast<double>(window_failures_) /
                      static_cast<double>(window_.size());
  if (rate >= options_.down_error_rate) {
    if (health_ != ReplicaHealth::kDown) {
      health_ = ReplicaHealth::kDown;
      down_since_nanos_ = clock_->NowNanos();
      ++downs_;
    }
  } else if (rate >= options_.suspect_error_rate) {
    if (health_ != ReplicaHealth::kDown) health_ = ReplicaHealth::kSuspect;
  } else {
    health_ = ReplicaHealth::kHealthy;
  }
}

}  // namespace zerotune::serve::fleet
