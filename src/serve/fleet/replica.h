#ifndef ZEROTUNE_SERVE_FLEET_REPLICA_H_
#define ZEROTUNE_SERVE_FLEET_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/cost_predictor.h"
#include "serve/fleet/health.h"
#include "serve/prediction_service.h"

namespace zerotune::serve::fleet {

/// One serving replica of the fleet: a PredictionService incarnation plus
/// crash/restart lifecycle and a health tracker.
///
/// The replica owns its primary predictor (typically a per-replica
/// ChaosPredictor around a shared model) for its whole lifetime; what a
/// "crash" destroys is the *service incarnation* — queue, breaker state,
/// stats series. Kill() fails subsequent requests fast with Unavailable
/// and marks the tracker down; Restart() retires the old incarnation and
/// brings up a fresh service. Requests already executing inside a killed
/// incarnation drain normally (the crash takes effect at request
/// boundaries), so fleet-level accounting never loses a request.
///
/// Retired incarnations are kept alive until the replica is destroyed:
/// their counters may still be incremented by draining requests, and
/// CumulativeStats() folds every incarnation together (histograms via
/// Histogram::Merge — same layout by construction). Thread-safe.
class Replica {
 public:
  /// `primary` is owned; `fallback` is borrowed (may be null). The
  /// service's serve.* series carry {"replica", <id>} on top of the
  /// per-incarnation instance label. `pool` here is the pool handed to
  /// each PredictionService; the fleet passes null so replica services
  /// execute inline on the fleet's own dispatch threads (two layers of
  /// pooling would deadlock a shared pool).
  Replica(uint32_t id, std::unique_ptr<const core::CostPredictor> primary,
          const core::CostPredictor* fallback, ServeOptions options,
          HealthOptions health_options, ThreadPool* pool, Clock* clock);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Serves one request through the current incarnation, recording the
  /// outcome in the health tracker. A killed replica answers Unavailable
  /// immediately. Health accounting: a clean primary answer is a success;
  /// an error or a *degraded* answer (primary failed, fallback served)
  /// counts as a failure — the replica answered but is not healthy.
  /// Replica-level shedding (ResourceExhausted) is a capacity signal, not
  /// a health signal, and is not recorded.
  Result<ServedPrediction> Predict(const dsp::ParallelQueryPlan& plan,
                                   double deadline_ms);

  /// Simulated crash: subsequent requests fail fast, health goes down.
  /// Idempotent.
  void Kill();
  /// Brings a killed (or live) replica up as a fresh incarnation.
  void Restart();

  /// Versioned hot-swap: replaces the primary predictor with `primary`
  /// (serving as model version `version`) and brings up a fresh service
  /// incarnation, leaving the replica alive. The old primary and the old
  /// incarnation are *retired*, not destroyed: requests that entered the
  /// old incarnation before the swap keep executing against the old
  /// primary and drain normally — a swap is never observable as a failed
  /// or torn request. Health state resets like a restart (the new version
  /// earns its own track record).
  void SwapPrimary(std::unique_ptr<const core::CostPredictor> primary,
                   uint64_t version);

  /// Registry version the *live* incarnation serves (0 = unversioned).
  uint64_t model_version() const;

  bool alive() const;
  ReplicaHealth health() { return tracker_.health(); }
  HealthTracker& tracker() { return tracker_; }
  uint32_t id() const { return id_; }
  /// Service incarnations brought up so far (1 after construction).
  uint64_t incarnations() const;
  /// Requests refused fast because the replica was crashed; these never
  /// reach a service incarnation, so together with the cumulative
  /// service `received` they account for every dispatch to this replica.
  uint64_t crashed_rejections() const {
    return crashed_rejections_.load(std::memory_order_relaxed);
  }
  /// Admission-slot residency of the live incarnation (0 when killed).
  size_t inflight() const;

  /// Sum of ServiceStats over all incarnations, latency histograms
  /// merged. Monotonic between calls.
  ServiceStats CumulativeStats() const;

 private:
  std::shared_ptr<PredictionService> MakeService() ZT_REQUIRES(mu_);

  const uint32_t id_;
  const core::CostPredictor* fallback_;
  ServeOptions options_;
  ThreadPool* pool_;
  Clock* clock_;
  HealthTracker tracker_;

  std::atomic<uint64_t> crashed_rejections_{0};

  mutable Mutex mu_;
  bool alive_ ZT_GUARDED_BY(mu_) = true;
  uint64_t incarnations_ ZT_GUARDED_BY(mu_) = 0;
  /// Version served by the live incarnation (stamped into its
  /// ServeOptions at MakeService time).
  uint64_t version_ ZT_GUARDED_BY(mu_) = 0;
  std::unique_ptr<const core::CostPredictor> primary_ ZT_GUARDED_BY(mu_);
  std::shared_ptr<PredictionService> service_ ZT_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<PredictionService>> retired_
      ZT_GUARDED_BY(mu_);
  /// Primaries replaced by SwapPrimary, kept alive because retired
  /// service incarnations hold raw pointers into them while draining.
  std::vector<std::unique_ptr<const core::CostPredictor>> retired_primaries_
      ZT_GUARDED_BY(mu_);
};

}  // namespace zerotune::serve::fleet

#endif  // ZEROTUNE_SERVE_FLEET_REPLICA_H_
