#ifndef ZEROTUNE_SERVE_FLEET_FLEET_H_
#define ZEROTUNE_SERVE_FLEET_FLEET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/cost_predictor.h"
#include "obs/metrics.h"
#include "serve/fleet/hash_ring.h"
#include "serve/fleet/health.h"
#include "serve/fleet/replica.h"
#include "serve/fleet/tenant_quota.h"
#include "serve/prediction_service.h"

namespace zerotune::serve::fleet {

/// Hedged-request policy: when the primary replica has not answered
/// within the fleet's observed latency percentile, the request is
/// duplicated to the next replica on the ring and the first answer wins
/// (the loser's answer is discarded — "cancelled" cooperatively, since an
/// in-flight model inference is never preempted).
struct HedgeOptions {
  bool enabled = true;
  /// Fleet latency percentile used as the hedge delay.
  double percentile = 95.0;
  /// Delay used until min_samples latencies have been observed.
  double initial_delay_ms = 20.0;
  /// Clamp on the computed delay.
  double min_delay_ms = 0.5;
  double max_delay_ms = 250.0;
  /// Observed answers required before the percentile is trusted.
  size_t min_samples = 64;
  /// The percentile is recomputed every this many answers (a histogram
  /// snapshot per request would dominate the hot path).
  size_t refresh_every = 256;

  Status Validate() const;
};

struct FleetOptions {
  /// Replicas brought up at construction.
  size_t initial_replicas = 2;
  /// Virtual nodes per replica on the consistent-hash ring; load
  /// imbalance shrinks like 1/sqrt(virtual_nodes).
  size_t virtual_nodes = 128;
  /// Configuration of every replica's PredictionService. max_inflight
  /// here is the *per-replica* admission bound; fleet capacity is
  /// alive_replicas * replica.max_inflight.
  ServeOptions replica;
  HealthOptions health;
  HedgeOptions hedge;
  QuotaOptions quota;

  Status Validate() const;
};

/// One request into the fleet. The plan must stay valid until Predict
/// returns (hedged duplicates work on a fleet-owned copy, so background
/// losers never touch the caller's plan).
struct FleetRequest {
  std::string tenant;
  const dsp::ParallelQueryPlan* plan = nullptr;
  /// <= 0 means no deadline.
  double deadline_ms = 0.0;
};

/// A fleet answer plus routing metadata.
struct FleetPrediction {
  ServedPrediction served;
  /// Replica whose answer was used (meaningless when rescued).
  uint32_t replica = 0;
  /// Down/dead replicas skipped at routing time for this request.
  size_t failovers = 0;
  /// A hedge was dispatched for this request.
  bool hedged = false;
  /// The hedge's answer won the race.
  bool hedge_won = false;
  /// No replica could answer; the fleet-level fallback served (degraded).
  bool rescued = false;
  /// Admission-to-answer time on the fleet clock. Under inline hedging
  /// this is the *virtual* race latency (see PredictionFleet docs).
  double latency_ms = 0.0;
};

struct ReplicaStatsEntry {
  uint32_t id = 0;
  bool alive = false;
  bool routable = false;  // still a ring member (not drained)
  ReplicaHealth health = ReplicaHealth::kHealthy;
  uint64_t incarnations = 0;
  /// Requests refused fast because the replica was crashed (these never
  /// reach a service incarnation, so they are not in `service.received`).
  uint64_t crashed_rejections = 0;
  /// Model version the replica's live incarnation serves (0 =
  /// unversioned); mid-rollout, swapped and unswapped replicas differ.
  uint64_t model_version = 0;
  ServiceStats service;  // cumulative over incarnations
};

/// Monotonic fleet-wide counters. Every received request ends in exactly
/// one of {answered, deadline_expired, failed} after admission, or one
/// shed bucket, so at quiescence:
///   received == admitted + shed_fleet_capacity + shed_tenant_quota
///               + shed_fair_share
///   admitted == answered + deadline_expired + failed
///   hedges_sent == hedges_won + hedges_cancelled
///   dispatches == sum over replicas of
///                 (service.received + crashed_rejections)
struct FleetStats {
  uint64_t received = 0;
  uint64_t admitted = 0;
  uint64_t shed_fleet_capacity = 0;
  uint64_t shed_tenant_quota = 0;
  uint64_t shed_fair_share = 0;
  uint64_t answered = 0;
  uint64_t degraded = 0;
  uint64_t deadline_expired = 0;
  uint64_t failed = 0;
  uint64_t hedges_sent = 0;
  uint64_t hedges_won = 0;
  uint64_t hedges_cancelled = 0;
  uint64_t failovers = 0;
  uint64_t fallback_rescues = 0;
  uint64_t dispatches = 0;
  uint64_t kills = 0;
  uint64_t restarts = 0;
  uint64_t scale_ups = 0;
  uint64_t scale_downs = 0;
  /// Per-replica primary hot-swaps performed (rollout steps, including
  /// swap-backs during a rollback).
  uint64_t primary_swaps = 0;
  /// Committed fleet-wide model version (what new/restarted replicas
  /// serve); individual replicas may differ mid-rollout.
  uint64_t primary_version = 0;
  size_t replicas_total = 0;  // ring members
  size_t replicas_alive = 0;
  size_t tenants_seen = 0;
  size_t active_tenants = 0;
  /// Fleet-level end-to-end latency of answered requests.
  Histogram latency_ms;
  /// Per-replica service latencies merged across replicas and
  /// incarnations (Histogram::Merge; same layout by construction).
  Histogram replica_latency_ms;
  std::vector<ReplicaStatsEntry> replicas;

  /// answered / admitted in [0, 1] (1 when nothing was admitted).
  double Availability() const;
  std::string ToText() const;
  std::string ToJson() const;
};

/// A sharded serving fleet: N PredictionService replicas behind a
/// consistent-hash router keyed by (tenant, plan-hash), with
///
///  - per-replica health tracking (healthy / suspect / down) and
///    automatic failover rerouting around down replicas,
///  - hedged requests after a latency-percentile budget (first answer
///    wins; requests landing on a *suspect* replica hedge immediately),
///  - per-tenant quotas and fair admission in front of the per-replica
///    load shedding,
///  - crash/restart replica lifecycle for chaos drills (KillReplica /
///    RestartReplica) and scaling hooks (AddReplica / RemoveReplica) the
///    Dhalion-style FleetController drives,
///  - a last-resort fleet-level fallback: when no routable replica can
///    answer, the shared fallback predictor serves a degraded answer
///    directly, so single-replica failures never zero availability.
///
/// Threading: with a ThreadPool, Predict() dispatches attempts to the
/// pool and races them (real hedging); replica services execute inline on
/// those pool threads. Without a pool, everything runs inline in the
/// caller thread and hedging is *simulated deterministically*: the
/// primary runs to completion, and if its (virtual) latency exceeded the
/// hedge budget the hedge target runs too, the winner being whichever
/// would have answered first on the clock's timeline — the mode the
/// FakeClock tests and the deterministic serve-sim soak use.
class PredictionFleet {
 public:
  /// Builds the primary predictor each replica serves (typically a
  /// per-replica chaos wrapper around a shared model). Called once per
  /// replica id, including replicas added by scale-up.
  using PrimaryFactory =
      std::function<std::unique_ptr<const core::CostPredictor>(uint32_t)>;

  /// `fallback` may be null (no degraded answers, no rescue). Null pool =
  /// deterministic inline mode; null clock = system clock.
  PredictionFleet(PrimaryFactory factory,
                  const core::CostPredictor* fallback, FleetOptions options,
                  ThreadPool* pool, Clock* clock);
  ~PredictionFleet();

  PredictionFleet(const PredictionFleet&) = delete;
  PredictionFleet& operator=(const PredictionFleet&) = delete;

  Result<FleetPrediction> Predict(const FleetRequest& request);

  /// Point-in-time fleet stats; counters are monotonic between snapshots.
  FleetStats Snapshot() const;

  // --- chaos / controller surface ----------------------------------
  /// Simulated crash of a replica (stays on the ring; routing skips it).
  Status KillReplica(uint32_t id);
  /// Fresh incarnation of a killed (or live) replica.
  Status RestartReplica(uint32_t id);
  /// Scales up: new replica id on the ring. Fails if the factory is null.
  Result<uint32_t> AddReplica();
  /// Scales down: drains `id` off the ring (it finishes in-flight work
  /// and keeps its stats; it is never routed to again).
  Status RemoveReplica(uint32_t id);

  // --- versioned hot-swap surface ----------------------------------
  /// Swaps one replica's primary to `factory(id)` serving `version`,
  /// without taking the replica off the ring: in-flight requests drain
  /// against the old primary, new requests see the new one. The rollout
  /// state machine (serve/adaptation/rollout.h) steps a promoted version
  /// through the fleet with this, one replica at a time.
  Status SwapReplicaPrimary(uint32_t id, const PrimaryFactory& factory,
                            uint64_t version);
  /// Commits `factory`/`version` as the fleet-wide primary: replicas
  /// added by scale-up from now on serve it. Existing replicas are not
  /// touched (use SwapReplicaPrimary per replica first).
  void SetPrimaryFactory(PrimaryFactory factory, uint64_t version);
  /// Committed fleet-wide model version (see SetPrimaryFactory).
  uint64_t primary_version() const;
  /// Version the live incarnation of `id` currently serves.
  Result<uint64_t> ReplicaVersion(uint32_t id) const;
  /// Cumulative ServiceStats of one replica across its incarnations (the
  /// rollout state machine judges a freshly swapped replica on the delta
  /// of this since the swap).
  Result<ServiceStats> ReplicaCumulativeStats(uint32_t id) const;

  /// Ring members (routable replicas), ascending.
  std::vector<uint32_t> ReplicaIds() const;
  /// Ring members currently alive.
  std::vector<uint32_t> AliveReplicaIds() const;
  size_t replica_count() const;
  size_t alive_count() const;
  /// Fleet admission capacity: alive ring members * per-replica
  /// max_inflight (at least 1).
  size_t capacity() const;
  size_t total_inflight() const { return quotas_.total_inflight(); }
  Result<ReplicaHealth> replica_health(uint32_t id);

  /// Current hedge delay (ms) — percentile-derived once enough samples
  /// exist. Exposed for tests.
  double HedgeDelayMs() const;

  /// Labels of the fleet's serve.fleet.* series ({"fleet", <n>}).
  const obs::Labels& metric_labels() const { return fleet_labels_; }

 private:
  struct RaceState;

  /// Adds a replica; counted as a scale-up when `count_scale_up`.
  Result<uint32_t> AddReplicaInternal(bool count_scale_up);
  /// Routing decision: primary + hedge/failover target for `key`.
  void Route(uint64_t key, Replica** primary, Replica** target,
             size_t* skipped);
  Result<FleetPrediction> ExecuteInline(Replica* primary, Replica* target,
                                        const dsp::ParallelQueryPlan& plan,
                                        double deadline_ms, int64_t t0);
  Result<FleetPrediction> ExecutePooled(Replica* primary, Replica* target,
                                        const dsp::ParallelQueryPlan& plan,
                                        double deadline_ms, int64_t t0);
  /// Last-resort degraded answer from the shared fallback; falls through
  /// to `error` when no fallback is configured or it fails too.
  Result<FleetPrediction> Rescue(const dsp::ParallelQueryPlan& plan,
                                 const Status& error, int64_t t0);
  Result<ServedPrediction> DispatchTo(Replica* replica,
                                      const dsp::ParallelQueryPlan& plan,
                                      double deadline_ms);
  void RecordAnswerLatency(double latency_ms);
  void UpdateReplicaGauges();
  double EffectiveHedgeDelayMs(ReplicaHealth primary_health) const;

  mutable SharedMutex factory_mu_;
  PrimaryFactory factory_ ZT_GUARDED_BY(factory_mu_);
  uint64_t primary_version_ ZT_GUARDED_BY(factory_mu_) = 0;
  const core::CostPredictor* fallback_;
  FleetOptions options_;
  Status options_status_;
  ThreadPool* pool_;
  Clock* clock_;
  TenantQuotas quotas_;

  mutable SharedMutex ring_mu_;
  ConsistentHashRing ring_ ZT_GUARDED_BY(ring_mu_);
  // Includes drained replicas; entries are never erased, so raw Replica
  // pointers handed out under the lock stay valid for the fleet lifetime.
  std::map<uint32_t, std::unique_ptr<Replica>> replicas_
      ZT_GUARDED_BY(ring_mu_);
  uint32_t next_replica_id_ ZT_GUARDED_BY(ring_mu_) = 0;

  // Hedge delay cache, refreshed every hedge.refresh_every answers.
  std::atomic<uint64_t> hedge_delay_bits_;
  std::atomic<uint64_t> answers_since_refresh_{0};

  obs::Labels fleet_labels_;
  obs::Counter* received_;
  obs::Counter* admitted_;
  obs::Counter* shed_fleet_capacity_;
  obs::Counter* shed_tenant_quota_;
  obs::Counter* shed_fair_share_;
  obs::Counter* answered_;
  obs::Counter* degraded_;
  obs::Counter* deadline_expired_;
  obs::Counter* failed_;
  obs::Counter* hedges_sent_;
  obs::Counter* hedges_won_;
  obs::Counter* hedges_cancelled_;
  obs::Counter* failovers_;
  obs::Counter* fallback_rescues_;
  obs::Counter* dispatches_;
  obs::Counter* kills_;
  obs::Counter* restarts_;
  obs::Counter* scale_ups_;
  obs::Counter* scale_downs_;
  obs::Counter* primary_swaps_;
  obs::Gauge* primary_version_gauge_;
  obs::Gauge* replicas_total_gauge_;
  obs::Gauge* replicas_alive_gauge_;
  obs::HistogramMetric* latency_ms_;
};

}  // namespace zerotune::serve::fleet

#endif  // ZEROTUNE_SERVE_FLEET_FLEET_H_
