#include "serve/fleet/hash_ring.h"

namespace zerotune::serve::fleet {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

// FNV-1a over a byte, then over arbitrary integers via their bytes.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvByte(uint64_t h, uint8_t byte) {
  return (h ^ byte) * kFnvPrime;
}

uint64_t FnvU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) h = FnvByte(h, static_cast<uint8_t>(v >> (8 * i)));
  return h;
}

uint64_t FnvString(uint64_t h, const std::string& s) {
  for (const char c : s) h = FnvByte(h, static_cast<uint8_t>(c));
  return h;
}

}  // namespace

uint64_t PlanKeyHash(const dsp::ParallelQueryPlan& plan) {
  uint64_t h = kFnvOffset;
  for (const dsp::Operator& op : plan.logical().operators()) {
    h = FnvU64(h, static_cast<uint64_t>(op.id));
    h = FnvU64(h, static_cast<uint64_t>(op.type));
    h = FnvU64(h, static_cast<uint64_t>(plan.parallelism(op.id)));
    h = FnvU64(h,
               static_cast<uint64_t>(plan.placement(op.id).partitioning));
  }
  return Mix64(h);
}

uint64_t RequestKey(const std::string& tenant, uint64_t plan_hash) {
  return Mix64(FnvString(FnvU64(kFnvOffset, plan_hash), tenant));
}

ConsistentHashRing::ConsistentHashRing(size_t virtual_nodes)
    : virtual_nodes_(virtual_nodes == 0 ? 1 : virtual_nodes) {}

void ConsistentHashRing::Add(uint32_t replica_id) {
  if (!members_.insert(replica_id).second) return;
  for (size_t v = 0; v < virtual_nodes_; ++v) {
    const uint64_t point =
        Mix64((static_cast<uint64_t>(replica_id) << 32) | v);
    // On the (vanishingly rare) point collision the earlier member keeps
    // the point; ownership stays deterministic either way.
    ring_.emplace(point, replica_id);
  }
}

void ConsistentHashRing::Remove(uint32_t replica_id) {
  if (members_.erase(replica_id) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == replica_id ? ring_.erase(it) : std::next(it);
  }
}

bool ConsistentHashRing::Contains(uint32_t replica_id) const {
  return members_.count(replica_id) > 0;
}

std::vector<uint32_t> ConsistentHashRing::Members() const {
  return std::vector<uint32_t>(members_.begin(), members_.end());
}

std::optional<uint32_t> ConsistentHashRing::Owner(uint64_t key) const {
  if (ring_.empty()) return std::nullopt;
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::vector<uint32_t> ConsistentHashRing::PreferenceList(uint64_t key,
                                                         size_t k) const {
  std::vector<uint32_t> prefs;
  if (ring_.empty() || k == 0) return prefs;
  prefs.reserve(std::min(k, members_.size()));
  auto it = ring_.lower_bound(key);
  for (size_t steps = 0; steps < ring_.size() && prefs.size() < k; ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    const uint32_t id = it->second;
    bool seen = false;
    for (const uint32_t p : prefs) seen = seen || p == id;
    if (!seen) prefs.push_back(id);
    ++it;
  }
  return prefs;
}

}  // namespace zerotune::serve::fleet
