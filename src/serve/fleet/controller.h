#ifndef ZEROTUNE_SERVE_FLEET_CONTROLLER_H_
#define ZEROTUNE_SERVE_FLEET_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "serve/fleet/fleet.h"

namespace zerotune::serve::fleet {

struct ControllerOptions {
  /// Replica-count bounds the controller scales within.
  size_t min_replicas = 1;
  size_t max_replicas = 8;
  /// Crashed replicas are restarted after this long down (the delay
  /// models real restart latency and gives chaos tests a window in which
  /// the fleet must survive on the remaining replicas).
  double restart_delay_ms = 250.0;
  /// Scale up when fleet shed-rate over the last tick interval exceeds
  /// this fraction of received requests.
  double overload_shed_rate = 0.05;
  /// Scale down when fleet slot utilization (inflight / capacity) sits
  /// below this threshold — the same underutilization symptom Dhalion's
  /// tuner acts on, applied to replica count instead of operator
  /// parallelism.
  double underutilization_threshold = 0.25;
  /// Multiplicative scale-up step (>= 1), mirroring
  /// baselines::DhalionOptions::scale_up_step.
  double scale_up_step = 1.5;
  /// Ticks to hold fire after any scaling action, so one burst does not
  /// trigger a scale-up/scale-down oscillation.
  size_t cooldown_ticks = 3;

  Status Validate() const;
};

/// What one controller tick observed and did — returned for logging and
/// asserted on by tests.
struct ControllerAction {
  size_t restarts = 0;    // crashed replicas brought back this tick
  size_t scale_ups = 0;   // replicas added
  size_t scale_downs = 0; // replicas drained
  double shed_rate = 0.0;     // sheds / received over the tick interval
  double utilization = 0.0;   // inflight / capacity at tick time
};

/// Dhalion-style self-regulating controller for a PredictionFleet
/// (Floratou et al., "Dhalion: Self-Regulating Stream Processing in
/// Heron", VLDB 2017 — the same symptom -> diagnosis -> resolution loop
/// the baselines::DhalionTuner applies to operator parallelism, here
/// applied to the serving fleet):
///
///   symptom: crashed replica          -> resolution: restart (delayed)
///   symptom: shed rate over threshold -> resolution: add a replica
///   symptom: slot underutilization    -> resolution: drain a replica
///
/// Scale-up sizing and the scale-down guard reuse
/// baselines::SelfRegulation so the two controllers stay behaviorally
/// aligned. The controller is deliberately tick-driven and passive (no
/// internal thread): the owner calls Tick() on its own cadence — the soak
/// harness every simulated interval, a production loop from a timer.
/// Single caller assumed; the fleet itself stays fully thread-safe.
class FleetController {
 public:
  /// Both pointers are borrowed. Null clock = system clock.
  FleetController(PredictionFleet* fleet, ControllerOptions options,
                  Clock* clock);

  /// One control-loop pass. Never throws; scaling errors (e.g. racing a
  /// concurrent drain) are swallowed — the next tick re-diagnoses.
  ControllerAction Tick();

  const Status& options_status() const { return options_status_; }

 private:
  PredictionFleet* fleet_;
  ControllerOptions options_;
  Status options_status_;
  Clock* clock_;

  /// received/shed totals at the previous tick, for rate-over-interval.
  uint64_t last_received_ = 0;
  uint64_t last_shed_ = 0;
  size_t cooldown_remaining_ = 0;
  /// Crash observation time per replica id, for restart_delay_ms.
  std::map<uint32_t, int64_t> down_since_;
};

}  // namespace zerotune::serve::fleet

#endif  // ZEROTUNE_SERVE_FLEET_CONTROLLER_H_
