#include "serve/fleet/replica.h"

#include <string>
#include <utility>

namespace zerotune::serve::fleet {

Replica::Replica(uint32_t id,
                 std::unique_ptr<const core::CostPredictor> primary,
                 const core::CostPredictor* fallback, ServeOptions options,
                 HealthOptions health_options, ThreadPool* pool,
                 Clock* clock)
    : id_(id),
      fallback_(fallback),
      options_(std::move(options)),
      pool_(pool),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      tracker_(health_options, clock) {
  options_.metric_labels.emplace_back("replica", std::to_string(id_));
  MutexLock g(mu_);
  version_ = options_.model_version;
  primary_ = std::move(primary);
  service_ = MakeService();
}

std::shared_ptr<PredictionService> Replica::MakeService() {
  ++incarnations_;
  ServeOptions opts = options_;
  opts.model_version = version_;
  return std::make_shared<PredictionService>(primary_.get(), fallback_, opts,
                                             pool_, clock_);
}

Result<ServedPrediction> Replica::Predict(const dsp::ParallelQueryPlan& plan,
                                          double deadline_ms) {
  std::shared_ptr<PredictionService> service;
  {
    MutexLock g(mu_);
    if (!alive_) {
      crashed_rejections_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("replica " + std::to_string(id_) +
                                 " is down (crashed)");
    }
    service = service_;
  }
  Result<ServedPrediction> result = service->Predict(plan, deadline_ms);
  if (result.ok()) {
    if (result.value().degraded) {
      tracker_.RecordFailure();
    } else {
      tracker_.RecordSuccess(result.value().total_ms);
    }
  } else if (result.status().code() != StatusCode::kResourceExhausted) {
    tracker_.RecordFailure();
  }
  return result;
}

void Replica::Kill() {
  {
    MutexLock g(mu_);
    if (!alive_) return;
    alive_ = false;
  }
  tracker_.MarkCrashed();
}

void Replica::Restart() {
  {
    MutexLock g(mu_);
    // The old incarnation may still be draining requests that were
    // executing when Kill() landed; retire it instead of destroying it so
    // those requests finish and their counters stay reachable.
    retired_.push_back(std::move(service_));
    service_ = MakeService();
    alive_ = true;
  }
  tracker_.Reset();
}

void Replica::SwapPrimary(
    std::unique_ptr<const core::CostPredictor> primary, uint64_t version) {
  {
    MutexLock g(mu_);
    // Retire, never destroy: requests that grabbed the old incarnation's
    // shared_ptr before the swap are still executing against the old
    // primary through a raw pointer — both must stay alive until the
    // replica itself is destroyed.
    retired_.push_back(std::move(service_));
    retired_primaries_.push_back(std::move(primary_));
    primary_ = std::move(primary);
    version_ = version;
    service_ = MakeService();
    alive_ = true;
  }
  tracker_.Reset();
}

uint64_t Replica::model_version() const {
  MutexLock g(mu_);
  return version_;
}

bool Replica::alive() const {
  MutexLock g(mu_);
  return alive_;
}

uint64_t Replica::incarnations() const {
  MutexLock g(mu_);
  return incarnations_;
}

size_t Replica::inflight() const {
  std::shared_ptr<PredictionService> service;
  {
    MutexLock g(mu_);
    if (!alive_) return 0;
    service = service_;
  }
  return service->inflight();
}

ServiceStats Replica::CumulativeStats() const {
  std::vector<std::shared_ptr<PredictionService>> incarnations;
  {
    MutexLock g(mu_);
    incarnations = retired_;
    incarnations.push_back(service_);
  }
  ServiceStats total;
  bool first = true;
  for (const auto& service : incarnations) {
    const ServiceStats s = service->Snapshot();
    total.received += s.received;
    total.admitted += s.admitted;
    total.shed_queue_full += s.shed_queue_full;
    total.shed_lint += s.shed_lint;
    total.completed += s.completed;
    total.degraded += s.degraded;
    total.deadline_expired += s.deadline_expired;
    total.failed += s.failed;
    total.retries += s.retries;
    total.primary_failures += s.primary_failures;
    total.fallback_failures += s.fallback_failures;
    total.breaker_trips += s.breaker_trips;
    total.breaker_recoveries += s.breaker_recoveries;
    total.breaker_state = s.breaker_state;  // live incarnation read last
    total.model_version = s.model_version;  // ditto
    if (first) {
      total.latency_ms = s.latency_ms;
      first = false;
    } else {
      // Same layout by construction (every incarnation registers
      // serve.latency_ms with the registry's default layout).
      ZT_CHECK_OK(total.latency_ms.Merge(s.latency_ms));
    }
  }
  return total;
}

}  // namespace zerotune::serve::fleet
