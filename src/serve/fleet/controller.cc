#include "serve/fleet/controller.h"

#include <algorithm>
#include <cmath>

#include "baselines/self_regulation.h"

namespace zerotune::serve::fleet {

Status ControllerOptions::Validate() const {
  if (min_replicas == 0 || max_replicas < min_replicas) {
    return Status::InvalidArgument(
        "controller needs 1 <= min_replicas <= max_replicas");
  }
  if (!std::isfinite(restart_delay_ms) || restart_delay_ms < 0.0) {
    return Status::InvalidArgument(
        "controller restart_delay_ms must be non-negative and finite");
  }
  if (!std::isfinite(overload_shed_rate) || overload_shed_rate < 0.0 ||
      overload_shed_rate > 1.0) {
    return Status::InvalidArgument(
        "controller overload_shed_rate must be in [0, 1]");
  }
  if (!std::isfinite(underutilization_threshold) ||
      underutilization_threshold < 0.0 || underutilization_threshold > 1.0) {
    return Status::InvalidArgument(
        "controller underutilization_threshold must be in [0, 1]");
  }
  if (!std::isfinite(scale_up_step) || scale_up_step < 1.0) {
    return Status::InvalidArgument("controller scale_up_step must be >= 1");
  }
  return Status::OK();
}

FleetController::FleetController(PredictionFleet* fleet,
                                 ControllerOptions options, Clock* clock)
    : fleet_(fleet),
      options_(options),
      options_status_(options.Validate()),
      clock_(clock != nullptr ? clock : SystemClock::Default()) {}

ControllerAction FleetController::Tick() {
  ControllerAction action;
  if (!options_status_.ok() || fleet_ == nullptr) return action;

  const FleetStats stats = fleet_->Snapshot();
  const int64_t now = clock_->NowNanos();

  // --- symptom: crashed replica -> resolution: restart after delay ----
  for (const ReplicaStatsEntry& r : stats.replicas) {
    if (!r.routable) {
      down_since_.erase(r.id);  // drained on purpose; not ours to revive
      continue;
    }
    if (r.alive) {
      down_since_.erase(r.id);
      continue;
    }
    auto [it, inserted] = down_since_.emplace(r.id, now);
    if (!inserted &&
        static_cast<double>(now - it->second) / 1e6 >=
            options_.restart_delay_ms) {
      if (fleet_->RestartReplica(r.id).ok()) {
        ++action.restarts;
        down_since_.erase(it);
      }
    }
  }

  // --- load symptoms ---------------------------------------------------
  const uint64_t shed = stats.shed_fleet_capacity + stats.shed_tenant_quota +
                        stats.shed_fair_share;
  const uint64_t d_received = stats.received - last_received_;
  const uint64_t d_shed = shed - last_shed_;
  last_received_ = stats.received;
  last_shed_ = shed;
  action.shed_rate =
      d_received == 0
          ? 0.0
          : static_cast<double>(d_shed) / static_cast<double>(d_received);
  const size_t capacity = fleet_->capacity();
  action.utilization =
      capacity == 0 ? 0.0
                    : static_cast<double>(fleet_->total_inflight()) /
                          static_cast<double>(capacity);

  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    return action;
  }

  const int degree = static_cast<int>(stats.replicas_total);
  if (action.shed_rate > options_.overload_shed_rate) {
    // Overloaded: grow the fleet toward SelfRegulation's target size.
    const int target = baselines::SelfRegulation::ScaleUp(
        degree, options_.scale_up_step,
        static_cast<int>(options_.max_replicas));
    for (int i = degree; i < target; ++i) {
      if (!fleet_->AddReplica().ok()) break;
      ++action.scale_ups;
    }
  } else if (d_received > 0 &&
             baselines::SelfRegulation::ShouldScaleDown(
                 action.utilization, options_.underutilization_threshold,
                 degree, static_cast<int>(options_.min_replicas))) {
    // Underutilized: drain the highest-id healthy replica (one per tick —
    // Dhalion resolves conservatively and re-diagnoses).
    const std::vector<uint32_t> alive = fleet_->AliveReplicaIds();
    if (!alive.empty() && fleet_->RemoveReplica(alive.back()).ok()) {
      ++action.scale_downs;
    }
  }
  if (action.scale_ups > 0 || action.scale_downs > 0) {
    cooldown_remaining_ = options_.cooldown_ticks;
  }
  return action;
}

}  // namespace zerotune::serve::fleet
