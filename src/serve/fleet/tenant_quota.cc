#include "serve/fleet/tenant_quota.h"

#include <algorithm>
#include <cmath>

#include "serve/fleet/hash_ring.h"

namespace zerotune::serve::fleet {

Status QuotaOptions::Validate() const {
  if (!std::isfinite(max_tenant_share) || max_tenant_share <= 0.0 ||
      max_tenant_share > 1.0) {
    return Status::InvalidArgument(
        "quota max_tenant_share must be in (0, 1]");
  }
  if (!std::isfinite(fair_share_watermark) || fair_share_watermark <= 0.0 ||
      fair_share_watermark > 1.0) {
    return Status::InvalidArgument(
        "quota fair_share_watermark must be in (0, 1]");
  }
  if (min_tenant_slots == 0) {
    return Status::InvalidArgument("quota min_tenant_slots must be >= 1");
  }
  return Status::OK();
}

TenantQuotas::TenantQuotas(QuotaOptions options) : options_(options) {}

TenantQuotas::Shard& TenantQuotas::ShardFor(const std::string& tenant) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : tenant) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
  }
  return shards_[Mix64(h) % kShards];
}

TenantQuotas::TenantState* TenantQuotas::GetOrCreate(
    const std::string& tenant) {
  Shard& shard = ShardFor(tenant);
  MutexLock g(shard.mu);
  auto it = shard.tenants.find(tenant);
  if (it != shard.tenants.end()) return it->second.get();
  auto state = std::make_unique<TenantState>();
  // One registry lookup per *new* tenant; the hot path only touches the
  // cached handles and the sharded map.
  auto* metrics = obs::MetricsRegistry::Global();
  const obs::Labels labels = {{"tenant", tenant}};
  state->received =
      metrics->GetCounter("serve.fleet.tenant.received_total", labels);
  state->answered =
      metrics->GetCounter("serve.fleet.tenant.answered_total", labels);
  state->shed = metrics->GetCounter("serve.fleet.tenant.shed_total", labels);
  return shard.tenants.emplace(tenant, std::move(state))
      .first->second.get();
}

size_t TenantQuotas::tenants_seen() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock g(shard.mu);
    n += shard.tenants.size();
  }
  return n;
}

QuotaDecision TenantQuotas::Admit(const std::string& tenant,
                                  size_t capacity) {
  TenantState* t = GetOrCreate(tenant);
  t->received->Increment();
  capacity = std::max<size_t>(capacity, 1);
  const size_t hard_cap = std::max<size_t>(
      options_.min_tenant_slots,
      static_cast<size_t>(options_.max_tenant_share *
                          static_cast<double>(capacity)));

  // Reserve-then-check keeps every bound strict under concurrency: the
  // slot is taken optimistically and handed back on refusal, so neither
  // the fleet total nor a tenant's count ever exceeds its cap from an
  // admitted request's point of view.
  const uint64_t mine = t->inflight.fetch_add(1, std::memory_order_acq_rel);
  if (mine == 0) active_tenants_.fetch_add(1, std::memory_order_relaxed);
  QuotaDecision decision = QuotaDecision::kAdmit;
  if (mine >= hard_cap) {
    decision = QuotaDecision::kTenantQuota;
  } else {
    const size_t total =
        total_inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (total >= capacity) {
      total_inflight_.fetch_sub(1, std::memory_order_acq_rel);
      decision = QuotaDecision::kFleetFull;
    } else if (static_cast<double>(total + 1) >=
               options_.fair_share_watermark *
                   static_cast<double>(capacity)) {
      // Loaded fleet: tenants at or past their fair slice shed first.
      const size_t fair = std::max<size_t>(
          options_.min_tenant_slots,
          capacity / std::max<size_t>(active_tenants(), 1));
      if (mine >= fair) {
        total_inflight_.fetch_sub(1, std::memory_order_acq_rel);
        decision = QuotaDecision::kFairShare;
      }
    }
  }
  if (decision != QuotaDecision::kAdmit) {
    if (t->inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      active_tenants_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  return decision;
}

void TenantQuotas::Release(const std::string& tenant) {
  TenantState* t = GetOrCreate(tenant);
  total_inflight_.fetch_sub(1, std::memory_order_acq_rel);
  if (t->inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    active_tenants_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void TenantQuotas::CountOutcome(const std::string& tenant, bool answered) {
  TenantState* t = GetOrCreate(tenant);
  (answered ? t->answered : t->shed)->Increment();
}

}  // namespace zerotune::serve::fleet
