#ifndef ZEROTUNE_WORKLOAD_GENERATOR_H_
#define ZEROTUNE_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dsp/cluster.h"
#include "dsp/query_plan.h"
#include "workload/parameter_space.h"

namespace zerotune::workload {

/// Pins individual workload parameters; anything unset is sampled from the
/// configured (seen or unseen) Table III range. Used by the Exp. 3
/// parameter sweeps (tuple width, event rate, window config, #workers).
struct GeneratorOverrides {
  std::optional<double> event_rate;
  std::optional<int> tuple_width;
  std::optional<dsp::DataType> tuple_type;
  std::optional<double> window_length;        // count-based windows (tuples)
  std::optional<double> window_duration_ms;   // time-based windows
  std::optional<dsp::WindowPolicy> window_policy;
  std::optional<dsp::WindowType> window_type;
  std::optional<int> num_workers;
  std::optional<std::vector<std::string>> cluster_types;
  std::optional<double> network_gbps;
};

/// A generated logical query plus the cluster it is to be deployed on.
/// Parallelism degrees are assigned later by an enumeration strategy
/// (OptiSample or random — paper Sec. IV).
struct GeneratedQuery {
  dsp::QueryPlan plan;
  dsp::Cluster cluster;
  QueryStructure structure = QueryStructure::kLinear;
};

/// Random streaming-query generator mirroring the paper's PQP query
/// generator on top of Flink: samples data-stream, operator and resource
/// parameters from Table III and assembles plans for each query structure.
class QueryGenerator {
 public:
  struct Options {
    /// Samples from the unseen (testing) ranges instead of the seen ones.
    bool unseen_ranges = false;
    GeneratorOverrides overrides;
  };

  QueryGenerator(Options options, uint64_t seed);

  /// Generates one query of the given structure (synthetic structures
  /// only; benchmark structures live in workload/benchmarks.h).
  Result<GeneratedQuery> Generate(QueryStructure structure);

  /// Generates a uniformly chosen training structure (linear/2-way/3-way).
  Result<GeneratedQuery> GenerateTraining();

  zerotune::Rng& rng() { return rng_; }

 private:
  double SampleEventRate();
  dsp::TupleSchema SampleSchema();
  dsp::WindowSpec SampleWindow();
  dsp::FilterProperties SampleFilter();
  dsp::AggregateProperties SampleAggregate();
  dsp::JoinProperties SampleJoin(int degree_hint);
  Result<dsp::Cluster> SampleCluster();

  Result<GeneratedQuery> MakeLinear();
  Result<GeneratedQuery> MakeChainedFilters(int num_filters);
  Result<GeneratedQuery> MakeNWayJoin(int num_sources);

  Options options_;
  zerotune::Rng rng_;
};

}  // namespace zerotune::workload

#endif  // ZEROTUNE_WORKLOAD_GENERATOR_H_
