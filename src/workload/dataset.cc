#include "workload/dataset.h"

#include <numeric>

namespace zerotune::workload {

void Dataset::Append(const Dataset& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

Status Dataset::Split(double train_frac, double val_frac, zerotune::Rng* rng,
                      Dataset* train, Dataset* val, Dataset* test) const {
  if (train_frac < 0.0 || val_frac < 0.0 || train_frac + val_frac > 1.0) {
    return Status::InvalidArgument("invalid split fractions");
  }
  std::vector<size_t> index(samples_.size());
  std::iota(index.begin(), index.end(), 0);
  rng->Shuffle(&index);
  const size_t n_train =
      static_cast<size_t>(train_frac * static_cast<double>(samples_.size()));
  const size_t n_val =
      static_cast<size_t>(val_frac * static_cast<double>(samples_.size()));
  train->samples_.clear();
  val->samples_.clear();
  test->samples_.clear();
  for (size_t i = 0; i < index.size(); ++i) {
    const LabeledQuery& q = samples_[index[i]];
    if (i < n_train) {
      train->samples_.push_back(q);
    } else if (i < n_train + n_val) {
      val->samples_.push_back(q);
    } else {
      test->samples_.push_back(q);
    }
  }
  return Status::OK();
}

Dataset Dataset::FilterStructure(QueryStructure structure) const {
  Dataset out;
  for (const LabeledQuery& q : samples_) {
    if (q.structure == structure) out.samples_.push_back(q);
  }
  return out;
}

Dataset Dataset::FilterCategory(const std::string& category) const {
  Dataset out;
  for (const LabeledQuery& q : samples_) {
    if (category == q.ParallelismCategory()) out.samples_.push_back(q);
  }
  return out;
}

Dataset Dataset::Take(size_t n) const {
  Dataset out;
  for (size_t i = 0; i < std::min(n, samples_.size()); ++i) {
    out.samples_.push_back(samples_[i]);
  }
  return out;
}

}  // namespace zerotune::workload
