#include "workload/dataset_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/file_util.h"
#include "dsp/plan_io.h"
#include "obs/trace.h"

namespace zerotune::workload {

namespace {

constexpr char kMagic[] = "zerotune-dataset-v1";

/// Upper bound on the sample count a header may declare; larger values are
/// treated as corruption rather than looped over.
constexpr size_t kMaxSamples = 50'000'000;

Result<double> ParseFiniteDouble(const std::string& repr, size_t sample_index,
                                 const std::string& field) {
  try {
    size_t used = 0;
    const double v = std::stod(repr, &used);
    if (used != repr.size() || !std::isfinite(v)) {
      return Status::InvalidArgument(
          "sample " + std::to_string(sample_index) + ": non-finite or " +
          "malformed " + field + ": " + repr);
    }
    return v;
  } catch (...) {
    return Status::InvalidArgument("sample " + std::to_string(sample_index) +
                                   ": bad number for " + field + ": " + repr);
  }
}

const QueryStructure kAllStructures[] = {
    QueryStructure::kLinear,
    QueryStructure::kTwoWayJoin,
    QueryStructure::kThreeWayJoin,
    QueryStructure::kTwoChainedFilters,
    QueryStructure::kThreeChainedFilters,
    QueryStructure::kFourChainedFilters,
    QueryStructure::kFourWayJoin,
    QueryStructure::kFiveWayJoin,
    QueryStructure::kSixWayJoin,
    QueryStructure::kSpikeDetection,
    QueryStructure::kSmartGridLocal,
    QueryStructure::kSmartGridGlobal,
};

}  // namespace

Result<QueryStructure> QueryStructureFromString(const std::string& name) {
  for (QueryStructure s : kAllStructures) {
    if (name == ToString(s)) return s;
  }
  return Status::InvalidArgument("unknown query structure: " + name);
}

Status DatasetIO::Save(const Dataset& dataset, const std::string& path) {
  obs::Span span("dataset_io/save");
  span.AddArg("samples", std::to_string(dataset.size()));
  // Atomic: datasets take minutes to label; a crashed save must leave any
  // previous file intact.
  return AtomicWriteStream(path, [&dataset](std::ostream& f) -> Status {
    f.precision(17);
    f << kMagic << " " << dataset.size() << "\n";
    for (const LabeledQuery& q : dataset.samples()) {
      f << "sample structure=" << ToString(q.structure)
        << " latency_ms=" << q.latency_ms
        << " throughput_tps=" << q.throughput_tps << "\n";
      ZT_RETURN_IF_ERROR(dsp::PlanIO::WriteParallelPlan(q.plan, f));
      f << "end\n";
    }
    return Status::OK();
  });
}

Result<Dataset> DatasetIO::Load(const std::string& path) {
  obs::Span span("dataset_io/load");
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::string magic;
  size_t count = 0;
  f >> magic >> count;
  if (magic != kMagic) {
    return Status::InvalidArgument("bad dataset header in " + path);
  }
  if (!f) {
    return Status::InvalidArgument("bad sample count in header of " + path);
  }
  if (count > kMaxSamples) {
    return Status::InvalidArgument(
        "implausible sample count " + std::to_string(count) + " in " + path);
  }
  std::string line;
  std::getline(f, line);  // finish header line

  Dataset out;
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(f, line)) {
      return Status::InvalidArgument("truncated dataset (sample " +
                                     std::to_string(i) + ")");
    }
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind != "sample") {
      return Status::InvalidArgument("expected sample line, got: " + line);
    }
    QueryStructure structure = QueryStructure::kLinear;
    double latency = 0.0, throughput = 0.0;
    std::string token;
    while (ls >> token) {
      const size_t eq = token.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("bad sample token: " + token);
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "structure") {
        ZT_ASSIGN_OR_RETURN(structure, QueryStructureFromString(value));
      } else if (key == "latency_ms") {
        ZT_ASSIGN_OR_RETURN(latency, ParseFiniteDouble(value, i, key));
      } else if (key == "throughput_tps") {
        ZT_ASSIGN_OR_RETURN(throughput, ParseFiniteDouble(value, i, key));
      }
    }
    // Collect the embedded plan up to the trailing "end".
    std::stringstream plan_text;
    bool closed = false;
    while (std::getline(f, line)) {
      if (line == "end") {
        closed = true;
        break;
      }
      plan_text << line << "\n";
    }
    if (!closed) {
      return Status::InvalidArgument("sample missing end marker");
    }
    auto plan = dsp::PlanIO::ReadParallelPlan(plan_text);
    if (!plan.ok()) {
      return Status::InvalidArgument("sample " + std::to_string(i) + ": " +
                                     plan.status().ToString());
    }
    out.Add(LabeledQuery(std::move(plan).value(), latency, throughput,
                         structure));
  }
  return out;
}

}  // namespace zerotune::workload
