#ifndef ZEROTUNE_WORKLOAD_BENCHMARKS_H_
#define ZEROTUNE_WORKLOAD_BENCHMARKS_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "workload/generator.h"

namespace zerotune::workload {

/// Builders for the public streaming benchmark queries the paper
/// evaluates as *unseen* workloads (Exp. 1③): DSPBench/Intel-lab spike
/// detection and the DEBS'14 smart-grid queries. Event rates and window
/// configurations follow the published query descriptions; the cluster is
/// sampled from the unseen Table II node types unless `cluster` is given.
struct BenchmarkQueries {
  struct Options {
    /// Source event rate (tuples/s); benchmarks run at arbitrarily low
    /// rates per the paper, default matches that regime.
    double event_rate = 2500.0;
    /// Cluster to deploy on; when unset a 3-worker unseen-type cluster is
    /// sampled with `rng`.
    std::optional<dsp::Cluster> cluster;
  };

  /// Spike detection: sensor stream → 2 s moving average per sensor →
  /// spike filter (value deviates from the moving average) → sink.
  static Result<GeneratedQuery> SpikeDetection(Options options,
                                               zerotune::Rng* rng);

  /// Smart-grid local load: smart-plug stream → per-plug sliding-window
  /// average (10 s window / 3 s slide) → sink.
  static Result<GeneratedQuery> SmartGridLocal(Options options,
                                               zerotune::Rng* rng);

  /// Smart-grid global load: smart-plug stream → per-house sliding-window
  /// average → global sliding-window average → sink.
  static Result<GeneratedQuery> SmartGridGlobal(Options options,
                                                zerotune::Rng* rng);

  /// Dispatch by structure tag (must be one of the benchmark structures).
  static Result<GeneratedQuery> Build(QueryStructure structure,
                                      Options options, zerotune::Rng* rng);
};

}  // namespace zerotune::workload

#endif  // ZEROTUNE_WORKLOAD_BENCHMARKS_H_
