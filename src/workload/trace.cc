#include "workload/trace.h"

#include <cmath>

namespace zerotune::workload {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

const char* RateTrace::ToString(Shape shape) {
  switch (shape) {
    case Shape::kConstant: return "constant";
    case Shape::kDiurnal: return "diurnal";
    case Shape::kSpike: return "spike";
    case Shape::kRamp: return "ramp";
  }
  return "?";
}

Result<std::vector<RateTrace::Point>> RateTrace::Generate(
    const Options& options) {
  if (options.base_rate <= 0.0 || options.peak_rate < options.base_rate) {
    return Status::InvalidArgument(
        "need 0 < base_rate <= peak_rate in a rate trace");
  }
  if (options.duration_s <= 0.0 || options.interval_s <= 0.0) {
    return Status::InvalidArgument("duration and interval must be positive");
  }
  zerotune::Rng rng(options.seed);
  std::vector<Point> points;
  for (double t = 0.0; t <= options.duration_s; t += options.interval_s) {
    const double progress = t / options.duration_s;
    double rate = options.base_rate;
    switch (options.shape) {
      case Shape::kConstant:
        break;
      case Shape::kDiurnal: {
        // Trough at the start/end, peak in the middle of the "day".
        const double phase = 0.5 * (1.0 - std::cos(2.0 * kPi * progress));
        rate = options.base_rate +
               (options.peak_rate - options.base_rate) * phase;
        break;
      }
      case Shape::kSpike: {
        const double lo = 0.5 - options.spike_width_fraction / 2.0;
        const double hi = 0.5 + options.spike_width_fraction / 2.0;
        rate = (progress >= lo && progress <= hi) ? options.peak_rate
                                                  : options.base_rate;
        break;
      }
      case Shape::kRamp:
        rate = options.base_rate +
               (options.peak_rate - options.base_rate) * progress;
        break;
    }
    if (options.jitter_sigma > 0.0) {
      rate *= rng.LogNormalFactor(options.jitter_sigma);
    }
    points.push_back(Point{t, rate});
  }
  return points;
}

}  // namespace zerotune::workload
