#ifndef ZEROTUNE_WORKLOAD_DATASET_IO_H_
#define ZEROTUNE_WORKLOAD_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "workload/dataset.h"

namespace zerotune::workload {

/// Persistence for labeled corpora, so data collection (expensive on a
/// real cluster, cheap here) and training can run as separate steps — the
/// paper's Fig. 2 pipeline, and what the CLI's `collect`/`train`
/// subcommands exchange.
///
/// Format: a header line, then per sample
///   sample structure=<name> latency_ms=<d> throughput_tps=<d>
///   <embedded parallel plan: see dsp::PlanIO>
///   end
struct DatasetIO {
  static Status Save(const Dataset& dataset, const std::string& path);
  static Result<Dataset> Load(const std::string& path);
};

/// Structure tag <-> string helpers shared with the CLI.
Result<QueryStructure> QueryStructureFromString(const std::string& name);

}  // namespace zerotune::workload

#endif  // ZEROTUNE_WORKLOAD_DATASET_IO_H_
