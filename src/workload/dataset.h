#ifndef ZEROTUNE_WORKLOAD_DATASET_H_
#define ZEROTUNE_WORKLOAD_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dsp/parallel_plan.h"
#include "workload/parameter_space.h"

namespace zerotune::workload {

/// One labeled training/evaluation example: a placed parallel query plan
/// and its measured costs.
struct LabeledQuery {
  dsp::ParallelQueryPlan plan;
  double latency_ms = 0.0;
  double throughput_tps = 0.0;
  QueryStructure structure = QueryStructure::kLinear;

  LabeledQuery(dsp::ParallelQueryPlan p, double lat, double tpt,
               QueryStructure s)
      : plan(std::move(p)), latency_ms(lat), throughput_tps(tpt),
        structure(s) {}

  /// Paper Exp. 2 parallelism bucket of this deployment (XS..XL).
  const char* ParallelismCategory() const {
    return dsp::ParallelQueryPlan::ParallelismCategory(
        plan.AvgParallelism());
  }
};

/// A corpus of labeled queries with train/val/test splitting.
class Dataset {
 public:
  Dataset() = default;

  void Add(LabeledQuery q) { samples_.push_back(std::move(q)); }
  void Append(const Dataset& other);

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const LabeledQuery& sample(size_t i) const { return samples_[i]; }
  const std::vector<LabeledQuery>& samples() const { return samples_; }

  /// Random split into train/val/test with the given fractions
  /// (test gets the remainder). Paper uses 80/10/10.
  Status Split(double train_frac, double val_frac, zerotune::Rng* rng,
               Dataset* train, Dataset* val, Dataset* test) const;

  /// Subset containing only the given structure.
  Dataset FilterStructure(QueryStructure structure) const;

  /// Subset containing only samples whose parallelism category matches.
  Dataset FilterCategory(const std::string& category) const;

  /// First n samples (or all when n >= size).
  Dataset Take(size_t n) const;

 private:
  std::vector<LabeledQuery> samples_;
};

}  // namespace zerotune::workload

#endif  // ZEROTUNE_WORKLOAD_DATASET_H_
