#ifndef ZEROTUNE_WORKLOAD_PARAMETER_SPACE_H_
#define ZEROTUNE_WORKLOAD_PARAMETER_SPACE_H_

#include <string>
#include <vector>

namespace zerotune::workload {

/// The training ("seen") and testing ("unseen") parameter ranges of paper
/// Table III, reproduced verbatim. The seen ranges drive training-data
/// generation; the unseen ranges drive the generalization experiments
/// (inter-/extrapolation in Exp. 3, unseen hardware in Exp. 2, unseen
/// structures in Exp. 1).
struct ParameterSpace {
  // Event rate (events/sec).
  static const std::vector<double>& SeenEventRates();
  static const std::vector<double>& UnseenEventRates();

  // Tuple width (number of fields).
  static const std::vector<int>& SeenTupleWidths();    // 1..5
  static const std::vector<int>& UnseenTupleWidths();  // 6..15

  // Count-based window length (tuples).
  static const std::vector<double>& SeenWindowLengths();
  static const std::vector<double>& UnseenWindowLengths();

  // Time-based window duration (ms).
  static const std::vector<double>& SeenWindowDurations();
  static const std::vector<double>& UnseenWindowDurations();

  // Sliding length as a ratio of the window length (both ranges).
  static const std::vector<double>& SlidingRatios();

  // Network link speeds (Gbps, both ranges).
  static const std::vector<double>& NetworkSpeedsGbps();

  // Number of worker nodes.
  static const std::vector<int>& SeenWorkerCounts();    // 2, 4, 6
  static const std::vector<int>& UnseenWorkerCounts();  // 3, 8, 10

  // Cluster (CloudLab) node types.
  static const std::vector<std::string>& SeenClusterTypes();
  static const std::vector<std::string>& UnseenClusterTypes();
};

/// Query plan structures. The first three are the training structures;
/// the rest only appear at test time (paper Table III).
enum class QueryStructure {
  kLinear = 0,
  kTwoWayJoin,
  kThreeWayJoin,
  // Unseen structures:
  kTwoChainedFilters,
  kThreeChainedFilters,
  kFourChainedFilters,
  kFourWayJoin,
  kFiveWayJoin,
  kSixWayJoin,
  // Unseen public benchmarks:
  kSpikeDetection,
  kSmartGridLocal,
  kSmartGridGlobal,
};

const char* ToString(QueryStructure s);

/// The three structures used for training-data generation.
std::vector<QueryStructure> TrainingStructures();
/// The synthetic structures only used at test time.
std::vector<QueryStructure> UnseenSyntheticStructures();
/// The public benchmark queries (Exp. 1③).
std::vector<QueryStructure> BenchmarkStructures();

}  // namespace zerotune::workload

#endif  // ZEROTUNE_WORKLOAD_PARAMETER_SPACE_H_
