#include "workload/parameter_space.h"

namespace zerotune::workload {

const std::vector<double>& ParameterSpace::SeenEventRates() {
  static const std::vector<double> kValues = {
      100,   200,   400,   500,    700,    1000,  2000, 3000,
      5000,  10000, 20000, 50000,  100000, 250000, 500000, 1000000};
  return kValues;
}

const std::vector<double>& ParameterSpace::UnseenEventRates() {
  static const std::vector<double> kValues = {
      50,    75,     150,    300,    450,     600,     850,
      1500,  4000,   7500,   15000,  35000,   175000,  375000,
      750000, 1500000, 2000000, 3000000, 4000000};
  return kValues;
}

const std::vector<int>& ParameterSpace::SeenTupleWidths() {
  static const std::vector<int> kValues = {1, 2, 3, 4, 5};
  return kValues;
}

const std::vector<int>& ParameterSpace::UnseenTupleWidths() {
  static const std::vector<int> kValues = {6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
  return kValues;
}

const std::vector<double>& ParameterSpace::SeenWindowLengths() {
  static const std::vector<double> kValues = {5, 10, 25, 50, 75, 100};
  return kValues;
}

const std::vector<double>& ParameterSpace::UnseenWindowLengths() {
  static const std::vector<double> kValues = {2,  3,   4,   7,   17,  37,  62,
                                              82, 150, 200, 250, 300, 350, 400};
  return kValues;
}

const std::vector<double>& ParameterSpace::SeenWindowDurations() {
  static const std::vector<double> kValues = {250, 500, 1000, 2000, 3000};
  return kValues;
}

const std::vector<double>& ParameterSpace::UnseenWindowDurations() {
  static const std::vector<double> kValues = {50,   100,  150,  200,  325,
                                              750,  1500, 2500, 4000, 5000,
                                              6000, 7000, 8000, 9000, 10000};
  return kValues;
}

const std::vector<double>& ParameterSpace::SlidingRatios() {
  static const std::vector<double> kValues = {0.3, 0.4, 0.5, 0.6, 0.7};
  return kValues;
}

const std::vector<double>& ParameterSpace::NetworkSpeedsGbps() {
  static const std::vector<double> kValues = {1.0, 10.0};
  return kValues;
}

const std::vector<int>& ParameterSpace::SeenWorkerCounts() {
  static const std::vector<int> kValues = {2, 4, 6};
  return kValues;
}

const std::vector<int>& ParameterSpace::UnseenWorkerCounts() {
  static const std::vector<int> kValues = {3, 8, 10};
  return kValues;
}

const std::vector<std::string>& ParameterSpace::SeenClusterTypes() {
  static const std::vector<std::string> kValues = {"m510", "rs620"};
  return kValues;
}

const std::vector<std::string>& ParameterSpace::UnseenClusterTypes() {
  static const std::vector<std::string> kValues = {
      "c6420", "c8220x", "c8220", "dss7500", "c6320", "rs6525"};
  return kValues;
}

const char* ToString(QueryStructure s) {
  switch (s) {
    case QueryStructure::kLinear: return "linear";
    case QueryStructure::kTwoWayJoin: return "2-way-join";
    case QueryStructure::kThreeWayJoin: return "3-way-join";
    case QueryStructure::kTwoChainedFilters: return "2-filter-chained";
    case QueryStructure::kThreeChainedFilters: return "3-filter-chained";
    case QueryStructure::kFourChainedFilters: return "4-filter-chained";
    case QueryStructure::kFourWayJoin: return "4-way-join";
    case QueryStructure::kFiveWayJoin: return "5-way-join";
    case QueryStructure::kSixWayJoin: return "6-way-join";
    case QueryStructure::kSpikeDetection: return "spike-detection";
    case QueryStructure::kSmartGridLocal: return "smart-grid-local";
    case QueryStructure::kSmartGridGlobal: return "smart-grid-global";
  }
  return "?";
}

std::vector<QueryStructure> TrainingStructures() {
  return {QueryStructure::kLinear, QueryStructure::kTwoWayJoin,
          QueryStructure::kThreeWayJoin};
}

std::vector<QueryStructure> UnseenSyntheticStructures() {
  return {QueryStructure::kTwoChainedFilters,
          QueryStructure::kThreeChainedFilters,
          QueryStructure::kFourChainedFilters,
          QueryStructure::kFourWayJoin,
          QueryStructure::kFiveWayJoin,
          QueryStructure::kSixWayJoin};
}

std::vector<QueryStructure> BenchmarkStructures() {
  return {QueryStructure::kSpikeDetection, QueryStructure::kSmartGridLocal,
          QueryStructure::kSmartGridGlobal};
}

}  // namespace zerotune::workload
