#include "workload/generator.h"

#include <cmath>

namespace zerotune::workload {

namespace {

using dsp::AggregateFunction;
using dsp::AggregateProperties;
using dsp::DataType;
using dsp::FilterFunction;
using dsp::FilterProperties;
using dsp::JoinProperties;
using dsp::TupleSchema;
using dsp::WindowPolicy;
using dsp::WindowSpec;
using dsp::WindowType;

double LogUniform(zerotune::Rng* rng, double lo, double hi) {
  return std::exp(rng->Uniform(std::log(lo), std::log(hi)));
}

}  // namespace

QueryGenerator::QueryGenerator(Options options, uint64_t seed)
    : options_(options), rng_(seed) {}

double QueryGenerator::SampleEventRate() {
  if (options_.overrides.event_rate) return *options_.overrides.event_rate;
  const auto& rates = options_.unseen_ranges
                          ? ParameterSpace::UnseenEventRates()
                          : ParameterSpace::SeenEventRates();
  return rng_.Choice(rates);
}

TupleSchema QueryGenerator::SampleSchema() {
  int width = 0;
  if (options_.overrides.tuple_width) {
    width = *options_.overrides.tuple_width;
  } else {
    const auto& widths = options_.unseen_ranges
                             ? ParameterSpace::UnseenTupleWidths()
                             : ParameterSpace::SeenTupleWidths();
    width = rng_.Choice(widths);
  }
  TupleSchema schema;
  schema.fields.reserve(static_cast<size_t>(width));
  for (int i = 0; i < width; ++i) {
    if (options_.overrides.tuple_type) {
      schema.fields.push_back(*options_.overrides.tuple_type);
    } else {
      schema.fields.push_back(
          static_cast<DataType>(rng_.UniformInt(0, 2)));
    }
  }
  return schema;
}

WindowSpec QueryGenerator::SampleWindow() {
  WindowSpec w;
  w.policy = options_.overrides.window_policy
                 ? *options_.overrides.window_policy
                 : (rng_.Bernoulli(0.5) ? WindowPolicy::kCount
                                        : WindowPolicy::kTime);
  w.type = options_.overrides.window_type
               ? *options_.overrides.window_type
               : (rng_.Bernoulli(0.5) ? WindowType::kTumbling
                                      : WindowType::kSliding);
  if (w.policy == WindowPolicy::kCount) {
    if (options_.overrides.window_length) {
      w.length = *options_.overrides.window_length;
    } else {
      w.length = rng_.Choice(options_.unseen_ranges
                                 ? ParameterSpace::UnseenWindowLengths()
                                 : ParameterSpace::SeenWindowLengths());
    }
  } else {
    if (options_.overrides.window_duration_ms) {
      w.length = *options_.overrides.window_duration_ms;
    } else {
      w.length = rng_.Choice(options_.unseen_ranges
                                 ? ParameterSpace::UnseenWindowDurations()
                                 : ParameterSpace::SeenWindowDurations());
    }
  }
  if (w.type == WindowType::kSliding) {
    const double ratio = rng_.Choice(ParameterSpace::SlidingRatios());
    w.slide = std::max(1.0, w.length * ratio);
  } else {
    w.slide = w.length;
  }
  return w;
}

FilterProperties QueryGenerator::SampleFilter() {
  FilterProperties f;
  f.function = static_cast<FilterFunction>(rng_.UniformInt(0, 5));
  f.literal_class = static_cast<DataType>(rng_.UniformInt(0, 2));
  f.selectivity = LogUniform(&rng_, 0.05, 1.0);
  return f;
}

AggregateProperties QueryGenerator::SampleAggregate() {
  AggregateProperties a;
  a.function = static_cast<AggregateFunction>(rng_.UniformInt(0, 4));
  a.aggregate_class =
      rng_.Bernoulli(0.7) ? DataType::kDouble : DataType::kInt;
  a.key_class = rng_.Bernoulli(0.7) ? DataType::kInt : DataType::kString;
  a.window = SampleWindow();
  a.selectivity = rng_.Uniform(0.02, 0.5);
  a.keyed = true;
  return a;
}

JoinProperties QueryGenerator::SampleJoin(int /*degree_hint*/) {
  JoinProperties j;
  j.key_class = rng_.Bernoulli(0.7) ? DataType::kInt : DataType::kString;
  j.window = SampleWindow();
  j.selectivity = LogUniform(&rng_, 1e-3, 5e-2);
  return j;
}

Result<dsp::Cluster> QueryGenerator::SampleCluster() {
  const std::vector<std::string> types =
      options_.overrides.cluster_types
          ? *options_.overrides.cluster_types
          : (options_.unseen_ranges ? ParameterSpace::UnseenClusterTypes()
                                    : ParameterSpace::SeenClusterTypes());
  int workers = 0;
  if (options_.overrides.num_workers) {
    workers = *options_.overrides.num_workers;
  } else {
    workers = rng_.Choice(options_.unseen_ranges
                              ? ParameterSpace::UnseenWorkerCounts()
                              : ParameterSpace::SeenWorkerCounts());
  }
  const double gbps = options_.overrides.network_gbps
                          ? *options_.overrides.network_gbps
                          : rng_.Choice(ParameterSpace::NetworkSpeedsGbps());
  return dsp::Cluster::FromTypes(types, workers, gbps, &rng_);
}

Result<GeneratedQuery> QueryGenerator::MakeLinear() {
  // "Linear" covers the family of pipeline-shaped queries the paper's PQP
  // generator produces: one or two filters, usually (but not always)
  // topped with a keyed window aggregation. The variety matters — it is
  // what lets the trained model generalize to longer unseen filter chains
  // and window-less plans.
  GeneratedQuery g;
  g.structure = QueryStructure::kLinear;
  dsp::SourceProperties src;
  src.event_rate = SampleEventRate();
  src.schema = SampleSchema();
  int tail = g.plan.AddSource(src);
  const int num_filters = static_cast<int>(rng_.UniformInt(1, 2));
  for (int i = 0; i < num_filters; ++i) {
    ZT_ASSIGN_OR_RETURN(tail, g.plan.AddFilter(tail, SampleFilter()));
  }
  if (rng_.Bernoulli(0.7)) {
    ZT_ASSIGN_OR_RETURN(tail,
                        g.plan.AddWindowAggregate(tail, SampleAggregate()));
    // Post-aggregation filters (e.g. threshold alerts on windowed values)
    // appear in real pipelines such as spike detection.
    if (rng_.Bernoulli(0.3)) {
      ZT_ASSIGN_OR_RETURN(tail, g.plan.AddFilter(tail, SampleFilter()));
    }
  }
  ZT_RETURN_IF_ERROR(g.plan.AddSink(tail).status());
  ZT_ASSIGN_OR_RETURN(g.cluster, SampleCluster());
  return g;
}

Result<GeneratedQuery> QueryGenerator::MakeChainedFilters(int num_filters) {
  GeneratedQuery g;
  dsp::SourceProperties src;
  src.event_rate = SampleEventRate();
  src.schema = SampleSchema();
  int tail = g.plan.AddSource(src);
  for (int i = 0; i < num_filters; ++i) {
    ZT_ASSIGN_OR_RETURN(tail, g.plan.AddFilter(tail, SampleFilter()));
  }
  ZT_RETURN_IF_ERROR(g.plan.AddSink(tail).status());
  ZT_ASSIGN_OR_RETURN(g.cluster, SampleCluster());
  return g;
}

Result<GeneratedQuery> QueryGenerator::MakeNWayJoin(int num_sources) {
  GeneratedQuery g;
  // Left-deep join tree over `num_sources` filtered streams, topped with a
  // window aggregation — matches the paper's n-way-join templates.
  std::vector<int> streams;
  for (int i = 0; i < num_sources; ++i) {
    dsp::SourceProperties src;
    src.event_rate = SampleEventRate();
    src.schema = SampleSchema();
    const int s = g.plan.AddSource(src);
    ZT_ASSIGN_OR_RETURN(const int f, g.plan.AddFilter(s, SampleFilter()));
    streams.push_back(f);
  }
  int tail = streams[0];
  for (int i = 1; i < num_sources; ++i) {
    ZT_ASSIGN_OR_RETURN(
        tail, g.plan.AddWindowJoin(tail, streams[static_cast<size_t>(i)],
                                   SampleJoin(num_sources)));
  }
  ZT_ASSIGN_OR_RETURN(const int a,
                      g.plan.AddWindowAggregate(tail, SampleAggregate()));
  ZT_RETURN_IF_ERROR(g.plan.AddSink(a).status());
  ZT_ASSIGN_OR_RETURN(g.cluster, SampleCluster());
  return g;
}

Result<GeneratedQuery> QueryGenerator::Generate(QueryStructure structure) {
  Result<GeneratedQuery> result = Status::Unimplemented("");
  switch (structure) {
    case QueryStructure::kLinear:
      result = MakeLinear();
      break;
    case QueryStructure::kTwoWayJoin:
      result = MakeNWayJoin(2);
      break;
    case QueryStructure::kThreeWayJoin:
      result = MakeNWayJoin(3);
      break;
    case QueryStructure::kTwoChainedFilters:
      result = MakeChainedFilters(2);
      break;
    case QueryStructure::kThreeChainedFilters:
      result = MakeChainedFilters(3);
      break;
    case QueryStructure::kFourChainedFilters:
      result = MakeChainedFilters(4);
      break;
    case QueryStructure::kFourWayJoin:
      result = MakeNWayJoin(4);
      break;
    case QueryStructure::kFiveWayJoin:
      result = MakeNWayJoin(5);
      break;
    case QueryStructure::kSixWayJoin:
      result = MakeNWayJoin(6);
      break;
    case QueryStructure::kSpikeDetection:
    case QueryStructure::kSmartGridLocal:
    case QueryStructure::kSmartGridGlobal:
      return Status::InvalidArgument(
          "benchmark structures are built by workload/benchmarks.h");
  }
  if (result.ok()) result.value().structure = structure;
  return result;
}

Result<GeneratedQuery> QueryGenerator::GenerateTraining() {
  const auto structures = TrainingStructures();
  return Generate(rng_.Choice(structures));
}

}  // namespace zerotune::workload
