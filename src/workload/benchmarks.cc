#include "workload/benchmarks.h"

namespace zerotune::workload {

namespace {

using dsp::AggregateFunction;
using dsp::AggregateProperties;
using dsp::DataType;
using dsp::FilterFunction;
using dsp::FilterProperties;
using dsp::SourceProperties;
using dsp::TupleSchema;
using dsp::WindowPolicy;
using dsp::WindowSpec;
using dsp::WindowType;

Result<dsp::Cluster> ResolveCluster(const BenchmarkQueries::Options& options,
                                    zerotune::Rng* rng) {
  if (options.cluster) return *options.cluster;
  return dsp::Cluster::FromTypes(ParameterSpace::UnseenClusterTypes(),
                                 /*count=*/3, /*network_gbps=*/10.0, rng);
}

WindowSpec SlidingTimeWindow(double length_ms, double slide_ms) {
  WindowSpec w;
  w.type = WindowType::kSliding;
  w.policy = WindowPolicy::kTime;
  w.length = length_ms;
  w.slide = slide_ms;
  return w;
}

}  // namespace

Result<GeneratedQuery> BenchmarkQueries::SpikeDetection(Options options,
                                                        zerotune::Rng* rng) {
  GeneratedQuery g;
  g.structure = QueryStructure::kSpikeDetection;

  // Intel-lab sensor readings: (sensor id, temperature, humidity).
  SourceProperties src;
  src.event_rate = options.event_rate;
  src.schema.fields = {DataType::kInt, DataType::kDouble, DataType::kDouble};
  const int s = g.plan.AddSource(src);

  // 2 s moving average per sensor, refreshed every 500 ms.
  AggregateProperties avg;
  avg.function = AggregateFunction::kAvg;
  avg.aggregate_class = DataType::kDouble;
  avg.key_class = DataType::kInt;
  avg.window = SlidingTimeWindow(2000.0, 500.0);
  avg.selectivity = 0.054;  // ~54 distinct sensors per 1000-tuple window
  avg.keyed = true;
  ZT_ASSIGN_OR_RETURN(const int a, g.plan.AddWindowAggregate(s, avg));

  // Spike when the reading deviates >15% from the moving average.
  FilterProperties spike;
  spike.function = FilterFunction::kGreater;
  spike.literal_class = DataType::kDouble;
  spike.selectivity = 0.03;
  ZT_ASSIGN_OR_RETURN(const int f, g.plan.AddFilter(a, spike));

  ZT_RETURN_IF_ERROR(g.plan.AddSink(f).status());
  ZT_ASSIGN_OR_RETURN(g.cluster, ResolveCluster(options, rng));
  return g;
}

Result<GeneratedQuery> BenchmarkQueries::SmartGridLocal(Options options,
                                                        zerotune::Rng* rng) {
  GeneratedQuery g;
  g.structure = QueryStructure::kSmartGridLocal;

  // DEBS'14 smart plugs: (house id, plug id, measurement type, load).
  SourceProperties src;
  src.event_rate = options.event_rate;
  src.schema.fields = {DataType::kInt, DataType::kInt, DataType::kInt,
                       DataType::kDouble};
  const int s = g.plan.AddSource(src);

  // Keep only load measurements.
  FilterProperties load_only;
  load_only.function = FilterFunction::kEqual;
  load_only.literal_class = DataType::kInt;
  load_only.selectivity = 0.5;
  ZT_ASSIGN_OR_RETURN(const int f, g.plan.AddFilter(s, load_only));

  // Per-plug average load, 10 s window sliding by 3 s.
  AggregateProperties per_plug;
  per_plug.function = AggregateFunction::kAvg;
  per_plug.aggregate_class = DataType::kDouble;
  per_plug.key_class = DataType::kInt;
  per_plug.window = SlidingTimeWindow(10000.0, 3000.0);
  per_plug.selectivity = 0.08;
  per_plug.keyed = true;
  ZT_ASSIGN_OR_RETURN(const int a, g.plan.AddWindowAggregate(f, per_plug));

  ZT_RETURN_IF_ERROR(g.plan.AddSink(a).status());
  ZT_ASSIGN_OR_RETURN(g.cluster, ResolveCluster(options, rng));
  return g;
}

Result<GeneratedQuery> BenchmarkQueries::SmartGridGlobal(Options options,
                                                         zerotune::Rng* rng) {
  GeneratedQuery g;
  g.structure = QueryStructure::kSmartGridGlobal;

  SourceProperties src;
  src.event_rate = options.event_rate;
  src.schema.fields = {DataType::kInt, DataType::kInt, DataType::kInt,
                       DataType::kDouble};
  const int s = g.plan.AddSource(src);

  // Per-house average load, 10 s window sliding by 3 s.
  AggregateProperties per_house;
  per_house.function = AggregateFunction::kAvg;
  per_house.window = SlidingTimeWindow(10000.0, 3000.0);
  per_house.aggregate_class = DataType::kDouble;
  per_house.key_class = DataType::kInt;
  per_house.selectivity = 0.02;
  per_house.keyed = true;
  ZT_ASSIGN_OR_RETURN(const int a1, g.plan.AddWindowAggregate(s, per_house));

  // Global average over the per-house averages.
  AggregateProperties global;
  global.function = AggregateFunction::kAvg;
  global.aggregate_class = DataType::kDouble;
  global.key_class = DataType::kInt;
  global.window = SlidingTimeWindow(10000.0, 3000.0);
  global.selectivity = 0.05;
  global.keyed = false;  // single global group
  ZT_ASSIGN_OR_RETURN(const int a2, g.plan.AddWindowAggregate(a1, global));

  ZT_RETURN_IF_ERROR(g.plan.AddSink(a2).status());
  ZT_ASSIGN_OR_RETURN(g.cluster, ResolveCluster(options, rng));
  return g;
}

Result<GeneratedQuery> BenchmarkQueries::Build(QueryStructure structure,
                                               Options options,
                                               zerotune::Rng* rng) {
  switch (structure) {
    case QueryStructure::kSpikeDetection:
      return SpikeDetection(options, rng);
    case QueryStructure::kSmartGridLocal:
      return SmartGridLocal(options, rng);
    case QueryStructure::kSmartGridGlobal:
      return SmartGridGlobal(options, rng);
    default:
      return Status::InvalidArgument("not a benchmark structure");
  }
}

}  // namespace zerotune::workload
