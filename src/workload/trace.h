#ifndef ZEROTUNE_WORKLOAD_TRACE_H_
#define ZEROTUNE_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace zerotune::workload {

/// A time-varying event-rate profile: the workload side of runtime
/// re-tuning scenarios (rate spikes, diurnal load, ramps). Produces a
/// sequence of (timestamp, rate) observations that drive the
/// ReconfigurationPlanner in examples and tests.
class RateTrace {
 public:
  struct Point {
    double time_s = 0.0;
    double rate_tps = 0.0;
  };

  enum class Shape {
    kConstant,  // flat with jitter
    kDiurnal,   // sinusoidal day curve between base and peak
    kSpike,     // flat with a multiplicative burst in the middle
    kRamp,      // linear growth from base to peak
  };

  struct Options {
    Shape shape = Shape::kDiurnal;
    double base_rate = 10000.0;
    double peak_rate = 500000.0;
    double duration_s = 86400.0;   // one simulated day
    double interval_s = 3600.0;    // observation cadence
    /// Multiplicative lognormal jitter applied to every observation.
    double jitter_sigma = 0.05;
    /// Spike shape only: burst width as a fraction of the duration.
    double spike_width_fraction = 0.1;
    uint64_t seed = 11;
  };

  /// Generates the observation sequence; fails on non-positive rates or
  /// durations.
  static Result<std::vector<Point>> Generate(const Options& options);

  static const char* ToString(Shape shape);
};

}  // namespace zerotune::workload

#endif  // ZEROTUNE_WORKLOAD_TRACE_H_
