#ifndef ZEROTUNE_CORE_MODEL_H_
#define ZEROTUNE_CORE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cost_predictor.h"
#include "core/plan_graph.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace zerotune {
class ThreadPool;
}

namespace zerotune::core {

/// Numeric precision of the batched inference path (PredictBatch).
/// kFp64 is the reference path; kFp32 and kInt8 trade bounded accuracy
/// (~1e-6 / ~1e-2 relative, see nn/quantized.h) for throughput. The
/// sequential Predict() and all training always run in fp64.
enum class InferencePrecision {
  kFp64,
  kFp32,
  kInt8,
};

const char* InferencePrecisionName(InferencePrecision p);

/// Hyperparameters and feature configuration of the ZeroTune GNN.
struct ModelConfig {
  /// Width of every hidden state in the graph network.
  size_t hidden_dim = 48;
  /// Feature groups to encode (masked for the Exp. 6 ablation).
  FeatureConfig features;
  /// Parameter initialization seed.
  uint64_t seed = 1;
  /// Batched-inference precision. A runtime knob, not part of the
  /// architecture: it is not serialized by Save/Load and may be flipped
  /// on a loaded model via set_inference_precision().
  InferencePrecision precision = InferencePrecision::kFp64;
};

/// Normalization statistics of the (log-transformed) training targets.
struct TargetStats {
  double latency_mean = 0.0;
  double latency_std = 1.0;
  double throughput_mean = 0.0;
  double throughput_std = 1.0;
};

/// The ZeroTune zero-shot cost model (paper Sec. III-C): a graph neural
/// network over the parallel plan graph.
///
/// Architecture (all blocks are 1-hidden-layer MLPs of width hidden_dim):
///  1. node-type encoders embed operator and resource feature vectors;
///  2. stage 1 — bottom-up message passing along data-flow edges
///     (topological order, mean-aggregated upstream states);
///  3. stage 2 — one exchange round among resource nodes;
///  4. stage 3 — operator→resource mapping edges deliver resource states
///     (with per-instance mapping features) into each operator state;
///  5. stage 4 — a second bottom-up data-flow pass propagates the
///     resource-aware states to the sink;
///  6. a final regression MLP reads the sink state out into normalized
///     log-space (latency, throughput) predictions.
///
/// Training targets are log1p-transformed and standardized with
/// TargetStats; Predict() inverts the transform.
class ZeroTuneModel : public CostPredictor {
 public:
  explicit ZeroTuneModel(ModelConfig config = ModelConfig());

  ZeroTuneModel(const ZeroTuneModel&) = delete;
  ZeroTuneModel& operator=(const ZeroTuneModel&) = delete;

  /// Differentiable forward pass: returns the 1×2 output node
  /// (normalized log latency, normalized log throughput).
  nn::NodePtr Forward(const PlanGraph& graph) const;

  /// Builds the graph for `plan` with this model's feature config and
  /// predicts denormalized costs.
  Result<CostPrediction> Predict(
      const dsp::ParallelQueryPlan& plan) const override;

  /// Batched inference (core/batch_inference.h): featurizes all plans
  /// once, deduplicates shared operator/resource encodings, runs the MLP
  /// blocks as row-batched matrix ops, and shards candidate scoring over
  /// the configured thread pool. Bit-identical to per-plan Predict()
  /// under the scalar kernels at fp64; under SIMD the results differ
  /// from Predict() only by FMA rounding in the dot products, and under
  /// kFp32/kInt8 by the quantization bounds in nn/quantized.h.
  Result<std::vector<CostPrediction>> PredictBatch(
      std::span<const dsp::ParallelQueryPlan* const> plans) const override;

  /// Optional worker pool used by PredictBatch to shard candidate
  /// scoring (not owned; null = single-threaded batching).
  void set_thread_pool(zerotune::ThreadPool* pool) { pool_ = pool; }
  zerotune::ThreadPool* thread_pool() const { return pool_; }

  std::string name() const override { return "ZeroTune"; }

  /// Prediction from a pre-built graph (the trainer caches graphs).
  CostPrediction PredictFromGraph(const PlanGraph& graph) const;

  /// Normalized 1×2 regression target for a measured (latency_ms, tps).
  nn::Matrix EncodeTarget(double latency_ms, double throughput_tps) const;
  /// Inverts EncodeTarget on a model output.
  CostPrediction DecodeOutput(const nn::Matrix& out) const;

  void set_target_stats(const TargetStats& stats) { stats_ = stats; }
  const TargetStats& target_stats() const { return stats_; }
  const ModelConfig& config() const { return config_; }

  /// Switches the precision PredictBatch runs at (see InferencePrecision).
  void set_inference_precision(InferencePrecision p) { config_.precision = p; }

  /// Registry version of this artifact (core/registry/model_registry.h).
  /// 0 = unversioned (a model that never went through a registry). The
  /// value round-trips through Save/Load; files written before versioning
  /// existed load as 0.
  void set_version(uint64_t version) { version_ = version; }
  uint64_t version() const { return version_; }

  nn::ParameterStore* mutable_params() { return &params_; }
  const nn::ParameterStore& params() const { return params_; }

  /// Read-only handles to the architecture blocks, consumed by the
  /// batched inference engine (core/batch_inference.h).
  struct GnnBlocks {
    const nn::Mlp* op_encoder;
    const nn::Mlp* res_encoder;
    const nn::Mlp* flow_update;
    const nn::Mlp* res_update;
    const nn::Mlp* map_message;
    const nn::Mlp* map_update;
    const nn::Mlp* flow_update2;
    const nn::Mlp* readout;
  };
  GnnBlocks blocks() const;

  /// Serializes config, target stats and all parameters to one file.
  Status Save(const std::string& path) const;
  /// Loads a model saved by Save(); the config in the file must match
  /// this model's architecture-relevant fields.
  Status Load(const std::string& path);

  /// Constructs a model with the configuration stored in the file, then
  /// loads it — for callers (e.g. the CLI) that don't know the saved
  /// hidden size up front.
  static Result<std::unique_ptr<ZeroTuneModel>> LoadFromFile(
      const std::string& path);

 private:
  ModelConfig config_;
  TargetStats stats_;
  uint64_t version_ = 0;
  nn::ParameterStore params_;
  zerotune::ThreadPool* pool_ = nullptr;

  // Architecture blocks (handles into params_).
  std::unique_ptr<nn::Mlp> op_encoder_;
  std::unique_ptr<nn::Mlp> res_encoder_;
  std::unique_ptr<nn::Mlp> flow_update_;
  std::unique_ptr<nn::Mlp> res_update_;
  std::unique_ptr<nn::Mlp> map_message_;
  std::unique_ptr<nn::Mlp> map_update_;
  std::unique_ptr<nn::Mlp> flow_update2_;
  std::unique_ptr<nn::Mlp> readout_;
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_MODEL_H_
