#include "core/model.h"

#include <cmath>
#include <fstream>

#include "analysis/shape_checker.h"
#include "common/file_util.h"
#include "core/batch_inference.h"
#include "core/features.h"

namespace zerotune::core {

namespace {

using nn::ConcatCols;
using nn::Constant;
using nn::Matrix;
using nn::MeanAll;
using nn::NodePtr;

NodePtr ZeroState(size_t dim) { return Constant(Matrix(1, dim)); }

}  // namespace

const char* InferencePrecisionName(InferencePrecision p) {
  switch (p) {
    case InferencePrecision::kFp64:
      return "fp64";
    case InferencePrecision::kFp32:
      return "fp32";
    case InferencePrecision::kInt8:
      return "int8";
  }
  return "fp64";
}

ZeroTuneModel::ZeroTuneModel(ModelConfig config) : config_(config) {
  Rng rng(config_.seed);
  const size_t h = config_.hidden_dim;
  nn::Mlp::Options hidden_opts;
  hidden_opts.activate_output = true;
  op_encoder_ = std::make_unique<nn::Mlp>(
      &params_, std::vector<size_t>{FeatureEncoder::OperatorDim(), h, h},
      &rng, hidden_opts);
  res_encoder_ = std::make_unique<nn::Mlp>(
      &params_, std::vector<size_t>{FeatureEncoder::ResourceDim(), h, h},
      &rng, hidden_opts);
  flow_update_ = std::make_unique<nn::Mlp>(
      &params_, std::vector<size_t>{2 * h, h, h}, &rng, hidden_opts);
  res_update_ = std::make_unique<nn::Mlp>(
      &params_, std::vector<size_t>{2 * h, h, h}, &rng, hidden_opts);
  map_message_ = std::make_unique<nn::Mlp>(
      &params_,
      std::vector<size_t>{h + FeatureEncoder::MappingDim(), h, h}, &rng,
      hidden_opts);
  map_update_ = std::make_unique<nn::Mlp>(
      &params_, std::vector<size_t>{2 * h, h, h}, &rng, hidden_opts);
  flow_update2_ = std::make_unique<nn::Mlp>(
      &params_, std::vector<size_t>{2 * h, h, h}, &rng, hidden_opts);
  nn::Mlp::Options readout_opts;  // no output activation: regression head
  readout_ = std::make_unique<nn::Mlp>(
      &params_, std::vector<size_t>{h, h, 2}, &rng, readout_opts);
}

nn::NodePtr ZeroTuneModel::Forward(const PlanGraph& graph) const {
  const size_t h = config_.hidden_dim;
  const size_t n_ops = graph.num_operators();
  const size_t n_res = graph.num_resources();

  // Node-type encoders.
  std::vector<NodePtr> op_enc(n_ops);
  for (size_t i = 0; i < n_ops; ++i) {
    op_enc[i] = op_encoder_->Forward(
        Constant(Matrix::RowVector(graph.operator_features[i])));
  }
  std::vector<NodePtr> res_enc(n_res);
  for (size_t i = 0; i < n_res; ++i) {
    res_enc[i] = res_encoder_->Forward(
        Constant(Matrix::RowVector(graph.resource_features[i])));
  }

  // Stage 1: bottom-up data-flow message passing over operator nodes.
  std::vector<NodePtr> state(n_ops);
  for (int id : graph.topo_order) {
    const auto& ups = graph.operator_upstreams[static_cast<size_t>(id)];
    NodePtr up_msg;
    if (ups.empty()) {
      up_msg = ZeroState(h);
    } else {
      std::vector<NodePtr> msgs;
      msgs.reserve(ups.size());
      for (int u : ups) msgs.push_back(state[static_cast<size_t>(u)]);
      up_msg = MeanAll(msgs);
    }
    state[static_cast<size_t>(id)] = flow_update_->Forward(
        ConcatCols({op_enc[static_cast<size_t>(id)], up_msg}));
  }

  // Stage 2: one exchange round among physical resource nodes.
  std::vector<NodePtr> res_state(n_res);
  for (size_t i = 0; i < n_res; ++i) {
    NodePtr peer_msg;
    if (n_res <= 1) {
      peer_msg = ZeroState(h);
    } else {
      std::vector<NodePtr> peers;
      peers.reserve(n_res - 1);
      for (size_t j = 0; j < n_res; ++j) {
        if (j != i) peers.push_back(res_enc[j]);
      }
      peer_msg = MeanAll(peers);
    }
    res_state[i] = res_update_->Forward(ConcatCols({res_enc[i], peer_msg}));
  }

  // Stage 3: operator←resource mapping messages.
  std::vector<std::vector<NodePtr>> incoming(n_ops);
  for (const PlanGraph::MappingEdge& e : graph.mapping_edges) {
    NodePtr msg = map_message_->Forward(
        ConcatCols({res_state[static_cast<size_t>(e.resource_index)],
                    Constant(Matrix::RowVector(e.features.data(),
                                               e.features.size()))}));
    incoming[static_cast<size_t>(e.operator_index)].push_back(std::move(msg));
  }
  std::vector<NodePtr> mapped(n_ops);
  for (size_t i = 0; i < n_ops; ++i) {
    NodePtr m = incoming[i].empty() ? ZeroState(h) : MeanAll(incoming[i]);
    // Residual update: resource information perturbs the data-flow state
    // instead of replacing it, so out-of-distribution hardware encodings
    // degrade predictions gracefully (unseen-resource generalization).
    mapped[i] =
        nn::Add(state[i], map_update_->Forward(ConcatCols({state[i], m})));
  }

  // Stage 4: second bottom-up pass so resource-aware upstream states reach
  // the sink readout.
  std::vector<NodePtr> final_state(n_ops);
  for (int id : graph.topo_order) {
    const auto& ups = graph.operator_upstreams[static_cast<size_t>(id)];
    NodePtr up_msg;
    if (ups.empty()) {
      up_msg = ZeroState(h);
    } else {
      std::vector<NodePtr> msgs;
      msgs.reserve(ups.size());
      for (int u : ups) msgs.push_back(final_state[static_cast<size_t>(u)]);
      up_msg = MeanAll(msgs);
    }
    // Residual, like stage 3.
    final_state[static_cast<size_t>(id)] = nn::Add(
        mapped[static_cast<size_t>(id)],
        flow_update2_->Forward(
            ConcatCols({mapped[static_cast<size_t>(id)], up_msg})));
  }

  return readout_->Forward(final_state[static_cast<size_t>(graph.sink_index)]);
}

Result<CostPrediction> ZeroTuneModel::Predict(
    const dsp::ParallelQueryPlan& plan) const {
  ZT_RETURN_IF_ERROR(plan.Validate());
  const PlanGraph graph = BuildPlanGraph(plan, config_.features);
  return PredictFromGraph(graph);
}

Result<std::vector<CostPrediction>> ZeroTuneModel::PredictBatch(
    std::span<const dsp::ParallelQueryPlan* const> plans) const {
  return BatchedPredict(*this, plans, pool_);
}

ZeroTuneModel::GnnBlocks ZeroTuneModel::blocks() const {
  return GnnBlocks{op_encoder_.get(), res_encoder_.get(),
                   flow_update_.get(), res_update_.get(),
                   map_message_.get(), map_update_.get(),
                   flow_update2_.get(), readout_.get()};
}

CostPrediction ZeroTuneModel::PredictFromGraph(const PlanGraph& graph) const {
  const NodePtr out = Forward(graph);
  return DecodeOutput(out->value);
}

nn::Matrix ZeroTuneModel::EncodeTarget(double latency_ms,
                                       double throughput_tps) const {
  Matrix t(1, 2);
  t(0, 0) = (std::log1p(std::max(latency_ms, 0.0)) - stats_.latency_mean) /
            stats_.latency_std;
  t(0, 1) =
      (std::log1p(std::max(throughput_tps, 0.0)) - stats_.throughput_mean) /
      stats_.throughput_std;
  return t;
}

CostPrediction ZeroTuneModel::DecodeOutput(const nn::Matrix& out) const {
  CostPrediction p;
  p.latency_ms =
      std::expm1(out(0, 0) * stats_.latency_std + stats_.latency_mean);
  p.throughput_tps =
      std::expm1(out(0, 1) * stats_.throughput_std + stats_.throughput_mean);
  p.latency_ms = std::max(p.latency_ms, 0.0);
  p.throughput_tps = std::max(p.throughput_tps, 0.0);
  return p;
}

Status ZeroTuneModel::Save(const std::string& path) const {
  // Atomic: a crash (or full disk) mid-save must never clobber the
  // previously saved model.
  return AtomicWriteStream(path, [this](std::ostream& f) -> Status {
    f.precision(17);
    f << "zerotune-model-v1\n";
    f << config_.hidden_dim << " " << config_.features.operator_features
      << " " << config_.features.parallelism_features << " "
      << config_.features.resource_features << "\n";
    f << stats_.latency_mean << " " << stats_.latency_std << " "
      << stats_.throughput_mean << " " << stats_.throughput_std << "\n";
    // Optional metadata section between the stats line and the parameter
    // block; readers that predate a key skip unknown files by failing the
    // magic check, while Load() below tolerates the key's absence (files
    // written before versioning load as version 0).
    f << "model-version " << version_ << "\n";
    return params_.SaveToStream(f);
  });
}

Status ZeroTuneModel::Load(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::string magic;
  f >> magic;
  if (magic != "zerotune-model-v1") {
    return Status::InvalidArgument("bad model file header");
  }
  size_t hidden = 0;
  bool op_f = true, par_f = true, res_f = true;
  f >> hidden >> op_f >> par_f >> res_f;
  if (!f) return Status::InvalidArgument("truncated model config line");
  if (hidden != config_.hidden_dim) {
    return Status::InvalidArgument("hidden_dim mismatch in model file");
  }
  config_.features.operator_features = op_f;
  config_.features.parallelism_features = par_f;
  config_.features.resource_features = res_f;
  TargetStats stats;
  f >> stats.latency_mean >> stats.latency_std >> stats.throughput_mean >>
      stats.throughput_std;
  if (!f) return Status::InvalidArgument("truncated target-stats line");
  if (!std::isfinite(stats.latency_mean) ||
      !std::isfinite(stats.latency_std) ||
      !std::isfinite(stats.throughput_mean) ||
      !std::isfinite(stats.throughput_std) || stats.latency_std <= 0.0 ||
      stats.throughput_std <= 0.0) {
    return Status::InvalidArgument(
        "model target statistics must be finite with positive stddev");
  }
  // Optional "model-version N" token (absent in pre-registry files, which
  // load as version 0). Peek the next token and rewind if it is already
  // the parameter block.
  uint64_t version = 0;
  {
    const std::istream::pos_type before_meta = f.tellg();
    std::string key;
    if (f >> key && key == "model-version") {
      f >> version;
      if (!f) return Status::InvalidArgument("truncated model-version line");
    } else {
      f.clear();
      f.seekg(before_meta);
    }
  }
  // Static shape check before any tensor is loaded: a dimension-corrupted
  // file fails here with the offending layer named (ZT-M003) instead of a
  // mid-matmul assertion later. The stream is rewound afterwards so the
  // actual load re-reads the verified section.
  const std::istream::pos_type params_pos = f.tellg();
  const analysis::GnnShapeSpec spec = analysis::GnnShapeSpec::ForZeroTune(
      config_.hidden_dim, FeatureEncoder::OperatorDim(),
      FeatureEncoder::ResourceDim(), FeatureEncoder::MappingDim());
  const analysis::DiagnosticReport shape_report = spec.VerifyParamStream(f);
  if (shape_report.HasErrors()) return shape_report.ToStatus();
  f.clear();
  f.seekg(params_pos);
  ZT_RETURN_IF_ERROR(params_.LoadFromStream(f));
  stats_ = stats;
  version_ = version;
  return Status::OK();
}

Result<std::unique_ptr<ZeroTuneModel>> ZeroTuneModel::LoadFromFile(
    const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::string magic;
  f >> magic;
  if (magic != "zerotune-model-v1") {
    return Status::InvalidArgument("bad model file header");
  }
  ModelConfig config;
  f >> config.hidden_dim >> config.features.operator_features >>
      config.features.parallelism_features >>
      config.features.resource_features;
  if (!f) return Status::InvalidArgument("bad model config line");
  // Bound the hidden dimension before allocating layers from it: a corrupt
  // header must not drive an unbounded allocation.
  if (config.hidden_dim == 0 || config.hidden_dim > 65536) {
    return Status::InvalidArgument(
        "implausible hidden_dim " + std::to_string(config.hidden_dim) +
        " in model file");
  }
  f.close();
  auto model = std::make_unique<ZeroTuneModel>(config);
  ZT_RETURN_IF_ERROR(model->Load(path));
  return model;
}

}  // namespace zerotune::core
