#ifndef ZEROTUNE_CORE_BATCH_INFERENCE_H_
#define ZEROTUNE_CORE_BATCH_INFERENCE_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cost_predictor.h"
#include "core/model.h"

namespace zerotune::core {

/// Counters describing how much work one BatchedPredict call amortized;
/// reported by the perf benchmarks.
struct BatchInferenceStats {
  size_t plans = 0;
  /// Plans remaining after whole-candidate deduplication (identical
  /// feature graphs score once and the result fans out).
  size_t unique_plans = 0;
  /// Number of distinct (topology, cluster) structure groups found.
  /// Candidates enumerated for one query all land in one group.
  size_t structure_groups = 0;
  /// Rows actually pushed through the operator encoder MLP after
  /// deduplication vs. what a per-plan path would encode.
  size_t operator_rows_encoded = 0;
  size_t operator_rows_total = 0;
  /// Same for the resource encoder (one row per cluster node per plan in
  /// the naive path; typically one row per cluster node overall here).
  size_t resource_rows_encoded = 0;
  size_t resource_rows_total = 0;
};

/// Batched ZeroTune GNN inference over many candidate plans.
///
/// The paper's optimizer scores hundreds of what-if candidates per query
/// which share the same logical operators and cluster and differ only in
/// parallelism/mapping features. This engine amortizes that structure:
///  * featurization runs once per plan (in parallel over `pool`),
///  * operator/resource encoder inputs are deduplicated across the whole
///    batch and encoded in one row-batched MLP call each,
///  * plans with identical topology and cluster are grouped, the
///    resource-exchange stage runs once per group, and every message-
///    passing stage runs as row-batched matrix ops across the group's
///    candidates (sharded over `pool` in deterministic chunks).
///
/// Predictions are bit-identical to ZeroTuneModel::Predict on each plan,
/// independent of batch composition, chunking, and thread count.
Result<std::vector<CostPrediction>> BatchedPredict(
    const ZeroTuneModel& model,
    std::span<const dsp::ParallelQueryPlan* const> plans,
    zerotune::ThreadPool* pool = nullptr,
    BatchInferenceStats* stats = nullptr);

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_BATCH_INFERENCE_H_
