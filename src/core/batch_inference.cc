#include "core/batch_inference.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/features.h"
#include "core/plan_graph.h"
#include "nn/kernels.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/quantized.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zerotune::core {

namespace {

using nn::Matrix;

// FNV-1a over the byte representation of a double sequence, run as four
// interleaved streams so the 64-bit multiplies pipeline instead of
// forming one serial dependency chain (feature rows are ~50 words, and
// the interner hashes every row of every candidate). Bitwise matching is
// exactly what the intern/dedup transforms need: identical bytes
// guarantee identical downstream arithmetic, and featurization is
// deterministic so equal inputs produce equal bytes. Only dispersion
// matters — every table that uses this confirms bucket hits by comparing
// the full key bytes.
uint64_t HashDoubles(const double* p, size_t n, uint64_t seed) {
  constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t h0 = seed;
  uint64_t h1 = seed ^ 0x9E3779B97F4A7C15ull;
  uint64_t h2 = seed ^ 0xC2B2AE3D27D4EB4Full;
  uint64_t h3 = seed ^ 0x165667B19E3779F9ull;
  uint64_t w[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    std::memcpy(w, p + i, sizeof w);
    h0 = (h0 ^ w[0]) * kPrime;
    h1 = (h1 ^ w[1]) * kPrime;
    h2 = (h2 ^ w[2]) * kPrime;
    h3 = (h3 ^ w[3]) * kPrime;
  }
  for (; i < n; ++i) {
    std::memcpy(w, p + i, sizeof w[0]);
    h0 = (h0 ^ w[0]) * kPrime;
  }
  h0 = (h0 ^ h1) * kPrime;
  h0 = (h0 ^ h2) * kPrime;
  h0 = (h0 ^ h3) * kPrime;
  return h0;
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;

uint64_t HashInts(const int* p, size_t n, uint64_t seed) {
  uint64_t hsh = seed;
  for (size_t i = 0; i < n; ++i) {
    hsh ^= static_cast<uint64_t>(static_cast<uint32_t>(p[i]));
    hsh *= 1099511628211ull;
  }
  return hsh;
}

// Interns feature vectors so each distinct row is pushed through an
// encoder MLP exactly once per batch. Candidates enumerated for one query
// share most operator rows (only parallelism features vary) and all
// resource rows, so the win is large in the optimizer's hot loop. Rows
// are matched bitwise (hash bucket + memcmp), which is cheaper than the
// lexicographic compares of an ordered map on this hot path.
class RowInterner {
 public:
  size_t Intern(const std::vector<double>& row) {
    const uint64_t hsh = HashDoubles(row.data(), row.size(), kFnvOffset);
    auto& bucket = ids_[hsh];
    for (size_t id : bucket) {
      const std::vector<double>& have = rows_[id];
      if (have.size() == row.size() &&
          std::memcmp(have.data(), row.data(),
                      row.size() * sizeof(double)) == 0) {
        return id;
      }
    }
    const size_t id = rows_.size();
    rows_.push_back(row);
    bucket.push_back(id);
    return id;
  }

  size_t num_unique() const { return rows_.size(); }

  // Unique rows stacked in first-seen order, ready for one batched
  // encoder call. Empty matrix when nothing was interned.
  Matrix Stacked() const {
    if (rows_.empty()) return Matrix();
    Matrix out(rows_.size(), rows_[0].size());
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::memcpy(out.data() + r * out.cols(), rows_[r].data(),
                  rows_[r].size() * sizeof(double));
    }
    return out;
  }

 private:
  std::unordered_map<uint64_t, std::vector<size_t>> ids_;
  std::vector<std::vector<double>> rows_;
};

// Plans whose graphs share topology (operator DAG + sink) and cluster
// encoding share the resource-exchange stage and are row-batched through
// every operator-side stage. res_state holds the shared exchange output
// in the precision the batch runs at (exactly one of the two is filled).
struct Group {
  std::vector<size_t> members;       // indices into `plans` / `graphs`
  std::vector<size_t> res_row_ids;   // interned resource rows
  const PlanGraph* shape = nullptr;  // representative graph (topology)
  Matrix res_state;                  // n_res × h (fp64 batches)
  nn::FloatBuffer res_state_f32;     // n_res × h (quantized batches)
};

// Pointer to the start of row `r` (Matrix is row-major; the const
// accessor returns by value, so element addresses go through data()).
const double* RowPtr(const Matrix& m, size_t r) {
  return m.data() + r * m.cols();
}

// Copies `src_cols` doubles from `src` into row `r` of `dst` starting at
// column `col0` — the value side of nn::ConcatCols.
void CopyIntoRow(Matrix& dst, size_t r, size_t col0, const double* src,
                 size_t src_cols) {
  std::memcpy(dst.data() + r * dst.cols() + col0, src,
              src_cols * sizeof(double));
}

// Mean of selected rows, written into row `r` of `dst` at `col0`.
// kernels::MeanRowsF64 replicates nn::MeanAll's value in both kernel
// implementations: sum in the given order, then multiply by 1/n —
// bit-identical to the sequential forward pass.
void MeanIntoRow(Matrix& dst, size_t r, size_t col0,
                 const std::vector<const double*>& rows, size_t cols) {
  nn::kernels::MeanRowsF64(dst.data() + r * dst.cols() + col0, rows.data(),
                           rows.size(), cols);
}

// Owns the per-batch quantized conversions when precision != kFp64.
struct QuantizedBlocks {
  nn::QuantizedMlp op_encoder;
  nn::QuantizedMlp res_encoder;
  nn::QuantizedMlp flow_update;
  nn::QuantizedMlp res_update;
  nn::QuantizedMlp map_message;
  nn::QuantizedMlp map_update;
  nn::QuantizedMlp flow_update2;
  nn::QuantizedMlp readout;

  static QuantizedBlocks From(const ZeroTuneModel::GnnBlocks& b,
                              nn::QuantKind kind) {
    return QuantizedBlocks{
        nn::QuantizedMlp::FromMlp(*b.op_encoder, kind),
        nn::QuantizedMlp::FromMlp(*b.res_encoder, kind),
        nn::QuantizedMlp::FromMlp(*b.flow_update, kind),
        nn::QuantizedMlp::FromMlp(*b.res_update, kind),
        nn::QuantizedMlp::FromMlp(*b.map_message, kind),
        nn::QuantizedMlp::FromMlp(*b.map_update, kind),
        nn::QuantizedMlp::FromMlp(*b.flow_update2, kind),
        nn::QuantizedMlp::FromMlp(*b.readout, kind),
    };
  }
};

// Interns variable-length uint32 keys: equal keys get equal ids, handed
// out densely in first-seen order. The message-passing stages build keys
// from content-unique ids (interned encoder rows, previous-stage state
// ids, unique message ids), so equal keys are *guaranteed* to name
// bitwise-identical input rows — dedup by key never merges rows that
// differ. Distinct keys for coincidentally equal rows only cost a
// redundant MLP row, never a wrong result. Compared with hashing the
// 2h-double input rows per stage (the previous design), keys are a few
// words long, and no B-row input assembly or output scatter is needed.
class IntKeyInterner {
 public:
  /// Prepares the table for up to `expected` inserts, discarding all
  /// previously interned keys. Reuses the slot array across calls (a
  /// generation counter marks live slots), so a chunk's dozens of
  /// per-operator dedup rounds cost zero allocations after the first.
  void Reset(size_t expected) {
    size_t cap = 16;
    while (cap < 2 * expected) cap <<= 1;  // load factor ≤ 0.5
    if (slots_.size() < cap) slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    if (gen_ == UINT32_MAX) {  // wrap: wipe stale generations
      std::fill(slots_.begin(), slots_.end(), Slot{});
      gen_ = 0;
    }
    ++gen_;
    keys_.clear();
    spans_.clear();
  }

  uint32_t Intern(const uint32_t* key, size_t len) {
    uint64_t hsh = kFnvOffset;
    for (size_t i = 0; i < len; ++i) {
      hsh = (hsh ^ key[i]) * 1099511628211ull;
    }
    // FNV's low bits are weak for power-of-two tables; fold in the top.
    size_t idx = static_cast<size_t>(hsh ^ (hsh >> 32)) & mask_;
    for (;; idx = (idx + 1) & mask_) {
      Slot& s = slots_[idx];
      if (s.gen != gen_) {  // free slot: first time this key is seen
        const auto uid = static_cast<uint32_t>(spans_.size());
        s.gen = gen_;
        s.hash = hsh;
        s.uid = uid;
        spans_.push_back(Span{static_cast<uint32_t>(keys_.size()),
                              static_cast<uint32_t>(len)});
        keys_.insert(keys_.end(), key, key + len);
        return uid;
      }
      if (s.hash != hsh) continue;
      const Span sp = spans_[s.uid];
      if (sp.len == len &&
          std::memcmp(keys_.data() + sp.off, key,
                      len * sizeof(uint32_t)) == 0) {
        return s.uid;
      }
    }
  }

  size_t num_unique() const { return spans_.size(); }

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t gen = 0;
    uint32_t uid = 0;
  };
  struct Span {
    uint32_t off, len;
  };
  std::vector<Slot> slots_;  // open addressing, linear probing
  size_t mask_ = 0;
  uint32_t gen_ = 0;
  std::vector<uint32_t> keys_;  // interned keys back to back
  std::vector<Span> spans_;
};

// One message-passing stage's dedup result for a chunk: candidate b's
// state is unique row remap[b], and unique row u was first produced by
// candidate uniq_rep[u] (whose inputs the executor reads to assemble it).
struct StageDedup {
  std::vector<uint32_t> remap;     // candidate -> unique row index
  std::vector<uint32_t> uniq_rep;  // unique row -> representative candidate
};

// The integer skeleton of one chunk's message passing: which rows are
// distinct at every stage and how candidates map onto them. Built once
// per chunk from interned ids only — no floating-point data is touched —
// and then executed at either precision. Keys are content-unique ids, so
// equal keys guarantee bitwise-identical stage inputs at fp64 (and
// identical fp32 inputs after rounding, since rounding is a function of
// the bits).
struct ChunkPlan {
  size_t B = 0;
  std::vector<StageDedup> flow;    // stage 1, per operator
  std::vector<StageDedup> mapped;  // stage 3b, per operator
  std::vector<StageDedup> flow2;   // stage 4, per operator
  // Unique mapping edges across the chunk (stage 3a) and, per
  // (candidate, operator) in CSR layout, the incoming unique-message ids
  // in mapping-edge order — the order Forward() pushes them into the
  // mean.
  std::vector<const PlanGraph::MappingEdge*> uniq_edges;
  std::vector<uint32_t> inc_off;  // B*n_ops+1 offsets into inc_uids
  std::vector<uint32_t> inc_uids;
};

ChunkPlan BuildChunkPlan(const Group& group, size_t begin, size_t end,
                         const std::vector<PlanGraph>& graphs,
                         const std::vector<std::vector<size_t>>& op_row_ids) {
  const PlanGraph& shape = *group.shape;
  const size_t n_ops = shape.num_operators();
  const size_t B = end - begin;
  ChunkPlan plan;
  plan.B = B;
  plan.flow.resize(n_ops);
  plan.mapped.resize(n_ops);
  plan.flow2.resize(n_ops);

  std::vector<uint32_t> key;  // scratch: current candidate's key
  IntKeyInterner keys;        // reused across every dedup round below

  // Stage 1: bottom-up data-flow pass. A candidate's state row is
  // determined by its interned encoder row and its upstream state ids,
  // so that integer tuple is the dedup key.
  for (int id : shape.topo_order) {
    const auto& ups = shape.operator_upstreams[static_cast<size_t>(id)];
    const size_t klen = 1 + ups.size();
    keys.Reset(B);
    StageDedup& sd = plan.flow[static_cast<size_t>(id)];
    sd.remap.resize(B);
    key.resize(klen);
    for (size_t b = 0; b < B; ++b) {
      const size_t pl = group.members[begin + b];
      key[0] =
          static_cast<uint32_t>(op_row_ids[pl][static_cast<size_t>(id)]);
      for (size_t j = 0; j < ups.size(); ++j) {
        key[1 + j] = plan.flow[static_cast<size_t>(ups[j])].remap[b];
      }
      const uint32_t uid = keys.Intern(key.data(), klen);
      if (uid == sd.uniq_rep.size()) {
        sd.uniq_rep.push_back(static_cast<uint32_t>(b));
      }
      sd.remap[b] = uid;
    }
  }

  // Stage 3a: mapping messages. A message row is determined by the
  // resource index (which names the shared res_state row) and the edge's
  // feature bytes, so edges dedup on that pair across the whole chunk.
  // The key packs the index plus the raw feature words — bitwise feature
  // equality is exactly word equality, so the interner's compare matches
  // the row-level dedup semantics.
  std::vector<uint32_t> edge_uid;  // per (candidate, edge), in edge order
  std::vector<size_t> edge_off(B + 1, 0);
  {
    assert(FeatureEncoder::MappingDim() == 2 &&
           "edge key packing assumes 2 mapping features");
    keys.Reset(B * 16);
    uint32_t ekey[1 + 2 * 2];
    for (size_t b = 0; b < B; ++b) {
      edge_off[b] = edge_uid.size();
      const PlanGraph& g = graphs[group.members[begin + b]];
      for (const PlanGraph::MappingEdge& e : g.mapping_edges) {
        ekey[0] = static_cast<uint32_t>(e.resource_index);
        std::memcpy(ekey + 1, e.features.data(), 2 * sizeof(double));
        const uint32_t uid = keys.Intern(ekey, 5);
        if (uid == plan.uniq_edges.size()) plan.uniq_edges.push_back(&e);
        edge_uid.push_back(uid);
      }
    }
    edge_off[B] = edge_uid.size();
  }

  // CSR of incoming unique-message ids per (candidate, operator).
  plan.inc_off.assign(B * n_ops + 1, 0);
  plan.inc_uids.resize(edge_uid.size());
  {
    for (size_t b = 0; b < B; ++b) {
      const PlanGraph& g = graphs[group.members[begin + b]];
      for (const PlanGraph::MappingEdge& e : g.mapping_edges) {
        ++plan.inc_off[b * n_ops + static_cast<size_t>(e.operator_index) + 1];
      }
    }
    for (size_t i = 1; i <= B * n_ops; ++i) {
      plan.inc_off[i] += plan.inc_off[i - 1];
    }
    std::vector<uint32_t> cursor(plan.inc_off.begin(), plan.inc_off.end() - 1);
    for (size_t b = 0; b < B; ++b) {
      const PlanGraph& g = graphs[group.members[begin + b]];
      size_t pos = edge_off[b];
      for (const PlanGraph::MappingEdge& e : g.mapping_edges) {
        plan.inc_uids[cursor[b * n_ops +
                             static_cast<size_t>(e.operator_index)]++] =
            edge_uid[pos++];
      }
    }
  }

  // Stage 3b: residual map_update per operator. Key = (state id,
  // incoming message ids in edge order); the residual sum shares the
  // update's remap because the key pins the state id.
  for (size_t i = 0; i < n_ops; ++i) {
    keys.Reset(B);
    StageDedup& sd = plan.mapped[i];
    sd.remap.resize(B);
    for (size_t b = 0; b < B; ++b) {
      const uint32_t lo = plan.inc_off[b * n_ops + i];
      const uint32_t hi = plan.inc_off[b * n_ops + i + 1];
      key.clear();
      key.push_back(plan.flow[i].remap[b]);
      key.insert(key.end(), plan.inc_uids.begin() + lo,
                 plan.inc_uids.begin() + hi);
      const uint32_t uid = keys.Intern(key.data(), key.size());
      if (uid == sd.uniq_rep.size()) {
        sd.uniq_rep.push_back(static_cast<uint32_t>(b));
      }
      sd.remap[b] = uid;
    }
  }

  // Stage 4: second bottom-up pass, same key shape as stage 1 with the
  // mapped ids in place of encoder rows.
  for (int id : shape.topo_order) {
    const auto& ups = shape.operator_upstreams[static_cast<size_t>(id)];
    const size_t klen = 1 + ups.size();
    keys.Reset(B);
    StageDedup& sd = plan.flow2[static_cast<size_t>(id)];
    sd.remap.resize(B);
    key.resize(klen);
    for (size_t b = 0; b < B; ++b) {
      key[0] = plan.mapped[static_cast<size_t>(id)].remap[b];
      for (size_t j = 0; j < ups.size(); ++j) {
        key[1 + j] = plan.flow2[static_cast<size_t>(ups[j])].remap[b];
      }
      const uint32_t uid = keys.Intern(key.data(), klen);
      if (uid == sd.uniq_rep.size()) {
        sd.uniq_rep.push_back(static_cast<uint32_t>(b));
      }
      sd.remap[b] = uid;
    }
  }

  return plan;
}

// The five MLP blocks an executor forwards through (encoders run before
// chunking, res_update runs per group).
enum class Block { kFlowUpdate, kMapMessage, kMapUpdate, kFlowUpdate2,
                   kReadout };

// fp64 execution: nn::Matrix buffers and the model's own Mlps. This path
// replicates the sequential Forward() arithmetic bit for bit (see the
// kernel numerics contract), which the exact-equality tests in
// tests/predict_batch_test.cc pin down.
struct F64Engine {
  using Scalar = double;
  using Buf = Matrix;

  const ZeroTuneModel::GnnBlocks& blocks;
  const Matrix& op_encoded;
  const Matrix& res_state;

  static Buf Alloc(size_t rows, size_t cols, bool zero) {
    return zero ? Matrix(rows, cols) : Matrix::Uninitialized(rows, cols);
  }
  static double* Row(Buf& m, size_t r) { return m.data() + r * m.cols(); }
  static const double* Row(const Buf& m, size_t r) {
    return m.data() + r * m.cols();
  }
  const double* OpRow(size_t row_id) const {
    return RowPtr(op_encoded, row_id);
  }
  const double* ResStateRow(size_t idx) const {
    return RowPtr(res_state, idx);
  }
  static void CopyRow(double* dst, const double* src, size_t n) {
    std::memcpy(dst, src, n * sizeof(double));
  }
  static void LoadMapFeatures(double* dst,
                              const std::array<double, 2>& f) {
    dst[0] = f[0];
    dst[1] = f[1];
  }
  static void Mean(double* dst, const double* const* rows, size_t count,
                   size_t n) {
    nn::kernels::MeanRowsF64(dst, rows, count, n);
  }
  static void Add(double* acc, const double* x, size_t n) {
    nn::kernels::AddF64(acc, x, n);
  }
  Buf Forward(Block blk, Buf&& in) const {
    switch (blk) {
      case Block::kFlowUpdate:
        return blocks.flow_update->ForwardValue(std::move(in));
      case Block::kMapMessage:
        return blocks.map_message->ForwardValue(std::move(in));
      case Block::kMapUpdate:
        return blocks.map_update->ForwardValue(std::move(in));
      case Block::kFlowUpdate2:
        return blocks.flow_update2->ForwardValue(std::move(in));
      case Block::kReadout:
        return blocks.readout->ForwardValue(std::move(in));
    }
    return Matrix();
  }
  static CostPrediction Decode(const ZeroTuneModel& model, const Buf& m,
                               size_t r) {
    Matrix row = Matrix::Uninitialized(1, m.cols());
    CopyRow(row.data(), Row(m, r), m.cols());
    return model.DecodeOutput(row);
  }
};

// fp32 execution: flat float buffers and QuantizedMlp::ForwardRows — the
// whole message-passing state stays in fp32, so the only fp64 work per
// chunk is decoding one readout row per distinct sink state. Serves both
// quantized kinds (kInt8 keeps fp32 activations).
struct F32Engine {
  using Scalar = float;
  struct Buf {
    nn::FloatBuffer v;
    size_t cols = 0;
  };

  const QuantizedBlocks& blocks;
  const nn::FloatBuffer& op_encoded;  // h floats per unique operator row
  const nn::FloatBuffer& res_state;   // h floats per resource
  size_t h = 0;

  static Buf Alloc(size_t rows, size_t cols, bool zero) {
    // `zero` marks buffers whose ZeroState halves are read before being
    // written; everything else is fully overwritten by the assembly
    // loops, so FloatBuffer skips the fill.
    Buf b;
    b.cols = cols;
    if (zero) {
      b.v.assign(rows * cols, 0.0f);
    } else {
      b.v.resize(rows * cols);
    }
    return b;
  }
  static float* Row(Buf& b, size_t r) { return b.v.data() + r * b.cols; }
  static const float* Row(const Buf& b, size_t r) {
    return b.v.data() + r * b.cols;
  }
  const float* OpRow(size_t row_id) const {
    return op_encoded.data() + row_id * h;
  }
  const float* ResStateRow(size_t idx) const {
    return res_state.data() + idx * h;
  }
  static void CopyRow(float* dst, const float* src, size_t n) {
    std::memcpy(dst, src, n * sizeof(float));
  }
  static void LoadMapFeatures(float* dst, const std::array<double, 2>& f) {
    dst[0] = static_cast<float>(f[0]);
    dst[1] = static_cast<float>(f[1]);
  }
  static void Mean(float* dst, const float* const* rows, size_t count,
                   size_t n) {
    nn::kernels::MeanRowsF32(dst, rows, count, n);
  }
  static void Add(float* acc, const float* x, size_t n) {
    nn::kernels::AddF32(acc, x, n);
  }
  Buf Forward(Block blk, Buf&& in) const {
    const nn::QuantizedMlp* mlp = nullptr;
    switch (blk) {
      case Block::kFlowUpdate:
        mlp = &blocks.flow_update;
        break;
      case Block::kMapMessage:
        mlp = &blocks.map_message;
        break;
      case Block::kMapUpdate:
        mlp = &blocks.map_update;
        break;
      case Block::kFlowUpdate2:
        mlp = &blocks.flow_update2;
        break;
      case Block::kReadout:
        mlp = &blocks.readout;
        break;
    }
    Buf out;
    const size_t rows = in.cols > 0 ? in.v.size() / in.cols : 0;
    mlp->ForwardRows(in.v.data(), rows, &out.v);
    out.cols = mlp->out_features();
    return out;
  }
  static CostPrediction Decode(const ZeroTuneModel& model, const Buf& b,
                               size_t r) {
    Matrix row = Matrix::Uninitialized(1, b.cols);
    const float* src = Row(b, r);
    for (size_t c = 0; c < b.cols; ++c) {
      row.data()[c] = static_cast<double>(src[c]);
    }
    return model.DecodeOutput(row);
  }
};

// Shared resource-node exchange (Forward() stage 2). Depends only on the
// cluster encoding, so it runs once per structure group regardless of how
// many candidates the group holds.
Matrix ComputeResourceState(const ZeroTuneModel::GnnBlocks& blocks,
                            const Matrix& res_encoded,
                            const std::vector<size_t>& res_row_ids,
                            size_t h) {
  const size_t n_res = res_row_ids.size();
  Matrix input(n_res, 2 * h);
  std::vector<const double*> peers;
  for (size_t i = 0; i < n_res; ++i) {
    const double* self = RowPtr(res_encoded, res_row_ids[i]);
    CopyIntoRow(input, i, 0, self, h);
    if (n_res > 1) {
      peers.clear();
      for (size_t j = 0; j < n_res; ++j) {
        if (j != i) peers.push_back(RowPtr(res_encoded, res_row_ids[j]));
      }
      MeanIntoRow(input, i, h, peers, h);
    }  // else: peer message stays zero (ZeroState)
  }
  return blocks.res_update->ForwardValue(std::move(input));
}

// fp32 twin of ComputeResourceState over flat buffers.
nn::FloatBuffer ComputeResourceStateF32(
    const QuantizedBlocks& blocks, const nn::FloatBuffer& res_encoded,
    const std::vector<size_t>& res_row_ids, size_t h) {
  const size_t n_res = res_row_ids.size();
  // Explicitly zeroed: the peer half stays ZeroState when n_res == 1.
  nn::FloatBuffer input(n_res * 2 * h, 0.0f);
  std::vector<const float*> peers;
  for (size_t i = 0; i < n_res; ++i) {
    const float* self = res_encoded.data() + res_row_ids[i] * h;
    std::memcpy(input.data() + i * 2 * h, self, h * sizeof(float));
    if (n_res > 1) {
      peers.clear();
      for (size_t j = 0; j < n_res; ++j) {
        if (j != i) peers.push_back(res_encoded.data() + res_row_ids[j] * h);
      }
      nn::kernels::MeanRowsF32(input.data() + i * 2 * h + h, peers.data(),
                               peers.size(), h);
    }
  }
  nn::FloatBuffer out;
  blocks.res_update.ForwardRows(input.data(), n_res, &out);
  return out;
}

// Runs one chunk's message passing + readout at the engine's precision,
// assembling only the distinct rows the ChunkPlan identified. Per-row
// arithmetic never crosses rows, so results are independent of how
// members are chunked across threads.
template <typename Engine>
void ExecuteChunk(const Engine& eng, const ChunkPlan& plan,
                  const ZeroTuneModel& model, const Group& group,
                  size_t begin,
                  const std::vector<std::vector<size_t>>& op_row_ids,
                  size_t h, std::vector<CostPrediction>& out) {
  using Buf = typename Engine::Buf;
  using T = typename Engine::Scalar;
  const PlanGraph& shape = *group.shape;
  const size_t n_ops = shape.num_operators();
  const size_t B = plan.B;

  // optional<> so the span can end exactly where message passing hands
  // off to the readout below.
  std::optional<obs::Span> mp_span;
  mp_span.emplace("batch_inference/message_passing");
  mp_span->AddArg("candidates", std::to_string(B));
  std::optional<obs::Span> stage_span;
  std::vector<const T*> rows;  // scratch: mean inputs

  // Stage 1: bottom-up data-flow pass over the distinct rows.
  stage_span.emplace("batch_inference/mp_flow");
  std::vector<Buf> state(n_ops);
  for (int id : shape.topo_order) {
    const auto& ups = shape.operator_upstreams[static_cast<size_t>(id)];
    const StageDedup& sd = plan.flow[static_cast<size_t>(id)];
    const size_t uniq = sd.uniq_rep.size();
    // Sources keep the zero-filled upstream half (ZeroState); with
    // upstreams every element is written, so skip the fill.
    Buf input = Engine::Alloc(uniq, 2 * h, ups.empty());
    for (size_t u = 0; u < uniq; ++u) {
      const size_t b = sd.uniq_rep[u];
      const size_t pl = group.members[begin + b];
      T* dst = Engine::Row(input, u);
      Engine::CopyRow(dst, eng.OpRow(op_row_ids[pl][static_cast<size_t>(id)]),
                      h);
      if (!ups.empty()) {
        rows.clear();
        for (int up : ups) {
          rows.push_back(Engine::Row(state[static_cast<size_t>(up)],
                                     plan.flow[static_cast<size_t>(up)]
                                         .remap[b]));
        }
        Engine::Mean(dst + h, rows.data(), rows.size(), h);
      }
    }
    obs::Span mlp_span("batch_inference/mp_mlp");
    state[static_cast<size_t>(id)] =
        eng.Forward(Block::kFlowUpdate, std::move(input));
  }

  // Stage 3a: forward each distinct mapping message once.
  stage_span.emplace("batch_inference/mp_map_message");
  Buf messages{};
  if (!plan.uniq_edges.empty()) {
    const size_t map_dim = FeatureEncoder::MappingDim();
    Buf edge_in = Engine::Alloc(plan.uniq_edges.size(), h + map_dim, false);
    for (size_t u = 0; u < plan.uniq_edges.size(); ++u) {
      const PlanGraph::MappingEdge& e = *plan.uniq_edges[u];
      T* dst = Engine::Row(edge_in, u);
      Engine::CopyRow(dst,
                      eng.ResStateRow(static_cast<size_t>(e.resource_index)),
                      h);
      Engine::LoadMapFeatures(dst + h, e.features);
    }
    obs::Span mlp_span("batch_inference/mp_mlp");
    messages = eng.Forward(Block::kMapMessage, std::move(edge_in));
  }

  // Stage 3b: residual map_update per operator.
  stage_span.emplace("batch_inference/mp_map_update");
  std::vector<Buf> mapped(n_ops);
  for (size_t i = 0; i < n_ops; ++i) {
    const StageDedup& sd = plan.mapped[i];
    const size_t uniq = sd.uniq_rep.size();
    // Zero message half when no incoming edges.
    Buf input = Engine::Alloc(uniq, 2 * h, true);
    for (size_t u = 0; u < uniq; ++u) {
      const size_t b = sd.uniq_rep[u];
      T* dst = Engine::Row(input, u);
      Engine::CopyRow(dst, Engine::Row(state[i], plan.flow[i].remap[b]), h);
      const uint32_t lo = plan.inc_off[b * n_ops + i];
      const uint32_t hi = plan.inc_off[b * n_ops + i + 1];
      if (lo != hi) {
        rows.clear();
        for (uint32_t e = lo; e < hi; ++e) {
          rows.push_back(Engine::Row(messages, plan.inc_uids[e]));
        }
        Engine::Mean(dst + h, rows.data(), rows.size(), h);
      }
    }
    Buf upd;
    {
      obs::Span mlp_span("batch_inference/mp_mlp");
      upd = eng.Forward(Block::kMapUpdate, std::move(input));
    }
    Buf res = Engine::Alloc(uniq, h, false);
    for (size_t u = 0; u < uniq; ++u) {
      const size_t b = sd.uniq_rep[u];
      T* drow = Engine::Row(res, u);
      Engine::CopyRow(drow, Engine::Row(state[i], plan.flow[i].remap[b]), h);
      Engine::Add(drow, Engine::Row(upd, u), h);  // residual
    }
    mapped[i] = std::move(res);
  }

  // Stage 4: second bottom-up pass over the resource-aware states.
  stage_span.emplace("batch_inference/mp_flow2");
  std::vector<Buf> final_state(n_ops);
  for (int id : shape.topo_order) {
    const auto& ups = shape.operator_upstreams[static_cast<size_t>(id)];
    const StageDedup& sd = plan.flow2[static_cast<size_t>(id)];
    const size_t uniq = sd.uniq_rep.size();
    Buf input = Engine::Alloc(uniq, 2 * h, ups.empty());
    const std::vector<uint32_t>& mp_remap =
        plan.mapped[static_cast<size_t>(id)].remap;
    for (size_t u = 0; u < uniq; ++u) {
      const size_t b = sd.uniq_rep[u];
      T* dst = Engine::Row(input, u);
      Engine::CopyRow(
          dst, Engine::Row(mapped[static_cast<size_t>(id)], mp_remap[b]), h);
      if (!ups.empty()) {
        rows.clear();
        for (int up : ups) {
          rows.push_back(Engine::Row(final_state[static_cast<size_t>(up)],
                                     plan.flow2[static_cast<size_t>(up)]
                                         .remap[b]));
        }
        Engine::Mean(dst + h, rows.data(), rows.size(), h);
      }
    }
    Buf upd;
    {
      obs::Span mlp_span("batch_inference/mp_mlp");
      upd = eng.Forward(Block::kFlowUpdate2, std::move(input));
    }
    Buf res = Engine::Alloc(uniq, h, false);
    for (size_t u = 0; u < uniq; ++u) {
      const size_t b = sd.uniq_rep[u];
      T* drow = Engine::Row(res, u);
      Engine::CopyRow(
          drow, Engine::Row(mapped[static_cast<size_t>(id)], mp_remap[b]), h);
      Engine::Add(drow, Engine::Row(upd, u), h);  // residual
    }
    final_state[static_cast<size_t>(id)] = std::move(res);
  }

  stage_span.reset();
  mp_span.reset();
  obs::Span readout_span("batch_inference/readout");
  readout_span.AddArg("candidates", std::to_string(B));

  // Readout at the sink: forward and decode each distinct sink state
  // once, then fan the decoded predictions out to the candidates.
  const StageDedup& sink = plan.flow2[static_cast<size_t>(shape.sink_index)];
  Buf readout =
      eng.Forward(Block::kReadout,
                  std::move(final_state[static_cast<size_t>(shape.sink_index)]));
  std::vector<CostPrediction> decoded(sink.uniq_rep.size());
  for (size_t u = 0; u < decoded.size(); ++u) {
    decoded[u] = Engine::Decode(model, readout, u);
  }
  for (size_t b = 0; b < B; ++b) {
    out[group.members[begin + b]] = decoded[sink.remap[b]];
  }
}

// Scores members [begin, end) of one structure group and writes the
// decoded predictions into `out` at each member's original plan index.
void ScoreChunk(const ZeroTuneModel& model,
                const ZeroTuneModel::GnnBlocks& raw,
                const QuantizedBlocks* quant, const Matrix& op_encoded,
                const nn::FloatBuffer& op_encoded_f32, const Group& group,
                size_t begin, size_t end,
                const std::vector<PlanGraph>& graphs,
                const std::vector<std::vector<size_t>>& op_row_ids,
                std::vector<CostPrediction>& out) {
  const size_t h = model.config().hidden_dim;
  ChunkPlan plan;
  {
    obs::Span span("batch_inference/mp_plan");
    plan = BuildChunkPlan(group, begin, end, graphs, op_row_ids);
  }
  if (quant != nullptr) {
    const F32Engine eng{*quant, op_encoded_f32, group.res_state_f32, h};
    ExecuteChunk(eng, plan, model, group, begin, op_row_ids, h, out);
  } else {
    const F64Engine eng{raw, op_encoded, group.res_state};
    ExecuteChunk(eng, plan, model, group, begin, op_row_ids, h, out);
  }
}

// Stacks `interner`'s unique rows, narrows them to fp32 and runs them
// through a quantized encoder in one batched call.
nn::FloatBuffer EncodeStackedF32(const nn::QuantizedMlp& encoder,
                                 const RowInterner& interner) {
  if (interner.num_unique() == 0) return {};
  const Matrix stacked = interner.Stacked();
  nn::FloatBuffer in(stacked.size());
  for (size_t i = 0; i < stacked.size(); ++i) {
    in[i] = static_cast<float>(stacked.data()[i]);
  }
  nn::FloatBuffer out;
  encoder.ForwardRows(in.data(), stacked.rows(), &out);
  return out;
}

}  // namespace

Result<std::vector<CostPrediction>> BatchedPredict(
    const ZeroTuneModel& model,
    std::span<const dsp::ParallelQueryPlan* const> plans,
    zerotune::ThreadPool* pool, BatchInferenceStats* stats) {
  if (stats) *stats = BatchInferenceStats{};
  const size_t n = plans.size();
  std::vector<CostPrediction> out(n);
  if (n == 0) return out;

  obs::Span batch_span("batch_inference/predict");
  batch_span.AddArg("plans", std::to_string(n));
  auto* metrics = obs::MetricsRegistry::Global();
  metrics->GetCounter("batch_inference.batches_total")->Increment();
  metrics->GetCounter("batch_inference.plans_total")->Increment(n);
  metrics->GetHistogram("batch_inference.batch_size", {}, 1.0, 1e6)
      ->Record(static_cast<double>(n));

  // Validation stays sequential so the reported failing index is the
  // first bad plan, matching the per-plan fallback path.
  {
    obs::Span span("batch_inference/validate");
    for (size_t i = 0; i < n; ++i) {
      if (plans[i] == nullptr) {
        return Status::InvalidArgument("PredictBatch: plan #" +
                                       std::to_string(i) + " is null");
      }
      Status s = plans[i]->Validate();
      if (!s.ok()) {
        return s.Annotated("PredictBatch: plan #" + std::to_string(i) +
                           " of " + std::to_string(n) + " failed");
      }
    }
  }

  // Featurization (EstimatedInputRates et al.) dominates graph building
  // and is independent per plan — shard it over the pool.
  std::vector<PlanGraph> graphs(n);
  const FeatureConfig& features = model.config().features;
  {
    obs::Span span("batch_inference/featurize");
    ParallelFor(pool, n, [&](size_t i) {
      graphs[i] = BuildPlanGraph(*plans[i], features);
    });
  }

  // Intern encoder inputs across the whole batch and encode each unique
  // row exactly once, in two row-batched MLP calls.
  RowInterner op_rows, res_rows;
  std::vector<std::vector<size_t>> op_row_ids(n);
  std::vector<std::vector<size_t>> res_row_ids(n);
  size_t op_total = 0, res_total = 0;
  {
    obs::Span span("batch_inference/intern");
    for (size_t i = 0; i < n; ++i) {
      op_row_ids[i].reserve(graphs[i].num_operators());
      for (const auto& f : graphs[i].operator_features) {
        op_row_ids[i].push_back(op_rows.Intern(f));
      }
      res_row_ids[i].reserve(graphs[i].num_resources());
      for (const auto& f : graphs[i].resource_features) {
        res_row_ids[i].push_back(res_rows.Intern(f));
      }
      op_total += graphs[i].num_operators();
      res_total += graphs[i].num_resources();
    }
  }
  // View the blocks at the configured inference precision. Quantized
  // conversion snapshots the current parameters per batch (~hidden_dim²
  // floats per block), which is noise next to scoring even one candidate
  // and keeps the quantized view coherent with online weight updates.
  const ZeroTuneModel::GnnBlocks raw = model.blocks();
  const InferencePrecision precision = model.config().precision;
  std::optional<QuantizedBlocks> quant;
  if (precision != InferencePrecision::kFp64) {
    obs::Span span("batch_inference/quantize_blocks");
    quant.emplace(QuantizedBlocks::From(
        raw, precision == InferencePrecision::kInt8 ? nn::QuantKind::kInt8
                                                    : nn::QuantKind::kFp32));
  }
  batch_span.AddArg("precision", InferencePrecisionName(precision));
  batch_span.AddArg("isa", nn::kernels::IsaName(nn::kernels::ActiveIsa()));

  // Encoder outputs in the precision the batch runs at: fp64 matrices
  // for the exact path, flat fp32 rows for the quantized engines (which
  // keep all downstream state in fp32 — see F32Engine).
  Matrix op_encoded, res_encoded;
  nn::FloatBuffer op_encoded_f32, res_encoded_f32;
  {
    obs::Span span("batch_inference/encode");
    if (quant.has_value()) {
      op_encoded_f32 = EncodeStackedF32(quant->op_encoder, op_rows);
      res_encoded_f32 = EncodeStackedF32(quant->res_encoder, res_rows);
    } else {
      if (op_rows.num_unique() > 0) {
        op_encoded = raw.op_encoder->ForwardValue(op_rows.Stacked());
      }
      if (res_rows.num_unique() > 0) {
        res_encoded = raw.res_encoder->ForwardValue(res_rows.Stacked());
      }
    }
  }

  // Dedup identical candidates wholesale: the prediction is a pure
  // function of the feature graph, so plans whose graphs match row-for-row
  // (structure, interned encoder rows, and mapping edges) score once and
  // the result fans out. Reconfiguration and multi-query scoring re-submit
  // overlapping candidate sets, where this collapses most of the batch.
  // Candidates are matched by hashing the full signature (FNV-1a) and
  // confirming field-by-field on bucket hits; mapping-edge features
  // compare bitwise, matching the row-level dedup semantics above.
  std::vector<size_t> canonical(n);
  std::vector<size_t> reps;
  {
    obs::Span span("batch_inference/dedup");
    auto sig_hash = [&](size_t i) {
      const PlanGraph& g = graphs[i];
      uint64_t hsh = kFnvOffset;
      for (size_t id : op_row_ids[i]) {
        hsh = (hsh ^ static_cast<uint64_t>(id)) * 1099511628211ull;
      }
      for (size_t id : res_row_ids[i]) {
        hsh = (hsh ^ static_cast<uint64_t>(id)) * 1099511628211ull;
      }
      hsh = HashInts(g.topo_order.data(), g.topo_order.size(), hsh);
      for (const auto& ups : g.operator_upstreams) {
        hsh = (hsh ^ (ups.size() + 1)) * 1099511628211ull;
        hsh = HashInts(ups.data(), ups.size(), hsh);
      }
      hsh = (hsh ^ static_cast<uint64_t>(
                       static_cast<uint32_t>(g.sink_index))) *
            1099511628211ull;
      for (const PlanGraph::MappingEdge& e : g.mapping_edges) {
        hsh = (hsh ^ static_cast<uint64_t>(
                         static_cast<uint32_t>(e.operator_index))) *
              1099511628211ull;
        hsh = (hsh ^ static_cast<uint64_t>(
                         static_cast<uint32_t>(e.resource_index))) *
              1099511628211ull;
        hsh = HashDoubles(e.features.data(), e.features.size(), hsh);
      }
      return hsh;
    };
    auto sig_equal = [&](size_t a, size_t b) {
      const PlanGraph& ga = graphs[a];
      const PlanGraph& gb = graphs[b];
      if (op_row_ids[a] != op_row_ids[b] ||
          res_row_ids[a] != res_row_ids[b] ||
          ga.sink_index != gb.sink_index || ga.topo_order != gb.topo_order ||
          ga.operator_upstreams != gb.operator_upstreams ||
          ga.mapping_edges.size() != gb.mapping_edges.size()) {
        return false;
      }
      for (size_t e = 0; e < ga.mapping_edges.size(); ++e) {
        const PlanGraph::MappingEdge& ea = ga.mapping_edges[e];
        const PlanGraph::MappingEdge& eb = gb.mapping_edges[e];
        if (ea.operator_index != eb.operator_index ||
            ea.resource_index != eb.resource_index ||
            std::memcmp(ea.features.data(), eb.features.data(),
                        ea.features.size() * sizeof(double)) != 0) {
          return false;
        }
      }
      return true;
    };
    std::unordered_map<uint64_t, std::vector<size_t>> seen;
    seen.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto& bucket = seen[sig_hash(i)];
      size_t rep = SIZE_MAX;
      for (size_t j : bucket) {
        if (sig_equal(i, j)) {
          rep = j;
          break;
        }
      }
      if (rep == SIZE_MAX) {
        rep = i;
        bucket.push_back(i);
        reps.push_back(i);
      }
      canonical[i] = rep;
    }
  }

  // Group the representative plans by structure so each group shares one
  // resource-exchange pass and row-batches the operator stages. Groups
  // are matched by hash + field-compare (like the dedup above) — cheaper
  // than an ordered map keyed on copies of the topology vectors.
  std::vector<Group> groups;
  {
    obs::Span span("batch_inference/group");
    auto group_hash = [&](size_t i) {
      const PlanGraph& g = graphs[i];
      uint64_t hsh = kFnvOffset;
      hsh = HashInts(g.topo_order.data(), g.topo_order.size(), hsh);
      for (const auto& ups : g.operator_upstreams) {
        hsh = (hsh ^ (ups.size() + 1)) * 1099511628211ull;
        hsh = HashInts(ups.data(), ups.size(), hsh);
      }
      hsh = (hsh ^ static_cast<uint64_t>(
                       static_cast<uint32_t>(g.sink_index))) *
            1099511628211ull;
      for (size_t id : res_row_ids[i]) {
        hsh = (hsh ^ static_cast<uint64_t>(id)) * 1099511628211ull;
      }
      return hsh;
    };
    auto group_matches = [&](size_t i, const Group& g) {
      const PlanGraph& a = graphs[i];
      const PlanGraph& b = *g.shape;
      return a.sink_index == b.sink_index && a.topo_order == b.topo_order &&
             a.operator_upstreams == b.operator_upstreams &&
             res_row_ids[i] == g.res_row_ids;
    };
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
    for (size_t i : reps) {
      auto& bucket = buckets[group_hash(i)];
      size_t gid = SIZE_MAX;
      for (size_t c : bucket) {
        if (group_matches(i, groups[c])) {
          gid = c;
          break;
        }
      }
      if (gid == SIZE_MAX) {
        gid = groups.size();
        Group g;
        g.res_row_ids = res_row_ids[i];
        g.shape = &graphs[i];
        groups.push_back(std::move(g));
        bucket.push_back(gid);
      }
      groups[gid].members.push_back(i);
    }
  }

  const size_t h = model.config().hidden_dim;
  {
    obs::Span span("batch_inference/resource_state");
    for (Group& g : groups) {
      if (g.res_row_ids.empty()) continue;
      if (quant.has_value()) {
        g.res_state_f32 =
            ComputeResourceStateF32(*quant, res_encoded_f32, g.res_row_ids, h);
      } else {
        g.res_state = ComputeResourceState(raw, res_encoded, g.res_row_ids, h);
      }
    }
  }

  metrics->GetCounter("batch_inference.unique_plans_total")
      ->Increment(reps.size());
  metrics->GetCounter("batch_inference.dedup_hits_total")
      ->Increment(n - reps.size());
  batch_span.AddArg("unique_plans", std::to_string(reps.size()));
  batch_span.AddArg("structure_groups", std::to_string(groups.size()));

  if (stats) {
    stats->plans = n;
    stats->unique_plans = reps.size();
    stats->structure_groups = groups.size();
    stats->operator_rows_encoded = op_rows.num_unique();
    stats->operator_rows_total = op_total;
    stats->resource_rows_encoded = res_rows.num_unique();
    stats->resource_rows_total = res_total;
  }

  // Shard each group's candidates into contiguous chunks. Without a pool
  // one chunk per group maximizes row-batch width; with a pool, chunks
  // target the worker count. Chunking never changes results — per-row
  // arithmetic is independent of which rows share a matrix.
  struct Chunk {
    size_t group, begin, end;
  };
  std::vector<Chunk> chunks;
  const size_t workers = pool != nullptr ? std::max<size_t>(pool->num_threads(), 1) : 1;
  for (size_t g = 0; g < groups.size(); ++g) {
    const size_t members = groups[g].members.size();
    const size_t chunk_size =
        workers > 1 ? std::max<size_t>((members + workers - 1) / workers, 4)
                    : members;
    for (size_t b = 0; b < members; b += chunk_size) {
      chunks.push_back(Chunk{g, b, std::min(b + chunk_size, members)});
    }
  }
  ParallelFor(pool, chunks.size(), [&](size_t c) {
    const Chunk& chunk = chunks[c];
    ScoreChunk(model, raw, quant.has_value() ? &*quant : nullptr, op_encoded,
               op_encoded_f32, groups[chunk.group], chunk.begin, chunk.end,
               graphs, op_row_ids, out);
  });

  // Fan scored representatives out to their duplicates.
  for (size_t i = 0; i < n; ++i) {
    if (canonical[i] != i) out[i] = out[canonical[i]];
  }

  return out;
}

}  // namespace zerotune::core
