#include "core/batch_inference.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "core/features.h"
#include "core/plan_graph.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zerotune::core {

namespace {

using nn::Matrix;

// Interns feature vectors so each distinct row is pushed through an
// encoder MLP exactly once per batch. Candidates enumerated for one query
// share most operator rows (only parallelism features vary) and all
// resource rows, so the win is large in the optimizer's hot loop.
class RowInterner {
 public:
  size_t Intern(const std::vector<double>& row) {
    auto [it, inserted] = ids_.emplace(row, rows_.size());
    if (inserted) rows_.push_back(&it->first);
    return it->second;
  }

  size_t num_unique() const { return rows_.size(); }

  // Unique rows stacked in first-seen order, ready for one batched
  // encoder call. Empty matrix when nothing was interned.
  Matrix Stacked() const {
    if (rows_.empty()) return Matrix();
    Matrix out(rows_.size(), rows_[0]->size());
    for (size_t r = 0; r < rows_.size(); ++r) {
      for (size_t c = 0; c < rows_[r]->size(); ++c) {
        out(r, c) = (*rows_[r])[c];
      }
    }
    return out;
  }

 private:
  std::map<std::vector<double>, size_t> ids_;
  std::vector<const std::vector<double>*> rows_;
};

// Plans whose graphs share topology (operator DAG + sink) and cluster
// encoding can share the resource-exchange stage and be row-batched
// through every operator-side stage.
using GroupKey = std::tuple<std::vector<int>,               // topo_order
                            std::vector<std::vector<int>>,  // upstreams
                            int,                            // sink_index
                            std::vector<size_t>>;           // resource row ids

struct Group {
  std::vector<size_t> members;       // indices into `plans` / `graphs`
  std::vector<size_t> res_row_ids;   // interned resource rows
  const PlanGraph* shape = nullptr;  // representative graph (topology)
  Matrix res_state;                  // n_res × h, shared by all members
};

// Pointer to the start of row `r` (Matrix is row-major; the const
// accessor returns by value, so element addresses go through data()).
const double* RowPtr(const Matrix& m, size_t r) {
  return m.data() + r * m.cols();
}

// Copies `src_cols` doubles from `src` into row `r` of `dst` starting at
// column `col0` — the value side of nn::ConcatCols.
void CopyIntoRow(Matrix& dst, size_t r, size_t col0, const double* src,
                 size_t src_cols) {
  for (size_t c = 0; c < src_cols; ++c) dst(r, col0 + c) = src[c];
}

// Mean of selected rows, written into row `r` of `dst` at `col0`.
// Replicates nn::MeanAll's value: sum in the given order, then multiply
// by 1/n — bit-identical to the sequential forward pass.
void MeanIntoRow(Matrix& dst, size_t r, size_t col0,
                 const std::vector<const double*>& rows, size_t cols) {
  const double inv = 1.0 / static_cast<double>(rows.size());
  for (size_t c = 0; c < cols; ++c) {
    double acc = rows[0][c];
    for (size_t i = 1; i < rows.size(); ++i) acc += rows[i][c];
    dst(r, col0 + c) = acc * inv;
  }
}

// Forwards only the unique rows of `input` through `mlp` and scatters the
// outputs back into place. Identical input rows produce identical output
// rows, so this is bit-identical to forwarding every row — but candidates
// in a batch share large parts of their message-passing state (operators
// whose upstream cone has the same degrees compute the same row), and
// those shared rows cost one MLP pass instead of one per candidate.
Matrix ForwardRowsDeduped(const nn::Mlp& mlp, Matrix input) {
  const size_t rows = input.rows();
  if (rows <= 1) return mlp.ForwardValue(std::move(input));
  const size_t cols = input.cols();
  // Rows are matched on their exact byte representation (FNV-1a over the
  // doubles, memcmp on collision) — cheaper than lexicographic map
  // compares and exactly what bit-identity requires.
  auto hash_row = [cols](const double* p) {
    uint64_t hsh = 1469598103934665603ull;
    for (size_t i = 0; i < cols; ++i) {
      uint64_t w;
      std::memcpy(&w, &p[i], sizeof w);
      hsh ^= w;
      hsh *= 1099511628211ull;
    }
    return hsh;
  };
  // hash -> [(representative row, unique id)]; collisions resolved by
  // byte comparison.
  std::unordered_map<uint64_t, std::vector<std::pair<size_t, size_t>>> ids;
  ids.reserve(rows);
  std::vector<size_t> remap(rows);
  size_t unique = 0;
  for (size_t r = 0; r < rows; ++r) {
    const double* src = input.data() + r * cols;
    auto& bucket = ids[hash_row(src)];
    size_t found = SIZE_MAX;
    for (const auto& [row0, uid] : bucket) {
      if (std::memcmp(src, input.data() + row0 * cols,
                      cols * sizeof(double)) == 0) {
        found = uid;
        break;
      }
    }
    if (found == SIZE_MAX) {
      found = unique++;
      bucket.emplace_back(r, found);
    }
    remap[r] = found;
  }
  if (unique == rows) return mlp.ForwardValue(std::move(input));
  Matrix compact(unique, cols);
  size_t next = 0;
  for (size_t r = 0; r < rows && next < unique; ++r) {
    if (remap[r] == next) {
      std::copy(input.data() + r * cols, input.data() + (r + 1) * cols,
                compact.data() + next * cols);
      ++next;
    }
  }
  const Matrix uniq_out = mlp.ForwardValue(std::move(compact));
  Matrix out(rows, uniq_out.cols());
  for (size_t r = 0; r < rows; ++r) {
    const double* src = uniq_out.data() + remap[r] * uniq_out.cols();
    std::copy(src, src + uniq_out.cols(), out.data() + r * out.cols());
  }
  return out;
}

// Shared resource-node exchange (Forward() stage 2). Depends only on the
// cluster encoding, so it runs once per structure group regardless of how
// many candidates the group holds.
Matrix ComputeResourceState(const ZeroTuneModel::GnnBlocks& blocks,
                            const Matrix& res_encoded,
                            const std::vector<size_t>& res_row_ids,
                            size_t h) {
  const size_t n_res = res_row_ids.size();
  Matrix input(n_res, 2 * h);
  std::vector<const double*> peers;
  for (size_t i = 0; i < n_res; ++i) {
    const double* self = RowPtr(res_encoded, res_row_ids[i]);
    CopyIntoRow(input, i, 0, self, h);
    if (n_res > 1) {
      peers.clear();
      for (size_t j = 0; j < n_res; ++j) {
        if (j != i) peers.push_back(RowPtr(res_encoded, res_row_ids[j]));
      }
      MeanIntoRow(input, i, h, peers, h);
    }  // else: peer message stays zero (ZeroState)
  }
  return blocks.res_update->ForwardValue(std::move(input));
}

// Scores members [begin, end) of one structure group and writes the
// decoded predictions into `out` at each member's original plan index.
// Per-row arithmetic never crosses rows, so results are independent of
// how members are chunked across threads.
void ScoreChunk(const ZeroTuneModel& model,
                const ZeroTuneModel::GnnBlocks& blocks, const Group& group,
                size_t begin, size_t end,
                const std::vector<PlanGraph>& graphs,
                const std::vector<std::vector<size_t>>& op_row_ids,
                const Matrix& op_encoded,
                std::vector<CostPrediction>& out) {
  const size_t h = model.config().hidden_dim;
  const PlanGraph& shape = *group.shape;
  const size_t n_ops = shape.num_operators();
  const size_t B = end - begin;

  // optional<> so the span can end exactly where message passing hands
  // off to the readout below.
  std::optional<obs::Span> mp_span;
  mp_span.emplace("batch_inference/message_passing");
  mp_span->AddArg("candidates", std::to_string(B));

  // Stage 1: bottom-up data-flow pass, one row-batched flow_update call
  // per operator across the chunk's candidates.
  std::vector<Matrix> state(n_ops);
  std::vector<const double*> rows;
  for (int id : shape.topo_order) {
    const auto& ups = shape.operator_upstreams[static_cast<size_t>(id)];
    Matrix input(B, 2 * h);
    for (size_t b = 0; b < B; ++b) {
      const size_t plan = group.members[begin + b];
      const size_t row = op_row_ids[plan][static_cast<size_t>(id)];
      CopyIntoRow(input, b, 0, RowPtr(op_encoded, row), h);
      if (!ups.empty()) {
        rows.clear();
        for (int u : ups) rows.push_back(RowPtr(state[static_cast<size_t>(u)], b));
        MeanIntoRow(input, b, h, rows, h);
      }
    }
    state[static_cast<size_t>(id)] =
        ForwardRowsDeduped(*blocks.flow_update, std::move(input));
  }

  // Stage 3a: mapping messages. Candidates in one group can still differ
  // in mapping structure (degrees change which nodes host instances), so
  // edges are flattened across the whole chunk into one map_message call
  // and scattered back per (candidate, operator).
  const size_t map_dim = FeatureEncoder::MappingDim();
  size_t total_edges = 0;
  for (size_t b = 0; b < B; ++b) {
    total_edges += graphs[group.members[begin + b]].mapping_edges.size();
  }
  Matrix messages;
  if (total_edges > 0) {
    Matrix edge_in(total_edges, h + map_dim);
    size_t row = 0;
    for (size_t b = 0; b < B; ++b) {
      const PlanGraph& g = graphs[group.members[begin + b]];
      for (const PlanGraph::MappingEdge& e : g.mapping_edges) {
        CopyIntoRow(edge_in, row, 0,
                    RowPtr(group.res_state, static_cast<size_t>(e.resource_index)),
                    h);
        CopyIntoRow(edge_in, row, h, e.features.data(), e.features.size());
        ++row;
      }
    }
    messages = ForwardRowsDeduped(*blocks.map_message, std::move(edge_in));
  }

  // Mean incoming message per (candidate, operator), in mapping-edge
  // order — the order Forward() pushes them into `incoming`.
  std::vector<size_t> edge_offset(B);
  {
    size_t row = 0;
    for (size_t b = 0; b < B; ++b) {
      edge_offset[b] = row;
      row += graphs[group.members[begin + b]].mapping_edges.size();
    }
  }
  // Stage 3b: residual map_update per operator across candidates.
  std::vector<Matrix> mapped(n_ops);
  std::vector<std::vector<const double*>> incoming(B);
  for (size_t i = 0; i < n_ops; ++i) {
    Matrix input(B, 2 * h);
    for (size_t b = 0; b < B; ++b) {
      CopyIntoRow(input, b, 0, RowPtr(state[i], b), h);
      const PlanGraph& g = graphs[group.members[begin + b]];
      incoming[b].clear();
      for (size_t e = 0; e < g.mapping_edges.size(); ++e) {
        if (static_cast<size_t>(g.mapping_edges[e].operator_index) == i) {
          incoming[b].push_back(RowPtr(messages, edge_offset[b] + e));
        }
      }
      if (!incoming[b].empty()) MeanIntoRow(input, b, h, incoming[b], h);
    }
    Matrix upd = ForwardRowsDeduped(*blocks.map_update, std::move(input));
    mapped[i] = std::move(state[i]);
    mapped[i].Add(upd);  // residual, like nn::Add(state, update)
  }

  // Stage 4: second bottom-up pass over the resource-aware states.
  std::vector<Matrix> final_state(n_ops);
  for (int id : shape.topo_order) {
    const auto& ups = shape.operator_upstreams[static_cast<size_t>(id)];
    Matrix input(B, 2 * h);
    for (size_t b = 0; b < B; ++b) {
      CopyIntoRow(input, b, 0, RowPtr(mapped[static_cast<size_t>(id)], b), h);
      if (!ups.empty()) {
        rows.clear();
        for (int u : ups) {
          rows.push_back(RowPtr(final_state[static_cast<size_t>(u)], b));
        }
        MeanIntoRow(input, b, h, rows, h);
      }
    }
    Matrix upd = ForwardRowsDeduped(*blocks.flow_update2, std::move(input));
    final_state[static_cast<size_t>(id)] =
        std::move(mapped[static_cast<size_t>(id)]);
    final_state[static_cast<size_t>(id)].Add(upd);
  }

  mp_span.reset();
  obs::Span readout_span("batch_inference/readout");
  readout_span.AddArg("candidates", std::to_string(B));

  // Readout at the sink, decoded row by row.
  Matrix readout = blocks.readout->ForwardValue(
      std::move(final_state[static_cast<size_t>(shape.sink_index)]));
  for (size_t b = 0; b < B; ++b) {
    Matrix row(1, readout.cols());
    for (size_t c = 0; c < readout.cols(); ++c) row(0, c) = readout(b, c);
    out[group.members[begin + b]] = model.DecodeOutput(row);
  }
}

}  // namespace

Result<std::vector<CostPrediction>> BatchedPredict(
    const ZeroTuneModel& model,
    std::span<const dsp::ParallelQueryPlan* const> plans,
    zerotune::ThreadPool* pool, BatchInferenceStats* stats) {
  if (stats) *stats = BatchInferenceStats{};
  const size_t n = plans.size();
  std::vector<CostPrediction> out(n);
  if (n == 0) return out;

  obs::Span batch_span("batch_inference/predict");
  batch_span.AddArg("plans", std::to_string(n));
  auto* metrics = obs::MetricsRegistry::Global();
  metrics->GetCounter("batch_inference.batches_total")->Increment();
  metrics->GetCounter("batch_inference.plans_total")->Increment(n);
  metrics->GetHistogram("batch_inference.batch_size", {}, 1.0, 1e6)
      ->Record(static_cast<double>(n));

  // Validation stays sequential so the reported failing index is the
  // first bad plan, matching the per-plan fallback path.
  for (size_t i = 0; i < n; ++i) {
    if (plans[i] == nullptr) {
      return Status::InvalidArgument("PredictBatch: plan #" +
                                     std::to_string(i) + " is null");
    }
    Status s = plans[i]->Validate();
    if (!s.ok()) {
      return s.Annotated("PredictBatch: plan #" + std::to_string(i) + " of " +
                         std::to_string(n) + " failed");
    }
  }

  // Featurization (EstimatedInputRates et al.) dominates graph building
  // and is independent per plan — shard it over the pool.
  std::vector<PlanGraph> graphs(n);
  const FeatureConfig& features = model.config().features;
  {
    obs::Span span("batch_inference/featurize");
    ParallelFor(pool, n, [&](size_t i) {
      graphs[i] = BuildPlanGraph(*plans[i], features);
    });
  }

  // Intern encoder inputs across the whole batch and encode each unique
  // row exactly once, in two row-batched MLP calls.
  RowInterner op_rows, res_rows;
  std::vector<std::vector<size_t>> op_row_ids(n);
  std::vector<std::vector<size_t>> res_row_ids(n);
  size_t op_total = 0, res_total = 0;
  for (size_t i = 0; i < n; ++i) {
    op_row_ids[i].reserve(graphs[i].num_operators());
    for (const auto& f : graphs[i].operator_features) {
      op_row_ids[i].push_back(op_rows.Intern(f));
    }
    res_row_ids[i].reserve(graphs[i].num_resources());
    for (const auto& f : graphs[i].resource_features) {
      res_row_ids[i].push_back(res_rows.Intern(f));
    }
    op_total += graphs[i].num_operators();
    res_total += graphs[i].num_resources();
  }
  const ZeroTuneModel::GnnBlocks blocks = model.blocks();
  const Matrix op_encoded =
      op_rows.num_unique() > 0
          ? blocks.op_encoder->ForwardValue(op_rows.Stacked())
          : Matrix();
  const Matrix res_encoded =
      res_rows.num_unique() > 0
          ? blocks.res_encoder->ForwardValue(res_rows.Stacked())
          : Matrix();

  // Dedup identical candidates wholesale: the prediction is a pure
  // function of the feature graph, so plans whose graphs match row-for-row
  // (structure, interned encoder rows, and mapping edges) score once and
  // the result fans out. Reconfiguration and multi-query scoring re-submit
  // overlapping candidate sets, where this collapses most of the batch.
  using EdgeSig = std::tuple<int, int, std::vector<double>>;
  using PlanSig = std::tuple<std::vector<size_t>,            // op row ids
                             std::vector<size_t>,            // res row ids
                             std::vector<int>,               // topo_order
                             std::vector<std::vector<int>>,  // upstreams
                             int,                            // sink_index
                             std::vector<EdgeSig>>;          // mapping edges
  std::vector<size_t> canonical(n);
  std::vector<size_t> reps;
  {
    obs::Span span("batch_inference/dedup");
    std::map<PlanSig, size_t> seen;
    std::vector<EdgeSig> edges;
    for (size_t i = 0; i < n; ++i) {
      edges.clear();
      edges.reserve(graphs[i].mapping_edges.size());
      for (const PlanGraph::MappingEdge& e : graphs[i].mapping_edges) {
        edges.emplace_back(e.operator_index, e.resource_index, e.features);
      }
      PlanSig sig{op_row_ids[i], res_row_ids[i], graphs[i].topo_order,
                  graphs[i].operator_upstreams, graphs[i].sink_index, edges};
      auto [it, inserted] = seen.emplace(std::move(sig), i);
      canonical[i] = it->second;
      if (inserted) reps.push_back(i);
    }
  }

  // Group the representative plans by structure so each group shares one
  // resource-exchange pass and row-batches the operator stages.
  std::map<GroupKey, size_t> group_ids;
  std::vector<Group> groups;
  for (size_t i : reps) {
    GroupKey key{graphs[i].topo_order, graphs[i].operator_upstreams,
                 graphs[i].sink_index, res_row_ids[i]};
    auto [it, inserted] = group_ids.emplace(std::move(key), groups.size());
    if (inserted) {
      Group g;
      g.res_row_ids = res_row_ids[i];
      g.shape = &graphs[i];
      groups.push_back(std::move(g));
    }
    groups[it->second].members.push_back(i);
  }

  const size_t h = model.config().hidden_dim;
  for (Group& g : groups) {
    if (!g.res_row_ids.empty()) {
      g.res_state = ComputeResourceState(blocks, res_encoded, g.res_row_ids, h);
    }
  }

  metrics->GetCounter("batch_inference.unique_plans_total")
      ->Increment(reps.size());
  metrics->GetCounter("batch_inference.dedup_hits_total")
      ->Increment(n - reps.size());
  batch_span.AddArg("unique_plans", std::to_string(reps.size()));
  batch_span.AddArg("structure_groups", std::to_string(groups.size()));

  if (stats) {
    stats->plans = n;
    stats->unique_plans = reps.size();
    stats->structure_groups = groups.size();
    stats->operator_rows_encoded = op_rows.num_unique();
    stats->operator_rows_total = op_total;
    stats->resource_rows_encoded = res_rows.num_unique();
    stats->resource_rows_total = res_total;
  }

  // Shard each group's candidates into contiguous chunks. Without a pool
  // one chunk per group maximizes row-batch width; with a pool, chunks
  // target the worker count. Chunking never changes results — per-row
  // arithmetic is independent of which rows share a matrix.
  struct Chunk {
    size_t group, begin, end;
  };
  std::vector<Chunk> chunks;
  const size_t workers = pool != nullptr ? std::max<size_t>(pool->num_threads(), 1) : 1;
  for (size_t g = 0; g < groups.size(); ++g) {
    const size_t members = groups[g].members.size();
    const size_t chunk_size =
        workers > 1 ? std::max<size_t>((members + workers - 1) / workers, 4)
                    : members;
    for (size_t b = 0; b < members; b += chunk_size) {
      chunks.push_back(Chunk{g, b, std::min(b + chunk_size, members)});
    }
  }
  ParallelFor(pool, chunks.size(), [&](size_t c) {
    const Chunk& chunk = chunks[c];
    ScoreChunk(model, blocks, groups[chunk.group], chunk.begin, chunk.end,
               graphs, op_row_ids, op_encoded, out);
  });

  // Fan scored representatives out to their duplicates.
  for (size_t i = 0; i < n; ++i) {
    if (canonical[i] != i) out[i] = out[canonical[i]];
  }

  return out;
}

}  // namespace zerotune::core
