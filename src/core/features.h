#ifndef ZEROTUNE_CORE_FEATURES_H_
#define ZEROTUNE_CORE_FEATURES_H_

#include <cstddef>
#include <string>
#include <array>
#include <vector>

#include "dsp/parallel_plan.h"

namespace zerotune::core {

/// Which groups of transferable features are active. Used by the feature
/// ablation study (paper Exp. 6 / Fig. 11).
struct FeatureConfig {
  /// Operator- and data-related features (operator type, filter/window/
  /// aggregation descriptors, selectivity, tuple widths, event rate).
  bool operator_features = true;
  /// Operator-parallelism features (parallelism degree, partitioning
  /// strategy, grouping number).
  bool parallelism_features = true;
  /// Resource features on physical nodes (cores, frequency, memory,
  /// network) and the operator→resource mapping edges.
  bool resource_features = true;
  /// Graph-representation choice (paper Sec. III-C2): false = the paper's
  /// option 2 (one node per logical operator, instances collapsed); true =
  /// option 1 (one node per operator *instance*), implemented for the
  /// representation ablation that motivates the paper's choice.
  bool per_instance_nodes = false;

  static FeatureConfig All() { return FeatureConfig{}; }
  static FeatureConfig OperatorOnly() {
    return FeatureConfig{true, false, false};
  }
  static FeatureConfig ParallelismAndResource() {
    return FeatureConfig{false, true, true};
  }
  static FeatureConfig PerInstance() {
    FeatureConfig c;
    c.per_instance_nodes = true;
    return c;
  }
};

/// Encodes the paper's Table I transferable features into fixed-width
/// numeric vectors. Enumerations are one-hot encoded; unbounded numerics
/// are log1p-scaled so that event rates spanning 50..4M and window
/// lengths spanning 2..10k live on comparable scales.
///
/// All encoders are static and deterministic: the same plan always yields
/// the same vectors, and the layout (dimension/order) is fixed so that a
/// trained model can be serialized and reloaded.
class FeatureEncoder {
 public:
  /// Width of an operator (logical node) feature vector.
  static size_t OperatorDim();
  /// Width of a resource (physical node) feature vector.
  static size_t ResourceDim();
  /// Width of an operator→resource mapping-edge feature vector.
  static size_t MappingDim();

  /// Features of logical operator `op_id` within the plan. Masked groups
  /// (per `config`) are zeroed, keeping the dimension stable.
  static std::vector<double> EncodeOperator(
      const dsp::ParallelQueryPlan& plan, int op_id,
      const FeatureConfig& config);

  /// Same encoding with the plan-wide estimated rate vectors
  /// (QueryPlan::EstimatedInputRates/EstimatedOutputRates) and grouping
  /// numbers (ParallelQueryPlan::GroupingNumbers) precomputed by the
  /// caller. Both propagations walk the whole DAG, so graph builders
  /// encoding every operator must hoist them to once per plan instead of
  /// paying O(V²) — bit-identical to the overload above.
  static std::vector<double> EncodeOperator(
      const dsp::ParallelQueryPlan& plan, int op_id,
      const FeatureConfig& config, const std::vector<double>& est_in_rates,
      const std::vector<double>& est_out_rates,
      const std::vector<int>& grouping_numbers);

  /// Features of cluster node `node_idx`.
  static std::vector<double> EncodeResource(
      const dsp::ParallelQueryPlan& plan, size_t node_idx,
      const FeatureConfig& config);

  /// Features of the mapping edge between operator `op_id` and cluster
  /// node `node_idx`: how many of the operator's instances live there and
  /// which share of the operator's parallelism that is.
  static std::vector<double> EncodeMapping(const dsp::ParallelQueryPlan& plan,
                                           int op_id, size_t node_idx,
                                           const FeatureConfig& config);

  /// Allocation-free variant writing the MappingDim() features in place
  /// (the graph builder's hot path stores them inline).
  static void EncodeMapping(const dsp::ParallelQueryPlan& plan, int op_id,
                            size_t node_idx, const FeatureConfig& config,
                            std::array<double, 2>* out);

  /// Human-readable names of the operator feature slots (for debugging
  /// and the ablation report).
  static std::vector<std::string> OperatorFeatureNames();
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_FEATURES_H_
