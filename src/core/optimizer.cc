#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>

#include "analysis/plan_analyzer.h"
#include "core/prescreen/analytical.h"
#include "core/prescreen/gnn_reranker.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zerotune::core {

namespace {

using dsp::Operator;
using dsp::OperatorType;

}  // namespace

Status ParallelismOptimizer::PrescreenOptions::Validate() const {
  if (!(keep_fraction > 0.0 && keep_fraction <= 1.0)) {
    return Status::InvalidArgument(
        "prescreen keep_fraction must lie in (0, 1], got " +
        std::to_string(keep_fraction));
  }
  if (min_keep < 1) {
    return Status::InvalidArgument("prescreen min_keep must be >= 1");
  }
  if (max_probes < 2) {
    return Status::InvalidArgument(
        "prescreen max_probes must be >= 2 (calibration needs two rungs)");
  }
  if (hill_climb_keep < 1) {
    return Status::InvalidArgument("prescreen hill_climb_keep must be >= 1");
  }
  return Status::OK();
}

Status ParallelismOptimizer::Options::Validate() const {
  if (!(weight >= 0.0 && weight <= 1.0)) {
    return Status::InvalidArgument(
        "optimizer weight must lie in [0, 1], got " + std::to_string(weight));
  }
  if (max_parallelism < 1) {
    return Status::InvalidArgument(
        "max_parallelism must be >= 1, got " +
        std::to_string(max_parallelism));
  }
  return prescreen.Validate();
}

double ParallelismOptimizer::Score(const CostPrediction& p) const {
  const double lat = std::log(std::max(p.latency_ms, 1e-6));
  const double tpt = std::log(std::max(p.throughput_tps, 1e-6));
  return options_.weight * lat - (1.0 - options_.weight) * tpt;
}

double ParallelismOptimizer::WeightedCost(
    const CostPrediction& p, const std::vector<Candidate>& candidates,
    double weight) {
  double lat_min = p.latency_ms, lat_max = p.latency_ms;
  double tpt_min = p.throughput_tps, tpt_max = p.throughput_tps;
  for (const Candidate& c : candidates) {
    lat_min = std::min(lat_min, c.predicted.latency_ms);
    lat_max = std::max(lat_max, c.predicted.latency_ms);
    tpt_min = std::min(tpt_min, c.predicted.throughput_tps);
    tpt_max = std::max(tpt_max, c.predicted.throughput_tps);
  }
  const double eps = 1e-9;
  const double c_l = (p.latency_ms - lat_min) / (lat_max - lat_min + eps);
  const double c_t =
      1.0 - (p.throughput_tps - tpt_min) / (tpt_max - tpt_min + eps);
  return weight * c_l + (1.0 - weight) * c_t;
}

Result<ParallelismOptimizer::TuningResult> ParallelismOptimizer::Tune(
    const dsp::QueryPlan& logical, const dsp::Cluster& cluster) const {
  ZT_RETURN_IF_ERROR(options_status_);
  ZT_RETURN_IF_ERROR(logical.Validate());
  obs::Span tune_span("optimizer/tune");
  tune_span.AddArg("operators", std::to_string(logical.num_operators()));
  auto* metrics = obs::MetricsRegistry::Global();
  metrics->GetCounter("optimizer.tunings_total")->Increment();
  const auto budget_expired = [this] {
    return options_.deadline != nullptr && options_.deadline->Expired();
  };
  bool deadline_hit = false;
  const int cap =
      std::max(1, std::min(options_.max_parallelism, cluster.TotalCores()));

  std::vector<Candidate> evaluated;
  std::set<std::vector<int>> tried;
  size_t rejected = 0;
  size_t prescreened = 0;
  size_t prescreen_kept = 0;

  auto materialize = [&](const std::vector<int>& degrees)
      -> Result<dsp::ParallelQueryPlan> {
    dsp::ParallelQueryPlan plan(logical, cluster);
    for (const Operator& op : logical.operators()) {
      ZT_RETURN_IF_ERROR(
          plan.SetParallelism(op.id, degrees[static_cast<size_t>(op.id)]));
    }
    plan.DerivePartitioning();
    ZT_RETURN_IF_ERROR(plan.PlaceRoundRobin());
    return plan;
  };

  // The exact scoring tier: all GNN inference in this function funnels
  // through the reranker's PredictBatch path.
  const GnnReranker reranker(predictor_, &logical, &cluster,
                             options_.weight);

  // Scores a set of degree vectors in one CostPredictor::PredictBatch
  // call and appends them to `evaluated` in input order. Every candidate
  // first passes through the static plan analyzer; failing ones are
  // dropped and counted rather than sent to the cost model, so invalid
  // deployments (bad seeds, over-parallelized operators) never consume
  // inference budget or win the search.
  auto evaluate_batch =
      [&](const std::vector<std::vector<int>>& batch) -> Status {
    if (batch.empty()) return Status::OK();
    std::vector<std::vector<int>> kept;
    std::vector<dsp::ParallelQueryPlan> plans;
    kept.reserve(batch.size());
    plans.reserve(batch.size());
    for (const std::vector<int>& degrees : batch) {
      if (degrees.size() != logical.num_operators()) {
        ++rejected;
        continue;
      }
      Result<dsp::ParallelQueryPlan> plan = materialize(degrees);
      if (!plan.ok() || !analysis::PlanAnalyzer::Check(plan.value()).ok()) {
        ++rejected;
        continue;
      }
      kept.push_back(degrees);
      plans.push_back(std::move(plan.value()));
    }
    if (plans.empty()) return Status::OK();
    Result<std::vector<CostPrediction>> preds = reranker.Predict(plans);
    if (!preds.ok()) {
      return preds.status().Annotated(
          "scoring " + std::to_string(plans.size()) +
          " parallelism candidates for a " +
          std::to_string(logical.num_operators()) + "-operator query");
    }
    for (size_t i = 0; i < kept.size(); ++i) {
      evaluated.push_back(Candidate{std::move(kept[i]), preds.value()[i]});
    }
    return Status::OK();
  };

  // Tier 1 calibration: GNN-score a small uniform probe ladder (one
  // batch) and fit the analytical closures from those predictions. The
  // probes double as candidates — their scores stay in `evaluated` and
  // can win the search. Calibration failure (degenerate decomposition,
  // singular fit) falls back to full GNN scoring rather than failing the
  // tune.
  std::optional<AnalyticalPrescreen> prescreen;
  if (options_.prescreen.enabled) {
    if (budget_expired()) {
      return Status::DeadlineExceeded(
          "tuning budget expired before any candidate was scored");
    }
    obs::Span span("optimizer/prescreen_calibrate");
    ZT_ASSIGN_OR_RETURN(
        const std::vector<std::vector<int>> probes,
        AnalyticalPrescreen::ProbeLadder(logical, cluster,
                                         options_.max_parallelism,
                                         options_.prescreen.max_probes));
    span.AddArg("probes", std::to_string(probes.size()));
    const size_t first_probe = evaluated.size();
    std::vector<std::vector<int>> probe_batch;
    for (const std::vector<int>& p : probes) {
      if (tried.insert(p).second) probe_batch.push_back(p);
    }
    ZT_RETURN_IF_ERROR(evaluate_batch(probe_batch));
    metrics->GetCounter("optimizer.prescreen.probes_total")
        ->Increment(probe_batch.size());
    std::vector<std::vector<int>> fit_degrees;
    std::vector<CostPrediction> fit_costs;
    for (size_t i = first_probe; i < evaluated.size(); ++i) {
      fit_degrees.push_back(evaluated[i].degrees);
      fit_costs.push_back(evaluated[i].predicted);
    }
    AnalyticalPrescreen::Options popts;
    popts.weight = options_.weight;
    Result<AnalyticalPrescreen> fitted = AnalyticalPrescreen::Fit(
        logical, cluster, fit_degrees, fit_costs, popts);
    if (fitted.ok()) {
      prescreen = std::move(fitted).value();
      metrics->GetCounter("optimizer.prescreen.calibrations_total")
          ->Increment();
      span.AddArg("fitted", "true");
    } else {
      // Fall back to exhaustive GNN scoring; the tune still succeeds.
      metrics->GetCounter("optimizer.prescreen.fallbacks_total")
          ->Increment();
      span.AddArg("fitted", "false");
      span.AddArg("fallback", fitted.status().message());
    }
  }

  // Analytical ranking of a candidate batch: keep the top `keep`
  // assignments (ascending index order, so batches stay deterministic).
  auto prescreen_cut = [&](std::vector<std::vector<int>>& batch,
                           size_t keep) -> Status {
    if (!prescreen.has_value() || batch.size() <= keep) return Status::OK();
    obs::Span span("optimizer/prescreen_rank");
    span.AddArg("candidates", std::to_string(batch.size()));
    std::vector<PlanCandidate> cands;
    cands.reserve(batch.size());
    for (const std::vector<int>& degrees : batch) {
      cands.emplace_back(degrees);
    }
    ZT_ASSIGN_OR_RETURN(const std::vector<double> scores,
                        prescreen->ScoreCandidates(cands));
    const std::vector<size_t> top =
        AnalyticalPrescreen::TopIndices(scores, keep);
    std::vector<std::vector<int>> survivors;
    survivors.reserve(top.size());
    for (size_t idx : top) survivors.push_back(std::move(batch[idx]));
    prescreened += batch.size();
    prescreen_kept += survivors.size();
    span.AddArg("kept", std::to_string(survivors.size()));
    batch = std::move(survivors);
    return Status::OK();
  };

  // Candidate enumeration through the search space. A null injection
  // point resolves to a default GridSearchSpace capped at
  // max_parallelism, which keeps the candidate order — and therefore the
  // whole tune — bit-identical to the pre-SearchSpace optimizer.
  GridSearchSpace::Options grid_opts;
  grid_opts.max_parallelism = options_.max_parallelism;
  const GridSearchSpace default_space(grid_opts);
  const SearchSpace* space =
      options_.search_space != nullptr ? options_.search_space
                                       : &default_space;
  ZT_ASSIGN_OR_RETURN(std::vector<PlanCandidate> enumerated,
                      space->Enumerate(logical, cluster));
  std::vector<std::vector<int>> pending;
  pending.reserve(enumerated.size() + options_.seed_candidates.size());
  for (PlanCandidate& c : enumerated) {
    if (tried.insert(c.degrees).second) {
      pending.push_back(std::move(c.degrees));
    }
  }

  // Caller-provided seeds; evaluate_batch vets each one through the
  // static analyzer, so invalid seeds are counted and skipped here rather
  // than failing the whole tuning call.
  for (const std::vector<int>& degrees : options_.seed_candidates) {
    if (tried.insert(degrees).second) pending.push_back(degrees);
  }

  if (budget_expired()) {
    if (evaluated.empty()) {
      return Status::DeadlineExceeded(
          "tuning budget expired before any candidate was scored");
    }
    deadline_hit = true;  // calibration probes already scored
  }

  if (!deadline_hit) {
    // Tier 1 cut, then all surviving enumeration phases score as one
    // batch (tier 2).
    const size_t keep = std::max(
        options_.prescreen.min_keep,
        static_cast<size_t>(std::ceil(options_.prescreen.keep_fraction *
                                      static_cast<double>(pending.size()))));
    ZT_RETURN_IF_ERROR(prescreen_cut(pending, keep));
    obs::Span span("optimizer/enumerate");
    span.AddArg("candidates", std::to_string(pending.size()));
    ZT_RETURN_IF_ERROR(evaluate_batch(pending));
  }

  if (evaluated.empty()) {
    return Status::Internal("no parallelism candidate could be evaluated");
  }

  auto best_it = std::min_element(
      evaluated.begin(), evaluated.end(),
      [this](const Candidate& a, const Candidate& b) {
        return Score(a.predicted) < Score(b.predicted);
      });
  std::vector<int> best = best_it->degrees;
  double best_score = Score(best_it->predicted);

  // Hill climbing as batched steepest descent: each round scores every
  // untried double/halve neighbor of the incumbent in one batch, then
  // moves to the best strict improvement. With the analytical tier
  // fitted, each round's neighbors are pre-ranked and only the top
  // hill_climb_keep reach the GNN. The round bound matches the
  // sequential version's worst-case move count; in practice the
  // "no improvement" break fires after a few rounds.
  const size_t max_rounds =
      options_.refinement_passes *
      std::max<size_t>(2 * logical.num_operators(), 1);
  for (size_t round = 0; round < max_rounds && !deadline_hit; ++round) {
    if (budget_expired()) {
      deadline_hit = true;  // partial result: best found within budget
      break;
    }
    std::vector<std::vector<int>> neighbors;
    for (const Operator& op : logical.operators()) {
      if (op.type == OperatorType::kSink) continue;
      for (const int factor : {2, -2}) {
        std::vector<int> neighbor = best;
        int& d = neighbor[static_cast<size_t>(op.id)];
        d = factor > 0 ? std::min(cap, d * 2) : std::max(1, d / 2);
        if (neighbor == best || !tried.insert(neighbor).second) continue;
        neighbors.push_back(std::move(neighbor));
      }
    }
    if (neighbors.empty()) break;
    ZT_RETURN_IF_ERROR(
        prescreen_cut(neighbors, options_.prescreen.hill_climb_keep));
    obs::Span round_span("optimizer/hill_climb_round");
    round_span.AddArg("round", std::to_string(round + 1));
    round_span.AddArg("neighbors", std::to_string(neighbors.size()));
    metrics->GetCounter("optimizer.hill_climb_rounds_total")->Increment();
    const size_t first_new = evaluated.size();
    ZT_RETURN_IF_ERROR(evaluate_batch(neighbors));
    bool improved = false;
    for (size_t i = first_new; i < evaluated.size(); ++i) {
      const double s = Score(evaluated[i].predicted);
      if (s < best_score) {
        best_score = s;
        best = evaluated[i].degrees;
        improved = true;
      }
    }
    round_span.AddArg("improved", improved ? "true" : "false");
    if (!improved) break;
  }

  // Materialize the winner.
  dsp::ParallelQueryPlan final_plan(logical, cluster);
  for (const Operator& op : logical.operators()) {
    ZT_RETURN_IF_ERROR(final_plan.SetParallelism(
        op.id, best[static_cast<size_t>(op.id)]));
  }
  final_plan.DerivePartitioning();
  ZT_RETURN_IF_ERROR(final_plan.PlaceRoundRobin());
  ZT_ASSIGN_OR_RETURN(const CostPrediction best_pred,
                      predictor_->Predict(final_plan));

  metrics->GetCounter("optimizer.candidates_scored_total")
      ->Increment(evaluated.size());
  metrics->GetCounter("optimizer.candidates_rejected_total")
      ->Increment(rejected);
  if (options_.prescreen.enabled) {
    metrics->GetCounter("optimizer.prescreen.candidates_total")
        ->Increment(prescreened);
    metrics->GetCounter("optimizer.prescreen.kept_total")
        ->Increment(prescreen_kept);
  }
  tune_span.AddArg("candidates_evaluated", std::to_string(evaluated.size()));
  tune_span.AddArg("candidates_rejected", std::to_string(rejected));
  tune_span.AddArg("candidates_prescreened", std::to_string(prescreened));

  TuningResult result(std::move(final_plan));
  result.predicted = best_pred;
  result.weighted_cost =
      WeightedCost(best_pred, evaluated, options_.weight);
  result.candidates_evaluated = evaluated.size();
  result.candidates_rejected = rejected;
  result.candidates_prescreened = prescreened;
  result.prescreen_kept = prescreen_kept;
  result.deadline_hit = deadline_hit;
  result.candidates = std::move(evaluated);
  return result;
}

}  // namespace zerotune::core
