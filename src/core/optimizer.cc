#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "analysis/plan_analyzer.h"
#include "core/enumeration.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zerotune::core {

namespace {

using dsp::Operator;
using dsp::OperatorType;

}  // namespace

Status ParallelismOptimizer::Options::Validate() const {
  if (!(weight >= 0.0 && weight <= 1.0)) {
    return Status::InvalidArgument(
        "optimizer weight must lie in [0, 1], got " + std::to_string(weight));
  }
  if (max_parallelism < 1) {
    return Status::InvalidArgument(
        "max_parallelism must be >= 1, got " +
        std::to_string(max_parallelism));
  }
  if (num_scale_factors < 1) {
    return Status::InvalidArgument("num_scale_factors must be >= 1");
  }
  if (!(min_scale_factor > 0.0)) {
    return Status::InvalidArgument(
        "min_scale_factor must be positive, got " +
        std::to_string(min_scale_factor));
  }
  if (!(max_scale_factor >= min_scale_factor)) {
    return Status::InvalidArgument(
        "max_scale_factor must be >= min_scale_factor");
  }
  for (int d : uniform_degrees) {
    if (d < 1) {
      return Status::InvalidArgument(
          "uniform_degrees entries must be >= 1, got " + std::to_string(d));
    }
  }
  return Status::OK();
}

double ParallelismOptimizer::Score(const CostPrediction& p) const {
  const double lat = std::log(std::max(p.latency_ms, 1e-6));
  const double tpt = std::log(std::max(p.throughput_tps, 1e-6));
  return options_.weight * lat - (1.0 - options_.weight) * tpt;
}

double ParallelismOptimizer::WeightedCost(
    const CostPrediction& p, const std::vector<Candidate>& candidates,
    double weight) {
  double lat_min = p.latency_ms, lat_max = p.latency_ms;
  double tpt_min = p.throughput_tps, tpt_max = p.throughput_tps;
  for (const Candidate& c : candidates) {
    lat_min = std::min(lat_min, c.predicted.latency_ms);
    lat_max = std::max(lat_max, c.predicted.latency_ms);
    tpt_min = std::min(tpt_min, c.predicted.throughput_tps);
    tpt_max = std::max(tpt_max, c.predicted.throughput_tps);
  }
  const double eps = 1e-9;
  const double c_l = (p.latency_ms - lat_min) / (lat_max - lat_min + eps);
  const double c_t =
      1.0 - (p.throughput_tps - tpt_min) / (tpt_max - tpt_min + eps);
  return weight * c_l + (1.0 - weight) * c_t;
}

Result<ParallelismOptimizer::TuningResult> ParallelismOptimizer::Tune(
    const dsp::QueryPlan& logical, const dsp::Cluster& cluster) const {
  ZT_RETURN_IF_ERROR(options_status_);
  ZT_RETURN_IF_ERROR(logical.Validate());
  obs::Span tune_span("optimizer/tune");
  tune_span.AddArg("operators", std::to_string(logical.num_operators()));
  auto* metrics = obs::MetricsRegistry::Global();
  metrics->GetCounter("optimizer.tunings_total")->Increment();
  const auto budget_expired = [this] {
    return options_.deadline != nullptr && options_.deadline->Expired();
  };
  bool deadline_hit = false;
  const int cap =
      std::max(1, std::min(options_.max_parallelism, cluster.TotalCores()));

  std::vector<Candidate> evaluated;
  std::set<std::vector<int>> tried;
  size_t rejected = 0;

  auto materialize = [&](const std::vector<int>& degrees)
      -> Result<dsp::ParallelQueryPlan> {
    dsp::ParallelQueryPlan plan(logical, cluster);
    for (const Operator& op : logical.operators()) {
      ZT_RETURN_IF_ERROR(
          plan.SetParallelism(op.id, degrees[static_cast<size_t>(op.id)]));
    }
    plan.DerivePartitioning();
    ZT_RETURN_IF_ERROR(plan.PlaceRoundRobin());
    return plan;
  };

  // Scores a set of degree vectors in one CostPredictor::PredictBatch
  // call and appends them to `evaluated` in input order. Every candidate
  // first passes through the static plan analyzer; failing ones are
  // dropped and counted rather than sent to the cost model, so invalid
  // deployments (bad seeds, over-parallelized operators) never consume
  // inference budget or win the search.
  auto evaluate_batch =
      [&](const std::vector<std::vector<int>>& batch) -> Status {
    if (batch.empty()) return Status::OK();
    std::vector<std::vector<int>> kept;
    std::vector<dsp::ParallelQueryPlan> plans;
    kept.reserve(batch.size());
    plans.reserve(batch.size());
    for (const std::vector<int>& degrees : batch) {
      if (degrees.size() != logical.num_operators()) {
        ++rejected;
        continue;
      }
      Result<dsp::ParallelQueryPlan> plan = materialize(degrees);
      if (!plan.ok() || !analysis::PlanAnalyzer::Check(plan.value()).ok()) {
        ++rejected;
        continue;
      }
      kept.push_back(degrees);
      plans.push_back(std::move(plan.value()));
    }
    if (plans.empty()) return Status::OK();
    Result<std::vector<CostPrediction>> preds =
        PredictBatch(*predictor_, plans);
    if (!preds.ok()) {
      return preds.status().Annotated(
          "scoring " + std::to_string(plans.size()) +
          " parallelism candidates for a " +
          std::to_string(logical.num_operators()) + "-operator query");
    }
    for (size_t i = 0; i < kept.size(); ++i) {
      evaluated.push_back(Candidate{std::move(kept[i]), preds.value()[i]});
    }
    return Status::OK();
  };

  // (a) OptiSample-derived candidates over a scaling-factor grid.
  std::vector<std::vector<int>> pending;
  for (size_t i = 0; i < options_.num_scale_factors; ++i) {
    const double t =
        options_.num_scale_factors <= 1
            ? 0.0
            : static_cast<double>(i) /
                  static_cast<double>(options_.num_scale_factors - 1);
    const double sf =
        std::exp(std::log(options_.min_scale_factor) +
                 t * (std::log(options_.max_scale_factor) -
                      std::log(options_.min_scale_factor)));
    dsp::ParallelQueryPlan plan(logical, cluster);
    ZT_RETURN_IF_ERROR(OptiSampleEnumerator::AssignWithScaleFactor(
        &plan, sf, options_.max_parallelism));
    std::vector<int> degrees = plan.ParallelismVector();
    if (tried.insert(degrees).second) pending.push_back(std::move(degrees));
  }

  // (b) Uniform degrees (sources/sinks pinned at 1).
  for (int d : options_.uniform_degrees) {
    if (d > cap) continue;
    std::vector<int> degrees(logical.num_operators(), d);
    for (const Operator& op : logical.operators()) {
      if (op.type == OperatorType::kSource ||
          op.type == OperatorType::kSink) {
        degrees[static_cast<size_t>(op.id)] = 1;
      }
    }
    if (tried.insert(degrees).second) pending.push_back(std::move(degrees));
  }

  // Caller-provided seeds; evaluate_batch vets each one through the
  // static analyzer, so invalid seeds are counted and skipped here rather
  // than failing the whole tuning call.
  for (const std::vector<int>& degrees : options_.seed_candidates) {
    if (tried.insert(degrees).second) pending.push_back(degrees);
  }

  if (budget_expired()) {
    return Status::DeadlineExceeded(
        "tuning budget expired before any candidate was scored");
  }

  // All enumeration phases score as one batch.
  {
    obs::Span span("optimizer/enumerate");
    span.AddArg("candidates", std::to_string(pending.size()));
    ZT_RETURN_IF_ERROR(evaluate_batch(pending));
  }

  if (evaluated.empty()) {
    return Status::Internal("no parallelism candidate could be evaluated");
  }

  auto best_it = std::min_element(
      evaluated.begin(), evaluated.end(),
      [this](const Candidate& a, const Candidate& b) {
        return Score(a.predicted) < Score(b.predicted);
      });
  std::vector<int> best = best_it->degrees;
  double best_score = Score(best_it->predicted);

  // (c) Hill climbing as batched steepest descent: each round scores
  // every untried double/halve neighbor of the incumbent in one batch,
  // then moves to the best strict improvement. The round bound matches
  // the sequential version's worst-case move count; in practice the
  // "no improvement" break fires after a few rounds.
  const size_t max_rounds =
      options_.refinement_passes *
      std::max<size_t>(2 * logical.num_operators(), 1);
  for (size_t round = 0; round < max_rounds; ++round) {
    if (budget_expired()) {
      deadline_hit = true;  // partial result: best found within budget
      break;
    }
    std::vector<std::vector<int>> neighbors;
    for (const Operator& op : logical.operators()) {
      if (op.type == OperatorType::kSink) continue;
      for (const int factor : {2, -2}) {
        std::vector<int> neighbor = best;
        int& d = neighbor[static_cast<size_t>(op.id)];
        d = factor > 0 ? std::min(cap, d * 2) : std::max(1, d / 2);
        if (neighbor == best || !tried.insert(neighbor).second) continue;
        neighbors.push_back(std::move(neighbor));
      }
    }
    if (neighbors.empty()) break;
    obs::Span round_span("optimizer/hill_climb_round");
    round_span.AddArg("round", std::to_string(round + 1));
    round_span.AddArg("neighbors", std::to_string(neighbors.size()));
    metrics->GetCounter("optimizer.hill_climb_rounds_total")->Increment();
    const size_t first_new = evaluated.size();
    ZT_RETURN_IF_ERROR(evaluate_batch(neighbors));
    bool improved = false;
    for (size_t i = first_new; i < evaluated.size(); ++i) {
      const double s = Score(evaluated[i].predicted);
      if (s < best_score) {
        best_score = s;
        best = evaluated[i].degrees;
        improved = true;
      }
    }
    round_span.AddArg("improved", improved ? "true" : "false");
    if (!improved) break;
  }

  // Materialize the winner.
  dsp::ParallelQueryPlan final_plan(logical, cluster);
  for (const Operator& op : logical.operators()) {
    ZT_RETURN_IF_ERROR(final_plan.SetParallelism(
        op.id, best[static_cast<size_t>(op.id)]));
  }
  final_plan.DerivePartitioning();
  ZT_RETURN_IF_ERROR(final_plan.PlaceRoundRobin());
  ZT_ASSIGN_OR_RETURN(const CostPrediction best_pred,
                      predictor_->Predict(final_plan));

  metrics->GetCounter("optimizer.candidates_scored_total")
      ->Increment(evaluated.size());
  metrics->GetCounter("optimizer.candidates_rejected_total")
      ->Increment(rejected);
  tune_span.AddArg("candidates_evaluated", std::to_string(evaluated.size()));
  tune_span.AddArg("candidates_rejected", std::to_string(rejected));

  TuningResult result(std::move(final_plan));
  result.predicted = best_pred;
  result.weighted_cost =
      WeightedCost(best_pred, evaluated, options_.weight);
  result.candidates_evaluated = evaluated.size();
  result.candidates_rejected = rejected;
  result.deadline_hit = deadline_hit;
  result.candidates = std::move(evaluated);
  return result;
}

}  // namespace zerotune::core
