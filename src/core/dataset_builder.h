#ifndef ZEROTUNE_CORE_DATASET_BUILDER_H_
#define ZEROTUNE_CORE_DATASET_BUILDER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/enumeration.h"
#include "sim/cost_engine.h"
#include "workload/benchmarks.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace zerotune::core {

/// Drives training-corpus collection: generate a query (structure +
/// parameters + cluster), assign parallelism with an enumeration strategy,
/// deploy, and measure it with the ground-truth engine — the offline data
/// collection phase of Fig. 2 (left).
struct DatasetBuilderOptions {
  size_t count = 1000;
  uint64_t seed = 2024;
  workload::QueryGenerator::Options generator;
  sim::CostParams cost_params;
  /// Optional pool for parallel labeling; null = sequential.
  zerotune::ThreadPool* pool = nullptr;
  /// Restricts generation to these structures; empty = the paper's three
  /// training structures.
  std::vector<workload::QueryStructure> structures;
};

/// Builds a labeled corpus of `options.count` queries using `enumerator`
/// for the parallelism degrees. Deterministic given options.seed.
Result<workload::Dataset> BuildDataset(
    const ParallelismEnumerator& enumerator,
    const DatasetBuilderOptions& options);

/// Labels one prepared plan with the engine and wraps it as a sample.
Result<workload::LabeledQuery> LabelPlan(dsp::ParallelQueryPlan plan,
                                         workload::QueryStructure structure,
                                         const sim::CostEngine& engine);

/// Builds a labeled corpus of benchmark queries (spike detection /
/// smart-grid), each deployed with the enumerator at several event rates.
Result<workload::Dataset> BuildBenchmarkDataset(
    workload::QueryStructure structure, size_t count,
    const ParallelismEnumerator& enumerator,
    const DatasetBuilderOptions& options);

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_DATASET_BUILDER_H_
