#ifndef ZEROTUNE_CORE_TRAINER_H_
#define ZEROTUNE_CORE_TRAINER_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/statistics.h"
#include "common/thread_pool.h"
#include "core/model.h"
#include "workload/dataset.h"

namespace zerotune::core {

/// Supervised-training configuration for the ZeroTune model.
struct TrainOptions {
  size_t epochs = 80;
  size_t batch_size = 16;
  double learning_rate = 1e-3;
  double weight_decay = 1e-5;
  double grad_clip_norm = 5.0;
  /// Early stopping: abort after this many epochs without val improvement
  /// (0 disables). The best-val parameters are restored on finish.
  size_t patience = 15;
  /// Shuffling / batching seed.
  uint64_t seed = 99;
  /// When true (fresh training), target normalization statistics are
  /// (re)fit on the training set. Fine-tuning (few-shot, Exp. 1/Fig. 6)
  /// keeps the original statistics.
  bool fit_target_stats = true;
  /// Optional pool for data-parallel gradient accumulation.
  zerotune::ThreadPool* pool = nullptr;
  /// Clock behind TrainReport::train_seconds and the trainer.epoch_seconds
  /// histogram. Null = system clock; tests inject a FakeClock to make the
  /// timing metrics deterministic.
  zerotune::Clock* clock = nullptr;
  bool verbose = false;
  /// Divergence recovery: when a batch produces a non-finite loss or
  /// gradient, the trainer rolls back to the best parameters seen so far,
  /// multiplies the learning rate by `lr_backoff`, and retries — at most
  /// this many times before training stops (best parameters kept).
  size_t max_recovery_attempts = 3;
  double lr_backoff = 0.5;
  /// Crash safety: when non-empty, a checkpoint (model weights, optimizer
  /// moments, epoch cursor, RNG/shuffle state, early-stopping bookkeeping)
  /// is written atomically to this path every `checkpoint_every_epochs`
  /// epochs. Format: docs/serving.md ("zerotune-trainer-ckpt-v1").
  std::string checkpoint_path;
  size_t checkpoint_every_epochs = 1;
  /// Resume from `checkpoint_path` if the file exists (missing file starts
  /// fresh, so a crash-restart loop just always passes resume=true). A
  /// resumed run replays the remaining epochs bit-identically to the
  /// uninterrupted run with the same options.
  bool resume = false;

  /// Rejects zero epoch/batch counts, non-positive or non-finite learning
  /// rates, negative decay/clipping, and backoff factors outside (0, 1].
  /// Checked at Trainer construction; Train() fails with this status
  /// instead of silently clamping.
  Status Validate() const;
};

/// Outcome of a training run.
struct TrainReport {
  size_t epochs_run = 0;
  double final_train_loss = 0.0;
  double best_val_loss = 0.0;
  double train_seconds = 0.0;
  std::vector<double> epoch_train_losses;
  /// Batches whose loss or gradient came out non-finite (update skipped).
  size_t nonfinite_batches = 0;
  /// Rollback-and-retry cycles performed (see
  /// TrainOptions::max_recovery_attempts).
  size_t recovery_attempts = 0;
  /// Learning rate in effect when training finished (smaller than
  /// TrainOptions::learning_rate iff recoveries backed it off).
  double final_learning_rate = 0.0;
  /// Number of completed epochs restored from a checkpoint (0 = fresh run).
  size_t resumed_from_epoch = 0;
  /// Checkpoints written during this run.
  size_t checkpoints_written = 0;
};

/// Per-metric q-error evaluation of a model on a dataset.
struct ModelEvaluation {
  QErrorSummary latency;
  QErrorSummary throughput;
};

/// Trains and evaluates ZeroTune models. Graphs are encoded once and
/// cached; each optimization step accumulates gradients over a mini-batch
/// (in parallel across pool workers), clips the global norm, and applies
/// Adam.
class Trainer {
 public:
  Trainer(ZeroTuneModel* model, TrainOptions options);

  /// Runs supervised training with early stopping on `val` (val may be
  /// empty, disabling early stopping).
  Result<TrainReport> Train(const workload::Dataset& train,
                            const workload::Dataset& val);

  /// Median/p95/... q-errors of the model's latency and throughput
  /// predictions on a dataset.
  static ModelEvaluation Evaluate(const ZeroTuneModel& model,
                                  const workload::Dataset& test);

  /// Per-sample latency / throughput q-errors (for scatter plots and
  /// category breakdowns).
  static void QErrors(const ZeroTuneModel& model,
                      const workload::Dataset& test,
                      std::vector<double>* latency_qerrors,
                      std::vector<double>* throughput_qerrors);

 private:
  double EpochLoss(const std::vector<PlanGraph>& graphs,
                   const std::vector<nn::Matrix>& targets) const;

  ZeroTuneModel* model_;
  TrainOptions options_;
  Status options_status_;
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_TRAINER_H_
