#ifndef ZEROTUNE_CORE_PLAN_GRAPH_H_
#define ZEROTUNE_CORE_PLAN_GRAPH_H_

#include <array>
#include <string>
#include <vector>

#include "core/features.h"
#include "dsp/parallel_plan.h"

namespace zerotune::core {

/// The paper's parallel graph representation (Sec. III-C2): one node per
/// *logical* operator (parallel instances collapsed, their aggregate
/// statistics encoded as node features), one node per physical resource,
/// and three edge families —
///   * data-flow edges between operator nodes (black),
///   * links between resource nodes (orange),
///   * operator→resource mapping edges, one per (operator, node) pair
///     hosting at least one instance, carrying per-instance mapping
///     features (green).
struct PlanGraph {
  struct MappingEdge {
    int operator_index = 0;  // index into operator_features
    int resource_index = 0;  // index into resource_features
    // Fixed MappingDim()-wide feature pair, inline so building a graph
    // costs no per-edge heap allocation (the batch engine builds one
    // graph per candidate on its hot path).
    std::array<double, 2> features{};
  };

  /// Feature vector per logical operator, indexed by operator id.
  std::vector<std::vector<double>> operator_features;
  /// Feature vector per cluster node.
  std::vector<std::vector<double>> resource_features;

  /// Data-flow edges (upstream op id, downstream op id).
  std::vector<std::pair<int, int>> data_edges;
  /// Undirected resource links (i < j).
  std::vector<std::pair<int, int>> resource_edges;
  std::vector<MappingEdge> mapping_edges;

  /// Upstream operator ids per operator (mirrors the logical plan).
  std::vector<std::vector<int>> operator_upstreams;
  /// Topological order of operator indices (sources first).
  std::vector<int> topo_order;
  int sink_index = -1;

  size_t num_operators() const { return operator_features.size(); }
  size_t num_resources() const { return resource_features.size(); }
};

/// Builds the graph encoding of a placed parallel query plan with the
/// given feature configuration (feature groups can be masked for the
/// ablation study).
PlanGraph BuildPlanGraph(const dsp::ParallelQueryPlan& plan,
                         const FeatureConfig& config = FeatureConfig::All());

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_PLAN_GRAPH_H_
