#include "core/explain.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace zerotune::core {

namespace {

/// Log-space view of a raw forward output (normalized units are already
/// log-linear, so differences are relative-cost shifts).
std::pair<double, double> LogOutputs(const ZeroTuneModel& model,
                                     const PlanGraph& graph) {
  const nn::NodePtr out = model.Forward(graph);
  return {out->value(0, 0), out->value(0, 1)};
}

}  // namespace

Result<std::vector<FeatureAttribution>> PredictionExplainer::Explain(
    const dsp::ParallelQueryPlan& plan) const {
  ZT_RETURN_IF_ERROR(plan.Validate());
  const FeatureConfig& config = model_->config().features;
  PlanGraph graph = BuildPlanGraph(plan, config);
  const auto [base_lat, base_tpt] = LogOutputs(*model_, graph);
  const std::vector<std::string> names =
      FeatureEncoder::OperatorFeatureNames();

  std::vector<FeatureAttribution> attrs;
  for (size_t node = 0; node < graph.num_operators(); ++node) {
    for (size_t slot = 0; slot < graph.operator_features[node].size();
         ++slot) {
      const double value = graph.operator_features[node][slot];
      if (value == 0.0) continue;  // occluding a zero is a no-op
      graph.operator_features[node][slot] = 0.0;
      const auto [lat, tpt] = LogOutputs(*model_, graph);
      graph.operator_features[node][slot] = value;

      FeatureAttribution a;
      a.operator_id = static_cast<int>(node);
      a.feature_name = slot < names.size() ? names[slot] : "?";
      a.feature_value = value;
      a.latency_impact = base_lat - lat;
      a.throughput_impact = base_tpt - tpt;
      attrs.push_back(std::move(a));
    }
  }

  std::sort(attrs.begin(), attrs.end(),
            [](const FeatureAttribution& a, const FeatureAttribution& b) {
              const double ma =
                  std::abs(a.latency_impact) + std::abs(a.throughput_impact);
              const double mb =
                  std::abs(b.latency_impact) + std::abs(b.throughput_impact);
              return ma > mb;
            });
  if (options_.top_k > 0 && attrs.size() > options_.top_k) {
    attrs.resize(options_.top_k);
  }
  return attrs;
}

std::string PredictionExplainer::ToText(
    const std::vector<FeatureAttribution>& attrs) {
  std::ostringstream os;
  os.precision(3);
  for (const FeatureAttribution& a : attrs) {
    os << "  op" << a.operator_id << " " << a.feature_name << " (value "
       << a.feature_value << "): latency " << std::showpos
       << a.latency_impact << ", throughput " << a.throughput_impact
       << std::noshowpos << "\n";
  }
  return os.str();
}

}  // namespace zerotune::core
