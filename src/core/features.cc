#include "core/features.h"

#include <array>

#include <cmath>

namespace zerotune::core {

namespace {

using dsp::DataType;
using dsp::Operator;
using dsp::OperatorType;
using dsp::WindowSpec;

double Log1p(double v) { return std::log1p(std::max(v, 0.0)); }

/// Log1p over small non-negative integers, memoized: the encoder hits it
/// with parallelism degrees, grouping numbers and tuple widths, which
/// repeat across every candidate of a tuning sweep (libm's log1p is the
/// next-largest featurization cost after allocation). Entries are Log1p
/// outputs, so results stay bit-identical to the direct call.
double Log1pInt(int v) {
  static const std::array<double, 257>& table = *[] {
    auto* t = new std::array<double, 257>();
    for (size_t i = 0; i < t->size(); ++i) {
      (*t)[i] = Log1p(static_cast<double>(i));
    }
    return t;
  }();
  return v >= 0 && v < static_cast<int>(table.size())
             ? table[static_cast<size_t>(v)]
             : Log1p(static_cast<double>(v));
}

void OneHot(std::vector<double>* out, int value, int cardinality,
            bool enabled) {
  for (int i = 0; i < cardinality; ++i) {
    out->push_back(enabled && i == value ? 1.0 : 0.0);
  }
}

void Push(std::vector<double>* out, double v, bool enabled) {
  out->push_back(enabled ? v : 0.0);
}

/// Fractions of int/double/string fields in a schema.
void SchemaComposition(std::vector<double>* out, const dsp::TupleSchema& s,
                       bool enabled) {
  double counts[3] = {0, 0, 0};
  for (DataType t : s.fields) counts[static_cast<int>(t)] += 1.0;
  const double total = std::max<double>(1.0, static_cast<double>(s.width()));
  for (double c : counts) Push(out, c / total, enabled);
}

}  // namespace

// Layout (see OperatorFeatureNames for the authoritative order):
//   operator one-hot(5)
//   parallelism: degree log1p(1), partitioning one-hot(3), grouping(1)
//   data: width_in(1), width_out(1), composition(3), selectivity(1),
//         event_rate(1), est_in_rate(1), est_out_rate(1),
//         est_in_rate_per_instance(1)
//   filter: function one-hot(6), literal class one-hot(3)
//   window: type one-hot(2), policy one-hot(2), length(1), slide(1)
//   join: key class one-hot(3)
//   agg: class one-hot(3), function one-hot(5), key class one-hot(3)
//
// The estimated per-operator rates are derived purely from transferable
// inputs (source event rates × operator selectivities, Def. 3) — the same
// propagation OptiSample uses — so they preserve zero-shot transfer while
// letting every node see its own load.
size_t FeatureEncoder::OperatorDim() { return 5 + 5 + 10 + 9 + 6 + 3 + 11; }

size_t FeatureEncoder::ResourceDim() { return 6; }

size_t FeatureEncoder::MappingDim() { return 2; }

std::vector<double> FeatureEncoder::EncodeOperator(
    const dsp::ParallelQueryPlan& plan, int op_id,
    const FeatureConfig& config) {
  const dsp::QueryPlan& q = plan.logical();
  return EncodeOperator(plan, op_id, config, q.EstimatedInputRates(),
                        q.EstimatedOutputRates(), plan.GroupingNumbers());
}

std::vector<double> FeatureEncoder::EncodeOperator(
    const dsp::ParallelQueryPlan& plan, int op_id, const FeatureConfig& config,
    const std::vector<double>& est_in_rates,
    const std::vector<double>& est_out_rates,
    const std::vector<int>& grouping_numbers) {
  const dsp::QueryPlan& q = plan.logical();
  const Operator& op = q.op(op_id);
  const bool op_on = config.operator_features;
  const bool par_on = config.parallelism_features;

  std::vector<double> f;
  f.reserve(OperatorDim());

  // Operator type: structural, always on (the graph shape itself reveals
  // it; masking it would only hide information the ablation keeps).
  OneHot(&f, static_cast<int>(op.type), 5, /*enabled=*/true);

  // Parallelism-related.
  Push(&f, Log1pInt(plan.parallelism(op_id)), par_on);
  OneHot(&f, static_cast<int>(plan.placement(op_id).partitioning), 3, par_on);
  Push(&f, Log1pInt(grouping_numbers[static_cast<size_t>(op_id)]), par_on);

  // Data-related.
  int width_in = 0;
  for (int u : q.upstreams(op_id)) {
    width_in += static_cast<int>(q.op(u).output_schema.width());
  }
  if (op.type == OperatorType::kSource) {
    width_in = static_cast<int>(op.source.schema.width());
  }
  Push(&f, Log1pInt(width_in), op_on);
  Push(&f, Log1pInt(static_cast<int>(op.output_schema.width())), op_on);
  SchemaComposition(&f, op.output_schema, op_on);
  Push(&f, q.OperatorSelectivity(op_id), op_on);
  Push(&f,
       op.type == OperatorType::kSource ? Log1p(op.source.event_rate) : 0.0,
       op_on);
  const double in_rate = est_in_rates[static_cast<size_t>(op_id)];
  Push(&f, Log1p(in_rate), op_on);
  Push(&f, Log1p(est_out_rates[static_cast<size_t>(op_id)]), op_on);
  // Per-instance load mixes data and parallelism information, so it is
  // only active when *both* groups are enabled (otherwise the
  // operator-only ablation would see the parallelism degree through it).
  Push(&f,
       Log1p(in_rate / std::max(1.0, static_cast<double>(
                                         plan.parallelism(op_id)))),
       op_on && par_on);

  // Filter-related.
  const bool is_filter = op.type == OperatorType::kFilter;
  OneHot(&f, is_filter ? static_cast<int>(op.filter.function) : -1, 6, op_on);
  OneHot(&f, is_filter ? static_cast<int>(op.filter.literal_class) : -1, 3,
         op_on);

  // Window-related (aggregate or join).
  const WindowSpec* w = nullptr;
  if (op.type == OperatorType::kWindowAggregate) w = &op.aggregate.window;
  if (op.type == OperatorType::kWindowJoin) w = &op.join.window;
  OneHot(&f, w != nullptr ? static_cast<int>(w->type) : -1, 2, op_on);
  OneHot(&f, w != nullptr ? static_cast<int>(w->policy) : -1, 2, op_on);
  Push(&f, w != nullptr ? Log1p(w->length) : 0.0, op_on);
  Push(&f, w != nullptr ? Log1p(w->slide) : 0.0, op_on);

  // Join-related.
  OneHot(&f,
         op.type == OperatorType::kWindowJoin
             ? static_cast<int>(op.join.key_class)
             : -1,
         3, op_on);

  // Aggregation-related.
  const bool is_agg = op.type == OperatorType::kWindowAggregate;
  OneHot(&f, is_agg ? static_cast<int>(op.aggregate.aggregate_class) : -1, 3,
         op_on);
  OneHot(&f, is_agg ? static_cast<int>(op.aggregate.function) : -1, 5, op_on);
  OneHot(&f, is_agg ? static_cast<int>(op.aggregate.key_class) : -1, 3, op_on);

  return f;
}

std::vector<double> FeatureEncoder::EncodeResource(
    const dsp::ParallelQueryPlan& plan, size_t node_idx,
    const FeatureConfig& config) {
  const dsp::NodeResources& n = plan.cluster().node(node_idx);
  const bool on = config.resource_features;
  std::vector<double> f;
  f.reserve(ResourceDim());
  // Hardware attributes are normalized against the fixed envelope of
  // deployable node types (Table II tops out at 64 cores / 2.8 GHz /
  // 384 GB / 10 Gbps). Training hardware has little variation in these
  // slots, so keeping unseen hardware inside a bounded range is what
  // keeps the encoder's extrapolation tame (Exp. 2, unseen resources).
  Push(&f, static_cast<double>(n.cpu_cores) / 64.0, on);
  Push(&f, n.cpu_ghz / 3.0, on);
  Push(&f, n.memory_gb / 384.0, on);
  Push(&f, n.network_gbps / 10.0, on);
  // Normalized node identifier within the cluster plus cluster size —
  // identity itself is not transferable, position/scale is.
  const double count = static_cast<double>(plan.cluster().num_nodes());
  Push(&f, count > 1 ? static_cast<double>(node_idx) / (count - 1) : 0.0, on);
  Push(&f, count / 10.0, on);
  return f;
}

std::vector<double> FeatureEncoder::EncodeMapping(
    const dsp::ParallelQueryPlan& plan, int op_id, size_t node_idx,
    const FeatureConfig& config) {
  std::array<double, 2> f{};
  EncodeMapping(plan, op_id, node_idx, config, &f);
  return std::vector<double>(f.begin(), f.end());
}

void FeatureEncoder::EncodeMapping(const dsp::ParallelQueryPlan& plan,
                                   int op_id, size_t node_idx,
                                   const FeatureConfig& config,
                                   std::array<double, 2>* out) {
  const bool on = config.resource_features || config.parallelism_features;
  const auto& nodes = plan.placement(op_id).instance_nodes;
  double instances_here = 0.0;
  for (int n : nodes) {
    if (n == static_cast<int>(node_idx)) instances_here += 1.0;
  }
  const double degree =
      std::max(1.0, static_cast<double>(plan.parallelism(op_id)));
  (*out)[0] = on ? Log1p(instances_here) / 5.0 : 0.0;  // log1p(128) ≈ 4.86
  (*out)[1] = on ? instances_here / degree : 0.0;
}

std::vector<std::string> FeatureEncoder::OperatorFeatureNames() {
  std::vector<std::string> names;
  for (const char* t :
       {"source", "filter", "window-agg", "window-join", "sink"}) {
    names.push_back(std::string("type=") + t);
  }
  names.push_back("parallelism(log)");
  for (const char* p : {"forward", "rebalance", "hash"}) {
    names.push_back(std::string("partitioning=") + p);
  }
  names.push_back("grouping(log)");
  names.push_back("tuple-width-in(log)");
  names.push_back("tuple-width-out(log)");
  names.push_back("frac-int");
  names.push_back("frac-double");
  names.push_back("frac-string");
  names.push_back("selectivity");
  names.push_back("event-rate(log)");
  names.push_back("est-in-rate(log)");
  names.push_back("est-out-rate(log)");
  names.push_back("est-in-rate-per-instance(log)");
  for (const char* fn : {"<", "<=", ">", ">=", "==", "!="}) {
    names.push_back(std::string("filter-fn=") + fn);
  }
  for (const char* t : {"int", "double", "string"}) {
    names.push_back(std::string("filter-literal=") + t);
  }
  names.push_back("window=tumbling");
  names.push_back("window=sliding");
  names.push_back("policy=count");
  names.push_back("policy=time");
  names.push_back("window-length(log)");
  names.push_back("window-slide(log)");
  for (const char* t : {"int", "double", "string"}) {
    names.push_back(std::string("join-key=") + t);
  }
  for (const char* t : {"int", "double", "string"}) {
    names.push_back(std::string("agg-class=") + t);
  }
  for (const char* fn : {"min", "max", "avg", "sum", "count"}) {
    names.push_back(std::string("agg-fn=") + fn);
  }
  for (const char* t : {"int", "double", "string"}) {
    names.push_back(std::string("agg-key=") + t);
  }
  return names;
}

}  // namespace zerotune::core
