#ifndef ZEROTUNE_CORE_RECONFIGURATION_H_
#define ZEROTUNE_CORE_RECONFIGURATION_H_

#include <map>

#include "core/optimizer.h"

namespace zerotune::core {

/// Outcome of a runtime what-if analysis.
struct ReconfigurationDecision {
  /// True when switching to `new_plan` is predicted to pay off after
  /// accounting for the migration pause.
  bool reconfigure = false;
  /// The recommended deployment (valid when `reconfigure`).
  dsp::ParallelQueryPlan new_plan;
  /// Predicted costs of keeping the current degrees under the new rates.
  CostPrediction keep_predicted;
  /// Predicted costs of the recommended deployment.
  CostPrediction new_predicted;
  /// Estimated stop-the-world migration pause (state relocation +
  /// restart) in milliseconds.
  double migration_pause_ms = 0.0;
  /// Net predicted gain in the combined log-cost score; positive favors
  /// reconfiguring.
  double gain = 0.0;
  /// True when the re-tuning search hit its deadline budget and returned
  /// its best-so-far assignment (see ParallelismOptimizer::Options).
  bool deadline_hit = false;
  /// Candidates the analytical tier ranked / kept during the re-tuning
  /// search (0 when prescreening is disabled).
  size_t candidates_prescreened = 0;
  size_t prescreen_kept = 0;

  explicit ReconfigurationDecision(dsp::ParallelQueryPlan plan)
      : new_plan(std::move(plan)) {}
};

/// Outcome of failure-aware re-optimization after losing a worker node.
struct RecoveryReport {
  /// Re-optimized deployment on the surviving nodes.
  dsp::ParallelQueryPlan recovered_plan;
  /// The degraded cluster the recovered plan targets.
  dsp::Cluster degraded_cluster;
  /// Predicted costs of keeping the pre-failure degrees squeezed onto the
  /// surviving nodes (the "do nothing but re-place" baseline).
  CostPrediction unrecovered_predicted;
  /// Predicted costs of the re-optimized deployment.
  CostPrediction recovered_predicted;
  /// Estimated stop-the-world pause to reach the recovered deployment
  /// (state relocation + instance restarts), in milliseconds.
  double migration_pause_ms = 0.0;
  /// Index of the node that failed (in the pre-failure cluster).
  int failed_node = -1;
  /// True when the recovery search hit its deadline budget and returned
  /// its best-so-far assignment.
  bool deadline_hit = false;
  /// Candidates the analytical tier ranked / kept during the recovery
  /// search (0 when prescreening is disabled).
  size_t candidates_prescreened = 0;
  size_t prescreen_kept = 0;

  explicit RecoveryReport(dsp::ParallelQueryPlan plan)
      : recovered_plan(std::move(plan)) {}
};

/// Runtime parallelism re-tuning on top of the zero-shot cost model
/// (paper Sec. II: "the proposed model can also be used to readjust
/// parallelism degree at runtime"). Given the currently running
/// deployment and freshly observed source rates, the planner predicts the
/// cost of keeping the current degrees, asks the optimizer for the best
/// deployment under the new rates, estimates the migration pause from the
/// windowed state that would have to be relocated, and recommends a
/// switch only when the amortized gain clears a hysteresis threshold —
/// avoiding the oscillation the paper's C1 criticizes online controllers
/// for.
class ReconfigurationPlanner {
 public:
  struct Options {
    /// Eq. 1 weight between latency and throughput.
    double weight = 0.5;
    /// Minimum relative predicted improvement before acting (hysteresis).
    double min_relative_gain = 0.15;
    /// Amortization horizon: the migration pause is charged against the
    /// improvement over this many seconds of continued execution.
    double horizon_s = 60.0;
    /// Restart overhead per affected operator instance (ms).
    double per_instance_restart_ms = 20.0;
    ParallelismOptimizer::Options optimizer;
  };

  ReconfigurationPlanner(const CostPredictor* predictor, Options options)
      : predictor_(predictor), options_(options) {}
  explicit ReconfigurationPlanner(const CostPredictor* predictor)
      : ReconfigurationPlanner(predictor, Options()) {}

  /// Evaluates a potential reconfiguration of `current` under
  /// `new_source_rates` (source operator id → newly observed event rate;
  /// sources not listed keep their rate).
  Result<ReconfigurationDecision> Evaluate(
      const dsp::ParallelQueryPlan& current,
      const std::map<int, double>& new_source_rates) const;

  /// Failure-aware re-optimization: drops `failed_node` from the cluster,
  /// re-runs the optimizer on the surviving nodes, and reports predicted
  /// costs of the re-optimized plan vs. merely re-placing the old degrees.
  /// The caller can validate the report against EventSimulator runs under
  /// the matching FaultPlan.
  Result<RecoveryReport> RecoverFromNodeFailure(
      const dsp::ParallelQueryPlan& current, int failed_node) const;

  /// Estimated bytes of windowed operator state a deployment holds —
  /// what a migration has to checkpoint and relocate.
  static double EstimateStateBytes(const dsp::ParallelQueryPlan& plan);

 private:
  const CostPredictor* predictor_;
  Options options_;
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_RECONFIGURATION_H_
