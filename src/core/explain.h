#ifndef ZEROTUNE_CORE_EXPLAIN_H_
#define ZEROTUNE_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/model.h"

namespace zerotune::core {

/// Sensitivity of one prediction to one operator-feature slot.
struct FeatureAttribution {
  int operator_id = -1;
  std::string feature_name;
  double feature_value = 0.0;
  /// Change in predicted log-latency when the feature slot is zeroed.
  double latency_impact = 0.0;
  /// Change in predicted log-throughput when the feature slot is zeroed.
  double throughput_impact = 0.0;
};

/// Model-debugging tool: occlusion-style attribution of a cost prediction
/// to the transferable features driving it. For every non-zero operator
/// feature slot, the explainer re-runs the forward pass with that slot
/// zeroed and records the prediction shift — the per-feature analogue of
/// the paper's group-level ablation (Exp. 6).
class PredictionExplainer {
 public:
  struct Options {
    /// Keep only the top-k attributions by absolute impact (0 = all).
    size_t top_k = 10;
  };

  PredictionExplainer(const ZeroTuneModel* model, Options options)
      : model_(model), options_(options) {}
  explicit PredictionExplainer(const ZeroTuneModel* model)
      : PredictionExplainer(model, Options()) {}

  /// Attributions for the model's prediction on `plan`, sorted by
  /// descending combined |impact|.
  Result<std::vector<FeatureAttribution>> Explain(
      const dsp::ParallelQueryPlan& plan) const;

  /// Renders attributions as an aligned text table.
  static std::string ToText(const std::vector<FeatureAttribution>& attrs);

 private:
  const ZeroTuneModel* model_;
  Options options_;
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_EXPLAIN_H_
