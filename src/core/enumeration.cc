#include "core/enumeration.h"

#include <algorithm>
#include <cmath>

namespace zerotune::core {

namespace {

using dsp::Operator;
using dsp::OperatorType;

/// Algorithm 1 rate propagation with (possibly noisy) selectivities:
/// In_ER(source) is the application event rate; Out_ER(ω) = In_ER(ω) ·
/// sel(ω); a downstream operator's input is the sum of its upstreams'
/// outputs (joins consume both branches).
std::vector<double> PropagateRates(const dsp::QueryPlan& q,
                                   const std::vector<double>& selectivity) {
  std::vector<double> in(q.num_operators(), 0.0);
  std::vector<double> out(q.num_operators(), 0.0);
  for (int id : q.TopologicalOrder()) {
    const Operator& op = q.op(id);
    if (op.type == OperatorType::kSource) {
      in[static_cast<size_t>(id)] = op.source.event_rate;
    } else {
      double rate = 0.0;
      for (int u : q.upstreams(id)) rate += out[static_cast<size_t>(u)];
      in[static_cast<size_t>(id)] = rate;
    }
    out[static_cast<size_t>(id)] =
        in[static_cast<size_t>(id)] * selectivity[static_cast<size_t>(id)];
  }
  return in;
}

Status AssignFromRates(dsp::ParallelQueryPlan* plan,
                       const std::vector<double>& input_rates,
                       double scale_factor, int max_parallelism) {
  const dsp::QueryPlan& q = plan->logical();
  const int cap =
      std::max(1, std::min(max_parallelism, plan->cluster().TotalCores()));
  for (const Operator& op : q.operators()) {
    int degree = 1;
    if (op.type == OperatorType::kSink) {
      degree = 1;
    } else {
      const double raw =
          scale_factor * input_rates[static_cast<size_t>(op.id)];
      degree = static_cast<int>(std::lround(raw));
      degree = std::clamp(degree, 1, cap);
    }
    ZT_RETURN_IF_ERROR(plan->SetParallelism(op.id, degree));
  }
  plan->DerivePartitioning();
  return plan->PlaceRoundRobin();
}

/// Shared Enumerate() body: draw `count` sampled assignments from
/// `assign` (the enumerator's Assign under a seeded Rng) and package the
/// parallelism vectors as PlanCandidates.
template <typename AssignFn>
Result<std::vector<PlanCandidate>> SampleCandidates(
    const dsp::QueryPlan& logical, const dsp::Cluster& cluster, size_t count,
    uint64_t seed, const std::string& origin, const AssignFn& assign) {
  ZT_RETURN_IF_ERROR(logical.Validate());
  zerotune::Rng rng(seed);
  std::vector<PlanCandidate> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    dsp::ParallelQueryPlan plan(logical, cluster);
    ZT_RETURN_IF_ERROR(assign(&plan, &rng));
    out.emplace_back(plan.ParallelismVector(), origin);
  }
  return out;
}

}  // namespace

Status OptiSampleEnumerator::Options::Validate() const {
  if (!(min_scale_factor > 0.0)) {
    return Status::InvalidArgument("min_scale_factor must be positive, got " +
                                   std::to_string(min_scale_factor));
  }
  if (!(max_scale_factor >= min_scale_factor)) {
    return Status::InvalidArgument(
        "max_scale_factor must be >= min_scale_factor");
  }
  if (!(selectivity_noise_sigma >= 0.0)) {
    return Status::InvalidArgument(
        "selectivity_noise_sigma must be >= 0, got " +
        std::to_string(selectivity_noise_sigma));
  }
  if (max_parallelism < 1) {
    return Status::InvalidArgument("max_parallelism must be >= 1, got " +
                                   std::to_string(max_parallelism));
  }
  if (num_candidates < 1) {
    return Status::InvalidArgument("num_candidates must be >= 1");
  }
  return Status::OK();
}

Status OptiSampleEnumerator::Assign(dsp::ParallelQueryPlan* plan,
                                    zerotune::Rng* rng) const {
  ZT_RETURN_IF_ERROR(options_status_);
  const dsp::QueryPlan& q = plan->logical();
  // Estimated selectivities: the true value perturbed by estimation error,
  // so the corpus also contains inefficient deployments (Sec. IV).
  std::vector<double> est_sel(q.num_operators(), 1.0);
  for (const Operator& op : q.operators()) {
    double sel = q.OperatorSelectivity(op.id);
    if (op.type != OperatorType::kSource && op.type != OperatorType::kSink) {
      sel *= rng->LogNormalFactor(options_.selectivity_noise_sigma);
      sel = std::clamp(sel, 0.0, 1.0);
    }
    est_sel[static_cast<size_t>(op.id)] = sel;
  }
  const std::vector<double> in_rates = PropagateRates(q, est_sel);
  const double sf = std::exp(rng->Uniform(std::log(options_.min_scale_factor),
                                          std::log(options_.max_scale_factor)));
  return AssignFromRates(plan, in_rates, sf, options_.max_parallelism);
}

Result<std::vector<PlanCandidate>> OptiSampleEnumerator::Enumerate(
    const dsp::QueryPlan& logical, const dsp::Cluster& cluster) const {
  ZT_RETURN_IF_ERROR(options_status_);
  return SampleCandidates(
      logical, cluster, options_.num_candidates, options_.seed, "opti-sample",
      [this](dsp::ParallelQueryPlan* plan, zerotune::Rng* rng) {
        return Assign(plan, rng);
      });
}

Status OptiSampleEnumerator::AssignWithScaleFactor(
    dsp::ParallelQueryPlan* plan, double scale_factor, int max_parallelism) {
  const dsp::QueryPlan& q = plan->logical();
  std::vector<double> sel(q.num_operators(), 1.0);
  for (const Operator& op : q.operators()) {
    sel[static_cast<size_t>(op.id)] = q.OperatorSelectivity(op.id);
  }
  const std::vector<double> in_rates = PropagateRates(q, sel);
  return AssignFromRates(plan, in_rates, scale_factor, max_parallelism);
}

Status RandomEnumerator::Options::Validate() const {
  if (max_parallelism < 1) {
    return Status::InvalidArgument("max_parallelism must be >= 1, got " +
                                   std::to_string(max_parallelism));
  }
  if (num_candidates < 1) {
    return Status::InvalidArgument("num_candidates must be >= 1");
  }
  return Status::OK();
}

Status RandomEnumerator::Assign(dsp::ParallelQueryPlan* plan,
                                zerotune::Rng* rng) const {
  ZT_RETURN_IF_ERROR(options_status_);
  const dsp::QueryPlan& q = plan->logical();
  const int cap = std::max(
      1, std::min(options_.max_parallelism, plan->cluster().TotalCores()));
  for (const Operator& op : q.operators()) {
    const int degree =
        op.type == OperatorType::kSink
            ? 1
            : static_cast<int>(rng->UniformInt(1, cap));
    ZT_RETURN_IF_ERROR(plan->SetParallelism(op.id, degree));
  }
  plan->DerivePartitioning();
  return plan->PlaceRoundRobin();
}

Result<std::vector<PlanCandidate>> RandomEnumerator::Enumerate(
    const dsp::QueryPlan& logical, const dsp::Cluster& cluster) const {
  ZT_RETURN_IF_ERROR(options_status_);
  return SampleCandidates(
      logical, cluster, options_.num_candidates, options_.seed, "random",
      [this](dsp::ParallelQueryPlan* plan, zerotune::Rng* rng) {
        return Assign(plan, rng);
      });
}

}  // namespace zerotune::core
