#include "core/cost_predictor.h"

namespace zerotune::core {

Result<std::vector<CostPrediction>> CostPredictor::PredictBatch(
    std::span<const dsp::ParallelQueryPlan* const> plans) const {
  std::vector<CostPrediction> out;
  out.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    if (plans[i] == nullptr) {
      return Status::InvalidArgument("PredictBatch: plan #" +
                                     std::to_string(i) + " is null");
    }
    Result<CostPrediction> p = Predict(*plans[i]);
    if (!p.ok()) {
      return p.status().Annotated("PredictBatch: plan #" +
                                  std::to_string(i) + " of " +
                                  std::to_string(plans.size()) + " failed");
    }
    out.push_back(p.value());
  }
  return out;
}

Result<std::vector<CostPrediction>> PredictBatch(
    const CostPredictor& predictor,
    const std::vector<dsp::ParallelQueryPlan>& plans) {
  std::vector<const dsp::ParallelQueryPlan*> ptrs;
  ptrs.reserve(plans.size());
  for (const dsp::ParallelQueryPlan& p : plans) ptrs.push_back(&p);
  return predictor.PredictBatch(ptrs);
}

}  // namespace zerotune::core
