#ifndef ZEROTUNE_CORE_OPTIMIZER_H_
#define ZEROTUNE_CORE_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "core/cost_predictor.h"
#include "core/search_space.h"
#include "dsp/cluster.h"
#include "dsp/query_plan.h"

namespace zerotune::core {

/// Parallelism tuning with what-if cost predictions (paper Sec. III-C3):
/// enumerate candidate parallelism assignments, predict their costs with a
/// CostPredictor, and pick the assignment minimizing the combined
/// objective of Eq. 1,
///     C = wt · C_L + (1 − wt) · C_T,
/// where C_L and C_T are the candidates' min-max-normalized latency and
/// negated throughput, subject to P_i ≥ 1 and max P_i ≤ total cores.
///
/// Scoring is a two-tier pipeline (docs/api.md has the flow diagram):
/// a pluggable SearchSpace enumerates PlanCandidates; with prescreening
/// enabled, an AnalyticalPrescreen fitted from a handful of batched GNN
/// probes ranks the full set in microseconds and only the top-K fraction
/// reaches the GnnReranker (the existing PredictBatch path); with
/// prescreening disabled every candidate is GNN-scored directly and the
/// result is bit-identical to the single-tier optimizer. A bounded
/// hill-climbing refinement doubles/halves individual operator degrees
/// while the predicted objective improves, prescreening each round's
/// neighbor set the same way.
class ParallelismOptimizer {
 public:
  /// Analytical pre-screen tier configuration (ROADMAP item 5).
  struct PrescreenOptions {
    /// Off by default: the default pipeline stays bit-identical to the
    /// pre-two-tier optimizer.
    bool enabled = false;
    /// Fraction of enumerated candidates that survives the analytical
    /// cut into GNN scoring.
    double keep_fraction = 0.15;
    /// Lower bound on survivors, so tiny candidate sets are not starved.
    size_t min_keep = 3;
    /// Probe ladder size for calibrating the analytical closures; the
    /// probes are GNN-scored (one batch) and double as candidates.
    size_t max_probes = 6;
    /// GNN-scored neighbors per hill-climbing round (the analytical tier
    /// ranks the full neighbor set first).
    size_t hill_climb_keep = 2;

    Status Validate() const;
  };

  struct Options {
    /// wt in Eq. 1 — relative weight of latency vs. (negated) throughput.
    double weight = 0.5;
    int max_parallelism = 128;

    /// Hill-climbing passes over the operators (0 disables refinement).
    size_t refinement_passes = 2;

    /// Candidate generation strategy (borrowed; may be null). Null means
    /// a default GridSearchSpace capped at `max_parallelism` — exactly
    /// the historical candidate space (the grid knobs live on
    /// GridSearchSpace::Options; construct one to customize them).
    /// Candidates of any SearchSpace are deduplicated, statically vetted
    /// and scored by the two-tier pipeline; enumeration failures fail
    /// Tune() loudly.
    const SearchSpace* search_space = nullptr;

    /// Analytical pre-screen tier; disabled by default.
    PrescreenOptions prescreen;

    /// Extra degree vectors (indexed by operator id) to evaluate alongside
    /// the enumerated candidates — e.g. a previous deployment or operator
    /// hints. Unlike enumerated candidates, seeds are untrusted: each one
    /// is routed through analysis::PlanAnalyzer and dropped (counted in
    /// TuningResult::candidates_rejected) when it fails a static check.
    std::vector<std::vector<int>> seed_candidates;

    /// Optional cooperative time budget (borrowed; may be null). Checked
    /// between scoring batches — candidates scored so far are kept and the
    /// best one is returned with TuningResult::deadline_hit set. Expiring
    /// before any candidate was scored fails with DeadlineExceeded.
    const Deadline* deadline = nullptr;

    /// Rejects out-of-range settings (weight outside [0, 1], empty
    /// scale-factor grid, non-positive bounds, bad prescreen knobs, …).
    /// Checked at optimizer construction; Tune() fails with this status
    /// instead of silently clamping bad values.
    Status Validate() const;
  };

  struct Candidate {
    std::vector<int> degrees;  // indexed by operator id
    CostPrediction predicted;
  };

  struct TuningResult {
    dsp::ParallelQueryPlan plan;  // best deployment found
    CostPrediction predicted;     // its predicted costs
    /// Eq. 1 objective of the winner, normalized over all evaluated
    /// candidates (0 = best possible among them).
    double weighted_cost = 0.0;
    size_t candidates_evaluated = 0;
    /// Candidates the static analyzer rejected before scoring (invalid
    /// degrees, over-parallelized operators, broken partitioning).
    size_t candidates_rejected = 0;
    /// Candidates ranked by the analytical tier (0 when prescreening is
    /// disabled or calibration fell back to full GNN scoring).
    size_t candidates_prescreened = 0;
    /// Of those, the survivors that went on to GNN scoring.
    size_t prescreen_kept = 0;
    /// True when Options::deadline expired mid-search: the result is the
    /// best assignment found within the budget, not the full search's.
    bool deadline_hit = false;
    std::vector<Candidate> candidates;  // everything evaluated

    TuningResult(dsp::ParallelQueryPlan p) : plan(std::move(p)) {}
  };

  /// Validates `options` eagerly; an invalid configuration surfaces as
  /// the (unchanged) status from every subsequent Tune() call.
  ParallelismOptimizer(const CostPredictor* predictor, Options options)
      : predictor_(predictor),
        options_(options),
        options_status_(options.Validate()) {}
  explicit ParallelismOptimizer(const CostPredictor* predictor)
      : ParallelismOptimizer(predictor, Options()) {}

  /// Finds the best parallelism assignment for `logical` on `cluster`.
  /// Candidate scoring goes through CostPredictor::PredictBatch: the
  /// enumeration phases and each hill-climbing round are scored as one
  /// batch, so batched predictors (ZeroTuneModel) amortize featurization
  /// and run the MLP stages row-batched.
  Result<TuningResult> Tune(const dsp::QueryPlan& logical,
                            const dsp::Cluster& cluster) const;

  /// Eq. 1 weighted cost of (latency, throughput) normalized against the
  /// ranges observed across `candidates`.
  static double WeightedCost(const CostPrediction& p,
                             const std::vector<Candidate>& candidates,
                             double weight);

 private:
  /// Search score: wt·log(latency) − (1−wt)·log(throughput). Monotone in
  /// both metrics, independent of the candidate set (unlike Eq. 1's
  /// normalization), so hill climbing is well-defined.
  double Score(const CostPrediction& p) const;

  const CostPredictor* predictor_;
  Options options_;
  Status options_status_;
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_OPTIMIZER_H_
