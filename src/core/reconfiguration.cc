#include "core/reconfiguration.h"

#include <algorithm>
#include <cmath>

namespace zerotune::core {

namespace {

using dsp::Operator;
using dsp::OperatorType;

double Score(const CostPrediction& p, double weight) {
  return weight * std::log(std::max(p.latency_ms, 1e-6)) -
         (1.0 - weight) * std::log(std::max(p.throughput_tps, 1e-6));
}

}  // namespace

double ReconfigurationPlanner::EstimateStateBytes(
    const dsp::ParallelQueryPlan& plan) {
  const dsp::QueryPlan& q = plan.logical();
  const std::vector<double> in_rates = q.EstimatedInputRates();
  double bytes = 0.0;
  for (const Operator& op : q.operators()) {
    if (!op.IsWindowed()) continue;
    const dsp::WindowSpec& w = op.type == OperatorType::kWindowAggregate
                                   ? op.aggregate.window
                                   : op.join.window;
    const int degree = plan.parallelism(op.id);
    const double per_instance_rate =
        in_rates[static_cast<size_t>(op.id)] /
        std::max(1.0, static_cast<double>(degree));
    // Tuples resident per instance × instances × input tuple size;
    // sliding windows hold `length/slide` overlapping panes.
    const double overlap = std::max(1.0, w.length / std::max(w.slide, 1e-9));
    double tuple_bytes = 64.0;
    const auto& ups = q.upstreams(op.id);
    if (!ups.empty()) {
      tuple_bytes = q.op(ups[0]).output_schema.SizeBytes();
    }
    bytes += w.ExpectedTuples(per_instance_rate) *
             static_cast<double>(degree) * tuple_bytes * overlap;
  }
  return bytes;
}

Result<RecoveryReport> ReconfigurationPlanner::RecoverFromNodeFailure(
    const dsp::ParallelQueryPlan& current, int failed_node) const {
  ZT_RETURN_IF_ERROR(current.Validate());
  ZT_ASSIGN_OR_RETURN(
      dsp::Cluster degraded,
      current.cluster().WithoutNode(static_cast<size_t>(failed_node)));
  const int degraded_cores = degraded.TotalCores();

  // Baseline: keep the old degrees (capped to the surviving capacity) and
  // just re-place the instances on the remaining nodes.
  dsp::ParallelQueryPlan unrecovered(current.logical(), degraded);
  for (const Operator& op : current.logical().operators()) {
    const int degree = std::min(current.parallelism(op.id), degraded_cores);
    ZT_RETURN_IF_ERROR(unrecovered.SetParallelism(op.id, degree));
  }
  unrecovered.DerivePartitioning();
  ZT_RETURN_IF_ERROR(unrecovered.PlaceRoundRobin());
  Result<CostPrediction> unrecovered_r = predictor_->Predict(unrecovered);
  if (!unrecovered_r.ok()) {
    return unrecovered_r.status().Annotated(
        "predicting un-recovered plan after failure of node " +
        std::to_string(failed_node));
  }
  const CostPrediction unrecovered_pred = unrecovered_r.value();

  // Re-optimize from scratch on the degraded cluster. The optimizer
  // scores its candidates through CostPredictor::PredictBatch.
  ParallelismOptimizer::Options opt_options = options_.optimizer;
  opt_options.weight = options_.weight;
  opt_options.max_parallelism =
      std::min(opt_options.max_parallelism, degraded_cores);
  ParallelismOptimizer optimizer(predictor_, opt_options);
  Result<ParallelismOptimizer::TuningResult> tuned_r =
      optimizer.Tune(current.logical(), degraded);
  if (!tuned_r.ok()) {
    return tuned_r.status().Annotated(
        "re-tuning on degraded cluster after failure of node " +
        std::to_string(failed_node));
  }
  ParallelismOptimizer::TuningResult tuned = std::move(tuned_r).value();

  RecoveryReport report(std::move(tuned.plan));
  report.degraded_cluster = std::move(degraded);
  report.unrecovered_predicted = unrecovered_pred;
  report.recovered_predicted = tuned.predicted;
  report.failed_node = failed_node;
  report.deadline_hit = tuned.deadline_hit;
  report.candidates_prescreened = tuned.candidates_prescreened;
  report.prescreen_kept = tuned.prescreen_kept;

  // Recovery pause: the failed node's windowed state must be rebuilt and
  // every instance whose degree changed restarts. State on surviving nodes
  // is relocated too when degrees shift, so we charge the full estimate.
  const double state_bytes = EstimateStateBytes(current);
  const double link_gbps = report.degraded_cluster.num_nodes() > 0
                               ? report.degraded_cluster.node(0).network_gbps
                               : 10.0;
  double restart_instances = 0.0;
  for (const Operator& op : current.logical().operators()) {
    if (report.recovered_plan.parallelism(op.id) !=
        current.parallelism(op.id)) {
      restart_instances += static_cast<double>(
          std::max(report.recovered_plan.parallelism(op.id),
                   current.parallelism(op.id)));
    }
  }
  report.migration_pause_ms =
      state_bytes * 8.0 / (link_gbps * 1e9) * 1e3 +
      restart_instances * options_.per_instance_restart_ms;
  return report;
}

Result<ReconfigurationDecision> ReconfigurationPlanner::Evaluate(
    const dsp::ParallelQueryPlan& current,
    const std::map<int, double>& new_source_rates) const {
  ZT_RETURN_IF_ERROR(current.Validate());

  // Updated logical plan with the observed rates.
  dsp::QueryPlan updated = current.logical();
  for (const auto& [op_id, rate] : new_source_rates) {
    if (op_id < 0 || op_id >= static_cast<int>(updated.num_operators()) ||
        updated.op(op_id).type != OperatorType::kSource) {
      return Status::InvalidArgument(
          "new_source_rates must reference source operators");
    }
    if (rate <= 0.0) {
      return Status::InvalidArgument("observed rate must be positive");
    }
    updated.mutable_op(op_id).source.event_rate = rate;
  }

  // Option A: keep the current degrees under the new load.
  dsp::ParallelQueryPlan keep(updated, current.cluster());
  for (const Operator& op : updated.operators()) {
    ZT_RETURN_IF_ERROR(
        keep.SetParallelism(op.id, current.parallelism(op.id)));
    ZT_RETURN_IF_ERROR(keep.SetPartitioning(
        op.id, current.placement(op.id).partitioning));
  }
  ZT_RETURN_IF_ERROR(keep.PlaceRoundRobin());
  Result<CostPrediction> keep_r = predictor_->Predict(keep);
  if (!keep_r.ok()) {
    return keep_r.status().Annotated(
        "predicting keep-current plan under updated source rates");
  }
  const CostPrediction keep_pred = keep_r.value();

  // Option B: re-tune from scratch under the new load (candidate scoring
  // goes through CostPredictor::PredictBatch inside the optimizer).
  ParallelismOptimizer::Options opt_options = options_.optimizer;
  opt_options.weight = options_.weight;
  ParallelismOptimizer optimizer(predictor_, opt_options);
  Result<ParallelismOptimizer::TuningResult> tuned_r =
      optimizer.Tune(updated, current.cluster());
  if (!tuned_r.ok()) {
    return tuned_r.status().Annotated(
        "re-tuning under updated source rates");
  }
  ParallelismOptimizer::TuningResult tuned = std::move(tuned_r).value();

  ReconfigurationDecision decision(std::move(tuned.plan));
  decision.keep_predicted = keep_pred;
  decision.new_predicted = tuned.predicted;
  decision.deadline_hit = tuned.deadline_hit;
  decision.candidates_prescreened = tuned.candidates_prescreened;
  decision.prescreen_kept = tuned.prescreen_kept;

  // Migration pause: relocate the *current* plan's windowed state plus
  // restart every instance whose degree changes.
  const double state_bytes = EstimateStateBytes(current);
  const double link_gbps = current.cluster().num_nodes() > 0
                               ? current.cluster().node(0).network_gbps
                               : 10.0;
  double restart_instances = 0.0;
  for (const Operator& op : updated.operators()) {
    if (decision.new_plan.parallelism(op.id) !=
        current.parallelism(op.id)) {
      restart_instances += static_cast<double>(
          std::max(decision.new_plan.parallelism(op.id),
                   current.parallelism(op.id)));
    }
  }
  decision.migration_pause_ms =
      state_bytes * 8.0 / (link_gbps * 1e9) * 1e3 +
      restart_instances * options_.per_instance_restart_ms;

  // Amortized decision: the score gain must clear the hysteresis band
  // plus the migration pause spread over the horizon.
  const double keep_score = Score(keep_pred, options_.weight);
  const double new_score = Score(tuned.predicted, options_.weight);
  const double amortized_pause =
      decision.migration_pause_ms / 1e3 / options_.horizon_s;
  decision.gain = (keep_score - new_score) -
                  std::log1p(options_.min_relative_gain) - amortized_pause;
  decision.reconfigure = decision.gain > 0.0;
  return decision;
}

}  // namespace zerotune::core
