#include "core/dataset_builder.h"

namespace zerotune::core {

namespace {

using workload::Dataset;
using workload::GeneratedQuery;
using workload::LabeledQuery;
using workload::QueryStructure;

}  // namespace

Result<LabeledQuery> LabelPlan(dsp::ParallelQueryPlan plan,
                               QueryStructure structure,
                               const sim::CostEngine& engine) {
  ZT_ASSIGN_OR_RETURN(const sim::CostMeasurement m, engine.Measure(plan));
  return LabeledQuery(std::move(plan), m.latency_ms, m.throughput_tps,
                      structure);
}

Result<Dataset> BuildDataset(const ParallelismEnumerator& enumerator,
                             const DatasetBuilderOptions& options) {
  const std::vector<QueryStructure> structures =
      options.structures.empty() ? workload::TrainingStructures()
                                 : options.structures;
  const sim::CostEngine engine(options.cost_params);

  // Pre-draw per-sample seeds so parallel labeling stays deterministic.
  zerotune::Rng root(options.seed);
  std::vector<uint64_t> seeds(options.count);
  for (auto& s : seeds) s = root.engine()();

  std::vector<Result<LabeledQuery>> results(
      options.count, Result<LabeledQuery>(Status::Internal("not built")));
  auto build_one = [&](size_t i) {
    zerotune::Rng rng(seeds[i]);
    workload::QueryGenerator gen(options.generator, rng.engine()());
    const QueryStructure structure = rng.Choice(structures);
    Result<GeneratedQuery> g = gen.Generate(structure);
    if (!g.ok()) {
      results[i] = g.status();
      return;
    }
    dsp::ParallelQueryPlan plan(std::move(g.value().plan),
                                std::move(g.value().cluster));
    Status s = enumerator.Assign(&plan, &rng);
    if (!s.ok()) {
      results[i] = s;
      return;
    }
    results[i] = LabelPlan(std::move(plan), structure, engine);
  };

  ParallelFor(options.pool, options.count, build_one);

  Dataset out;
  for (auto& r : results) {
    if (!r.ok()) return r.status();
    out.Add(std::move(r).value());
  }
  return out;
}

Result<Dataset> BuildBenchmarkDataset(QueryStructure structure, size_t count,
                                      const ParallelismEnumerator& enumerator,
                                      const DatasetBuilderOptions& options) {
  const sim::CostEngine engine(options.cost_params);
  zerotune::Rng rng(options.seed);
  Dataset out;
  for (size_t i = 0; i < count; ++i) {
    workload::BenchmarkQueries::Options bopts;
    // Benchmarks run at arbitrarily low incoming event rates (paper
    // Exp. 2); sample a modest rate band.
    bopts.event_rate = std::exp(rng.Uniform(std::log(500.0),
                                            std::log(20000.0)));
    ZT_ASSIGN_OR_RETURN(
        GeneratedQuery g,
        workload::BenchmarkQueries::Build(structure, bopts, &rng));
    dsp::ParallelQueryPlan plan(std::move(g.plan), std::move(g.cluster));
    ZT_RETURN_IF_ERROR(enumerator.Assign(&plan, &rng));
    ZT_ASSIGN_OR_RETURN(LabeledQuery q,
                        LabelPlan(std::move(plan), structure, engine));
    out.Add(std::move(q));
  }
  return out;
}

}  // namespace zerotune::core
