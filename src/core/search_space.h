#ifndef ZEROTUNE_CORE_SEARCH_SPACE_H_
#define ZEROTUNE_CORE_SEARCH_SPACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dsp/cluster.h"
#include "dsp/query_plan.h"

namespace zerotune::core {

/// One point in the optimizer's candidate space. Today a candidate is a
/// parallelism assignment; the struct is deliberately opaque to scoring
/// code so a placement map (ROADMAP item 4: operator instance → node for
/// edge-cloud / geo-distributed clusters) can ride along without touching
/// the two-tier scoring pipeline.
struct PlanCandidate {
  /// Parallelism degree per operator, indexed by operator id.
  std::vector<int> degrees;
  /// Which generator produced the candidate ("opti-sample", "uniform",
  /// "seed", "random", …) — for explain output and debugging; scoring
  /// ignores it.
  std::string origin;

  PlanCandidate() = default;
  explicit PlanCandidate(std::vector<int> d, std::string o = "")
      : degrees(std::move(d)), origin(std::move(o)) {}
};

/// Candidate generation strategy, decoupled from scoring. The optimizer
/// asks a SearchSpace for the full candidate set once per Tune() and owns
/// deduplication, static vetting, prescreening and GNN scoring of
/// whatever comes back. Implementations must be deterministic for a given
/// (plan, cluster) unless their options say otherwise (RandomSearchSpace
/// seeds explicitly).
class SearchSpace {
 public:
  virtual ~SearchSpace() = default;

  /// Enumerates candidates for `logical` on `cluster`, in a stable,
  /// implementation-defined order (the optimizer keeps first occurrences
  /// when deduplicating, so order is part of the contract).
  virtual Result<std::vector<PlanCandidate>> Enumerate(
      const dsp::QueryPlan& logical, const dsp::Cluster& cluster) const = 0;

  virtual std::string name() const = 0;
};

/// The optimizer's historical candidate space, now behind the SearchSpace
/// interface: OptiSample assignments over a log-spaced scaling-factor
/// grid (Algorithm 1 with exact selectivities) followed by uniform
/// degrees with sources/sinks pinned at 1. Candidate order matches the
/// pre-SearchSpace optimizer exactly, which is what keeps Tune()
/// bit-identical when no custom space is injected.
class GridSearchSpace : public SearchSpace {
 public:
  struct Options {
    int max_parallelism = 128;
    /// Number of log-spaced OptiSample scaling factors to enumerate.
    size_t num_scale_factors = 12;
    double min_scale_factor = 1e-6;
    double max_scale_factor = 1e-3;
    std::vector<int> uniform_degrees = {1, 2, 4, 8, 16, 32, 64};

    /// Rejects empty grids and out-of-range bounds; checked at
    /// construction and surfaced by Enumerate().
    Status Validate() const;
  };

  GridSearchSpace() : GridSearchSpace(Options()) {}
  explicit GridSearchSpace(Options options)
      : options_(options), options_status_(options.Validate()) {}

  Result<std::vector<PlanCandidate>> Enumerate(
      const dsp::QueryPlan& logical,
      const dsp::Cluster& cluster) const override;
  std::string name() const override { return "grid"; }

  const Options& options() const { return options_; }

 private:
  Options options_;
  Status options_status_;
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_SEARCH_SPACE_H_
