#ifndef ZEROTUNE_CORE_ORACLE_PREDICTOR_H_
#define ZEROTUNE_CORE_ORACLE_PREDICTOR_H_

#include "core/cost_predictor.h"
#include "sim/cost_engine.h"

namespace zerotune::core {

/// CostPredictor that consults the ground-truth engine directly (without
/// measurement noise). Provides an upper bound on what any learned model
/// can achieve and a what-if oracle for tests. A real deployment has no
/// such oracle — executing every candidate is exactly the cost the paper's
/// zero-shot model avoids.
class OraclePredictor : public CostPredictor {
 public:
  explicit OraclePredictor(sim::CostParams params = sim::CostParams())
      : engine_(params) {}

  Result<CostPrediction> Predict(
      const dsp::ParallelQueryPlan& plan) const override {
    ZT_ASSIGN_OR_RETURN(const sim::CostMeasurement m,
                        engine_.MeasureNoiseless(plan));
    return CostPrediction{m.latency_ms, m.throughput_tps};
  }

  std::string name() const override { return "Oracle"; }

 private:
  sim::CostEngine engine_;
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_ORACLE_PREDICTOR_H_
