#include "core/search_space.h"

#include <algorithm>
#include <cmath>

#include "core/enumeration.h"
#include "dsp/parallel_plan.h"

namespace zerotune::core {

Status GridSearchSpace::Options::Validate() const {
  if (max_parallelism < 1) {
    return Status::InvalidArgument("max_parallelism must be >= 1, got " +
                                   std::to_string(max_parallelism));
  }
  if (num_scale_factors < 1) {
    return Status::InvalidArgument("num_scale_factors must be >= 1");
  }
  if (!(min_scale_factor > 0.0)) {
    return Status::InvalidArgument("min_scale_factor must be positive, got " +
                                   std::to_string(min_scale_factor));
  }
  if (!(max_scale_factor >= min_scale_factor)) {
    return Status::InvalidArgument(
        "max_scale_factor must be >= min_scale_factor");
  }
  for (int d : uniform_degrees) {
    if (d < 1) {
      return Status::InvalidArgument(
          "uniform_degrees entries must be >= 1, got " + std::to_string(d));
    }
  }
  return Status::OK();
}

Result<std::vector<PlanCandidate>> GridSearchSpace::Enumerate(
    const dsp::QueryPlan& logical, const dsp::Cluster& cluster) const {
  ZT_RETURN_IF_ERROR(options_status_);
  ZT_RETURN_IF_ERROR(logical.Validate());
  const int cap =
      std::max(1, std::min(options_.max_parallelism, cluster.TotalCores()));
  std::vector<PlanCandidate> out;
  out.reserve(options_.num_scale_factors + options_.uniform_degrees.size());

  // (a) OptiSample-derived candidates over a log-spaced scaling-factor
  // grid (exact selectivities — the deterministic Algorithm 1 variant).
  for (size_t i = 0; i < options_.num_scale_factors; ++i) {
    const double t =
        options_.num_scale_factors <= 1
            ? 0.0
            : static_cast<double>(i) /
                  static_cast<double>(options_.num_scale_factors - 1);
    const double sf =
        std::exp(std::log(options_.min_scale_factor) +
                 t * (std::log(options_.max_scale_factor) -
                      std::log(options_.min_scale_factor)));
    dsp::ParallelQueryPlan plan(logical, cluster);
    ZT_RETURN_IF_ERROR(OptiSampleEnumerator::AssignWithScaleFactor(
        &plan, sf, options_.max_parallelism));
    out.emplace_back(plan.ParallelismVector(), "opti-sample");
  }

  // (b) Uniform degrees with sources/sinks pinned at 1.
  for (int d : options_.uniform_degrees) {
    if (d > cap) continue;
    std::vector<int> degrees(logical.num_operators(), d);
    for (const dsp::Operator& op : logical.operators()) {
      if (op.type == dsp::OperatorType::kSource ||
          op.type == dsp::OperatorType::kSink) {
        degrees[static_cast<size_t>(op.id)] = 1;
      }
    }
    out.emplace_back(std::move(degrees), "uniform");
  }
  return out;
}

}  // namespace zerotune::core
