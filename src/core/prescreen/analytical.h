#ifndef ZEROTUNE_CORE_PRESCREEN_ANALYTICAL_H_
#define ZEROTUNE_CORE_PRESCREEN_ANALYTICAL_H_

#include <string>
#include <vector>

#include "analysis/segments.h"
#include "core/cost_predictor.h"
#include "core/prescreen/scoring_tier.h"
#include "dsp/cluster.h"
#include "dsp/query_plan.h"

namespace zerotune::core {

/// Compositional analytical cost model in the style of the extra-p
/// CompositionalPerformanceAnalyzer: the plan is decomposed into
/// pipeline / map-reduce / task-pool segments (analysis/segments.h), each
/// segment contributes a closed-form load closure
///
///   x_s(P) = log1p( Σ_{ω∈s} In_ER(ω)/P(ω)  +  Σ shuffled In_ER(ω) ),
///
/// i.e. per-instance processing load plus the rate crossing non-forward
/// (repartitioning) segment boundaries, and the predicted log-costs
/// compose linearly over the pattern kinds plus a parallelism-overhead
/// term:
///
///   log C(P) = β₀ + Σ_kind β_kind · Σ_{s: kind} x_s(P)
///                 + β_par · log1p(Σ P(ω)).
///
/// The β are calibrated once per (model, plan, cluster) by ridge
/// regression on a handful of batched GNN probe predictions (Fit), after
/// which ScoreCandidates ranks arbitrarily many candidates in
/// microseconds — no featurization, no message passing. The tier is a
/// *pre-screen*: its job is ordering candidates well enough that the true
/// optimum survives the top-K cut, not absolute accuracy; survivors are
/// re-scored by the GNN.
class AnalyticalPrescreen : public ScoringTier {
 public:
  struct Options {
    /// Eq. 1 weight between log-latency and negated log-throughput in
    /// the ranking score — use the optimizer's weight.
    double weight = 0.5;
    /// Ridge regularizer for the calibration fit; keeps the normal
    /// equations well-posed when probes ≤ coefficients.
    double ridge = 1e-4;

    Status Validate() const;
  };

  /// Uniform probe ladder for calibration: up to `max_probes` degree
  /// vectors, log-spaced over [1, min(max_parallelism, cluster cores)],
  /// sources/sinks pinned at 1, deduplicated. These double as reasonable
  /// candidates, so callers typically score them with the GNN anyway and
  /// reuse the predictions for Fit.
  static Result<std::vector<std::vector<int>>> ProbeLadder(
      const dsp::QueryPlan& logical, const dsp::Cluster& cluster,
      int max_parallelism, size_t max_probes);

  /// Calibrates the closures from probe predictions. Requires at least
  /// two distinct probes; fails on a degenerate segment decomposition
  /// (no processing operators anywhere — nothing to model; lint ZT-P026).
  static Result<AnalyticalPrescreen> Fit(
      const dsp::QueryPlan& logical, const dsp::Cluster& cluster,
      const std::vector<std::vector<int>>& probe_degrees,
      const std::vector<CostPrediction>& probe_costs, Options options);

  /// Ranks candidates by weight·log-latency − (1−weight)·log-throughput
  /// under the fitted closures. Microseconds per candidate.
  Result<std::vector<double>> ScoreCandidates(
      const std::vector<PlanCandidate>& candidates) const override;
  std::string name() const override { return "analytical-prescreen"; }

  /// Indices of the `keep` lowest scores, in ascending index order (so
  /// downstream batches preserve enumeration order). Ties break toward
  /// the earlier candidate.
  static std::vector<size_t> TopIndices(const std::vector<double>& scores,
                                        size_t keep);

  /// Fitted log-cost predictions for one degree vector.
  double PredictLogLatency(const std::vector<int>& degrees) const;
  double PredictLogThroughput(const std::vector<int>& degrees) const;

  /// Per-segment analytical story: segment pattern, operators, closure
  /// value x_s at `degrees`, and the fitted latency/throughput
  /// coefficients its kind carries.
  struct SegmentStory {
    analysis::PlanSegment segment;
    double closure_value = 0.0;       // x_s(degrees)
    double latency_coefficient = 0.0;
    double throughput_coefficient = 0.0;
  };
  std::vector<SegmentStory> ExplainSegments(
      const std::vector<int>& degrees) const;

  const std::vector<analysis::PlanSegment>& segments() const {
    return segments_;
  }
  double latency_intercept() const { return lat_beta_[0]; }
  double throughput_intercept() const { return tpt_beta_[0]; }
  /// Coefficient on the parallelism-overhead term log1p(Σ P).
  double latency_overhead_coefficient() const { return lat_beta_.back(); }
  double throughput_overhead_coefficient() const { return tpt_beta_.back(); }

 private:
  AnalyticalPrescreen() = default;

  /// Feature row [1, Σ x_s per kind..., log1p(Σ P)] for one assignment.
  std::vector<double> FeatureRow(const std::vector<int>& degrees) const;
  /// Closure value x_s(degrees) of one segment.
  double SegmentClosure(const analysis::PlanSegment& seg,
                        const std::vector<int>& degrees) const;

  Options options_;
  std::vector<analysis::PlanSegment> segments_;
  /// Column index (into the feature row) of each segment's kind; -1 for
  /// kinds that never occur.
  std::vector<int> kind_column_;
  std::vector<int> segment_kind_column_;  // per segment, its kind's column
  size_t num_columns_ = 0;

  // Per-operator plan statistics captured at Fit time.
  std::vector<double> input_rates_;
  std::vector<bool> keyed_;
  std::vector<bool> is_source_;
  std::vector<int> single_upstream_;  // -1 when not exactly one upstream

  std::vector<double> lat_beta_;  // fitted log-latency coefficients
  std::vector<double> tpt_beta_;  // fitted log-throughput coefficients
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_PRESCREEN_ANALYTICAL_H_
