#ifndef ZEROTUNE_CORE_PRESCREEN_GNN_RERANKER_H_
#define ZEROTUNE_CORE_PRESCREEN_GNN_RERANKER_H_

#include <string>
#include <vector>

#include "core/cost_predictor.h"
#include "core/prescreen/scoring_tier.h"
#include "dsp/cluster.h"
#include "dsp/query_plan.h"

namespace zerotune::core {

/// The second (exact) tier: full GNN scoring of prescreen survivors via
/// the existing CostPredictor::PredictBatch path. A thin, stateless
/// adapter — it materializes candidates into deployments, batches them
/// through the predictor, and folds (latency, throughput) into the
/// optimizer's Eq.-1-style log score. Because PredictBatch is
/// bit-identical regardless of batch composition, scoring N survivors
/// here produces exactly the predictions the pre-SearchSpace optimizer
/// would have produced for the same candidates.
class GnnReranker : public ScoringTier {
 public:
  /// Borrows all three; they must outlive the reranker.
  GnnReranker(const CostPredictor* predictor, const dsp::QueryPlan* logical,
              const dsp::Cluster* cluster, double weight)
      : predictor_(predictor),
        logical_(logical),
        cluster_(cluster),
        weight_(weight) {}

  /// Materializes and batch-scores `candidates`. Fails on candidates the
  /// plan cannot materialize (wrong arity, bad degrees) — standalone
  /// callers should vet candidates first; the optimizer's Tune pipeline
  /// does its own vetting and uses Predict() below instead.
  Result<std::vector<double>> ScoreCandidates(
      const std::vector<PlanCandidate>& candidates) const override;
  std::string name() const override { return "gnn-rerank"; }

  /// Raw batched predictions for already-materialized deployments — the
  /// optimizer's hot path (one call per enumeration phase / hill-climb
  /// round).
  Result<std::vector<CostPrediction>> Predict(
      const std::vector<dsp::ParallelQueryPlan>& plans) const;

  /// The scalar search score: wt·log(lat) − (1−wt)·log(tpt).
  double Score(const CostPrediction& p) const;

 private:
  const CostPredictor* predictor_;
  const dsp::QueryPlan* logical_;
  const dsp::Cluster* cluster_;
  double weight_;
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_PRESCREEN_GNN_RERANKER_H_
