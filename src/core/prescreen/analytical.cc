#include "core/prescreen/analytical.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

namespace zerotune::core {

namespace {

using dsp::Operator;
using dsp::OperatorType;

constexpr double kLogFloor = 1e-6;

/// Solves the n×n system a·x = b in place by Gaussian elimination with
/// partial pivoting. `a` is row-major. Local to the prescreen on purpose:
/// the baselines' linear-algebra helpers live above core in the link
/// graph and cannot be reused here.
Status SolveDense(std::vector<double>& a, std::vector<double>& b, size_t n) {
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col])) pivot = r;
    }
    if (std::abs(a[pivot * n + col]) < 1e-12) {
      return Status::Internal("singular system in prescreen calibration");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] * inv;
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  for (size_t i = n; i-- > 0;) {
    double v = b[i];
    for (size_t c = i + 1; c < n; ++c) v -= a[i * n + c] * b[c];
    b[i] = v / a[i * n + i];
  }
  return Status::OK();
}

/// Ridge-regularized least squares: solves (XᵀX + λI)β = Xᵀy.
Result<std::vector<double>> RidgeFit(const std::vector<std::vector<double>>& x,
                                     const std::vector<double>& y,
                                     size_t cols, double ridge) {
  std::vector<double> ata(cols * cols, 0.0);
  std::vector<double> aty(cols, 0.0);
  for (size_t r = 0; r < x.size(); ++r) {
    for (size_t i = 0; i < cols; ++i) {
      aty[i] += x[r][i] * y[r];
      for (size_t j = 0; j < cols; ++j) ata[i * cols + j] += x[r][i] * x[r][j];
    }
  }
  for (size_t i = 0; i < cols; ++i) ata[i * cols + i] += ridge;
  ZT_RETURN_IF_ERROR(SolveDense(ata, aty, cols));
  return aty;
}

}  // namespace

Status AnalyticalPrescreen::Options::Validate() const {
  if (!(weight >= 0.0 && weight <= 1.0)) {
    return Status::InvalidArgument(
        "prescreen weight must lie in [0, 1], got " + std::to_string(weight));
  }
  if (!(ridge > 0.0)) {
    return Status::InvalidArgument("prescreen ridge must be positive, got " +
                                   std::to_string(ridge));
  }
  return Status::OK();
}

Result<std::vector<std::vector<int>>> AnalyticalPrescreen::ProbeLadder(
    const dsp::QueryPlan& logical, const dsp::Cluster& cluster,
    int max_parallelism, size_t max_probes) {
  ZT_RETURN_IF_ERROR(logical.Validate());
  if (max_probes < 2) {
    return Status::InvalidArgument("probe ladder needs at least 2 rungs");
  }
  const int cap =
      std::max(1, std::min(max_parallelism, cluster.TotalCores()));
  const size_t n = logical.num_operators();
  std::vector<std::vector<int>> probes;
  std::set<std::vector<int>> seen;
  auto add = [&](std::vector<int> degrees) {
    if (probes.size() < max_probes && seen.insert(degrees).second) {
      probes.push_back(std::move(degrees));
    }
  };
  // The ladder has to excite every fitted direction independently:
  // uniform rungs alone form a one-parameter family, leaving the
  // per-kind coefficients unidentifiable and source scaling (which the
  // OptiSample candidates rely on) invisible to the fit.
  std::vector<int> all_one(n, 1);
  std::vector<int> full_blast(n, 1);   // every non-sink op at the cap
  std::vector<int> processing_cap(n, 1);  // sources stay at 1
  for (const Operator& op : logical.operators()) {
    const size_t i = static_cast<size_t>(op.id);
    if (op.type != OperatorType::kSink) full_blast[i] = cap;
    if (op.type != OperatorType::kSink && op.type != OperatorType::kSource) {
      processing_cap[i] = cap;
    }
  }
  add(all_one);
  add(full_blast);
  add(processing_cap);
  // One probe per pattern kind present: only that kind's processing
  // operators at the cap, separating the kinds' closure columns.
  ZT_ASSIGN_OR_RETURN(const std::vector<analysis::PlanSegment> segments,
                      analysis::DecomposeSegments(logical));
  for (const analysis::SegmentKind kind :
       {analysis::SegmentKind::kPipeline, analysis::SegmentKind::kMapReduce,
        analysis::SegmentKind::kTaskPool}) {
    std::vector<int> degrees(n, 1);
    bool any = false;
    for (const analysis::PlanSegment& seg : segments) {
      if (seg.kind != kind) continue;
      for (int id : seg.operator_ids) {
        const OperatorType type = logical.op(id).type;
        if (type != OperatorType::kSource && type != OperatorType::kSink) {
          degrees[static_cast<size_t>(id)] = cap;
          any = true;
        }
      }
    }
    if (any) add(std::move(degrees));
  }
  // Fill the remaining budget with interior rungs of the uniform ladder
  // (all non-sink ops at a log-spaced mid degree).
  for (size_t i = 1; probes.size() < max_probes && i + 1 < max_probes; ++i) {
    const double t = static_cast<double>(i) /
                     static_cast<double>(max_probes - 1);
    const int d = std::clamp(
        static_cast<int>(std::lround(std::exp(t * std::log(cap)))), 1, cap);
    std::vector<int> degrees(n, 1);
    for (const Operator& op : logical.operators()) {
      if (op.type != OperatorType::kSink) {
        degrees[static_cast<size_t>(op.id)] = d;
      }
    }
    add(std::move(degrees));
  }
  return probes;
}

Result<AnalyticalPrescreen> AnalyticalPrescreen::Fit(
    const dsp::QueryPlan& logical, const dsp::Cluster& cluster,
    const std::vector<std::vector<int>>& probe_degrees,
    const std::vector<CostPrediction>& probe_costs, Options options) {
  (void)cluster;  // reserved for placement-aware closures (ROADMAP item 4)
  ZT_RETURN_IF_ERROR(options.Validate());
  ZT_RETURN_IF_ERROR(logical.Validate());
  if (probe_degrees.size() != probe_costs.size()) {
    return Status::InvalidArgument(
        "probe degrees/costs size mismatch: " +
        std::to_string(probe_degrees.size()) + " vs " +
        std::to_string(probe_costs.size()));
  }
  ZT_ASSIGN_OR_RETURN(std::vector<analysis::PlanSegment> segments,
                      analysis::DecomposeSegments(logical));
  size_t processing = 0;
  for (const analysis::PlanSegment& seg : segments) {
    processing += seg.processing_operators;
  }
  if (processing == 0) {
    return Status::InvalidArgument(
        "degenerate segment decomposition: no processing operators to "
        "model (lint code ZT-P026)");
  }
  if (probe_degrees.size() < 2) {
    return Status::InvalidArgument(
        "prescreen calibration needs at least 2 probes, got " +
        std::to_string(probe_degrees.size()));
  }

  AnalyticalPrescreen out;
  out.options_ = options;
  out.segments_ = std::move(segments);

  // One feature column per pattern kind present, in order of first
  // appearance, between the intercept and the overhead term.
  out.kind_column_.assign(3, -1);
  int next_col = 1;
  out.segment_kind_column_.reserve(out.segments_.size());
  for (const analysis::PlanSegment& seg : out.segments_) {
    int& col = out.kind_column_[static_cast<size_t>(seg.kind)];
    if (col < 0) col = next_col++;
    out.segment_kind_column_.push_back(col);
  }
  out.num_columns_ = static_cast<size_t>(next_col) + 1;  // + overhead term

  // Per-operator statistics the closures read.
  const size_t n = logical.num_operators();
  out.input_rates_ = logical.EstimatedInputRates();
  out.keyed_.assign(n, false);
  out.is_source_.assign(n, false);
  out.single_upstream_.assign(n, -1);
  for (const Operator& op : logical.operators()) {
    const size_t i = static_cast<size_t>(op.id);
    out.is_source_[i] = op.type == OperatorType::kSource;
    out.keyed_[i] =
        op.type == OperatorType::kWindowJoin ||
        (op.type == OperatorType::kWindowAggregate && op.aggregate.keyed);
    const std::vector<int>& ups = logical.upstreams(op.id);
    if (ups.size() == 1) out.single_upstream_[i] = ups[0];
  }

  std::vector<std::vector<double>> x;
  std::vector<double> y_lat, y_tpt;
  x.reserve(probe_degrees.size());
  for (size_t p = 0; p < probe_degrees.size(); ++p) {
    if (probe_degrees[p].size() != n) {
      return Status::InvalidArgument(
          "probe " + std::to_string(p) + " has " +
          std::to_string(probe_degrees[p].size()) + " degrees for a " +
          std::to_string(n) + "-operator plan");
    }
    x.push_back(out.FeatureRow(probe_degrees[p]));
    y_lat.push_back(
        std::log(std::max(probe_costs[p].latency_ms, kLogFloor)));
    y_tpt.push_back(
        std::log(std::max(probe_costs[p].throughput_tps, kLogFloor)));
  }
  ZT_ASSIGN_OR_RETURN(out.lat_beta_,
                      RidgeFit(x, y_lat, out.num_columns_, options.ridge));
  ZT_ASSIGN_OR_RETURN(out.tpt_beta_,
                      RidgeFit(x, y_tpt, out.num_columns_, options.ridge));
  return out;
}

double AnalyticalPrescreen::SegmentClosure(
    const analysis::PlanSegment& seg, const std::vector<int>& degrees) const {
  double load = 0.0;
  double shuffle = 0.0;
  for (int id : seg.operator_ids) {
    const size_t i = static_cast<size_t>(id);
    const double rate = input_rates_[i];
    load += rate / static_cast<double>(std::max(1, degrees[i]));
    if (is_source_[i]) continue;
    const int up = single_upstream_[i];
    // Keyed operators always repartition; a non-keyed operator forwards
    // (no shuffle) only along a single-upstream edge with equal degrees.
    if (keyed_[i] || up < 0 ||
        degrees[i] != degrees[static_cast<size_t>(up)]) {
      shuffle += rate;
    }
  }
  return std::log1p(load + shuffle);
}

std::vector<double> AnalyticalPrescreen::FeatureRow(
    const std::vector<int>& degrees) const {
  std::vector<double> row(num_columns_, 0.0);
  row[0] = 1.0;
  for (size_t s = 0; s < segments_.size(); ++s) {
    row[static_cast<size_t>(segment_kind_column_[s])] +=
        SegmentClosure(segments_[s], degrees);
  }
  double total_p = 0.0;
  for (int d : degrees) total_p += static_cast<double>(std::max(1, d));
  row[num_columns_ - 1] = std::log1p(total_p);
  return row;
}

double AnalyticalPrescreen::PredictLogLatency(
    const std::vector<int>& degrees) const {
  if (degrees.size() != input_rates_.size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const std::vector<double> row = FeatureRow(degrees);
  return std::inner_product(row.begin(), row.end(), lat_beta_.begin(), 0.0);
}

double AnalyticalPrescreen::PredictLogThroughput(
    const std::vector<int>& degrees) const {
  if (degrees.size() != input_rates_.size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const std::vector<double> row = FeatureRow(degrees);
  return std::inner_product(row.begin(), row.end(), tpt_beta_.begin(), 0.0);
}

Result<std::vector<double>> AnalyticalPrescreen::ScoreCandidates(
    const std::vector<PlanCandidate>& candidates) const {
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (const PlanCandidate& c : candidates) {
    if (c.degrees.size() != input_rates_.size()) {
      // Wrong arity can't be ranked; push it past every real candidate
      // so the downstream vetting (which counts rejections) sees it only
      // if the keep budget is larger than the valid set.
      scores.push_back(std::numeric_limits<double>::infinity());
      continue;
    }
    const std::vector<double> row = FeatureRow(c.degrees);
    const double lat =
        std::inner_product(row.begin(), row.end(), lat_beta_.begin(), 0.0);
    const double tpt =
        std::inner_product(row.begin(), row.end(), tpt_beta_.begin(), 0.0);
    scores.push_back(options_.weight * lat - (1.0 - options_.weight) * tpt);
  }
  return scores;
}

std::vector<size_t> AnalyticalPrescreen::TopIndices(
    const std::vector<double>& scores, size_t keep) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  keep = std::min(keep, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                    order.end(), [&](size_t a, size_t b) {
                      if (scores[a] != scores[b]) return scores[a] < scores[b];
                      return a < b;
                    });
  order.resize(keep);
  std::sort(order.begin(), order.end());
  return order;
}

std::vector<AnalyticalPrescreen::SegmentStory>
AnalyticalPrescreen::ExplainSegments(const std::vector<int>& degrees) const {
  std::vector<SegmentStory> stories;
  stories.reserve(segments_.size());
  for (size_t s = 0; s < segments_.size(); ++s) {
    SegmentStory story;
    story.segment = segments_[s];
    story.closure_value = degrees.size() == input_rates_.size()
                              ? SegmentClosure(segments_[s], degrees)
                              : std::numeric_limits<double>::quiet_NaN();
    const size_t col = static_cast<size_t>(segment_kind_column_[s]);
    story.latency_coefficient = lat_beta_[col];
    story.throughput_coefficient = tpt_beta_[col];
    stories.push_back(std::move(story));
  }
  return stories;
}

}  // namespace zerotune::core
