#ifndef ZEROTUNE_CORE_PRESCREEN_SCORING_TIER_H_
#define ZEROTUNE_CORE_PRESCREEN_SCORING_TIER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/search_space.h"

namespace zerotune::core {

/// One tier of the optimizer's two-tier scoring pipeline. A tier is bound
/// to a (logical plan, cluster) pair at construction and maps candidates
/// to scalar scores, lower = better. Scores are comparable only within
/// one tier and one call — the analytical tier ranks in fitted log-cost
/// units, the GNN tier in the optimizer's Eq.-1-style log score — so the
/// pipeline uses tier scores to *order* candidates, never to compare
/// across tiers.
///
///   AnalyticalPrescreen  microsecond closed-form ranking of the full
///                        candidate set (core/prescreen/analytical.h)
///   GnnReranker          batched GNN scoring of the survivors
///                        (core/prescreen/gnn_reranker.h)
class ScoringTier {
 public:
  virtual ~ScoringTier() = default;

  /// Scores `candidates` in input order (one score per candidate).
  virtual Result<std::vector<double>> ScoreCandidates(
      const std::vector<PlanCandidate>& candidates) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_PRESCREEN_SCORING_TIER_H_
