#include "core/prescreen/gnn_reranker.h"

#include <algorithm>
#include <cmath>

#include "dsp/parallel_plan.h"

namespace zerotune::core {

double GnnReranker::Score(const CostPrediction& p) const {
  const double lat = std::log(std::max(p.latency_ms, 1e-6));
  const double tpt = std::log(std::max(p.throughput_tps, 1e-6));
  return weight_ * lat - (1.0 - weight_) * tpt;
}

Result<std::vector<CostPrediction>> GnnReranker::Predict(
    const std::vector<dsp::ParallelQueryPlan>& plans) const {
  return PredictBatch(*predictor_, plans);
}

Result<std::vector<double>> GnnReranker::ScoreCandidates(
    const std::vector<PlanCandidate>& candidates) const {
  std::vector<dsp::ParallelQueryPlan> plans;
  plans.reserve(candidates.size());
  for (const PlanCandidate& c : candidates) {
    if (c.degrees.size() != logical_->num_operators()) {
      return Status::InvalidArgument(
          "candidate has " + std::to_string(c.degrees.size()) +
          " degrees for a " + std::to_string(logical_->num_operators()) +
          "-operator plan");
    }
    dsp::ParallelQueryPlan plan(*logical_, *cluster_);
    for (const dsp::Operator& op : logical_->operators()) {
      ZT_RETURN_IF_ERROR(plan.SetParallelism(
          op.id, c.degrees[static_cast<size_t>(op.id)]));
    }
    plan.DerivePartitioning();
    ZT_RETURN_IF_ERROR(plan.PlaceRoundRobin());
    plans.push_back(std::move(plan));
  }
  ZT_ASSIGN_OR_RETURN(const std::vector<CostPrediction> preds,
                      Predict(plans));
  std::vector<double> scores;
  scores.reserve(preds.size());
  for (const CostPrediction& p : preds) scores.push_back(Score(p));
  return scores;
}

}  // namespace zerotune::core
