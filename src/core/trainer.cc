#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>

#include "common/clock.h"

#include "common/file_util.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zerotune::core {

namespace {

using workload::Dataset;

/// Snapshot of parameter values for best-epoch restoration.
std::vector<nn::Matrix> SnapshotParams(const nn::ParameterStore& store) {
  std::vector<nn::Matrix> snap;
  snap.reserve(store.parameters().size());
  for (const auto& p : store.parameters()) snap.push_back(p->value);
  return snap;
}

void RestoreParams(nn::ParameterStore* store,
                   const std::vector<nn::Matrix>& snap) {
  for (size_t i = 0; i < snap.size(); ++i) {
    store->parameters()[i]->value = snap[i];
  }
}

TargetStats FitTargetStats(const Dataset& train) {
  std::vector<double> lat, tpt;
  lat.reserve(train.size());
  tpt.reserve(train.size());
  for (const auto& q : train.samples()) {
    lat.push_back(std::log1p(std::max(q.latency_ms, 0.0)));
    tpt.push_back(std::log1p(std::max(q.throughput_tps, 0.0)));
  }
  TargetStats s;
  s.latency_mean = Mean(lat);
  s.latency_std = std::max(StdDev(lat), 1e-3);
  s.throughput_mean = Mean(tpt);
  s.throughput_std = std::max(StdDev(tpt), 1e-3);
  return s;
}

constexpr char kCheckpointMagic[] = "zerotune-trainer-ckpt-v1";

/// Everything besides the live model/optimizer/rng that a resumed run must
/// restore to replay the remaining epochs bit-identically.
struct CheckpointState {
  size_t epochs_done = 0;
  double learning_rate = 0.0;
  double best_val = std::numeric_limits<double>::infinity();
  size_t since_best = 0;
  size_t nonfinite_batches = 0;
  size_t recovery_attempts = 0;
  TargetStats stats;
  std::vector<double> losses;
  std::vector<size_t> order;
  std::vector<nn::Matrix> best_params;
};

Status ExpectTag(std::istream& is, const char* want) {
  std::string tag;
  if (!(is >> tag) || tag != want) {
    return Status::IOError("trainer checkpoint: expected '" +
                           std::string(want) + "', got '" + tag + "'");
  }
  return Status::OK();
}

Status WriteMatrixList(std::ostream& os, const std::vector<nn::Matrix>& mats) {
  os << mats.size() << "\n";
  for (const auto& m : mats) {
    os << m.rows() << " " << m.cols();
    for (size_t k = 0; k < m.size(); ++k) os << " " << m.data()[k];
    os << "\n";
  }
  if (!os.good()) return Status::IOError("failed writing parameter snapshot");
  return Status::OK();
}

Status ReadMatrixList(std::istream& is, const nn::ParameterStore& like,
                      std::vector<nn::Matrix>* out) {
  size_t count = 0;
  if (!(is >> count) || count != like.parameters().size()) {
    return Status::IOError(
        "trainer checkpoint: parameter snapshot count mismatch");
  }
  out->clear();
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t rows = 0, cols = 0;
    if (!(is >> rows >> cols) ||
        rows != like.parameters()[i]->value.rows() ||
        cols != like.parameters()[i]->value.cols()) {
      return Status::IOError(
          "trainer checkpoint: parameter snapshot shape mismatch at " +
          std::to_string(i));
    }
    nn::Matrix m(rows, cols);
    for (size_t k = 0; k < m.size(); ++k) {
      if (!(is >> m.data()[k])) {
        return Status::IOError(
            "trainer checkpoint: truncated parameter snapshot at " +
            std::to_string(i));
      }
    }
    out->push_back(std::move(m));
  }
  return Status::OK();
}

/// Restores a checkpoint written by Trainer::Train. Mutates `model`,
/// `adam`, and `rng` in place; on error the run must be treated as failed
/// (a partially-restored optimizer is not usable).
Status LoadTrainerCheckpoint(std::istream& is, size_t expect_train_size,
                             ZeroTuneModel* model, nn::Adam* adam,
                             zerotune::Rng* rng, CheckpointState* out) {
  std::string magic;
  if (!(is >> magic) || magic != kCheckpointMagic) {
    return Status::IOError("trainer checkpoint: bad magic (want '" +
                           std::string(kCheckpointMagic) + "')");
  }
  ZT_RETURN_IF_ERROR(ExpectTag(is, "epochs_done"));
  if (!(is >> out->epochs_done)) {
    return Status::IOError("trainer checkpoint: missing epoch cursor");
  }
  ZT_RETURN_IF_ERROR(ExpectTag(is, "train_size"));
  size_t train_size = 0;
  if (!(is >> train_size) || train_size != expect_train_size) {
    return Status::IOError(
        "trainer checkpoint: train_size " + std::to_string(train_size) +
        " does not match the dataset (" + std::to_string(expect_train_size) +
        "); refusing to resume against different data");
  }
  ZT_RETURN_IF_ERROR(ExpectTag(is, "lr"));
  if (!(is >> out->learning_rate)) {
    return Status::IOError("trainer checkpoint: missing learning rate");
  }
  // best_val may be +infinity (no validation yet); "inf" does not
  // round-trip through operator>>, so a finite flag precedes the value.
  ZT_RETURN_IF_ERROR(ExpectTag(is, "best_val"));
  int finite = 0;
  double best_val_value = 0.0;
  if (!(is >> finite >> best_val_value)) {
    return Status::IOError("trainer checkpoint: missing best_val");
  }
  out->best_val = finite != 0 ? best_val_value
                              : std::numeric_limits<double>::infinity();
  ZT_RETURN_IF_ERROR(ExpectTag(is, "since_best"));
  if (!(is >> out->since_best)) {
    return Status::IOError("trainer checkpoint: missing since_best");
  }
  ZT_RETURN_IF_ERROR(ExpectTag(is, "nonfinite"));
  if (!(is >> out->nonfinite_batches)) {
    return Status::IOError("trainer checkpoint: missing nonfinite count");
  }
  ZT_RETURN_IF_ERROR(ExpectTag(is, "recovery"));
  if (!(is >> out->recovery_attempts)) {
    return Status::IOError("trainer checkpoint: missing recovery count");
  }
  ZT_RETURN_IF_ERROR(ExpectTag(is, "target_stats"));
  if (!(is >> out->stats.latency_mean >> out->stats.latency_std >>
        out->stats.throughput_mean >> out->stats.throughput_std)) {
    return Status::IOError("trainer checkpoint: missing target stats");
  }
  ZT_RETURN_IF_ERROR(ExpectTag(is, "losses"));
  size_t loss_count = 0;
  if (!(is >> loss_count) || loss_count > out->epochs_done) {
    return Status::IOError("trainer checkpoint: bad loss history");
  }
  out->losses.resize(loss_count);
  for (double& l : out->losses) {
    if (!(is >> l)) {
      return Status::IOError("trainer checkpoint: truncated loss history");
    }
  }
  ZT_RETURN_IF_ERROR(ExpectTag(is, "order"));
  size_t order_count = 0;
  if (!(is >> order_count) || order_count != expect_train_size) {
    return Status::IOError("trainer checkpoint: bad shuffle order length");
  }
  out->order.resize(order_count);
  for (size_t& idx : out->order) {
    if (!(is >> idx) || idx >= expect_train_size) {
      return Status::IOError("trainer checkpoint: bad shuffle order entry");
    }
  }
  ZT_RETURN_IF_ERROR(ExpectTag(is, "rng"));
  if (!(is >> rng->engine())) {
    return Status::IOError("trainer checkpoint: bad RNG state");
  }
  ZT_RETURN_IF_ERROR(ExpectTag(is, "adam"));
  ZT_RETURN_IF_ERROR(adam->LoadState(is));
  ZT_RETURN_IF_ERROR(ExpectTag(is, "params"));
  ZT_RETURN_IF_ERROR(model->mutable_params()->LoadFromStream(is));
  ZT_RETURN_IF_ERROR(ExpectTag(is, "best_params"));
  ZT_RETURN_IF_ERROR(ReadMatrixList(is, model->params(), &out->best_params));
  return Status::OK();
}

}  // namespace

Status TrainOptions::Validate() const {
  if (epochs == 0) {
    return Status::InvalidArgument("epochs must be >= 1");
  }
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (!std::isfinite(learning_rate) || learning_rate <= 0.0) {
    return Status::InvalidArgument(
        "learning_rate must be positive and finite, got " +
        std::to_string(learning_rate));
  }
  if (!std::isfinite(weight_decay) || weight_decay < 0.0) {
    return Status::InvalidArgument(
        "weight_decay must be non-negative and finite, got " +
        std::to_string(weight_decay));
  }
  if (!std::isfinite(grad_clip_norm) || grad_clip_norm < 0.0) {
    return Status::InvalidArgument(
        "grad_clip_norm must be non-negative and finite (0 disables "
        "clipping), got " + std::to_string(grad_clip_norm));
  }
  if (!std::isfinite(lr_backoff) || lr_backoff <= 0.0 || lr_backoff > 1.0) {
    return Status::InvalidArgument(
        "lr_backoff must lie in (0, 1], got " + std::to_string(lr_backoff));
  }
  if (checkpoint_every_epochs == 0) {
    return Status::InvalidArgument("checkpoint_every_epochs must be >= 1");
  }
  if (resume && checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "resume=true requires a checkpoint_path to resume from");
  }
  return Status::OK();
}

Trainer::Trainer(ZeroTuneModel* model, TrainOptions options)
    : model_(model), options_(options), options_status_(options.Validate()) {}

double Trainer::EpochLoss(const std::vector<PlanGraph>& graphs,
                          const std::vector<nn::Matrix>& targets) const {
  if (graphs.empty()) return 0.0;
  std::vector<double> losses(graphs.size(), 0.0);
  ParallelFor(options_.pool, graphs.size(), [&](size_t i) {
    const nn::NodePtr out = model_->Forward(graphs[i]);
    const nn::NodePtr loss = nn::MseLoss(out, targets[i]);
    losses[i] = loss->value(0, 0);
  });
  return Mean(losses);
}

Result<TrainReport> Trainer::Train(const Dataset& train, const Dataset& val) {
  ZT_RETURN_IF_ERROR(options_status_);
  if (train.empty()) return Status::InvalidArgument("empty training set");
  for (size_t i = 0; i < train.samples().size(); ++i) {
    const auto& q = train.samples()[i];
    if (!std::isfinite(q.latency_ms) || !std::isfinite(q.throughput_tps)) {
      return Status::InvalidArgument(
          "training sample " + std::to_string(i) +
          " has a non-finite label (latency_ms=" +
          std::to_string(q.latency_ms) + ", throughput_tps=" +
          std::to_string(q.throughput_tps) + ")");
    }
  }
  Clock* clock =
      options_.clock != nullptr ? options_.clock : SystemClock::Default();
  const int64_t t_start = clock->NowNanos();
  obs::Span train_span("trainer/train");
  train_span.AddArg("train_size", std::to_string(train.size()));
  auto* metrics = obs::MetricsRegistry::Global();
  obs::Counter* epochs_total = metrics->GetCounter("trainer.epochs_total");
  obs::Counter* nonfinite_total =
      metrics->GetCounter("trainer.nonfinite_batches_total");
  obs::Counter* checkpoints_total =
      metrics->GetCounter("trainer.checkpoints_total");
  obs::Gauge* train_loss_gauge = metrics->GetGauge("trainer.train_loss");
  obs::Gauge* val_loss_gauge = metrics->GetGauge("trainer.val_loss");
  obs::Gauge* grad_norm_gauge = metrics->GetGauge("trainer.grad_norm");
  obs::HistogramMetric* epoch_seconds =
      metrics->GetHistogram("trainer.epoch_seconds", {}, 1e-4, 1e5);

  nn::Adam::Options adam_opts;
  adam_opts.learning_rate = options_.learning_rate;
  adam_opts.weight_decay = options_.weight_decay;
  nn::Adam adam(model_->mutable_params(), adam_opts);

  zerotune::Rng rng(options_.seed);
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainReport report;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<nn::Matrix> best_params;
  size_t since_best = 0;
  size_t start_epoch = 0;
  bool resumed = false;

  if (options_.resume && std::filesystem::exists(options_.checkpoint_path)) {
    std::ifstream is(options_.checkpoint_path);
    if (!is) {
      return Status::IOError("cannot open checkpoint " +
                             options_.checkpoint_path);
    }
    CheckpointState ckpt;
    ZT_RETURN_IF_ERROR(LoadTrainerCheckpoint(is, train.size(), model_, &adam,
                                             &rng, &ckpt)
                           .Annotated("resuming from " +
                                      options_.checkpoint_path));
    model_->set_target_stats(ckpt.stats);
    adam.options().learning_rate = ckpt.learning_rate;
    best_val = ckpt.best_val;
    best_params = std::move(ckpt.best_params);
    since_best = ckpt.since_best;
    order = std::move(ckpt.order);
    start_epoch = ckpt.epochs_done;
    report.resumed_from_epoch = ckpt.epochs_done;
    report.epochs_run = ckpt.epochs_done;
    report.epoch_train_losses = std::move(ckpt.losses);
    report.nonfinite_batches = ckpt.nonfinite_batches;
    report.recovery_attempts = ckpt.recovery_attempts;
    resumed = true;
    if (options_.verbose) {
      Log::Info("resumed from ", options_.checkpoint_path, " at epoch ",
                start_epoch, "/", options_.epochs);
    }
  } else if (options_.fit_target_stats) {
    model_->set_target_stats(FitTargetStats(train));
  }

  // Encode graphs and targets once.
  const FeatureConfig& fc = model_->config().features;
  std::vector<PlanGraph> graphs;
  std::vector<nn::Matrix> targets;
  graphs.reserve(train.size());
  targets.reserve(train.size());
  for (const auto& q : train.samples()) {
    graphs.push_back(BuildPlanGraph(q.plan, fc));
    targets.push_back(model_->EncodeTarget(q.latency_ms, q.throughput_tps));
  }
  std::vector<PlanGraph> val_graphs;
  std::vector<nn::Matrix> val_targets;
  for (const auto& q : val.samples()) {
    val_graphs.push_back(BuildPlanGraph(q.plan, fc));
    val_targets.push_back(model_->EncodeTarget(q.latency_ms, q.throughput_tps));
  }

  if (!resumed) best_params = SnapshotParams(model_->params());

  // Checkpoint = everything the epoch loop mutates, written atomically so
  // a crash mid-write leaves the previous checkpoint intact. `epochs_done`
  // epochs are complete; a resumed run re-enters the loop there with
  // identical shuffle, optimizer, and early-stopping state, so it replays
  // the remaining epochs bit-identically.
  auto write_checkpoint = [&](size_t epochs_done) -> Status {
    return AtomicWriteStream(
        options_.checkpoint_path, [&](std::ostream& os) -> Status {
          os.precision(17);
          os << kCheckpointMagic << "\n";
          os << "epochs_done " << epochs_done << "\n";
          os << "train_size " << train.size() << "\n";
          os << "lr " << adam.options().learning_rate << "\n";
          const bool finite = std::isfinite(best_val);
          os << "best_val " << (finite ? 1 : 0) << " "
             << (finite ? best_val : 0.0) << "\n";
          os << "since_best " << since_best << "\n";
          os << "nonfinite " << report.nonfinite_batches << "\n";
          os << "recovery " << report.recovery_attempts << "\n";
          const TargetStats& ts = model_->target_stats();
          os << "target_stats " << ts.latency_mean << " " << ts.latency_std
             << " " << ts.throughput_mean << " " << ts.throughput_std << "\n";
          os << "losses " << report.epoch_train_losses.size();
          for (const double l : report.epoch_train_losses) os << " " << l;
          os << "\norder " << order.size();
          for (const size_t idx : order) os << " " << idx;
          os << "\nrng " << rng.engine() << "\n";
          os << "adam\n";
          ZT_RETURN_IF_ERROR(adam.SaveState(os));
          os << "params\n";
          ZT_RETURN_IF_ERROR(model_->params().SaveToStream(os));
          os << "best_params ";
          return WriteMatrixList(os, best_params);
        });
  };

  const size_t num_threads =
      options_.pool != nullptr ? options_.pool->num_threads() : 1;

  // Divergence recovery: roll the model back to the best parameters seen,
  // back the learning rate off, and reset Adam's moments. Returns false
  // once the attempt budget is exhausted.
  auto recover = [&]() -> bool {
    if (report.recovery_attempts >= options_.max_recovery_attempts) {
      // Budget exhausted: give up (the caller stops training; the final
      // RestoreParams below still rolls back to the best snapshot).
      return false;
    }
    RestoreParams(model_->mutable_params(), best_params);
    adam.options().learning_rate *= options_.lr_backoff;
    adam.Reset();
    ++report.recovery_attempts;
    if (options_.verbose) {
      Log::Info("non-finite loss/gradient: rolled back, lr now ",
                adam.options().learning_rate, " (attempt ",
                report.recovery_attempts, "/",
                options_.max_recovery_attempts, ")");
    }
    return true;
  };

  // The restored checkpoint may already satisfy early stopping (the
  // uninterrupted run stopped at exactly that epoch); running further
  // would diverge from it.
  bool stop_training = options_.patience > 0 && !val_graphs.empty() &&
                       since_best >= options_.patience;
  for (size_t epoch = start_epoch; epoch < options_.epochs && !stop_training;
       ++epoch) {
    obs::Span epoch_span("trainer/epoch");
    epoch_span.AddArg("epoch", std::to_string(epoch + 1));
    const int64_t t_epoch = clock->NowNanos();
    rng.Shuffle(&order);
    double epoch_loss_sum = 0.0;
    size_t epoch_count = 0;

    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      const size_t end =
          std::min(order.size(), start + options_.batch_size);
      const size_t batch = end - start;

      // Data-parallel gradient accumulation: each chunk owns a GradStore;
      // chunks are merged in index order after all finish, so the result
      // is bit-identical regardless of thread scheduling.
      double batch_loss = 0.0;
      const size_t chunks = std::min(batch, num_threads);
      const size_t chunk_size = (batch + chunks - 1) / chunks;
      std::vector<nn::GradStore> locals(chunks);
      std::vector<double> local_losses(chunks, 0.0);
      auto run_chunk = [&](size_t c) {
        const size_t lo = start + c * chunk_size;
        const size_t hi = std::min(end, lo + chunk_size);
        for (size_t k = lo; k < hi; ++k) {
          const size_t idx = order[k];
          const nn::NodePtr out = model_->Forward(graphs[idx]);
          const nn::NodePtr loss = nn::MseLoss(out, targets[idx]);
          local_losses[c] += loss->value(0, 0);
          nn::Backward(loss, &locals[c]);
        }
      };
      if (options_.pool != nullptr && chunks > 1) {
        for (size_t c = 0; c < chunks; ++c) {
          options_.pool->Submit([&, c] { run_chunk(c); });
        }
        options_.pool->Wait();
      } else {
        for (size_t c = 0; c < chunks; ++c) run_chunk(c);
      }
      nn::GradStore total;
      for (size_t c = 0; c < chunks; ++c) {
        total.Merge(locals[c]);
        batch_loss += local_losses[c];
      }

      total.Scale(1.0 / static_cast<double>(batch));
      if (options_.grad_clip_norm > 0.0) {
        grad_norm_gauge->Set(total.ClipGlobalNorm(options_.grad_clip_norm));
      }
      if (!std::isfinite(batch_loss) || !total.AllFinite()) {
        ++report.nonfinite_batches;
        nonfinite_total->Increment();
        if (!recover()) {
          stop_training = true;
          break;
        }
        continue;  // skip the poisoned update, keep the epoch going
      }
      adam.Step(total);
      epoch_loss_sum += batch_loss;
      epoch_count += batch;
    }
    if (stop_training) break;

    const double train_loss =
        epoch_loss_sum / static_cast<double>(std::max<size_t>(1, epoch_count));
    report.epoch_train_losses.push_back(train_loss);
    report.epochs_run = epoch + 1;
    epochs_total->Increment();
    train_loss_gauge->Set(train_loss);

    double val_loss = train_loss;
    if (!val_graphs.empty()) {
      val_loss = EpochLoss(val_graphs, val_targets);
    }
    val_loss_gauge->Set(val_loss);
    epoch_seconds->Record(static_cast<double>(clock->NowNanos() - t_epoch) *
                          1e-9);
    epoch_span.AddArg("train_loss", std::to_string(train_loss));
    if (options_.verbose) {
      Log::Info("epoch ", epoch + 1, "/", options_.epochs, " train_loss=",
                train_loss, " val_loss=", val_loss);
    }
    if (val_loss < best_val - 1e-6) {
      best_val = val_loss;
      best_params = SnapshotParams(model_->params());
      since_best = 0;
    } else {
      ++since_best;
    }
    const bool early_stop = options_.patience > 0 && !val_graphs.empty() &&
                            since_best >= options_.patience;
    if (!options_.checkpoint_path.empty() &&
        (epoch + 1) % options_.checkpoint_every_epochs == 0) {
      // A failed checkpoint write fails the run: silently training on with
      // crash safety gone would defeat the point. The previous checkpoint
      // (if any) is still intact, so the run remains resumable.
      obs::Span ckpt_span("trainer/checkpoint_write");
      ZT_RETURN_IF_ERROR(
          write_checkpoint(epoch + 1)
              .Annotated("writing trainer checkpoint to " +
                         options_.checkpoint_path));
      ++report.checkpoints_written;
      checkpoints_total->Increment();
    }
    if (early_stop) break;
  }

  RestoreParams(model_->mutable_params(), best_params);
  report.final_learning_rate = adam.options().learning_rate;
  report.best_val_loss = best_val;
  report.final_train_loss = report.epoch_train_losses.empty()
                                ? 0.0
                                : report.epoch_train_losses.back();
  report.train_seconds =
      static_cast<double>(clock->NowNanos() - t_start) * 1e-9;
  return report;
}

void Trainer::QErrors(const ZeroTuneModel& model, const Dataset& test,
                      std::vector<double>* latency_qerrors,
                      std::vector<double>* throughput_qerrors) {
  latency_qerrors->clear();
  throughput_qerrors->clear();
  for (const auto& q : test.samples()) {
    const PlanGraph g = BuildPlanGraph(q.plan, model.config().features);
    const CostPrediction p = model.PredictFromGraph(g);
    latency_qerrors->push_back(QError(q.latency_ms, p.latency_ms));
    throughput_qerrors->push_back(
        QError(q.throughput_tps, p.throughput_tps));
  }
}

ModelEvaluation Trainer::Evaluate(const ZeroTuneModel& model,
                                  const Dataset& test) {
  std::vector<double> lat, tpt;
  QErrors(model, test, &lat, &tpt);
  ModelEvaluation e;
  e.latency = SummarizeQErrors(lat);
  e.throughput = SummarizeQErrors(tpt);
  return e;
}

}  // namespace zerotune::core
