#include "core/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <numeric>

#include "common/logging.h"

namespace zerotune::core {

namespace {

using workload::Dataset;

/// Snapshot of parameter values for best-epoch restoration.
std::vector<nn::Matrix> SnapshotParams(const nn::ParameterStore& store) {
  std::vector<nn::Matrix> snap;
  snap.reserve(store.parameters().size());
  for (const auto& p : store.parameters()) snap.push_back(p->value);
  return snap;
}

void RestoreParams(nn::ParameterStore* store,
                   const std::vector<nn::Matrix>& snap) {
  for (size_t i = 0; i < snap.size(); ++i) {
    store->parameters()[i]->value = snap[i];
  }
}

TargetStats FitTargetStats(const Dataset& train) {
  std::vector<double> lat, tpt;
  lat.reserve(train.size());
  tpt.reserve(train.size());
  for (const auto& q : train.samples()) {
    lat.push_back(std::log1p(std::max(q.latency_ms, 0.0)));
    tpt.push_back(std::log1p(std::max(q.throughput_tps, 0.0)));
  }
  TargetStats s;
  s.latency_mean = Mean(lat);
  s.latency_std = std::max(StdDev(lat), 1e-3);
  s.throughput_mean = Mean(tpt);
  s.throughput_std = std::max(StdDev(tpt), 1e-3);
  return s;
}

}  // namespace

Status TrainOptions::Validate() const {
  if (epochs == 0) {
    return Status::InvalidArgument("epochs must be >= 1");
  }
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (!std::isfinite(learning_rate) || learning_rate <= 0.0) {
    return Status::InvalidArgument(
        "learning_rate must be positive and finite, got " +
        std::to_string(learning_rate));
  }
  if (!std::isfinite(weight_decay) || weight_decay < 0.0) {
    return Status::InvalidArgument(
        "weight_decay must be non-negative and finite, got " +
        std::to_string(weight_decay));
  }
  if (!std::isfinite(grad_clip_norm) || grad_clip_norm < 0.0) {
    return Status::InvalidArgument(
        "grad_clip_norm must be non-negative and finite (0 disables "
        "clipping), got " + std::to_string(grad_clip_norm));
  }
  if (!std::isfinite(lr_backoff) || lr_backoff <= 0.0 || lr_backoff > 1.0) {
    return Status::InvalidArgument(
        "lr_backoff must lie in (0, 1], got " + std::to_string(lr_backoff));
  }
  return Status::OK();
}

Trainer::Trainer(ZeroTuneModel* model, TrainOptions options)
    : model_(model), options_(options), options_status_(options.Validate()) {}

double Trainer::EpochLoss(const std::vector<PlanGraph>& graphs,
                          const std::vector<nn::Matrix>& targets) const {
  if (graphs.empty()) return 0.0;
  std::vector<double> losses(graphs.size(), 0.0);
  ParallelFor(options_.pool, graphs.size(), [&](size_t i) {
    const nn::NodePtr out = model_->Forward(graphs[i]);
    const nn::NodePtr loss = nn::MseLoss(out, targets[i]);
    losses[i] = loss->value(0, 0);
  });
  return Mean(losses);
}

Result<TrainReport> Trainer::Train(const Dataset& train, const Dataset& val) {
  ZT_RETURN_IF_ERROR(options_status_);
  if (train.empty()) return Status::InvalidArgument("empty training set");
  for (size_t i = 0; i < train.samples().size(); ++i) {
    const auto& q = train.samples()[i];
    if (!std::isfinite(q.latency_ms) || !std::isfinite(q.throughput_tps)) {
      return Status::InvalidArgument(
          "training sample " + std::to_string(i) +
          " has a non-finite label (latency_ms=" +
          std::to_string(q.latency_ms) + ", throughput_tps=" +
          std::to_string(q.throughput_tps) + ")");
    }
  }
  const auto t_start = std::chrono::steady_clock::now();

  if (options_.fit_target_stats) {
    model_->set_target_stats(FitTargetStats(train));
  }

  // Encode graphs and targets once.
  const FeatureConfig& fc = model_->config().features;
  std::vector<PlanGraph> graphs;
  std::vector<nn::Matrix> targets;
  graphs.reserve(train.size());
  targets.reserve(train.size());
  for (const auto& q : train.samples()) {
    graphs.push_back(BuildPlanGraph(q.plan, fc));
    targets.push_back(model_->EncodeTarget(q.latency_ms, q.throughput_tps));
  }
  std::vector<PlanGraph> val_graphs;
  std::vector<nn::Matrix> val_targets;
  for (const auto& q : val.samples()) {
    val_graphs.push_back(BuildPlanGraph(q.plan, fc));
    val_targets.push_back(model_->EncodeTarget(q.latency_ms, q.throughput_tps));
  }

  nn::Adam::Options adam_opts;
  adam_opts.learning_rate = options_.learning_rate;
  adam_opts.weight_decay = options_.weight_decay;
  nn::Adam adam(model_->mutable_params(), adam_opts);

  zerotune::Rng rng(options_.seed);
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainReport report;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<nn::Matrix> best_params = SnapshotParams(model_->params());
  size_t since_best = 0;

  const size_t num_threads =
      options_.pool != nullptr ? options_.pool->num_threads() : 1;

  // Divergence recovery: roll the model back to the best parameters seen,
  // back the learning rate off, and reset Adam's moments. Returns false
  // once the attempt budget is exhausted.
  auto recover = [&]() -> bool {
    if (report.recovery_attempts >= options_.max_recovery_attempts) {
      // Budget exhausted: give up (the caller stops training; the final
      // RestoreParams below still rolls back to the best snapshot).
      return false;
    }
    RestoreParams(model_->mutable_params(), best_params);
    adam.options().learning_rate *= options_.lr_backoff;
    adam.Reset();
    ++report.recovery_attempts;
    if (options_.verbose) {
      Log::Info("non-finite loss/gradient: rolled back, lr now ",
                adam.options().learning_rate, " (attempt ",
                report.recovery_attempts, "/",
                options_.max_recovery_attempts, ")");
    }
    return true;
  };

  bool stop_training = false;
  for (size_t epoch = 0; epoch < options_.epochs && !stop_training; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss_sum = 0.0;
    size_t epoch_count = 0;

    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      const size_t end =
          std::min(order.size(), start + options_.batch_size);
      const size_t batch = end - start;

      // Data-parallel gradient accumulation: each chunk owns a GradStore;
      // chunks are merged in index order after all finish, so the result
      // is bit-identical regardless of thread scheduling.
      double batch_loss = 0.0;
      const size_t chunks = std::min(batch, num_threads);
      const size_t chunk_size = (batch + chunks - 1) / chunks;
      std::vector<nn::GradStore> locals(chunks);
      std::vector<double> local_losses(chunks, 0.0);
      auto run_chunk = [&](size_t c) {
        const size_t lo = start + c * chunk_size;
        const size_t hi = std::min(end, lo + chunk_size);
        for (size_t k = lo; k < hi; ++k) {
          const size_t idx = order[k];
          const nn::NodePtr out = model_->Forward(graphs[idx]);
          const nn::NodePtr loss = nn::MseLoss(out, targets[idx]);
          local_losses[c] += loss->value(0, 0);
          nn::Backward(loss, &locals[c]);
        }
      };
      if (options_.pool != nullptr && chunks > 1) {
        for (size_t c = 0; c < chunks; ++c) {
          options_.pool->Submit([&, c] { run_chunk(c); });
        }
        options_.pool->Wait();
      } else {
        for (size_t c = 0; c < chunks; ++c) run_chunk(c);
      }
      nn::GradStore total;
      for (size_t c = 0; c < chunks; ++c) {
        total.Merge(locals[c]);
        batch_loss += local_losses[c];
      }

      total.Scale(1.0 / static_cast<double>(batch));
      if (options_.grad_clip_norm > 0.0) {
        total.ClipGlobalNorm(options_.grad_clip_norm);
      }
      if (!std::isfinite(batch_loss) || !total.AllFinite()) {
        ++report.nonfinite_batches;
        if (!recover()) {
          stop_training = true;
          break;
        }
        continue;  // skip the poisoned update, keep the epoch going
      }
      adam.Step(total);
      epoch_loss_sum += batch_loss;
      epoch_count += batch;
    }
    if (stop_training) break;

    const double train_loss =
        epoch_loss_sum / static_cast<double>(std::max<size_t>(1, epoch_count));
    report.epoch_train_losses.push_back(train_loss);
    report.epochs_run = epoch + 1;

    double val_loss = train_loss;
    if (!val_graphs.empty()) {
      val_loss = EpochLoss(val_graphs, val_targets);
    }
    if (options_.verbose) {
      Log::Info("epoch ", epoch + 1, "/", options_.epochs, " train_loss=",
                train_loss, " val_loss=", val_loss);
    }
    if (val_loss < best_val - 1e-6) {
      best_val = val_loss;
      best_params = SnapshotParams(model_->params());
      since_best = 0;
    } else {
      ++since_best;
      if (options_.patience > 0 && !val_graphs.empty() &&
          since_best >= options_.patience) {
        break;
      }
    }
  }

  RestoreParams(model_->mutable_params(), best_params);
  report.final_learning_rate = adam.options().learning_rate;
  report.best_val_loss = best_val;
  report.final_train_loss = report.epoch_train_losses.empty()
                                ? 0.0
                                : report.epoch_train_losses.back();
  report.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return report;
}

void Trainer::QErrors(const ZeroTuneModel& model, const Dataset& test,
                      std::vector<double>* latency_qerrors,
                      std::vector<double>* throughput_qerrors) {
  latency_qerrors->clear();
  throughput_qerrors->clear();
  for (const auto& q : test.samples()) {
    const PlanGraph g = BuildPlanGraph(q.plan, model.config().features);
    const CostPrediction p = model.PredictFromGraph(g);
    latency_qerrors->push_back(QError(q.latency_ms, p.latency_ms));
    throughput_qerrors->push_back(
        QError(q.throughput_tps, p.throughput_tps));
  }
}

ModelEvaluation Trainer::Evaluate(const ZeroTuneModel& model,
                                  const Dataset& test) {
  std::vector<double> lat, tpt;
  QErrors(model, test, &lat, &tpt);
  ModelEvaluation e;
  e.latency = SummarizeQErrors(lat);
  e.throughput = SummarizeQErrors(tpt);
  return e;
}

}  // namespace zerotune::core
