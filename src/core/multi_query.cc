#include "core/multi_query.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace zerotune::core {

double MultiQueryOptimizer::Score(const CostPrediction& p) const {
  return options_.weight * std::log(std::max(p.latency_ms, 1e-6)) -
         (1.0 - options_.weight) * std::log(std::max(p.throughput_tps, 1e-6));
}

Result<ParallelismOptimizer::TuningResult> MultiQueryOptimizer::TuneOn(
    const dsp::QueryPlan& query, const dsp::Cluster& cluster,
    const std::vector<int>& nodes) const {
  std::vector<dsp::NodeResources> subset;
  subset.reserve(nodes.size());
  for (int n : nodes) {
    subset.push_back(cluster.node(static_cast<size_t>(n)));
  }
  ParallelismOptimizer::Options opts = options_.per_query;
  opts.weight = options_.weight;
  ParallelismOptimizer optimizer(predictor_, opts);
  return optimizer.Tune(query, dsp::Cluster(std::move(subset)));
}

Result<MultiQueryOptimizer::Assignment> MultiQueryOptimizer::Tune(
    const std::vector<dsp::QueryPlan>& queries,
    const dsp::Cluster& cluster) const {
  if (queries.empty()) {
    return Status::InvalidArgument("no queries to tune");
  }
  if (queries.size() > cluster.num_nodes()) {
    return Status::InvalidArgument(
        "dedicated-node allocation needs at least one node per query (" +
        std::to_string(queries.size()) + " queries, " +
        std::to_string(cluster.num_nodes()) + " nodes)");
  }
  for (const dsp::QueryPlan& q : queries) {
    ZT_RETURN_IF_ERROR(q.Validate());
  }

  // Seed: one node per query, remaining nodes in a free pool.
  const size_t n_queries = queries.size();
  std::vector<std::vector<int>> allocation(n_queries);
  std::vector<int> free_nodes;
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    if (n < n_queries) {
      allocation[n].push_back(static_cast<int>(n));
    } else {
      free_nodes.push_back(static_cast<int>(n));
    }
  }

  // Current per-query scores under the seed allocation. Each TuneOn
  // call batches its candidate scoring via CostPredictor::PredictBatch.
  std::vector<double> scores(n_queries, 0.0);
  for (size_t qi = 0; qi < n_queries; ++qi) {
    Result<ParallelismOptimizer::TuningResult> tuned =
        TuneOn(queries[qi], cluster, allocation[qi]);
    if (!tuned.ok()) {
      return tuned.status().Annotated("seeding query #" + std::to_string(qi));
    }
    scores[qi] = Score(tuned.value().predicted);
  }

  // Greedy marginal gain: grant each free node (in order) to the query
  // whose score improves most with it.
  for (int node : free_nodes) {
    double best_gain = 0.0;
    size_t best_query = 0;
    double best_new_score = 0.0;
    bool granted = false;
    for (size_t qi = 0; qi < n_queries; ++qi) {
      std::vector<int> trial = allocation[qi];
      trial.push_back(node);
      Result<ParallelismOptimizer::TuningResult> tuned_r =
          TuneOn(queries[qi], cluster, trial);
      if (!tuned_r.ok()) {
        return tuned_r.status().Annotated(
            "trial grant of node " + std::to_string(node) + " to query #" +
            std::to_string(qi));
      }
      const ParallelismOptimizer::TuningResult& tuned = tuned_r.value();
      const double new_score = Score(tuned.predicted);
      const double gain = scores[qi] - new_score;
      // Prefer the largest marginal gain; break ties toward the query
      // holding the fewest nodes so spare capacity spreads evenly.
      const bool wins =
          !granted || gain > best_gain + 1e-9 ||
          (gain > best_gain - 1e-9 &&
           allocation[qi].size() < allocation[best_query].size());
      if (wins) {
        granted = true;
        best_gain = gain;
        best_query = qi;
        best_new_score = new_score;
      }
    }
    allocation[best_query].push_back(node);
    scores[best_query] = best_new_score;
  }

  // Final pass: materialize each query's tuned deployment.
  Assignment result;
  result.queries.reserve(n_queries);
  for (size_t qi = 0; qi < n_queries; ++qi) {
    Result<ParallelismOptimizer::TuningResult> tuned_r =
        TuneOn(queries[qi], cluster, allocation[qi]);
    if (!tuned_r.ok()) {
      return tuned_r.status().Annotated("materializing query #" +
                                        std::to_string(qi));
    }
    ParallelismOptimizer::TuningResult tuned = std::move(tuned_r).value();
    QueryAssignment qa(std::move(tuned.plan));
    qa.node_indices = allocation[qi];
    qa.predicted = tuned.predicted;
    qa.candidates_prescreened = tuned.candidates_prescreened;
    qa.prescreen_kept = tuned.prescreen_kept;
    result.candidates_prescreened += tuned.candidates_prescreened;
    result.prescreen_kept += tuned.prescreen_kept;
    result.queries.push_back(std::move(qa));
    result.total_score += Score(result.queries.back().predicted);
  }
  return result;
}

}  // namespace zerotune::core
