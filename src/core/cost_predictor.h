#ifndef ZEROTUNE_CORE_COST_PREDICTOR_H_
#define ZEROTUNE_CORE_COST_PREDICTOR_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dsp/parallel_plan.h"

namespace zerotune::core {

/// Predicted costs of one parallel query plan deployment.
struct CostPrediction {
  double latency_ms = 0.0;
  double throughput_tps = 0.0;
};

/// Interface implemented by every cost model in this repo: the ZeroTune
/// GNN, the flat-vector baselines, and the oracle wrapper around the
/// ground-truth engine. The parallelism optimizer works against this
/// interface, so any model can drive parallelism tuning.
///
/// Every fallible entry point reports failures through common/status.h
/// (no bool/sentinel returns), with enough plan context in the message to
/// identify the offending candidate.
class CostPredictor {
 public:
  virtual ~CostPredictor() = default;

  /// What-if cost estimate for a (hypothetical) deployment.
  virtual Result<CostPrediction> Predict(
      const dsp::ParallelQueryPlan& plan) const = 0;

  /// What-if cost estimates for many candidate deployments at once, in
  /// input order. This is the optimizer's hot path: enumerating a query's
  /// parallelism candidates produces hundreds of plans that share logical
  /// operators and cluster, so implementations can amortize featurization
  /// and run batched inference. The default implementation is a
  /// sequential Predict() loop, so baselines and the oracle keep working
  /// unchanged; predictions must be identical to per-plan Predict().
  ///
  /// An empty batch succeeds with an empty vector. Null entries and
  /// per-plan failures fail the whole batch, with the plan index (and the
  /// underlying error) in the status message.
  virtual Result<std::vector<CostPrediction>> PredictBatch(
      std::span<const dsp::ParallelQueryPlan* const> plans) const;

  /// Display name used in experiment tables.
  virtual std::string name() const = 0;
};

/// Convenience wrapper over CostPredictor::PredictBatch for callers that
/// hold plans by value: builds the pointer span and dispatches virtually.
Result<std::vector<CostPrediction>> PredictBatch(
    const CostPredictor& predictor,
    const std::vector<dsp::ParallelQueryPlan>& plans);

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_COST_PREDICTOR_H_
