#ifndef ZEROTUNE_CORE_COST_PREDICTOR_H_
#define ZEROTUNE_CORE_COST_PREDICTOR_H_

#include <string>

#include "common/status.h"
#include "dsp/parallel_plan.h"

namespace zerotune::core {

/// Predicted costs of one parallel query plan deployment.
struct CostPrediction {
  double latency_ms = 0.0;
  double throughput_tps = 0.0;
};

/// Interface implemented by every cost model in this repo: the ZeroTune
/// GNN, the flat-vector baselines, and the oracle wrapper around the
/// ground-truth engine. The parallelism optimizer works against this
/// interface, so any model can drive parallelism tuning.
class CostPredictor {
 public:
  virtual ~CostPredictor() = default;

  /// What-if cost estimate for a (hypothetical) deployment.
  virtual Result<CostPrediction> Predict(
      const dsp::ParallelQueryPlan& plan) const = 0;

  /// Display name used in experiment tables.
  virtual std::string name() const = 0;
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_COST_PREDICTOR_H_
