#ifndef ZEROTUNE_CORE_MULTI_QUERY_H_
#define ZEROTUNE_CORE_MULTI_QUERY_H_

#include <vector>

#include "core/optimizer.h"

namespace zerotune::core {

/// Cluster-level tuning for several queries sharing one cluster — an
/// application of the what-if cost model beyond the paper's single-query
/// optimizer: the planner partitions worker nodes among queries
/// (dedicated-node isolation, the common production setup) and tunes each
/// query's parallelism on its partition.
///
/// Allocation is greedy marginal-gain: every query starts with one node;
/// each remaining node goes to the query whose combined Eq.-1-style score
/// improves most when re-tuned with that node added. The what-if model
/// makes each trial allocation a prediction instead of a deployment.
class MultiQueryOptimizer {
 public:
  struct Options {
    /// Eq. 1 weight shared by all queries.
    double weight = 0.5;
    ParallelismOptimizer::Options per_query;
  };

  struct QueryAssignment {
    /// Indices of the cluster nodes dedicated to this query.
    std::vector<int> node_indices;
    /// Tuned deployment on the dedicated sub-cluster.
    dsp::ParallelQueryPlan plan;
    CostPrediction predicted;
    /// Candidates the analytical tier ranked / kept while tuning this
    /// query (0 when prescreening is disabled).
    size_t candidates_prescreened = 0;
    size_t prescreen_kept = 0;

    explicit QueryAssignment(dsp::ParallelQueryPlan p) : plan(std::move(p)) {}
  };

  struct Assignment {
    std::vector<QueryAssignment> queries;
    /// Sum of the per-query scores (lower is better).
    double total_score = 0.0;
    /// Prescreen totals across the final per-query tuning passes.
    size_t candidates_prescreened = 0;
    size_t prescreen_kept = 0;
  };

  MultiQueryOptimizer(const CostPredictor* predictor, Options options)
      : predictor_(predictor), options_(options) {}
  explicit MultiQueryOptimizer(const CostPredictor* predictor)
      : MultiQueryOptimizer(predictor, Options()) {}

  /// Partitions `cluster` among `queries` and tunes each. Fails when
  /// there are more queries than nodes.
  Result<Assignment> Tune(const std::vector<dsp::QueryPlan>& queries,
                          const dsp::Cluster& cluster) const;

 private:
  /// Tunes one query on a node subset; returns its score and plan.
  Result<ParallelismOptimizer::TuningResult> TuneOn(
      const dsp::QueryPlan& query, const dsp::Cluster& cluster,
      const std::vector<int>& nodes) const;

  double Score(const CostPrediction& p) const;

  const CostPredictor* predictor_;
  Options options_;
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_MULTI_QUERY_H_
