#include "core/plan_graph.h"

#include <algorithm>
#include <cmath>

namespace zerotune::core {

namespace {

/// Option 1 of Sec. III-C2: every operator *instance* becomes a graph
/// node. Data-flow edges follow the partitioning (forward: i→i;
/// rebalance/hash: all instance pairs), and every instance maps to its
/// hosting resource. Node and edge counts grow with the parallelism
/// degree — the complexity blow-up the paper's analysis rejects; kept for
/// the representation ablation.
PlanGraph BuildPerInstanceGraph(const dsp::ParallelQueryPlan& plan,
                                const FeatureConfig& config) {
  PlanGraph g;
  const dsp::QueryPlan& q = plan.logical();
  // Rate and chain propagation walk the whole DAG; hoist them out of the
  // per-operator encoder calls (bit-identical, avoids O(V²)).
  std::vector<double> est_in, est_out;
  q.EstimatedRates(&est_in, &est_out);
  const std::vector<int> grouping = plan.GroupingNumbers();

  // Node index layout: contiguous blocks of instances per operator.
  std::vector<int> base(q.num_operators(), 0);
  int next = 0;
  for (const dsp::Operator& op : q.operators()) {
    base[static_cast<size_t>(op.id)] = next;
    next += plan.parallelism(op.id);
  }
  g.operator_features.resize(static_cast<size_t>(next));
  g.operator_upstreams.resize(static_cast<size_t>(next));

  for (const dsp::Operator& op : q.operators()) {
    const int degree = plan.parallelism(op.id);
    const std::vector<double> features = FeatureEncoder::EncodeOperator(
        plan, op.id, config, est_in, est_out, grouping);
    for (int i = 0; i < degree; ++i) {
      const int node = base[static_cast<size_t>(op.id)] + i;
      g.operator_features[static_cast<size_t>(node)] = features;
      // Instance-level data-flow edges from every upstream operator.
      for (int u : q.upstreams(op.id)) {
        const int up_degree = plan.parallelism(u);
        const auto strategy = plan.placement(op.id).partitioning;
        if (strategy == dsp::PartitioningStrategy::kForward &&
            up_degree == degree) {
          const int un = base[static_cast<size_t>(u)] + i;
          g.operator_upstreams[static_cast<size_t>(node)].push_back(un);
          g.data_edges.emplace_back(un, node);
        } else {
          for (int k = 0; k < up_degree; ++k) {
            const int un = base[static_cast<size_t>(u)] + k;
            g.operator_upstreams[static_cast<size_t>(node)].push_back(un);
            g.data_edges.emplace_back(un, node);
          }
        }
      }
    }
  }

  // Topological order: operators in plan order, instances within.
  for (int id : q.TopologicalOrder()) {
    for (int i = 0; i < plan.parallelism(id); ++i) {
      g.topo_order.push_back(base[static_cast<size_t>(id)] + i);
    }
  }
  g.sink_index = base[static_cast<size_t>(q.sink())];

  const size_t n_nodes = plan.cluster().num_nodes();
  for (size_t n = 0; n < n_nodes; ++n) {
    g.resource_features.push_back(
        FeatureEncoder::EncodeResource(plan, n, config));
  }
  for (size_t i = 0; i < n_nodes; ++i) {
    for (size_t j = i + 1; j < n_nodes; ++j) {
      g.resource_edges.emplace_back(static_cast<int>(i), static_cast<int>(j));
    }
  }

  // One mapping edge per instance to the node hosting it.
  const bool mapping_on =
      config.resource_features || config.parallelism_features;
  for (const dsp::Operator& op : q.operators()) {
    const auto& hosts = plan.placement(op.id).instance_nodes;
    const int degree = plan.parallelism(op.id);
    for (int i = 0; i < degree; ++i) {
      PlanGraph::MappingEdge e;
      e.operator_index = base[static_cast<size_t>(op.id)] + i;
      e.resource_index = hosts.empty()
                             ? static_cast<int>(static_cast<size_t>(i) %
                                                std::max<size_t>(1, n_nodes))
                             : hosts[static_cast<size_t>(i)];
      // One instance on this node, owning its full share.
      e.features = {mapping_on ? std::log1p(1.0) / 5.0 : 0.0,
                    mapping_on ? 1.0 : 0.0};
      g.mapping_edges.push_back(std::move(e));
    }
  }
  return g;
}

}  // namespace

PlanGraph BuildPlanGraph(const dsp::ParallelQueryPlan& plan,
                         const FeatureConfig& config) {
  if (config.per_instance_nodes) {
    return BuildPerInstanceGraph(plan, config);
  }
  PlanGraph g;
  const dsp::QueryPlan& q = plan.logical();
  // Hoisted rate and chain propagation, as in BuildPerInstanceGraph above.
  std::vector<double> est_in, est_out;
  q.EstimatedRates(&est_in, &est_out);
  const std::vector<int> grouping = plan.GroupingNumbers();

  g.operator_features.reserve(q.num_operators());
  g.operator_upstreams.reserve(q.num_operators());
  for (const dsp::Operator& op : q.operators()) {
    g.operator_features.push_back(FeatureEncoder::EncodeOperator(
        plan, op.id, config, est_in, est_out, grouping));
    g.operator_upstreams.push_back(q.upstreams(op.id));
    for (int d : q.downstreams(op.id)) {
      g.data_edges.emplace_back(op.id, d);
    }
  }
  g.topo_order = q.TopologicalOrder();
  g.sink_index = q.sink();

  const size_t n_nodes = plan.cluster().num_nodes();
  g.resource_features.reserve(n_nodes);
  for (size_t n = 0; n < n_nodes; ++n) {
    g.resource_features.push_back(
        FeatureEncoder::EncodeResource(plan, n, config));
  }
  for (size_t i = 0; i < n_nodes; ++i) {
    for (size_t j = i + 1; j < n_nodes; ++j) {
      g.resource_edges.emplace_back(static_cast<int>(i), static_cast<int>(j));
    }
  }

  // One mapping edge per (operator, hosting node) pair. When the plan is
  // unplaced, every operator maps to every node with its average share.
  std::vector<int> hosts;
  for (const dsp::Operator& op : q.operators()) {
    const auto& nodes = plan.placement(op.id).instance_nodes;
    hosts.assign(nodes.begin(), nodes.end());
    std::sort(hosts.begin(), hosts.end());
    hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());
    if (hosts.empty()) {
      for (size_t n = 0; n < n_nodes; ++n) hosts.push_back(static_cast<int>(n));
    }
    for (int n : hosts) {
      PlanGraph::MappingEdge e;
      e.operator_index = op.id;
      e.resource_index = n;
      FeatureEncoder::EncodeMapping(plan, op.id, static_cast<size_t>(n),
                                    config, &e.features);
      g.mapping_edges.push_back(e);
    }
  }
  return g;
}

}  // namespace zerotune::core
