#ifndef ZEROTUNE_CORE_ENUMERATION_H_
#define ZEROTUNE_CORE_ENUMERATION_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dsp/parallel_plan.h"

namespace zerotune::core {

/// Strategy that assigns parallelism degrees to a plan's operators when
/// collecting training data (paper Sec. IV). Implementations must also
/// re-derive partitioning and place instances, leaving the plan ready for
/// measurement.
class ParallelismEnumerator {
 public:
  virtual ~ParallelismEnumerator() = default;

  virtual Status Assign(dsp::ParallelQueryPlan* plan,
                        zerotune::Rng* rng) const = 0;
  virtual std::string name() const = 0;
};

/// The paper's OptiSample strategy (Algorithm 1): traverse the operator
/// graph bottom-up, estimate each operator's selectivity (a noisy estimate
/// of the true value — Defs. 4–6 note estimates are deliberately
/// imperfect), propagate input/output rates (Def. 3), and set
/// P(ω) = sf · In_ER(ω) (Defs. 7–8), clamped to [1, min(max_parallelism,
/// cluster cores)]. The scaling factor sf is sampled per query from a
/// log-uniform range, mirroring the empirically-derived backpressure
/// thresholds of Dhalion/DS2-style controllers.
class OptiSampleEnumerator : public ParallelismEnumerator {
 public:
  struct Options {
    double min_scale_factor = 1e-5;
    double max_scale_factor = 2e-4;
    /// Lognormal sigma of the selectivity estimation error.
    double selectivity_noise_sigma = 0.25;
    int max_parallelism = 128;
  };

  OptiSampleEnumerator() : OptiSampleEnumerator(Options()) {}
  explicit OptiSampleEnumerator(Options options) : options_(options) {}

  Status Assign(dsp::ParallelQueryPlan* plan,
                zerotune::Rng* rng) const override;
  std::string name() const override { return "OptiSample"; }

  /// Deterministic variant with a fixed scaling factor and exact
  /// selectivities — used by the optimizer's candidate enumeration.
  static Status AssignWithScaleFactor(dsp::ParallelQueryPlan* plan,
                                      double scale_factor,
                                      int max_parallelism);

 private:
  Options options_;
};

/// Baseline strategy: uniformly random degrees in [1, min(max_parallelism,
/// cluster cores)] per operator (paper's "random" / ZT-Random).
class RandomEnumerator : public ParallelismEnumerator {
 public:
  struct Options {
    int max_parallelism = 128;
  };

  RandomEnumerator() : RandomEnumerator(Options()) {}
  explicit RandomEnumerator(Options options) : options_(options) {}

  Status Assign(dsp::ParallelQueryPlan* plan,
                zerotune::Rng* rng) const override;
  std::string name() const override { return "Random"; }

 private:
  Options options_;
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_ENUMERATION_H_
