#ifndef ZEROTUNE_CORE_ENUMERATION_H_
#define ZEROTUNE_CORE_ENUMERATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/search_space.h"
#include "dsp/parallel_plan.h"

namespace zerotune::core {

/// Strategy that assigns parallelism degrees to a plan's operators when
/// collecting training data (paper Sec. IV). Implementations must also
/// re-derive partitioning and place instances, leaving the plan ready for
/// measurement.
///
/// Every enumerator is also a SearchSpace: Enumerate() draws
/// Options::num_candidates assignments from the same distribution
/// Assign() samples, seeded by Options::seed, and returns them as
/// PlanCandidates for the optimizer's two-tier scoring pipeline. Options
/// carry a Validate() checked at construction; an invalid configuration
/// surfaces as the (unchanged) status from every subsequent Assign() or
/// Enumerate() call instead of being silently clamped.
class ParallelismEnumerator : public SearchSpace {
 public:
  virtual Status Assign(dsp::ParallelQueryPlan* plan,
                        zerotune::Rng* rng) const = 0;
};

/// The paper's OptiSample strategy (Algorithm 1): traverse the operator
/// graph bottom-up, estimate each operator's selectivity (a noisy estimate
/// of the true value — Defs. 4–6 note estimates are deliberately
/// imperfect), propagate input/output rates (Def. 3), and set
/// P(ω) = sf · In_ER(ω) (Defs. 7–8), clamped to [1, min(max_parallelism,
/// cluster cores)]. The scaling factor sf is sampled per query from a
/// log-uniform range, mirroring the empirically-derived backpressure
/// thresholds of Dhalion/DS2-style controllers.
class OptiSampleEnumerator : public ParallelismEnumerator {
 public:
  struct Options {
    double min_scale_factor = 1e-5;
    double max_scale_factor = 2e-4;
    /// Lognormal sigma of the selectivity estimation error.
    double selectivity_noise_sigma = 0.25;
    int max_parallelism = 128;
    /// SearchSpace::Enumerate draws this many sampled assignments.
    size_t num_candidates = 16;
    /// Seed for Enumerate()'s sampling stream (Assign() takes a caller
    /// Rng and is unaffected).
    uint64_t seed = 1;

    /// Rejects out-of-range settings (non-positive scale factors,
    /// inverted ranges, negative noise, empty candidate budget).
    Status Validate() const;
  };

  OptiSampleEnumerator() : OptiSampleEnumerator(Options()) {}
  explicit OptiSampleEnumerator(Options options)
      : options_(options), options_status_(options.Validate()) {}

  Status Assign(dsp::ParallelQueryPlan* plan,
                zerotune::Rng* rng) const override;
  Result<std::vector<PlanCandidate>> Enumerate(
      const dsp::QueryPlan& logical,
      const dsp::Cluster& cluster) const override;
  std::string name() const override { return "OptiSample"; }

  /// Deterministic variant with a fixed scaling factor and exact
  /// selectivities — used by GridSearchSpace's candidate enumeration.
  static Status AssignWithScaleFactor(dsp::ParallelQueryPlan* plan,
                                      double scale_factor,
                                      int max_parallelism);

 private:
  Options options_;
  Status options_status_;
};

/// Baseline strategy: uniformly random degrees in [1, min(max_parallelism,
/// cluster cores)] per operator (paper's "random" / ZT-Random).
class RandomEnumerator : public ParallelismEnumerator {
 public:
  struct Options {
    int max_parallelism = 128;
    /// SearchSpace::Enumerate draws this many sampled assignments.
    size_t num_candidates = 16;
    /// Seed for Enumerate()'s sampling stream.
    uint64_t seed = 1;

    Status Validate() const;
  };

  RandomEnumerator() : RandomEnumerator(Options()) {}
  explicit RandomEnumerator(Options options)
      : options_(options), options_status_(options.Validate()) {}

  Status Assign(dsp::ParallelQueryPlan* plan,
                zerotune::Rng* rng) const override;
  Result<std::vector<PlanCandidate>> Enumerate(
      const dsp::QueryPlan& logical,
      const dsp::Cluster& cluster) const override;
  std::string name() const override { return "Random"; }

 private:
  Options options_;
  Status options_status_;
};

}  // namespace zerotune::core

#endif  // ZEROTUNE_CORE_ENUMERATION_H_
