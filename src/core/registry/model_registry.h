#ifndef ZEROTUNE_CORE_REGISTRY_MODEL_REGISTRY_H_
#define ZEROTUNE_CORE_REGISTRY_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "core/model.h"

namespace zerotune::core::registry {

/// Lifecycle of one registry version.
///
///   kCandidate --Promote--> kLive --(next Promote)--> kRetired
///        |                    |
///      Reject             Rollback
///        v                    v
///    kRejected            kRejected   (parent becomes kLive again)
enum class VersionState { kCandidate, kLive, kRetired, kRejected };

const char* VersionStateName(VersionState state);

/// Manifest record of one published model version.
struct VersionInfo {
  uint64_t id = 0;
  VersionState state = VersionState::kCandidate;
  /// Version this one was fine-tuned from (0 = trained from scratch).
  uint64_t parent = 0;
  /// Publish sequence number (monotone across the registry's lifetime,
  /// survives restarts; orders versions even after rollbacks).
  uint64_t created_seq = 0;
  /// Median q-error recorded when the version was published / promoted
  /// (0 = never evaluated).
  double median_qerror = 0.0;
  /// Free-form provenance token, e.g. "initial" or "finetune" (whitespace
  /// is replaced with '-' so the manifest stays line-oriented).
  std::string source;
};

/// A version whose on-disk artifact failed validation at Open(): it stays
/// listed in the manifest but cannot be loaded or promoted. `file` names
/// the offending artifact so an operator can inspect or delete it.
struct QuarantinedVersion {
  uint64_t id = 0;
  std::string file;
  std::string reason;
};

/// Crash-safe on-disk store of versioned model artifacts.
///
/// Layout:
///   <root>/MANIFEST               text manifest ("zerotune-registry-v1")
///   <root>/versions/<id>/model.txt  one artifact per version
///
/// Every mutation (Publish / Promote / Rollback / Reject) rewrites the
/// manifest through AtomicWriteFile, whose rename + parent-directory fsync
/// makes the new state durable before the call returns: a crash leaves
/// either the previous manifest or the new one, never a torn file, and a
/// version directory without a manifest entry (crash between artifact
/// write and manifest commit) is simply invisible — Publish never reuses
/// ids because next-id is part of the committed manifest.
///
/// Open() validates every non-rejected version by fully loading its
/// artifact; corrupt or missing artifacts are quarantined (with the
/// offending file named) instead of failing the whole registry, while a
/// corrupt MANIFEST is a hard error naming the manifest file. Validated
/// models are cached in memory, so LoadVersion() is cheap and the returned
/// shared_ptr keeps a version usable even after it is later retired.
///
/// Thread-safe; all methods may be called concurrently.
class ModelRegistry {
 public:
  /// Opens the registry at `root`, creating an empty one if the directory
  /// or manifest does not exist yet.
  static Result<std::unique_ptr<ModelRegistry>> Open(const std::string& root);

  /// Saves `model` as a new candidate version and durably commits the
  /// manifest entry. Assigns and returns the new version id (also written
  /// into `model`'s version field and its artifact). `info.parent`,
  /// `info.median_qerror` and `info.source` are taken from the argument;
  /// id / state / created_seq are assigned by the registry.
  Result<uint64_t> Publish(ZeroTuneModel* model, VersionInfo info);

  /// In-memory handle to a validated version's model. Fails for unknown,
  /// rejected, or quarantined versions.
  Result<std::shared_ptr<const ZeroTuneModel>> LoadVersion(uint64_t id) const;

  /// Makes `id` (a candidate or retired version) the live version; the
  /// previously live version, if any, becomes retired. Records
  /// `median_qerror` as the promotion-time score.
  Status Promote(uint64_t id, double median_qerror);

  /// Demotes the live version to rejected and re-promotes its parent
  /// (which must be a loadable retired version). Returns the id that is
  /// live after the rollback.
  Result<uint64_t> Rollback();

  /// Marks a candidate version rejected (shadow scoring failed it). Its
  /// artifact stays on disk for post-mortem inspection.
  Status Reject(uint64_t id);

  /// Currently live version id (0 = none).
  uint64_t live_version() const;

  /// Manifest records, ordered by id.
  std::vector<VersionInfo> Versions() const;

  /// Versions whose artifacts failed validation at Open().
  std::vector<QuarantinedVersion> Quarantined() const;

  /// Absolute path of a version's artifact file (exists only after
  /// Publish; does not check validity).
  std::string VersionPath(uint64_t id) const;

  const std::string& root() const { return root_; }

 private:
  explicit ModelRegistry(std::string root);

  Status LoadManifest() ZT_REQUIRES(mu_);
  Status CommitManifest() ZT_REQUIRES(mu_);
  void ValidateArtifacts() ZT_REQUIRES(mu_);

  const std::string root_;

  mutable Mutex mu_;
  uint64_t live_ ZT_GUARDED_BY(mu_) = 0;
  uint64_t next_id_ ZT_GUARDED_BY(mu_) = 1;
  uint64_t next_seq_ ZT_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, VersionInfo> versions_ ZT_GUARDED_BY(mu_);
  std::map<uint64_t, std::shared_ptr<const ZeroTuneModel>> cache_
      ZT_GUARDED_BY(mu_);
  std::vector<QuarantinedVersion> quarantined_ ZT_GUARDED_BY(mu_);
};

}  // namespace zerotune::core::registry

#endif  // ZEROTUNE_CORE_REGISTRY_MODEL_REGISTRY_H_
