#include "core/registry/model_registry.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/file_util.h"
#include "obs/metrics.h"

namespace zerotune::core::registry {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestMagic = "zerotune-registry-v1";

std::string SanitizeToken(const std::string& s) {
  std::string out = s.empty() ? std::string("unknown") : s;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '-';
  }
  return out;
}

Result<VersionState> ParseState(const std::string& token) {
  if (token == "candidate") return VersionState::kCandidate;
  if (token == "live") return VersionState::kLive;
  if (token == "retired") return VersionState::kRetired;
  if (token == "rejected") return VersionState::kRejected;
  return Status::InvalidArgument("unknown version state '" + token + "'");
}

obs::Counter* RegistryCounter(const char* name) {
  return obs::MetricsRegistry::Global()->GetCounter(name);
}

}  // namespace

const char* VersionStateName(VersionState state) {
  switch (state) {
    case VersionState::kCandidate:
      return "candidate";
    case VersionState::kLive:
      return "live";
    case VersionState::kRetired:
      return "retired";
    case VersionState::kRejected:
      return "rejected";
  }
  return "unknown";
}

ModelRegistry::ModelRegistry(std::string root) : root_(std::move(root)) {}

Result<std::unique_ptr<ModelRegistry>> ModelRegistry::Open(
    const std::string& root) {
  if (root.empty()) {
    return Status::InvalidArgument("model registry: empty root path");
  }
  std::error_code ec;
  fs::create_directories(fs::path(root) / "versions", ec);
  if (ec) {
    return Status::IOError("model registry: cannot create " + root + ": " +
                           ec.message());
  }
  std::unique_ptr<ModelRegistry> reg(new ModelRegistry(root));
  {
    MutexLock lock(reg->mu_);
    ZT_RETURN_IF_ERROR(reg->LoadManifest());
    reg->ValidateArtifacts();
    // First open of a fresh directory: commit the empty manifest so the
    // registry's existence itself is durable.
    if (!fs::exists(fs::path(root) / "MANIFEST")) {
      ZT_RETURN_IF_ERROR(reg->CommitManifest());
    }
  }
  return reg;
}

Status ModelRegistry::LoadManifest() {
  const std::string manifest_path = (fs::path(root_) / "MANIFEST").string();
  std::ifstream f(manifest_path);
  if (!f) return Status::OK();  // fresh registry
  std::string magic;
  f >> magic;
  if (magic != kManifestMagic) {
    return Status::InvalidArgument("corrupt registry manifest " +
                                   manifest_path + ": bad magic '" + magic +
                                   "'");
  }
  std::string key;
  while (f >> key) {
    if (key == "live") {
      if (!(f >> live_)) {
        return Status::InvalidArgument("corrupt registry manifest " +
                                       manifest_path + ": truncated live line");
      }
    } else if (key == "next-id") {
      if (!(f >> next_id_) || next_id_ == 0) {
        return Status::InvalidArgument("corrupt registry manifest " +
                                       manifest_path +
                                       ": bad next-id line");
      }
    } else if (key == "next-seq") {
      if (!(f >> next_seq_) || next_seq_ == 0) {
        return Status::InvalidArgument("corrupt registry manifest " +
                                       manifest_path +
                                       ": bad next-seq line");
      }
    } else if (key == "version") {
      VersionInfo v;
      std::string state;
      if (!(f >> v.id >> state >> v.parent >> v.created_seq >>
            v.median_qerror >> v.source)) {
        return Status::InvalidArgument("corrupt registry manifest " +
                                       manifest_path +
                                       ": truncated version line");
      }
      ZT_ASSIGN_OR_RETURN(v.state, ParseState(state));
      if (v.id == 0 || versions_.count(v.id) != 0) {
        return Status::InvalidArgument(
            "corrupt registry manifest " + manifest_path +
            ": bad or duplicate version id " + std::to_string(v.id));
      }
      versions_[v.id] = std::move(v);
    } else {
      return Status::InvalidArgument("corrupt registry manifest " +
                                     manifest_path + ": unknown key '" + key +
                                     "'");
    }
  }
  // Cross-checks: the live pointer must reference a version marked live.
  if (live_ != 0) {
    auto it = versions_.find(live_);
    if (it == versions_.end() || it->second.state != VersionState::kLive) {
      return Status::InvalidArgument(
          "corrupt registry manifest " + manifest_path + ": live version " +
          std::to_string(live_) + " is missing or not marked live");
    }
  }
  for (const auto& [id, v] : versions_) {
    if (id >= next_id_) {
      return Status::InvalidArgument(
          "corrupt registry manifest " + manifest_path + ": version id " +
          std::to_string(id) + " >= next-id " + std::to_string(next_id_));
    }
  }
  return Status::OK();
}

void ModelRegistry::ValidateArtifacts() {
  for (auto& [id, v] : versions_) {
    if (v.state == VersionState::kRejected) continue;  // post-mortem only
    const std::string file = VersionPath(id);
    auto loaded = ZeroTuneModel::LoadFromFile(file);
    if (!loaded.ok()) {
      quarantined_.push_back(
          QuarantinedVersion{id, file, loaded.status().message()});
      if (live_ == id) live_ = 0;
      RegistryCounter("adapt.registry.quarantined_total")->Increment();
      continue;
    }
    cache_[id] =
        std::shared_ptr<const ZeroTuneModel>(std::move(loaded).value());
  }
  obs::MetricsRegistry::Global()
      ->GetGauge("adapt.registry.live_version")
      ->Set(static_cast<double>(live_));
}

Status ModelRegistry::CommitManifest() {
  const std::string manifest_path = (fs::path(root_) / "MANIFEST").string();
  std::ostringstream os;
  os.precision(17);
  os << kManifestMagic << "\n";
  os << "live " << live_ << "\n";
  os << "next-id " << next_id_ << "\n";
  os << "next-seq " << next_seq_ << "\n";
  for (const auto& [id, v] : versions_) {
    os << "version " << id << " " << VersionStateName(v.state) << " "
       << v.parent << " " << v.created_seq << " " << v.median_qerror << " "
       << SanitizeToken(v.source) << "\n";
  }
  ZT_RETURN_IF_ERROR(AtomicWriteFile(manifest_path, os.str()));
  obs::MetricsRegistry::Global()
      ->GetGauge("adapt.registry.live_version")
      ->Set(static_cast<double>(live_));
  return Status::OK();
}

Result<uint64_t> ModelRegistry::Publish(ZeroTuneModel* model,
                                        VersionInfo info) {
  if (model == nullptr) {
    return Status::InvalidArgument("model registry: null model");
  }
  MutexLock lock(mu_);
  const uint64_t id = next_id_;
  const std::string dir =
      (fs::path(root_) / "versions" / std::to_string(id)).string();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("model registry: cannot create " + dir + ": " +
                           ec.message());
  }
  model->set_version(id);
  const std::string file = VersionPath(id);
  ZT_RETURN_IF_ERROR(model->Save(file));
  // Re-load what was just written: the cache must hold exactly the
  // artifact a restart would see, and a save that cannot round-trip is a
  // publish-time error, not a quarantine surprise at the next Open.
  auto reloaded = ZeroTuneModel::LoadFromFile(file);
  if (!reloaded.ok()) {
    return Status::Internal("model registry: published artifact " + file +
                            " failed readback: " +
                            reloaded.status().message());
  }

  info.id = id;
  info.state = VersionState::kCandidate;
  info.created_seq = next_seq_;
  next_id_ = id + 1;
  next_seq_ += 1;
  versions_[id] = info;
  const Status committed = CommitManifest();
  if (!committed.ok()) {
    // Roll the in-memory state back so a retried Publish stays consistent
    // with the on-disk manifest (the orphan version directory is invisible
    // to future Opens).
    versions_.erase(id);
    next_id_ = id;
    next_seq_ -= 1;
    return committed;
  }
  cache_[id] =
      std::shared_ptr<const ZeroTuneModel>(std::move(reloaded).value());
  RegistryCounter("adapt.registry.publishes_total")->Increment();
  return id;
}

Result<std::shared_ptr<const ZeroTuneModel>> ModelRegistry::LoadVersion(
    uint64_t id) const {
  MutexLock lock(mu_);
  auto vit = versions_.find(id);
  if (vit == versions_.end()) {
    return Status::NotFound("model registry: no version " +
                            std::to_string(id));
  }
  if (vit->second.state == VersionState::kRejected) {
    return Status::FailedPrecondition("model registry: version " +
                                      std::to_string(id) + " is rejected");
  }
  auto cit = cache_.find(id);
  if (cit == cache_.end()) {
    for (const QuarantinedVersion& q : quarantined_) {
      if (q.id == id) {
        return Status::FailedPrecondition(
            "model registry: version " + std::to_string(id) +
            " is quarantined (" + q.file + ": " + q.reason + ")");
      }
    }
    return Status::Internal("model registry: version " + std::to_string(id) +
                            " has no cached artifact");
  }
  return cit->second;
}

Status ModelRegistry::Promote(uint64_t id, double median_qerror) {
  MutexLock lock(mu_);
  auto it = versions_.find(id);
  if (it == versions_.end()) {
    return Status::NotFound("model registry: no version " +
                            std::to_string(id));
  }
  VersionInfo& v = it->second;
  // Idempotent only when the version really is serving; a quarantined
  // version keeps its manifest state kLive while live_ fell to 0, and
  // that one must fall through to the cache check below.
  if (v.state == VersionState::kLive && live_ == id) return Status::OK();
  if (v.state == VersionState::kRejected) {
    return Status::FailedPrecondition("model registry: cannot promote "
                                      "rejected version " +
                                      std::to_string(id));
  }
  if (cache_.count(id) == 0) {
    return Status::FailedPrecondition("model registry: cannot promote "
                                      "quarantined version " +
                                      std::to_string(id));
  }
  const uint64_t prev_live = live_;
  const VersionState prev_state = v.state;
  const double prev_qerror = v.median_qerror;
  if (prev_live != 0) versions_[prev_live].state = VersionState::kRetired;
  v.state = VersionState::kLive;
  v.median_qerror = median_qerror;
  live_ = id;
  const Status committed = CommitManifest();
  if (!committed.ok()) {
    v.state = prev_state;
    v.median_qerror = prev_qerror;
    if (prev_live != 0) versions_[prev_live].state = VersionState::kLive;
    live_ = prev_live;
    return committed;
  }
  RegistryCounter("adapt.registry.promotions_total")->Increment();
  return Status::OK();
}

Result<uint64_t> ModelRegistry::Rollback() {
  MutexLock lock(mu_);
  if (live_ == 0) {
    return Status::FailedPrecondition(
        "model registry: no live version to roll back");
  }
  VersionInfo& bad = versions_[live_];
  const uint64_t parent = bad.parent;
  auto pit = versions_.find(parent);
  if (parent == 0 || pit == versions_.end() ||
      pit->second.state != VersionState::kRetired || cache_.count(parent) == 0) {
    return Status::FailedPrecondition(
        "model registry: live version " + std::to_string(live_) +
        " has no loadable retired parent to roll back to");
  }
  const uint64_t bad_id = live_;
  bad.state = VersionState::kRejected;
  pit->second.state = VersionState::kLive;
  live_ = parent;
  const Status committed = CommitManifest();
  if (!committed.ok()) {
    versions_[bad_id].state = VersionState::kLive;
    pit->second.state = VersionState::kRetired;
    live_ = bad_id;
    return committed;
  }
  RegistryCounter("adapt.registry.rollbacks_total")->Increment();
  return parent;
}

Status ModelRegistry::Reject(uint64_t id) {
  MutexLock lock(mu_);
  auto it = versions_.find(id);
  if (it == versions_.end()) {
    return Status::NotFound("model registry: no version " +
                            std::to_string(id));
  }
  if (it->second.state == VersionState::kRejected) return Status::OK();
  if (it->second.state != VersionState::kCandidate) {
    return Status::FailedPrecondition(
        "model registry: can only reject candidates; version " +
        std::to_string(id) + " is " + VersionStateName(it->second.state));
  }
  const VersionState prev = it->second.state;
  it->second.state = VersionState::kRejected;
  const Status committed = CommitManifest();
  if (!committed.ok()) {
    it->second.state = prev;
    return committed;
  }
  RegistryCounter("adapt.registry.rejections_total")->Increment();
  return Status::OK();
}

uint64_t ModelRegistry::live_version() const {
  MutexLock lock(mu_);
  return live_;
}

std::vector<VersionInfo> ModelRegistry::Versions() const {
  MutexLock lock(mu_);
  std::vector<VersionInfo> out;
  out.reserve(versions_.size());
  for (const auto& [id, v] : versions_) out.push_back(v);
  return out;
}

std::vector<QuarantinedVersion> ModelRegistry::Quarantined() const {
  MutexLock lock(mu_);
  return quarantined_;
}

std::string ModelRegistry::VersionPath(uint64_t id) const {
  return (fs::path(root_) / "versions" / std::to_string(id) / "model.txt")
      .string();
}

}  // namespace zerotune::core::registry
