#ifndef ZEROTUNE_COMMON_HISTOGRAM_H_
#define ZEROTUNE_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace zerotune {

/// Log-bucketed histogram for latency-style positive measurements,
/// HdrHistogram-flavored: buckets grow geometrically so the structure
/// covers nanoseconds to minutes with bounded relative error and O(1)
/// recording. Used by the discrete-event simulator and the metrics
/// registry to report full latency distributions without storing every
/// sample.
class Histogram {
 public:
  /// `min_value`/`max_value` bound the tracked range (values are clamped);
  /// `buckets_per_decade` controls resolution (relative error ≈
  /// 10^(1/buckets)−1). Invalid inputs (non-positive or non-finite
  /// `min_value`, `max_value <= min_value`, zero buckets) are sanitized to
  /// the nearest valid configuration — a histogram never holds a NaN
  /// layout. Use Create() to reject bad inputs instead of repairing them.
  Histogram(double min_value = 1e-3, double max_value = 1e6,
            size_t buckets_per_decade = 20);

  /// Strict factory: returns InvalidArgument for inputs the constructor
  /// would silently repair.
  static Result<Histogram> Create(double min_value, double max_value,
                                  size_t buckets_per_decade);

  void Record(double value);

  /// Merges another histogram into this one. Fails with InvalidArgument
  /// (and leaves this histogram untouched) when the bucket layouts differ;
  /// callers that construct both sides from the same configuration may
  /// ZT_CHECK_OK the result.
  Status Merge(const Histogram& other);

  /// True when `other` was built with the same bucket layout, i.e. Merge
  /// would succeed.
  bool SameLayout(const Histogram& other) const;

  size_t count() const { return count_; }
  double min() const;
  double max() const;
  double Mean() const;
  /// p in [0, 100]. p=0 returns the observed minimum and p=100 the
  /// observed maximum exactly; intermediate quantiles are log-interpolated
  /// within the bucket holding the target rank and clamped to the observed
  /// [min, max] range (within one bucket of the exact order statistic).
  double Percentile(double p) const;

  /// Compact textual summary: count/mean/p50/p95/p99/max.
  std::string Summary() const;

 private:
  size_t BucketFor(double value) const;
  double BucketUpperEdge(size_t bucket) const;

  double min_value_;
  double max_value_;
  double log_min_;
  double bucket_width_;  // in log10 space
  std::vector<uint64_t> buckets_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double observed_min_ = 0.0;
  double observed_max_ = 0.0;
};

}  // namespace zerotune

#endif  // ZEROTUNE_COMMON_HISTOGRAM_H_
