#ifndef ZEROTUNE_COMMON_HISTOGRAM_H_
#define ZEROTUNE_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace zerotune {

/// Log-bucketed histogram for latency-style positive measurements,
/// HdrHistogram-flavored: buckets grow geometrically so the structure
/// covers nanoseconds to minutes with bounded relative error and O(1)
/// recording. Used by the discrete-event simulator to report full latency
/// distributions without storing every sample.
class Histogram {
 public:
  /// `min_value`/`max_value` bound the tracked range (values are clamped);
  /// `buckets_per_decade` controls resolution (relative error ≈
  /// 10^(1/buckets)−1).
  Histogram(double min_value = 1e-3, double max_value = 1e6,
            size_t buckets_per_decade = 20);

  void Record(double value);
  /// Merges another histogram with identical bucket layout.
  void Merge(const Histogram& other);

  size_t count() const { return count_; }
  double min() const;
  double max() const;
  double Mean() const;
  /// p in [0, 100]; returns the upper edge of the bucket holding the
  /// quantile (within one bucket of the exact order statistic).
  double Percentile(double p) const;

  /// Compact textual summary: count/mean/p50/p95/p99/max.
  std::string Summary() const;

 private:
  size_t BucketFor(double value) const;
  double BucketUpperEdge(size_t bucket) const;

  double min_value_;
  double max_value_;
  double log_min_;
  double bucket_width_;  // in log10 space
  std::vector<uint64_t> buckets_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double observed_min_ = 0.0;
  double observed_max_ = 0.0;
};

}  // namespace zerotune

#endif  // ZEROTUNE_COMMON_HISTOGRAM_H_
