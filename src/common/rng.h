#ifndef ZEROTUNE_COMMON_RNG_H_
#define ZEROTUNE_COMMON_RNG_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace zerotune {

/// Deterministic random number generator used across the library.
///
/// Every stochastic component (query generator, cost-engine noise, model
/// initialization, training shuffles) takes an explicit Rng so experiments
/// are reproducible bit-for-bit given a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled to (mean, stddev).
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Multiplicative lognormal factor with median 1 and shape sigma.
  double LogNormalFactor(double sigma) {
    return std::exp(Gaussian(0.0, sigma));
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    assert(!items.empty());
    return items[static_cast<size_t>(UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    std::shuffle(items->begin(), items->end(), engine_);
  }

  /// Derives an independent child generator; used to give each worker
  /// thread / query its own stream without correlation.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace zerotune

#endif  // ZEROTUNE_COMMON_RNG_H_
