#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace zerotune {

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

Status TextTable::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) f << ',';
      f << CsvEscape(row[c]);
    }
    f << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return f ? Status::OK() : Status::IOError("write failed for " + path);
}

}  // namespace zerotune
