#ifndef ZEROTUNE_COMMON_STATUS_H_
#define ZEROTUNE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace zerotune {

/// Error codes used across the library. Modeled after the RocksDB/Arrow
/// convention of returning a Status from fallible operations instead of
/// throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIOError,
};

/// Result of a fallible operation: either OK or a code plus a message.
///
/// Usage:
///   Status s = plan.Validate();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns a status with the same code and `context + ": " + message()`.
  /// OK statuses pass through unchanged. Used to attach caller context
  /// (e.g. which batched plan failed) while preserving the error code.
  Status Annotated(const std::string& context) const {
    if (ok()) return *this;
    return Status(code_, context + ": " + message_);
  }

  /// Human-readable representation, e.g. "InvalidArgument: bad degree".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kIOError: return "IOError";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. On error, holds the Status; on success holds T.
///
/// Usage:
///   Result<double> r = model.Predict(plan);
///   if (!r.ok()) return r.status();
///   double latency = r.value();
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from a non-OK status (failure). Constructing from an OK
  /// status without a value is a programming error.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define ZT_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::zerotune::Status _zt_s = (expr);          \
    if (!_zt_s.ok()) return _zt_s;              \
  } while (0)

#define ZT_CONCAT_INNER(a, b) a##b
#define ZT_CONCAT(a, b) ZT_CONCAT_INNER(a, b)

/// Assigns the value of a Result to `lhs` (which may be a declaration),
/// or returns its status.
#define ZT_ASSIGN_OR_RETURN(lhs, expr) \
  ZT_ASSIGN_OR_RETURN_IMPL(ZT_CONCAT(_zt_result_, __LINE__), lhs, expr)

#define ZT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

}  // namespace zerotune

#endif  // ZEROTUNE_COMMON_STATUS_H_
