#ifndef ZEROTUNE_COMMON_STATUS_H_
#define ZEROTUNE_COMMON_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace zerotune {

/// Error codes used across the library. Modeled after the RocksDB/Arrow
/// convention of returning a Status from fallible operations instead of
/// throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIOError,
  /// A per-request time budget ran out before the work completed.
  kDeadlineExceeded,
  /// Bounded capacity (admission queue, concurrency limit) was full and
  /// the request was shed rather than queued unboundedly.
  kResourceExhausted,
  /// The serving backend is (transiently) unable to answer — e.g. the
  /// primary predictor's circuit is open and no fallback succeeded.
  kUnavailable,
};

/// Result of a fallible operation: either OK or a code plus a message.
///
/// Usage:
///   Status s = plan.Validate();
///   if (!s.ok()) return s;
///
/// Marked [[nodiscard]]: silently dropping a Status hides failures, so
/// ignoring one is a compile-time warning (an error under scripts/lint.sh).
/// The rare intentional drop is written `(void)expr;` with a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns a status with the same code and `context + ": " + message()`.
  /// OK statuses pass through unchanged. Used to attach caller context
  /// (e.g. which batched plan failed) while preserving the error code.
  Status Annotated(const std::string& context) const {
    if (ok()) return *this;
    return Status(code_, context + ": " + message_);
  }

  /// Human-readable representation, e.g. "InvalidArgument: bad degree".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. On error, holds the Status; on success holds T.
///
/// Usage:
///   Result<double> r = model.Predict(plan);
///   if (!r.ok()) return r.status();
///   double latency = r.value();
///
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from a non-OK status (failure). Constructing from an OK
  /// status without a value is a programming error.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define ZT_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::zerotune::Status _zt_s = (expr);          \
    if (!_zt_s.ok()) return _zt_s;              \
  } while (0)

namespace internal {
inline Status GetStatus(const Status& s) { return s; }
template <typename T>
Status GetStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

/// Aborts with the error when `expr` (a Status or Result<T>) is not OK.
/// For benches, examples, and fixed test fixtures, where a failure is a
/// programming bug and there is no caller to propagate to; library code
/// propagates with ZT_RETURN_IF_ERROR instead.
#define ZT_CHECK_OK(expr)                                               \
  do {                                                                  \
    const ::zerotune::Status _zt_chk =                                  \
        ::zerotune::internal::GetStatus((expr));                        \
    if (!_zt_chk.ok()) {                                                \
      std::fprintf(stderr, "ZT_CHECK_OK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, _zt_chk.ToString().c_str());     \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#define ZT_CONCAT_INNER(a, b) a##b
#define ZT_CONCAT(a, b) ZT_CONCAT_INNER(a, b)

/// Assigns the value of a Result to `lhs` (which may be a declaration),
/// or returns its status.
#define ZT_ASSIGN_OR_RETURN(lhs, expr) \
  ZT_ASSIGN_OR_RETURN_IMPL(ZT_CONCAT(_zt_result_, __LINE__), lhs, expr)

#define ZT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

}  // namespace zerotune

#endif  // ZEROTUNE_COMMON_STATUS_H_
