#include "common/statistics.h"

#include <algorithm>
#include <cmath>

namespace zerotune {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double Median(const std::vector<double>& xs) { return Percentile(xs, 50.0); }

double QError(double truth, double prediction) {
  constexpr double kEps = 1e-9;
  const double c = std::max(std::abs(truth), kEps);
  const double cp = std::max(std::abs(prediction), kEps);
  return std::max(c / cp, cp / c);
}

double GeometricMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(std::max(x, 1e-12));
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

QErrorSummary SummarizeQErrors(const std::vector<double>& qerrors) {
  QErrorSummary s;
  s.count = qerrors.size();
  if (qerrors.empty()) return s;
  s.median = Median(qerrors);
  s.p95 = Percentile(qerrors, 95.0);
  s.mean = Mean(qerrors);
  s.max = *std::max_element(qerrors.begin(), qerrors.end());
  return s;
}

}  // namespace zerotune
