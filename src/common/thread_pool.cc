#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace zerotune {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.wait(lock.unique_lock());
  if (first_exception_ != nullptr) {
    std::exception_ptr e = std::exchange(first_exception_, nullptr);
    lock.Unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && tasks_.empty()) {
        task_ready_.wait(lock.unique_lock());
      }
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A throwing task must neither unwind into the worker thread (which
    // would std::terminate the process) nor skip the in_flight_ decrement
    // (which would wedge Wait() forever). Capture the first exception for
    // Wait() to rethrow and keep the bookkeeping exact either way.
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      MutexLock lock(mu_);
      if (thrown != nullptr && first_exception_ == nullptr) {
        first_exception_ = std::move(thrown);
      }
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t num_chunks = std::min(n, pool->num_threads());
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool->Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool->Wait();
}

}  // namespace zerotune
