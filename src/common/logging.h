#ifndef ZEROTUNE_COMMON_LOGGING_H_
#define ZEROTUNE_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>

namespace zerotune {

/// Minimal leveled logging. Levels: 0 = quiet, 1 = info (default),
/// 2 = verbose (per-epoch training traces).
class Log {
 public:
  static int& Level() {
    static int level = 1;
    return level;
  }

  /// Streams a single info line when level >= 1.
  template <typename... Args>
  static void Info(const Args&... args) {
    Emit(1, args...);
  }

  /// Streams a single verbose line when level >= 2.
  template <typename... Args>
  static void Verbose(const Args&... args) {
    Emit(2, args...);
  }

 private:
  template <typename... Args>
  static void Emit(int min_level, const Args&... args) {
    if (Level() < min_level) return;
    std::ostringstream os;
    (os << ... << args);
    std::cerr << "[zerotune] " << os.str() << '\n';
  }
};

}  // namespace zerotune

#endif  // ZEROTUNE_COMMON_LOGGING_H_
