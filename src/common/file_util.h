#ifndef ZEROTUNE_COMMON_FILE_UTIL_H_
#define ZEROTUNE_COMMON_FILE_UTIL_H_

#include <functional>
#include <iosfwd>
#include <string>

#include "common/status.h"

namespace zerotune {

/// Crash-safe file replacement: writes `contents` to a temporary file in
/// the same directory as `path`, flushes it to stable storage (fsync),
/// atomically renames it over `path`, then fsyncs the parent directory so
/// the rename itself survives power loss. A crash at any point leaves
/// either the old file or the new file — never a torn or empty one — and
/// once this returns OK the new contents are durable. On any failure the
/// temporary is removed and the previous `path` contents are untouched.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Streaming convenience over AtomicWriteFile: `writer` serializes into a
/// memory buffer; the buffer is committed atomically only when `writer`
/// returns OK and the stream is still good. A failing writer therefore
/// never clobbers an existing file — the property every Save path in this
/// repo (model, dataset, plan, checkpoint) relies on.
Status AtomicWriteStream(const std::string& path,
                         const std::function<Status(std::ostream&)>& writer);

}  // namespace zerotune

#endif  // ZEROTUNE_COMMON_FILE_UTIL_H_
