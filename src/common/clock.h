#ifndef ZEROTUNE_COMMON_CLOCK_H_
#define ZEROTUNE_COMMON_CLOCK_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace zerotune {

/// Sentinel meaning "no deadline" on the Clock timeline.
inline constexpr int64_t kNoDeadlineNanos =
    std::numeric_limits<int64_t>::max();

/// Injectable time source used by every component with timing behavior
/// (prediction serving, circuit breaking, retry backoff). Production code
/// uses SystemClock; tests use FakeClock to drive deadline and breaker
/// transitions deterministically — no sleeps, no flaky timing margins.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary fixed epoch.
  virtual int64_t NowNanos() = 0;

  /// Blocks the calling thread for `nanos` of this clock's time.
  virtual void SleepFor(int64_t nanos) = 0;

  /// Waits on `cv` (whose lock is held by the caller) until `pred()` holds
  /// or this clock reaches the absolute time `deadline_nanos`
  /// (kNoDeadlineNanos = wait indefinitely). Returns the final `pred()`
  /// value with the lock re-held. The predicate is evaluated only with the
  /// lock held, like std::condition_variable::wait.
  virtual bool WaitUntil(std::unique_lock<std::mutex>& lock,
                         std::condition_variable& cv, int64_t deadline_nanos,
                         const std::function<bool()>& pred) = 0;

  /// Milliseconds elapsed since `start_nanos` on this clock.
  double MillisSince(int64_t start_nanos) {
    return static_cast<double>(NowNanos() - start_nanos) / 1e6;
  }
};

/// Wall-clock implementation over std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  /// Shared process-wide instance (the clock is stateless).
  static SystemClock* Default();

  int64_t NowNanos() override;
  void SleepFor(int64_t nanos) override;
  bool WaitUntil(std::unique_lock<std::mutex>& lock,
                 std::condition_variable& cv, int64_t deadline_nanos,
                 const std::function<bool()>& pred) override;
};

/// Deterministic manually-advanced clock for tests. SleepFor advances
/// virtual time instead of blocking, and WaitUntil jumps straight to the
/// deadline when the predicate cannot be satisfied by the calling thread —
/// so single-threaded tests of deadline/backoff/breaker logic run in
/// microseconds of real time. Thread-safe, but designed for tests that
/// execute service work inline (PredictionService without a pool); it does
/// not block threads waiting for another thread to advance time.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_nanos = 0) : now_(start_nanos) {}

  int64_t NowNanos() override;
  void SleepFor(int64_t nanos) override;
  bool WaitUntil(std::unique_lock<std::mutex>& lock,
                 std::condition_variable& cv, int64_t deadline_nanos,
                 const std::function<bool()>& pred) override;

  /// Moves time forward by `nanos` (>= 0).
  void Advance(int64_t nanos);
  void AdvanceMillis(double ms) {
    Advance(static_cast<int64_t>(ms * 1e6));
  }

 private:
  mutable Mutex mu_;
  int64_t now_ ZT_GUARDED_BY(mu_);
};

/// A point on a Clock's timeline by which work must finish. Budget <= 0
/// (or the default constructor) means "no deadline". Cheap to copy; checks
/// are cooperative — long-running phases poll Expired() between steps.
class Deadline {
 public:
  /// No deadline.
  Deadline() = default;

  /// Expires `budget_ms` after `clock`'s current time.
  Deadline(Clock* clock, double budget_ms);

  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return clock_ == nullptr; }
  bool Expired() const;
  /// Remaining budget in ms; negative once expired, +inf when infinite.
  double RemainingMs() const;
  /// Absolute expiry on the clock's timeline (kNoDeadlineNanos when
  /// infinite).
  int64_t deadline_nanos() const { return deadline_nanos_; }
  Clock* clock() const { return clock_; }

 private:
  Clock* clock_ = nullptr;
  int64_t deadline_nanos_ = kNoDeadlineNanos;
};

}  // namespace zerotune

#endif  // ZEROTUNE_COMMON_CLOCK_H_
