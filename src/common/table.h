#ifndef ZEROTUNE_COMMON_TABLE_H_
#define ZEROTUNE_COMMON_TABLE_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace zerotune {

/// A small text/CSV table builder used by the experiment harnesses to print
/// the same rows/series as the paper's tables and figures.
///
///   TextTable t({"Query", "Median", "95th"});
///   t.AddRow({"Linear", "1.21", "2.51"});
///   t.Print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Formats helper: fixed-precision double.
  static std::string Fmt(double v, int precision = 2);

  /// Pretty-prints with aligned columns and a separator line.
  void Print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (fields containing comma/quote are quoted).
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zerotune

#endif  // ZEROTUNE_COMMON_TABLE_H_
