#include "common/flags.h"

namespace zerotune {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself a flag; otherwise a
    // bare boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";
    }
  }
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

Result<double> FlagParser::GetDouble(const std::string& name,
                                     double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return Status::InvalidArgument("--" + name + " expects a number, got '" +
                                   it->second + "'");
  }
}

Result<int64_t> FlagParser::GetInt(const std::string& name,
                                   int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return static_cast<int64_t>(std::stoll(it->second));
  } catch (...) {
    return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                   it->second + "'");
  }
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second.empty() || it->second == "1" || it->second == "true";
}

Status FlagParser::CheckAllowed(
    const std::vector<std::string>& allowed) const {
  for (const auto& [key, value] : flags_) {
    bool ok = false;
    for (const std::string& a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) return Status::InvalidArgument("unknown flag: --" + key);
  }
  return Status::OK();
}

}  // namespace zerotune
