#ifndef ZEROTUNE_COMMON_MUTEX_H_
#define ZEROTUNE_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace zerotune {

/// Annotated drop-in wrappers around the std synchronization primitives.
///
/// Clang's -Wthread-safety analysis only understands locks whose type
/// carries the `capability` attribute and RAII guards marked
/// `scoped_lockable`; libstdc++'s std::mutex / std::lock_guard have neither.
/// Every mutex in the project therefore uses these wrappers (ztlint rule
/// ZT-S006 enforces it), so ZT_GUARDED_BY contracts are actually checked at
/// compile time instead of silently ignored.
///
/// MutexLock keeps a std::unique_lock inside, so condition-variable waits
/// work through `lock.unique_lock()` — including Clock::WaitUntil, which
/// takes the underlying std::unique_lock by reference. The analysis treats
/// a cv wait as holding the lock throughout, which matches the contract
/// (wait reacquires before returning).

/// Exclusive mutex. Prefer MutexLock over calling Lock()/Unlock() directly
/// (ztlint rule ZT-S004 flags bare lock calls).
class ZT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ZT_ACQUIRE() { mu_.lock(); }
  void Unlock() ZT_RELEASE() { mu_.unlock(); }
  bool TryLock() ZT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII guard for Mutex; supports early Unlock() and re-Lock() for the
/// drop-the-lock-then-notify / rethrow patterns.
class ZT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ZT_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() ZT_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() ZT_RELEASE() { lock_.unlock(); }
  void Lock() ZT_ACQUIRE() { lock_.lock(); }

  /// The underlying lock, for std::condition_variable::wait and
  /// Clock::WaitUntil. The caller still logically holds the capability for
  /// the whole wait (cv reacquires before returning).
  std::unique_lock<std::mutex>& unique_lock() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Reader/writer mutex (std::shared_mutex) with shared-capability
/// annotations.
class ZT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ZT_ACQUIRE() { mu_.lock(); }
  void Unlock() ZT_RELEASE() { mu_.unlock(); }
  void LockShared() ZT_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() ZT_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class ReaderMutexLock;
  friend class WriterMutexLock;
  std::shared_mutex mu_;
};

/// RAII exclusive (writer) guard for SharedMutex; supports early Unlock().
class ZT_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ZT_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~WriterMutexLock() ZT_RELEASE() {}

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

  void Unlock() ZT_RELEASE() { lock_.unlock(); }

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

/// RAII shared (reader) guard for SharedMutex.
class ZT_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ZT_ACQUIRE_SHARED(mu)
      : lock_(mu.mu_) {}
  ~ReaderMutexLock() ZT_RELEASE() {}

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

}  // namespace zerotune

#endif  // ZEROTUNE_COMMON_MUTEX_H_
