#ifndef ZEROTUNE_COMMON_THREAD_POOL_H_
#define ZEROTUNE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace zerotune {

/// Fixed-size worker pool used for data-parallel gradient computation and
/// batched query labeling. Tasks are plain std::function<void()>; use
/// ParallelFor for the common indexed-loop case.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (defaults to hardware concurrency, at
  /// least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task) ZT_EXCLUDES(mu_);

  /// Blocks until all submitted tasks have finished. A task that threw is
  /// still counted as finished — the worker catches the exception instead
  /// of letting it reach std::terminate — and the first captured exception
  /// is rethrown here (then cleared, so the pool stays usable).
  void Wait() ZT_EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() ZT_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ ZT_GUARDED_BY(mu_);
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ ZT_GUARDED_BY(mu_) = 0;
  bool shutting_down_ ZT_GUARDED_BY(mu_) = false;
  std::exception_ptr first_exception_ ZT_GUARDED_BY(mu_);  // rethrown by Wait
};

/// Runs fn(i) for i in [0, n) distributed over the pool in contiguous
/// chunks, blocking until done. With a null pool, runs inline. In either
/// mode an exception thrown by fn propagates to the caller (the pooled
/// path rethrows the first one from ThreadPool::Wait).
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace zerotune

#endif  // ZEROTUNE_COMMON_THREAD_POOL_H_
