#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace zerotune {

Histogram::Histogram(double min_value, double max_value,
                     size_t buckets_per_decade)
    : min_value_(min_value), max_value_(max_value) {
  log_min_ = std::log10(min_value_);
  bucket_width_ = 1.0 / static_cast<double>(buckets_per_decade);
  const double decades = std::log10(max_value_) - log_min_;
  const size_t n =
      static_cast<size_t>(std::ceil(decades / bucket_width_)) + 1;
  buckets_.assign(n, 0);
}

size_t Histogram::BucketFor(double value) const {
  value = std::clamp(value, min_value_, max_value_);
  const double pos = (std::log10(value) - log_min_) / bucket_width_;
  return std::min(buckets_.size() - 1,
                  static_cast<size_t>(std::max(0.0, pos)));
}

double Histogram::BucketUpperEdge(size_t bucket) const {
  return std::pow(10.0, log_min_ + bucket_width_ *
                                      static_cast<double>(bucket + 1));
}

void Histogram::Record(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return;  // ignore junk
  ++buckets_[BucketFor(value)];
  if (count_ == 0) {
    observed_min_ = observed_max_ = value;
  } else {
    observed_min_ = std::min(observed_min_, value);
    observed_max_ = std::max(observed_max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  // Layout must match; a mismatch is a programming error.
  if (buckets_.size() != other.buckets_.size()) return;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    observed_min_ = other.observed_min_;
    observed_max_ = other.observed_max_;
  } else {
    observed_min_ = std::min(observed_min_, other.observed_min_);
    observed_max_ = std::max(observed_max_, other.observed_max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::min() const { return count_ == 0 ? 0.0 : observed_min_; }
double Histogram::max() const { return count_ == 0 ? 0.0 : observed_max_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) {
      return std::min(BucketUpperEdge(i), observed_max_);
    }
  }
  return observed_max_;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os.precision(4);
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << Percentile(50)
     << " p95=" << Percentile(95) << " p99=" << Percentile(99)
     << " max=" << max();
  return os.str();
}

}  // namespace zerotune
