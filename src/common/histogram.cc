#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace zerotune {

namespace {

Status ValidateLayout(double min_value, double max_value,
                      size_t buckets_per_decade) {
  if (!std::isfinite(min_value) || min_value <= 0.0) {
    return Status::InvalidArgument(
        "histogram min_value must be positive and finite, got " +
        std::to_string(min_value));
  }
  if (!std::isfinite(max_value) || max_value <= min_value) {
    return Status::InvalidArgument(
        "histogram max_value must be finite and > min_value, got " +
        std::to_string(max_value));
  }
  if (buckets_per_decade == 0) {
    return Status::InvalidArgument(
        "histogram buckets_per_decade must be >= 1");
  }
  return Status::OK();
}

}  // namespace

Histogram::Histogram(double min_value, double max_value,
                     size_t buckets_per_decade) {
  // Repair invalid inputs instead of computing a NaN layout (log10 of a
  // non-positive min poisons every later Record/Percentile call).
  if (!std::isfinite(min_value) || min_value <= 0.0) min_value = 1e-3;
  if (!std::isfinite(max_value) || max_value <= min_value) {
    max_value = min_value * 1e9;
  }
  if (buckets_per_decade == 0) buckets_per_decade = 20;
  min_value_ = min_value;
  max_value_ = max_value;
  log_min_ = std::log10(min_value_);
  bucket_width_ = 1.0 / static_cast<double>(buckets_per_decade);
  const double decades = std::log10(max_value_) - log_min_;
  const size_t n =
      static_cast<size_t>(std::ceil(decades / bucket_width_)) + 1;
  buckets_.assign(n, 0);
}

Result<Histogram> Histogram::Create(double min_value, double max_value,
                                    size_t buckets_per_decade) {
  ZT_RETURN_IF_ERROR(ValidateLayout(min_value, max_value, buckets_per_decade));
  return Histogram(min_value, max_value, buckets_per_decade);
}

size_t Histogram::BucketFor(double value) const {
  value = std::clamp(value, min_value_, max_value_);
  const double pos = (std::log10(value) - log_min_) / bucket_width_;
  return std::min(buckets_.size() - 1,
                  static_cast<size_t>(std::max(0.0, pos)));
}

double Histogram::BucketUpperEdge(size_t bucket) const {
  return std::pow(10.0, log_min_ + bucket_width_ *
                                      static_cast<double>(bucket + 1));
}

void Histogram::Record(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return;  // ignore junk
  ++buckets_[BucketFor(value)];
  if (count_ == 0) {
    observed_min_ = observed_max_ = value;
  } else {
    observed_min_ = std::min(observed_min_, value);
    observed_max_ = std::max(observed_max_, value);
  }
  ++count_;
  sum_ += value;
}

bool Histogram::SameLayout(const Histogram& other) const {
  return buckets_.size() == other.buckets_.size() &&
         log_min_ == other.log_min_ && bucket_width_ == other.bucket_width_;
}

Status Histogram::Merge(const Histogram& other) {
  if (!SameLayout(other)) {
    return Status::InvalidArgument(
        "histogram bucket layouts differ (" + std::to_string(buckets_.size()) +
        " buckets from " + std::to_string(min_value_) + " vs " +
        std::to_string(other.buckets_.size()) + " buckets from " +
        std::to_string(other.min_value_) + "); refusing to merge");
  }
  if (other.count_ == 0) return Status::OK();
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    observed_min_ = other.observed_min_;
    observed_max_ = other.observed_max_;
  } else {
    observed_min_ = std::min(observed_min_, other.observed_min_);
    observed_max_ = std::max(observed_max_, other.observed_max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return Status::OK();
}

double Histogram::min() const { return count_ == 0 ? 0.0 : observed_min_; }
double Histogram::max() const { return count_ == 0 ? 0.0 : observed_max_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  // The extreme quantiles are tracked exactly; returning a bucket edge
  // here would leak the layout's min_value as a bogus p0.
  if (target <= 0.0) return observed_min_;
  if (target >= static_cast<double>(count_)) return observed_max_;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;  // a rank never lands in an empty bucket
    const uint64_t next = cumulative + buckets_[i];
    if (static_cast<double>(next) >= target) {
      // Log-interpolate within the bucket by the fraction of its samples
      // below the target rank, then clamp to the observed range so small
      // p can never undershoot the true minimum (nor large p overshoot
      // the true maximum).
      const double frac = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(buckets_[i]);
      const double v = std::pow(
          10.0, log_min_ + bucket_width_ * (static_cast<double>(i) + frac));
      return std::clamp(v, observed_min_, observed_max_);
    }
    cumulative = next;
  }
  return observed_max_;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os.precision(4);
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << Percentile(50)
     << " p95=" << Percentile(95) << " p99=" << Percentile(99)
     << " max=" << max();
  return os.str();
}

}  // namespace zerotune
