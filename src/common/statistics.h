#ifndef ZEROTUNE_COMMON_STATISTICS_H_
#define ZEROTUNE_COMMON_STATISTICS_H_

#include <cstddef>
#include <vector>

namespace zerotune {

/// Order statistics and summary helpers shared by the evaluation harnesses.
/// All functions tolerate unsorted input and do not modify it.

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double StdDev(const std::vector<double>& xs);

/// p-th percentile with linear interpolation, p in [0, 100].
/// Returns 0 for empty input.
double Percentile(std::vector<double> xs, double p);

/// Median == Percentile(xs, 50).
double Median(const std::vector<double>& xs);

/// Q-error between a true cost and a prediction, as defined by Leis et al.
/// and used throughout the paper: q = max(c/c', c'/c) >= 1. Values are
/// clamped away from zero to keep the metric finite.
double QError(double truth, double prediction);

/// Geometric mean; 0 for empty input. Inputs must be positive.
double GeometricMean(const std::vector<double>& xs);

/// Summary of a q-error distribution as reported in the paper's tables.
struct QErrorSummary {
  size_t count = 0;
  double median = 0.0;
  double p95 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// Computes the summary over per-query q-errors.
QErrorSummary SummarizeQErrors(const std::vector<double>& qerrors);

}  // namespace zerotune

#endif  // ZEROTUNE_COMMON_STATISTICS_H_
