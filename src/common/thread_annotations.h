#ifndef ZEROTUNE_COMMON_THREAD_ANNOTATIONS_H_
#define ZEROTUNE_COMMON_THREAD_ANNOTATIONS_H_

/// Portable wrappers for Clang's thread-safety analysis attributes.
///
/// Annotate every mutex-holding class so that lock discipline is checked at
/// compile time under `clang -Wthread-safety` (CMake turns the warning into
/// an error for clang builds). Under gcc and msvc every macro expands to
/// nothing, so annotations cost nothing off-clang.
///
/// Catalog (see docs/static_analysis.md, "Concurrency verification"):
///   ZT_CAPABILITY(x)        - type declares a capability (a lock)
///   ZT_SCOPED_CAPABILITY    - RAII type that acquires in ctor, releases in
///                             dtor (lock_guard-style)
///   ZT_GUARDED_BY(x)        - data member readable/writable only with x held
///   ZT_PT_GUARDED_BY(x)     - pointee guarded by x (the pointer itself not)
///   ZT_REQUIRES(x)          - caller must hold x exclusively
///   ZT_REQUIRES_SHARED(x)   - caller must hold x at least shared
///   ZT_ACQUIRE(x)           - function acquires x exclusively, no release
///   ZT_ACQUIRE_SHARED(x)    - function acquires x shared, no release
///   ZT_RELEASE(x)           - function releases x (any mode)
///   ZT_RELEASE_SHARED(x)    - function releases shared x
///   ZT_TRY_ACQUIRE(b, x)    - acquires x iff the return value equals b
///   ZT_EXCLUDES(x)          - caller must NOT hold x (deadlock guard)
///   ZT_ASSERT_CAPABILITY(x) - runtime assertion that x is held
///   ZT_RETURN_CAPABILITY(x) - function returns a reference to capability x
///   ZT_NO_THREAD_SAFETY_ANALYSIS - opt a function out (use sparingly, with
///                             a comment explaining why)

#if defined(__clang__) && defined(__has_attribute)
#define ZT_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define ZT_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off clang
#endif

#define ZT_CAPABILITY(x) ZT_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define ZT_SCOPED_CAPABILITY ZT_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define ZT_GUARDED_BY(x) ZT_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define ZT_PT_GUARDED_BY(x) ZT_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define ZT_ACQUIRED_BEFORE(...) \
  ZT_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ZT_ACQUIRED_AFTER(...) \
  ZT_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define ZT_REQUIRES(...) \
  ZT_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define ZT_REQUIRES_SHARED(...) \
  ZT_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ZT_ACQUIRE(...) \
  ZT_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ZT_ACQUIRE_SHARED(...) \
  ZT_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define ZT_RELEASE(...) \
  ZT_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define ZT_RELEASE_SHARED(...) \
  ZT_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define ZT_TRY_ACQUIRE(...) \
  ZT_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define ZT_EXCLUDES(...) \
  ZT_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ZT_ASSERT_CAPABILITY(x) \
  ZT_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define ZT_RETURN_CAPABILITY(x) \
  ZT_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define ZT_NO_THREAD_SAFETY_ANALYSIS \
  ZT_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // ZEROTUNE_COMMON_THREAD_ANNOTATIONS_H_
