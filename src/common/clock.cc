#include "common/clock.h"

#include <chrono>
#include <thread>

namespace zerotune {

namespace {

std::chrono::steady_clock::time_point SteadyFromNanos(int64_t nanos) {
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::nanoseconds(nanos)));
}

}  // namespace

SystemClock* SystemClock::Default() {
  static SystemClock clock;
  return &clock;
}

int64_t SystemClock::NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::SleepFor(int64_t nanos) {
  if (nanos <= 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
}

bool SystemClock::WaitUntil(std::unique_lock<std::mutex>& lock,
                            std::condition_variable& cv,
                            int64_t deadline_nanos,
                            const std::function<bool()>& pred) {
  if (deadline_nanos == kNoDeadlineNanos) {
    cv.wait(lock, pred);
    return true;
  }
  return cv.wait_until(lock, SteadyFromNanos(deadline_nanos), pred);
}

int64_t FakeClock::NowNanos() {
  MutexLock g(mu_);
  return now_;
}

void FakeClock::SleepFor(int64_t nanos) {
  // Virtual sleep: the "sleeping" thread advances time itself, so
  // retry-backoff paths run instantly and deterministically under test.
  Advance(nanos);
}

void FakeClock::Advance(int64_t nanos) {
  if (nanos <= 0) return;
  MutexLock g(mu_);
  now_ += nanos;
}

bool FakeClock::WaitUntil(std::unique_lock<std::mutex>& lock,
                          std::condition_variable& cv, int64_t deadline_nanos,
                          const std::function<bool()>& pred) {
  (void)cv;  // the fake clock never blocks, so nothing ever signals it
  if (pred()) return true;
  if (deadline_nanos == kNoDeadlineNanos) {
    // No other thread drives fake time; an indefinite wait would deadlock
    // a deterministic test, so re-check once and report.
    return pred();
  }
  // The calling thread is the only driver of time in deterministic tests:
  // jump straight to the deadline and evaluate the predicate there.
  {
    MutexLock g(mu_);
    if (now_ < deadline_nanos) now_ = deadline_nanos;
  }
  return pred();
}

Deadline::Deadline(Clock* clock, double budget_ms) {
  if (clock == nullptr || budget_ms <= 0.0) return;  // infinite
  clock_ = clock;
  deadline_nanos_ = clock->NowNanos() + static_cast<int64_t>(budget_ms * 1e6);
}

bool Deadline::Expired() const {
  return clock_ != nullptr && clock_->NowNanos() >= deadline_nanos_;
}

double Deadline::RemainingMs() const {
  if (clock_ == nullptr) return std::numeric_limits<double>::infinity();
  return static_cast<double>(deadline_nanos_ - clock_->NowNanos()) / 1e6;
}

}  // namespace zerotune
