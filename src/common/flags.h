#ifndef ZEROTUNE_COMMON_FLAGS_H_
#define ZEROTUNE_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace zerotune {

/// Minimal command-line flag parser for the CLI tool and examples.
/// Supports `--key=value`, `--key value`, boolean `--key`, and free
/// positional arguments (the first of which is typically a subcommand).
class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const {
    return flags_.count(name) > 0;
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;
  Result<double> GetDouble(const std::string& name, double fallback) const;
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;
  /// A bare `--flag` or `--flag=true/1` reads as true.
  bool GetBool(const std::string& name, bool fallback = false) const;

  /// Returns an error naming any flag not in `allowed` (catches typos).
  Status CheckAllowed(const std::vector<std::string>& allowed) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace zerotune

#endif  // ZEROTUNE_COMMON_FLAGS_H_
