#include "common/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <system_error>

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace zerotune {

namespace {

/// Flushes `path` (already fully written and closed) to stable storage.
/// Without this, rename() can commit a name pointing at data still only in
/// the page cache — a power loss then yields a truncated "new" file, which
/// is exactly the torn state atomic replacement exists to prevent.
Status SyncFile(const std::string& path) {
#if defined(_WIN32)
  (void)path;  // no fsync equivalent wired up; rename is still atomic
  return Status::OK();
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open for fsync failed for " + path + ": " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync failed for " + path + ": " +
                           std::strerror(saved_errno));
  }
  return Status::OK();
#endif
}

/// Flushes the directory containing `path` so the rename itself (the
/// directory entry, not just the file data) survives power loss. Without
/// this, a crash after rename can resurrect the *old* file even though the
/// writer observed success — fatal for a registry manifest whose publish
/// must be durable once acknowledged.
Status SyncParentDir(const std::string& path) {
#if defined(_WIN32)
  (void)path;  // directories cannot be fsynced on Windows
  return Status::OK();
#else
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? std::string(".") : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open for directory fsync failed for " + dir +
                           ": " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync failed for directory " + dir + ": " +
                           std::strerror(saved_errno));
  }
  return Status::OK();
#endif
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  if (path.empty()) {
    return Status::InvalidArgument("atomic write: empty path");
  }
  // Temp file in the same directory so the final rename cannot cross a
  // filesystem boundary (cross-device renames are not atomic). The pid
  // keeps concurrent writers from clobbering each other's temporaries.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create temp file " + tmp + ": " +
                           std::strerror(errno));
  }
  const size_t written = contents.empty()
                             ? 0
                             : std::fwrite(contents.data(), 1,
                                           contents.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != contents.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to temp file " + tmp);
  }

  Status synced = SyncFile(tmp);
  if (!synced.ok()) {
    std::remove(tmp.c_str());
    return synced;
  }

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IOError("rename " + tmp + " -> " + path +
                           " failed: " + ec.message());
  }
  // Durability of the rename itself: fsync the parent directory so the new
  // directory entry is on stable storage before success is reported.
  return SyncParentDir(path);
}

Status AtomicWriteStream(const std::string& path,
                         const std::function<Status(std::ostream&)>& writer) {
  std::ostringstream buffer;
  ZT_RETURN_IF_ERROR(writer(buffer));
  if (!buffer) {
    return Status::IOError("serialization stream failed for " + path);
  }
  return AtomicWriteFile(path, buffer.str());
}

}  // namespace zerotune
