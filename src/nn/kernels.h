#ifndef ZEROTUNE_NN_KERNELS_H_
#define ZEROTUNE_NN_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace zerotune::nn::kernels {

/// The low-level compute kernels behind every inference-path matrix
/// operation (Linear/Mlp::ForwardValue and the batch-engine
/// aggregations). Two implementations exist behind one API:
///
///   - a portable scalar implementation that replicates the historical
///     arithmetic of nn::Matrix bit for bit (same summation order, no
///     fused rounding), and
///   - an AVX2+FMA implementation (kernels_avx2.cc, compiled with
///     -mavx2 -mfma) selected at runtime when the CPU supports both.
///
/// Numerics contract: every kernel processes rows independently, so
/// results never depend on how callers batch rows. GemmRowMajorF64 uses
/// the broadcast formulation under SIMD, so each output element still
/// sums its k terms in ascending order — its only SIMD-vs-scalar
/// difference is FMA's fused rounding (each multiply-add keeps its
/// infinitely precise product, perturbing a length-k sum by O(k·2⁻⁵³)
/// relative). MacF64 applies one FMA per element (no reassociation).
/// The explicit reduction kernels (DotF64/DotF32/DotF32I8) additionally
/// split the sum across vector lanes and reduce at the end, which
/// reassociates; callers must treat them as tolerance-equal, not
/// bit-equal, across implementations. Element-wise kernels (bias,
/// activation, mean, add) reassociate nothing, use no FMA, and are
/// bit-identical across implementations.
///
/// Alignment contract: nn::Matrix heap storage has no alignment
/// guarantee beyond operator new, and callers may pass pointers at any
/// 8-byte offset (e.g. a row at an odd column). Every SIMD kernel uses
/// unaligned loads/stores; none may assume 32-byte alignment. The
/// misaligned-row tests in tests/kernels_test.cc enforce this.
///
/// Dispatch: the AVX2 path requires (a) it was compiled in (x86-64
/// gcc/clang build without -DZEROTUNE_DISABLE_SIMD=ON), (b) the CPU
/// reports AVX2 and FMA, and (c) no ForceScalar(true) override is in
/// effect. Raw vendor intrinsics live only in src/nn/kernels_avx2.cc
/// (enforced by ztlint ZT-S007).

/// Which implementation ActiveIsa() resolved to.
enum class Isa {
  kScalar,
  kAvx2Fma,
};

/// Human-readable name ("scalar" / "avx2-fma") for logs and bench rows.
const char* IsaName(Isa isa);

/// True when the AVX2 translation unit was compiled into this binary.
bool SimdCompiledIn();

/// True when the running CPU supports AVX2 and FMA (cached after the
/// first call). False whenever SimdCompiledIn() is false.
bool SimdSupported();

/// The implementation the kernels below will use right now.
Isa ActiveIsa();

/// Test/bench hook: forces the scalar implementation even when SIMD is
/// available. Not meant to race with in-flight kernel calls — flip it
/// between measurements, not during them.
void ForceScalar(bool on);

/// Activations the fused bias+activation kernel applies in-register.
/// Tanh/sigmoid stay in the caller (libm calls don't vectorize here).
enum class FusedAct {
  kNone,
  kRelu,
  kLeakyRelu,  // x > 0 ? x : 0.01·x, matching nn::ActivateValue
};

// ---------------------------------------------------------------------
// fp64 kernels (the default inference path)
// ---------------------------------------------------------------------

/// out = a·b for row-major a (m×k), b (k×n), out (m×n). Overwrites out
/// completely (no zero-initialization required). Summation over k runs
/// in ascending order; zero a-elements contribute nothing either way.
void GemmRowMajorF64(const double* a, size_t m, size_t k, const double* b,
                     size_t n, double* out);

/// Fused multiply-accumulate: acc[i] += s · x[i] for i < n.
void MacF64(double* acc, const double* x, double s, size_t n);

/// Dot product. Scalar sums in ascending order; SIMD uses lane-split
/// partial sums (tolerance-equal, see the numerics contract above).
double DotF64(const double* a, const double* b, size_t n);

/// acc[i] += x[i] (exact in both implementations).
void AddF64(double* acc, const double* x, size_t n);

/// dst[i] = (rows[0][i] + rows[1][i] + … + rows[count-1][i]) · (1/count),
/// summed in row order — the batch engine's mean aggregation. count must
/// be ≥ 1. Bit-identical across implementations (the reduction runs over
/// rows per output element, in the same order, without FMA).
void MeanRowsF64(double* dst, const double* const* rows, size_t count,
                 size_t n);

/// In place over a row-major rows×n block: x[r][i] += bias[i], then the
/// fused activation. Bit-identical across implementations.
void BiasActRowsF64(double* x, const double* bias, size_t rows, size_t n,
                    FusedAct act);

// ---------------------------------------------------------------------
// fp32 / int8 kernels (the quantized inference path, nn/quantized.h)
// ---------------------------------------------------------------------

/// out = a·b for row-major fp32 a (m×k), b (k×n), out (m×n). Same
/// contract as GemmRowMajorF64: overwrites out completely, sums over k
/// in ascending order, differs from scalar only by FMA's fused rounding.
void GemmRowMajorF32(const float* a, size_t m, size_t k, const float* b,
                     size_t n, float* out);

/// Dot product over fp32 (lane-split partial sums + FMA when SIMD).
float DotF32(const float* a, const float* b, size_t n);

/// acc[i] += x[i] over fp32 (exact in both implementations).
void AddF32(float* acc, const float* x, size_t n);

/// fp32 MeanRowsF64: dst[i] = (Σ_r rows[r][i]) · (1/count), summed in row
/// order per element, no FMA — bit-identical across implementations. The
/// fp32-native batch engine uses this for its flow/mapping aggregations.
void MeanRowsF32(float* dst, const float* const* rows, size_t count,
                 size_t n);

/// Dot of an fp32 activation row against an int8 weight row; products
/// accumulate in fp32. The caller applies the per-row scale afterwards.
float DotF32I8(const float* a, const int8_t* w, size_t n);

/// In place over one fp32 row: x[i] += bias[i], then the activation.
void BiasActRowF32(float* x, const float* bias, size_t n, FusedAct act);

}  // namespace zerotune::nn::kernels

#endif  // ZEROTUNE_NN_KERNELS_H_
