#ifndef ZEROTUNE_NN_QUANTIZED_H_
#define ZEROTUNE_NN_QUANTIZED_H_

#include <cstdint>
#include <vector>

#include "nn/layers.h"
#include "nn/matrix.h"

namespace zerotune::nn {

/// Storage format of a quantized inference block.
enum class QuantKind {
  /// Weights, biases and activations in fp32. Halves the memory traffic
  /// of the fp64 path and doubles the SIMD lane count; relative error vs
  /// fp64 is bounded by fp32 rounding (~1e-6 per operation).
  kFp32,
  /// Weights in int8 with one symmetric scale per output row
  /// (scale = max|w_row| / 127); activations and accumulation stay fp32.
  /// Weight rounding adds up to scale/2 per element (~0.4% of the row's
  /// largest weight), so expect ~1e-2 relative output error on trained
  /// models — see tests/quantized_test.cc for the enforced bounds.
  kInt8,
};

/// An Mlp converted for quantized inference. fp32 weights are stored
/// row-major (in×out) and forwarded through GemmRowMajorF32, one GEMM
/// per layer over the whole row batch; int8 weights are stored
/// transposed (out×in) so each output neuron is one contiguous
/// DotF32I8 against the activation row. Holds a snapshot: conversion
/// copies values, so later training steps on the source Mlp are not
/// reflected.
///
/// Like Mlp::ForwardValue, rows are processed independently: results
/// never depend on how callers batch rows, which keeps the batch
/// engine's dedup/chunking transforms valid under quantization.
class QuantizedMlp {
 public:
  /// Converts all layers of `mlp` (weights, biases, activation plan).
  static QuantizedMlp FromMlp(const Mlp& mlp, QuantKind kind);

  /// fp64-boundary forward: converts the input to fp32 once, runs every
  /// layer in the quantized domain, and widens the final output back to
  /// fp64 for DecodeOutput and friends.
  Matrix ForwardValue(const Matrix& x) const;

  /// fp32-native forward: `x` is `rows` row-major rows of in_features()
  /// floats; `*out` is overwritten with rows×out_features() results. No
  /// fp64 conversions anywhere — this is the batch engine's hot path,
  /// which keeps its whole message-passing state in fp32 (FloatBuffer
  /// avoids zero-filling buffers that are fully overwritten). `out` must
  /// not alias `x`.
  void ForwardRows(const float* x, size_t rows, FloatBuffer* out) const;

  QuantKind kind() const { return kind_; }
  size_t in_features() const { return layers_.front().in; }
  size_t out_features() const { return layers_.back().out; }

 private:
  struct Layer {
    size_t in = 0;
    size_t out = 0;
    std::vector<float> w;       // kFp32: row-major weights, in×out
    std::vector<int8_t> w_q;    // kInt8: transposed quantized weights
    std::vector<float> scales;  // kInt8: per-output-row dequant scale
    std::vector<float> bias;    // out
    Activation act = Activation::kNone;  // applied after this layer
  };

  QuantKind kind_ = QuantKind::kFp32;
  std::vector<Layer> layers_;
};

}  // namespace zerotune::nn

#endif  // ZEROTUNE_NN_QUANTIZED_H_
