#ifndef ZEROTUNE_NN_AUTOGRAD_H_
#define ZEROTUNE_NN_AUTOGRAD_H_

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "nn/matrix.h"

namespace zerotune::nn {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// Gradient accumulator keyed by parameter id. Backward passes write into a
/// GradStore rather than into the nodes themselves, which makes backward
/// re-entrant and lets worker threads accumulate gradients independently
/// and merge afterwards (data-parallel training).
class GradStore {
 public:
  /// grads[param_id] += g.
  void Accumulate(int param_id, const Matrix& g);

  /// Merges all entries of `other` into this store.
  void Merge(const GradStore& other);

  /// Scales every stored gradient (e.g. 1/batch_size).
  void Scale(double factor);

  /// Globally rescales so the total L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double ClipGlobalNorm(double max_norm);

  /// Returns the gradient for a parameter, or nullptr if none recorded.
  const Matrix* Find(int param_id) const;

  /// True when every stored gradient entry is finite — the guard the
  /// trainer uses to detect divergence before applying an update.
  bool AllFinite() const;

  void Clear() { grads_.clear(); }
  size_t size() const { return grads_.size(); }

 private:
  std::unordered_map<int, Matrix> grads_;
};

/// A node in a dynamically-built computation graph. Nodes are created by
/// the free functions below (MatMul, Add, Relu, ...). The graph is a DAG of
/// shared_ptrs; calling Backward() walks it in reverse topological order.
///
/// Thread-safety: node values are immutable after construction, so a graph
/// built by one thread over *shared parameter nodes* can run concurrently
/// with graphs on other threads, as long as parameter values are not
/// updated during the forward/backward passes.
class Node {
 public:
  /// Signature of a backward step: given d(loss)/d(this->value), add each
  /// parent's contribution into parent_grads[i] (already zero-initialized
  /// with the parent's shape).
  using BackwardFn =
      std::function<void(const Matrix& out_grad, const std::vector<Node*>& parents,
                         const std::vector<Matrix*>& parent_grads)>;

  Matrix value;
  std::vector<NodePtr> parents;
  BackwardFn backward_fn;  // null for leaves
  int param_id = -1;       // >= 0 for trainable parameters

  bool is_parameter() const { return param_id >= 0; }
};

/// Leaf node holding a constant (inputs, feature vectors).
NodePtr Constant(Matrix value);

/// a·b matrix product.
NodePtr MatMul(const NodePtr& a, const NodePtr& b);
/// Elementwise sum (same shape).
NodePtr Add(const NodePtr& a, const NodePtr& b);
/// Elementwise difference (same shape).
NodePtr Sub(const NodePtr& a, const NodePtr& b);
/// Adds a 1×c bias row to every row of a (n×c).
NodePtr AddRowBroadcast(const NodePtr& a, const NodePtr& bias);
/// Scales by a compile-time constant.
NodePtr Scale(const NodePtr& a, double factor);
/// max(x, 0).
NodePtr Relu(const NodePtr& a);
/// x>0 ? x : alpha*x.
NodePtr LeakyRelu(const NodePtr& a, double alpha = 0.01);
/// tanh(x).
NodePtr Tanh(const NodePtr& a);
/// 1/(1+e^-x).
NodePtr Sigmoid(const NodePtr& a);
/// Horizontal concatenation of row-aligned matrices.
NodePtr ConcatCols(const std::vector<NodePtr>& parts);
/// Elementwise mean of same-shape tensors (used to aggregate messages from
/// a variable number of upstream nodes).
NodePtr MeanAll(const std::vector<NodePtr>& parts);
/// Elementwise sum of same-shape tensors.
NodePtr SumAll(const std::vector<NodePtr>& parts);

/// Mean squared error against a constant target; returns a 1×1 node.
NodePtr MseLoss(const NodePtr& prediction, const Matrix& target);
/// Huber (smooth-L1) loss against a constant target; returns a 1×1 node.
NodePtr HuberLoss(const NodePtr& prediction, const Matrix& target,
                  double delta = 1.0);

/// Runs reverse-mode differentiation from `loss` (must be 1×1), adding
/// parameter gradients into `grads`. The graph may be reused for multiple
/// Backward calls.
void Backward(const NodePtr& loss, GradStore* grads);

/// Owns the trainable parameters of a model. Layers allocate parameters
/// here; optimizers update them in place; Save/Load serialize them in
/// creation order.
class ParameterStore {
 public:
  ParameterStore() = default;
  ParameterStore(const ParameterStore&) = delete;
  ParameterStore& operator=(const ParameterStore&) = delete;

  /// Allocates a rows×cols parameter initialized with uniform
  /// Kaiming/He-style scaling (±sqrt(6/fan_in)) unless `zero_init`.
  NodePtr CreateParameter(size_t rows, size_t cols, zerotune::Rng* rng,
                          bool zero_init = false);

  const std::vector<NodePtr>& parameters() const { return params_; }
  size_t num_parameters() const;  // total scalar count

  /// Serializes parameter values to a text file (shape-checked on load).
  zerotune::Status Save(const std::string& path) const;
  /// Restores values; the store must contain identically-shaped parameters
  /// created in the same order.
  zerotune::Status Load(const std::string& path);

  /// Stream variants used when a model embeds its parameters inside a
  /// larger file together with config/normalization metadata.
  zerotune::Status SaveToStream(std::ostream& os) const;
  zerotune::Status LoadFromStream(std::istream& is);

  /// Copies all parameter values from another store with identical layout.
  zerotune::Status CopyFrom(const ParameterStore& other);

 private:
  std::vector<NodePtr> params_;
};

}  // namespace zerotune::nn

#endif  // ZEROTUNE_NN_AUTOGRAD_H_
