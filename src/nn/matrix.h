#ifndef ZEROTUNE_NN_MATRIX_H_
#define ZEROTUNE_NN_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace zerotune::nn {

/// Dense row-major matrix of doubles. This is the only numeric container in
/// the neural-network library; vectors are 1×n or n×1 matrices. Sizes in
/// this project are tiny (feature vectors and hidden states of width ≤ 256),
/// so the implementation favors clarity over blocking/vectorization tricks.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a 1×n row vector from values.
  static Matrix RowVector(const std::vector<double>& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// this += other (shapes must match).
  void Add(const Matrix& other);
  /// this += scale * other.
  void AddScaled(const Matrix& other, double scale);
  /// this *= scale.
  void Scale(double scale);
  /// Sets all entries to zero, keeping the shape.
  void SetZero();

  /// Frobenius-norm squared; used for gradient clipping and tests.
  double SquaredNorm() const;

  /// Returns a . b (naive triple loop, i-k-j order for locality).
  static Matrix MatMul(const Matrix& a, const Matrix& b);
  /// Returns aᵀ . b without materializing the transpose.
  static Matrix MatMulTransA(const Matrix& a, const Matrix& b);
  /// Returns a . bᵀ without materializing the transpose.
  static Matrix MatMulTransB(const Matrix& a, const Matrix& b);

  Matrix Transposed() const;

  std::string DebugString(size_t max_entries = 16) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace zerotune::nn

#endif  // ZEROTUNE_NN_MATRIX_H_
