#ifndef ZEROTUNE_NN_MATRIX_H_
#define ZEROTUNE_NN_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace zerotune::nn {

namespace detail {

/// std::allocator whose value-less construct() default-initializes
/// instead of value-initializing. For doubles that means "leave the
/// memory as-is", which lets Matrix::Uninitialized skip the zero-fill
/// that a GEMM/copy destination would immediately overwrite. Explicit
/// construct(p, value) calls are unchanged, so Matrix(r, c, fill) still
/// fills.
template <class T, class A = std::allocator<T>>
class DefaultInitAllocator : public A {
 public:
  template <class U>
  struct rebind {
    using other = DefaultInitAllocator<
        U, typename std::allocator_traits<A>::template rebind_alloc<U>>;
  };

  using A::A;

  template <class U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }
  template <class U, class... Args>
  void construct(U* ptr, Args&&... args) {
    std::allocator_traits<A>::construct(static_cast<A&>(*this), ptr,
                                        std::forward<Args>(args)...);
  }
};

}  // namespace detail

/// Flat fp32 buffer whose size-construct/resize leaves new elements
/// default-initialized (i.e. uninitialized for float) instead of
/// zero-filled. The quantized inference paths size these buffers and then
/// overwrite every element, so vector's value-init memsets are pure
/// overhead on the batch engine's hot path. Use the (n, 0.0f) constructor
/// or assign() when zeroed contents are semantically required.
using FloatBuffer = std::vector<float, detail::DefaultInitAllocator<float>>;

/// Dense row-major matrix of doubles. This is the only numeric container in
/// the neural-network library; vectors are 1×n or n×1 matrices. Sizes in
/// this project are tiny (feature vectors and hidden states of width ≤ 256),
/// so the implementation favors clarity over blocking/vectorization tricks.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a 1×n row vector from values.
  static Matrix RowVector(const std::vector<double>& values);
  static Matrix RowVector(const double* values, size_t n);

  /// Allocates rows×cols WITHOUT zero-filling. Only for destinations
  /// whose every element is overwritten before being read (GEMM outputs,
  /// row-pack buffers); reading an element first is UB, and ASan/MSan
  /// runs of the test suite keep callers honest.
  static Matrix Uninitialized(size_t rows, size_t cols) {
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_.resize(rows * cols);  // default-init: no fill (see allocator)
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// this += other (shapes must match).
  void Add(const Matrix& other);
  /// this += scale * other.
  void AddScaled(const Matrix& other, double scale);
  /// this *= scale.
  void Scale(double scale);
  /// Sets all entries to zero, keeping the shape.
  void SetZero();

  /// Frobenius-norm squared; used for gradient clipping and tests.
  double SquaredNorm() const;

  /// Returns a . b (naive triple loop, i-k-j order for locality).
  static Matrix MatMul(const Matrix& a, const Matrix& b);
  /// Returns aᵀ . b without materializing the transpose.
  static Matrix MatMulTransA(const Matrix& a, const Matrix& b);
  /// Returns a . bᵀ without materializing the transpose.
  static Matrix MatMulTransB(const Matrix& a, const Matrix& b);

  Matrix Transposed() const;

  std::string DebugString(size_t max_entries = 16) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double, detail::DefaultInitAllocator<double>> data_;
};

}  // namespace zerotune::nn

#endif  // ZEROTUNE_NN_MATRIX_H_
