#include "nn/layers.h"

#include <cassert>

namespace zerotune::nn {

NodePtr Activate(const NodePtr& x, Activation act) {
  switch (act) {
    case Activation::kNone: return x;
    case Activation::kRelu: return Relu(x);
    case Activation::kLeakyRelu: return LeakyRelu(x);
    case Activation::kTanh: return Tanh(x);
    case Activation::kSigmoid: return Sigmoid(x);
  }
  return x;
}

Linear::Linear(ParameterStore* store, size_t in_features, size_t out_features,
               zerotune::Rng* rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(store->CreateParameter(in_features, out_features, rng)),
      bias_(store->CreateParameter(1, out_features, rng, /*zero_init=*/true)) {}

NodePtr Linear::Forward(const NodePtr& x) const {
  assert(x->value.cols() == in_features_);
  return AddRowBroadcast(MatMul(x, weight_), bias_);
}

Mlp::Mlp(ParameterStore* store, const std::vector<size_t>& layer_sizes,
         zerotune::Rng* rng, Options options)
    : options_(options) {
  assert(layer_sizes.size() >= 2);
  layers_.reserve(layer_sizes.size() - 1);
  for (size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    layers_.emplace_back(store, layer_sizes[i], layer_sizes[i + 1], rng);
  }
}

NodePtr Mlp::Forward(const NodePtr& x) const {
  NodePtr h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    const bool is_last = (i + 1 == layers_.size());
    if (!is_last || options_.activate_output) {
      h = Activate(h, options_.activation);
    }
  }
  return h;
}

}  // namespace zerotune::nn
