#include "nn/layers.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "nn/kernels.h"

namespace zerotune::nn {

namespace {

/// Maps the activations that have a fused kernel form. Returns false for
/// tanh/sigmoid, which stay on the libm-based ActivateValue path.
bool ToFusedAct(Activation act, kernels::FusedAct* fused) {
  switch (act) {
    case Activation::kNone:
      *fused = kernels::FusedAct::kNone;
      return true;
    case Activation::kRelu:
      *fused = kernels::FusedAct::kRelu;
      return true;
    case Activation::kLeakyRelu:
      *fused = kernels::FusedAct::kLeakyRelu;
      return true;
    default:
      return false;
  }
}

}  // namespace

NodePtr Activate(const NodePtr& x, Activation act) {
  switch (act) {
    case Activation::kNone: return x;
    case Activation::kRelu: return Relu(x);
    case Activation::kLeakyRelu: return LeakyRelu(x);
    case Activation::kTanh: return Tanh(x);
    case Activation::kSigmoid: return Sigmoid(x);
  }
  return x;
}

Matrix ActivateValue(Matrix x, Activation act) {
  // Formulas mirror the autograd ops in autograd.cc exactly so that the
  // value-only path stays bit-identical to graph-based inference.
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      for (size_t i = 0; i < x.size(); ++i) {
        x.data()[i] = x.data()[i] > 0.0 ? x.data()[i] : 0.0;
      }
      return x;
    case Activation::kLeakyRelu:
      for (size_t i = 0; i < x.size(); ++i) {
        x.data()[i] = x.data()[i] > 0.0 ? x.data()[i] : 0.01 * x.data()[i];
      }
      return x;
    case Activation::kTanh:
      for (size_t i = 0; i < x.size(); ++i) {
        x.data()[i] = std::tanh(x.data()[i]);
      }
      return x;
    case Activation::kSigmoid:
      for (size_t i = 0; i < x.size(); ++i) {
        x.data()[i] = 1.0 / (1.0 + std::exp(-x.data()[i]));
      }
      return x;
  }
  return x;
}

Linear::Linear(ParameterStore* store, size_t in_features, size_t out_features,
               zerotune::Rng* rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(store->CreateParameter(in_features, out_features, rng)),
      bias_(store->CreateParameter(1, out_features, rng, /*zero_init=*/true)) {}

NodePtr Linear::Forward(const NodePtr& x) const {
  assert(x->value.cols() == in_features_);
  return AddRowBroadcast(MatMul(x, weight_), bias_);
}

Matrix Linear::ForwardValue(const Matrix& x) const {
  return ForwardValue(x, Activation::kNone);
}

Matrix Linear::ForwardValue(const Matrix& x, Activation act) const {
  assert(x.cols() == in_features_);
  // GemmRowMajorF64 overwrites every element, so skip the zero-fill.
  Matrix out = Matrix::Uninitialized(x.rows(), out_features_);
  kernels::GemmRowMajorF64(x.data(), x.rows(), in_features_,
                           weight_->value.data(), out_features_, out.data());
  kernels::FusedAct fused = kernels::FusedAct::kNone;
  const bool fusable = ToFusedAct(act, &fused);
  kernels::BiasActRowsF64(out.data(), bias_->value.data(), out.rows(),
                          out_features_, fused);
  if (!fusable) out = ActivateValue(std::move(out), act);
  return out;
}

Mlp::Mlp(ParameterStore* store, const std::vector<size_t>& layer_sizes,
         zerotune::Rng* rng, Options options)
    : options_(options) {
  assert(layer_sizes.size() >= 2);
  layers_.reserve(layer_sizes.size() - 1);
  for (size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    layers_.emplace_back(store, layer_sizes[i], layer_sizes[i + 1], rng);
  }
}

NodePtr Mlp::Forward(const NodePtr& x) const {
  NodePtr h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    const bool is_last = (i + 1 == layers_.size());
    if (!is_last || options_.activate_output) {
      h = Activate(h, options_.activation);
    }
  }
  return h;
}

Matrix Mlp::ForwardValue(Matrix x) const {
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool is_last = (i + 1 == layers_.size());
    const Activation act = (!is_last || options_.activate_output)
                               ? options_.activation
                               : Activation::kNone;
    x = layers_[i].ForwardValue(x, act);
  }
  return x;
}

}  // namespace zerotune::nn
