// AVX2+FMA kernel implementations. This is the ONLY translation unit in
// the project built with -mavx2 -mfma (see src/nn/CMakeLists.txt) and
// the only place raw vendor intrinsics are allowed (ztlint ZT-S007):
// code here runs strictly behind the runtime cpuid dispatch in
// kernels.cc, so the rest of the binary stays runnable on any x86-64.
//
// Numerics: the GEMM uses the broadcast formulation (for each output
// row, broadcast a[i][k] and FMA into column-vector accumulators), so
// every output element still sums its k terms in ascending order — the
// only difference from the scalar path is FMA's fused rounding. The
// reduction kernels (DotF64/DotF32/DotF32I8) split the sum across
// vector lanes and reduce horizontally at the end, which reassociates;
// their callers (the quantized path, tests, benches) are
// tolerance-checked. Element-wise kernels are bit-identical to scalar.
//
// All loads and stores are unaligned (loadu/storeu/maskload/maskstore):
// nn::Matrix rows carry no alignment guarantee and callers may slice at
// any 8-byte offset.
#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "nn/kernels.h"

namespace zerotune::nn::kernels::avx2 {

namespace {

/// Load mask for the final 1–3 doubles of a row (rem in [0, 4)).
inline __m256i TailMask4(size_t rem) {
  alignas(32) static const int64_t kMask[8] = {-1, -1, -1, -1, 0, 0, 0, 0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMask + (4 - rem)));
}

/// Load mask for the final 1–7 floats of a row (rem in [0, 8)).
inline __m256i TailMask8(size_t rem) {
  alignas(32) static const int32_t kMask[16] = {-1, -1, -1, -1, -1, -1, -1,
                                                -1, 0,  0,  0,  0,  0,  0,
                                                0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMask + (8 - rem)));
}

inline double HorizontalSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(sum2, sum2);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, swapped));
}

inline float HorizontalSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum4 = _mm_add_ps(lo, hi);
  sum4 = _mm_add_ps(sum4, _mm_movehl_ps(sum4, sum4));
  sum4 = _mm_add_ss(sum4, _mm_shuffle_ps(sum4, sum4, 0x1));
  return _mm_cvtss_f32(sum4);
}

/// One output row of the GEMM over a 4-column tile at `b + j`, k terms
/// in ascending order with FMA.
inline __m256d GemmTile4(const double* arow, size_t k, const double* b,
                         size_t n, size_t j) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t kk = 0; kk < k; ++kk) {
    const double aik = arow[kk];
    if (aik == 0.0) continue;  // one-hot feature rows are mostly zero
    const __m256d av = _mm256_set1_pd(aik);
    acc = _mm256_fmadd_pd(av, _mm256_loadu_pd(b + kk * n + j), acc);
  }
  return acc;
}

}  // namespace

void GemmRowMajorF64(const double* a, size_t m, size_t k, const double* b,
                     size_t n, double* out) {
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* orow = out + i * n;
    size_t j = 0;
    // 32-column tiles: eight accumulators cover a whole hidden row of
    // width ≤ 32 (or most of one) in a single k pass, so the per-k
    // branch + broadcast overhead is paid once instead of per 16-column
    // tile. Register budget: 8 accumulators + 1 broadcast ≤ 16 ymm.
    for (; j + 32 <= n; j += 32) {
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      __m256d acc4 = _mm256_setzero_pd();
      __m256d acc5 = _mm256_setzero_pd();
      __m256d acc6 = _mm256_setzero_pd();
      __m256d acc7 = _mm256_setzero_pd();
      for (size_t kk = 0; kk < k; ++kk) {
        const double aik = arow[kk];
        if (aik == 0.0) continue;
        const __m256d av = _mm256_set1_pd(aik);
        const double* brow = b + kk * n + j;
        acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow), acc0);
        acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 4), acc1);
        acc2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 8), acc2);
        acc3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 12), acc3);
        acc4 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 16), acc4);
        acc5 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 20), acc5);
        acc6 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 24), acc6);
        acc7 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 28), acc7);
      }
      _mm256_storeu_pd(orow + j, acc0);
      _mm256_storeu_pd(orow + j + 4, acc1);
      _mm256_storeu_pd(orow + j + 8, acc2);
      _mm256_storeu_pd(orow + j + 12, acc3);
      _mm256_storeu_pd(orow + j + 16, acc4);
      _mm256_storeu_pd(orow + j + 20, acc5);
      _mm256_storeu_pd(orow + j + 24, acc6);
      _mm256_storeu_pd(orow + j + 28, acc7);
    }
    // 16-column tiles: four accumulators stay in registers across the
    // whole k loop, so each a-element is broadcast once per tile.
    for (; j + 16 <= n; j += 16) {
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      for (size_t kk = 0; kk < k; ++kk) {
        const double aik = arow[kk];
        if (aik == 0.0) continue;
        const __m256d av = _mm256_set1_pd(aik);
        const double* brow = b + kk * n + j;
        acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow), acc0);
        acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 4), acc1);
        acc2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 8), acc2);
        acc3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(brow + 12), acc3);
      }
      _mm256_storeu_pd(orow + j, acc0);
      _mm256_storeu_pd(orow + j + 4, acc1);
      _mm256_storeu_pd(orow + j + 8, acc2);
      _mm256_storeu_pd(orow + j + 12, acc3);
    }
    for (; j + 4 <= n; j += 4) {
      _mm256_storeu_pd(orow + j, GemmTile4(arow, k, b, n, j));
    }
    if (j < n) {
      const size_t rem = n - j;
      const __m256i mask = TailMask4(rem);
      __m256d acc = _mm256_setzero_pd();
      for (size_t kk = 0; kk < k; ++kk) {
        const double aik = arow[kk];
        if (aik == 0.0) continue;
        const __m256d av = _mm256_set1_pd(aik);
        acc = _mm256_fmadd_pd(
            av, _mm256_maskload_pd(b + kk * n + j, mask), acc);
      }
      _mm256_maskstore_pd(orow + j, mask, acc);
    }
  }
}

void MacF64(double* acc, const double* x, double s, size_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r =
        _mm256_fmadd_pd(sv, _mm256_loadu_pd(x + i), _mm256_loadu_pd(acc + i));
    _mm256_storeu_pd(acc + i, r);
  }
  if (i < n) {
    const __m256i mask = TailMask4(n - i);
    const __m256d r = _mm256_fmadd_pd(sv, _mm256_maskload_pd(x + i, mask),
                                      _mm256_maskload_pd(acc + i, mask));
    _mm256_maskstore_pd(acc + i, mask, r);
  }
}

double DotF64(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  double s = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

void AddF64(double* acc, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                               _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

void MeanRowsF64(double* dst, const double* const* rows, size_t count,
                 size_t n) {
  const __m256d inv =
      _mm256_set1_pd(1.0 / static_cast<double>(count));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d acc = _mm256_loadu_pd(rows[0] + i);
    for (size_t r = 1; r < count; ++r) {
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(rows[r] + i));
    }
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(acc, inv));
  }
  if (i < n) {
    const double scalar_inv = 1.0 / static_cast<double>(count);
    for (; i < n; ++i) {
      double acc = rows[0][i];
      for (size_t r = 1; r < count; ++r) acc += rows[r][i];
      dst[i] = acc * scalar_inv;
    }
  }
}

void BiasActRowsF64(double* x, const double* bias, size_t rows, size_t n,
                    FusedAct act) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d leak = _mm256_set1_pd(0.01);
  for (size_t r = 0; r < rows; ++r) {
    double* row = x + r * n;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      __m256d v =
          _mm256_add_pd(_mm256_loadu_pd(row + i), _mm256_loadu_pd(bias + i));
      if (act == FusedAct::kRelu) {
        // max(v, +0) returns +0 for v = ±0, matching `v > 0 ? v : 0`.
        v = _mm256_max_pd(v, zero);
      } else if (act == FusedAct::kLeakyRelu) {
        const __m256d gt = _mm256_cmp_pd(v, zero, _CMP_GT_OQ);
        v = _mm256_blendv_pd(_mm256_mul_pd(v, leak), v, gt);
      }
      _mm256_storeu_pd(row + i, v);
    }
    for (; i < n; ++i) {
      double v = row[i] + bias[i];
      if (act == FusedAct::kRelu) {
        v = v > 0.0 ? v : 0.0;
      } else if (act == FusedAct::kLeakyRelu) {
        v = v > 0.0 ? v : 0.01 * v;
      }
      row[i] = v;
    }
  }
}

namespace {

/// Two A-rows per k pass at the project's hidden width (n = 48): twelve
/// accumulators hold both 48-wide output rows, so each B row is loaded
/// once per *pair* of FMAs instead of once per FMA — the single-row tile
/// is load-bound, not FMA-bound, at these shapes. Per-row accumulation
/// stays ascending-k with one fused rounding per element, and a k step
/// is skipped only when both a-elements are zero (0·x + acc == acc), so
/// each output row is bit-identical to the single-row tile's.
/// Register budget: 12 accumulators + 2 broadcasts + 1 B temp ≤ 16 ymm.
void GemmRowPairF32N48(const float* a0, const float* a1, size_t k,
                       const float* b, float* o0, float* o1) {
  __m256 p00 = _mm256_setzero_ps(), p01 = _mm256_setzero_ps();
  __m256 p02 = _mm256_setzero_ps(), p03 = _mm256_setzero_ps();
  __m256 p04 = _mm256_setzero_ps(), p05 = _mm256_setzero_ps();
  __m256 p10 = _mm256_setzero_ps(), p11 = _mm256_setzero_ps();
  __m256 p12 = _mm256_setzero_ps(), p13 = _mm256_setzero_ps();
  __m256 p14 = _mm256_setzero_ps(), p15 = _mm256_setzero_ps();
  for (size_t kk = 0; kk < k; ++kk) {
    const float x0 = a0[kk];
    const float x1 = a1[kk];
    if ((x0 == 0.0f) & (x1 == 0.0f)) continue;
    const __m256 v0 = _mm256_set1_ps(x0);
    const __m256 v1 = _mm256_set1_ps(x1);
    const float* brow = b + kk * 48;
    __m256 t = _mm256_loadu_ps(brow);
    p00 = _mm256_fmadd_ps(v0, t, p00);
    p10 = _mm256_fmadd_ps(v1, t, p10);
    t = _mm256_loadu_ps(brow + 8);
    p01 = _mm256_fmadd_ps(v0, t, p01);
    p11 = _mm256_fmadd_ps(v1, t, p11);
    t = _mm256_loadu_ps(brow + 16);
    p02 = _mm256_fmadd_ps(v0, t, p02);
    p12 = _mm256_fmadd_ps(v1, t, p12);
    t = _mm256_loadu_ps(brow + 24);
    p03 = _mm256_fmadd_ps(v0, t, p03);
    p13 = _mm256_fmadd_ps(v1, t, p13);
    t = _mm256_loadu_ps(brow + 32);
    p04 = _mm256_fmadd_ps(v0, t, p04);
    p14 = _mm256_fmadd_ps(v1, t, p14);
    t = _mm256_loadu_ps(brow + 40);
    p05 = _mm256_fmadd_ps(v0, t, p05);
    p15 = _mm256_fmadd_ps(v1, t, p15);
  }
  _mm256_storeu_ps(o0, p00);
  _mm256_storeu_ps(o0 + 8, p01);
  _mm256_storeu_ps(o0 + 16, p02);
  _mm256_storeu_ps(o0 + 24, p03);
  _mm256_storeu_ps(o0 + 32, p04);
  _mm256_storeu_ps(o0 + 40, p05);
  _mm256_storeu_ps(o1, p10);
  _mm256_storeu_ps(o1 + 8, p11);
  _mm256_storeu_ps(o1 + 16, p12);
  _mm256_storeu_ps(o1 + 24, p13);
  _mm256_storeu_ps(o1 + 32, p14);
  _mm256_storeu_ps(o1 + 40, p15);
}

}  // namespace

void GemmRowMajorF32(const float* a, size_t m, size_t k, const float* b,
                     size_t n, float* out) {
  size_t row0 = 0;
  if (n == 48) {
    for (; row0 + 2 <= m; row0 += 2) {
      GemmRowPairF32N48(a + row0 * k, a + (row0 + 1) * k, k, b,
                        out + row0 * 48, out + (row0 + 1) * 48);
    }
  }
  for (size_t i = row0; i < m; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    size_t j = 0;
    // 48-column tiles: six 8-lane accumulators cover the project's
    // hidden width (48) in a single k pass — one branch + broadcast per
    // a-element for the whole row instead of one per narrow tile, which
    // is what these front-end-bound shapes actually pay for.
    for (; j + 48 <= n; j += 48) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      __m256 acc4 = _mm256_setzero_ps();
      __m256 acc5 = _mm256_setzero_ps();
      for (size_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) continue;
        const __m256 av = _mm256_set1_ps(aik);
        const float* brow = b + kk * n + j;
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), acc1);
        acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 16), acc2);
        acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 24), acc3);
        acc4 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 32), acc4);
        acc5 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 40), acc5);
      }
      _mm256_storeu_ps(orow + j, acc0);
      _mm256_storeu_ps(orow + j + 8, acc1);
      _mm256_storeu_ps(orow + j + 16, acc2);
      _mm256_storeu_ps(orow + j + 24, acc3);
      _mm256_storeu_ps(orow + j + 32, acc4);
      _mm256_storeu_ps(orow + j + 40, acc5);
    }
    // 32-column tiles: four 8-lane accumulators stay in registers across
    // the whole k loop, one broadcast per a-element per tile.
    for (; j + 32 <= n; j += 32) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      for (size_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) continue;
        const __m256 av = _mm256_set1_ps(aik);
        const float* brow = b + kk * n + j;
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), acc1);
        acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 16), acc2);
        acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 24), acc3);
      }
      _mm256_storeu_ps(orow + j, acc0);
      _mm256_storeu_ps(orow + j + 8, acc1);
      _mm256_storeu_ps(orow + j + 16, acc2);
      _mm256_storeu_ps(orow + j + 24, acc3);
    }
    for (; j + 16 <= n; j += 16) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (size_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) continue;
        const __m256 av = _mm256_set1_ps(aik);
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + kk * n + j), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + kk * n + j + 8),
                               acc1);
      }
      _mm256_storeu_ps(orow + j, acc0);
      _mm256_storeu_ps(orow + j + 8, acc1);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (size_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) continue;
        acc = _mm256_fmadd_ps(_mm256_set1_ps(aik),
                              _mm256_loadu_ps(b + kk * n + j), acc);
      }
      _mm256_storeu_ps(orow + j, acc);
    }
    if (j < n) {
      const __m256i mask = TailMask8(n - j);
      __m256 acc = _mm256_setzero_ps();
      for (size_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) continue;
        acc = _mm256_fmadd_ps(_mm256_set1_ps(aik),
                              _mm256_maskload_ps(b + kk * n + j, mask), acc);
      }
      _mm256_maskstore_ps(orow + j, mask, acc);
    }
  }
}

float DotF32(const float* a, const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float s = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

float DotF32I8(const float* a, const int8_t* w, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // 8 int8 weights -> 8 fp32 lanes, then FMA against the activations.
    const __m128i w8 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(w + i));
    const __m256 wf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(w8));
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), wf, acc);
  }
  float s = HorizontalSum(acc);
  for (; i < n; ++i) s += a[i] * static_cast<float>(w[i]);
  return s;
}

void AddF32(float* acc, const float* x, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i),
                               _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

void MeanRowsF32(float* dst, const float* const* rows, size_t count,
                 size_t n) {
  const __m256 inv = _mm256_set1_ps(1.0f / static_cast<float>(count));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 acc = _mm256_loadu_ps(rows[0] + i);
    for (size_t r = 1; r < count; ++r) {
      acc = _mm256_add_ps(acc, _mm256_loadu_ps(rows[r] + i));
    }
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(acc, inv));
  }
  if (i < n) {
    const float scalar_inv = 1.0f / static_cast<float>(count);
    for (; i < n; ++i) {
      float acc = rows[0][i];
      for (size_t r = 1; r < count; ++r) acc += rows[r][i];
      dst[i] = acc * scalar_inv;
    }
  }
}

void BiasActRowF32(float* x, const float* bias, size_t n, FusedAct act) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 leak = _mm256_set1_ps(0.01f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_add_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(bias + i));
    if (act == FusedAct::kRelu) {
      v = _mm256_max_ps(v, zero);
    } else if (act == FusedAct::kLeakyRelu) {
      const __m256 gt = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
      v = _mm256_blendv_ps(_mm256_mul_ps(v, leak), v, gt);
    }
    _mm256_storeu_ps(x + i, v);
  }
  for (; i < n; ++i) {
    float v = x[i] + bias[i];
    if (act == FusedAct::kRelu) {
      v = v > 0.0f ? v : 0.0f;
    } else if (act == FusedAct::kLeakyRelu) {
      v = v > 0.0f ? v : 0.01f * v;
    }
    x[i] = v;
  }
}

}  // namespace zerotune::nn::kernels::avx2
