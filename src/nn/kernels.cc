#include "nn/kernels.h"

#include <atomic>
#include <cstring>

namespace zerotune::nn::kernels {

#if ZEROTUNE_SIMD_AVX2
namespace avx2 {
// Implemented in kernels_avx2.cc (the only TU built with -mavx2 -mfma).
void GemmRowMajorF64(const double* a, size_t m, size_t k, const double* b,
                     size_t n, double* out);
void MacF64(double* acc, const double* x, double s, size_t n);
double DotF64(const double* a, const double* b, size_t n);
void AddF64(double* acc, const double* x, size_t n);
void MeanRowsF64(double* dst, const double* const* rows, size_t count,
                 size_t n);
void BiasActRowsF64(double* x, const double* bias, size_t rows, size_t n,
                    FusedAct act);
void GemmRowMajorF32(const float* a, size_t m, size_t k, const float* b,
                     size_t n, float* out);
float DotF32(const float* a, const float* b, size_t n);
float DotF32I8(const float* a, const int8_t* w, size_t n);
void AddF32(float* acc, const float* x, size_t n);
void MeanRowsF32(float* dst, const float* const* rows, size_t count,
                 size_t n);
void BiasActRowF32(float* x, const float* bias, size_t n, FusedAct act);
}  // namespace avx2
#endif  // ZEROTUNE_SIMD_AVX2

namespace {

std::atomic<bool> g_force_scalar{false};

bool DetectSimd() {
#if ZEROTUNE_SIMD_AVX2
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// One relaxed load on the hot path; the cpuid probe runs once.
inline bool UseSimd() {
  static const bool supported = DetectSimd();
  return supported && !g_force_scalar.load(std::memory_order_relaxed);
}

// -------------------------------------------------------------------
// Scalar reference implementations. These replicate the historical
// nn::Matrix arithmetic exactly (same loop structure and summation
// order as Matrix::MatMul and the pre-kernel batch-engine helpers), so
// a ZEROTUNE_DISABLE_SIMD build keeps bit-identical outputs.
// -------------------------------------------------------------------
namespace scalar {

void GemmRowMajorF64(const double* a, size_t m, size_t k, const double* b,
                     size_t n, double* out) {
  std::memset(out, 0, m * n * sizeof(double));
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* orow = out + i * n;
    for (size_t kk = 0; kk < k; ++kk) {
      const double aik = arow[kk];
      if (aik == 0.0) continue;  // feature rows are sparse; 0·x adds ±0
      const double* brow = b + kk * n;
      for (size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
}

void MacF64(double* acc, const double* x, double s, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += s * x[i];
}

double DotF64(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void AddF64(double* acc, const double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += x[i];
}

void MeanRowsF64(double* dst, const double* const* rows, size_t count,
                 size_t n) {
  const double inv = 1.0 / static_cast<double>(count);
  for (size_t i = 0; i < n; ++i) {
    double acc = rows[0][i];
    for (size_t r = 1; r < count; ++r) acc += rows[r][i];
    dst[i] = acc * inv;
  }
}

void BiasActRowsF64(double* x, const double* bias, size_t rows, size_t n,
                    FusedAct act) {
  for (size_t r = 0; r < rows; ++r) {
    double* row = x + r * n;
    for (size_t i = 0; i < n; ++i) row[i] += bias[i];
    switch (act) {
      case FusedAct::kNone:
        break;
      case FusedAct::kRelu:
        for (size_t i = 0; i < n; ++i) row[i] = row[i] > 0.0 ? row[i] : 0.0;
        break;
      case FusedAct::kLeakyRelu:
        for (size_t i = 0; i < n; ++i) {
          row[i] = row[i] > 0.0 ? row[i] : 0.01 * row[i];
        }
        break;
    }
  }
}

void GemmRowMajorF32(const float* a, size_t m, size_t k, const float* b,
                     size_t n, float* out) {
  std::memset(out, 0, m * n * sizeof(float));
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    for (size_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;  // feature rows are sparse; 0·x adds ±0
      const float* brow = b + kk * n;
      for (size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
}

float DotF32(const float* a, const float* b, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

float DotF32I8(const float* a, const int8_t* w, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += a[i] * static_cast<float>(w[i]);
  return s;
}

void AddF32(float* acc, const float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += x[i];
}

void MeanRowsF32(float* dst, const float* const* rows, size_t count,
                 size_t n) {
  const float inv = 1.0f / static_cast<float>(count);
  for (size_t i = 0; i < n; ++i) {
    float acc = rows[0][i];
    for (size_t r = 1; r < count; ++r) acc += rows[r][i];
    dst[i] = acc * inv;
  }
}

void BiasActRowF32(float* x, const float* bias, size_t n, FusedAct act) {
  for (size_t i = 0; i < n; ++i) x[i] += bias[i];
  switch (act) {
    case FusedAct::kNone:
      break;
    case FusedAct::kRelu:
      for (size_t i = 0; i < n; ++i) x[i] = x[i] > 0.0f ? x[i] : 0.0f;
      break;
    case FusedAct::kLeakyRelu:
      for (size_t i = 0; i < n; ++i) {
        x[i] = x[i] > 0.0f ? x[i] : 0.01f * x[i];
      }
      break;
  }
}

}  // namespace scalar
}  // namespace

const char* IsaName(Isa isa) {
  return isa == Isa::kAvx2Fma ? "avx2-fma" : "scalar";
}

bool SimdCompiledIn() {
#if ZEROTUNE_SIMD_AVX2
  return true;
#else
  return false;
#endif
}

bool SimdSupported() {
  static const bool supported = DetectSimd();
  return supported;
}

Isa ActiveIsa() { return UseSimd() ? Isa::kAvx2Fma : Isa::kScalar; }

void ForceScalar(bool on) {
  g_force_scalar.store(on, std::memory_order_relaxed);
}

#if ZEROTUNE_SIMD_AVX2
#define ZT_KERNEL_DISPATCH(fn, ...) \
  return UseSimd() ? avx2::fn(__VA_ARGS__) : scalar::fn(__VA_ARGS__)
#else
#define ZT_KERNEL_DISPATCH(fn, ...) return scalar::fn(__VA_ARGS__)
#endif

void GemmRowMajorF64(const double* a, size_t m, size_t k, const double* b,
                     size_t n, double* out) {
  ZT_KERNEL_DISPATCH(GemmRowMajorF64, a, m, k, b, n, out);
}

void MacF64(double* acc, const double* x, double s, size_t n) {
  ZT_KERNEL_DISPATCH(MacF64, acc, x, s, n);
}

double DotF64(const double* a, const double* b, size_t n) {
  ZT_KERNEL_DISPATCH(DotF64, a, b, n);
}

void AddF64(double* acc, const double* x, size_t n) {
  ZT_KERNEL_DISPATCH(AddF64, acc, x, n);
}

void MeanRowsF64(double* dst, const double* const* rows, size_t count,
                 size_t n) {
  ZT_KERNEL_DISPATCH(MeanRowsF64, dst, rows, count, n);
}

void BiasActRowsF64(double* x, const double* bias, size_t rows, size_t n,
                    FusedAct act) {
  ZT_KERNEL_DISPATCH(BiasActRowsF64, x, bias, rows, n, act);
}

void GemmRowMajorF32(const float* a, size_t m, size_t k, const float* b,
                     size_t n, float* out) {
  ZT_KERNEL_DISPATCH(GemmRowMajorF32, a, m, k, b, n, out);
}

float DotF32(const float* a, const float* b, size_t n) {
  ZT_KERNEL_DISPATCH(DotF32, a, b, n);
}

float DotF32I8(const float* a, const int8_t* w, size_t n) {
  ZT_KERNEL_DISPATCH(DotF32I8, a, w, n);
}

void AddF32(float* acc, const float* x, size_t n) {
  ZT_KERNEL_DISPATCH(AddF32, acc, x, n);
}

void MeanRowsF32(float* dst, const float* const* rows, size_t count,
                 size_t n) {
  ZT_KERNEL_DISPATCH(MeanRowsF32, dst, rows, count, n);
}

void BiasActRowF32(float* x, const float* bias, size_t n, FusedAct act) {
  ZT_KERNEL_DISPATCH(BiasActRowF32, x, bias, n, act);
}

#undef ZT_KERNEL_DISPATCH

}  // namespace zerotune::nn::kernels
