#ifndef ZEROTUNE_NN_OPTIMIZER_H_
#define ZEROTUNE_NN_OPTIMIZER_H_

#include <iosfwd>
#include <vector>

#include "common/status.h"
#include "nn/autograd.h"

namespace zerotune::nn {

/// Adam optimizer (Kingma & Ba) over the parameters of a ParameterStore.
class Adam {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;  // decoupled (AdamW-style)
  };

  explicit Adam(ParameterStore* store) : Adam(store, Options()) {}
  Adam(ParameterStore* store, Options options);

  /// Applies one update using the accumulated gradients. Parameters with no
  /// gradient entry are left untouched.
  void Step(const GradStore& grads);

  /// Resets moment estimates (used when fine-tuning restarts).
  void Reset();

  /// Serializes the moment estimates and step counter (not the options —
  /// those belong to whoever constructed the optimizer) at full double
  /// precision, so Save + Load resumes training bit-identically.
  Status SaveState(std::ostream& os) const;
  /// Restores state written by SaveState. Moment shapes must match the
  /// attached ParameterStore; on any error the optimizer is untouched.
  Status LoadState(std::istream& is);

  Options& options() { return options_; }

 private:
  ParameterStore* store_;
  Options options_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  long step_count_ = 0;
};

/// Plain SGD with optional momentum; used by the baseline models and tests.
class Sgd {
 public:
  struct Options {
    double learning_rate = 1e-2;
    double momentum = 0.0;
  };

  explicit Sgd(ParameterStore* store) : Sgd(store, Options()) {}
  Sgd(ParameterStore* store, Options options);

  void Step(const GradStore& grads);

 private:
  ParameterStore* store_;
  Options options_;
  std::vector<Matrix> velocity_;
};

}  // namespace zerotune::nn

#endif  // ZEROTUNE_NN_OPTIMIZER_H_
