#include "nn/autograd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <unordered_set>

namespace zerotune::nn {

void GradStore::Accumulate(int param_id, const Matrix& g) {
  auto it = grads_.find(param_id);
  if (it == grads_.end()) {
    grads_.emplace(param_id, g);
  } else {
    it->second.Add(g);
  }
}

void GradStore::Merge(const GradStore& other) {
  for (const auto& [id, g] : other.grads_) Accumulate(id, g);
}

void GradStore::Scale(double factor) {
  for (auto& [id, g] : grads_) g.Scale(factor);
}

double GradStore::ClipGlobalNorm(double max_norm) {
  double sq = 0.0;
  for (const auto& [id, g] : grads_) sq += g.SquaredNorm();
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) Scale(max_norm / norm);
  return norm;
}

const Matrix* GradStore::Find(int param_id) const {
  auto it = grads_.find(param_id);
  return it == grads_.end() ? nullptr : &it->second;
}

bool GradStore::AllFinite() const {
  for (const auto& [id, g] : grads_) {
    for (size_t i = 0; i < g.size(); ++i) {
      if (!std::isfinite(g.data()[i])) return false;
    }
  }
  return true;
}

namespace {

NodePtr MakeNode(Matrix value, std::vector<NodePtr> parents,
                 Node::BackwardFn fn) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->parents = std::move(parents);
  n->backward_fn = std::move(fn);
  return n;
}

/// Applies an elementwise unary op with derivative expressed in terms of
/// input x and output y.
NodePtr ElementwiseUnary(const NodePtr& a,
                         const std::function<double(double)>& f,
                         const std::function<double(double, double)>& dfdx) {
  Matrix out = a->value;
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] = f(out.data()[i]);
  return MakeNode(
      std::move(out), {a},
      [dfdx](const Matrix& og, const std::vector<Node*>& parents,
             const std::vector<Matrix*>& pg) {
        const Matrix& x = parents[0]->value;
        Matrix& g = *pg[0];
        for (size_t i = 0; i < x.size(); ++i) {
          // Recompute y = f(x) lazily via dfdx(x, y); callers pass dfdx that
          // only needs x where possible.
          g.data()[i] += og.data()[i] * dfdx(x.data()[i], 0.0);
        }
      });
}

}  // namespace

NodePtr Constant(Matrix value) {
  return MakeNode(std::move(value), {}, nullptr);
}

NodePtr MatMul(const NodePtr& a, const NodePtr& b) {
  Matrix out = Matrix::MatMul(a->value, b->value);
  return MakeNode(std::move(out), {a, b},
                  [](const Matrix& og, const std::vector<Node*>& parents,
                     const std::vector<Matrix*>& pg) {
                    // d/dA (A·B) = og·Bᵀ ;  d/dB = Aᵀ·og
                    pg[0]->Add(Matrix::MatMulTransB(og, parents[1]->value));
                    pg[1]->Add(Matrix::MatMulTransA(parents[0]->value, og));
                  });
}

NodePtr Add(const NodePtr& a, const NodePtr& b) {
  assert(a->value.SameShape(b->value));
  Matrix out = a->value;
  out.Add(b->value);
  return MakeNode(std::move(out), {a, b},
                  [](const Matrix& og, const std::vector<Node*>&,
                     const std::vector<Matrix*>& pg) {
                    pg[0]->Add(og);
                    pg[1]->Add(og);
                  });
}

NodePtr Sub(const NodePtr& a, const NodePtr& b) {
  assert(a->value.SameShape(b->value));
  Matrix out = a->value;
  out.AddScaled(b->value, -1.0);
  return MakeNode(std::move(out), {a, b},
                  [](const Matrix& og, const std::vector<Node*>&,
                     const std::vector<Matrix*>& pg) {
                    pg[0]->Add(og);
                    pg[1]->AddScaled(og, -1.0);
                  });
}

NodePtr AddRowBroadcast(const NodePtr& a, const NodePtr& bias) {
  assert(bias->value.rows() == 1 && bias->value.cols() == a->value.cols());
  Matrix out = a->value;
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) out(r, c) += bias->value(0, c);
  }
  return MakeNode(std::move(out), {a, bias},
                  [](const Matrix& og, const std::vector<Node*>&,
                     const std::vector<Matrix*>& pg) {
                    pg[0]->Add(og);
                    Matrix& gb = *pg[1];
                    for (size_t r = 0; r < og.rows(); ++r) {
                      for (size_t c = 0; c < og.cols(); ++c) {
                        gb(0, c) += og(r, c);
                      }
                    }
                  });
}

NodePtr Scale(const NodePtr& a, double factor) {
  Matrix out = a->value;
  out.Scale(factor);
  return MakeNode(std::move(out), {a},
                  [factor](const Matrix& og, const std::vector<Node*>&,
                           const std::vector<Matrix*>& pg) {
                    pg[0]->AddScaled(og, factor);
                  });
}

NodePtr Relu(const NodePtr& a) {
  return ElementwiseUnary(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

NodePtr LeakyRelu(const NodePtr& a, double alpha) {
  return ElementwiseUnary(
      a, [alpha](double x) { return x > 0.0 ? x : alpha * x; },
      [alpha](double x, double) { return x > 0.0 ? 1.0 : alpha; });
}

NodePtr Tanh(const NodePtr& a) {
  return ElementwiseUnary(
      a, [](double x) { return std::tanh(x); },
      [](double x, double) {
        const double t = std::tanh(x);
        return 1.0 - t * t;
      });
}

NodePtr Sigmoid(const NodePtr& a) {
  return ElementwiseUnary(
      a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double x, double) {
        const double s = 1.0 / (1.0 + std::exp(-x));
        return s * (1.0 - s);
      });
}

NodePtr ConcatCols(const std::vector<NodePtr>& parts) {
  assert(!parts.empty());
  const size_t rows = parts[0]->value.rows();
  size_t cols = 0;
  for (const auto& p : parts) {
    assert(p->value.rows() == rows);
    cols += p->value.cols();
  }
  Matrix out(rows, cols);
  size_t offset = 0;
  for (const auto& p : parts) {
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < p->value.cols(); ++c) {
        out(r, offset + c) = p->value(r, c);
      }
    }
    offset += p->value.cols();
  }
  return MakeNode(std::move(out), parts,
                  [](const Matrix& og, const std::vector<Node*>& parents,
                     const std::vector<Matrix*>& pg) {
                    size_t offset = 0;
                    for (size_t i = 0; i < parents.size(); ++i) {
                      Matrix& g = *pg[i];
                      for (size_t r = 0; r < g.rows(); ++r) {
                        for (size_t c = 0; c < g.cols(); ++c) {
                          g(r, c) += og(r, offset + c);
                        }
                      }
                      offset += g.cols();
                    }
                  });
}

NodePtr MeanAll(const std::vector<NodePtr>& parts) {
  assert(!parts.empty());
  Matrix out = parts[0]->value;
  for (size_t i = 1; i < parts.size(); ++i) out.Add(parts[i]->value);
  const double inv = 1.0 / static_cast<double>(parts.size());
  out.Scale(inv);
  return MakeNode(std::move(out), parts,
                  [inv](const Matrix& og, const std::vector<Node*>& parents,
                        const std::vector<Matrix*>& pg) {
                    for (size_t i = 0; i < parents.size(); ++i) {
                      pg[i]->AddScaled(og, inv);
                    }
                  });
}

NodePtr SumAll(const std::vector<NodePtr>& parts) {
  assert(!parts.empty());
  Matrix out = parts[0]->value;
  for (size_t i = 1; i < parts.size(); ++i) out.Add(parts[i]->value);
  return MakeNode(std::move(out), parts,
                  [](const Matrix& og, const std::vector<Node*>& parents,
                     const std::vector<Matrix*>& pg) {
                    for (size_t i = 0; i < parents.size(); ++i) {
                      pg[i]->Add(og);
                    }
                  });
}

NodePtr MseLoss(const NodePtr& prediction, const Matrix& target) {
  assert(prediction->value.SameShape(target));
  const size_t n = target.size();
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = prediction->value.data()[i] - target.data()[i];
    loss += d * d;
  }
  Matrix out(1, 1, loss / static_cast<double>(n));
  Matrix target_copy = target;
  return MakeNode(
      std::move(out), {prediction},
      [target_copy, n](const Matrix& og, const std::vector<Node*>& parents,
                       const std::vector<Matrix*>& pg) {
        const double scale = og(0, 0) * 2.0 / static_cast<double>(n);
        const Matrix& pred = parents[0]->value;
        Matrix& g = *pg[0];
        for (size_t i = 0; i < n; ++i) {
          g.data()[i] += scale * (pred.data()[i] - target_copy.data()[i]);
        }
      });
}

NodePtr HuberLoss(const NodePtr& prediction, const Matrix& target,
                  double delta) {
  assert(prediction->value.SameShape(target));
  const size_t n = target.size();
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = prediction->value.data()[i] - target.data()[i];
    const double ad = std::abs(d);
    loss += ad <= delta ? 0.5 * d * d : delta * (ad - 0.5 * delta);
  }
  Matrix out(1, 1, loss / static_cast<double>(n));
  Matrix target_copy = target;
  return MakeNode(
      std::move(out), {prediction},
      [target_copy, n, delta](const Matrix& og,
                              const std::vector<Node*>& parents,
                              const std::vector<Matrix*>& pg) {
        const double scale = og(0, 0) / static_cast<double>(n);
        const Matrix& pred = parents[0]->value;
        Matrix& g = *pg[0];
        for (size_t i = 0; i < n; ++i) {
          const double d = pred.data()[i] - target_copy.data()[i];
          const double dd = std::abs(d) <= delta
                                ? d
                                : (d > 0.0 ? delta : -delta);
          g.data()[i] += scale * dd;
        }
      });
}

void Backward(const NodePtr& loss, GradStore* grads) {
  assert(loss->value.rows() == 1 && loss->value.cols() == 1);

  // Reverse topological order via iterative DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(loss.get(), 0);
  visited.insert(loss.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child].get();
      ++next_child;
      if (visited.insert(child).second) stack.emplace_back(child, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // `order` is now a topological order with parents (inputs) first; walk it
  // backwards so each node's output gradient is complete before use.

  std::unordered_map<Node*, Matrix> node_grads;
  node_grads.reserve(order.size());
  node_grads[loss.get()] = Matrix(1, 1, 1.0);

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    auto git = node_grads.find(node);
    if (git == node_grads.end()) continue;  // unreachable from loss
    const Matrix& out_grad = git->second;
    if (node->is_parameter()) {
      grads->Accumulate(node->param_id, out_grad);
      continue;
    }
    if (!node->backward_fn) continue;  // constant leaf
    std::vector<Node*> parents;
    std::vector<Matrix*> parent_grads;
    parents.reserve(node->parents.size());
    parent_grads.reserve(node->parents.size());
    for (const NodePtr& p : node->parents) {
      parents.push_back(p.get());
      auto [pit, inserted] = node_grads.try_emplace(
          p.get(), Matrix(p->value.rows(), p->value.cols()));
      parent_grads.push_back(&pit->second);
    }
    node->backward_fn(out_grad, parents, parent_grads);
  }
}

NodePtr ParameterStore::CreateParameter(size_t rows, size_t cols,
                                        zerotune::Rng* rng, bool zero_init) {
  Matrix value(rows, cols);
  if (!zero_init) {
    const double fan_in = static_cast<double>(rows);
    const double bound = std::sqrt(6.0 / std::max(fan_in, 1.0));
    for (size_t i = 0; i < value.size(); ++i) {
      value.data()[i] = rng->Uniform(-bound, bound);
    }
  }
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->param_id = static_cast<int>(params_.size());
  params_.push_back(n);
  return n;
}

size_t ParameterStore::num_parameters() const {
  size_t total = 0;
  for (const auto& p : params_) total += p->value.size();
  return total;
}

zerotune::Status ParameterStore::Save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return zerotune::Status::IOError("cannot open " + path);
  ZT_RETURN_IF_ERROR(SaveToStream(f));
  return f ? zerotune::Status::OK()
           : zerotune::Status::IOError("write failed for " + path);
}

zerotune::Status ParameterStore::Load(const std::string& path) {
  std::ifstream f(path);
  if (!f) return zerotune::Status::IOError("cannot open " + path);
  return LoadFromStream(f);
}

zerotune::Status ParameterStore::SaveToStream(std::ostream& os) const {
  os.precision(17);
  os << "zerotune-params-v1 " << params_.size() << "\n";
  for (const auto& p : params_) {
    os << p->value.rows() << " " << p->value.cols();
    for (size_t i = 0; i < p->value.size(); ++i) {
      os << " " << p->value.data()[i];
    }
    os << "\n";
  }
  return os ? zerotune::Status::OK()
            : zerotune::Status::IOError("parameter stream write failed");
}

zerotune::Status ParameterStore::LoadFromStream(std::istream& is) {
  std::string magic;
  size_t count = 0;
  is >> magic >> count;
  if (magic != "zerotune-params-v1") {
    return zerotune::Status::InvalidArgument("bad parameter file header");
  }
  if (count != params_.size()) {
    return zerotune::Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", store has " + std::to_string(params_.size()));
  }
  // Parse into scratch buffers and commit only after the whole stream
  // validated, so a failed load leaves the live parameters untouched.
  std::vector<Matrix> loaded;
  loaded.reserve(params_.size());
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    auto& p = params_[pi];
    size_t rows = 0, cols = 0;
    is >> rows >> cols;
    if (!is) {
      return zerotune::Status::IOError(
          "truncated parameter stream at parameter " + std::to_string(pi));
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return zerotune::Status::InvalidArgument(
          "parameter " + std::to_string(pi) + " shape mismatch: file has " +
          std::to_string(rows) + "x" + std::to_string(cols) +
          ", store expects " + std::to_string(p->value.rows()) + "x" +
          std::to_string(p->value.cols()));
    }
    Matrix scratch(rows, cols);
    for (size_t i = 0; i < scratch.size(); ++i) {
      is >> scratch.data()[i];
      if (!is) {
        return zerotune::Status::IOError(
            "truncated parameter stream at parameter " + std::to_string(pi) +
            ", element " + std::to_string(i));
      }
      if (!std::isfinite(scratch.data()[i])) {
        return zerotune::Status::InvalidArgument(
            "non-finite value in parameter " + std::to_string(pi) +
            ", element " + std::to_string(i));
      }
    }
    loaded.push_back(std::move(scratch));
  }
  if (!is) return zerotune::Status::IOError("truncated parameter stream");
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    params_[pi]->value = std::move(loaded[pi]);
  }
  return zerotune::Status::OK();
}

zerotune::Status ParameterStore::CopyFrom(const ParameterStore& other) {
  if (other.params_.size() != params_.size()) {
    return zerotune::Status::InvalidArgument("parameter count mismatch");
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i]->value.SameShape(other.params_[i]->value)) {
      return zerotune::Status::InvalidArgument("parameter shape mismatch");
    }
    params_[i]->value = other.params_[i]->value;
  }
  return zerotune::Status::OK();
}

}  // namespace zerotune::nn
