#include "nn/matrix.h"

#include <algorithm>
#include <sstream>

#include "nn/kernels.h"

namespace zerotune::nn {

Matrix Matrix::RowVector(const std::vector<double>& values) {
  return RowVector(values.data(), values.size());
}

Matrix Matrix::RowVector(const double* values, size_t n) {
  Matrix m = Matrix::Uninitialized(1, n);
  std::copy(values, values + n, m.data_.begin());
  return m;
}

void Matrix::Add(const Matrix& other) {
  assert(SameShape(other));
  // AddF64 is element-wise and bit-identical in both kernel
  // implementations, so this is safe for training paths too.
  kernels::AddF64(data_.data(), other.data_.data(), data_.size());
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

void Matrix::Scale(double scale) {
  for (double& v : data_) v *= scale;
}

void Matrix::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

Matrix Matrix::MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols_ == b.rows_);
  Matrix out(a.rows_, b.cols_);
  for (size_t i = 0; i < a.rows_; ++i) {
    for (size_t k = 0; k < a.cols_; ++k) {
      const double aik = a.data_[i * a.cols_ + k];
      if (aik == 0.0) continue;
      const double* brow = &b.data_[k * b.cols_];
      double* orow = &out.data_[i * out.cols_];
      for (size_t j = 0; j < b.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTransA(const Matrix& a, const Matrix& b) {
  // out = aᵀ b, shapes: a (m×n), b (m×p) -> out (n×p).
  assert(a.rows_ == b.rows_);
  Matrix out(a.cols_, b.cols_);
  for (size_t k = 0; k < a.rows_; ++k) {
    const double* arow = &a.data_[k * a.cols_];
    const double* brow = &b.data_[k * b.cols_];
    for (size_t i = 0; i < a.cols_; ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* orow = &out.data_[i * out.cols_];
      for (size_t j = 0; j < b.cols_; ++j) orow[j] += aki * brow[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTransB(const Matrix& a, const Matrix& b) {
  // out = a bᵀ, shapes: a (m×n), b (p×n) -> out (m×p).
  assert(a.cols_ == b.cols_);
  Matrix out(a.rows_, b.rows_);
  for (size_t i = 0; i < a.rows_; ++i) {
    const double* arow = &a.data_[i * a.cols_];
    for (size_t j = 0; j < b.rows_; ++j) {
      const double* brow = &b.data_[j * b.cols_];
      double s = 0.0;
      for (size_t k = 0; k < a.cols_; ++k) s += arow[k] * brow[k];
      out.data_[i * out.cols_ + j] = s;
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

std::string Matrix::DebugString(size_t max_entries) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  for (size_t i = 0; i < std::min(max_entries, data_.size()); ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (data_.size() > max_entries) os << ", ...";
  os << "]";
  return os.str();
}

}  // namespace zerotune::nn
