#include "nn/quantized.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

#include "nn/kernels.h"

namespace zerotune::nn {

namespace {

/// fp32 activation matching the formulas in ActivateValue; only the
/// libm-backed activations land here — none/relu/leaky-relu are fused
/// into BiasActRowF32.
void ActivateRowF32(float* row, size_t n, Activation act) {
  switch (act) {
    case Activation::kTanh:
      for (size_t i = 0; i < n; ++i) row[i] = std::tanh(row[i]);
      break;
    case Activation::kSigmoid:
      for (size_t i = 0; i < n; ++i) {
        row[i] = 1.0f / (1.0f + std::exp(-row[i]));
      }
      break;
    default:
      break;
  }
}

bool HasFusedForm(Activation act) {
  return act == Activation::kNone || act == Activation::kRelu ||
         act == Activation::kLeakyRelu;
}

kernels::FusedAct ToFused(Activation act) {
  switch (act) {
    case Activation::kRelu:
      return kernels::FusedAct::kRelu;
    case Activation::kLeakyRelu:
      return kernels::FusedAct::kLeakyRelu;
    default:
      return kernels::FusedAct::kNone;
  }
}

}  // namespace

QuantizedMlp QuantizedMlp::FromMlp(const Mlp& mlp, QuantKind kind) {
  QuantizedMlp q;
  q.kind_ = kind;
  const std::vector<Linear>& layers = mlp.layers();
  q.layers_.reserve(layers.size());
  for (size_t li = 0; li < layers.size(); ++li) {
    const Linear& l = layers[li];
    const Matrix& w = l.weight_value();  // in×out
    const Matrix& b = l.bias_value();    // 1×out
    Layer layer;
    layer.in = l.in_features();
    layer.out = l.out_features();
    layer.bias.resize(layer.out);
    for (size_t o = 0; o < layer.out; ++o) {
      layer.bias[o] = static_cast<float>(b(0, o));
    }
    if (kind == QuantKind::kFp32) {
      layer.w.resize(layer.in * layer.out);
      for (size_t i = 0; i < layer.in; ++i) {
        for (size_t o = 0; o < layer.out; ++o) {
          layer.w[i * layer.out + o] = static_cast<float>(w(i, o));
        }
      }
    } else {
      layer.w_q.resize(layer.out * layer.in);
      layer.scales.resize(layer.out);
      for (size_t o = 0; o < layer.out; ++o) {
        double max_abs = 0.0;
        for (size_t i = 0; i < layer.in; ++i) {
          max_abs = std::max(max_abs, std::abs(w(i, o)));
        }
        const double scale = max_abs > 0.0 ? max_abs / 127.0 : 1.0;
        layer.scales[o] = static_cast<float>(scale);
        for (size_t i = 0; i < layer.in; ++i) {
          const double v = std::round(w(i, o) / scale);
          layer.w_q[o * layer.in + i] = static_cast<int8_t>(
              std::max(-127.0, std::min(127.0, v)));
        }
      }
    }
    const bool is_last = (li + 1 == layers.size());
    layer.act = (!is_last || mlp.options().activate_output)
                    ? mlp.options().activation
                    : Activation::kNone;
    q.layers_.push_back(std::move(layer));
  }
  return q;
}

void QuantizedMlp::ForwardRows(const float* x, size_t rows,
                               FloatBuffer* out) const {
  assert(!layers_.empty());

  // Ping-pong between `*out` and a scratch buffer; the first layer reads
  // straight from `x` so no input copy or conversion happens.
  FloatBuffer scratch;
  const float* cur = x;
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    FloatBuffer& dst = (layers_.size() - li) % 2 == 1 ? *out : scratch;
    dst.resize(rows * layer.out);
    if (kind_ == QuantKind::kFp32) {
      // One GEMM over the whole row batch (overwrites dst completely).
      kernels::GemmRowMajorF32(cur, rows, layer.in, layer.w.data(),
                               layer.out, dst.data());
    } else {
      for (size_t r = 0; r < rows; ++r) {
        const float* in_row = cur + r * layer.in;
        float* out_row = dst.data() + r * layer.out;
        for (size_t o = 0; o < layer.out; ++o) {
          out_row[o] = layer.scales[o] *
                       kernels::DotF32I8(
                           in_row, layer.w_q.data() + o * layer.in, layer.in);
        }
      }
    }
    for (size_t r = 0; r < rows; ++r) {
      float* out_row = dst.data() + r * layer.out;
      if (HasFusedForm(layer.act)) {
        kernels::BiasActRowF32(out_row, layer.bias.data(), layer.out,
                               ToFused(layer.act));
      } else {
        kernels::BiasActRowF32(out_row, layer.bias.data(), layer.out,
                               kernels::FusedAct::kNone);
        ActivateRowF32(out_row, layer.out, layer.act);
      }
    }
    cur = dst.data();
  }
}

Matrix QuantizedMlp::ForwardValue(const Matrix& x) const {
  assert(!layers_.empty());
  assert(x.cols() == layers_.front().in);
  const size_t rows = x.rows();

  FloatBuffer in(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    in[i] = static_cast<float>(x.data()[i]);
  }
  FloatBuffer result;
  ForwardRows(in.data(), rows, &result);

  const size_t out_cols = layers_.back().out;
  Matrix out = Matrix::Uninitialized(rows, out_cols);
  for (size_t i = 0; i < rows * out_cols; ++i) {
    out.data()[i] = static_cast<double>(result[i]);
  }
  return out;
}

}  // namespace zerotune::nn
