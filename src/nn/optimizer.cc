#include "nn/optimizer.h"

#include <cmath>

namespace zerotune::nn {

Adam::Adam(ParameterStore* store, Options options)
    : store_(store), options_(options) {
  Reset();
}

void Adam::Reset() {
  m_.clear();
  v_.clear();
  step_count_ = 0;
  for (const auto& p : store_->parameters()) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step(const GradStore& grads) {
  ++step_count_;
  const double bc1 = 1.0 - std::pow(options_.beta1, step_count_);
  const double bc2 = 1.0 - std::pow(options_.beta2, step_count_);
  const auto& params = store_->parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    const Matrix* g = grads.Find(params[i]->param_id);
    if (g == nullptr) continue;
    Matrix& value = params[i]->value;
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (size_t k = 0; k < value.size(); ++k) {
      const double gk = g->data()[k];
      m.data()[k] = options_.beta1 * m.data()[k] + (1.0 - options_.beta1) * gk;
      v.data()[k] =
          options_.beta2 * v.data()[k] + (1.0 - options_.beta2) * gk * gk;
      const double mhat = m.data()[k] / bc1;
      const double vhat = v.data()[k] / bc2;
      double update = mhat / (std::sqrt(vhat) + options_.epsilon);
      if (options_.weight_decay > 0.0) {
        update += options_.weight_decay * value.data()[k];
      }
      value.data()[k] -= options_.learning_rate * update;
    }
  }
}

Sgd::Sgd(ParameterStore* store, Options options)
    : store_(store), options_(options) {
  for (const auto& p : store_->parameters()) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::Step(const GradStore& grads) {
  const auto& params = store_->parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    const Matrix* g = grads.Find(params[i]->param_id);
    if (g == nullptr) continue;
    Matrix& value = params[i]->value;
    if (options_.momentum > 0.0) {
      Matrix& vel = velocity_[i];
      for (size_t k = 0; k < value.size(); ++k) {
        vel.data()[k] =
            options_.momentum * vel.data()[k] - options_.learning_rate * g->data()[k];
        value.data()[k] += vel.data()[k];
      }
    } else {
      value.AddScaled(*g, -options_.learning_rate);
    }
  }
}

}  // namespace zerotune::nn
