#include "nn/optimizer.h"

#include <cmath>
#include <istream>
#include <ostream>

namespace zerotune::nn {

namespace {
constexpr char kAdamStateMagic[] = "zerotune-adam-v1";
}  // namespace

Adam::Adam(ParameterStore* store, Options options)
    : store_(store), options_(options) {
  Reset();
}

void Adam::Reset() {
  m_.clear();
  v_.clear();
  step_count_ = 0;
  for (const auto& p : store_->parameters()) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step(const GradStore& grads) {
  ++step_count_;
  const double bc1 = 1.0 - std::pow(options_.beta1, step_count_);
  const double bc2 = 1.0 - std::pow(options_.beta2, step_count_);
  const auto& params = store_->parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    const Matrix* g = grads.Find(params[i]->param_id);
    if (g == nullptr) continue;
    Matrix& value = params[i]->value;
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (size_t k = 0; k < value.size(); ++k) {
      const double gk = g->data()[k];
      m.data()[k] = options_.beta1 * m.data()[k] + (1.0 - options_.beta1) * gk;
      v.data()[k] =
          options_.beta2 * v.data()[k] + (1.0 - options_.beta2) * gk * gk;
      const double mhat = m.data()[k] / bc1;
      const double vhat = v.data()[k] / bc2;
      double update = mhat / (std::sqrt(vhat) + options_.epsilon);
      if (options_.weight_decay > 0.0) {
        update += options_.weight_decay * value.data()[k];
      }
      value.data()[k] -= options_.learning_rate * update;
    }
  }
}

Status Adam::SaveState(std::ostream& os) const {
  os.precision(17);
  os << kAdamStateMagic << " " << m_.size() << " " << step_count_ << "\n";
  for (size_t i = 0; i < m_.size(); ++i) {
    os << m_[i].rows() << " " << m_[i].cols();
    for (size_t k = 0; k < m_[i].size(); ++k) os << " " << m_[i].data()[k];
    for (size_t k = 0; k < v_[i].size(); ++k) os << " " << v_[i].data()[k];
    os << "\n";
  }
  if (!os.good()) {
    return Status::IOError("failed writing Adam optimizer state");
  }
  return Status::OK();
}

Status Adam::LoadState(std::istream& is) {
  std::string magic;
  size_t count = 0;
  long steps = 0;
  if (!(is >> magic >> count >> steps) || magic != kAdamStateMagic) {
    return Status::IOError("bad Adam state header (want '" +
                              std::string(kAdamStateMagic) + "')");
  }
  const auto& params = store_->parameters();
  if (count != params.size()) {
    return Status::IOError(
        "Adam state has " + std::to_string(count) + " parameter(s), store has " +
        std::to_string(params.size()));
  }
  std::vector<Matrix> m, v;
  m.reserve(count);
  v.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t rows = 0, cols = 0;
    if (!(is >> rows >> cols)) {
      return Status::IOError("truncated Adam state at parameter " +
                                std::to_string(i));
    }
    if (rows != params[i]->value.rows() || cols != params[i]->value.cols()) {
      return Status::IOError(
          "Adam state shape mismatch at parameter " + std::to_string(i) +
          ": state " + std::to_string(rows) + "x" + std::to_string(cols) +
          ", store " + std::to_string(params[i]->value.rows()) + "x" +
          std::to_string(params[i]->value.cols()));
    }
    Matrix mi(rows, cols), vi(rows, cols);
    for (size_t k = 0; k < mi.size(); ++k) {
      if (!(is >> mi.data()[k])) {
        return Status::IOError("truncated Adam first moment at parameter " +
                                  std::to_string(i));
      }
    }
    for (size_t k = 0; k < vi.size(); ++k) {
      if (!(is >> vi.data()[k])) {
        return Status::IOError("truncated Adam second moment at parameter " +
                                  std::to_string(i));
      }
    }
    m.push_back(std::move(mi));
    v.push_back(std::move(vi));
  }
  m_ = std::move(m);
  v_ = std::move(v);
  step_count_ = steps;
  return Status::OK();
}

Sgd::Sgd(ParameterStore* store, Options options)
    : store_(store), options_(options) {
  for (const auto& p : store_->parameters()) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::Step(const GradStore& grads) {
  const auto& params = store_->parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    const Matrix* g = grads.Find(params[i]->param_id);
    if (g == nullptr) continue;
    Matrix& value = params[i]->value;
    if (options_.momentum > 0.0) {
      Matrix& vel = velocity_[i];
      for (size_t k = 0; k < value.size(); ++k) {
        vel.data()[k] =
            options_.momentum * vel.data()[k] - options_.learning_rate * g->data()[k];
        value.data()[k] += vel.data()[k];
      }
    } else {
      value.AddScaled(*g, -options_.learning_rate);
    }
  }
}

}  // namespace zerotune::nn
