#ifndef ZEROTUNE_NN_LAYERS_H_
#define ZEROTUNE_NN_LAYERS_H_

#include <vector>

#include "common/rng.h"
#include "nn/autograd.h"

namespace zerotune::nn {

/// Activation functions supported by the layer helpers.
enum class Activation {
  kNone,
  kRelu,
  kLeakyRelu,
  kTanh,
  kSigmoid,
};

/// Applies the activation to a node (identity for kNone).
NodePtr Activate(const NodePtr& x, Activation act);

/// Value-only activation: applies the same elementwise formulas as
/// Activate() directly to a matrix, without building graph nodes. Used by
/// the batched inference path; bit-identical to the autograd version.
Matrix ActivateValue(Matrix x, Activation act);

/// Fully-connected layer y = x·W + b with parameters owned by a
/// ParameterStore. Copyable handle; the parameters live in the store.
class Linear {
 public:
  /// Allocates W (in×out) and b (1×out) in `store`.
  Linear(ParameterStore* store, size_t in_features, size_t out_features,
         zerotune::Rng* rng);

  /// x is n×in; returns n×out.
  NodePtr Forward(const NodePtr& x) const;

  /// Inference-only forward on raw values: y = x·W + b with no autograd
  /// graph, routed through the nn::kernels layer. Row r of the result
  /// never depends on the other rows, so callers may batch arbitrarily
  /// many inputs per call. Under the scalar kernels (ZEROTUNE_DISABLE_SIMD
  /// or ForceScalar) this is bit-identical to Forward() per row; under
  /// AVX2+FMA it differs only by fused rounding in the dot products (see
  /// nn/kernels.h for the bound).
  Matrix ForwardValue(const Matrix& x) const;

  /// ForwardValue with the activation fused into the bias kernel when the
  /// activation has a fused form (none/relu/leaky-relu); tanh/sigmoid fall
  /// back to ActivateValue. Same numerics contract as ForwardValue.
  Matrix ForwardValue(const Matrix& x, Activation act) const;

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }

  /// Raw parameter values, consumed by nn::QuantizedMlp's converter.
  const Matrix& weight_value() const { return weight_->value; }
  const Matrix& bias_value() const { return bias_->value; }

 private:
  size_t in_features_;
  size_t out_features_;
  NodePtr weight_;
  NodePtr bias_;
};

/// Multi-layer perceptron: Linear→act→…→Linear(→optional act).
///
/// This is the building block the paper uses for every graph node encoder
/// and for the final readout regression head.
class Mlp {
 public:
  struct Options {
    Activation activation = Activation::kLeakyRelu;
    /// Applies the activation after the final layer too (hidden encoders
    /// want this; regression heads do not).
    bool activate_output = false;
  };

  /// layer_sizes = {in, h1, ..., out}; must contain at least 2 entries.
  Mlp(ParameterStore* store, const std::vector<size_t>& layer_sizes,
      zerotune::Rng* rng)
      : Mlp(store, layer_sizes, rng, Options()) {}
  Mlp(ParameterStore* store, const std::vector<size_t>& layer_sizes,
      zerotune::Rng* rng, Options options);

  NodePtr Forward(const NodePtr& x) const;

  /// Inference-only forward on raw values (see Linear::ForwardValue):
  /// row-batched, no graph allocation. Bit-identical per row to Forward()
  /// under the scalar kernels; tolerance-equal (FMA rounding only) under
  /// SIMD.
  Matrix ForwardValue(Matrix x) const;

  size_t in_features() const { return layers_.front().in_features(); }
  size_t out_features() const { return layers_.back().out_features(); }

  /// Layer handles and options, consumed by nn::QuantizedMlp's converter.
  const std::vector<Linear>& layers() const { return layers_; }
  const Options& options() const { return options_; }

 private:
  std::vector<Linear> layers_;
  Options options_;
};

}  // namespace zerotune::nn

#endif  // ZEROTUNE_NN_LAYERS_H_
