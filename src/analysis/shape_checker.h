#ifndef ZEROTUNE_ANALYSIS_SHAPE_CHECKER_H_
#define ZEROTUNE_ANALYSIS_SHAPE_CHECKER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "nn/autograd.h"

namespace zerotune::analysis {

/// Expected shape of one parameter tensor, with the layer it belongs to
/// spelled out ("op_encoder.linear0.weight") so a mismatch names the
/// offending block instead of failing deep inside a matmul.
struct LayerShape {
  std::string name;
  size_t rows = 0;
  size_t cols = 0;
};

/// Symbolic shape inference for the ZeroTune GNN. From the model config
/// alone (hidden width plus the three feature-vector dimensions) it derives
/// the full named parameter list in ParameterStore creation order — per
/// Linear: weight (in×out) then bias (1×out); per Mlp: its Linears in
/// sequence; blocks in constructor order. That lets model files be
/// verified against the architecture before any tensor is materialized.
///
/// Diagnostic codes:
///   ZT-M001 parameter count mismatch      ZT-M003 layer shape mismatch
///   ZT-M002 truncated parameter stream    ZT-M004 bad parameter header
class GnnShapeSpec {
 public:
  /// Appends one Linear layer (weight then bias).
  void AddLinear(const std::string& name, size_t in, size_t out);
  /// Appends an MLP with sizes {in, h1, ..., out} as linear0, linear1, ...
  void AddMlp(const std::string& name, const std::vector<size_t>& sizes);

  const std::vector<LayerShape>& layers() const { return layers_; }
  /// Number of parameter tensors (2 per Linear).
  size_t num_tensors() const { return layers_.size(); }

  /// The eight-block architecture of core::ZeroTuneModel, mirroring its
  /// constructor: op/res encoders, staged message passing, readout head.
  /// Dimensions are passed in so this layer needs no dependency on core.
  static GnnShapeSpec ForZeroTune(size_t hidden_dim, size_t operator_dim,
                                  size_t resource_dim, size_t mapping_dim);

  /// Verifies a "zerotune-params-v1" stream against the expected shapes
  /// without loading any values. Reports every shape mismatch it can reach
  /// (truncation necessarily stops the scan).
  DiagnosticReport VerifyParamStream(std::istream& is) const;

  /// Verifies a live ParameterStore (e.g. after construction) against the
  /// spec; catches architecture drift between model and checker.
  DiagnosticReport VerifyStore(const nn::ParameterStore& store) const;

 private:
  std::vector<LayerShape> layers_;
};

}  // namespace zerotune::analysis

#endif  // ZEROTUNE_ANALYSIS_SHAPE_CHECKER_H_
