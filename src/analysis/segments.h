#ifndef ZEROTUNE_ANALYSIS_SEGMENTS_H_
#define ZEROTUNE_ANALYSIS_SEGMENTS_H_

#include <string>
#include <vector>

#include "analysis/plan_analyzer.h"
#include "common/status.h"
#include "dsp/query_plan.h"

namespace zerotune::analysis {

/// Parallel design pattern a plan segment instantiates, mirroring the
/// compositional performance-modeling taxonomy of Czappa et al. (extra-p
/// CompositionalPerformanceAnalyzer): closed-form cost models compose
/// along Pipeline / MapReduce / TaskPool patterns.
///
///   kPipeline  — a chain of record-at-a-time operators (source, filters)
///                connected by forward-compatible edges; cost composes as
///                a sum of per-stage service times.
///   kMapReduce — a keyed repartition into windowed state (window
///                aggregate): map side emits into a hash shuffle, reduce
///                side fires per window; cost is shuffle + reduce.
///   kTaskPool  — a multi-input synchronization point (window join):
///                tasks (window matches) are drawn from competing input
///                queues by a worker pool; cost follows the slowest input.
enum class SegmentKind { kPipeline, kMapReduce, kTaskPool };

const char* ToString(SegmentKind kind);

/// One segment of the decomposition: a maximal operator group that
/// instantiates a single parallel pattern. Operator ids appear in
/// topological order; every plan operator belongs to exactly one segment.
struct PlanSegment {
  SegmentKind kind = SegmentKind::kPipeline;
  std::vector<int> operator_ids;
  /// Operators in the segment that are neither source nor sink.
  size_t processing_operators = 0;
  /// True when the plan's sink lies in this segment.
  bool contains_sink = false;

  /// True when the segment terminates the plan (holds the sink) yet has
  /// no processing operator — the "pipeline" of a bare source→sink plan.
  /// Such a segment carries no tunable work and gives analytical cost
  /// fitting nothing to model (diagnosed as ZT-P026). A source-only
  /// pipeline feeding a downstream join/aggregate is *not* degenerate:
  /// it is the map side of that pattern.
  bool IsDegenerate() const {
    return contains_sink && processing_operators == 0;
  }

  std::string ToString(const dsp::QueryPlan& plan) const;
};

/// Decomposes a logical plan into pattern segments by a single
/// topological sweep:
///   - every window join starts a kTaskPool segment of its own;
///   - every window aggregate starts a kMapReduce segment of its own
///     (the keyed shuffle boundary in front of it is what separates it
///     from its upstream pipeline);
///   - sources and filters grow kPipeline segments along single-in /
///     single-out edges;
///   - the sink joins its upstream operator's segment (it terminates
///     whatever pattern feeds it rather than forming one).
///
/// Requires a structurally valid plan (Validate() ok); the analyzer's
/// ZT-P026 path uses the LintPlan overload below, which degrades
/// gracefully on malformed graphs instead.
Result<std::vector<PlanSegment>> DecomposeSegments(const dsp::QueryPlan& plan);

/// Tolerant variant for the linter: works on the raw LintPlan graph and
/// simply returns an empty decomposition when the graph is too broken to
/// sweep (cycles, dangling references), leaving those to ZT-P004..P008.
std::vector<PlanSegment> DecomposeSegments(const LintPlan& plan);

}  // namespace zerotune::analysis

#endif  // ZEROTUNE_ANALYSIS_SEGMENTS_H_
