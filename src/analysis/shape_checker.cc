#include "analysis/shape_checker.h"

#include <algorithm>
#include <istream>

namespace zerotune::analysis {

namespace {

std::string Shape(size_t rows, size_t cols) {
  return std::to_string(rows) + "x" + std::to_string(cols);
}

}  // namespace

void GnnShapeSpec::AddLinear(const std::string& name, size_t in, size_t out) {
  layers_.push_back({name + ".weight", in, out});
  layers_.push_back({name + ".bias", 1, out});
}

void GnnShapeSpec::AddMlp(const std::string& name,
                          const std::vector<size_t>& sizes) {
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    AddLinear(name + ".linear" + std::to_string(i), sizes[i], sizes[i + 1]);
  }
}

GnnShapeSpec GnnShapeSpec::ForZeroTune(size_t hidden_dim, size_t operator_dim,
                                       size_t resource_dim,
                                       size_t mapping_dim) {
  const size_t h = hidden_dim;
  GnnShapeSpec spec;
  spec.AddMlp("op_encoder", {operator_dim, h, h});
  spec.AddMlp("res_encoder", {resource_dim, h, h});
  spec.AddMlp("flow_update", {2 * h, h, h});
  spec.AddMlp("res_update", {2 * h, h, h});
  spec.AddMlp("map_message", {h + mapping_dim, h, h});
  spec.AddMlp("map_update", {2 * h, h, h});
  spec.AddMlp("flow_update2", {2 * h, h, h});
  spec.AddMlp("readout", {h, h, 2});
  return spec;
}

DiagnosticReport GnnShapeSpec::VerifyParamStream(std::istream& is) const {
  DiagnosticReport report;
  std::string magic;
  size_t count = 0;
  is >> magic >> count;
  if (!is || magic != "zerotune-params-v1") {
    report.AddError("ZT-M004",
                    "bad parameter stream header (want zerotune-params-v1)",
                    -1, "", "the file is not a serialized parameter store");
    return report;
  }
  if (count != layers_.size()) {
    report.AddError(
        "ZT-M001",
        "parameter count mismatch: file has " + std::to_string(count) +
            " tensors, architecture expects " +
            std::to_string(layers_.size()),
        -1, "",
        "the file was saved by a different architecture or feature config");
  }
  const size_t check = std::min(count, layers_.size());
  for (size_t i = 0; i < check; ++i) {
    const LayerShape& want = layers_[i];
    size_t rows = 0, cols = 0;
    is >> rows >> cols;
    if (!is) {
      report.AddError("ZT-M002",
                      "parameter stream truncated at tensor " +
                          std::to_string(i) + " (" + want.name + ")",
                      -1, "", "the model file is incomplete or corrupt");
      return report;
    }
    if (rows != want.rows || cols != want.cols) {
      report.AddError("ZT-M003",
                      "layer " + want.name + " has shape " +
                          Shape(rows, cols) + ", architecture expects " +
                          Shape(want.rows, want.cols),
                      -1, "",
                      "hidden_dim or feature dimensions differ from the "
                      "saved model");
      // The declared shape is still used to skip to the next tensor
      // boundary, but only when it is small enough to trust; an absurd
      // declared size means the stream is garbage past this point.
      const bool plausible = rows > 0 && cols > 0 && rows * cols <= (1u << 26);
      if (!plausible) return report;
    }
    // Skip the declared number of values to reach the next tensor.
    double v = 0.0;
    for (size_t k = 0; k < rows * cols; ++k) {
      is >> v;
      if (!is) {
        report.AddError("ZT-M002",
                        "parameter stream truncated inside tensor " +
                            want.name,
                        -1, "", "the model file is incomplete or corrupt");
        return report;
      }
    }
  }
  return report;
}

DiagnosticReport GnnShapeSpec::VerifyStore(
    const nn::ParameterStore& store) const {
  DiagnosticReport report;
  const auto& params = store.parameters();
  if (params.size() != layers_.size()) {
    report.AddError("ZT-M001",
                    "store holds " + std::to_string(params.size()) +
                        " tensors, architecture expects " +
                        std::to_string(layers_.size()),
                    -1, "", "model and shape spec disagree on architecture");
  }
  const size_t check = std::min(params.size(), layers_.size());
  for (size_t i = 0; i < check; ++i) {
    const LayerShape& want = layers_[i];
    const nn::Matrix& got = params[i]->value;
    if (got.rows() != want.rows || got.cols() != want.cols) {
      report.AddError("ZT-M003",
                      "layer " + want.name + " has shape " +
                          Shape(got.rows(), got.cols()) +
                          ", spec expects " + Shape(want.rows, want.cols),
                      -1, "", "model and shape spec disagree on dimensions");
    }
  }
  return report;
}

}  // namespace zerotune::analysis
