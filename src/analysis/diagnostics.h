#ifndef ZEROTUNE_ANALYSIS_DIAGNOSTICS_H_
#define ZEROTUNE_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace zerotune::analysis {

/// How bad a finding is. Errors make a plan unusable for prediction or
/// deployment; warnings flag configurations that load but are suspicious
/// (out of the trained envelope, wasteful partitioning, ...).
enum class Severity {
  kWarning = 0,
  kError = 1,
};

const char* ToString(Severity s);

/// One finding of the static analyzers. Diagnostic codes are stable
/// across releases (ZT-Pxxx for plan checks, ZT-Mxxx for model shape
/// checks) so scripts can match on them; messages may be reworded.
struct Diagnostic {
  Severity severity = Severity::kError;
  /// Stable code, e.g. "ZT-P015". Catalogued in docs/static_analysis.md.
  std::string code;
  /// What is wrong, with concrete values.
  std::string message;
  /// Operator id the finding is anchored to, or -1 for plan-level issues.
  int op_id = -1;
  /// Operator name when known (empty for plan-level issues).
  std::string op_name;
  /// How to fix it (may be empty).
  std::string hint;

  /// "error ZT-P015 [op 2 filter_2] parallelism 64 exceeds ... (fix: ...)"
  std::string ToString() const;
};

/// The outcome of one analyzer pass: every finding, in check order. The
/// analyzers never stop at the first problem — a broken plan reports all
/// its defects in one pass.
class DiagnosticReport {
 public:
  void Add(Severity severity, std::string code, std::string message,
           int op_id = -1, std::string op_name = "", std::string hint = "");
  void AddError(std::string code, std::string message, int op_id = -1,
                std::string op_name = "", std::string hint = "");
  void AddWarning(std::string code, std::string message, int op_id = -1,
                  std::string op_name = "", std::string hint = "");

  /// Appends all findings of `other` to this report.
  void Merge(const DiagnosticReport& other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  size_t error_count() const;
  size_t warning_count() const;
  bool HasErrors() const { return error_count() > 0; }
  bool Clean() const { return diags_.empty(); }

  /// True when any finding carries `code`.
  bool Has(const std::string& code) const;

  /// One diagnostic per line plus a summary line.
  std::string ToText() const;
  /// {"diagnostics": [...], "errors": N, "warnings": M}
  std::string ToJson() const;

  /// OK when there are no errors; otherwise an InvalidArgument whose
  /// message lists every error finding (codes included). Lets Status-based
  /// load paths surface structured findings without a new channel.
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace zerotune::analysis

#endif  // ZEROTUNE_ANALYSIS_DIAGNOSTICS_H_
