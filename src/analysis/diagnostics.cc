#include "analysis/diagnostics.h"

#include <sstream>

namespace zerotune::analysis {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

const char* ToString(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << analysis::ToString(severity) << " " << code;
  if (op_id >= 0) {
    os << " [op " << op_id;
    if (!op_name.empty()) os << " " << op_name;
    os << "]";
  }
  os << " " << message;
  if (!hint.empty()) os << " (fix: " << hint << ")";
  return os.str();
}

void DiagnosticReport::Add(Severity severity, std::string code,
                           std::string message, int op_id,
                           std::string op_name, std::string hint) {
  Diagnostic d;
  d.severity = severity;
  d.code = std::move(code);
  d.message = std::move(message);
  d.op_id = op_id;
  d.op_name = std::move(op_name);
  d.hint = std::move(hint);
  diags_.push_back(std::move(d));
}

void DiagnosticReport::AddError(std::string code, std::string message,
                                int op_id, std::string op_name,
                                std::string hint) {
  Add(Severity::kError, std::move(code), std::move(message), op_id,
      std::move(op_name), std::move(hint));
}

void DiagnosticReport::AddWarning(std::string code, std::string message,
                                  int op_id, std::string op_name,
                                  std::string hint) {
  Add(Severity::kWarning, std::move(code), std::move(message), op_id,
      std::move(op_name), std::move(hint));
}

void DiagnosticReport::Merge(const DiagnosticReport& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

size_t DiagnosticReport::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

size_t DiagnosticReport::warning_count() const {
  return diags_.size() - error_count();
}

bool DiagnosticReport::Has(const std::string& code) const {
  for (const Diagnostic& d : diags_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string DiagnosticReport::ToText() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << d.ToString() << "\n";
  }
  os << error_count() << " error(s), " << warning_count() << " warning(s)\n";
  return os.str();
}

std::string DiagnosticReport::ToJson() const {
  std::ostringstream os;
  os << "{\"diagnostics\": [";
  for (size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    os << (i > 0 ? ", " : "") << "{\"severity\": \""
       << analysis::ToString(d.severity) << "\", \"code\": \""
       << JsonEscape(d.code) << "\", \"operator\": " << d.op_id
       << ", \"operator_name\": \"" << JsonEscape(d.op_name)
       << "\", \"message\": \"" << JsonEscape(d.message)
       << "\", \"hint\": \"" << JsonEscape(d.hint) << "\"}";
  }
  os << "], \"errors\": " << error_count()
     << ", \"warnings\": " << warning_count() << "}";
  return os.str();
}

Status DiagnosticReport::ToStatus() const {
  if (!HasErrors()) return Status::OK();
  std::ostringstream os;
  os << error_count() << " static-analysis error(s):";
  for (const Diagnostic& d : diags_) {
    if (d.severity != Severity::kError) continue;
    os << " [" << d.code << "] " << d.message << ";";
  }
  return Status::InvalidArgument(os.str());
}

}  // namespace zerotune::analysis
