#ifndef ZEROTUNE_ANALYSIS_PLAN_LINTER_H_
#define ZEROTUNE_ANALYSIS_PLAN_LINTER_H_

#include <iosfwd>
#include <string>

#include "analysis/diagnostics.h"
#include "analysis/plan_analyzer.h"

namespace zerotune::analysis {

/// Tolerant front end for `zerotune lint`: parses the plan text format of
/// dsp::PlanIO into a LintPlan without rejecting malformed graphs, then
/// runs every PlanAnalyzer check. Where the strict loader stops at the
/// first bad line, the linter records a ZT-P025 finding per unparseable
/// line, keeps whatever it could extract, and reports all structural and
/// semantic defects of the rest in the same pass — that is what makes
/// cycles, dangling references, and duplicate ids (unconstructible through
/// the QueryPlan builder API) diagnosable from a file.
struct PlanLinter {
  /// Parses `is` into analyzer form, appending parse findings to `report`.
  static LintPlan Parse(std::istream& is, DiagnosticReport* report);

  /// Parses and analyzes a stream: parse findings + analyzer findings.
  static DiagnosticReport Lint(std::istream& is);

  /// Lints a plan file. Only I/O failures (unreadable path) surface as a
  /// non-OK Status; everything wrong *inside* the file is a diagnostic.
  static Result<DiagnosticReport> LintFile(const std::string& path);
};

}  // namespace zerotune::analysis

#endif  // ZEROTUNE_ANALYSIS_PLAN_LINTER_H_
