#include "analysis/plan_linter.h"

#include <fstream>
#include <istream>
#include <sstream>

#include "dsp/plan_text.h"

namespace zerotune::analysis {

namespace {

using dsp::OperatorType;
using dsp::PartitioningStrategy;
using dsp::plan_text::GetDouble;
using dsp::plan_text::GetInt;
using dsp::plan_text::GetString;
using dsp::plan_text::ParseFields;
using dsp::plan_text::ParseIntList;
using dsp::plan_text::ReadWindow;

constexpr char kPlanMagic[] = "zerotune-plan-v1";
/// Same cap as the strict loader: a corrupt file must not drive unbounded
/// allocation even in the tolerant path.
constexpr size_t kMaxOperators = 100'000;
constexpr size_t kMaxNodes = 100'000;

void AddParseError(DiagnosticReport* report, size_t line_no,
                   const std::string& detail) {
  report->AddError("ZT-P025",
                   "line " + std::to_string(line_no) + ": " + detail, -1, "",
                   "see the plan format in dsp/plan_io.h");
}

}  // namespace

LintPlan PlanLinter::Parse(std::istream& is, DiagnosticReport* report) {
  LintPlan plan;
  std::string line;
  size_t line_no = 0;

  if (!std::getline(is, line) || line != kPlanMagic) {
    AddParseError(report, 1,
                  "bad plan header (want " + std::string(kPlanMagic) + ")");
    // A missing magic line usually means the wrong file entirely; there is
    // nothing meaningful to lint beyond it.
    return plan;
  }
  ++line_no;

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;

    // Each line parses inside a lambda so one Status check per line covers
    // every field access; a failed line becomes ZT-P025 and is dropped,
    // and the analyzer then reports whatever holes that leaves (dangling
    // references etc.) alongside.
    auto parse_line = [&]() -> Status {
      ZT_ASSIGN_OR_RETURN(const auto fields, ParseFields(ls));
      if (kind == "cluster") {
        if (plan.nodes.size() >= kMaxNodes) {
          return Status::InvalidArgument("too many cluster nodes");
        }
        plan.has_physical = true;
        dsp::NodeResources n;
        ZT_ASSIGN_OR_RETURN(n.type_name, GetString(fields, "node"));
        ZT_ASSIGN_OR_RETURN(n.cpu_cores, GetInt(fields, "cores"));
        ZT_ASSIGN_OR_RETURN(n.cpu_ghz, GetDouble(fields, "ghz"));
        ZT_ASSIGN_OR_RETURN(n.memory_gb, GetDouble(fields, "mem"));
        ZT_ASSIGN_OR_RETURN(n.network_gbps, GetDouble(fields, "net"));
        plan.nodes.push_back(std::move(n));
        return Status::OK();
      }
      if (kind == "deploy") {
        plan.has_physical = true;
        ZT_ASSIGN_OR_RETURN(const int id, GetInt(fields, "id"));
        LintOperator* target = nullptr;
        for (LintOperator& op : plan.operators) {
          if (op.id == id) {
            target = &op;
            break;
          }
        }
        if (target == nullptr) {
          report->AddError("ZT-P005",
                           "deploy line references unknown operator " +
                               std::to_string(id),
                           id, "", "deploy ids must match declared operators");
          return Status::OK();
        }
        ZT_ASSIGN_OR_RETURN(target->parallelism, GetInt(fields, "p"));
        ZT_ASSIGN_OR_RETURN(const int part, GetInt(fields, "part"));
        if (part < 0 || part > 2) {
          return Status::InvalidArgument("bad partitioning enum " +
                                         std::to_string(part));
        }
        target->partitioning = static_cast<PartitioningStrategy>(part);
        if (fields.count("nodes") > 0) {
          ZT_ASSIGN_OR_RETURN(const std::string ns, GetString(fields, "nodes"));
          ZT_ASSIGN_OR_RETURN(target->instance_nodes, ParseIntList(ns));
        }
        return Status::OK();
      }

      if (plan.operators.size() >= kMaxOperators) {
        return Status::InvalidArgument("too many operators");
      }
      LintOperator op;
      ZT_ASSIGN_OR_RETURN(op.id, GetInt(fields, "id"));
      if (kind == "source") {
        op.type = OperatorType::kSource;
        ZT_ASSIGN_OR_RETURN(op.event_rate, GetDouble(fields, "rate"));
        ZT_ASSIGN_OR_RETURN(const std::string schema,
                            GetString(fields, "schema"));
        op.schema_width = schema.size();
      } else if (kind == "filter") {
        op.type = OperatorType::kFilter;
        ZT_ASSIGN_OR_RETURN(const int in, GetInt(fields, "in"));
        op.upstreams = {in};
        ZT_ASSIGN_OR_RETURN(op.selectivity, GetDouble(fields, "sel"));
        op.has_selectivity = true;
      } else if (kind == "aggregate") {
        op.type = OperatorType::kWindowAggregate;
        ZT_ASSIGN_OR_RETURN(const int in, GetInt(fields, "in"));
        op.upstreams = {in};
        ZT_ASSIGN_OR_RETURN(const int keyed, GetInt(fields, "keyed"));
        op.keyed = keyed != 0;
        ZT_ASSIGN_OR_RETURN(op.window, ReadWindow(fields));
        op.has_window = true;
        ZT_ASSIGN_OR_RETURN(op.selectivity, GetDouble(fields, "sel"));
        op.has_selectivity = true;
      } else if (kind == "join") {
        op.type = OperatorType::kWindowJoin;
        ZT_ASSIGN_OR_RETURN(const std::string ins, GetString(fields, "in"));
        ZT_ASSIGN_OR_RETURN(op.upstreams, ParseIntList(ins));
        op.keyed = true;
        ZT_ASSIGN_OR_RETURN(op.window, ReadWindow(fields));
        op.has_window = true;
        ZT_ASSIGN_OR_RETURN(op.selectivity, GetDouble(fields, "sel"));
        op.has_selectivity = true;
      } else if (kind == "sink") {
        op.type = OperatorType::kSink;
        ZT_ASSIGN_OR_RETURN(const int in, GetInt(fields, "in"));
        op.upstreams = {in};
      } else {
        return Status::InvalidArgument("unknown line kind: " + kind);
      }
      op.name = kind + "_" + std::to_string(op.id);
      plan.operators.push_back(std::move(op));
      return Status::OK();
    };

    const Status parsed = parse_line();
    if (!parsed.ok()) AddParseError(report, line_no, parsed.message());
  }
  return plan;
}

DiagnosticReport PlanLinter::Lint(std::istream& is) {
  DiagnosticReport report;
  const LintPlan plan = Parse(is, &report);
  report.Merge(PlanAnalyzer::Analyze(plan));
  return report;
}

Result<DiagnosticReport> PlanLinter::LintFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  return Lint(f);
}

}  // namespace zerotune::analysis
