#include "analysis/plan_analyzer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "analysis/segments.h"

namespace zerotune::analysis {

namespace {

using dsp::OperatorType;
using dsp::PartitioningStrategy;

/// Trained envelope of the paper's Table I parameter ranges; values
/// outside still predict, but transferability is not established there.
constexpr double kMinEventRate = 50.0;
constexpr double kMaxEventRate = 4e6;
constexpr double kMinWindowLength = 2.0;
constexpr double kMaxWindowLength = 1e4;

size_t ExpectedArity(OperatorType type) {
  switch (type) {
    case OperatorType::kSource: return 0;
    case OperatorType::kFilter: return 1;
    case OperatorType::kWindowAggregate: return 1;
    case OperatorType::kWindowJoin: return 2;
    case OperatorType::kSink: return 1;
  }
  return 0;
}

bool IsKeyed(const LintOperator& op) {
  return op.type == OperatorType::kWindowJoin ||
         (op.type == OperatorType::kWindowAggregate && op.keyed);
}

std::string Num(double v) {
  // Trim "50.000000" to "50" for readable messages.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return std::to_string(v);
}

/// Structural checks: ids, edges, DAG-ness, reachability.
void CheckStructure(const LintPlan& plan, DiagnosticReport* report) {
  std::unordered_map<int, size_t> index;
  for (size_t i = 0; i < plan.operators.size(); ++i) {
    const LintOperator& op = plan.operators[i];
    if (!index.emplace(op.id, i).second) {
      report->AddError("ZT-P004",
                       "duplicate operator id " + std::to_string(op.id),
                       op.id, op.name, "give every operator a unique id");
    }
  }

  size_t num_sources = 0;
  std::vector<int> sinks;
  for (const LintOperator& op : plan.operators) {
    if (op.type == OperatorType::kSource) ++num_sources;
    if (op.type == OperatorType::kSink) sinks.push_back(op.id);

    const size_t want = ExpectedArity(op.type);
    if (op.upstreams.size() != want) {
      report->AddError(
          "ZT-P008",
          std::string(dsp::ToString(op.type)) + " has " +
              std::to_string(op.upstreams.size()) + " upstream(s), expected " +
              std::to_string(want),
          op.id, op.name, "rewire the operator's inputs");
    }
    for (int u : op.upstreams) {
      if (index.count(u) == 0) {
        report->AddError("ZT-P005",
                         "upstream reference to unknown operator " +
                             std::to_string(u),
                         op.id, op.name,
                         "reference an operator declared in this plan");
      } else if (u == op.id) {
        report->AddError("ZT-P006", "operator consumes its own output",
                         op.id, op.name, "remove the self-loop");
      }
    }
  }
  if (num_sources == 0) {
    report->AddError("ZT-P002", "plan has no source operator", -1, "",
                     "add at least one source");
  }
  if (sinks.size() != 1) {
    report->AddError("ZT-P003",
                     "plan has " + std::to_string(sinks.size()) +
                         " sinks, expected exactly 1",
                     -1, "", "terminate the query in a single sink");
  }

  // Cycle detection (Kahn): repeatedly peel operators whose every valid
  // upstream is already peeled; whatever remains sits on a cycle.
  std::unordered_map<int, size_t> in_degree;
  std::unordered_map<int, std::vector<int>> downstream;
  for (const LintOperator& op : plan.operators) {
    in_degree.try_emplace(op.id, 0);
    for (int u : op.upstreams) {
      if (index.count(u) == 0 || u == op.id) continue;  // reported above
      ++in_degree[op.id];
      downstream[u].push_back(op.id);
    }
  }
  std::vector<int> frontier;
  for (const auto& [id, deg] : in_degree) {
    if (deg == 0) frontier.push_back(id);
  }
  size_t peeled = 0;
  while (!frontier.empty()) {
    const int id = frontier.back();
    frontier.pop_back();
    ++peeled;
    for (int d : downstream[id]) {
      if (--in_degree[d] == 0) frontier.push_back(d);
    }
  }
  if (peeled < in_degree.size()) {
    std::vector<int> cyclic;
    for (const auto& [id, deg] : in_degree) {
      if (deg > 0) cyclic.push_back(id);
    }
    std::sort(cyclic.begin(), cyclic.end());
    std::string ids;
    for (int id : cyclic) ids += (ids.empty() ? "" : ",") + std::to_string(id);
    report->AddError("ZT-P006",
                     "cycle in the operator graph involving operators {" +
                         ids + "}",
                     cyclic.front(), "",
                     "streaming plans must be DAGs; break the back edge");
  }

  // Reachability: every operator must feed (transitively) into the sink.
  if (sinks.size() == 1) {
    std::unordered_set<int> reaches;
    std::vector<int> stack = {sinks.front()};
    reaches.insert(sinks.front());
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      const auto it = index.find(id);
      if (it == index.end()) continue;
      for (int u : plan.operators[it->second].upstreams) {
        if (index.count(u) > 0 && reaches.insert(u).second) {
          stack.push_back(u);
        }
      }
    }
    for (const LintOperator& op : plan.operators) {
      if (reaches.count(op.id) == 0) {
        report->AddError("ZT-P007",
                         "operator output never reaches the sink", op.id,
                         op.name,
                         "connect it downstream or remove dead operators");
      }
    }
  }
}

/// Table I feature-range checks per operator.
void CheckFeatures(const LintPlan& plan, DiagnosticReport* report) {
  for (const LintOperator& op : plan.operators) {
    if (op.type == OperatorType::kSource) {
      if (!(op.event_rate > 0.0) || !std::isfinite(op.event_rate)) {
        report->AddError("ZT-P010",
                         "source event rate " + Num(op.event_rate) +
                             " must be positive and finite",
                         op.id, op.name, "set rate > 0");
      } else if (op.event_rate < kMinEventRate ||
                 op.event_rate > kMaxEventRate) {
        report->AddWarning(
            "ZT-P014",
            "event rate " + Num(op.event_rate) +
                " outside the trained envelope [" + Num(kMinEventRate) +
                ", " + Num(kMaxEventRate) + "]; predictions are extrapolating",
            op.id, op.name, "retrain with matching ranges or adjust the rate");
      }
      if (op.schema_width == 0) {
        report->AddError("ZT-P011", "source schema has no fields", op.id,
                         op.name, "declare at least one tuple field");
      }
    }
    if (op.has_selectivity &&
        (op.selectivity < 0.0 || op.selectivity > 1.0 ||
         !std::isfinite(op.selectivity))) {
      report->AddError("ZT-P009",
                       "selectivity " + std::to_string(op.selectivity) +
                           " outside [0, 1]",
                       op.id, op.name,
                       "selectivities are fractions of passing tuples");
    }
    if (op.has_window) {
      if (op.window.length <= 0.0 || op.window.slide <= 0.0) {
        report->AddError("ZT-P012",
                         "window length/slide must be positive (got length=" +
                             Num(op.window.length) +
                             ", slide=" + Num(op.window.slide) + ")",
                         op.id, op.name, "use positive window parameters");
      } else {
        if (op.window.type == dsp::WindowType::kTumbling &&
            op.window.slide != op.window.length) {
          report->AddWarning(
              "ZT-P013",
              "tumbling window with slide " + Num(op.window.slide) +
                  " != length " + Num(op.window.length),
              op.id, op.name,
              "tumbling windows slide by their full length; use a sliding "
              "window or set slide = length");
        }
        if (op.window.length < kMinWindowLength ||
            op.window.length > kMaxWindowLength) {
          report->AddWarning(
              "ZT-P014",
              "window length " + Num(op.window.length) +
                  " outside the trained envelope [" + Num(kMinWindowLength) +
                  ", " + Num(kMaxWindowLength) + "]",
              op.id, op.name,
              "retrain with matching ranges or adjust the window");
        }
      }
    }
  }
}

/// Parallelism / partitioning / placement checks against the cluster.
void CheckPhysical(const LintPlan& plan, DiagnosticReport* report) {
  if (plan.nodes.empty()) {
    report->AddError("ZT-P023", "deployment has no cluster nodes", -1, "",
                     "declare at least one cluster node");
  }
  const int total_cores = plan.TotalCores();

  std::unordered_map<int, const LintOperator*> by_id;
  for (const LintOperator& op : plan.operators) by_id.emplace(op.id, &op);

  // Instances mapped per node, for the oversubscription warning.
  std::unordered_map<int, int> node_load;

  for (const LintOperator& op : plan.operators) {
    if (op.parallelism < 1) {
      report->AddError("ZT-P015",
                       "parallelism " + std::to_string(op.parallelism) +
                           " must be >= 1",
                       op.id, op.name, "degrees start at 1");
    }
    if (total_cores > 0 && op.parallelism > total_cores) {
      report->AddError(
          "ZT-P016",
          "parallelism " + std::to_string(op.parallelism) +
              " exceeds the cluster's " + std::to_string(total_cores) +
              " total cores",
          op.id, op.name,
          "cap degrees at the cluster core count (paper Sec. III-C3)");
    }
    if (IsKeyed(op) && op.parallelism > 1 &&
        op.partitioning != PartitioningStrategy::kHash) {
      report->AddError(
          "ZT-P017",
          std::string("keyed ") + dsp::ToString(op.type) + " with degree " +
              std::to_string(op.parallelism) + " uses " +
              dsp::ToString(op.partitioning) + " partitioning",
          op.id, op.name,
          "keyed state requires hash partitioning when parallelized");
    }
    if (!IsKeyed(op) && op.type != OperatorType::kSource &&
        op.partitioning == PartitioningStrategy::kHash) {
      report->AddWarning(
          "ZT-P018",
          "hash partitioning on an operator without keyed state", op.id,
          op.name, "rebalance/forward avoids needless key shuffling");
    }
    if (op.partitioning == PartitioningStrategy::kForward &&
        op.type != OperatorType::kSource) {
      const LintOperator* up = op.upstreams.size() == 1
                                   ? (by_id.count(op.upstreams[0])
                                          ? by_id[op.upstreams[0]]
                                          : nullptr)
                                   : nullptr;
      if (up == nullptr || up->parallelism != op.parallelism) {
        report->AddWarning(
            "ZT-P019",
            "forward partitioning needs a single upstream with the same "
            "degree" +
                (up ? " (upstream degree " +
                          std::to_string(up->parallelism) + " != " +
                          std::to_string(op.parallelism) + ")"
                    : std::string()),
            op.id, op.name, "use rebalance or align the degrees");
      }
    }
    if (!op.instance_nodes.empty()) {
      if (static_cast<int>(op.instance_nodes.size()) != op.parallelism) {
        report->AddError(
            "ZT-P020",
            "placement lists " + std::to_string(op.instance_nodes.size()) +
                " instance nodes for degree " +
                std::to_string(op.parallelism),
            op.id, op.name, "place exactly one node per instance");
      }
      for (int n : op.instance_nodes) {
        if (n < 0 || n >= static_cast<int>(plan.nodes.size())) {
          report->AddError("ZT-P021",
                           "instance placed on unknown cluster node " +
                               std::to_string(n),
                           op.id, op.name,
                           "node indices address the cluster section");
        } else {
          ++node_load[n];
        }
      }
    }
    if ((op.type == OperatorType::kSource ||
         op.type == OperatorType::kSink) &&
        op.parallelism > 1) {
      report->AddWarning("ZT-P024",
                         std::string(dsp::ToString(op.type)) + " has degree " +
                             std::to_string(op.parallelism),
                         op.id, op.name,
                         "the paper pins sources and sinks at degree 1");
    }
  }

  for (const auto& [node, load] : node_load) {
    const int cores = plan.nodes[static_cast<size_t>(node)].cpu_cores;
    if (load > cores) {
      report->AddWarning(
          "ZT-P022",
          "node " + std::to_string(node) + " hosts " + std::to_string(load) +
              " operator instances on " + std::to_string(cores) + " cores",
          -1, "", "oversubscribed slots contend for CPU; spread placements");
    }
  }
}

/// ZT-P026: pattern-segment decomposition sanity. A segment with zero
/// processing operators (e.g. a bare source→sink "pipeline") carries no
/// tunable work, so the analytical prescreen tier cannot fit a cost
/// closure for it and parallelism tuning degenerates to a no-op. The
/// decomposition is skipped on structurally broken graphs — those are
/// ZT-P004..P008 territory.
void CheckSegments(const LintPlan& plan, DiagnosticReport* report) {
  const std::vector<PlanSegment> segments = DecomposeSegments(plan);
  for (const PlanSegment& seg : segments) {
    if (!seg.IsDegenerate()) continue;
    std::string ids;
    for (int id : seg.operator_ids) {
      ids += (ids.empty() ? "" : ",") + std::to_string(id);
    }
    report->AddWarning(
        "ZT-P026",
        std::string("degenerate ") + ToString(seg.kind) +
            " segment {" + ids + "} has no processing operators",
        seg.operator_ids.empty() ? -1 : seg.operator_ids.front(), "",
        "a segment of only sources/sinks gives the analytical cost tier "
        "nothing to model; add a filter/aggregate/join or merge the plan");
  }
}

}  // namespace

LintPlan LintPlan::FromLogical(const dsp::QueryPlan& plan) {
  LintPlan out;
  out.operators.reserve(plan.num_operators());
  for (const dsp::Operator& op : plan.operators()) {
    LintOperator lo;
    lo.id = op.id;
    lo.type = op.type;
    lo.name = op.name;
    lo.upstreams = plan.upstreams(op.id);
    switch (op.type) {
      case OperatorType::kSource:
        lo.event_rate = op.source.event_rate;
        lo.schema_width = op.source.schema.width();
        break;
      case OperatorType::kFilter:
        lo.selectivity = op.filter.selectivity;
        lo.has_selectivity = true;
        break;
      case OperatorType::kWindowAggregate:
        lo.selectivity = op.aggregate.selectivity;
        lo.has_selectivity = true;
        lo.window = op.aggregate.window;
        lo.has_window = true;
        lo.keyed = op.aggregate.keyed;
        break;
      case OperatorType::kWindowJoin:
        lo.selectivity = op.join.selectivity;
        lo.has_selectivity = true;
        lo.window = op.join.window;
        lo.has_window = true;
        lo.keyed = true;
        break;
      case OperatorType::kSink:
        break;
    }
    out.operators.push_back(std::move(lo));
  }
  return out;
}

LintPlan LintPlan::FromParallel(const dsp::ParallelQueryPlan& plan) {
  LintPlan out = FromLogical(plan.logical());
  out.nodes = plan.cluster().nodes();
  out.has_physical = true;
  for (LintOperator& lo : out.operators) {
    const dsp::OperatorPlacement& p = plan.placement(lo.id);
    lo.parallelism = p.parallelism;
    lo.partitioning = p.partitioning;
    lo.instance_nodes = p.instance_nodes;
  }
  return out;
}

int LintPlan::TotalCores() const {
  int total = 0;
  for (const dsp::NodeResources& n : nodes) total += n.cpu_cores;
  return total;
}

DiagnosticReport PlanAnalyzer::Analyze(const LintPlan& plan) {
  DiagnosticReport report;
  if (plan.operators.empty()) {
    report.AddError("ZT-P001", "plan has no operators", -1, "",
                    "declare at least a source and a sink");
    return report;
  }
  CheckStructure(plan, &report);
  CheckFeatures(plan, &report);
  CheckSegments(plan, &report);
  if (plan.has_physical) CheckPhysical(plan, &report);
  return report;
}

DiagnosticReport PlanAnalyzer::Analyze(const dsp::QueryPlan& plan) {
  return Analyze(LintPlan::FromLogical(plan));
}

DiagnosticReport PlanAnalyzer::Analyze(const dsp::ParallelQueryPlan& plan) {
  return Analyze(LintPlan::FromParallel(plan));
}

Status PlanAnalyzer::Check(const dsp::ParallelQueryPlan& plan) {
  return Analyze(plan).ToStatus();
}

}  // namespace zerotune::analysis
