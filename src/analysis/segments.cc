#include "analysis/segments.h"

#include <algorithm>
#include <unordered_map>

namespace zerotune::analysis {

namespace {

using dsp::OperatorType;

/// Graph view shared by the strict (QueryPlan) and tolerant (LintPlan)
/// entry points: id, type and upstream edges per operator, in a
/// topological order.
struct NodeView {
  int id = -1;
  OperatorType type = OperatorType::kSource;
  std::vector<int> upstreams;
};

bool IsProcessing(OperatorType type) {
  return type != OperatorType::kSource && type != OperatorType::kSink;
}

/// One pass over `order` (topologically sorted NodeViews): joins and
/// aggregates each open their own segment; filters extend their upstream
/// pipeline when the edge is 1:1; the sink terminates its upstream's
/// segment.
std::vector<PlanSegment> Sweep(const std::vector<NodeView>& order) {
  std::vector<PlanSegment> segments;
  std::unordered_map<int, size_t> segment_of;  // operator id -> segment
  std::unordered_map<int, size_t> fanout;      // operator id -> #downstreams
  for (const NodeView& node : order) {
    for (int u : node.upstreams) ++fanout[u];
  }

  auto open = [&](SegmentKind kind, const NodeView& node) {
    PlanSegment seg;
    seg.kind = kind;
    seg.operator_ids.push_back(node.id);
    if (IsProcessing(node.type)) ++seg.processing_operators;
    if (node.type == OperatorType::kSink) seg.contains_sink = true;
    segment_of[node.id] = segments.size();
    segments.push_back(std::move(seg));
  };
  auto join_upstream = [&](const NodeView& node, int upstream) -> bool {
    const auto it = segment_of.find(upstream);
    if (it == segment_of.end()) return false;
    segments[it->second].operator_ids.push_back(node.id);
    if (IsProcessing(node.type)) ++segments[it->second].processing_operators;
    if (node.type == OperatorType::kSink) {
      segments[it->second].contains_sink = true;
    }
    segment_of[node.id] = it->second;
    return true;
  };

  for (const NodeView& node : order) {
    switch (node.type) {
      case OperatorType::kSource:
        open(SegmentKind::kPipeline, node);
        break;
      case OperatorType::kFilter: {
        // Extends the upstream pipeline only along a 1:1 edge into a
        // pipeline segment; a fan-out upstream or a windowed upstream
        // ends that segment and the filter starts a fresh pipeline.
        const bool chained =
            node.upstreams.size() == 1 && fanout[node.upstreams[0]] == 1 &&
            segment_of.count(node.upstreams[0]) > 0 &&
            segments[segment_of[node.upstreams[0]]].kind ==
                SegmentKind::kPipeline;
        if (!chained || !join_upstream(node, node.upstreams[0])) {
          open(SegmentKind::kPipeline, node);
        }
        break;
      }
      case OperatorType::kWindowAggregate:
        open(SegmentKind::kMapReduce, node);
        break;
      case OperatorType::kWindowJoin:
        open(SegmentKind::kTaskPool, node);
        break;
      case OperatorType::kSink: {
        if (node.upstreams.empty() ||
            !join_upstream(node, node.upstreams[0])) {
          open(SegmentKind::kPipeline, node);
        }
        break;
      }
    }
  }
  return segments;
}

}  // namespace

const char* ToString(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kPipeline: return "pipeline";
    case SegmentKind::kMapReduce: return "map-reduce";
    case SegmentKind::kTaskPool: return "task-pool";
  }
  return "unknown";
}

std::string PlanSegment::ToString(const dsp::QueryPlan& plan) const {
  std::string out = analysis::ToString(kind);
  out += "[";
  for (size_t i = 0; i < operator_ids.size(); ++i) {
    if (i > 0) out += " -> ";
    out += plan.op(operator_ids[i]).name;
  }
  out += "]";
  return out;
}

Result<std::vector<PlanSegment>> DecomposeSegments(
    const dsp::QueryPlan& plan) {
  ZT_RETURN_IF_ERROR(plan.Validate());
  std::vector<NodeView> order;
  order.reserve(plan.num_operators());
  for (int id : plan.TopologicalOrder()) {
    NodeView node;
    node.id = id;
    node.type = plan.op(id).type;
    node.upstreams = plan.upstreams(id);
    order.push_back(std::move(node));
  }
  return Sweep(order);
}

std::vector<PlanSegment> DecomposeSegments(const LintPlan& plan) {
  // Kahn's algorithm over the raw lint graph; bail out (empty result) on
  // cycles or dangling references — the structural diagnostics own those.
  std::unordered_map<int, const LintOperator*> by_id;
  for (const LintOperator& op : plan.operators) {
    if (!by_id.emplace(op.id, &op).second) return {};  // duplicate id
  }
  std::unordered_map<int, size_t> in_degree;
  std::unordered_map<int, std::vector<int>> downstream;
  for (const LintOperator& op : plan.operators) {
    in_degree.try_emplace(op.id, 0);
    for (int u : op.upstreams) {
      if (by_id.count(u) == 0 || u == op.id) return {};  // dangling / loop
      ++in_degree[op.id];
      downstream[u].push_back(op.id);
    }
  }
  std::vector<int> frontier;
  for (const LintOperator& op : plan.operators) {
    if (in_degree[op.id] == 0) frontier.push_back(op.id);
  }
  // Deterministic order: lowest id first among the ready set.
  std::sort(frontier.begin(), frontier.end(), std::greater<int>());
  std::vector<NodeView> order;
  order.reserve(plan.operators.size());
  while (!frontier.empty()) {
    const int id = frontier.back();
    frontier.pop_back();
    NodeView node;
    node.id = id;
    node.type = by_id[id]->type;
    node.upstreams = by_id[id]->upstreams;
    order.push_back(std::move(node));
    for (int d : downstream[id]) {
      if (--in_degree[d] == 0) {
        frontier.insert(
            std::upper_bound(frontier.begin(), frontier.end(), d,
                             std::greater<int>()),
            d);
      }
    }
  }
  if (order.size() != plan.operators.size()) return {};  // cycle
  return Sweep(order);
}

}  // namespace zerotune::analysis
