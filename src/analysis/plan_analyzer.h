#ifndef ZEROTUNE_ANALYSIS_PLAN_ANALYZER_H_
#define ZEROTUNE_ANALYSIS_PLAN_ANALYZER_H_

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "dsp/cluster.h"
#include "dsp/parallel_plan.h"
#include "dsp/query_plan.h"
#include "dsp/types.h"

namespace zerotune::analysis {

/// One operator as the linter sees it. Unlike dsp::QueryPlan — whose
/// builder API makes dangling references and cycles unconstructible — this
/// representation stores the graph exactly as written, so the analyzer can
/// diagnose malformed plans the strict loader would refuse to even build.
struct LintOperator {
  int id = -1;
  dsp::OperatorType type = dsp::OperatorType::kSource;
  std::string name;
  std::vector<int> upstreams;

  // Logical payload; which fields are meaningful depends on `type`.
  double event_rate = 0.0;   // source
  size_t schema_width = 0;   // source
  double selectivity = 1.0;  // filter / aggregate / join
  bool has_selectivity = false;
  dsp::WindowSpec window;  // aggregate / join
  bool has_window = false;
  bool keyed = false;  // aggregate keyed flag; joins are always keyed

  // Physical deployment. Defaults describe an undeployed operator.
  int parallelism = 1;
  dsp::PartitioningStrategy partitioning =
      dsp::PartitioningStrategy::kRebalance;
  std::vector<int> instance_nodes;
};

/// A plan in analyzer form: raw operators plus (optionally) the cluster
/// and deployment. Built from in-memory plans or by the tolerant parser
/// in analysis/plan_linter.h.
struct LintPlan {
  std::vector<LintOperator> operators;
  std::vector<dsp::NodeResources> nodes;
  /// True when the plan carries cluster/deployment sections; physical
  /// checks are skipped for purely logical plans.
  bool has_physical = false;

  static LintPlan FromLogical(const dsp::QueryPlan& plan);
  static LintPlan FromParallel(const dsp::ParallelQueryPlan& plan);

  int TotalCores() const;
};

/// Static semantic verification of query plans (paper Table I invariants
/// plus DAG well-formedness). Runs without executing or featurizing
/// anything and never stops at the first defect: one pass reports every
/// finding. Codes are stable; see docs/static_analysis.md for the catalog.
///
///   ZT-P001 empty plan                      ZT-P014 feature out of envelope
///   ZT-P002 no source                       ZT-P015 parallelism < 1
///   ZT-P003 sink count != 1                 ZT-P016 parallelism > cluster cores
///   ZT-P004 duplicate operator id           ZT-P017 keyed op not hash-partitioned
///   ZT-P005 dangling reference              ZT-P018 hash on non-keyed op
///   ZT-P006 cycle in operator graph         ZT-P019 forward with mismatched degrees
///   ZT-P007 operator cannot reach the sink  ZT-P020 placement size != parallelism
///   ZT-P008 wrong upstream arity            ZT-P021 placement on invalid node
///   ZT-P009 selectivity outside [0,1]       ZT-P022 node oversubscribed
///   ZT-P010 non-positive event rate         ZT-P023 cluster has no nodes
///   ZT-P011 empty source schema             ZT-P024 source/sink parallelism > 1
///   ZT-P012 non-positive window             ZT-P025 unparseable plan line
///   ZT-P013 tumbling slide != length        ZT-P026 degenerate plan segment
struct PlanAnalyzer {
  static DiagnosticReport Analyze(const LintPlan& plan);
  static DiagnosticReport Analyze(const dsp::QueryPlan& plan);
  static DiagnosticReport Analyze(const dsp::ParallelQueryPlan& plan);

  /// OK when `plan` has no error-severity findings; otherwise an
  /// InvalidArgument listing every error with its code. The form the
  /// optimizer and load paths use to gate on the analyzer.
  static Status Check(const dsp::ParallelQueryPlan& plan);
};

}  // namespace zerotune::analysis

#endif  // ZEROTUNE_ANALYSIS_PLAN_ANALYZER_H_
