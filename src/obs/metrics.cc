#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/file_util.h"

namespace zerotune::obs {

namespace {

// Stable per-thread shard index. A global round-robin assignment keeps
// concurrent threads on distinct cache lines with high probability while
// staying deterministic enough for tests.
size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::string LabelsText(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=" + labels[i].second;
  }
  out += "}";
  return out;
}

std::string LabelsJson(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(labels[i].first) + "\": \"" +
           JsonEscape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

void Counter::Increment(uint64_t delta) {
  shards_[ThreadShard()].value.fetch_add(delta, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Set(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  bits_.store(bits, std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  uint64_t expected = bits_.load(std::memory_order_relaxed);
  for (;;) {
    double current;
    std::memcpy(&current, &expected, sizeof(current));
    const double updated = current + delta;
    uint64_t desired;
    std::memcpy(&desired, &updated, sizeof(desired));
    if (bits_.compare_exchange_weak(expected, desired,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

double Gauge::Value() const {
  const uint64_t bits = bits_.load(std::memory_order_relaxed);
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

HistogramMetric::HistogramMetric(double min_value, double max_value,
                                 size_t buckets_per_decade)
    : min_value_(min_value),
      max_value_(max_value),
      buckets_per_decade_(buckets_per_decade) {
  const Histogram layout(min_value, max_value, buckets_per_decade);
  shards_.reserve(kMetricShards);
  for (size_t i = 0; i < kMetricShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(layout));
  }
}

void HistogramMetric::Record(double value) {
  Shard& shard = *shards_[ThreadShard()];
  MutexLock lock(shard.mu);
  shard.histogram.Record(value);
}

Histogram HistogramMetric::Snapshot() const {
  Histogram merged(min_value_, max_value_, buckets_per_decade_);
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    // All shards are stamped from one layout at construction, so a merge
    // failure would be a programming error, not an input error.
    ZT_CHECK_OK(merged.Merge(shard->histogram));
  }
  return merged;
}

uint64_t HistogramMetric::count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->histogram.count();
  }
  return total;
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

MetricsRegistry::Key MetricsRegistry::MakeKey(const std::string& name,
                                              Labels labels) {
  std::sort(labels.begin(), labels.end());
  return {name, std::move(labels)};
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  Key key = MakeKey(name, labels);
  MutexLock lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(std::move(key), std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  Key key = MakeKey(name, labels);
  MutexLock lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::move(key), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return it->second.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               const Labels& labels,
                                               double min_value,
                                               double max_value,
                                               size_t buckets_per_decade) {
  Key key = MakeKey(name, labels);
  MutexLock lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::move(key),
                      std::unique_ptr<HistogramMetric>(new HistogramMetric(
                          min_value, max_value, buckets_per_decade)))
             .first;
  }
  return it->second.get();
}

std::optional<uint64_t> MetricsRegistry::CounterValue(
    const std::string& name, const Labels& labels) const {
  const Key key = MakeKey(name, labels);
  MutexLock lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) return std::nullopt;
  return it->second->Value();
}

std::optional<double> MetricsRegistry::GaugeValue(const std::string& name,
                                                  const Labels& labels) const {
  const Key key = MakeKey(name, labels);
  MutexLock lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) return std::nullopt;
  return it->second->Value();
}

std::optional<Histogram> MetricsRegistry::HistogramSnapshot(
    const std::string& name, const Labels& labels) const {
  const Key key = MakeKey(name, labels);
  MutexLock lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) return std::nullopt;
  return it->second->Snapshot();
}

std::string MetricsRegistry::ToText() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  for (const auto& [key, counter] : counters_) {
    os << key.first << LabelsText(key.second) << " " << counter->Value()
       << "\n";
  }
  for (const auto& [key, gauge] : gauges_) {
    os << key.first << LabelsText(key.second) << " " << JsonNum(gauge->Value())
       << "\n";
  }
  for (const auto& [key, histogram] : histograms_) {
    os << key.first << LabelsText(key.second) << " "
       << histogram->Snapshot().Summary() << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": [";
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    os << (first ? "" : ",") << "\n    {\"name\": \"" << JsonEscape(key.first)
       << "\", \"labels\": " << LabelsJson(key.second)
       << ", \"value\": " << counter->Value() << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "],\n  \"gauges\": [";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    os << (first ? "" : ",") << "\n    {\"name\": \"" << JsonEscape(key.first)
       << "\", \"labels\": " << LabelsJson(key.second)
       << ", \"value\": " << JsonNum(gauge->Value()) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "],\n  \"histograms\": [";
  first = true;
  for (const auto& [key, histogram] : histograms_) {
    const Histogram snap = histogram->Snapshot();
    os << (first ? "" : ",") << "\n    {\"name\": \"" << JsonEscape(key.first)
       << "\", \"labels\": " << LabelsJson(key.second)
       << ", \"count\": " << snap.count()
       << ", \"mean\": " << JsonNum(snap.Mean())
       << ", \"min\": " << JsonNum(snap.min())
       << ", \"p50\": " << JsonNum(snap.Percentile(50))
       << ", \"p95\": " << JsonNum(snap.Percentile(95))
       << ", \"p99\": " << JsonNum(snap.Percentile(99))
       << ", \"max\": " << JsonNum(snap.max()) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  return AtomicWriteFile(path, ToJson());
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace zerotune::obs
