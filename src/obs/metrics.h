#ifndef ZEROTUNE_OBS_METRICS_H_
#define ZEROTUNE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace zerotune::obs {

/// key=value pairs identifying one time series of a metric (e.g. the
/// serving instance a latency histogram belongs to). Order-insensitive:
/// the registry canonicalizes by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Shards hot-path metric writes across cache lines so concurrent
/// increments from pool workers and caller threads do not serialize on
/// one atomic (counters) or one mutex (histograms).
inline constexpr size_t kMetricShards = 16;

/// Monotonically increasing event count. Increment() is wait-free (one
/// relaxed atomic add on a per-thread shard); Value() sums the shards, so
/// a read taken after another read can never be smaller — the snapshot
/// monotonicity guarantee ToText/ToJson inherit.
class Counter {
 public:
  void Increment(uint64_t delta = 1);
  uint64_t Value() const;

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class MetricsRegistry;
  Counter() = default;

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-written point-in-time value (loss of the current epoch, queue
/// depth, ...). Set/Add/Value are atomic; Add is a CAS loop.
class Gauge {
 public:
  void Set(double value);
  void Add(double delta);
  double Value() const;

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  std::atomic<uint64_t> bits_{0};  // bit pattern of a double (init 0.0)
};

/// Log-scale distribution metric. Record() locks one of kMetricShards
/// shard mutexes (picked per thread), so concurrent recorders rarely
/// contend; Snapshot() merges the shards into one Histogram copy.
class HistogramMetric {
 public:
  void Record(double value);
  /// Point-in-time merged copy, safe to call concurrently with Record.
  Histogram Snapshot() const;
  uint64_t count() const;

  HistogramMetric(const HistogramMetric&) = delete;
  HistogramMetric& operator=(const HistogramMetric&) = delete;

 private:
  friend class MetricsRegistry;
  HistogramMetric(double min_value, double max_value,
                  size_t buckets_per_decade);

  struct Shard {
    mutable Mutex mu;
    Histogram histogram ZT_GUARDED_BY(mu);

    explicit Shard(const Histogram& layout) : histogram(layout) {}
  };
  double min_value_;
  double max_value_;
  size_t buckets_per_decade_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Process-wide registry of named metrics. Get*() interns a (name, labels)
/// series on first use and returns a stable handle — hold the handle on
/// hot paths; the registry mutex is only taken at registration and
/// snapshot time, never per increment. Counter, gauge, and histogram
/// names live in separate namespaces.
///
/// Snapshot guarantees: each counter value read by ToText/ToJson/
/// CounterValue is at least as large as any value an earlier snapshot
/// reported for the same series (counters only ever increment, and reads
/// sum the shards), and the set of series only grows.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide instance every built-in instrumentation site uses.
  static MetricsRegistry* Global();

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  /// The histogram layout is fixed by the first registration of a series;
  /// later Get calls for the same series return the existing handle and
  /// ignore the layout arguments.
  HistogramMetric* GetHistogram(const std::string& name,
                                const Labels& labels = {},
                                double min_value = 1e-3,
                                double max_value = 1e6,
                                size_t buckets_per_decade = 20);

  /// Introspection by series; nullopt when the series was never
  /// registered. Used by tests to reconcile component-local stats against
  /// the registry.
  std::optional<uint64_t> CounterValue(const std::string& name,
                                       const Labels& labels = {}) const;
  std::optional<double> GaugeValue(const std::string& name,
                                   const Labels& labels = {}) const;
  std::optional<Histogram> HistogramSnapshot(const std::string& name,
                                             const Labels& labels = {}) const;

  /// One line per series, `name{k=v,...} value` (histograms render their
  /// Summary()), sorted by name then labels.
  std::string ToText() const;
  /// {"counters": [...], "gauges": [...], "histograms": [...]} — each
  /// entry {"name", "labels", and the series' value / distribution
  /// summary}. Valid JSON, stable ordering.
  std::string ToJson() const;
  /// Atomically writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

  /// Drops every registered series. Outstanding handles dangle — only for
  /// tests and between CLI subcommand runs, never with traffic in flight.
  void Reset();

 private:
  using Key = std::pair<std::string, Labels>;  // name, sorted labels

  static Key MakeKey(const std::string& name, Labels labels);

  mutable Mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_ ZT_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ ZT_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<HistogramMetric>> histograms_
      ZT_GUARDED_BY(mu_);
};

}  // namespace zerotune::obs

#endif  // ZEROTUNE_OBS_METRICS_H_
