#include "obs/trace.h"

#include <cstdio>
#include <sstream>

#include "common/file_util.h"

namespace zerotune::obs {

namespace {

// Dense per-thread ids so trace viewers show one named track per thread
// instead of raw pthread handles.
uint32_t ThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Current span nesting level on this thread; incremented for the lifetime
// of each active Span.
thread_local uint32_t t_span_depth = 0;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceRecorder* TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return recorder;
}

void TraceRecorder::Enable(Clock* clock, size_t max_spans) {
  MutexLock lock(mu_);
  clock_ = clock != nullptr ? clock : SystemClock::Default();
  max_spans_ = max_spans;
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::Append(SpanRecord record) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  if (spans_.size() >= max_spans_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  MutexLock lock(mu_);
  return spans_;
}

size_t TraceRecorder::size() const {
  MutexLock lock(mu_);
  return spans_.size();
}

void TraceRecorder::Clear() {
  MutexLock lock(mu_);
  spans_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceRecorder::ToChromeJson() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& span : spans_) {
    os << (first ? "" : ",") << "\n  {\"name\": \"" << JsonEscape(span.name)
       << "\", \"cat\": \"" << JsonEscape(span.category)
       << "\", \"ph\": \"X\", \"ts\": "
       << static_cast<double>(span.start_nanos) / 1e3
       << ", \"dur\": " << static_cast<double>(span.duration_nanos) / 1e3
       << ", \"pid\": 0, \"tid\": " << span.thread_index;
    if (!span.args.empty()) {
      os << ", \"args\": {";
      for (size_t i = 0; i < span.args.size(); ++i) {
        if (i > 0) os << ", ";
        os << "\"" << JsonEscape(span.args[i].first) << "\": \""
           << JsonEscape(span.args[i].second) << "\"";
      }
      os << "}";
    }
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n") << "]}\n";
  return os.str();
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  return AtomicWriteFile(path, ToChromeJson());
}

Span::Span(std::string name, std::string category, TraceRecorder* recorder) {
  if (recorder == nullptr) recorder = TraceRecorder::Global();
  if (!recorder->enabled()) return;  // inert: recorder_ stays null
  recorder_ = recorder;
  record_.name = std::move(name);
  record_.category = std::move(category);
  record_.start_nanos = recorder_->clock()->NowNanos();
  record_.thread_index = ThreadIndex();
  record_.depth = t_span_depth++;
}

Span::~Span() {
  if (recorder_ == nullptr) return;
  --t_span_depth;
  record_.duration_nanos =
      recorder_->clock()->NowNanos() - record_.start_nanos;
  recorder_->Append(std::move(record_));
}

void Span::AddArg(std::string key, std::string value) {
  if (recorder_ == nullptr) return;
  record_.args.emplace_back(std::move(key), std::move(value));
}

}  // namespace zerotune::obs
