#ifndef ZEROTUNE_OBS_TRACE_H_
#define ZEROTUNE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace zerotune::obs {

/// One completed span. Timestamps are nanoseconds on the recorder's Clock
/// (steady, arbitrary epoch) — only differences are meaningful.
struct SpanRecord {
  std::string name;
  std::string category;
  int64_t start_nanos = 0;
  int64_t duration_nanos = 0;
  uint32_t thread_index = 0;  // small dense id, stable per thread
  uint32_t depth = 0;         // nesting level within the thread at start
  std::vector<std::pair<std::string, std::string>> args;
};

/// Collects completed spans process-wide. Disabled by default: Span
/// construction checks one relaxed atomic and does nothing else, so
/// instrumentation left in hot paths (per-batch, per-round) costs a load
/// when tracing is off. Enable() is not meant to race with in-flight
/// spans — turn tracing on before starting work, export after it ends.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide instance every Span uses by default.
  static TraceRecorder* Global();

  /// Starts collecting. `clock` defaults to SystemClock::Default(); tests
  /// inject a FakeClock for deterministic timestamps. `max_spans` bounds
  /// memory — spans past the cap are counted in dropped() instead of
  /// stored.
  void Enable(Clock* clock = nullptr, size_t max_spans = 1 << 20);
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void Append(SpanRecord record);

  std::vector<SpanRecord> Snapshot() const;
  size_t size() const;
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void Clear();

  Clock* clock() const { return clock_; }

  /// Chrome trace_event JSON ({"traceEvents": [...]}): complete ("X")
  /// events with microsecond ts/dur, tid = thread_index. Loadable in
  /// chrome://tracing and ui.perfetto.dev.
  std::string ToChromeJson() const;
  /// Atomically writes ToChromeJson() to `path`.
  Status WriteChromeJson(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  // Written only by Enable(), which by contract never races with in-flight
  // spans, so the unlocked read in clock() is safe and stays annotation-free.
  Clock* clock_ = SystemClock::Default();
  mutable Mutex mu_;
  size_t max_spans_ ZT_GUARDED_BY(mu_) = 1 << 20;
  std::vector<SpanRecord> spans_ ZT_GUARDED_BY(mu_);
};

/// RAII timed span: records [construction, destruction) into a
/// TraceRecorder. When the recorder is disabled at construction the span
/// is inert — no clock read, no allocation. Spans on the same thread nest
/// by construction order (depth is tracked per thread); spans on pool
/// workers land on that worker's own track.
///
///   {
///     obs::Span span("batch_inference/featurize");
///     span.AddArg("plans", std::to_string(n));
///     ...work...
///   }  // recorded here
class Span {
 public:
  explicit Span(std::string name, std::string category = "zerotune",
                TraceRecorder* recorder = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value shown in the trace viewer's args pane. No-op on
  /// an inert span.
  void AddArg(std::string key, std::string value);

  bool active() const { return recorder_ != nullptr; }

 private:
  TraceRecorder* recorder_ = nullptr;  // null when inert
  SpanRecord record_;
};

}  // namespace zerotune::obs

#endif  // ZEROTUNE_OBS_TRACE_H_
