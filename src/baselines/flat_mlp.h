#ifndef ZEROTUNE_BASELINES_FLAT_MLP_H_
#define ZEROTUNE_BASELINES_FLAT_MLP_H_

#include <memory>
#include <vector>

#include "core/cost_predictor.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "workload/dataset.h"

namespace zerotune::baselines {

/// "Flat Vector MLP" baseline of Fig. 5: a plain MLP trained on the
/// non-structural flat plan vector, predicting normalized log latency and
/// throughput. Shares the nn library with ZeroTune; the only difference
/// from the paper's model is the representation — which is the point of
/// the comparison.
class FlatMlpModel : public core::CostPredictor {
 public:
  struct Options {
    size_t hidden_dim = 64;
    size_t epochs = 120;
    size_t batch_size = 32;
    double learning_rate = 1e-3;
    double weight_decay = 1e-5;
    uint64_t seed = 17;
  };

  FlatMlpModel() : FlatMlpModel(Options()) {}
  explicit FlatMlpModel(Options options);

  Status Fit(const workload::Dataset& train);

  Result<core::CostPrediction> Predict(
      const dsp::ParallelQueryPlan& plan) const override;
  std::string name() const override { return "FlatVectorMLP"; }

 private:
  std::vector<double> Standardize(std::vector<double> x) const;

  Options options_;
  bool fitted_ = false;
  nn::ParameterStore params_;
  std::unique_ptr<nn::Mlp> mlp_;
  std::vector<double> mean_, std_;
  double lat_mean_ = 0.0, lat_std_ = 1.0;
  double tpt_mean_ = 0.0, tpt_std_ = 1.0;
};

}  // namespace zerotune::baselines

#endif  // ZEROTUNE_BASELINES_FLAT_MLP_H_
