#include "baselines/self_regulation.h"

#include <algorithm>
#include <cmath>

namespace zerotune::baselines {

int SelfRegulation::ScaleUp(int degree, double step, int cap) {
  const int grown = std::max(
      degree + 1, static_cast<int>(std::ceil(degree * std::max(step, 1.0))));
  return std::clamp(grown, 1, std::max(cap, 1));
}

bool SelfRegulation::ShouldScaleDown(double utilization, double threshold,
                                     int degree, int floor) {
  return degree > std::max(floor, 1) && utilization < threshold;
}

}  // namespace zerotune::baselines
