#ifndef ZEROTUNE_BASELINES_DS2_H_
#define ZEROTUNE_BASELINES_DS2_H_

#include "common/status.h"
#include "dsp/parallel_plan.h"
#include "sim/cost_engine.h"

namespace zerotune::baselines {

/// DS2-style scaling controller (Kalavri et al., OSDI'18 — "three steps is
/// all you need"), the analytical policy whose rate/selectivity reasoning
/// inspired OptiSample (paper Sec. IV). From one observed execution it
/// estimates each operator's *true* (useful-time) processing rate, derives
/// the optimal degree as observed-load / true-rate-per-instance, applies
/// it, and re-observes; convergence typically takes 1–3 steps.
///
/// Like Dhalion it is an online policy (needs trial executions) and only
/// targets rate health — it is blind to chaining, window-fill, and
/// placement latency effects. Provided as a library extension; the paper's
/// Fig. 10 comparison uses greedy [20] and Dhalion [19].
class Ds2Tuner {
 public:
  struct Options {
    int max_steps = 3;
    /// Target utilization of the provisioned instances.
    double target_utilization = 0.8;
    int max_parallelism = 128;
  };

  Ds2Tuner() : Ds2Tuner(Options()) {}
  explicit Ds2Tuner(Options options) : options_(options) {}

  struct Outcome {
    dsp::ParallelQueryPlan plan;
    int executions = 0;

    explicit Outcome(dsp::ParallelQueryPlan p) : plan(std::move(p)) {}
  };

  /// Runs the scaling loop against the engine (standing in for metrics
  /// instrumentation on a live deployment).
  Result<Outcome> Tune(const dsp::QueryPlan& logical,
                       const dsp::Cluster& cluster,
                       const sim::CostEngine& engine) const;

 private:
  Options options_;
};

}  // namespace zerotune::baselines

#endif  // ZEROTUNE_BASELINES_DS2_H_
