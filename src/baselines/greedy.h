#ifndef ZEROTUNE_BASELINES_GREEDY_H_
#define ZEROTUNE_BASELINES_GREEDY_H_

#include "common/status.h"
#include "dsp/parallel_plan.h"

namespace zerotune::baselines {

/// Greedy parallelism heuristic in the spirit of auto-pipelining (Tang &
/// Gedik [20]), the comparison point of Fig. 10a: it assumes every
/// operator instance sustains a fixed per-core tuple rate, starts all
/// degrees at 1, and repeatedly increments the degree of the operator with
/// the highest estimated utilization until everything is below the target
/// utilization or the core budget is exhausted.
///
/// Its blind spots — identical per-core rate for cheap filters and heavy
/// window joins, no chaining/serde awareness, no window-fill or placement
/// effects — are what the learned model exploits.
class GreedyHeuristicTuner {
 public:
  struct Options {
    /// Assumed sustainable tuples/s per operator instance. Deliberately
    /// generic (and optimistic for heavy window operators): the heuristic
    /// has no cost model, which is exactly its published blind spot —
    /// cheap filters get over-provisioned, expensive joins/aggregations
    /// get under-provisioned and backpressure.
    double assumed_per_instance_rate = 500000.0;
    double target_utilization = 0.9;
    int max_parallelism = 128;
  };

  GreedyHeuristicTuner() : GreedyHeuristicTuner(Options()) {}
  explicit GreedyHeuristicTuner(Options options) : options_(options) {}

  /// Produces a placed plan with greedy degrees.
  Result<dsp::ParallelQueryPlan> Tune(const dsp::QueryPlan& logical,
                                      const dsp::Cluster& cluster) const;

 private:
  Options options_;
};

}  // namespace zerotune::baselines

#endif  // ZEROTUNE_BASELINES_GREEDY_H_
