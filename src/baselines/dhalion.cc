#include "baselines/dhalion.h"

#include <algorithm>
#include <cmath>

#include "baselines/self_regulation.h"

namespace zerotune::baselines {

Result<DhalionTuner::Outcome> DhalionTuner::Tune(
    const dsp::QueryPlan& logical, const dsp::Cluster& cluster,
    const sim::CostEngine& engine) const {
  ZT_RETURN_IF_ERROR(logical.Validate());
  dsp::ParallelQueryPlan plan(logical, cluster);
  const int cap =
      std::max(1, std::min(options_.max_parallelism, cluster.TotalCores()));
  ZT_RETURN_IF_ERROR(plan.SetUniformParallelism(1, /*pin_endpoints=*/false));
  ZT_RETURN_IF_ERROR(plan.PlaceRoundRobin());

  Outcome outcome(plan);
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Observe an actual execution of the current configuration (with
    // whatever measurement noise the engine carries).
    ZT_ASSIGN_OR_RETURN(const sim::CostMeasurement m,
                        engine.Measure(outcome.plan));
    ++outcome.executions;

    // Dhalion's health manager diagnoses symptoms and applies *one*
    // resolution per policy invocation, then re-observes — fixing the most
    // backpressured stage first. Simple topologies converge in a few
    // rounds; deep parallel plans need more rounds than the control-loop
    // budget allows, which is exactly the complexity cliff Fig. 10b shows.
    bool changed = false;
    int worst_op = -1;
    double worst_overload = 1.0;
    for (const dsp::Operator& op : logical.operators()) {
      if (op.type == dsp::OperatorType::kSink) continue;
      const auto& diag = m.per_operator[static_cast<size_t>(op.id)];
      if (!diag.saturated) continue;
      const double overload =
          diag.input_rate_tps / std::max(diag.capacity_tps, 1e-9);
      if (overload > worst_overload) {
        worst_overload = overload;
        worst_op = op.id;
      }
    }
    if (worst_op >= 0) {
      const int degree = outcome.plan.parallelism(worst_op);
      // The symptom is binary (backpressure observed); the resolution is a
      // fixed hand-tuned scale-up step, not a cost-model-derived degree.
      const int new_degree =
          SelfRegulation::ScaleUp(degree, options_.scale_up_step, cap);
      if (new_degree != degree) {
        ZT_RETURN_IF_ERROR(outcome.plan.SetParallelism(worst_op, new_degree));
        changed = true;
      }
    } else {
      // Healthy: reclaim the single most wasteful operator, one instance
      // at a time (conservative scale-down avoids oscillation).
      int idle_op = -1;
      double idle_util = options_.underutilization_threshold;
      for (const dsp::Operator& op : logical.operators()) {
        if (op.type == dsp::OperatorType::kSink) continue;
        const auto& diag = m.per_operator[static_cast<size_t>(op.id)];
        if (!SelfRegulation::ShouldScaleDown(
                diag.utilization, options_.underutilization_threshold,
                outcome.plan.parallelism(op.id), /*floor=*/1)) {
          continue;
        }
        if (diag.utilization < idle_util) {
          idle_util = diag.utilization;
          idle_op = op.id;
        }
      }
      if (idle_op >= 0) {
        ZT_RETURN_IF_ERROR(outcome.plan.SetParallelism(
            idle_op, outcome.plan.parallelism(idle_op) - 1));
        changed = true;
      }
    }
    if (!changed) break;
    outcome.plan.DerivePartitioning();
    ZT_RETURN_IF_ERROR(outcome.plan.PlaceRoundRobin());
  }
  return outcome;
}

}  // namespace zerotune::baselines
