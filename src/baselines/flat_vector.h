#ifndef ZEROTUNE_BASELINES_FLAT_VECTOR_H_
#define ZEROTUNE_BASELINES_FLAT_VECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dsp/parallel_plan.h"

namespace zerotune::baselines {

/// The non-transferable flat-vector plan representation the paper compares
/// against (Ganapathi et al. [4], plus the paper's addition of parallelism
/// features): per-type operator counts and average selectivities, data
/// rates, window statistics, parallelism aggregates, and cluster totals —
/// with *no structural information* about the plan graph. This is what
/// caps its generalization to unseen query structures (Fig. 5).
class FlatVectorEncoder {
 public:
  /// Fixed width of the encoding.
  static size_t Dim();

  /// Encodes a placed plan.
  static std::vector<double> Encode(const dsp::ParallelQueryPlan& plan);

  /// Slot names, aligned with Encode()'s output.
  static std::vector<std::string> FeatureNames();
};

}  // namespace zerotune::baselines

#endif  // ZEROTUNE_BASELINES_FLAT_VECTOR_H_
