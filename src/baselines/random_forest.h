#ifndef ZEROTUNE_BASELINES_RANDOM_FOREST_H_
#define ZEROTUNE_BASELINES_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "core/cost_predictor.h"
#include "workload/dataset.h"

namespace zerotune::baselines {

/// Random-forest regression baseline on the flat plan vector (Fig. 5):
/// bagged CART trees with per-split feature subsampling, two-output
/// leaves (log latency, log throughput), variance-reduction splits.
class RandomForestModel : public core::CostPredictor {
 public:
  struct Options {
    size_t num_trees = 40;
    size_t max_depth = 12;
    size_t min_samples_leaf = 3;
    /// Fraction of features considered per split.
    double feature_fraction = 0.7;
    uint64_t seed = 23;
  };

  RandomForestModel() : RandomForestModel(Options()) {}
  explicit RandomForestModel(Options options) : options_(options) {}

  Status Fit(const workload::Dataset& train);

  Result<core::CostPrediction> Predict(
      const dsp::ParallelQueryPlan& plan) const override;
  std::string name() const override { return "RandomForest"; }

  size_t num_nodes() const;  // across all trees, for tests

 private:
  /// Flattened binary tree node. Leaves have feature == -1.
  struct TreeNode {
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double leaf_latency = 0.0;     // mean log1p latency
    double leaf_throughput = 0.0;  // mean log1p throughput
  };
  using Tree = std::vector<TreeNode>;

  struct TrainData {
    std::vector<std::vector<double>> x;
    std::vector<double> y_lat;  // log1p space
    std::vector<double> y_tpt;
  };

  int BuildNode(Tree* tree, const TrainData& data,
                std::vector<size_t>& indices, size_t begin, size_t end,
                size_t depth, zerotune::Rng* rng) const;

  Options options_;
  bool fitted_ = false;
  std::vector<Tree> trees_;
};

}  // namespace zerotune::baselines

#endif  // ZEROTUNE_BASELINES_RANDOM_FOREST_H_
