#include "baselines/ds2.h"

#include <algorithm>
#include <cmath>

namespace zerotune::baselines {

Result<Ds2Tuner::Outcome> Ds2Tuner::Tune(const dsp::QueryPlan& logical,
                                         const dsp::Cluster& cluster,
                                         const sim::CostEngine& engine) const {
  ZT_RETURN_IF_ERROR(logical.Validate());
  dsp::ParallelQueryPlan plan(logical, cluster);
  const int cap =
      std::max(1, std::min(options_.max_parallelism, cluster.TotalCores()));
  ZT_RETURN_IF_ERROR(plan.SetUniformParallelism(1, /*pin_endpoints=*/false));
  ZT_RETURN_IF_ERROR(plan.PlaceRoundRobin());

  Outcome outcome(plan);
  for (int step = 0; step < options_.max_steps; ++step) {
    ZT_ASSIGN_OR_RETURN(const sim::CostMeasurement m,
                        engine.Measure(outcome.plan));
    ++outcome.executions;

    // DS2's "true processing rate": what one instance sustains when 100%
    // useful — observable as processed-rate / utilization. The optimal
    // degree then is offered-load over true-rate, with a utilization
    // target for headroom. Offered load is reconstructed from the
    // observed (possibly throttled) rates scaled back by the sustained
    // fraction — DS2 similarly works on source-calibrated true rates.
    bool changed = false;
    for (const dsp::Operator& op : logical.operators()) {
      if (op.type == dsp::OperatorType::kSink) continue;
      const auto& diag = m.per_operator[static_cast<size_t>(op.id)];
      const int degree = outcome.plan.parallelism(op.id);
      if (diag.utilization <= 0.0 || diag.actual_input_rate_tps <= 0.0) {
        continue;
      }
      const double per_instance_true_rate =
          diag.actual_input_rate_tps /
          (static_cast<double>(degree) * diag.utilization);
      const double offered = diag.input_rate_tps;  // pre-throttle load
      int optimal = static_cast<int>(std::ceil(
          offered / (per_instance_true_rate * options_.target_utilization)));
      optimal = std::clamp(optimal, 1, cap);
      if (optimal != degree) {
        ZT_RETURN_IF_ERROR(outcome.plan.SetParallelism(op.id, optimal));
        changed = true;
      }
    }
    if (!changed) break;
    outcome.plan.DerivePartitioning();
    ZT_RETURN_IF_ERROR(outcome.plan.PlaceRoundRobin());
  }
  return outcome;
}

}  // namespace zerotune::baselines
