#ifndef ZEROTUNE_BASELINES_DHALION_H_
#define ZEROTUNE_BASELINES_DHALION_H_

#include "common/status.h"
#include "dsp/parallel_plan.h"
#include "sim/cost_engine.h"

namespace zerotune::baselines {

/// Dhalion-style self-regulating controller (Floratou et al. [19]), the
/// comparison point of Fig. 10b. Unlike ZeroTune it is an *online*
/// policy: it deploys the query, observes symptoms (backpressure /
/// under-utilization diagnosed from an execution), and iteratively applies
/// resolutions — scale saturated operators up proportionally to their
/// overload, scale deeply idle operators down — until the topology is
/// healthy or the iteration budget is spent.
///
/// Each Tune() therefore consumes several *executions* of the query (the
/// convergence cost the paper's C1 challenge describes), and its final
/// configuration only targets backpressure health, not the combined
/// latency/throughput objective.
class DhalionTuner {
 public:
  struct Options {
    int max_iterations = 8;
    /// Fixed multiplicative scale-up step applied to a backpressured
    /// operator. Dhalion's policies react to symptoms with hand-tuned
    /// resolutions rather than a cost model, so the step is generic.
    double scale_up_step = 2.0;
    /// Instances below this utilization are considered wasteful.
    double underutilization_threshold = 0.25;
    int max_parallelism = 128;
  };

  DhalionTuner() : DhalionTuner(Options()) {}
  explicit DhalionTuner(Options options) : options_(options) {}

  struct Outcome {
    dsp::ParallelQueryPlan plan;
    int executions = 0;  // how many trial deployments were observed

    explicit Outcome(dsp::ParallelQueryPlan p) : plan(std::move(p)) {}
  };

  /// Runs the control loop against the ground-truth engine (standing in
  /// for observing a live Flink/Heron deployment).
  Result<Outcome> Tune(const dsp::QueryPlan& logical,
                       const dsp::Cluster& cluster,
                       const sim::CostEngine& engine) const;

 private:
  Options options_;
};

}  // namespace zerotune::baselines

#endif  // ZEROTUNE_BASELINES_DHALION_H_
