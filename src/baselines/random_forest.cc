#include "baselines/random_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "baselines/flat_vector.h"

namespace zerotune::baselines {

namespace {

/// Combined (latency + throughput) sum of squared deviations of a subset.
struct TargetStats {
  double sum_lat = 0.0, sum_sq_lat = 0.0;
  double sum_tpt = 0.0, sum_sq_tpt = 0.0;
  double count = 0.0;

  void Add(double lat, double tpt) {
    sum_lat += lat;
    sum_sq_lat += lat * lat;
    sum_tpt += tpt;
    sum_sq_tpt += tpt * tpt;
    count += 1.0;
  }
  void Remove(double lat, double tpt) {
    sum_lat -= lat;
    sum_sq_lat -= lat * lat;
    sum_tpt -= tpt;
    sum_sq_tpt -= tpt * tpt;
    count -= 1.0;
  }
  double Sse() const {
    if (count <= 0.0) return 0.0;
    const double sse_lat = sum_sq_lat - sum_lat * sum_lat / count;
    const double sse_tpt = sum_sq_tpt - sum_tpt * sum_tpt / count;
    return std::max(0.0, sse_lat) + std::max(0.0, sse_tpt);
  }
};

}  // namespace

int RandomForestModel::BuildNode(Tree* tree, const TrainData& data,
                                 std::vector<size_t>& indices, size_t begin,
                                 size_t end, size_t depth,
                                 zerotune::Rng* rng) const {
  const size_t count = end - begin;
  const int node_id = static_cast<int>(tree->size());
  tree->push_back(TreeNode{});

  TargetStats all;
  for (size_t i = begin; i < end; ++i) {
    all.Add(data.y_lat[indices[i]], data.y_tpt[indices[i]]);
  }

  auto make_leaf = [&]() {
    TreeNode& node = (*tree)[static_cast<size_t>(node_id)];
    node.feature = -1;
    node.leaf_latency = all.sum_lat / std::max(1.0, all.count);
    node.leaf_throughput = all.sum_tpt / std::max(1.0, all.count);
    return node_id;
  };

  if (depth >= options_.max_depth ||
      count < 2 * options_.min_samples_leaf || all.Sse() < 1e-9) {
    return make_leaf();
  }

  // Sample the candidate feature subset.
  const size_t dim = data.x[0].size();
  std::vector<size_t> features(dim);
  std::iota(features.begin(), features.end(), 0);
  rng->Shuffle(&features);
  const size_t n_feats = std::max<size_t>(
      1, static_cast<size_t>(options_.feature_fraction *
                             static_cast<double>(dim)));
  features.resize(n_feats);

  double best_gain = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<size_t> sorted(indices.begin() + static_cast<long>(begin),
                             indices.begin() + static_cast<long>(end));
  for (size_t f : features) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return data.x[a][f] < data.x[b][f];
    });
    TargetStats left;
    TargetStats right = all;
    for (size_t k = 0; k + 1 < sorted.size(); ++k) {
      const size_t idx = sorted[k];
      left.Add(data.y_lat[idx], data.y_tpt[idx]);
      right.Remove(data.y_lat[idx], data.y_tpt[idx]);
      if (k + 1 < options_.min_samples_leaf ||
          sorted.size() - (k + 1) < options_.min_samples_leaf) {
        continue;
      }
      const double v = data.x[idx][f];
      const double v_next = data.x[sorted[k + 1]][f];
      if (v_next <= v) continue;  // cannot split between equal values
      const double gain = all.Sse() - left.Sse() - right.Sse();
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (v + v_next);
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition indices[begin, end) by the chosen split.
  auto mid_it = std::partition(
      indices.begin() + static_cast<long>(begin),
      indices.begin() + static_cast<long>(end), [&](size_t idx) {
        return data.x[idx][static_cast<size_t>(best_feature)] <=
               best_threshold;
      });
  const size_t mid =
      static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();

  const int left_id =
      BuildNode(tree, data, indices, begin, mid, depth + 1, rng);
  const int right_id =
      BuildNode(tree, data, indices, mid, end, depth + 1, rng);
  TreeNode& node = (*tree)[static_cast<size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left_id;
  node.right = right_id;
  return node_id;
}

Status RandomForestModel::Fit(const workload::Dataset& train) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  TrainData data;
  data.x.reserve(train.size());
  for (const auto& q : train.samples()) {
    data.x.push_back(FlatVectorEncoder::Encode(q.plan));
    data.y_lat.push_back(std::log1p(std::max(q.latency_ms, 0.0)));
    data.y_tpt.push_back(std::log1p(std::max(q.throughput_tps, 0.0)));
  }

  zerotune::Rng rng(options_.seed);
  trees_.clear();
  trees_.reserve(options_.num_trees);
  const size_t n = train.size();
  for (size_t t = 0; t < options_.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<size_t> indices(n);
    for (size_t i = 0; i < n; ++i) {
      indices[i] = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    }
    Tree tree;
    zerotune::Rng tree_rng = rng.Fork();
    BuildNode(&tree, data, indices, 0, n, 0, &tree_rng);
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
  return Status::OK();
}

Result<core::CostPrediction> RandomForestModel::Predict(
    const dsp::ParallelQueryPlan& plan) const {
  if (!fitted_) {
    return Status::FailedPrecondition(
        name() + " predictor is not fitted (call Fit first); cannot "
        "score a " + std::to_string(plan.logical().num_operators()) +
        "-operator plan on " +
        std::to_string(plan.cluster().num_nodes()) + " nodes");
  }
  const std::vector<double> x = FlatVectorEncoder::Encode(plan);
  double lat = 0.0, tpt = 0.0;
  for (const Tree& tree : trees_) {
    int node = 0;
    while (tree[static_cast<size_t>(node)].feature >= 0) {
      const TreeNode& tn = tree[static_cast<size_t>(node)];
      node = x[static_cast<size_t>(tn.feature)] <= tn.threshold ? tn.left
                                                                : tn.right;
    }
    lat += tree[static_cast<size_t>(node)].leaf_latency;
    tpt += tree[static_cast<size_t>(node)].leaf_throughput;
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  core::CostPrediction p;
  p.latency_ms = std::max(0.0, std::expm1(lat * inv));
  p.throughput_tps = std::max(0.0, std::expm1(tpt * inv));
  return p;
}

size_t RandomForestModel::num_nodes() const {
  size_t total = 0;
  for (const Tree& t : trees_) total += t.size();
  return total;
}

}  // namespace zerotune::baselines
