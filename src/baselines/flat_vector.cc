#include "baselines/flat_vector.h"

#include <algorithm>
#include <cmath>

namespace zerotune::baselines {

namespace {

using dsp::Operator;
using dsp::OperatorType;

double Log1p(double v) { return std::log1p(std::max(v, 0.0)); }

}  // namespace

size_t FlatVectorEncoder::Dim() { return 21; }

std::vector<double> FlatVectorEncoder::Encode(
    const dsp::ParallelQueryPlan& plan) {
  const dsp::QueryPlan& q = plan.logical();

  double n_sources = 0, n_filters = 0, n_aggs = 0, n_joins = 0;
  double filter_sel_sum = 0, agg_sel_sum = 0, join_sel_sum = 0;
  double event_rate_sum = 0;
  double width_sum = 0;
  double win_len_sum = 0, win_count = 0;
  double par_sum = 0, par_max = 0, par_total = 0;
  for (const Operator& op : q.operators()) {
    const double p = plan.parallelism(op.id);
    par_total += p;
    if (op.type != OperatorType::kSource && op.type != OperatorType::kSink) {
      par_sum += p;
      par_max = std::max(par_max, p);
    }
    width_sum += static_cast<double>(op.output_schema.width());
    switch (op.type) {
      case OperatorType::kSource:
        n_sources += 1;
        event_rate_sum += op.source.event_rate;
        break;
      case OperatorType::kFilter:
        n_filters += 1;
        filter_sel_sum += op.filter.selectivity;
        break;
      case OperatorType::kWindowAggregate:
        n_aggs += 1;
        agg_sel_sum += op.aggregate.selectivity;
        win_len_sum += op.aggregate.window.length;
        win_count += 1;
        break;
      case OperatorType::kWindowJoin:
        n_joins += 1;
        join_sel_sum += op.join.selectivity;
        win_len_sum += op.join.window.length;
        win_count += 1;
        break;
      case OperatorType::kSink:
        break;
    }
  }
  const double n_ops = static_cast<double>(q.num_operators());
  const double n_mid = std::max(1.0, n_ops - n_sources - 1.0);

  const dsp::Cluster& cluster = plan.cluster();
  double ghz_sum = 0;
  for (const auto& n : cluster.nodes()) ghz_sum += n.cpu_ghz;

  std::vector<double> f;
  f.reserve(Dim());
  f.push_back(n_sources);
  f.push_back(n_filters);
  f.push_back(n_aggs);
  f.push_back(n_joins);
  f.push_back(n_ops);
  f.push_back(n_filters > 0 ? filter_sel_sum / n_filters : 0.0);
  f.push_back(n_aggs > 0 ? agg_sel_sum / n_aggs : 0.0);
  f.push_back(n_joins > 0 ? join_sel_sum / n_joins : 0.0);
  f.push_back(Log1p(event_rate_sum));
  f.push_back(width_sum / std::max(1.0, n_ops));
  f.push_back(win_count > 0 ? Log1p(win_len_sum / win_count) : 0.0);
  f.push_back(win_count);
  // Parallelism features (the paper's addition to [4]).
  f.push_back(par_sum / n_mid);
  f.push_back(Log1p(par_max));
  f.push_back(Log1p(par_total));
  // Resource totals.
  f.push_back(static_cast<double>(cluster.num_nodes()));
  f.push_back(Log1p(static_cast<double>(cluster.TotalCores())));
  f.push_back(cluster.num_nodes() > 0
                  ? ghz_sum / static_cast<double>(cluster.num_nodes())
                  : 0.0);
  f.push_back(Log1p(cluster.num_nodes() > 0 ? cluster.node(0).network_gbps
                                            : 0.0));
  // Coarse shape: plan depth (longest path length).
  std::vector<double> depth(q.num_operators(), 1.0);
  double max_depth = 1.0;
  for (int id : q.TopologicalOrder()) {
    for (int u : q.upstreams(id)) {
      depth[static_cast<size_t>(id)] = std::max(
          depth[static_cast<size_t>(id)], depth[static_cast<size_t>(u)] + 1.0);
    }
    max_depth = std::max(max_depth, depth[static_cast<size_t>(id)]);
  }
  f.push_back(max_depth);
  f.push_back(1.0);  // bias slot (used by the linear model)
  return f;
}

std::vector<std::string> FlatVectorEncoder::FeatureNames() {
  return {"n_sources",      "n_filters",     "n_aggs",
          "n_joins",        "n_ops",         "avg_filter_sel",
          "avg_agg_sel",    "avg_join_sel",  "sum_event_rate(log)",
          "avg_width",      "avg_win_len(log)", "n_windows",
          "avg_parallelism", "max_parallelism(log)", "total_parallelism(log)",
          "n_workers",      "total_cores(log)", "avg_ghz",
          "network(log)",   "plan_depth",    "bias"};
}

}  // namespace zerotune::baselines
