#include "baselines/linear_model.h"

#include <cmath>

#include "baselines/flat_vector.h"

namespace zerotune::baselines {

Status SolveLinearSystem(std::vector<double>& a, std::vector<double>& b,
                         size_t n) {
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col])) pivot = r;
    }
    if (std::abs(a[pivot * n + col]) < 1e-12) {
      return Status::FailedPrecondition(
          "linear system is singular at pivot column " + std::to_string(col) +
          " of " + std::to_string(n));
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] * inv;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  for (size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (size_t c = i + 1; c < n; ++c) sum -= a[i * n + c] * b[c];
    b[i] = sum / a[i * n + i];
  }
  return Status::OK();
}

Status LinearRegressionModel::Fit(const workload::Dataset& train) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  const size_t d = FlatVectorEncoder::Dim();
  const size_t n = train.size();

  std::vector<std::vector<double>> xs;
  xs.reserve(n);
  for (const auto& q : train.samples()) {
    xs.push_back(FlatVectorEncoder::Encode(q.plan));
  }

  // Standardize all but the trailing bias slot.
  mean_.assign(d, 0.0);
  std_.assign(d, 1.0);
  for (size_t j = 0; j + 1 < d; ++j) {
    double m = 0.0;
    for (const auto& x : xs) m += x[j];
    m /= static_cast<double>(n);
    double v = 0.0;
    for (const auto& x : xs) v += (x[j] - m) * (x[j] - m);
    v = std::sqrt(v / static_cast<double>(n));
    mean_[j] = m;
    std_[j] = v > 1e-9 ? v : 1.0;
  }
  for (auto& x : xs) {
    for (size_t j = 0; j + 1 < d; ++j) x[j] = (x[j] - mean_[j]) / std_[j];
  }

  auto fit_target = [&](bool latency, std::vector<double>* w) -> Status {
    // Normal equations: (XᵀX + λI) w = Xᵀy.
    std::vector<double> a(d * d, 0.0);
    std::vector<double> b(d, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const auto& x = xs[i];
      const auto& q = train.sample(i);
      const double y =
          std::log1p(std::max(latency ? q.latency_ms : q.throughput_tps, 0.0));
      for (size_t r = 0; r < d; ++r) {
        b[r] += x[r] * y;
        for (size_t c = 0; c < d; ++c) a[r * d + c] += x[r] * x[c];
      }
    }
    for (size_t j = 0; j + 1 < d; ++j) a[j * d + j] += options_.l2;
    Status solved = SolveLinearSystem(a, b, d);
    if (!solved.ok()) {
      return solved.Annotated(
          std::string("fitting ") + (latency ? "latency" : "throughput") +
          " normal equations over " + std::to_string(n) + " samples");
    }
    *w = std::move(b);
    return Status::OK();
  };

  ZT_RETURN_IF_ERROR(fit_target(/*latency=*/true, &w_latency_));
  ZT_RETURN_IF_ERROR(fit_target(/*latency=*/false, &w_throughput_));
  fitted_ = true;
  return Status::OK();
}

Result<core::CostPrediction> LinearRegressionModel::Predict(
    const dsp::ParallelQueryPlan& plan) const {
  if (!fitted_) {
    return Status::FailedPrecondition(
        name() + " predictor is not fitted (call Fit first); cannot "
        "score a " + std::to_string(plan.logical().num_operators()) +
        "-operator plan on " +
        std::to_string(plan.cluster().num_nodes()) + " nodes");
  }
  std::vector<double> x = FlatVectorEncoder::Encode(plan);
  for (size_t j = 0; j + 1 < x.size(); ++j) {
    x[j] = (x[j] - mean_[j]) / std_[j];
  }
  double lat = 0.0, tpt = 0.0;
  for (size_t j = 0; j < x.size(); ++j) {
    lat += w_latency_[j] * x[j];
    tpt += w_throughput_[j] * x[j];
  }
  core::CostPrediction p;
  p.latency_ms = std::max(0.0, std::expm1(lat));
  p.throughput_tps = std::max(0.0, std::expm1(tpt));
  return p;
}

}  // namespace zerotune::baselines
