#include "baselines/flat_mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "baselines/flat_vector.h"
#include "common/statistics.h"

namespace zerotune::baselines {

FlatMlpModel::FlatMlpModel(Options options) : options_(options) {
  Rng rng(options_.seed);
  nn::Mlp::Options mlp_opts;
  mlp_opts.activation = nn::Activation::kLeakyRelu;
  mlp_ = std::make_unique<nn::Mlp>(
      &params_,
      std::vector<size_t>{FlatVectorEncoder::Dim(), options_.hidden_dim,
                          options_.hidden_dim, 2},
      &rng, mlp_opts);
}

std::vector<double> FlatMlpModel::Standardize(std::vector<double> x) const {
  for (size_t j = 0; j + 1 < x.size(); ++j) {
    x[j] = (x[j] - mean_[j]) / std_[j];
  }
  return x;
}

Status FlatMlpModel::Fit(const workload::Dataset& train) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  const size_t n = train.size();
  const size_t d = FlatVectorEncoder::Dim();

  std::vector<std::vector<double>> xs;
  std::vector<double> lat, tpt;
  xs.reserve(n);
  for (const auto& q : train.samples()) {
    xs.push_back(FlatVectorEncoder::Encode(q.plan));
    lat.push_back(std::log1p(std::max(q.latency_ms, 0.0)));
    tpt.push_back(std::log1p(std::max(q.throughput_tps, 0.0)));
  }
  mean_.assign(d, 0.0);
  std_.assign(d, 1.0);
  for (size_t j = 0; j + 1 < d; ++j) {
    double m = 0.0;
    for (const auto& x : xs) m += x[j];
    m /= static_cast<double>(n);
    double v = 0.0;
    for (const auto& x : xs) v += (x[j] - m) * (x[j] - m);
    v = std::sqrt(v / static_cast<double>(n));
    mean_[j] = m;
    std_[j] = v > 1e-9 ? v : 1.0;
  }
  for (auto& x : xs) x = Standardize(std::move(x));

  lat_mean_ = Mean(lat);
  lat_std_ = std::max(StdDev(lat), 1e-3);
  tpt_mean_ = Mean(tpt);
  tpt_std_ = std::max(StdDev(tpt), 1e-3);

  nn::Adam::Options adam_opts;
  adam_opts.learning_rate = options_.learning_rate;
  adam_opts.weight_decay = options_.weight_decay;
  nn::Adam adam(&params_, adam_opts);

  Rng rng(options_.seed + 1);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < n; start += options_.batch_size) {
      const size_t end = std::min(n, start + options_.batch_size);
      nn::GradStore grads;
      for (size_t k = start; k < end; ++k) {
        const size_t i = order[k];
        nn::Matrix target(1, 2);
        target(0, 0) = (lat[i] - lat_mean_) / lat_std_;
        target(0, 1) = (tpt[i] - tpt_mean_) / tpt_std_;
        const nn::NodePtr out =
            mlp_->Forward(nn::Constant(nn::Matrix::RowVector(xs[i])));
        const nn::NodePtr loss = nn::MseLoss(out, target);
        nn::Backward(loss, &grads);
      }
      grads.Scale(1.0 / static_cast<double>(end - start));
      grads.ClipGlobalNorm(5.0);
      adam.Step(grads);
    }
  }
  fitted_ = true;
  return Status::OK();
}

Result<core::CostPrediction> FlatMlpModel::Predict(
    const dsp::ParallelQueryPlan& plan) const {
  if (!fitted_) {
    return Status::FailedPrecondition(
        name() + " predictor is not fitted (call Fit first); cannot "
        "score a " + std::to_string(plan.logical().num_operators()) +
        "-operator plan on " +
        std::to_string(plan.cluster().num_nodes()) + " nodes");
  }
  const std::vector<double> x =
      Standardize(FlatVectorEncoder::Encode(plan));
  const nn::NodePtr out =
      mlp_->Forward(nn::Constant(nn::Matrix::RowVector(x)));
  core::CostPrediction p;
  p.latency_ms =
      std::max(0.0, std::expm1(out->value(0, 0) * lat_std_ + lat_mean_));
  p.throughput_tps =
      std::max(0.0, std::expm1(out->value(0, 1) * tpt_std_ + tpt_mean_));
  return p;
}

}  // namespace zerotune::baselines
