#include "baselines/greedy.h"

#include <algorithm>

namespace zerotune::baselines {

Result<dsp::ParallelQueryPlan> GreedyHeuristicTuner::Tune(
    const dsp::QueryPlan& logical, const dsp::Cluster& cluster) const {
  ZT_RETURN_IF_ERROR(logical.Validate());
  dsp::ParallelQueryPlan plan(logical, cluster);
  const std::vector<double> rates = logical.EstimatedInputRates();
  const int cap =
      std::max(1, std::min(options_.max_parallelism, cluster.TotalCores()));
  const int budget = cluster.TotalCores();

  std::vector<int> degrees(logical.num_operators(), 1);
  int total = static_cast<int>(logical.num_operators());

  auto utilization = [&](int id) {
    return rates[static_cast<size_t>(id)] /
           (static_cast<double>(degrees[static_cast<size_t>(id)]) *
            options_.assumed_per_instance_rate);
  };

  for (;;) {
    int worst = -1;
    double worst_util = options_.target_utilization;
    for (const dsp::Operator& op : logical.operators()) {
      if (op.type == dsp::OperatorType::kSink) continue;
      if (degrees[static_cast<size_t>(op.id)] >= cap) continue;
      const double u = utilization(op.id);
      if (u > worst_util) {
        worst_util = u;
        worst = op.id;
      }
    }
    if (worst < 0 || total >= budget) break;
    ++degrees[static_cast<size_t>(worst)];
    ++total;
  }

  for (const dsp::Operator& op : logical.operators()) {
    ZT_RETURN_IF_ERROR(
        plan.SetParallelism(op.id, degrees[static_cast<size_t>(op.id)]));
  }
  plan.DerivePartitioning();
  ZT_RETURN_IF_ERROR(plan.PlaceRoundRobin());
  return plan;
}

}  // namespace zerotune::baselines
