#ifndef ZEROTUNE_BASELINES_SELF_REGULATION_H_
#define ZEROTUNE_BASELINES_SELF_REGULATION_H_

namespace zerotune::baselines {

/// The symptom -> resolution core of Dhalion-style self-regulation
/// (Floratou et al. [19]), shared by two control loops that otherwise
/// live at different layers of the system:
///
///  - DhalionTuner (this directory) resizes *operator parallelism* inside
///    one query from observed backpressure / idleness, and
///  - serve::fleet::FleetController resizes the *serving replica count*
///    from observed shedding / idleness.
///
/// Both apply the same hand-tuned policy shape: a binary overload symptom
/// resolved by a fixed multiplicative scale-up step, and a conservative
/// one-step scale-down once utilization falls below a threshold. Keeping
/// the arithmetic here means the two loops cannot drift apart.
struct SelfRegulation {
  /// Degree after observing an overload symptom at `degree`: at least one
  /// more instance, at most ceil(degree * step), clamped to [1, cap].
  /// `step <= 1` still grows by one (the symptom demands *a* resolution).
  static int ScaleUp(int degree, double step, int cap);

  /// True when the observed utilization justifies reclaiming capacity:
  /// below `threshold` and still above the floor. Scale-down is always a
  /// single step (degree - 1) — Dhalion reclaims conservatively to avoid
  /// oscillation.
  static bool ShouldScaleDown(double utilization, double threshold,
                              int degree, int floor);
};

}  // namespace zerotune::baselines

#endif  // ZEROTUNE_BASELINES_SELF_REGULATION_H_
