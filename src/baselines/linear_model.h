#ifndef ZEROTUNE_BASELINES_LINEAR_MODEL_H_
#define ZEROTUNE_BASELINES_LINEAR_MODEL_H_

#include <vector>

#include "core/cost_predictor.h"
#include "workload/dataset.h"

namespace zerotune::baselines {

/// "Linear Regression" baseline of Fig. 5: ridge regression from the flat
/// plan vector to log-space latency and throughput. Fitted in closed form
/// via the normal equations (Gaussian elimination with partial pivoting).
class LinearRegressionModel : public core::CostPredictor {
 public:
  struct Options {
    double l2 = 1e-2;  // ridge strength on standardized features
  };

  LinearRegressionModel() : LinearRegressionModel(Options()) {}
  explicit LinearRegressionModel(Options options) : options_(options) {}

  /// Fits both targets on a labeled corpus.
  Status Fit(const workload::Dataset& train);

  Result<core::CostPrediction> Predict(
      const dsp::ParallelQueryPlan& plan) const override;
  std::string name() const override { return "LinearRegression"; }

 private:
  Options options_;
  bool fitted_ = false;
  std::vector<double> mean_, std_;       // feature standardization
  std::vector<double> w_latency_;        // weights incl. bias
  std::vector<double> w_throughput_;
};

/// Solves A·x = b in place (A is n×n row-major, overwritten). Fails with
/// FailedPrecondition naming the pivot column when A is singular.
/// Exposed for tests.
Status SolveLinearSystem(std::vector<double>& a, std::vector<double>& b,
                         size_t n);

}  // namespace zerotune::baselines

#endif  // ZEROTUNE_BASELINES_LINEAR_MODEL_H_
