#include "dsp/query_dsl.h"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "dsp/plan_io.h"

namespace zerotune::dsp {

namespace {

/// One parsed stage: a call like `filter(sel=0.5)` or a bare identifier
/// (either a no-arg stage like `sink` or a named-stream reference).
struct Stage {
  std::string name;
  bool had_parens = false;
  std::vector<std::string> positional;           // join inputs
  std::map<std::string, std::string> arguments;  // key=value pairs
};

struct Statement {
  std::string assign_to;  // empty for anonymous pipelines
  std::vector<Stage> stages;
};

/// Splits the program into statements on newlines and semicolons,
/// dropping blank lines and '#' comments.
std::vector<std::string> SplitStatements(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == '\n' || c == ';') {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  std::vector<std::string> cleaned;
  for (std::string& s : out) {
    const size_t hash = s.find('#');
    if (hash != std::string::npos) s.resize(hash);
    size_t begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    size_t end = s.find_last_not_of(" \t\r");
    cleaned.push_back(s.substr(begin, end - begin + 1));
  }
  // Continuation support: a statement starting with '|' glues onto the
  // previous one, enabling multi-line pipelines.
  std::vector<std::string> merged;
  for (const std::string& s : cleaned) {
    if (!merged.empty() && s[0] == '|') {
      merged.back() += " " + s;
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses one statement into assignment + stages.
Result<Statement> ParseStatement(const std::string& text) {
  Statement stmt;
  std::string rest = text;

  // Optional "name =" prefix (but not "==" which cannot start a stage).
  const size_t eq = rest.find('=');
  if (eq != std::string::npos && rest.find('(') > eq &&
      rest.find('|') > eq && (eq + 1 >= rest.size() || rest[eq + 1] != '=')) {
    std::string name = rest.substr(0, eq);
    const size_t b = name.find_first_not_of(" \t");
    const size_t e = name.find_last_not_of(" \t");
    if (b == std::string::npos) {
      return Status::InvalidArgument("empty assignment name: " + text);
    }
    stmt.assign_to = name.substr(b, e - b + 1);
    for (char c : stmt.assign_to) {
      if (!IsIdentChar(c)) {
        return Status::InvalidArgument("bad stream name: " + stmt.assign_to);
      }
    }
    rest = rest.substr(eq + 1);
  }

  // Split into stages on '|' at paren depth 0.
  std::vector<std::string> stage_texts;
  std::string current;
  int depth = 0;
  for (char c : rest) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == '|' && depth == 0) {
      stage_texts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  stage_texts.push_back(current);

  for (const std::string& st : stage_texts) {
    Stage stage;
    size_t i = st.find_first_not_of(" \t");
    if (i == std::string::npos) {
      return Status::InvalidArgument("empty stage in: " + text);
    }
    while (i < st.size() && IsIdentChar(st[i])) {
      stage.name += st[i++];
    }
    if (stage.name.empty()) {
      return Status::InvalidArgument("stage must start with a name: " + st);
    }
    while (i < st.size() && std::isspace(static_cast<unsigned char>(st[i]))) {
      ++i;
    }
    if (i < st.size() && st[i] == '(') {
      stage.had_parens = true;
      const size_t close = st.rfind(')');
      if (close == std::string::npos || close < i) {
        return Status::InvalidArgument("unbalanced parens in: " + st);
      }
      const std::string args = st.substr(i + 1, close - i - 1);
      std::string arg;
      std::istringstream as(args);
      while (std::getline(as, arg, ',')) {
        const size_t b = arg.find_first_not_of(" \t");
        if (b == std::string::npos) continue;
        const size_t e = arg.find_last_not_of(" \t");
        const std::string trimmed = arg.substr(b, e - b + 1);
        const size_t aeq = trimmed.find('=');
        // Comparison operators (<=, ==, ...) appear as *values* only, so
        // a bare '=' inside "fn=<=" must split at the first '='.
        if (aeq == std::string::npos) {
          stage.positional.push_back(trimmed);
        } else {
          stage.arguments[trimmed.substr(0, aeq)] = trimmed.substr(aeq + 1);
        }
      }
      // Anything after ')' must be whitespace.
      for (size_t k = close + 1; k < st.size(); ++k) {
        if (!std::isspace(static_cast<unsigned char>(st[k]))) {
          return Status::InvalidArgument("trailing junk after stage: " + st);
        }
      }
    } else {
      for (size_t k = i; k < st.size(); ++k) {
        if (!std::isspace(static_cast<unsigned char>(st[k]))) {
          return Status::InvalidArgument("trailing junk after stage: " + st);
        }
      }
    }
    stmt.stages.push_back(std::move(stage));
  }
  return stmt;
}

Result<double> ArgDouble(const Stage& s, const std::string& key) {
  auto it = s.arguments.find(key);
  if (it == s.arguments.end()) {
    return Status::InvalidArgument(s.name + " requires " + key + "=");
  }
  try {
    return std::stod(it->second);
  } catch (...) {
    return Status::InvalidArgument("bad number for " + key + ": " +
                                   it->second);
  }
}

std::optional<std::string> ArgString(const Stage& s, const std::string& key) {
  auto it = s.arguments.find(key);
  if (it == s.arguments.end()) return std::nullopt;
  return it->second;
}

Result<DataType> ParseDataType(const std::string& repr) {
  if (repr == "int") return DataType::kInt;
  if (repr == "double") return DataType::kDouble;
  if (repr == "string") return DataType::kString;
  return Status::InvalidArgument("bad data type: " + repr);
}

Result<FilterFunction> ParseFilterFn(const std::string& repr) {
  if (repr == "<") return FilterFunction::kLess;
  if (repr == "<=") return FilterFunction::kLessEqual;
  if (repr == ">") return FilterFunction::kGreater;
  if (repr == ">=") return FilterFunction::kGreaterEqual;
  if (repr == "==") return FilterFunction::kEqual;
  if (repr == "!=") return FilterFunction::kNotEqual;
  return Status::InvalidArgument("bad filter fn: " + repr);
}

Result<AggregateFunction> ParseAggFn(const std::string& repr) {
  if (repr == "min") return AggregateFunction::kMin;
  if (repr == "max") return AggregateFunction::kMax;
  if (repr == "avg") return AggregateFunction::kAvg;
  if (repr == "sum") return AggregateFunction::kSum;
  if (repr == "count") return AggregateFunction::kCount;
  return Status::InvalidArgument("bad aggregate fn: " + repr);
}

/// window=<count|time>:<tumbling|sliding>:<length>[:<slide>]
Result<WindowSpec> ParseWindow(const std::string& repr) {
  std::vector<std::string> parts;
  std::istringstream is(repr);
  std::string p;
  while (std::getline(is, p, ':')) parts.push_back(p);
  if (parts.size() < 3 || parts.size() > 4) {
    return Status::InvalidArgument("bad window spec: " + repr);
  }
  WindowSpec w;
  if (parts[0] == "count") {
    w.policy = WindowPolicy::kCount;
  } else if (parts[0] == "time") {
    w.policy = WindowPolicy::kTime;
  } else {
    return Status::InvalidArgument("bad window policy: " + parts[0]);
  }
  if (parts[1] == "tumbling") {
    w.type = WindowType::kTumbling;
  } else if (parts[1] == "sliding") {
    w.type = WindowType::kSliding;
  } else {
    return Status::InvalidArgument("bad window type: " + parts[1]);
  }
  try {
    w.length = std::stod(parts[2]);
    w.slide = parts.size() == 4 ? std::stod(parts[3]) : w.length;
  } catch (...) {
    return Status::InvalidArgument("bad window numbers: " + repr);
  }
  if (w.type == WindowType::kTumbling && parts.size() == 4 &&
      w.slide != w.length) {
    return Status::InvalidArgument("tumbling window cannot have a slide");
  }
  return w;
}

class DslBuilder {
 public:
  Result<QueryPlan> Build(const std::string& text) {
    for (const std::string& stmt_text : SplitStatements(text)) {
      ZT_ASSIGN_OR_RETURN(const Statement stmt, ParseStatement(stmt_text));
      ZT_ASSIGN_OR_RETURN(const int tail, BuildPipeline(stmt));
      if (!stmt.assign_to.empty()) {
        if (streams_.count(stmt.assign_to) > 0) {
          return Status::InvalidArgument("stream redefined: " +
                                         stmt.assign_to);
        }
        streams_[stmt.assign_to] = tail;
      }
    }
    ZT_RETURN_IF_ERROR(plan_.Validate());
    return std::move(plan_);
  }

 private:
  Result<int> BuildPipeline(const Statement& stmt) {
    int tail = -1;
    for (const Stage& stage : stmt.stages) {
      ZT_ASSIGN_OR_RETURN(tail, BuildStage(stage, tail));
    }
    return tail;
  }

  Result<int> BuildStage(const Stage& stage, int upstream) {
    if (stage.name == "source") {
      if (upstream >= 0) {
        return Status::InvalidArgument("source must start a pipeline");
      }
      SourceProperties s;
      ZT_ASSIGN_OR_RETURN(s.event_rate, ArgDouble(stage, "rate"));
      const auto schema = ArgString(stage, "schema");
      if (!schema) {
        return Status::InvalidArgument("source requires schema=");
      }
      ZT_ASSIGN_OR_RETURN(s.schema, PlanIO::SchemaFromString(*schema));
      return plan_.AddSource(s);
    }
    if (stage.name == "filter") {
      if (upstream < 0) {
        return Status::InvalidArgument("filter needs an upstream");
      }
      FilterProperties f;
      ZT_ASSIGN_OR_RETURN(f.selectivity, ArgDouble(stage, "sel"));
      if (const auto fn = ArgString(stage, "fn")) {
        ZT_ASSIGN_OR_RETURN(f.function, ParseFilterFn(*fn));
      }
      if (const auto lit = ArgString(stage, "literal")) {
        ZT_ASSIGN_OR_RETURN(f.literal_class, ParseDataType(*lit));
      }
      return plan_.AddFilter(upstream, f);
    }
    if (stage.name == "aggregate") {
      if (upstream < 0) {
        return Status::InvalidArgument("aggregate needs an upstream");
      }
      AggregateProperties a;
      ZT_ASSIGN_OR_RETURN(a.selectivity, ArgDouble(stage, "sel"));
      const auto win = ArgString(stage, "window");
      if (!win) {
        return Status::InvalidArgument("aggregate requires window=");
      }
      ZT_ASSIGN_OR_RETURN(a.window, ParseWindow(*win));
      if (const auto fn = ArgString(stage, "fn")) {
        ZT_ASSIGN_OR_RETURN(a.function, ParseAggFn(*fn));
      }
      if (const auto key = ArgString(stage, "key")) {
        ZT_ASSIGN_OR_RETURN(a.key_class, ParseDataType(*key));
      }
      if (const auto cls = ArgString(stage, "class")) {
        ZT_ASSIGN_OR_RETURN(a.aggregate_class, ParseDataType(*cls));
      }
      if (const auto keyed = ArgString(stage, "keyed")) {
        a.keyed = *keyed != "0";
      }
      return plan_.AddWindowAggregate(upstream, a);
    }
    if (stage.name == "join") {
      if (upstream >= 0) {
        return Status::InvalidArgument(
            "join starts a pipeline; name its inputs instead");
      }
      if (stage.positional.size() != 2) {
        return Status::InvalidArgument(
            "join requires two named input streams");
      }
      ZT_ASSIGN_OR_RETURN(const int left, Lookup(stage.positional[0]));
      ZT_ASSIGN_OR_RETURN(const int right, Lookup(stage.positional[1]));
      JoinProperties j;
      ZT_ASSIGN_OR_RETURN(j.selectivity, ArgDouble(stage, "sel"));
      const auto win = ArgString(stage, "window");
      if (!win) return Status::InvalidArgument("join requires window=");
      ZT_ASSIGN_OR_RETURN(j.window, ParseWindow(*win));
      if (const auto key = ArgString(stage, "key")) {
        ZT_ASSIGN_OR_RETURN(j.key_class, ParseDataType(*key));
      }
      return plan_.AddWindowJoin(left, right, j);
    }
    if (stage.name == "sink") {
      if (upstream < 0) {
        return Status::InvalidArgument("sink needs an upstream");
      }
      return plan_.AddSink(upstream);
    }
    // A bare identifier at pipeline start references a named stream.
    if (!stage.had_parens && upstream < 0) {
      return Lookup(stage.name);
    }
    return Status::InvalidArgument("unknown stage: " + stage.name);
  }

  Result<int> Lookup(const std::string& name) {
    auto it = streams_.find(name);
    if (it == streams_.end()) {
      return Status::InvalidArgument("unknown stream: " + name);
    }
    return it->second;
  }

  QueryPlan plan_;
  std::map<std::string, int> streams_;
};

}  // namespace

Result<QueryPlan> QueryDsl::Parse(const std::string& text) {
  return DslBuilder().Build(text);
}

}  // namespace zerotune::dsp
