#ifndef ZEROTUNE_DSP_CLUSTER_H_
#define ZEROTUNE_DSP_CLUSTER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace zerotune::dsp {

/// Hardware description of one worker node (paper Table I resource
/// features: CPU cores, CPU frequency, node identifier, total memory,
/// network speed).
struct NodeResources {
  std::string type_name;     // e.g. "m510"
  int cpu_cores = 8;
  double cpu_ghz = 2.0;
  double memory_gb = 64.0;
  double network_gbps = 10.0;
};

/// Known CloudLab node types from paper Table II. The "seen" types are
/// used for training-data generation; the rest exercise generalization to
/// unseen hardware (Exp. 2).
struct HardwareCatalog {
  /// Returns the node description for a Table II type name.
  static Result<NodeResources> Get(const std::string& type_name);
  /// Node types used in the training range (m510, rs620).
  static std::vector<std::string> SeenTypes();
  /// Node types reserved for unseen-hardware evaluation.
  static std::vector<std::string> UnseenTypes();
  static std::vector<std::string> AllTypes();
};

/// A set of worker nodes a parallel query plan is deployed on.
class Cluster {
 public:
  Cluster() = default;
  explicit Cluster(std::vector<NodeResources> nodes)
      : nodes_(std::move(nodes)) {}

  /// Homogeneous cluster of `count` nodes of a catalog type.
  static Result<Cluster> Homogeneous(const std::string& type_name, int count,
                                     double network_gbps = 10.0);
  /// Cluster sampled from the given catalog types (round-robin) — used to
  /// build heterogeneous training/testing clusters.
  static Result<Cluster> FromTypes(const std::vector<std::string>& type_names,
                                   int count, double network_gbps,
                                   zerotune::Rng* rng);

  size_t num_nodes() const { return nodes_.size(); }
  const NodeResources& node(size_t i) const { return nodes_[i]; }
  const std::vector<NodeResources>& nodes() const { return nodes_; }

  /// Total processing cores across all nodes; upper bound on any
  /// operator's parallelism degree (paper Sec. III-C3 constraint).
  int TotalCores() const;

  /// The cluster after losing node `index` — used by failure-aware
  /// re-optimization. Fails when the index is out of range or the removal
  /// would leave an empty cluster.
  Result<Cluster> WithoutNode(size_t index) const;

  /// Fastest/slowest clock in the cluster (used by analytical baselines).
  double MaxGhz() const;
  double MinGhz() const;

  bool IsHeterogeneous() const;

 private:
  std::vector<NodeResources> nodes_;
};

}  // namespace zerotune::dsp

#endif  // ZEROTUNE_DSP_CLUSTER_H_
