#include "dsp/plan_text.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

namespace zerotune::dsp::plan_text {

Result<std::map<std::string, std::string>> ParseFields(std::istream& line) {
  std::map<std::string, std::string> fields;
  std::string token;
  while (line >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("malformed token: " + token);
    }
    fields[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return fields;
}

Result<double> GetDouble(const std::map<std::string, std::string>& fields,
                         const std::string& key) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    return Status::InvalidArgument("missing field: " + key);
  }
  try {
    size_t used = 0;
    const double v = std::stod(it->second, &used);
    if (used != it->second.size()) {
      return Status::InvalidArgument("trailing junk in " + key + ": " +
                                     it->second);
    }
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite value for " + key + ": " +
                                     it->second);
    }
    return v;
  } catch (...) {
    return Status::InvalidArgument("bad number for " + key + ": " +
                                   it->second);
  }
}

Result<int> GetInt(const std::map<std::string, std::string>& fields,
                   const std::string& key) {
  ZT_ASSIGN_OR_RETURN(const double v, GetDouble(fields, key));
  if (v < -2e9 || v > 2e9 || v != std::floor(v)) {
    return Status::InvalidArgument("field " + key +
                                   " is not a representable integer");
  }
  return static_cast<int>(v);
}

Result<std::string> GetString(
    const std::map<std::string, std::string>& fields,
    const std::string& key) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    return Status::InvalidArgument("missing field: " + key);
  }
  return it->second;
}

Result<std::vector<int>> ParseIntList(const std::string& repr,
                                      size_t max_elements) {
  std::vector<int> out;
  std::istringstream is(repr);
  std::string part;
  while (std::getline(is, part, ',')) {
    if (out.size() >= max_elements) {
      return Status::InvalidArgument("int list has too many elements");
    }
    try {
      size_t used = 0;
      const int v = std::stoi(part, &used);
      if (used != part.size()) {
        return Status::InvalidArgument("bad int list: " + repr);
      }
      out.push_back(v);
    } catch (...) {
      return Status::InvalidArgument("bad int list: " + repr);
    }
  }
  return out;
}

std::string JoinInts(const std::vector<int>& xs) {
  std::string out;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(xs[i]);
  }
  return out;
}

void WriteWindow(std::ostream& os, const WindowSpec& w) {
  os << " wtype=" << static_cast<int>(w.type)
     << " wpolicy=" << static_cast<int>(w.policy) << " wlen=" << w.length
     << " wslide=" << w.slide;
}

Result<WindowSpec> ReadWindow(
    const std::map<std::string, std::string>& fields) {
  WindowSpec w;
  ZT_ASSIGN_OR_RETURN(const int wtype, GetInt(fields, "wtype"));
  ZT_ASSIGN_OR_RETURN(const int wpolicy, GetInt(fields, "wpolicy"));
  ZT_ASSIGN_OR_RETURN(w.length, GetDouble(fields, "wlen"));
  ZT_ASSIGN_OR_RETURN(w.slide, GetDouble(fields, "wslide"));
  if (wtype < 0 || wtype > 1 || wpolicy < 0 || wpolicy > 1) {
    return Status::InvalidArgument("bad window enum");
  }
  w.type = static_cast<WindowType>(wtype);
  w.policy = static_cast<WindowPolicy>(wpolicy);
  return w;
}

Status AddContext(const Status& s, const std::string& context) {
  if (s.ok()) return s;
  if (s.code() == StatusCode::kIOError) {
    return Status::IOError(context + ": " + s.message());
  }
  return Status::InvalidArgument(context + ": " + s.message());
}

}  // namespace zerotune::dsp::plan_text
