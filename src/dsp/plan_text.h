#ifndef ZEROTUNE_DSP_PLAN_TEXT_H_
#define ZEROTUNE_DSP_PLAN_TEXT_H_

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "dsp/types.h"

namespace zerotune::dsp::plan_text {

/// Line-level parsing helpers shared by the strict plan reader
/// (dsp/plan_io.cc) and the tolerant plan linter (analysis/plan_linter.cc).
/// Both speak the same "kind key=value ..." line format; only their error
/// handling differs (the loader aborts, the linter collects diagnostics).

/// Parses the remaining "key=value" tokens of one line into a map.
Result<std::map<std::string, std::string>> ParseFields(std::istream& line);

/// Typed field accessors. All reject missing keys, trailing junk, and
/// non-finite numbers with an InvalidArgument naming the field.
Result<double> GetDouble(const std::map<std::string, std::string>& fields,
                         const std::string& key);
Result<int> GetInt(const std::map<std::string, std::string>& fields,
                   const std::string& key);
Result<std::string> GetString(const std::map<std::string, std::string>& fields,
                              const std::string& key);

/// Comma-separated integer list, bounded to `max_elements`.
Result<std::vector<int>> ParseIntList(const std::string& repr,
                                      size_t max_elements = 1'000'000);
std::string JoinInts(const std::vector<int>& xs);

/// Window-spec fields shared by aggregate and join lines
/// (wtype/wpolicy/wlen/wslide).
void WriteWindow(std::ostream& os, const WindowSpec& w);
Result<WindowSpec> ReadWindow(const std::map<std::string, std::string>& fields);

/// Prefixes a parse error with positional context (e.g. "plan line 12"),
/// preserving the IOError/InvalidArgument distinction.
Status AddContext(const Status& s, const std::string& context);

}  // namespace zerotune::dsp::plan_text

#endif  // ZEROTUNE_DSP_PLAN_TEXT_H_
