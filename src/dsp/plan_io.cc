#include "dsp/plan_io.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/file_util.h"
#include "dsp/plan_text.h"

namespace zerotune::dsp {

namespace {

using plan_text::AddContext;
using plan_text::GetDouble;
using plan_text::GetInt;
using plan_text::GetString;
using plan_text::JoinInts;
using plan_text::ParseFields;
using plan_text::ParseIntList;
using plan_text::ReadWindow;
using plan_text::WriteWindow;

constexpr char kPlanMagic[] = "zerotune-plan-v1";

/// Parsing limits: a hostile or corrupt file must not drive unbounded
/// allocation, so counts are rejected before anything is materialized.
constexpr size_t kMaxOperators = 100'000;
constexpr size_t kMaxNodes = 100'000;

}  // namespace

std::string PlanIO::SchemaToString(const TupleSchema& schema) {
  std::string out;
  out.reserve(schema.fields.size());
  for (DataType t : schema.fields) {
    switch (t) {
      case DataType::kInt: out += 'i'; break;
      case DataType::kDouble: out += 'd'; break;
      case DataType::kString: out += 's'; break;
    }
  }
  return out;
}

Result<TupleSchema> PlanIO::SchemaFromString(const std::string& repr) {
  TupleSchema schema;
  schema.fields.reserve(repr.size());
  for (char c : repr) {
    switch (c) {
      case 'i': schema.fields.push_back(DataType::kInt); break;
      case 'd': schema.fields.push_back(DataType::kDouble); break;
      case 's': schema.fields.push_back(DataType::kString); break;
      default:
        return Status::InvalidArgument(std::string("bad schema char: ") + c);
    }
  }
  return schema;
}

Status PlanIO::WriteQueryPlan(const QueryPlan& plan, std::ostream& os) {
  os.precision(17);
  os << kPlanMagic << "\n";
  for (const Operator& op : plan.operators()) {
    const auto& ups = plan.upstreams(op.id);
    switch (op.type) {
      case OperatorType::kSource:
        os << "source id=" << op.id << " rate=" << op.source.event_rate
           << " schema=" << SchemaToString(op.source.schema) << "\n";
        break;
      case OperatorType::kFilter:
        os << "filter id=" << op.id << " in=" << ups[0]
           << " fn=" << static_cast<int>(op.filter.function)
           << " literal=" << static_cast<int>(op.filter.literal_class)
           << " sel=" << op.filter.selectivity << "\n";
        break;
      case OperatorType::kWindowAggregate:
        os << "aggregate id=" << op.id << " in=" << ups[0]
           << " fn=" << static_cast<int>(op.aggregate.function)
           << " agg_class=" << static_cast<int>(op.aggregate.aggregate_class)
           << " key_class=" << static_cast<int>(op.aggregate.key_class)
           << " keyed=" << (op.aggregate.keyed ? 1 : 0);
        WriteWindow(os, op.aggregate.window);
        os << " sel=" << op.aggregate.selectivity << "\n";
        break;
      case OperatorType::kWindowJoin:
        os << "join id=" << op.id << " in=" << ups[0] << "," << ups[1]
           << " key_class=" << static_cast<int>(op.join.key_class);
        WriteWindow(os, op.join.window);
        os << " sel=" << op.join.selectivity << "\n";
        break;
      case OperatorType::kSink:
        os << "sink id=" << op.id << " in=" << ups[0] << "\n";
        break;
    }
  }
  return os ? Status::OK() : Status::IOError("plan write failed");
}

Result<QueryPlan> PlanIO::ReadQueryPlan(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kPlanMagic) {
    return Status::InvalidArgument("bad plan header (want " +
                                   std::string(kPlanMagic) + ")");
  }
  QueryPlan plan;
  size_t line_no = 1;
  // Serialized ids are assigned in insertion order, so they map 1:1 onto
  // the ids AddOperator assigns on replay; verify as we go. Each line's
  // parse runs in a lambda so errors pick up the line number exactly once.
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "cluster" || kind == "deploy") {
      // Parallel-plan sections are handled by ReadParallelPlan; a logical
      // reader stops here.
      break;
    }
    if (plan.num_operators() >= kMaxOperators) {
      return Status::InvalidArgument("plan line " + std::to_string(line_no) +
                                     ": too many operators");
    }
    auto parse_line = [&]() -> Status {
    ZT_ASSIGN_OR_RETURN(const auto fields, ParseFields(ls));
    ZT_ASSIGN_OR_RETURN(const int id, GetInt(fields, "id"));
    int new_id = -1;
    if (kind == "source") {
      SourceProperties s;
      ZT_ASSIGN_OR_RETURN(s.event_rate, GetDouble(fields, "rate"));
      ZT_ASSIGN_OR_RETURN(const std::string schema,
                          GetString(fields, "schema"));
      ZT_ASSIGN_OR_RETURN(s.schema, SchemaFromString(schema));
      new_id = plan.AddSource(s);
    } else if (kind == "filter") {
      FilterProperties f;
      ZT_ASSIGN_OR_RETURN(const int in, GetInt(fields, "in"));
      ZT_ASSIGN_OR_RETURN(const int fn, GetInt(fields, "fn"));
      ZT_ASSIGN_OR_RETURN(const int literal, GetInt(fields, "literal"));
      ZT_ASSIGN_OR_RETURN(f.selectivity, GetDouble(fields, "sel"));
      if (fn < 0 || fn > 5 || literal < 0 || literal > 2) {
        return Status::InvalidArgument("bad filter enum");
      }
      f.function = static_cast<FilterFunction>(fn);
      f.literal_class = static_cast<DataType>(literal);
      ZT_ASSIGN_OR_RETURN(new_id, plan.AddFilter(in, f));
    } else if (kind == "aggregate") {
      AggregateProperties a;
      ZT_ASSIGN_OR_RETURN(const int in, GetInt(fields, "in"));
      ZT_ASSIGN_OR_RETURN(const int fn, GetInt(fields, "fn"));
      ZT_ASSIGN_OR_RETURN(const int agg_class, GetInt(fields, "agg_class"));
      ZT_ASSIGN_OR_RETURN(const int key_class, GetInt(fields, "key_class"));
      ZT_ASSIGN_OR_RETURN(const int keyed, GetInt(fields, "keyed"));
      ZT_ASSIGN_OR_RETURN(a.window, ReadWindow(fields));
      ZT_ASSIGN_OR_RETURN(a.selectivity, GetDouble(fields, "sel"));
      if (fn < 0 || fn > 4 || agg_class < 0 || agg_class > 2 ||
          key_class < 0 || key_class > 2) {
        return Status::InvalidArgument("bad aggregate enum");
      }
      a.function = static_cast<AggregateFunction>(fn);
      a.aggregate_class = static_cast<DataType>(agg_class);
      a.key_class = static_cast<DataType>(key_class);
      a.keyed = keyed != 0;
      ZT_ASSIGN_OR_RETURN(new_id, plan.AddWindowAggregate(in, a));
    } else if (kind == "join") {
      JoinProperties j;
      ZT_ASSIGN_OR_RETURN(const std::string ins, GetString(fields, "in"));
      ZT_ASSIGN_OR_RETURN(const std::vector<int> in_ids, ParseIntList(ins));
      if (in_ids.size() != 2) {
        return Status::InvalidArgument("join needs two inputs");
      }
      ZT_ASSIGN_OR_RETURN(const int key_class, GetInt(fields, "key_class"));
      ZT_ASSIGN_OR_RETURN(j.window, ReadWindow(fields));
      ZT_ASSIGN_OR_RETURN(j.selectivity, GetDouble(fields, "sel"));
      if (key_class < 0 || key_class > 2) {
        return Status::InvalidArgument("bad join key class");
      }
      j.key_class = static_cast<DataType>(key_class);
      ZT_ASSIGN_OR_RETURN(new_id,
                          plan.AddWindowJoin(in_ids[0], in_ids[1], j));
    } else if (kind == "sink") {
      ZT_ASSIGN_OR_RETURN(const int in, GetInt(fields, "in"));
      ZT_ASSIGN_OR_RETURN(new_id, plan.AddSink(in));
    } else {
      return Status::InvalidArgument("unknown plan line kind: " + kind);
    }
    if (new_id != id) {
      return Status::InvalidArgument(
          "operator ids must be contiguous in insertion order (got " +
          std::to_string(id) + ", expected " + std::to_string(new_id) + ")");
    }
    return Status::OK();
    };
    const Status parsed = parse_line();
    if (!parsed.ok()) {
      return AddContext(parsed, "plan line " + std::to_string(line_no));
    }
  }
  ZT_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

Status PlanIO::WriteParallelPlan(const ParallelQueryPlan& plan,
                                 std::ostream& os) {
  ZT_RETURN_IF_ERROR(WriteQueryPlan(plan.logical(), os));
  for (const NodeResources& n : plan.cluster().nodes()) {
    os << "cluster node=" << n.type_name << " cores=" << n.cpu_cores
       << " ghz=" << n.cpu_ghz << " mem=" << n.memory_gb
       << " net=" << n.network_gbps << "\n";
  }
  for (const Operator& op : plan.logical().operators()) {
    const OperatorPlacement& p = plan.placement(op.id);
    os << "deploy id=" << op.id << " p=" << p.parallelism
       << " part=" << static_cast<int>(p.partitioning);
    if (!p.instance_nodes.empty()) {
      os << " nodes=" << JoinInts(p.instance_nodes);
    }
    os << "\n";
  }
  return os ? Status::OK() : Status::IOError("parallel plan write failed");
}

Result<ParallelQueryPlan> PlanIO::ReadParallelPlan(std::istream& is) {
  // First pass: buffer the whole stream and split logical/physical parts,
  // because ReadQueryPlan consumes up to the first physical line.
  std::vector<std::string> logical_lines;
  std::vector<std::string> physical_lines;
  std::string line;
  bool in_physical = false;
  while (std::getline(is, line)) {
    if (line.rfind("cluster ", 0) == 0 || line.rfind("deploy ", 0) == 0) {
      in_physical = true;
    }
    (in_physical ? physical_lines : logical_lines).push_back(line);
  }
  std::stringstream logical_stream;
  for (const auto& l : logical_lines) logical_stream << l << "\n";
  ZT_ASSIGN_OR_RETURN(QueryPlan logical, ReadQueryPlan(logical_stream));

  std::vector<NodeResources> nodes;
  struct Deployment {
    int id = 0;
    int parallelism = 1;
    int partitioning = 0;
    std::vector<int> instance_nodes;
  };
  std::vector<Deployment> deployments;
  for (size_t li = 0; li < physical_lines.size(); ++li) {
    const auto& l = physical_lines[li];
    if (l.empty()) continue;
    std::istringstream ls(l);
    std::string kind;
    ls >> kind;
    auto parse_line = [&]() -> Status {
      ZT_ASSIGN_OR_RETURN(const auto fields, ParseFields(ls));
      if (kind == "cluster") {
        if (nodes.size() >= kMaxNodes) {
          return Status::InvalidArgument("too many cluster nodes");
        }
        NodeResources n;
        ZT_ASSIGN_OR_RETURN(n.type_name, GetString(fields, "node"));
        ZT_ASSIGN_OR_RETURN(n.cpu_cores, GetInt(fields, "cores"));
        ZT_ASSIGN_OR_RETURN(n.cpu_ghz, GetDouble(fields, "ghz"));
        ZT_ASSIGN_OR_RETURN(n.memory_gb, GetDouble(fields, "mem"));
        ZT_ASSIGN_OR_RETURN(n.network_gbps, GetDouble(fields, "net"));
        if (n.cpu_cores <= 0 || n.cpu_ghz <= 0.0) {
          return Status::InvalidArgument("node needs positive cores and ghz");
        }
        nodes.push_back(n);
      } else if (kind == "deploy") {
        Deployment d;
        ZT_ASSIGN_OR_RETURN(d.id, GetInt(fields, "id"));
        ZT_ASSIGN_OR_RETURN(d.parallelism, GetInt(fields, "p"));
        ZT_ASSIGN_OR_RETURN(d.partitioning, GetInt(fields, "part"));
        if (fields.count("nodes") > 0) {
          ZT_ASSIGN_OR_RETURN(const std::string ns,
                              GetString(fields, "nodes"));
          ZT_ASSIGN_OR_RETURN(d.instance_nodes, ParseIntList(ns));
        }
        deployments.push_back(std::move(d));
      } else {
        return Status::InvalidArgument("unknown physical line kind: " + kind);
      }
      return Status::OK();
    };
    const Status parsed = parse_line();
    if (!parsed.ok()) {
      return AddContext(parsed,
                        "physical line " + std::to_string(li + 1));
    }
  }
  if (nodes.empty()) {
    return Status::InvalidArgument("parallel plan has no cluster section");
  }

  ParallelQueryPlan plan(std::move(logical), Cluster(std::move(nodes)));
  for (const auto& d : deployments) {
    ZT_RETURN_IF_ERROR(plan.SetParallelism(d.id, d.parallelism));
    if (d.partitioning < 0 || d.partitioning > 2) {
      return Status::InvalidArgument("bad partitioning enum");
    }
    ZT_RETURN_IF_ERROR(plan.SetPartitioning(
        d.id, static_cast<PartitioningStrategy>(d.partitioning)));
  }
  // Placements are restored after degrees/partitioning so SetParallelism's
  // placement reset cannot clobber them.
  for (const auto& d : deployments) {
    if (d.instance_nodes.empty()) continue;
    if (static_cast<int>(d.instance_nodes.size()) != d.parallelism) {
      return Status::InvalidArgument("placement size != parallelism");
    }
    // Validate node indices against the cluster before applying.
    for (int n : d.instance_nodes) {
      if (n < 0 || n >= static_cast<int>(plan.cluster().num_nodes())) {
        return Status::InvalidArgument("placement references invalid node");
      }
    }
    // There is no public per-instance placement setter; re-derive with
    // PlaceRoundRobin when any placement is present. Round-robin placement
    // is deterministic, so write->read->write round-trips are stable.
    ZT_RETURN_IF_ERROR(plan.PlaceRoundRobin());
    break;
  }
  ZT_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

Status PlanIO::SaveQueryPlan(const QueryPlan& plan, const std::string& path) {
  return AtomicWriteStream(path, [&plan](std::ostream& f) -> Status {
    return WriteQueryPlan(plan, f);
  });
}

Result<QueryPlan> PlanIO::LoadQueryPlan(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  return ReadQueryPlan(f);
}

Status PlanIO::SaveParallelPlan(const ParallelQueryPlan& plan,
                                const std::string& path) {
  return AtomicWriteStream(path, [&plan](std::ostream& f) -> Status {
    return WriteParallelPlan(plan, f);
  });
}

Result<ParallelQueryPlan> PlanIO::LoadParallelPlan(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  return ReadParallelPlan(f);
}

}  // namespace zerotune::dsp
