#include "dsp/cluster.h"

#include <algorithm>

namespace zerotune::dsp {

namespace {

// Paper Table II. Memory/cores use the lower bound where a range is given.
const NodeResources kCatalog[] = {
    {"m510", 8, 2.0, 64.0, 10.0},
    {"c6420", 32, 2.6, 384.0, 10.0},
    {"rs620", 8, 2.2, 128.0, 10.0},
    {"c8220x", 20, 2.2, 256.0, 10.0},
    {"c8220", 20, 2.2, 256.0, 10.0},
    {"dss7500", 12, 2.4, 128.0, 10.0},
    {"c6320", 28, 2.0, 256.0, 10.0},
    {"rs6525", 64, 2.8, 256.0, 10.0},
};

}  // namespace

Result<NodeResources> HardwareCatalog::Get(const std::string& type_name) {
  for (const NodeResources& n : kCatalog) {
    if (n.type_name == type_name) return n;
  }
  return Status::NotFound("unknown node type: " + type_name);
}

std::vector<std::string> HardwareCatalog::SeenTypes() {
  return {"m510", "rs620"};
}

std::vector<std::string> HardwareCatalog::UnseenTypes() {
  return {"c6420", "c8220x", "c8220", "dss7500", "c6320", "rs6525"};
}

std::vector<std::string> HardwareCatalog::AllTypes() {
  std::vector<std::string> out;
  for (const NodeResources& n : kCatalog) out.push_back(n.type_name);
  return out;
}

Result<Cluster> Cluster::Homogeneous(const std::string& type_name, int count,
                                     double network_gbps) {
  if (count <= 0) return Status::InvalidArgument("node count must be positive");
  auto node = HardwareCatalog::Get(type_name);
  if (!node.ok()) return node.status();
  std::vector<NodeResources> nodes;
  nodes.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    NodeResources n = node.value();
    n.network_gbps = network_gbps;
    nodes.push_back(n);
  }
  return Cluster(std::move(nodes));
}

Result<Cluster> Cluster::FromTypes(const std::vector<std::string>& type_names,
                                   int count, double network_gbps,
                                   zerotune::Rng* rng) {
  if (count <= 0) return Status::InvalidArgument("node count must be positive");
  if (type_names.empty()) {
    return Status::InvalidArgument("no node types given");
  }
  std::vector<NodeResources> nodes;
  nodes.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::string& type = rng != nullptr
                                  ? rng->Choice(type_names)
                                  : type_names[static_cast<size_t>(i) %
                                               type_names.size()];
    auto node = HardwareCatalog::Get(type);
    if (!node.ok()) return node.status();
    NodeResources n = node.value();
    n.network_gbps = network_gbps;
    nodes.push_back(n);
  }
  return Cluster(std::move(nodes));
}

Result<Cluster> Cluster::WithoutNode(size_t index) const {
  if (index >= nodes_.size()) {
    return Status::InvalidArgument("node index " + std::to_string(index) +
                                   " out of range (cluster has " +
                                   std::to_string(nodes_.size()) + " nodes)");
  }
  if (nodes_.size() == 1) {
    return Status::FailedPrecondition(
        "cannot remove the last node of a cluster");
  }
  std::vector<NodeResources> remaining;
  remaining.reserve(nodes_.size() - 1);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i != index) remaining.push_back(nodes_[i]);
  }
  return Cluster(std::move(remaining));
}

int Cluster::TotalCores() const {
  int total = 0;
  for (const NodeResources& n : nodes_) total += n.cpu_cores;
  return total;
}

double Cluster::MaxGhz() const {
  double best = 0.0;
  for (const NodeResources& n : nodes_) best = std::max(best, n.cpu_ghz);
  return best;
}

double Cluster::MinGhz() const {
  if (nodes_.empty()) return 0.0;
  double worst = nodes_[0].cpu_ghz;
  for (const NodeResources& n : nodes_) worst = std::min(worst, n.cpu_ghz);
  return worst;
}

bool Cluster::IsHeterogeneous() const {
  for (const NodeResources& n : nodes_) {
    if (n.type_name != nodes_[0].type_name) return true;
  }
  return false;
}

}  // namespace zerotune::dsp
