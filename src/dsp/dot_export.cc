#include "dsp/dot_export.h"

#include <map>
#include <sstream>

namespace zerotune::dsp {

namespace {

const char* TypeColor(OperatorType t) {
  switch (t) {
    case OperatorType::kSource: return "#8ecae6";
    case OperatorType::kFilter: return "#bde0a0";
    case OperatorType::kWindowAggregate: return "#ffb703";
    case OperatorType::kWindowJoin: return "#fb8500";
    case OperatorType::kSink: return "#ced4da";
  }
  return "white";
}

std::string OperatorLabel(const Operator& op) {
  std::ostringstream os;
  os.precision(6);
  os << op.name;
  switch (op.type) {
    case OperatorType::kSource:
      os << "\\nrate=" << op.source.event_rate
         << " width=" << op.source.schema.width();
      break;
    case OperatorType::kFilter:
      os << "\\n" << ToString(op.filter.function)
         << " sel=" << op.filter.selectivity;
      break;
    case OperatorType::kWindowAggregate:
      os << "\\n" << ToString(op.aggregate.function) << " "
         << ToString(op.aggregate.window.policy) << ":"
         << ToString(op.aggregate.window.type) << "("
         << op.aggregate.window.length << "/" << op.aggregate.window.slide
         << ")\\nsel=" << op.aggregate.selectivity;
      break;
    case OperatorType::kWindowJoin:
      os << "\\n" << ToString(op.join.window.policy) << ":"
         << ToString(op.join.window.type) << "(" << op.join.window.length
         << "/" << op.join.window.slide << ")\\nsel="
         << op.join.selectivity;
      break;
    case OperatorType::kSink:
      break;
  }
  return os.str();
}

}  // namespace

std::string DotExport::QueryPlanDot(const QueryPlan& plan) {
  std::ostringstream os;
  os << "digraph query {\n  rankdir=LR;\n"
     << "  node [shape=box, style=filled, fontname=\"Helvetica\"];\n";
  for (const Operator& op : plan.operators()) {
    os << "  op" << op.id << " [label=\"" << OperatorLabel(op)
       << "\", fillcolor=\"" << TypeColor(op.type) << "\"];\n";
  }
  for (const Operator& op : plan.operators()) {
    for (int d : plan.downstreams(op.id)) {
      os << "  op" << op.id << " -> op" << d << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string DotExport::ParallelPlanDot(const ParallelQueryPlan& plan) {
  const QueryPlan& q = plan.logical();
  const std::vector<int> chains = plan.ComputeChains();

  // Group operators by chain for subgraph clusters.
  std::map<int, std::vector<int>> chain_ops;
  for (const Operator& op : q.operators()) {
    chain_ops[chains[static_cast<size_t>(op.id)]].push_back(op.id);
  }

  std::ostringstream os;
  os << "digraph parallel_plan {\n  rankdir=LR;\n"
     << "  node [shape=box, style=filled, fontname=\"Helvetica\"];\n";
  for (const auto& [chain_id, ops] : chain_ops) {
    const bool boxed = ops.size() > 1;
    if (boxed) {
      os << "  subgraph cluster_chain" << chain_id << " {\n"
         << "    label=\"chain " << chain_id << "\";\n"
         << "    style=dashed;\n";
    }
    for (int id : ops) {
      const Operator& op = q.op(id);
      os << (boxed ? "    " : "  ") << "op" << id << " [label=\""
         << OperatorLabel(op) << "\\nP=" << plan.parallelism(id)
         << "\", fillcolor=\"" << TypeColor(op.type) << "\"];\n";
    }
    if (boxed) os << "  }\n";
  }
  for (const Operator& op : q.operators()) {
    for (int d : q.downstreams(op.id)) {
      os << "  op" << op.id << " -> op" << d << " [label=\""
         << ToString(plan.placement(d).partitioning) << "\"];\n";
    }
  }
  // Resource legend.
  os << "  resources [shape=note, fillcolor=\"#f8f9fa\", label=\"cluster:";
  for (const NodeResources& n : plan.cluster().nodes()) {
    os << "\\n" << n.type_name << " (" << n.cpu_cores << " cores, "
       << n.cpu_ghz << " GHz)";
  }
  os << "\"];\n}\n";
  return os.str();
}

}  // namespace zerotune::dsp
