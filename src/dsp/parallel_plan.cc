#include "dsp/parallel_plan.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace zerotune::dsp {

ParallelQueryPlan::ParallelQueryPlan(QueryPlan logical, Cluster cluster)
    : logical_(std::move(logical)), cluster_(std::move(cluster)) {
  placements_.resize(logical_.num_operators());
  DerivePartitioning();
}

Status ParallelQueryPlan::SetParallelism(int op_id, int degree) {
  if (op_id < 0 || op_id >= static_cast<int>(placements_.size())) {
    return Status::InvalidArgument("operator id out of range");
  }
  if (degree < 1) {
    return Status::InvalidArgument("parallelism degree must be >= 1");
  }
  placements_[static_cast<size_t>(op_id)].parallelism = degree;
  placements_[static_cast<size_t>(op_id)].instance_nodes.clear();
  return Status::OK();
}

Status ParallelQueryPlan::SetPartitioning(int op_id,
                                          PartitioningStrategy strategy) {
  if (op_id < 0 || op_id >= static_cast<int>(placements_.size())) {
    return Status::InvalidArgument("operator id out of range");
  }
  placements_[static_cast<size_t>(op_id)].partitioning = strategy;
  return Status::OK();
}

Status ParallelQueryPlan::SetUniformParallelism(int degree,
                                                bool pin_endpoints) {
  for (const Operator& op : logical_.operators()) {
    const bool endpoint = op.type == OperatorType::kSource ||
                          op.type == OperatorType::kSink;
    ZT_RETURN_IF_ERROR(
        SetParallelism(op.id, endpoint && pin_endpoints ? 1 : degree));
  }
  DerivePartitioning();
  return Status::OK();
}

void ParallelQueryPlan::DerivePartitioning() {
  for (const Operator& op : logical_.operators()) {
    OperatorPlacement& p = placements_[static_cast<size_t>(op.id)];
    if (op.type == OperatorType::kSource) {
      p.partitioning = PartitioningStrategy::kForward;
      continue;
    }
    const bool keyed =
        op.type == OperatorType::kWindowJoin ||
        (op.type == OperatorType::kWindowAggregate && op.aggregate.keyed);
    if (keyed) {
      p.partitioning = PartitioningStrategy::kHash;
      continue;
    }
    const auto& ups = logical_.upstreams(op.id);
    if (ups.size() == 1 &&
        placements_[static_cast<size_t>(ups[0])].parallelism ==
            p.parallelism) {
      p.partitioning = PartitioningStrategy::kForward;
    } else {
      p.partitioning = PartitioningStrategy::kRebalance;
    }
  }
}

std::vector<int> ParallelQueryPlan::ComputeChains() const {
  std::vector<int> chain(logical_.num_operators(), -1);
  int next_chain = 0;
  for (int id : logical_.TopologicalOrder()) {
    const auto& ups = logical_.upstreams(id);
    const OperatorPlacement& p = placements_[static_cast<size_t>(id)];
    bool chained = false;
    if (ups.size() == 1 &&
        p.partitioning == PartitioningStrategy::kForward &&
        logical_.downstreams(ups[0]).size() == 1 &&
        placements_[static_cast<size_t>(ups[0])].parallelism ==
            p.parallelism) {
      chain[static_cast<size_t>(id)] = chain[static_cast<size_t>(ups[0])];
      chained = true;
    }
    if (!chained) chain[static_cast<size_t>(id)] = next_chain++;
  }
  return chain;
}

int ParallelQueryPlan::GroupingNumber(int op_id) const {
  const std::vector<int> chains = ComputeChains();
  const int my_chain = chains[static_cast<size_t>(op_id)];
  return static_cast<int>(
      std::count(chains.begin(), chains.end(), my_chain));
}

std::vector<int> ParallelQueryPlan::GroupingNumbers() const {
  const std::vector<int> chains = ComputeChains();
  // Chain ids are dense in [0, num_operators).
  std::vector<int> per_chain(chains.size(), 0);
  for (int c : chains) ++per_chain[static_cast<size_t>(c)];
  std::vector<int> out(chains.size());
  for (size_t i = 0; i < chains.size(); ++i) {
    out[i] = per_chain[static_cast<size_t>(chains[i])];
  }
  return out;
}

bool ParallelQueryPlan::IsChainedWithUpstream(int op_id) const {
  const auto& ups = logical_.upstreams(op_id);
  if (ups.size() != 1) return false;
  const std::vector<int> chains = ComputeChains();
  return chains[static_cast<size_t>(op_id)] ==
         chains[static_cast<size_t>(ups[0])];
}

Status ParallelQueryPlan::PlaceRoundRobin() {
  if (cluster_.num_nodes() == 0) {
    return Status::FailedPrecondition("cluster has no nodes");
  }
  // One slot per core, interleaved across nodes so consecutive slots land
  // on different machines (Flink-style slot spreading).
  std::vector<int> slots;
  int max_cores = 0;
  for (const NodeResources& n : cluster_.nodes()) {
    max_cores = std::max(max_cores, n.cpu_cores);
  }
  for (int c = 0; c < max_cores; ++c) {
    for (size_t nidx = 0; nidx < cluster_.num_nodes(); ++nidx) {
      if (c < cluster_.node(nidx).cpu_cores) {
        slots.push_back(static_cast<int>(nidx));
      }
    }
  }

  const std::vector<int> chains = ComputeChains();
  const int num_chains =
      chains.empty() ? 0 : *std::max_element(chains.begin(), chains.end()) + 1;

  // All operators in a chain share one set of slots (they run in the same
  // task). Assign each chain a contiguous run of slots, wrapping around.
  std::vector<std::vector<int>> chain_nodes(static_cast<size_t>(num_chains));
  size_t cursor = 0;
  for (int c = 0; c < num_chains; ++c) {
    int degree = 0;
    for (const Operator& op : logical_.operators()) {
      if (chains[static_cast<size_t>(op.id)] == c) {
        degree = std::max(degree,
                          placements_[static_cast<size_t>(op.id)].parallelism);
      }
    }
    auto& nodes = chain_nodes[static_cast<size_t>(c)];
    nodes.reserve(static_cast<size_t>(degree));
    for (int i = 0; i < degree; ++i) {
      nodes.push_back(slots[cursor % slots.size()]);
      ++cursor;
    }
  }

  for (const Operator& op : logical_.operators()) {
    OperatorPlacement& p = placements_[static_cast<size_t>(op.id)];
    const auto& nodes = chain_nodes[static_cast<size_t>(
        chains[static_cast<size_t>(op.id)])];
    p.instance_nodes.assign(nodes.begin(),
                            nodes.begin() + p.parallelism);
  }
  return Status::OK();
}

Status ParallelQueryPlan::Validate() const {
  ZT_RETURN_IF_ERROR(logical_.Validate());
  const int total_cores = cluster_.TotalCores();
  for (const Operator& op : logical_.operators()) {
    const OperatorPlacement& p = placements_[static_cast<size_t>(op.id)];
    if (p.parallelism < 1) {
      return Status::InvalidArgument("operator " + op.name +
                                     " has parallelism < 1");
    }
    if (p.parallelism > total_cores) {
      return Status::InvalidArgument(
          "operator " + op.name + " parallelism " +
          std::to_string(p.parallelism) + " exceeds total cores " +
          std::to_string(total_cores));
    }
    const bool keyed =
        op.type == OperatorType::kWindowJoin ||
        (op.type == OperatorType::kWindowAggregate && op.aggregate.keyed);
    if (keyed && p.parallelism > 1 &&
        p.partitioning != PartitioningStrategy::kHash) {
      return Status::InvalidArgument("keyed operator " + op.name +
                                     " requires hash partitioning");
    }
    if (!p.instance_nodes.empty()) {
      if (static_cast<int>(p.instance_nodes.size()) != p.parallelism) {
        return Status::InvalidArgument("operator " + op.name +
                                       " placement size != parallelism");
      }
      for (int n : p.instance_nodes) {
        if (n < 0 || n >= static_cast<int>(cluster_.num_nodes())) {
          return Status::InvalidArgument("operator " + op.name +
                                         " placed on invalid node");
        }
      }
    }
  }
  return Status::OK();
}

std::vector<int> ParallelQueryPlan::ParallelismVector() const {
  std::vector<int> out(placements_.size());
  for (size_t i = 0; i < placements_.size(); ++i) {
    out[i] = placements_[i].parallelism;
  }
  return out;
}

double ParallelQueryPlan::AvgParallelism() const {
  double sum = 0.0;
  int count = 0;
  for (const Operator& op : logical_.operators()) {
    if (op.type == OperatorType::kSource || op.type == OperatorType::kSink) {
      continue;
    }
    sum += placements_[static_cast<size_t>(op.id)].parallelism;
    ++count;
  }
  if (count == 0) return 1.0;
  return sum / count;
}

const char* ParallelQueryPlan::ParallelismCategory(double avg_degree) {
  if (avg_degree < 8.0) return "XS";
  if (avg_degree < 16.0) return "S";
  if (avg_degree < 32.0) return "M";
  if (avg_degree < 64.0) return "L";
  return "XL";
}

std::string ParallelQueryPlan::DebugString() const {
  std::ostringstream os;
  const std::vector<int> chains = ComputeChains();
  os << "ParallelQueryPlan{\n";
  for (const Operator& op : logical_.operators()) {
    const OperatorPlacement& p = placements_[static_cast<size_t>(op.id)];
    os << "  [" << op.id << "] " << op.name << " P=" << p.parallelism
       << " part=" << ToString(p.partitioning)
       << " chain=" << chains[static_cast<size_t>(op.id)] << " nodes=(";
    for (size_t i = 0; i < p.instance_nodes.size(); ++i) {
      if (i > 0) os << ",";
      os << p.instance_nodes[i];
    }
    os << ")\n";
  }
  os << "}";
  return os.str();
}

}  // namespace zerotune::dsp
